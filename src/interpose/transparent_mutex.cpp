#include "interpose/transparent_mutex.hpp"

#include "interpose/pthread_shim.hpp"
#include "platform/env.hpp"
#include "telemetry/collector.hpp"

namespace resilock::interpose {

const std::string& default_algorithm() {
  static const std::string algo = [] {
    const char* v = platform::env_raw("RESILOCK_ALGO");
    if (v != nullptr && is_lock_name(v)) return std::string(v);
    return std::string("MCS");
  }();
  return algo;
}

Resilience default_resilience() {
  static const Resilience r =
      platform::env_flag("RESILOCK_RESILIENT", true) ? kResilient
                                                     : kOriginal;
  return r;
}

namespace {
// Environment-selected mutexes ride through the ownership shield unless
// RESILOCK_SHIELD=0 (interposed_lock_name, shared with the C shim);
// explicitly constructed ones take exactly the algorithm they asked for.
const std::string& default_interposed_algorithm() {
  static const std::string name = interposed_lock_name(default_algorithm());
  return name;
}
}  // namespace

// Construction is the interpose cold path (one call per lock): bring
// up the RESILOCK_TELEMETRY collector here like rl_mutex_init does, so
// programs whose locks never misuse still get spans and metrics.
TransparentMutex::TransparentMutex()
    : impl_((telemetry::autostart_from_env(),
             make_lock(default_interposed_algorithm(),
                       default_resilience()))) {}

TransparentMutex::TransparentMutex(std::string_view algorithm, Resilience r)
    : impl_((telemetry::autostart_from_env(), make_lock(algorithm, r))) {}

}  // namespace resilock::interpose
