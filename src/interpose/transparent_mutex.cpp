#include "interpose/transparent_mutex.hpp"

#include <cstdlib>

#include "interpose/pthread_shim.hpp"

namespace resilock::interpose {

const std::string& default_algorithm() {
  static const std::string algo = [] {
    const char* v = std::getenv("RESILOCK_ALGO");
    if (v && *v && is_lock_name(v)) return std::string(v);
    return std::string("MCS");
  }();
  return algo;
}

Resilience default_resilience() {
  static const Resilience r = [] {
    const char* v = std::getenv("RESILOCK_RESILIENT");
    if (v && v[0] == '0' && v[1] == '\0') return kOriginal;
    return kResilient;
  }();
  return r;
}

namespace {
// Environment-selected mutexes ride through the ownership shield unless
// RESILOCK_SHIELD=0 (interposed_lock_name, shared with the C shim);
// explicitly constructed ones take exactly the algorithm they asked for.
const std::string& default_interposed_algorithm() {
  static const std::string name = interposed_lock_name(default_algorithm());
  return name;
}
}  // namespace

TransparentMutex::TransparentMutex()
    : impl_(make_lock(default_interposed_algorithm(),
                      default_resilience())) {}

TransparentMutex::TransparentMutex(std::string_view algorithm, Resilience r)
    : impl_(make_lock(algorithm, r)) {}

}  // namespace resilock::interpose
