// Address-keyed adoption registry for LD_PRELOAD interposition.
//
// A preloaded pthread program hands us pthread_mutex_t* / pthread_rwlock_t*
// pointers it initialized itself — often statically, via
// PTHREAD_MUTEX_INITIALIZER, with no init call we could intercept. The
// registry maps those addresses to resilock handles (the rl_* shim's
// rl_mutex_t / rl_rwlock_t), adopting unknown addresses lazily on first
// use with exactly-once semantics: however many threads race the first
// lock of a static-initializer mutex, exactly one handle is created and
// every racer gets it.
//
// Structure: a fixed array of buckets, each an insertion-ordered singly
// linked list. Lookups are lock-free (acquire loads down the chain);
// inserts and re-inits serialize on a per-bucket spinlock (atomic_flag —
// deliberately NOT a pthread mutex, since in the preload this code runs
// inside the interposition path itself). Nodes are never freed:
// pthread_mutex_destroy tombstones the node (handle destroyed, slot
// kept), and a later init or adoption at the same address revives it.
// The leak is bounded by the number of DISTINCT lock addresses the
// program ever uses — the same bound LiTL accepts, and what makes
// lock-free readers safe without an epoch scheme.
#pragma once

#include <cstdint>

#include "interpose/pthread_shim.hpp"

namespace resilock::interpose {

struct PreloadRegistryStats {
  std::uint64_t adopted_mutexes = 0;   // lazy adoptions (static init path)
  std::uint64_t init_mutexes = 0;      // eager pthread_mutex_init routes
  std::uint64_t destroyed_mutexes = 0;
  std::uint64_t adopted_rwlocks = 0;
  std::uint64_t init_rwlocks = 0;
  std::uint64_t destroyed_rwlocks = 0;
  std::uint64_t live_nodes = 0;        // distinct addresses ever seen
};

class PreloadRegistry {
 public:
  // Leaked singleton: preloaded programs operate locks from atexit
  // handlers and static destructors; the registry must outlive them.
  static PreloadRegistry& instance();

  // The handle for `addr`, adopting (default algorithm, shield on per
  // RESILOCK_SHIELD) when the address is unknown or tombstoned.
  // Exactly-once under arbitrary concurrency. Never returns nullptr —
  // allocation failure during adoption aborts (a lock operation has no
  // error path that could express it).
  rl_mutex_t* mutex_for(const void* addr);

  // nullptr when the address was never adopted (or is tombstoned) —
  // the query the preload's pthread_mutex_destroy uses.
  rl_mutex_t* find_mutex(const void* addr);

  // Eager registration for an intercepted pthread_mutex_init: creates
  // (or revives) the handle. A live handle at the same address is
  // destroyed and replaced — re-initializing an in-use mutex is UB the
  // caller owns; honoring the re-init keeps us faithful.
  rl_mutex_t* init_mutex(const void* addr);

  // Tombstones the handle; 0, or EBUSY when the address is unknown
  // (destroy of a never-used static initializer is a no-op: 0).
  int destroy_mutex(const void* addr);

  // Same trio for pthread_rwlock_t addresses.
  rl_rwlock_t* rwlock_for(const void* addr);
  rl_rwlock_t* find_rwlock(const void* addr);
  rl_rwlock_t* init_rwlock(const void* addr);
  int destroy_rwlock(const void* addr);

  PreloadRegistryStats stats() const noexcept;

 private:
  PreloadRegistry();
  ~PreloadRegistry() = delete;
  PreloadRegistry(const PreloadRegistry&) = delete;
  PreloadRegistry& operator=(const PreloadRegistry&) = delete;

  struct Impl;
  Impl* impl_;
};

}  // namespace resilock::interpose
