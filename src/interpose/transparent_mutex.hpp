// LiTL-style transparent mutex (paper §6).
//
// LiTL interposes on pthread_mutex_* so an unmodified application runs
// with any lock algorithm, selected by an environment variable, with
// per-thread contexts kept in side tables. This module provides the same
// contract in-process: TransparentMutex has the pthread mutex shape
// (lock/trylock/unlock + condition-variable compatibility), and the
// algorithm behind every instance is chosen at creation time from
// RESILOCK_ALGO / RESILOCK_RESILIENT or explicit arguments.
//
// TransparentMutex satisfies BasicLockable, so std::condition_variable_any
// and std::lock_guard work with it directly — covering LiTL's condition-
// variable interposition for the applications that need it (dedup- and
// ferret-like pipelines).
#pragma once

#include <memory>
#include <string>

#include "core/any_lock.hpp"
#include "core/lock_registry.hpp"
#include "core/resilience.hpp"

namespace resilock::interpose {

// Algorithm selection for mutexes created without explicit arguments:
// RESILOCK_ALGO (default "MCS"), RESILOCK_RESILIENT ("1"/"0", default 1).
const std::string& default_algorithm();
Resilience default_resilience();

class TransparentMutex {
 public:
  // Algorithm from the environment (LiTL behavior).
  TransparentMutex();
  // Explicit algorithm, overriding the environment.
  TransparentMutex(std::string_view algorithm, Resilience r);

  TransparentMutex(const TransparentMutex&) = delete;
  TransparentMutex& operator=(const TransparentMutex&) = delete;

  void lock() { impl_->acquire(); }

  bool try_lock() { return impl_->try_acquire(); }

  // pthread_mutex_unlock shape: reports detected misuse (errorcheck
  // semantics) instead of silently corrupting.
  bool unlock() { return impl_->release(); }

  const std::string& algorithm() const { return impl_->name(); }
  Resilience resilience() const { return impl_->resilience(); }
  bool has_native_trylock() const { return impl_->supports_trylock(); }

 private:
  std::unique_ptr<AnyLock> impl_;
};

}  // namespace resilock::interpose
