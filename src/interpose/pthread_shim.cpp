#include "interpose/pthread_shim.hpp"

#include <cerrno>
#include <memory>
#include <string>
#include <string_view>

#include "core/any_lock.hpp"
#include "core/lock_registry.hpp"
#include "core/rw/crw.hpp"
#include "interpose/transparent_mutex.hpp"
#include "observe/lockstat.hpp"
#include "park/parking_lot.hpp"
#include "platform/chrono_to_timespec.hpp"
#include "platform/env.hpp"
#include "shield/rw_shield.hpp"
#include "telemetry/collector.hpp"

namespace resilock::interpose {

namespace {
// The C handle owns the lock plus a TimedGate: the timed entry points
// wait on the gate's epoch word (outside the queue protocol, where a
// waiter CAN abandon its wait), and every successful unlock kicks the
// gate so timed waiters re-try.
struct MutexHandle {
  std::unique_ptr<AnyLock> lock;
  park::TimedGate gate;
};

MutexHandle* impl_of(rl_mutex_t* m) {
  return static_cast<MutexHandle*>(m->impl);
}
}  // namespace

bool shield_interposition_enabled() {
  // Interposed pthread programs get the ownership shield for free
  // (src/shield/): any misuse is intercepted before the protocol sees
  // it, whatever algorithm and flavor were selected. RESILOCK_SHIELD=0
  // opts out and exposes the bare algorithm.
  static const bool on = platform::env_flag("RESILOCK_SHIELD", true);
  return on;
}

std::string interposed_lock_name(std::string_view base) {
  if (shield_interposition_enabled() && !is_shielded_name(base)) {
    std::string shielded = shielded_name(base);
    if (is_lock_name(shielded)) return shielded;
  }
  return std::string(base);
}

int rl_mutex_init(rl_mutex_t* m, const char* algorithm, int resilient) {
  if (m == nullptr) return EINVAL;
  // Cold path (one call per lock, not per operation): the right place
  // to bring up the RESILOCK_TELEMETRY collector for interposed
  // programs that never emit a misuse event but still want hold/wait
  // spans and periodic metrics. The lockstat signal trigger installs
  // here too, so an unmodified LD_PRELOAD-ed binary answers SIGUSR2
  // with a live contention report.
  telemetry::autostart_from_env();
  observe::install_signal_trigger_from_env();
  const std::string_view base =
      algorithm != nullptr ? std::string_view(algorithm)
                           : std::string_view(default_algorithm());
  if (!is_lock_name(base)) return EINVAL;
  m->impl = new MutexHandle{make_lock(interposed_lock_name(base),
                                      resilient ? kResilient : kOriginal),
                            {}};
  return 0;
}

int rl_mutex_lock(rl_mutex_t* m) {
  if (m == nullptr || m->impl == nullptr) return EINVAL;
  impl_of(m)->lock->acquire();
  return 0;
}

int rl_mutex_trylock(rl_mutex_t* m) {
  if (m == nullptr || m->impl == nullptr) return EINVAL;
  return impl_of(m)->lock->try_acquire() ? 0 : EBUSY;
}

int rl_mutex_timedlock(rl_mutex_t* m, const timespec* abstime) {
  if (m == nullptr || m->impl == nullptr) return EINVAL;
  if (abstime == nullptr || !platform::timespec_valid(*abstime)) {
    return EINVAL;
  }
  MutexHandle* h = impl_of(m);
  if (!h->lock->supports_trylock()) {
    // The registry emulates this algorithm's trylock by blocking (CLH:
    // a queue slot cannot be abandoned), so the timed entry degrades
    // to a plain blocking lock — it can block past the deadline.
    h->lock->acquire();
    return 0;
  }
  const std::uint64_t deadline =
      platform::monotonic_deadline_from_realtime(*abstime);
  return h->gate.acquire_until([h] { return h->lock->try_acquire(); },
                               deadline)
             ? 0
             : ETIMEDOUT;
}

int rl_mutex_unlock(rl_mutex_t* m) {
  if (m == nullptr || m->impl == nullptr) return EINVAL;
  MutexHandle* h = impl_of(m);
  if (!h->lock->release()) return EPERM;  // errorcheck semantics
  h->gate.on_release();
  return 0;
}

int rl_mutex_destroy(rl_mutex_t* m) {
  if (m == nullptr || m->impl == nullptr) return EBUSY;
  delete impl_of(m);
  m->impl = nullptr;
  return 0;
}

// ---------------------------------------------------------------------
// Reader-writer shim.
// ---------------------------------------------------------------------

namespace {

// Type-erased rw lock with per-thread cohort contexts — the rw
// analogue of AnyLockAdapter, private to the shim (the registry's
// AnyLock shape has no read side).
class RwAny {
 public:
  virtual ~RwAny() = default;
  virtual void rdlock() = 0;
  virtual void wrlock() = 0;
  // False iff the acquisition would have blocked (EBUSY).
  virtual bool tryrdlock() = 0;
  virtual bool trywrlock() = 0;
  // False iff a misuse was intercepted/detected (EPERM).
  virtual bool unlock() = 0;
};

// Shielded adapter: RwShield tracks the caller's mode, so unlock() is
// the shield's own mode-aware single entry point.
template <typename Rw>
class ShieldedRwAdapter final : public RwAny {
 public:
  void rdlock() override { rw_.rlock(contexts_.mine()); }
  void wrlock() override { rw_.wlock(contexts_.mine()); }
  bool tryrdlock() override { return rw_.try_rlock(contexts_.mine()); }
  bool trywrlock() override { return rw_.try_wlock(contexts_.mine()); }
  bool unlock() override { return rw_.unlock(contexts_.mine()); }

 private:
  shield::RwShield<Rw> rw_;
  PerPid<typename Rw::Context> contexts_;
};

// Bare adapter (RESILOCK_SHIELD=0): no interception anywhere, but the
// single-unlock contract still needs to know which side to call — a
// per-thread mode note demultiplexes, nothing more. An unlock by a
// thread holding nothing forwards to runlock: exactly the bogus depart
// whose §4 consequences the bare protocol faithfully exhibits.
template <typename Rw>
class BareRwAdapter final : public RwAny {
 public:
  void rdlock() override {
    rw_.rlock(contexts_.mine());
    ++holds_.mine().read_depth;
  }
  void wrlock() override {
    rw_.wlock(contexts_.mine());
    holds_.mine().write = true;
  }
  bool tryrdlock() override {
    if (!rw_.try_rlock(contexts_.mine())) return false;
    ++holds_.mine().read_depth;
    return true;
  }
  bool trywrlock() override {
    if (!rw_.try_wlock(contexts_.mine())) return false;
    holds_.mine().write = true;
    return true;
  }
  bool unlock() override {
    Hold& h = holds_.mine();
    if (h.write) {
      h.write = false;
      return rw_.wunlock(contexts_.mine());
    }
    if (h.read_depth > 0) --h.read_depth;
    return rw_.runlock(contexts_.mine());
  }

 private:
  struct Hold {
    std::uint32_t read_depth = 0;
    bool write = false;
  };
  Rw rw_;
  PerPid<typename Rw::Context> contexts_;
  PerPid<Hold> holds_;
};

struct RwHandle {
  std::unique_ptr<RwAny> rw;
  park::TimedGate gate;
};

RwHandle* rw_impl_of(rl_rwlock_t* rw) {
  return static_cast<RwHandle*>(rw->impl);
}

template <RwPreference P, template <Resilience> class Cohort>
RwAny* make_rw_variant(bool resilient, bool shielded) {
  if (resilient) {
    using Rw =
        CrwLock<kResilient, SplitReadIndicator, P, Cohort<kResilient>>;
    if (shielded) return new ShieldedRwAdapter<Rw>();
    return new BareRwAdapter<Rw>();
  }
  using Rw = CrwLock<kOriginal, SplitReadIndicator, P, Cohort<kOriginal>>;
  if (shielded) return new ShieldedRwAdapter<Rw>();
  return new BareRwAdapter<Rw>();
}

// RESILOCK_RW_COHORT selects the writer-side cohort family. The paper's
// C-PTKT-TKT is the default; C-BO-BO (TAS-local, competitive handoff)
// is the right pick when software threads outnumber cores — a FIFO
// cohort convoys on reader arrival in neutral mode exactly the way a
// FIFO mutex convoys under oversubscription.
template <RwPreference P>
RwAny* make_rw_pref(bool resilient, bool shielded) {
  const char* c = platform::env_raw("RESILOCK_RW_COHORT");
  if (c != nullptr && std::string_view(c) == "C-BO-BO") {
    return make_rw_variant<P, CBoBoLock>(resilient, shielded);
  }
  return make_rw_variant<P, CPtktTktLock>(resilient, shielded);
}

}  // namespace

int rl_rwlock_init(rl_rwlock_t* rw, const char* preference,
                   int resilient) {
  if (rw == nullptr) return EINVAL;
  telemetry::autostart_from_env();  // see rl_mutex_init
  observe::install_signal_trigger_from_env();
  const char* fallback = platform::env_raw("RESILOCK_RW_PREF");
  const std::string_view pref =
      preference != nullptr
          ? std::string_view(preference)
          : (fallback != nullptr ? std::string_view(fallback)
                                 : std::string_view("np"));
  const bool shielded = shield_interposition_enabled();
  RwAny* impl = nullptr;
  if (pref == "np" || pref == "neutral") {
    impl = make_rw_pref<RwPreference::kNeutral>(resilient != 0,
                                                   shielded);
  } else if (pref == "rp" || pref == "reader") {
    impl = make_rw_pref<RwPreference::kReader>(resilient != 0,
                                                  shielded);
  } else if (pref == "wp" || pref == "writer") {
    impl = make_rw_pref<RwPreference::kWriter>(resilient != 0,
                                                  shielded);
  } else {
    return EINVAL;
  }
  rw->impl = new RwHandle{std::unique_ptr<RwAny>(impl), {}};
  return 0;
}

int rl_rwlock_rdlock(rl_rwlock_t* rw) {
  if (rw == nullptr || rw->impl == nullptr) return EINVAL;
  rw_impl_of(rw)->rw->rdlock();
  return 0;
}

int rl_rwlock_wrlock(rl_rwlock_t* rw) {
  if (rw == nullptr || rw->impl == nullptr) return EINVAL;
  rw_impl_of(rw)->rw->wrlock();
  return 0;
}

int rl_rwlock_tryrdlock(rl_rwlock_t* rw) {
  if (rw == nullptr || rw->impl == nullptr) return EINVAL;
  return rw_impl_of(rw)->rw->tryrdlock() ? 0 : EBUSY;
}

int rl_rwlock_trywrlock(rl_rwlock_t* rw) {
  if (rw == nullptr || rw->impl == nullptr) return EINVAL;
  return rw_impl_of(rw)->rw->trywrlock() ? 0 : EBUSY;
}

namespace {
template <typename Try>
int rw_timed(rl_rwlock_t* rw, const timespec* abstime, Try&& try_lock) {
  if (rw == nullptr || rw->impl == nullptr) return EINVAL;
  if (abstime == nullptr || !platform::timespec_valid(*abstime)) {
    return EINVAL;
  }
  const std::uint64_t deadline =
      platform::monotonic_deadline_from_realtime(*abstime);
  return rw_impl_of(rw)->gate.acquire_until(try_lock, deadline)
             ? 0
             : ETIMEDOUT;
}
}  // namespace

int rl_rwlock_timedrdlock(rl_rwlock_t* rw, const timespec* abstime) {
  return rw_timed(rw, abstime, [rw] {
    return rw_impl_of(rw)->rw->tryrdlock();
  });
}

int rl_rwlock_timedwrlock(rl_rwlock_t* rw, const timespec* abstime) {
  return rw_timed(rw, abstime, [rw] {
    return rw_impl_of(rw)->rw->trywrlock();
  });
}

int rl_rwlock_unlock(rl_rwlock_t* rw) {
  if (rw == nullptr || rw->impl == nullptr) return EINVAL;
  RwHandle* h = rw_impl_of(rw);
  if (!h->rw->unlock()) return EPERM;
  h->gate.on_release();
  return 0;
}

int rl_rwlock_destroy(rl_rwlock_t* rw) {
  if (rw == nullptr || rw->impl == nullptr) return EBUSY;
  delete rw_impl_of(rw);
  rw->impl = nullptr;
  return 0;
}

}  // namespace resilock::interpose
