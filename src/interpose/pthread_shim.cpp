#include "interpose/pthread_shim.hpp"

#include <cerrno>
#include <string>

#include "core/any_lock.hpp"
#include "core/lock_registry.hpp"
#include "interpose/transparent_mutex.hpp"
#include "platform/env.hpp"

namespace resilock::interpose {

namespace {
AnyLock* impl_of(rl_mutex_t* m) {
  return static_cast<AnyLock*>(m->impl);
}
}  // namespace

bool shield_interposition_enabled() {
  // Interposed pthread programs get the ownership shield for free
  // (src/shield/): any misuse is intercepted before the protocol sees
  // it, whatever algorithm and flavor were selected. RESILOCK_SHIELD=0
  // opts out and exposes the bare algorithm.
  static const bool on = platform::env_flag("RESILOCK_SHIELD", true);
  return on;
}

std::string interposed_lock_name(std::string_view base) {
  if (shield_interposition_enabled() && !is_shielded_name(base)) {
    std::string shielded = shielded_name(base);
    if (is_lock_name(shielded)) return shielded;
  }
  return std::string(base);
}

int rl_mutex_init(rl_mutex_t* m, const char* algorithm, int resilient) {
  if (m == nullptr) return EINVAL;
  const std::string_view base =
      algorithm != nullptr ? std::string_view(algorithm)
                           : std::string_view(default_algorithm());
  if (!is_lock_name(base)) return EINVAL;
  m->impl = make_lock(interposed_lock_name(base),
                      resilient ? kResilient : kOriginal)
                .release();
  return 0;
}

int rl_mutex_lock(rl_mutex_t* m) {
  if (m == nullptr || m->impl == nullptr) return EINVAL;
  impl_of(m)->acquire();
  return 0;
}

int rl_mutex_trylock(rl_mutex_t* m) {
  if (m == nullptr || m->impl == nullptr) return EINVAL;
  return impl_of(m)->try_acquire() ? 0 : EBUSY;
}

int rl_mutex_unlock(rl_mutex_t* m) {
  if (m == nullptr || m->impl == nullptr) return EINVAL;
  return impl_of(m)->release() ? 0 : EPERM;  // errorcheck semantics
}

int rl_mutex_destroy(rl_mutex_t* m) {
  if (m == nullptr || m->impl == nullptr) return EBUSY;
  delete impl_of(m);
  m->impl = nullptr;
  return 0;
}

}  // namespace resilock::interpose
