// libresilock_preload.so — LD_PRELOAD interposition over glibc pthread
// locks (the paper's evaluation harness shape: LiTL-style transparent
// replacement on unmodified binaries, §6).
//
//   LD_PRELOAD=$PWD/libresilock_preload.so ./your_app
//
// Every pthread_mutex_* / pthread_rwlock_* call in the process routes
// through the rl_* shim (interpose/pthread_shim.hpp), so the whole
// resilock stack — shield interception, lockdep, response rules,
// parking, telemetry, lockstat SIGUSR2 dumps — applies to a binary
// compiled with no resilock headers. Behavior is selected by the same
// environment knobs the shim documents (RESILOCK_ALGO, RESILOCK_SHIELD,
// RESILOCK_TRACE_FILE, RESILOCK_LOCKSTAT, RESILOCK_PARK, ...).
//
// Three mechanisms make this safe (each documented at its site):
//   1. Address adoption — PreloadRegistry maps pthread_mutex_t*
//      addresses to rl handles, lazily and exactly-once, which is what
//      makes PTHREAD_MUTEX_INITIALIZER locks (no init call to
//      intercept) work.
//   2. Reentrancy guard — resilock's own internal pthread usage
//      forwards to the real glibc symbols (interpose/reentry.hpp);
//      without this, adopting lockdep's graph mutex would recurse into
//      lockdep.
//   3. Condition-variable shadow mutexes — pthread_cond_wait must not
//      see an adopted (non-glibc) mutex, so waits are re-expressed over
//      a per-cond REAL mutex with the rl lock released around the wait
//      (LiTL's scheme); signal/broadcast serialize on the same shadow
//      to close the missed-wakeup window.
//
// Deliberate non-goals, as in LiTL: mutex/rwlock attributes are
// ignored (a recursive-attr relock surfaces as the shield's
// reentrant-relock event; a cond initialized with a non-default clock
// attr is honored only when glibc provides the native clockwait
// symbol), PI/robust protocols are not emulated, and fork() without
// exec() is unsupported (resilock_drive exec()s).
//
// The clock-based entry points (pthread_mutex_clocklock,
// pthread_rwlock_clock{rd,wr}lock, pthread_cond_clockwait; glibc 2.30+)
// ARE interposed — leaving them to glibc would lock the raw object at
// an address whose other users go through the adopted handle, silently
// breaking mutual exclusion. They translate the caller's clock into
// the CLOCK_REALTIME deadline the rl timed APIs take.

#include <dlfcn.h>
#include <pthread.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "interpose/preload_registry.hpp"
#include "interpose/pthread_shim.hpp"
#include "interpose/reentry.hpp"
#include "observe/callsite.hpp"
#include "platform/env.hpp"
#include "platform/spin.hpp"

namespace ri = resilock::interpose;

namespace {

// ---------------------------------------------------------------------
// Real glibc symbols, resolved once with dlsym(RTLD_NEXT). Resolution
// is eager (library constructor) so no lock operation ever runs the
// dynamic linker; must_sym aborts on a missing symbol because a lock
// API has no error path that could express "the libc underneath us is
// gone".
// ---------------------------------------------------------------------

template <typename Fn>
Fn* must_sym(const char* name) {
  void* p = dlsym(RTLD_NEXT, name);
  if (p == nullptr) {
    std::fprintf(stderr, "resilock_preload: dlsym(%s) failed: %s\n", name,
                 dlerror());
    std::abort();
  }
  return reinterpret_cast<Fn*>(p);
}

// For symbols newer than the baseline (the glibc 2.30 clock variants):
// nullptr when the libc underneath lacks them, with the callers
// falling back to a realtime translation of the timed entry points.
template <typename Fn>
Fn* opt_sym(const char* name) {
  return reinterpret_cast<Fn*>(dlsym(RTLD_NEXT, name));
}

struct RealPthread {
  int (*mutex_init)(pthread_mutex_t*, const pthread_mutexattr_t*);
  int (*mutex_lock)(pthread_mutex_t*);
  int (*mutex_trylock)(pthread_mutex_t*);
  int (*mutex_timedlock)(pthread_mutex_t*, const timespec*);
  int (*mutex_unlock)(pthread_mutex_t*);
  int (*mutex_destroy)(pthread_mutex_t*);

  int (*rwlock_init)(pthread_rwlock_t*, const pthread_rwlockattr_t*);
  int (*rwlock_rdlock)(pthread_rwlock_t*);
  int (*rwlock_wrlock)(pthread_rwlock_t*);
  int (*rwlock_tryrdlock)(pthread_rwlock_t*);
  int (*rwlock_trywrlock)(pthread_rwlock_t*);
  int (*rwlock_timedrdlock)(pthread_rwlock_t*, const timespec*);
  int (*rwlock_timedwrlock)(pthread_rwlock_t*, const timespec*);
  int (*rwlock_unlock)(pthread_rwlock_t*);
  int (*rwlock_destroy)(pthread_rwlock_t*);

  int (*cond_wait)(pthread_cond_t*, pthread_mutex_t*);
  int (*cond_timedwait)(pthread_cond_t*, pthread_mutex_t*,
                        const timespec*);
  int (*cond_signal)(pthread_cond_t*);
  int (*cond_broadcast)(pthread_cond_t*);
  int (*cond_destroy)(pthread_cond_t*);

  // glibc 2.30+ clock variants; nullptr on older libcs (opt_sym).
  int (*mutex_clocklock)(pthread_mutex_t*, clockid_t, const timespec*);
  int (*rwlock_clockrdlock)(pthread_rwlock_t*, clockid_t,
                            const timespec*);
  int (*rwlock_clockwrlock)(pthread_rwlock_t*, clockid_t,
                            const timespec*);
  int (*cond_clockwait)(pthread_cond_t*, pthread_mutex_t*, clockid_t,
                        const timespec*);
};

RealPthread& real() {
  static RealPthread r = [] {
    RealPthread t;
    t.mutex_init = must_sym<int(pthread_mutex_t*,
                                const pthread_mutexattr_t*)>(
        "pthread_mutex_init");
    t.mutex_lock = must_sym<int(pthread_mutex_t*)>("pthread_mutex_lock");
    t.mutex_trylock =
        must_sym<int(pthread_mutex_t*)>("pthread_mutex_trylock");
    t.mutex_timedlock = must_sym<int(pthread_mutex_t*, const timespec*)>(
        "pthread_mutex_timedlock");
    t.mutex_unlock =
        must_sym<int(pthread_mutex_t*)>("pthread_mutex_unlock");
    t.mutex_destroy =
        must_sym<int(pthread_mutex_t*)>("pthread_mutex_destroy");
    t.rwlock_init = must_sym<int(pthread_rwlock_t*,
                                 const pthread_rwlockattr_t*)>(
        "pthread_rwlock_init");
    t.rwlock_rdlock =
        must_sym<int(pthread_rwlock_t*)>("pthread_rwlock_rdlock");
    t.rwlock_wrlock =
        must_sym<int(pthread_rwlock_t*)>("pthread_rwlock_wrlock");
    t.rwlock_tryrdlock =
        must_sym<int(pthread_rwlock_t*)>("pthread_rwlock_tryrdlock");
    t.rwlock_trywrlock =
        must_sym<int(pthread_rwlock_t*)>("pthread_rwlock_trywrlock");
    t.rwlock_timedrdlock =
        must_sym<int(pthread_rwlock_t*, const timespec*)>(
            "pthread_rwlock_timedrdlock");
    t.rwlock_timedwrlock =
        must_sym<int(pthread_rwlock_t*, const timespec*)>(
            "pthread_rwlock_timedwrlock");
    t.rwlock_unlock =
        must_sym<int(pthread_rwlock_t*)>("pthread_rwlock_unlock");
    t.rwlock_destroy =
        must_sym<int(pthread_rwlock_t*)>("pthread_rwlock_destroy");
    t.cond_wait = must_sym<int(pthread_cond_t*, pthread_mutex_t*)>(
        "pthread_cond_wait");
    t.cond_timedwait =
        must_sym<int(pthread_cond_t*, pthread_mutex_t*, const timespec*)>(
            "pthread_cond_timedwait");
    t.cond_signal = must_sym<int(pthread_cond_t*)>("pthread_cond_signal");
    t.cond_broadcast =
        must_sym<int(pthread_cond_t*)>("pthread_cond_broadcast");
    t.cond_destroy =
        must_sym<int(pthread_cond_t*)>("pthread_cond_destroy");
    t.mutex_clocklock =
        opt_sym<int(pthread_mutex_t*, clockid_t, const timespec*)>(
            "pthread_mutex_clocklock");
    t.rwlock_clockrdlock =
        opt_sym<int(pthread_rwlock_t*, clockid_t, const timespec*)>(
            "pthread_rwlock_clockrdlock");
    t.rwlock_clockwrlock =
        opt_sym<int(pthread_rwlock_t*, clockid_t, const timespec*)>(
            "pthread_rwlock_clockwrlock");
    t.cond_clockwait = opt_sym<int(pthread_cond_t*, pthread_mutex_t*,
                                   clockid_t, const timespec*)>(
        "pthread_cond_clockwait");
    return t;
  }();
  return r;
}

ri::PreloadRegistry& reg() { return ri::PreloadRegistry::instance(); }

// ---------------------------------------------------------------------
// Condition-variable shadow mutexes. glibc's cond_wait manipulates the
// passed mutex's internals, which an adopted mutex no longer has — so
// each pthread_cond_t gets a shadow REAL mutex, keyed by address like
// the adoption registry (never freed, per-bucket spinlock insert,
// lock-free lookup). The wait protocol:
//
//   waiter:   lock(shadow) → rl_unlock(m) → real_cond_wait(c, shadow)
//             → unlock(shadow) → rl_lock(m)
//   signaler: lock(shadow) → real_cond_signal(c) → unlock(shadow)
//
// A signaler that observes the predicate change after the waiter's
// rl_unlock must still acquire the shadow, which the waiter holds
// until it is inside real_cond_wait — so the signal cannot land in the
// gap between "released m" and "began waiting". This is the standard
// transparent-interposition wait transformation (LiTL §3).
//
// Reclamation: pthread_cond_destroy unlinks the cond's shadow node
// onto a free list that shadow_of reuses, so a program churning
// heap-allocated condvars at fresh addresses holds the table at its
// peak-live size instead of growing without bound. Nodes are never
// freed — a lock-free reader can still be traversing one — which makes
// stale traversal benign: a reader that follows a recycled node's next
// pointer off its chain simply misses, and the locked slow path
// re-checks under the bucket lock before inserting. (Racing shadow_of
// against destroy of the SAME cond is already UB per POSIX; the free
// list only has to keep that race memory-safe, not meaningful.)
// ---------------------------------------------------------------------

struct CondShadow {
  std::atomic<const void*> key{nullptr};
  pthread_mutex_t mu = PTHREAD_MUTEX_INITIALIZER;
  std::atomic<CondShadow*> next{nullptr};
};

class CondShadowTable {
 public:
  pthread_mutex_t* shadow_of(const void* cond) {
    const std::size_t b = bucket_of(cond);
    for (CondShadow* n = heads_[b].load(std::memory_order_acquire);
         n != nullptr; n = n->next.load(std::memory_order_acquire)) {
      if (n->key.load(std::memory_order_acquire) == cond) return &n->mu;
    }
    resilock::platform::SpinWait w;
    while (locks_[b].test_and_set(std::memory_order_acquire)) w.pause();
    CondShadow* head = heads_[b].load(std::memory_order_relaxed);
    for (CondShadow* n = head; n != nullptr;
         n = n->next.load(std::memory_order_relaxed)) {
      if (n->key.load(std::memory_order_relaxed) == cond) {
        locks_[b].clear(std::memory_order_release);
        return &n->mu;
      }
    }
    CondShadow* n = pop_free();
    if (n == nullptr) n = new (std::nothrow) CondShadow;
    if (n == nullptr) {
      std::fprintf(stderr,
                   "resilock_preload: out of memory shadowing cond %p\n",
                   cond);
      std::abort();
    }
    n->key.store(cond, std::memory_order_relaxed);
    n->next.store(head, std::memory_order_relaxed);
    heads_[b].store(n, std::memory_order_release);
    locks_[b].clear(std::memory_order_release);
    return &n->mu;
  }

  // pthread_cond_destroy hook: unlink cond's node (if any) and recycle
  // it. The shadow mutex stays as-is — a destroyed cond has no waiters,
  // so it is unlocked and reusable verbatim.
  void reclaim(const void* cond) {
    const std::size_t b = bucket_of(cond);
    resilock::platform::SpinWait w;
    while (locks_[b].test_and_set(std::memory_order_acquire)) w.pause();
    CondShadow* prev = nullptr;
    for (CondShadow* n = heads_[b].load(std::memory_order_relaxed);
         n != nullptr; n = n->next.load(std::memory_order_relaxed)) {
      if (n->key.load(std::memory_order_relaxed) == cond) {
        CondShadow* after = n->next.load(std::memory_order_relaxed);
        if (prev == nullptr) {
          heads_[b].store(after, std::memory_order_release);
        } else {
          prev->next.store(after, std::memory_order_release);
        }
        n->key.store(nullptr, std::memory_order_relaxed);
        push_free(n);
        break;
      }
      prev = n;
    }
    locks_[b].clear(std::memory_order_release);
  }

 private:
  static constexpr std::size_t kBuckets = 512;

  static std::size_t bucket_of(const void* p) noexcept {
    auto h = reinterpret_cast<std::uintptr_t>(p);
    h ^= h >> 16;
    h *= 0x9E3779B97F4A7C15ull;
    return (h >> 32) & (kBuckets - 1);
  }

  CondShadow* pop_free() {
    resilock::platform::SpinWait w;
    while (free_lock_.test_and_set(std::memory_order_acquire)) w.pause();
    CondShadow* n = free_head_;
    if (n != nullptr) free_head_ = n->next.load(std::memory_order_relaxed);
    free_lock_.clear(std::memory_order_release);
    return n;
  }

  void push_free(CondShadow* n) {
    resilock::platform::SpinWait w;
    while (free_lock_.test_and_set(std::memory_order_acquire)) w.pause();
    n->next.store(free_head_, std::memory_order_relaxed);
    free_head_ = n;
    free_lock_.clear(std::memory_order_release);
  }

  std::atomic<CondShadow*> heads_[kBuckets] = {};
  std::atomic_flag locks_[kBuckets] = {};
  std::atomic_flag free_lock_ = {};
  CondShadow* free_head_ = nullptr;
};

CondShadowTable& shadows() {
  static CondShadowTable* t = new CondShadowTable;
  return *t;
}

int cond_wait_adopted(pthread_cond_t* c, pthread_mutex_t* m,
                      ri::rl_mutex_t* h, const timespec* abstime) {
  pthread_mutex_t* shadow = shadows().shadow_of(c);
  real().mutex_lock(shadow);
  ri::rl_mutex_unlock(h);
  const int rc = abstime == nullptr
                     ? real().cond_wait(c, shadow)
                     : real().cond_timedwait(c, shadow, abstime);
  real().mutex_unlock(shadow);
  (void)m;
  ri::rl_mutex_lock(h);
  return rc;
}

// ---------------------------------------------------------------------
// Clock-variant deadline translation. The rl timed APIs speak
// CLOCK_REALTIME absolutes (the pthread_*_timedlock contract), so a
// CLOCK_MONOTONIC deadline is re-based through a paired now() sample of
// both clocks. An already-expired deadline stays expired after
// translation (the rl gate still tries once, matching glibc's
// grab-if-free-even-when-late behavior). EINVAL mirrors glibc: bad
// tv_nsec or a clock other than REALTIME/MONOTONIC.
// ---------------------------------------------------------------------

int clock_deadline_to_realtime(clockid_t clockid, const timespec* abstime,
                               timespec* out) {
  if (abstime == nullptr || abstime->tv_nsec < 0 ||
      abstime->tv_nsec >= 1000000000L) {
    return EINVAL;
  }
  if (clockid == CLOCK_REALTIME) {
    *out = *abstime;
    return 0;
  }
  if (clockid != CLOCK_MONOTONIC) return EINVAL;
  timespec mono, wall;
  clock_gettime(CLOCK_MONOTONIC, &mono);
  clock_gettime(CLOCK_REALTIME, &wall);
  out->tv_sec = wall.tv_sec + (abstime->tv_sec - mono.tv_sec);
  out->tv_nsec = wall.tv_nsec + (abstime->tv_nsec - mono.tv_nsec);
  if (out->tv_nsec >= 1000000000L) {
    out->tv_nsec -= 1000000000L;
    ++out->tv_sec;
  } else if (out->tv_nsec < 0) {
    out->tv_nsec += 1000000000L;
    --out->tv_sec;
  }
  return 0;
}

// Real-symbol dispatch for the cond clock wait: native when the libc
// has it, otherwise translated onto cond_timedwait (correct for the
// default REALTIME cond clock attr; see the non-goals note).
int real_cond_clockwait(pthread_cond_t* c, pthread_mutex_t* mu,
                        clockid_t clockid, const timespec* abstime) {
  if (real().cond_clockwait != nullptr) {
    return real().cond_clockwait(c, mu, clockid, abstime);
  }
  timespec wall;
  const int rc = clock_deadline_to_realtime(clockid, abstime, &wall);
  return rc != 0 ? rc : real().cond_timedwait(c, mu, &wall);
}

int cond_clockwait_adopted(pthread_cond_t* c, ri::rl_mutex_t* h,
                           clockid_t clockid, const timespec* abstime) {
  pthread_mutex_t* shadow = shadows().shadow_of(c);
  real().mutex_lock(shadow);
  ri::rl_mutex_unlock(h);
  const int rc = real_cond_clockwait(c, shadow, clockid, abstime);
  real().mutex_unlock(shadow);
  ri::rl_mutex_lock(h);
  return rc;
}

}  // namespace

// ---------------------------------------------------------------------
// The interposed entry points. Shape shared by all of them:
//
//   if (reentered) forward to glibc     — resilock machinery on stack
//   guard + site-override scopes        — internals forward; lockstat
//                                         attributes to the app frame
//   route through registry + rl_* shim
//
// The guard must open BEFORE the registry call: adoption itself runs
// resilock machinery.
// ---------------------------------------------------------------------

extern "C" {

int pthread_mutex_init(pthread_mutex_t* m, const pthread_mutexattr_t* a) {
  if (ri::preload_reentered()) return real().mutex_init(m, a);
  ri::PreloadReentryScope guard;
  // Keep the underlying memory a valid REAL mutex too: exit-path code
  // running after the preload pins its thread (trace atexit) may route
  // this address to glibc, which must then find initialized state. An
  // init glibc rejects (EINVAL attr) must not leave a live adopted
  // handle behind a failure the app was told about.
  const int rc = real().mutex_init(m, a);
  if (rc != 0) return rc;
  reg().init_mutex(m);
  return 0;
}

int pthread_mutex_lock(pthread_mutex_t* m) {
  if (ri::preload_reentered()) return real().mutex_lock(m);
  ri::PreloadReentryScope guard;
  resilock::observe::InterposedSiteScope site(RESILOCK_RETURN_ADDRESS());
  return ri::rl_mutex_lock(reg().mutex_for(m));
}

int pthread_mutex_trylock(pthread_mutex_t* m) {
  if (ri::preload_reentered()) return real().mutex_trylock(m);
  ri::PreloadReentryScope guard;
  resilock::observe::InterposedSiteScope site(RESILOCK_RETURN_ADDRESS());
  return ri::rl_mutex_trylock(reg().mutex_for(m));
}

int pthread_mutex_timedlock(pthread_mutex_t* m, const timespec* abstime) {
  if (ri::preload_reentered()) return real().mutex_timedlock(m, abstime);
  ri::PreloadReentryScope guard;
  resilock::observe::InterposedSiteScope site(RESILOCK_RETURN_ADDRESS());
  return ri::rl_mutex_timedlock(reg().mutex_for(m), abstime);
}

int pthread_mutex_clocklock(pthread_mutex_t* m, clockid_t clockid,
                            const timespec* abstime) {
  if (ri::preload_reentered()) {
    if (real().mutex_clocklock != nullptr) {
      return real().mutex_clocklock(m, clockid, abstime);
    }
    timespec wall;
    const int rc = clock_deadline_to_realtime(clockid, abstime, &wall);
    return rc != 0 ? rc : real().mutex_timedlock(m, &wall);
  }
  ri::PreloadReentryScope guard;
  resilock::observe::InterposedSiteScope site(RESILOCK_RETURN_ADDRESS());
  timespec wall;
  const int rc = clock_deadline_to_realtime(clockid, abstime, &wall);
  if (rc != 0) return rc;
  return ri::rl_mutex_timedlock(reg().mutex_for(m), &wall);
}

int pthread_mutex_unlock(pthread_mutex_t* m) {
  if (ri::preload_reentered()) return real().mutex_unlock(m);
  ri::PreloadReentryScope guard;
  resilock::observe::InterposedSiteScope site(RESILOCK_RETURN_ADDRESS());
  // Unlock of a never-seen address still adopts: the shield then
  // reports it as a non-owner unlock (errorcheck EPERM) instead of
  // letting glibc corrupt — that IS the misuse class under test.
  return ri::rl_mutex_unlock(reg().mutex_for(m));
}

int pthread_mutex_destroy(pthread_mutex_t* m) {
  if (ri::preload_reentered()) return real().mutex_destroy(m);
  ri::PreloadReentryScope guard;
  const int rc = reg().destroy_mutex(m);
  real().mutex_destroy(m);
  return rc;
}

int pthread_rwlock_init(pthread_rwlock_t* rw,
                        const pthread_rwlockattr_t* a) {
  if (ri::preload_reentered()) return real().rwlock_init(rw, a);
  ri::PreloadReentryScope guard;
  const int rc = real().rwlock_init(rw, a);
  if (rc != 0) return rc;
  reg().init_rwlock(rw);
  return 0;
}

int pthread_rwlock_rdlock(pthread_rwlock_t* rw) {
  if (ri::preload_reentered()) return real().rwlock_rdlock(rw);
  ri::PreloadReentryScope guard;
  resilock::observe::InterposedSiteScope site(RESILOCK_RETURN_ADDRESS());
  return ri::rl_rwlock_rdlock(reg().rwlock_for(rw));
}

int pthread_rwlock_wrlock(pthread_rwlock_t* rw) {
  if (ri::preload_reentered()) return real().rwlock_wrlock(rw);
  ri::PreloadReentryScope guard;
  resilock::observe::InterposedSiteScope site(RESILOCK_RETURN_ADDRESS());
  return ri::rl_rwlock_wrlock(reg().rwlock_for(rw));
}

int pthread_rwlock_tryrdlock(pthread_rwlock_t* rw) {
  if (ri::preload_reentered()) return real().rwlock_tryrdlock(rw);
  ri::PreloadReentryScope guard;
  resilock::observe::InterposedSiteScope site(RESILOCK_RETURN_ADDRESS());
  return ri::rl_rwlock_tryrdlock(reg().rwlock_for(rw));
}

int pthread_rwlock_trywrlock(pthread_rwlock_t* rw) {
  if (ri::preload_reentered()) return real().rwlock_trywrlock(rw);
  ri::PreloadReentryScope guard;
  resilock::observe::InterposedSiteScope site(RESILOCK_RETURN_ADDRESS());
  return ri::rl_rwlock_trywrlock(reg().rwlock_for(rw));
}

int pthread_rwlock_timedrdlock(pthread_rwlock_t* rw,
                               const timespec* abstime) {
  if (ri::preload_reentered()) {
    return real().rwlock_timedrdlock(rw, abstime);
  }
  ri::PreloadReentryScope guard;
  resilock::observe::InterposedSiteScope site(RESILOCK_RETURN_ADDRESS());
  return ri::rl_rwlock_timedrdlock(reg().rwlock_for(rw), abstime);
}

int pthread_rwlock_timedwrlock(pthread_rwlock_t* rw,
                               const timespec* abstime) {
  if (ri::preload_reentered()) {
    return real().rwlock_timedwrlock(rw, abstime);
  }
  ri::PreloadReentryScope guard;
  resilock::observe::InterposedSiteScope site(RESILOCK_RETURN_ADDRESS());
  return ri::rl_rwlock_timedwrlock(reg().rwlock_for(rw), abstime);
}

int pthread_rwlock_clockrdlock(pthread_rwlock_t* rw, clockid_t clockid,
                               const timespec* abstime) {
  if (ri::preload_reentered()) {
    if (real().rwlock_clockrdlock != nullptr) {
      return real().rwlock_clockrdlock(rw, clockid, abstime);
    }
    timespec wall;
    const int rc = clock_deadline_to_realtime(clockid, abstime, &wall);
    return rc != 0 ? rc : real().rwlock_timedrdlock(rw, &wall);
  }
  ri::PreloadReentryScope guard;
  resilock::observe::InterposedSiteScope site(RESILOCK_RETURN_ADDRESS());
  timespec wall;
  const int rc = clock_deadline_to_realtime(clockid, abstime, &wall);
  if (rc != 0) return rc;
  return ri::rl_rwlock_timedrdlock(reg().rwlock_for(rw), &wall);
}

int pthread_rwlock_clockwrlock(pthread_rwlock_t* rw, clockid_t clockid,
                               const timespec* abstime) {
  if (ri::preload_reentered()) {
    if (real().rwlock_clockwrlock != nullptr) {
      return real().rwlock_clockwrlock(rw, clockid, abstime);
    }
    timespec wall;
    const int rc = clock_deadline_to_realtime(clockid, abstime, &wall);
    return rc != 0 ? rc : real().rwlock_timedwrlock(rw, &wall);
  }
  ri::PreloadReentryScope guard;
  resilock::observe::InterposedSiteScope site(RESILOCK_RETURN_ADDRESS());
  timespec wall;
  const int rc = clock_deadline_to_realtime(clockid, abstime, &wall);
  if (rc != 0) return rc;
  return ri::rl_rwlock_timedwrlock(reg().rwlock_for(rw), &wall);
}

int pthread_rwlock_unlock(pthread_rwlock_t* rw) {
  if (ri::preload_reentered()) return real().rwlock_unlock(rw);
  ri::PreloadReentryScope guard;
  resilock::observe::InterposedSiteScope site(RESILOCK_RETURN_ADDRESS());
  return ri::rl_rwlock_unlock(reg().rwlock_for(rw));
}

int pthread_rwlock_destroy(pthread_rwlock_t* rw) {
  if (ri::preload_reentered()) return real().rwlock_destroy(rw);
  ri::PreloadReentryScope guard;
  const int rc = reg().destroy_rwlock(rw);
  real().rwlock_destroy(rw);
  return rc;
}

int pthread_cond_wait(pthread_cond_t* c, pthread_mutex_t* m) {
  if (ri::preload_reentered()) return real().cond_wait(c, m);
  ri::PreloadReentryScope guard;
  resilock::observe::InterposedSiteScope site(RESILOCK_RETURN_ADDRESS());
  ri::rl_mutex_t* h = reg().find_mutex(m);
  // Unadopted mutex here means the caller never locked it through us —
  // already UB for cond_wait; glibc's own diagnosis is the best answer.
  if (h == nullptr) return real().cond_wait(c, m);
  return cond_wait_adopted(c, m, h, nullptr);
}

int pthread_cond_timedwait(pthread_cond_t* c, pthread_mutex_t* m,
                           const timespec* abstime) {
  if (ri::preload_reentered()) return real().cond_timedwait(c, m, abstime);
  ri::PreloadReentryScope guard;
  resilock::observe::InterposedSiteScope site(RESILOCK_RETURN_ADDRESS());
  ri::rl_mutex_t* h = reg().find_mutex(m);
  if (h == nullptr) return real().cond_timedwait(c, m, abstime);
  return cond_wait_adopted(c, m, h, abstime);
}

int pthread_cond_clockwait(pthread_cond_t* c, pthread_mutex_t* m,
                           clockid_t clockid, const timespec* abstime) {
  if (ri::preload_reentered()) {
    return real_cond_clockwait(c, m, clockid, abstime);
  }
  ri::PreloadReentryScope guard;
  resilock::observe::InterposedSiteScope site(RESILOCK_RETURN_ADDRESS());
  ri::rl_mutex_t* h = reg().find_mutex(m);
  if (h == nullptr) return real_cond_clockwait(c, m, clockid, abstime);
  return cond_clockwait_adopted(c, h, clockid, abstime);
}

int pthread_cond_signal(pthread_cond_t* c) {
  if (ri::preload_reentered()) return real().cond_signal(c);
  ri::PreloadReentryScope guard;
  pthread_mutex_t* shadow = shadows().shadow_of(c);
  real().mutex_lock(shadow);
  const int rc = real().cond_signal(c);
  real().mutex_unlock(shadow);
  return rc;
}

int pthread_cond_broadcast(pthread_cond_t* c) {
  if (ri::preload_reentered()) return real().cond_broadcast(c);
  ri::PreloadReentryScope guard;
  pthread_mutex_t* shadow = shadows().shadow_of(c);
  real().mutex_lock(shadow);
  const int rc = real().cond_broadcast(c);
  real().mutex_unlock(shadow);
  return rc;
}

int pthread_cond_destroy(pthread_cond_t* c) {
  if (ri::preload_reentered()) return real().cond_destroy(c);
  ri::PreloadReentryScope guard;
  shadows().reclaim(c);
  return real().cond_destroy(c);
}

}  // extern "C"

namespace {

__attribute__((constructor)) void preload_ctor() {
  // Resolve every real symbol before the first interposed call — no
  // lock operation should ever enter the dynamic linker.
  ri::PreloadReentryScope guard;
  (void)real();
  if (resilock::platform::env_flag("RESILOCK_PRELOAD_VERBOSE", false)) {
    std::fprintf(stderr, "resilock_preload: active (shield=%d)\n",
                 ri::shield_interposition_enabled() ? 1 : 0);
  }
}

__attribute__((destructor)) void preload_dtor() {
  // Library destructors run after atexit handlers; anything later on
  // this thread (other .so destructors) must bypass adoption.
  ri::preload_pin_thread();
  if (const char* path =
          resilock::platform::env_raw("RESILOCK_PRELOAD_STATS_FILE")) {
    std::FILE* f = std::fopen(path, "w");
    if (f != nullptr) {
      const ri::PreloadRegistryStats s =
          ri::PreloadRegistry::instance().stats();
      std::fprintf(
          f,
          "{\"adopted_mutexes\":%llu,\"init_mutexes\":%llu,"
          "\"destroyed_mutexes\":%llu,\"adopted_rwlocks\":%llu,"
          "\"init_rwlocks\":%llu,\"destroyed_rwlocks\":%llu,"
          "\"live_nodes\":%llu}\n",
          static_cast<unsigned long long>(s.adopted_mutexes),
          static_cast<unsigned long long>(s.init_mutexes),
          static_cast<unsigned long long>(s.destroyed_mutexes),
          static_cast<unsigned long long>(s.adopted_rwlocks),
          static_cast<unsigned long long>(s.init_rwlocks),
          static_cast<unsigned long long>(s.destroyed_rwlocks),
          static_cast<unsigned long long>(s.live_nodes));
      std::fclose(f);
    }
  }
}

}  // namespace
