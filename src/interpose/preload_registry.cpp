#include "interpose/preload_registry.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "interpose/reentry.hpp"
#include "interpose/transparent_mutex.hpp"
#include "platform/spin.hpp"

namespace resilock::interpose {

namespace {

// One node per distinct lock address ever seen. `state` is the only
// field readers synchronize on: kLive is release-published after the
// handle is fully constructed, so an acquire load of kLive makes the
// handle visible. Nodes are never freed (see the header's rationale).
template <typename Handle>
struct Node {
  const void* key;
  Handle handle{nullptr};
  std::atomic<int> state{0};  // 0 = tombstone, 1 = live
  Node* next = nullptr;       // written before head publication
};

constexpr int kTombstone = 0;
constexpr int kLive = 1;

struct MutexTraits {
  using Handle = rl_mutex_t;
  static constexpr const char* kKind = "mutex";
  static int make(Handle* h) {
    return rl_mutex_init(
        h, nullptr, default_resilience() == kResilient ? 1 : 0);
  }
  static int make_fallback(Handle* h) {
    // A bogus RESILOCK_ALGO must not wedge an interposed program whose
    // lock operations have no error path; fall back to the default.
    return rl_mutex_init(h, "MCS", 1);
  }
  static void destroy(Handle* h) { rl_mutex_destroy(h); }
};

struct RwlockTraits {
  using Handle = rl_rwlock_t;
  static constexpr const char* kKind = "rwlock";
  static int make(Handle* h) {
    return rl_rwlock_init(
        h, nullptr, default_resilience() == kResilient ? 1 : 0);
  }
  static int make_fallback(Handle* h) { return rl_rwlock_init(h, "np", 1); }
  static void destroy(Handle* h) { rl_rwlock_destroy(h); }
};

template <typename Traits>
class Table {
  using Handle = typename Traits::Handle;
  using N = Node<Handle>;

 public:
  Handle* adopt_or_get(const void* addr, std::atomic<std::uint64_t>& adopted,
                       std::atomic<std::uint64_t>& nodes) {
    const std::size_t b = bucket_of(addr);
    if (N* n = find_in(b, addr);
        n != nullptr && n->state.load(std::memory_order_acquire) == kLive) {
      return &n->handle;
    }
    BucketLock lk(buckets_[b]);
    N* n = find_in(b, addr);
    if (n == nullptr) {
      n = new_node(b, addr);
      nodes.fetch_add(1, std::memory_order_relaxed);
    }
    if (n->state.load(std::memory_order_relaxed) != kLive) {
      make_handle(n);
      adopted.fetch_add(1, std::memory_order_relaxed);
    }
    return &n->handle;
  }

  Handle* find(const void* addr) {
    N* n = find_in(bucket_of(addr), addr);
    if (n == nullptr ||
        n->state.load(std::memory_order_acquire) != kLive) {
      return nullptr;
    }
    return &n->handle;
  }

  Handle* init(const void* addr, std::atomic<std::uint64_t>& inits,
               std::atomic<std::uint64_t>& nodes) {
    const std::size_t b = bucket_of(addr);
    BucketLock lk(buckets_[b]);
    N* n = find_in(b, addr);
    if (n == nullptr) {
      n = new_node(b, addr);
      nodes.fetch_add(1, std::memory_order_relaxed);
    } else if (n->state.load(std::memory_order_relaxed) == kLive) {
      // Re-init of a live address: honor it (the old handle's state is
      // the caller's UB to own, the fresh handle is ours to provide).
      n->state.store(kTombstone, std::memory_order_release);
      Traits::destroy(&n->handle);
    }
    make_handle(n);
    inits.fetch_add(1, std::memory_order_relaxed);
    return &n->handle;
  }

  int destroy(const void* addr, std::atomic<std::uint64_t>& destroys) {
    const std::size_t b = bucket_of(addr);
    BucketLock lk(buckets_[b]);
    N* n = find_in(b, addr);
    if (n == nullptr ||
        n->state.load(std::memory_order_relaxed) != kLive) {
      // Never adopted (e.g. destroy of an unused static initializer):
      // nothing of ours to tear down.
      return 0;
    }
    n->state.store(kTombstone, std::memory_order_release);
    Traits::destroy(&n->handle);
    destroys.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }

 private:
  static constexpr std::size_t kBuckets = 2048;

  struct Bucket {
    std::atomic<N*> head{nullptr};
    std::atomic_flag mu = ATOMIC_FLAG_INIT;
  };

  class BucketLock {
   public:
    explicit BucketLock(Bucket& b) : b_(b) {
      platform::SpinWait w;
      while (b_.mu.test_and_set(std::memory_order_acquire)) w.pause();
    }
    ~BucketLock() { b_.mu.clear(std::memory_order_release); }
    BucketLock(const BucketLock&) = delete;
    BucketLock& operator=(const BucketLock&) = delete;

   private:
    Bucket& b_;
  };

  static std::size_t bucket_of(const void* addr) noexcept {
    auto h = reinterpret_cast<std::uintptr_t>(addr);
    h ^= h >> 16;
    h *= 0x9E3779B97F4A7C15ull;  // Fibonacci mix
    return (h >> 32) & (kBuckets - 1);
  }

  N* find_in(std::size_t b, const void* addr) const noexcept {
    for (N* n = buckets_[b].head.load(std::memory_order_acquire);
         n != nullptr; n = n->next) {
      if (n->key == addr) return n;
    }
    return nullptr;
  }

  // Caller holds the bucket lock. The node is published tombstoned;
  // only the kLive store makes the handle reachable to lock-free
  // readers.
  N* new_node(std::size_t b, const void* addr) {
    N* n = new (std::nothrow) N;
    if (n == nullptr) {
      std::fprintf(stderr,
                   "resilock_preload: out of memory adopting %p\n", addr);
      std::abort();
    }
    n->key = addr;
    n->next = buckets_[b].head.load(std::memory_order_relaxed);
    buckets_[b].head.store(n, std::memory_order_release);
    return n;
  }

  // Caller holds the bucket lock; node state is kTombstone.
  void make_handle(N* n) {
    // Guarded: handle construction runs resilock machinery (registry
    // lookup, shield wrap, lockdep class registration, telemetry
    // autostart) whose own pthread calls must reach glibc, not the
    // interposition layer that called us.
    PreloadReentryScope guard;
    if (Traits::make(&n->handle) != 0 &&
        Traits::make_fallback(&n->handle) != 0) {
      std::fprintf(stderr,
                   "resilock_preload: cannot construct %s for %p\n",
                   Traits::kKind, n->key);
      std::abort();
    }
    n->state.store(kLive, std::memory_order_release);
  }

  Bucket buckets_[kBuckets];
};

}  // namespace

struct PreloadRegistry::Impl {
  Table<MutexTraits> mutexes;
  Table<RwlockTraits> rwlocks;
  std::atomic<std::uint64_t> adopted_mutexes{0};
  std::atomic<std::uint64_t> init_mutexes{0};
  std::atomic<std::uint64_t> destroyed_mutexes{0};
  std::atomic<std::uint64_t> adopted_rwlocks{0};
  std::atomic<std::uint64_t> init_rwlocks{0};
  std::atomic<std::uint64_t> destroyed_rwlocks{0};
  std::atomic<std::uint64_t> live_nodes{0};
};

PreloadRegistry::PreloadRegistry() : impl_(new Impl) {}

PreloadRegistry& PreloadRegistry::instance() {
  static PreloadRegistry* inst = new PreloadRegistry;
  return *inst;
}

rl_mutex_t* PreloadRegistry::mutex_for(const void* addr) {
  return impl_->mutexes.adopt_or_get(addr, impl_->adopted_mutexes,
                                     impl_->live_nodes);
}

rl_mutex_t* PreloadRegistry::find_mutex(const void* addr) {
  return impl_->mutexes.find(addr);
}

rl_mutex_t* PreloadRegistry::init_mutex(const void* addr) {
  return impl_->mutexes.init(addr, impl_->init_mutexes,
                             impl_->live_nodes);
}

int PreloadRegistry::destroy_mutex(const void* addr) {
  return impl_->mutexes.destroy(addr, impl_->destroyed_mutexes);
}

rl_rwlock_t* PreloadRegistry::rwlock_for(const void* addr) {
  return impl_->rwlocks.adopt_or_get(addr, impl_->adopted_rwlocks,
                                     impl_->live_nodes);
}

rl_rwlock_t* PreloadRegistry::find_rwlock(const void* addr) {
  return impl_->rwlocks.find(addr);
}

rl_rwlock_t* PreloadRegistry::init_rwlock(const void* addr) {
  return impl_->rwlocks.init(addr, impl_->init_rwlocks,
                             impl_->live_nodes);
}

int PreloadRegistry::destroy_rwlock(const void* addr) {
  return impl_->rwlocks.destroy(addr, impl_->destroyed_rwlocks);
}

PreloadRegistryStats PreloadRegistry::stats() const noexcept {
  PreloadRegistryStats s;
  s.adopted_mutexes =
      impl_->adopted_mutexes.load(std::memory_order_relaxed);
  s.init_mutexes = impl_->init_mutexes.load(std::memory_order_relaxed);
  s.destroyed_mutexes =
      impl_->destroyed_mutexes.load(std::memory_order_relaxed);
  s.adopted_rwlocks =
      impl_->adopted_rwlocks.load(std::memory_order_relaxed);
  s.init_rwlocks = impl_->init_rwlocks.load(std::memory_order_relaxed);
  s.destroyed_rwlocks =
      impl_->destroyed_rwlocks.load(std::memory_order_relaxed);
  s.live_nodes = impl_->live_nodes.load(std::memory_order_relaxed);
  return s;
}

}  // namespace resilock::interpose
