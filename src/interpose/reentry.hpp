// Interposition reentrancy guard.
//
// When libresilock_preload.so overrides pthread_mutex_lock for a whole
// process, EVERY pthread call in the process routes through it —
// including the ones resilock itself makes while servicing an
// interposed call (lockdep's graph mutex, the telemetry collector's
// lifecycle locks, libstdc++ internals reached through make_lock).
// Adopting those would recurse: adopting lockdep's own mutex requires
// registering a lockdep class, which locks that same mutex.
//
// The guard is a per-thread depth counter. Every preload entry point
// bumps it for the duration of the rl_* call it forwards to, so any
// pthread call made WHILE resilock code is on the stack sees a nonzero
// depth and forwards straight to the real glibc symbol. The invariant
// that falls out: resilock-internal locks are only ever operated
// through the real implementation, never adopted — by construction,
// because resilock code only runs inside guarded frames or on pinned
// threads.
//
// Threads that run resilock code OUTSIDE an interposed frame (the
// telemetry collector's duty cycle is the one such thread today) pin
// themselves permanently with preload_pin_thread() at thread start.
#pragma once

#include <cstdint>

namespace resilock::interpose {

namespace detail {
inline thread_local std::uint32_t preload_depth = 0;
}  // namespace detail

// Nonzero while resilock machinery is on the calling thread's stack
// (or the thread is pinned): the preload must forward to glibc.
inline bool preload_reentered() noexcept {
  return detail::preload_depth != 0;
}

// Permanently route this thread's pthread calls to the real
// implementation. Called at the top of resilock-owned threads (the
// telemetry collector) whose entire lifetime is internal machinery.
inline void preload_pin_thread() noexcept {
  detail::preload_depth |= 0x8000'0000u;
}

class PreloadReentryScope {
 public:
  PreloadReentryScope() noexcept { ++detail::preload_depth; }
  ~PreloadReentryScope() { --detail::preload_depth; }
  PreloadReentryScope(const PreloadReentryScope&) = delete;
  PreloadReentryScope& operator=(const PreloadReentryScope&) = delete;
};

}  // namespace resilock::interpose
