// C-style pthread_mutex-compatible shim.
//
// The paper's §7 compares the in-protocol remedies against API-level
// error reporting (PTHREAD_MUTEX_ERRORCHECK returns EPERM on an unlock
// by a non-owner; Golang panics). This shim provides exactly that
// contract over any resilock algorithm, completing the LiTL analogy: C
// code written against the pthread shapes links against these functions
// and gets both the chosen algorithm and errorcheck semantics.
//
//   rl_mutex_t m;
//   rl_mutex_init(&m, "MCS", 1);   // algorithm + resilient flag
//   rl_mutex_lock(&m);             // 0 on success
//   rl_mutex_unlock(&m);           // 0, or EPERM on unbalanced unlock
//   rl_mutex_destroy(&m);
//
// NULL algorithm selects the environment default (RESILOCK_ALGO), as
// LiTL does.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace resilock::interpose {

struct rl_mutex_t {
  void* impl;  // owned; opaque to C callers
};

// True unless RESILOCK_SHIELD=0: interposed mutexes are wrapped in the
// generic ownership shield (src/shield/), so misuse is intercepted
// before the selected protocol sees it — protection "for free" even for
// algorithms with no bespoke resilient variant.
bool shield_interposition_enabled();

// The registry name an interposed mutex should instantiate for `base`:
// upgrades to "shield<base>" when shield interposition is on, the name
// is not already a shield composite, and the composite is registered.
// The C shim applies this to EVERY rl_mutex_init (explicit algorithm
// names included — C callers are the "interposed program" the shield
// protects for free); TransparentMutex applies it only to its
// environment-selected default, since its explicit constructor is the
// in-process C++ API where callers name an exact registry entry.
std::string interposed_lock_name(std::string_view base);

// Returns 0 on success, EINVAL for an unknown algorithm name. The
// mutex is routed through the ownership shield (even for an explicitly
// named algorithm; `resilient` selects the BASE flavor behind it)
// unless RESILOCK_SHIELD=0 — set that to study an algorithm's bare
// misuse behavior through this API.
int rl_mutex_init(rl_mutex_t* m, const char* algorithm, int resilient);

// Returns 0. Blocks until the lock is held.
int rl_mutex_lock(rl_mutex_t* m);

// Returns 0 if the lock was taken, EBUSY otherwise.
int rl_mutex_trylock(rl_mutex_t* m);

// Returns 0 on a balanced unlock, EPERM when the algorithm detected an
// unbalanced unlock (errorcheck semantics; only resilient algorithms
// detect — originals return 0 and corrupt, faithfully).
int rl_mutex_unlock(rl_mutex_t* m);

// Returns 0; EBUSY if the mutex pointer is null or already destroyed.
int rl_mutex_destroy(rl_mutex_t* m);

}  // namespace resilock::interpose
