// C-style pthread_mutex-compatible shim.
//
// The paper's §7 compares the in-protocol remedies against API-level
// error reporting (PTHREAD_MUTEX_ERRORCHECK returns EPERM on an unlock
// by a non-owner; Golang panics). This shim provides exactly that
// contract over any resilock algorithm, completing the LiTL analogy: C
// code written against the pthread shapes links against these functions
// and gets both the chosen algorithm and errorcheck semantics.
//
//   rl_mutex_t m;
//   rl_mutex_init(&m, "MCS", 1);   // algorithm + resilient flag
//   rl_mutex_lock(&m);             // 0 on success
//   rl_mutex_unlock(&m);           // 0, or EPERM on unbalanced unlock
//   rl_mutex_destroy(&m);
//
// NULL algorithm selects the environment default (RESILOCK_ALGO), as
// LiTL does.
#pragma once

#include <cstdint>
#include <ctime>
#include <string>
#include <string_view>

namespace resilock::interpose {

struct rl_mutex_t {
  void* impl;  // owned; opaque to C callers
};

// True unless RESILOCK_SHIELD=0: interposed mutexes are wrapped in the
// generic ownership shield (src/shield/), so misuse is intercepted
// before the selected protocol sees it — protection "for free" even for
// algorithms with no bespoke resilient variant.
bool shield_interposition_enabled();

// The registry name an interposed mutex should instantiate for `base`:
// upgrades to "shield<base>" when shield interposition is on, the name
// is not already a shield composite, and the composite is registered.
// The C shim applies this to EVERY rl_mutex_init (explicit algorithm
// names included — C callers are the "interposed program" the shield
// protects for free); TransparentMutex applies it only to its
// environment-selected default, since its explicit constructor is the
// in-process C++ API where callers name an exact registry entry.
std::string interposed_lock_name(std::string_view base);

// Returns 0 on success, EINVAL for an unknown algorithm name. The
// mutex is routed through the ownership shield (even for an explicitly
// named algorithm; `resilient` selects the BASE flavor behind it)
// unless RESILOCK_SHIELD=0 — set that to study an algorithm's bare
// misuse behavior through this API.
int rl_mutex_init(rl_mutex_t* m, const char* algorithm, int resilient);

// Returns 0. Blocks until the lock is held.
int rl_mutex_lock(rl_mutex_t* m);

// Returns 0 if the lock was taken, EBUSY otherwise.
int rl_mutex_trylock(rl_mutex_t* m);

// pthread_mutex_timedlock shape: blocks until the lock is acquired or
// the CLOCK_REALTIME absolute deadline passes. Returns 0 on
// acquisition, ETIMEDOUT when the deadline expired with the lock still
// held elsewhere, EINVAL for a null/malformed abstime. The timed wait
// runs outside the queue protocol (park::TimedGate over the trylock
// path — a queue slot cannot be abandoned mid-wait), so a timeout adds
// no lockdep order edges, same contract as a failed trylock. An
// algorithm whose trylock is emulated by blocking (supports_trylock()
// false — CLH) degrades to a plain blocking lock, documented behavior.
int rl_mutex_timedlock(rl_mutex_t* m, const timespec* abstime);

// Returns 0 on a balanced unlock, EPERM when the algorithm detected an
// unbalanced unlock (errorcheck semantics; only resilient algorithms
// detect — originals return 0 and corrupt, faithfully).
int rl_mutex_unlock(rl_mutex_t* m);

// Returns 0; EBUSY if the mutex pointer is null or already destroyed.
int rl_mutex_destroy(rl_mutex_t* m);

// ---------------------------------------------------------------------
// pthread_rwlock-shaped shim over the C-RW family (core/rw/crw.hpp).
//
// pthread_rwlock_unlock is ONE entry point for both modes; the C-RW
// protocols have two (runlock/wunlock). The mode-aware shield
// (RwShield, shield/rw_shield.hpp) is what makes the single-unlock
// contract implementable: the per-thread held-locks table records
// whether the caller holds the lock in read or write mode, and the
// unlock routes to the matching side — or reports EPERM when the
// caller holds nothing (errorcheck semantics). With RESILOCK_SHIELD=0
// the bare protocol is exposed; unlock then demultiplexes on the
// wrapper's own write-owner note and misuse corrupts faithfully, as
// the paper's §4 analysis describes.
// ---------------------------------------------------------------------

struct rl_rwlock_t {
  void* impl;  // owned; opaque to C callers
};

// `preference` selects the C-RW variant: "np"/"neutral" (default, also
// the RESILOCK_RW_PREF fallback when NULL), "rp"/"reader",
// "wp"/"writer". `resilient` selects the base flavor (W-side ticket
// remedy; the R side is protected by the shield, which is the repo's
// answer to §4's open problem). Returns 0, or EINVAL for an unknown
// preference.
int rl_rwlock_init(rl_rwlock_t* rw, const char* preference, int resilient);

// Return 0. Block until granted.
int rl_rwlock_rdlock(rl_rwlock_t* rw);
int rl_rwlock_wrlock(rl_rwlock_t* rw);

// Return 0 if granted, EBUSY if the acquisition would have blocked
// (pthread_rwlock_tryrdlock/trywrlock semantics). Trylocks add no
// lockdep order edges — an acquisition that cannot block cannot
// contribute to a deadlock cycle — but a granted trylock still enters
// the caller's held set, so the mode-aware unlock routing and misuse
// interception see it exactly like a blocking acquisition.
int rl_rwlock_tryrdlock(rl_rwlock_t* rw);
int rl_rwlock_trywrlock(rl_rwlock_t* rw);

// pthread_rwlock_timedrdlock/timedwrlock shapes; same semantics as
// rl_mutex_timedlock (0 / ETIMEDOUT / EINVAL, no lockdep edges on
// timeout). Both modes wait on one gate per rwlock; a wake is a
// broadcast and each waiter re-tries its own mode.
int rl_rwlock_timedrdlock(rl_rwlock_t* rw, const timespec* abstime);
int rl_rwlock_timedwrlock(rl_rwlock_t* rw, const timespec* abstime);

// Returns 0 on a balanced unlock of either mode, EPERM when the shield
// intercepted a misuse (unbalanced read unlock, mode mismatch,
// non-owner write unlock).
int rl_rwlock_unlock(rl_rwlock_t* rw);

// Returns 0; EBUSY if the pointer is null or already destroyed.
int rl_rwlock_destroy(rl_rwlock_t* rw);

}  // namespace resilock::interpose
