#include "telemetry/sink.hpp"

#include <cstdio>
#include <map>
#include <set>
#include <string_view>
#include <tuple>
#include <utility>

#include "core/access_mode.hpp"
#include "lockdep/lockdep.hpp"
#include "lockdep/trace_export.hpp"
#include "platform/env.hpp"
#include "platform/json.hpp"
#include "response/response.hpp"

namespace resilock::telemetry {

namespace {

// Big enough that a full drain cycle of a default-sized ring set
// accumulates in userspace and hits the kernel as one append.
constexpr std::size_t kStreamBuf = 1 << 18;

class FileSink : public Sink {
 public:
  FileSink(std::FILE* f, std::unique_ptr<char[]> buf)
      : f_(f), buf_(std::move(buf)) {}
  ~FileSink() override { FileSink::close(); }

  void flush() override {
    if (f_ != nullptr) std::fflush(f_);
  }

  void close() override {
    if (f_ == nullptr) return;
    std::fclose(f_);
    f_ = nullptr;
  }

  std::uint64_t written() const noexcept override { return written_; }

 protected:
  std::FILE* f_ = nullptr;
  std::uint64_t written_ = 0;

 private:
  std::unique_ptr<char[]> buf_;  // stdio stream buffer, owned here
};

std::FILE* open_buffered(const char* path, const char* mode,
                         std::unique_ptr<char[]>& buf) {
  std::FILE* f = std::fopen(path, mode);
  if (f == nullptr) {
    std::fprintf(stderr, "resilock[telemetry]: cannot open %s\n", path);
    return nullptr;
  }
  buf.reset(new char[kStreamBuf]);
  std::setvbuf(f, buf.get(), _IOFBF, kStreamBuf);
  return f;
}

// ---------------------------------------------------------------------
// JSONL: trace_export's line schema, streamed instead of atexit-dumped.
// ---------------------------------------------------------------------

class JsonlSink final : public FileSink {
 public:
  using FileSink::FileSink;

  const char* name() const noexcept override { return "jsonl"; }

  void consume(const lockdep::TraceEvent& e) override {
    if (f_ == nullptr) return;
    lockdep::write_event_jsonl(f_, e);
    ++written_;
  }
};

// ---------------------------------------------------------------------
// Perfetto / chrome-trace JSON.
//
// Events stream into the array as they drain; only close() writes the
// "]}"` tail. Span begin markers are held back and paired with their
// end on the consumer side — emitting ph:"X" complete events instead
// of B/E pairs, because lock holds legally overlap without nesting
// (acquire A, acquire B, release A) and B/E tracks would render that
// as corruption.
// ---------------------------------------------------------------------

class PerfettoSink final : public FileSink {
 public:
  PerfettoSink(std::FILE* f, std::unique_ptr<char[]> buf)
      : FileSink(f, std::move(buf)) {
    std::fputs("{\"traceEvents\":[", f_);
    emit_meta("process_name", 0, "resilock");
  }

  ~PerfettoSink() override { PerfettoSink::close(); }

  const char* name() const noexcept override { return "perfetto"; }

  void consume(const lockdep::TraceEvent& e) override {
    if (f_ == nullptr) return;
    note_thread(e.pid);
    using lockdep::EventKind;
    switch (e.kind) {
      case EventKind::kHoldBegin:
        open_[{e.pid, e.lock, kHold}] = OpenSpan{e.ns, e.site};
        return;  // counted when the slice closes
      case EventKind::kWaitBegin:
        open_[{e.pid, e.lock, kWait}] = OpenSpan{e.ns, e.site};
        return;
      case EventKind::kHoldEnd:
        close_span(e, kHold, "lock-hold");
        return;
      case EventKind::kWaitEnd:
        close_span(e, kWait, "lock-wait");
        return;
      case EventKind::kParkBegin:
        open_[{e.pid, e.lock, kPark}] = OpenSpan{e.ns, e.site};
        return;
      case EventKind::kParkEnd:
        close_span(e, kPark, "lock-park");
        return;
      default:
        break;
    }
    // Misuse / lockdep reports: instant events, thread-scoped.
    comma();
    std::fprintf(f_,
                 "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,"
                 "\"pid\":0,\"tid\":%u,\"args\":{\"lock\":\"%p\"",
                 to_string(e.kind), us(e.ns), static_cast<unsigned>(e.pid),
                 e.lock);
    if (e.kind == EventKind::kOrderInversion ||
        e.kind == EventKind::kDeadlockCycle) {
      std::fprintf(f_, ",\"a\":%u,\"b\":%u", static_cast<unsigned>(e.a),
                   static_cast<unsigned>(e.b));
    } else if (e.a != lockdep::kNoClassTag) {
      std::fprintf(f_, ",\"cls\":%u", static_cast<unsigned>(e.a));
      emit_cls_label(e.a);
    }
    if (e.mode != lockdep::kNoMode) {
      std::fprintf(f_, ",\"mode\":\"%s\",\"readers\":%u",
                   to_string(static_cast<AccessMode>(e.mode)),
                   static_cast<unsigned>(e.readers));
    }
    if (e.verdict != lockdep::kNoVerdict && e.verdict < response::kActions) {
      std::fprintf(f_, ",\"verdict\":\"%s\"",
                   to_string(static_cast<response::Action>(e.verdict)));
    }
    std::fputs("}}", f_);
    ++written_;
  }

  void close() override {
    if (f_ == nullptr) return;
    std::fputs("]}\n", f_);
    FileSink::close();
  }

 private:
  enum SpanClass : std::uint8_t { kHold = 0, kWait = 1, kPark = 2 };
  // (thread, lock, hold|wait) -> the open span's begin state.
  using Key = std::tuple<std::uint32_t, const void*, std::uint8_t>;
  struct OpenSpan {
    std::uint64_t ns = 0;
    std::uint64_t site = 0;  // acquisition call site from the begin event
  };

  static double us(std::uint64_t ns) {
    return static_cast<double>(ns) / 1000.0;
  }

  void comma() {
    if (any_) std::fputc(',', f_);
    any_ = true;
  }

  void emit_meta(const char* what, std::uint32_t tid, const char* name) {
    comma();
    // Metadata names can carry user text (thread names are ours today,
    // but the escaper costs nothing and closes the door).
    std::fprintf(f_, "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":0,\"tid\":%u,"
                 "\"args\":{\"name\":",
                 what, static_cast<unsigned>(tid));
    platform::write_json_escaped(f_, name);
    std::fputs("}}", f_);
  }

  // Class label as an escaped arg (user-controlled string).
  void emit_cls_label(std::uint32_t cls) {
    if (const char* label = lockdep::Graph::instance().label_of(cls)) {
      std::fputs(",\"cls_label\":", f_);
      platform::write_json_escaped(f_, label);
    }
  }

  void note_thread(std::uint32_t pid) {
    if (named_.insert(pid).second) {
      char label[32];
      std::snprintf(label, sizeof label, "resilock-pid-%u",
                    static_cast<unsigned>(pid));
      emit_meta("thread_name", pid, label);
    }
  }

  void close_span(const lockdep::TraceEvent& e, SpanClass sc,
                  const char* slice) {
    const auto it = open_.find({e.pid, e.lock, sc});
    if (it == open_.end()) return;  // end without a begin (ring dropped it)
    const OpenSpan begin = it->second;
    open_.erase(it);
    comma();
    std::fprintf(f_,
                 "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                 "\"pid\":0,\"tid\":%u,\"args\":{\"lock\":\"%p\"",
                 slice, us(begin.ns), us(e.ns - begin.ns),
                 static_cast<unsigned>(e.pid), e.lock);
    if (e.a != lockdep::kNoClassTag) {
      std::fprintf(f_, ",\"cls\":%u", static_cast<unsigned>(e.a));
      emit_cls_label(e.a);
    }
    if (e.mode != lockdep::kNoMode) {
      std::fprintf(f_, ",\"mode\":\"%s\"",
                   to_string(static_cast<AccessMode>(e.mode)));
    }
    if (begin.site != 0) {
      std::fprintf(f_, ",\"site\":\"0x%llx\"",
                   static_cast<unsigned long long>(begin.site));
    }
    std::fputs("}}", f_);
    ++written_;
  }

  bool any_ = false;
  std::map<Key, OpenSpan> open_;
  std::set<std::uint32_t> named_;
};

}  // namespace

std::unique_ptr<Sink> make_jsonl_sink(const char* path) {
  std::unique_ptr<char[]> buf;
  // Append: JSONL concatenates across dumps and runs, same as the
  // atexit exporter it upgrades.
  std::FILE* f = open_buffered(path, "a", buf);
  if (f == nullptr) return nullptr;
  return std::make_unique<JsonlSink>(f, std::move(buf));
}

std::unique_ptr<Sink> make_perfetto_sink(const char* path) {
  std::unique_ptr<char[]> buf;
  // Truncate: a chrome-trace file is one document, not a log.
  std::FILE* f = open_buffered(path, "w", buf);
  if (f == nullptr) return nullptr;
  return std::make_unique<PerfettoSink>(f, std::move(buf));
}

std::unique_ptr<Sink> make_sink_from_env() {
  const char* path = platform::env_raw("RESILOCK_TRACE_FILE");
  if (path == nullptr) return nullptr;
  const char* fmt = platform::env_raw("RESILOCK_TRACE_FORMAT");
  if (fmt != nullptr && std::string_view(fmt) == "perfetto") {
    return make_perfetto_sink(path);
  }
  if (fmt != nullptr && std::string_view(fmt) != "jsonl") {
    std::fprintf(stderr,
                 "resilock[telemetry]: unknown RESILOCK_TRACE_FORMAT "
                 "'%s', using jsonl\n",
                 fmt);
  }
  return make_jsonl_sink(path);
}

}  // namespace resilock::telemetry
