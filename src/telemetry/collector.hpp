// Background trace collector — the live half of the observability
// plane (ROADMAP: "background collector with a bounded duty cycle,
// batched writes, drop accounting").
//
// The atexit JSONL dump works for short runs; a production service
// emitting misuse and span events for hours overflows the 128-entry
// rings in microseconds. The collector is one background thread that
// drains every TraceBuffer ring on an ADAPTIVE duty cycle:
//
//   empty drain  -> sleep doubles (50us .. 5ms) — an idle process
//                   costs a few hundred wakeups/sec at worst, and
//                   near-zero once backed off;
//   busy drain   -> sleep resets to the 50us floor;
//   full batch   -> no sleep at all; re-drain immediately until the
//                   producers stop outrunning us ("drain hard").
//
// Every drained event goes to each attached sink (sink.hpp) inside
// one buffered write cycle; sinks are flushed once per cycle, so disk
// traffic is batched appends. Producers never block and never wait on
// the collector — when they outrun it, rings drop the newest events
// and COUNT them; the collector surfaces those counts (and its own
// delivery counters) through stats(), which the metrics registry
// snapshots. Accounting is exact: emitted == delivered + dropped +
// still-queued, and after a final drain the queue term is zero.
//
// Lifecycle: start() is lazy and idempotent — called on the first
// trace emission via lockdep::telemetry_first_use_hook() when
// RESILOCK_TELEMETRY=1 (or explicitly by embedders). stop() requests,
// joins, runs a final drain, and CLOSES the sinks so single-document
// formats (perfetto) are finalized; a subsequent start() rebuilds the
// sink set from the environment. The same stop path runs inside the
// response engine's abort-flush hook, which is how an aborting verdict
// stopped losing its trace.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "telemetry/sink.hpp"

namespace resilock::telemetry {

struct CollectorStats {
  bool running = false;
  std::uint64_t events_delivered = 0;  // popped from rings, fed to sinks
  std::uint64_t events_written = 0;    // max over sinks (all see each event)
  std::uint64_t events_dropped = 0;    // TraceBuffer drop total at snapshot
  std::uint64_t events_emitted = 0;    // TraceBuffer emit attempts
  std::uint64_t drain_cycles = 0;
  std::uint64_t empty_cycles = 0;
  std::uint64_t hard_drains = 0;       // full-batch cycles, slept 0
  std::uint64_t sleep_us = 0;          // current adaptive sleep (gauge)
  std::uint64_t metrics_dumps = 0;
  std::uint64_t lockstat_dumps = 0;    // periodic + signal-triggered
};

class Collector {
 public:
  static Collector& instance();

  // Starts the background thread if it is not running. Sinks present
  // from add_sink() are kept; otherwise the set is built from
  // RESILOCK_TRACE_FILE / RESILOCK_TRACE_FORMAT. True when the
  // collector is running on return.
  bool start();

  // Stops the thread (if running), runs a final drain, flushes and
  // closes all sinks. Safe to call when not running (still closes
  // sinks and drains once — the abort path relies on that).
  void stop();

  bool running() const noexcept;

  // Attach a sink (used by tests and embedders; production attaches
  // via environment). Takes effect for events drained after the call.
  void add_sink(std::unique_ptr<Sink> sink);

  // Drain rings into the attached sinks right now, on the calling
  // thread (respects TraceBuffer's single-consumer guard: returns 0 if
  // the background thread is mid-drain). Events delivered.
  std::size_t drain_now();

  // Lock-free; callable from the metrics registry while the collector
  // itself is dumping metrics.
  CollectorStats stats() const noexcept;

 private:
  Collector();
  ~Collector();
  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  struct Impl;
  Impl* impl_;
};

// Starts the collector iff RESILOCK_TELEMETRY is truthy. Called from
// the first-use hook and from interpose init; idempotent.
void autostart_from_env();

// The response engine's flush-before-abort hook (installed by the
// first-use hook): stops a running collector — final drain, sinks
// closed, documents finalized — or, when the collector never ran,
// dumps the queued events as JSONL to RESILOCK_TRACE_FILE. This is
// what keeps an aborting verdict from losing its own trace.
void flush_for_abort();

}  // namespace resilock::telemetry
