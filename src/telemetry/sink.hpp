// Pluggable trace sinks for the background collector.
//
// The collector (collector.hpp) drains TraceBuffer's SPSC rings and
// feeds every event to each attached sink; a sink turns the stream
// into some on-disk artifact. Two ship with the library:
//
//   jsonl     one JSON object per line, append-mode — the same schema
//             as trace_export (the formatter IS trace_export's
//             write_event_jsonl, so the two cannot drift). Greppable,
//             concatenates across runs.
//   perfetto  a chrome-trace JSON document ({"traceEvents":[...]})
//             loadable in chrome://tracing and ui.perfetto.dev:
//             misuse / inversion / cycle reports as instant events and
//             — with RESILOCK_TELEMETRY_SPANS on — lock-hold and
//             contention-wait spans as complete ("X") slices, all on
//             per-thread tracks. Unlike JSONL it is a single document:
//             the file is only valid after close(), which is why the
//             collector closes sinks on stop and why the abort-flush
//             hook stops the collector before the process dies.
//
// Sinks are driven by ONE thread (the collector, or whoever called
// Collector::stop) — they need no internal locking. Batching is
// stdio's: each sink installs a large stream buffer and the collector
// calls flush() once per drain cycle, so events reach the OS in
// batched appends rather than one write(2) per event.
#pragma once

#include <cstdint>
#include <memory>

#include "lockdep/event_ring.hpp"

namespace resilock::telemetry {

class Sink {
 public:
  virtual ~Sink() = default;

  virtual const char* name() const noexcept = 0;

  // Consume one drained event. May buffer; never blocks on anything
  // but the filesystem.
  virtual void consume(const lockdep::TraceEvent& e) = 0;

  // Push buffered bytes to the OS (end of a drain cycle).
  virtual void flush() = 0;

  // Finalize the artifact (write the document tail, fclose). The sink
  // accepts no events afterwards. Idempotent.
  virtual void close() = 0;

  // Events this sink has written so far.
  virtual std::uint64_t written() const noexcept = 0;
};

// nullptr when the file cannot be opened (a warning is printed).
std::unique_ptr<Sink> make_jsonl_sink(const char* path);
std::unique_ptr<Sink> make_perfetto_sink(const char* path);

// The sink RESILOCK_TRACE_FILE + RESILOCK_TRACE_FORMAT (jsonl|perfetto,
// default jsonl) ask for; nullptr when no trace file is configured.
std::unique_ptr<Sink> make_sink_from_env();

}  // namespace resilock::telemetry
