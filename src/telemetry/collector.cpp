#include "telemetry/collector.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>

#include "interpose/reentry.hpp"
#include "lockdep/event_ring.hpp"
#include "lockdep/lockdep.hpp"
#include "lockdep/trace_export.hpp"
#include "observe/lockstat.hpp"
#include "platform/env.hpp"
#include "response/response.hpp"
#include "runtime/timer.hpp"
#include "telemetry/metrics.hpp"

namespace {

// Adaptive duty cycle bounds: the floor keeps a hot producer's queue
// latency in the tens of microseconds; the ceiling bounds an idle
// process to ~200 wakeups/sec worst case, near zero once backed off.
constexpr std::uint64_t kMinSleepUs = 50;
constexpr std::uint64_t kMaxSleepUs = 5000;
// A cycle that pulls this many events means producers are hot: skip
// the sleep entirely and re-drain ("drain hard when they fill").
constexpr std::size_t kHardBatch = 1024;

std::atomic<bool> g_hook_fired{false};

// Both only touched by the thread running Collector's constructor
// (the magic-static guard serializes initializers).
bool g_in_ctor = false;
bool g_autostart_pending = false;

}  // namespace

namespace resilock::telemetry {

struct Collector::Impl {
  // Lifecycle (start/stop) serialization.
  std::mutex lifecycle;
  std::thread worker;

  // Worker wakeup.
  std::mutex cv_mu;
  std::condition_variable cv;
  bool stop_requested = false;  // guarded by cv_mu

  std::atomic<bool> running{false};
  std::atomic<bool> in_start{false};

  // Sink set; drained into under this mutex by exactly one thread at a
  // time (the TraceBuffer drain guard already enforces one drainer,
  // this one covers add_sink/close racing a drain).
  std::mutex sink_mu;
  std::vector<std::unique_ptr<Sink>> sinks;

  // Stats, all lock-free for MetricsRegistry::snapshot.
  std::atomic<std::uint64_t> delivered{0};
  std::atomic<std::uint64_t> written{0};
  std::atomic<std::uint64_t> drain_cycles{0};
  std::atomic<std::uint64_t> empty_cycles{0};
  std::atomic<std::uint64_t> hard_drains{0};
  std::atomic<std::uint64_t> sleep_us{kMinSleepUs};
  std::atomic<std::uint64_t> metrics_dumps{0};
  std::atomic<std::uint64_t> lockstat_dumps{0};

  // Periodic metrics dump (read from env at start()).
  const char* metrics_path = nullptr;
  MetricsFormat metrics_fmt = MetricsFormat::kText;
  std::uint64_t metrics_interval_ns = 0;
  std::uint64_t last_metrics_ns = 0;  // worker/stop thread only

  // Periodic lockstat report (read from env at start()).
  const char* lockstat_path = nullptr;
  std::uint64_t lockstat_interval_ns = 0;
  std::uint64_t last_lockstat_ns = 0;  // worker/stop thread only

  // One drain of every ring into every sink, one flush per sink.
  // With no sinks attached the rings are left untouched so the atexit
  // JSONL exporter (and the abort-flush fallback) still find the
  // events.
  std::size_t drain_cycle() {
    std::lock_guard<std::mutex> lk(sink_mu);
    if (sinks.empty()) return 0;
    const std::size_t n = lockdep::TraceBuffer::instance().drain(
        [this](const lockdep::TraceEvent& e) {
          for (auto& s : sinks) s->consume(e);
        });
    drain_cycles.fetch_add(1, std::memory_order_relaxed);
    if (n == 0) {
      empty_cycles.fetch_add(1, std::memory_order_relaxed);
      return 0;
    }
    delivered.fetch_add(n, std::memory_order_relaxed);
    std::uint64_t w = 0;
    for (auto& s : sinks) {
      s->flush();
      if (s->written() > w) w = s->written();
    }
    written.store(w, std::memory_order_relaxed);
    return n;
  }

  void maybe_dump_metrics(bool force) {
    if (metrics_path == nullptr) return;
    const std::uint64_t now = runtime::now_ns();
    if (!force && now - last_metrics_ns < metrics_interval_ns) return;
    last_metrics_ns = now;
    if (MetricsRegistry::instance().dump(metrics_path, metrics_fmt)) {
      metrics_dumps.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Periodic lockstat report plus the signal-trigger service point: a
  // SIGUSR2 handler only flags the request (async-signal-safe); this
  // duty-cycle check is what actually renders the report — to the
  // configured file, or stderr when none is set.
  void maybe_dump_lockstat(bool force) {
    if (observe::consume_dump_request()) {
      observe::dump_report(lockstat_path);  // nullptr -> stderr
      lockstat_dumps.fetch_add(1, std::memory_order_relaxed);
      last_lockstat_ns = runtime::now_ns();
      return;
    }
    if (lockstat_path == nullptr || !observe::lockstat_enabled()) return;
    const std::uint64_t now = runtime::now_ns();
    if (!force && now - last_lockstat_ns < lockstat_interval_ns) return;
    last_lockstat_ns = now;
    if (observe::dump_report(lockstat_path)) {
      lockstat_dumps.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void run() {
    // Under LD_PRELOAD interposition, every pthread call this thread
    // makes must reach glibc directly — the collector's entire lifetime
    // is resilock machinery, never application lock traffic.
    interpose::preload_pin_thread();
    std::uint64_t cur_sleep = kMinSleepUs;
    for (;;) {
      const std::size_t n = drain_cycle();
      maybe_dump_metrics(false);
      maybe_dump_lockstat(false);
      {
        std::unique_lock<std::mutex> lk(cv_mu);
        if (stop_requested) return;
      }
      if (n >= kHardBatch) {
        // Producers are outrunning the cycle; drain back-to-back
        // until the batch thins out.
        hard_drains.fetch_add(1, std::memory_order_relaxed);
        cur_sleep = kMinSleepUs;
        sleep_us.store(cur_sleep, std::memory_order_relaxed);
        continue;
      }
      cur_sleep = (n == 0) ? std::min(cur_sleep * 2, kMaxSleepUs)
                           : kMinSleepUs;
      sleep_us.store(cur_sleep, std::memory_order_relaxed);
      std::unique_lock<std::mutex> lk(cv_mu);
      if (cv.wait_for(lk, std::chrono::microseconds(cur_sleep),
                      [this] { return stop_requested; })) {
        return;
      }
    }
  }
};

Collector& Collector::instance() {
  static Collector c;
  return c;
}

Collector::Collector() : impl_(new Impl) {
  // Pin destruction order: everything the worker and the final drain
  // touch (rings, the class table for JSONL labels) must be
  // constructed — hence destroyed after — this singleton. Claiming the
  // rings first would normally fire telemetry_first_use_hook, whose
  // autostart would recurse into the Collector magic-static mid-
  // construction; g_in_ctor defers that start to the end of the ctor.
  g_in_ctor = true;
  lockdep::TraceBuffer::instance();
  lockdep::Graph::instance();
  g_in_ctor = false;
  if (g_autostart_pending) {
    g_autostart_pending = false;
    start();
  }
}

Collector::~Collector() {
  // Static destruction runs on whatever thread called exit(), outside
  // any interposition reentry scope. Without the pin, stop()'s own
  // std::mutex operations would be adopted by the preload layer —
  // whose rl_mutex_init autostarts the collector being destroyed.
  interpose::preload_pin_thread();
  stop();
  delete impl_;
}

bool Collector::running() const noexcept {
  return impl_->running.load(std::memory_order_acquire);
}

void Collector::add_sink(std::unique_ptr<Sink> sink) {
  if (sink == nullptr) return;
  std::lock_guard<std::mutex> lk(impl_->sink_mu);
  impl_->sinks.push_back(std::move(sink));
}

std::size_t Collector::drain_now() { return impl_->drain_cycle(); }

CollectorStats Collector::stats() const noexcept {
  auto& tb = lockdep::TraceBuffer::instance();
  CollectorStats s;
  s.running = impl_->running.load(std::memory_order_acquire);
  s.events_delivered = impl_->delivered.load(std::memory_order_relaxed);
  s.events_written = impl_->written.load(std::memory_order_relaxed);
  s.events_dropped = tb.dropped();
  s.events_emitted = tb.emitted();
  s.drain_cycles = impl_->drain_cycles.load(std::memory_order_relaxed);
  s.empty_cycles = impl_->empty_cycles.load(std::memory_order_relaxed);
  s.hard_drains = impl_->hard_drains.load(std::memory_order_relaxed);
  s.sleep_us = impl_->sleep_us.load(std::memory_order_relaxed);
  s.metrics_dumps = impl_->metrics_dumps.load(std::memory_order_relaxed);
  s.lockstat_dumps =
      impl_->lockstat_dumps.load(std::memory_order_relaxed);
  return s;
}

bool Collector::start() {
  // Deflect the reentrant edge: start -> first ring touch -> first-use
  // hook -> autostart -> start. The inner call returns immediately;
  // the outer one finishes the job.
  if (impl_->in_start.exchange(true, std::memory_order_acq_rel)) {
    return impl_->running.load(std::memory_order_acquire);
  }
  std::lock_guard<std::mutex> lk(impl_->lifecycle);
  if (!impl_->running.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> sg(impl_->sink_mu);
      if (impl_->sinks.empty()) {
        if (auto s = make_sink_from_env()) {
          impl_->sinks.push_back(std::move(s));
        }
      }
    }
    impl_->metrics_path = platform::env_raw("RESILOCK_METRICS_FILE");
    impl_->metrics_fmt = MetricsRegistry::format_from_env();
    impl_->metrics_interval_ns =
        std::uint64_t{platform::env_u32("RESILOCK_METRICS_INTERVAL_MS",
                                        1000)} *
        1000000ull;
    impl_->last_metrics_ns = 0;
    impl_->lockstat_path = platform::env_raw("RESILOCK_LOCKSTAT_FILE");
    impl_->lockstat_interval_ns =
        std::uint64_t{platform::env_u32("RESILOCK_LOCKSTAT_INTERVAL_MS",
                                        1000)} *
        1000000ull;
    impl_->last_lockstat_ns = 0;
    observe::install_signal_trigger_from_env();
    {
      std::lock_guard<std::mutex> cg(impl_->cv_mu);
      impl_->stop_requested = false;
    }
    impl_->worker = std::thread([impl = impl_] { impl->run(); });
    impl_->running.store(true, std::memory_order_release);
  }
  impl_->in_start.store(false, std::memory_order_release);
  return true;
}

void Collector::stop() {
  std::lock_guard<std::mutex> lk(impl_->lifecycle);
  if (impl_->worker.joinable()) {
    if (impl_->worker.get_id() == std::this_thread::get_id()) {
      return;  // never expected; refuse to self-join
    }
    {
      std::lock_guard<std::mutex> cg(impl_->cv_mu);
      impl_->stop_requested = true;
    }
    impl_->cv.notify_all();
    impl_->worker.join();
    impl_->worker = std::thread();
    impl_->running.store(false, std::memory_order_release);
  }
  // Final drain (no-op without sinks: the events stay queued for the
  // atexit/abort JSONL exporters), final metrics dump, and sink
  // close so single-document formats are valid on disk. The sink set
  // is cleared — a later start() rebuilds from the environment.
  impl_->drain_cycle();
  impl_->maybe_dump_metrics(true);
  impl_->maybe_dump_lockstat(true);
  std::lock_guard<std::mutex> sg(impl_->sink_mu);
  for (auto& s : impl_->sinks) s->close();
  impl_->sinks.clear();
}

void autostart_from_env() {
  // RESILOCK_LOCKSTAT alone also wants the collector: a bare-sink
  // collector is harmless (drain_cycle no-ops, rings stay queued for
  // the atexit exporters) but its duty cycle is what services periodic
  // lockstat dumps and the signal trigger in an LD_PRELOAD-ed process.
  const bool lockstat = platform::env_flag("RESILOCK_LOCKSTAT", false);
  if (lockstat) observe::install_signal_trigger_from_env();
  if (!platform::env_flag("RESILOCK_TELEMETRY", false) && !lockstat) {
    return;
  }
  if (g_in_ctor) {
    // Collector's constructor is on the stack (it touches the rings,
    // which fire the first-use hook, which lands here); entering
    // instance() again would deadlock on the magic-static guard.
    g_autostart_pending = true;
    return;
  }
  Collector::instance().start();
}

// Runs on the response engine's DEFAULT abort path, just before
// std::abort(). Every abort site emits its trace event before
// dispatching, so stopping the pipeline here lands the fatal event on
// disk: a running collector gets a final drain and its sinks are
// closed (finalizing perfetto documents); if the collector never ran,
// the queued events fall back to a JSONL dump to RESILOCK_TRACE_FILE
// — the file atexit would have written if std::abort didn't skip
// atexit handlers.
void flush_for_abort() {
  Collector& c = Collector::instance();
  const bool piped = c.running();
  c.stop();
  if (!piped) {
    if (const char* path = platform::env_raw("RESILOCK_TRACE_FILE")) {
      lockdep::export_trace_jsonl(path);
    }
  }
}

}  // namespace resilock::telemetry

namespace resilock::lockdep {

// Called from TraceBuffer::instance() — i.e. on the first trace
// emission (or any other first touch of the rings). Exchange-after-
// load keeps the hot path to one acquire load once fired.
void telemetry_first_use_hook() {
  if (g_hook_fired.load(std::memory_order_acquire)) return;
  if (g_hook_fired.exchange(true, std::memory_order_acq_rel)) return;
  response::set_abort_flush_hook(&telemetry::flush_for_abort);
  telemetry::autostart_from_env();
}

}  // namespace resilock::lockdep
