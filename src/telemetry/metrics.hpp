// Metrics registry: one call that snapshots every counter the stack
// already keeps, for periodic export next to the event trace.
//
// The trace answers "what happened, when"; metrics answer "how much,
// right now" — the pair is the observability plane the ROADMAP asks
// for. Nothing here adds instrumentation: the registry READS the
// counters the layers maintain anyway (response verdict totals by
// event kind — which is the global misuse census, since every caught
// misuse flows through ResponseEngine::decide — lockdep's graph
// stats, the trace pipeline's emitted/dropped/delivered accounting,
// the collector's own duty-cycle counters) and renders them as flat
// name -> value pairs, text `key=value` or JSON.
//
// Per-lock sources (a ShieldCounters, a ContentionProbe) have no
// global roster, so they join by registration: register_gauge() binds
// a name to a closure sampled at snapshot time.
//
// Consumers: MetricsRegistry::dump() on demand; the background
// collector periodically when RESILOCK_METRICS_FILE is set
// (RESILOCK_METRICS_FORMAT=text|json, RESILOCK_METRICS_INTERVAL_MS,
// default 1000). The dump truncates — the file is current state, not
// a log; point a scraper at it.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/contention.hpp"

namespace resilock::telemetry {

enum class MetricsFormat : std::uint8_t { kText, kJson };

struct MetricsSnapshot {
  std::uint64_t ns = 0;  // runtime::now_ns() at snapshot
  std::vector<std::pair<std::string, std::uint64_t>> items;

  // Convenience for tests: value of `name`, or `fallback` when absent.
  std::uint64_t value(const char* name, std::uint64_t fallback = 0) const;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  using Gauge = std::function<std::uint64_t()>;

  // Binds `name` (replacing any previous binding) to a closure sampled
  // at each snapshot. The closure must stay valid until unregistered
  // and must be safe to call from the collector thread.
  void register_gauge(std::string name, Gauge gauge);
  void unregister_gauge(const std::string& name);

  // Registers `<prefix>.waiters` and `<prefix>.contended_total` for a
  // probe (which must outlive the registration).
  void register_contention_probe(const std::string& prefix,
                                 const ContentionProbe* probe);
  void unregister_contention_probe(const std::string& prefix);

  // Samples everything: built-in sources + registered gauges.
  MetricsSnapshot snapshot() const;

  static void write(std::FILE* f, const MetricsSnapshot& s,
                    MetricsFormat fmt);

  // Truncates `path` and writes a fresh snapshot. False when the file
  // cannot be opened.
  bool dump(const char* path, MetricsFormat fmt) const;

  // RESILOCK_METRICS_FORMAT (json|text; default text).
  static MetricsFormat format_from_env();

 private:
  MetricsRegistry() = default;

  struct NamedGauge {
    std::string name;
    Gauge gauge;
  };

  mutable std::mutex mu_;
  std::vector<NamedGauge> gauges_;
};

}  // namespace resilock::telemetry
