#include "telemetry/metrics.hpp"

#include <cstring>
#include <string_view>

#include "lockdep/event_ring.hpp"
#include "lockdep/lockdep.hpp"
#include "observe/lockstat.hpp"
#include "park/parking_lot.hpp"
#include "platform/env.hpp"
#include "platform/json.hpp"
#include "response/response.hpp"
#include "runtime/timer.hpp"
#include "telemetry/collector.hpp"

namespace resilock::telemetry {

std::uint64_t MetricsSnapshot::value(const char* name,
                                     std::uint64_t fallback) const {
  for (const auto& [k, v] : items) {
    if (k == name) return v;
  }
  return fallback;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry r;
  return r;
}

void MetricsRegistry::register_gauge(std::string name, Gauge gauge) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& g : gauges_) {
    if (g.name == name) {
      g.gauge = std::move(gauge);
      return;
    }
  }
  gauges_.push_back({std::move(name), std::move(gauge)});
}

void MetricsRegistry::unregister_gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = gauges_.begin(); it != gauges_.end(); ++it) {
    if (it->name == name) {
      gauges_.erase(it);
      return;
    }
  }
}

void MetricsRegistry::register_contention_probe(
    const std::string& prefix, const ContentionProbe* probe) {
  register_gauge(prefix + ".waiters",
                 [probe] { return std::uint64_t{probe->waiters()}; });
  register_gauge(prefix + ".contended_total",
                 [probe] { return probe->contended_total(); });
}

void MetricsRegistry::unregister_contention_probe(
    const std::string& prefix) {
  unregister_gauge(prefix + ".waiters");
  unregister_gauge(prefix + ".contended_total");
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  s.ns = runtime::now_ns();
  auto put = [&s](std::string name, std::uint64_t v) {
    s.items.emplace_back(std::move(name), v);
  };

  // Trace pipeline accounting. queued is derived and clamped: the
  // three counters are read at slightly different instants under load.
  {
    auto& tb = lockdep::TraceBuffer::instance();
    const CollectorStats cs = Collector::instance().stats();
    const std::uint64_t emitted = tb.emitted();
    const std::uint64_t dropped = tb.dropped();
    const std::uint64_t delivered = cs.events_delivered;
    put("trace.events_emitted", emitted);
    put("trace.events_dropped", dropped);
    put("trace.events_queued",
        emitted >= dropped + delivered ? emitted - dropped - delivered : 0);
    put("collector.running", cs.running ? 1 : 0);
    put("collector.events_delivered", delivered);
    put("collector.events_written", cs.events_written);
    put("collector.drain_cycles", cs.drain_cycles);
    put("collector.empty_cycles", cs.empty_cycles);
    put("collector.hard_drains", cs.hard_drains);
    put("collector.sleep_us", cs.sleep_us);
    put("collector.metrics_dumps", cs.metrics_dumps);
    put("collector.lockstat_dumps", cs.lockstat_dumps);
  }

  // Response engine: verdict census. by_event IS the global misuse
  // census by kind — every caught misuse and lockdep report passes
  // through ResponseEngine::decide.
  {
    const response::ResponseStats rs =
        response::ResponseEngine::instance().stats();
    put("response.decisions", rs.decisions);
    put("response.rule_hits", rs.rule_hits);
    put("response.log_rate_limited", rs.log_rate_limited);
    for (std::size_t i = 0; i < response::kActions; ++i) {
      put(std::string("response.action.") +
              to_string(static_cast<response::Action>(i)),
          rs.by_action[i]);
    }
    for (std::size_t i = 0; i < response::kResponseEvents; ++i) {
      put(std::string("response.event.") +
              to_string(static_cast<response::ResponseEvent>(i)),
          rs.by_event[i]);
    }
  }

  // Lock-order graph.
  {
    const lockdep::LockdepStats ls = lockdep::Graph::instance().stats();
    put("lockdep.classes_registered", ls.classes_registered);
    put("lockdep.classes_live", ls.classes_live);
    put("lockdep.class_table_full", ls.class_table_full);
    put("lockdep.edges", ls.edges);
    put("lockdep.rr_skipped", ls.rr_skipped);
    put("lockdep.inversions", ls.inversions);
    put("lockdep.cycles", ls.cycles);
    put("lockdep.stack_overflow", ls.stack_overflow);
    put("lockdep.capacity", ls.capacity);
    put("lockdep.chunks", ls.chunks);
    put("lockdep.epoch", ls.epoch);
    put("lockdep.limbo", ls.limbo);
    put("lockdep.reclaimed", ls.reclaimed);
    put("lockdep.shard_steals", ls.shard_steals);
  }

  // Lockstat aggregates: the cheap always-safe summary (full per-class
  // tables render through the lockstat report, not here).
  {
    const observe::LockStat::Totals lt =
        observe::LockStat::instance().totals();
    put("lockstat.enabled", observe::lockstat_enabled() ? 1 : 0);
    put("lockstat.classes", lt.classes);
    put("lockstat.acquisitions", lt.acquisitions);
    put("lockstat.contentions", lt.contentions);
    put("lockstat.trylock_fails", lt.trylock_fails);
    put("lockstat.misuses", lt.misuses);
    put("lockstat.wait_ns_total", lt.wait_ns);
    put("lockstat.hold_ns_total", lt.hold_ns);
    put("lockstat.parks", lt.parks);
    put("lockstat.park_ns_total", lt.park_ns);
  }

  // Parking tier (src/park/): process-wide futex sleep/wake tallies
  // plus the live currently_parked gauge.
  {
    const park::ParkStatsSnapshot ps = park::ParkStats::instance().snapshot();
    put("park.enabled", park::parking_enabled() ? 1 : 0);
    put("park.parks", ps.parks);
    put("park.wakes", ps.wakes);
    put("park.wakes_spurious", ps.wakes_spurious);
    put("park.timeouts", ps.timeouts);
    put("park.misuse_wakes", ps.misuse_wakes);
    put("park.currently_parked", ps.currently_parked);
  }

  // Registered per-lock sources.
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& g : gauges_) put(g.name, g.gauge());
  }
  return s;
}

void MetricsRegistry::write(std::FILE* f, const MetricsSnapshot& s,
                            MetricsFormat fmt) {
  if (fmt == MetricsFormat::kJson) {
    std::fprintf(f, "{\"ns\":%llu,\"metrics\":{",
                 static_cast<unsigned long long>(s.ns));
    bool first = true;
    for (const auto& [k, v] : s.items) {
      // Keys include registered gauge names — user-controlled strings
      // (a contention-probe prefix can carry quotes) — so they go
      // through the shared escaper.
      if (!first) std::fputc(',', f);
      platform::write_json_escaped(f, k);
      std::fprintf(f, ":%llu", static_cast<unsigned long long>(v));
      first = false;
    }
    std::fputs("}}\n", f);
    return;
  }
  std::fprintf(f, "ns=%llu\n", static_cast<unsigned long long>(s.ns));
  for (const auto& [k, v] : s.items) {
    std::fprintf(f, "%s=%llu\n", k.c_str(),
                 static_cast<unsigned long long>(v));
  }
}

bool MetricsRegistry::dump(const char* path, MetricsFormat fmt) const {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "resilock[metrics]: cannot open %s\n", path);
    return false;
  }
  write(f, snapshot(), fmt);
  std::fclose(f);
  return true;
}

MetricsFormat MetricsRegistry::format_from_env() {
  const char* v = platform::env_raw("RESILOCK_METRICS_FORMAT");
  if (v != nullptr && std::string_view(v) == "json") {
    return MetricsFormat::kJson;
  }
  return MetricsFormat::kText;
}

}  // namespace resilock::telemetry
