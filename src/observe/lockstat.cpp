// Lockstat report rendering, dladdr symbolization, and the
// async-signal-safe live-dump trigger. See lockstat.hpp for the
// design overview.
#ifndef _GNU_SOURCE
#define _GNU_SOURCE  // dladdr
#endif

#include "observe/lockstat.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <new>

#if defined(__linux__) || defined(__APPLE__)
#include <csignal>
#include <dlfcn.h>
#define RESILOCK_HAVE_DLADDR 1
#define RESILOCK_HAVE_SIGACTION 1
#else
#define RESILOCK_HAVE_DLADDR 0
#define RESILOCK_HAVE_SIGACTION 0
#endif

namespace resilock::observe {

// ---------------------------------------------------------------------
// Singleton + per-class table.
// ---------------------------------------------------------------------

LockStat& LockStat::instance() {
  // Leaked on purpose: lock hooks may run inside other objects'
  // destructors during shutdown, after function-local statics with
  // destructors are gone.
  static LockStat* inst = new LockStat;
  return *inst;
}

LockStat::StatChunk* LockStat::chunk_at(std::uint32_t index,
                                        bool create) {
  std::atomic<StatChunk*>& dslot = dir_[index];
  StatChunk* c = dslot.load(std::memory_order_acquire);
  if (c != nullptr || !create) return c;
  auto* fresh = new StatChunk;
  if (dslot.compare_exchange_strong(c, fresh, std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
    return fresh;
  }
  delete fresh;  // lost the race; `c` holds the winner
  return c;
}

void LockStat::park_retired(Entry* e) noexcept {
  Entry* head = retired_.load(std::memory_order_relaxed);
  do {
    e->next_retired = head;
  } while (!retired_.compare_exchange_weak(head, e,
                                           std::memory_order_release,
                                           std::memory_order_relaxed));
  retired_count_.fetch_add(1, std::memory_order_relaxed);
}

ClassStats* LockStat::stats_for(lockdep::ClassId cls) {
  if (!lockdep::class_tracked(cls)) return nullptr;  // sentinels too
  const std::uint32_t slot = lockdep::class_slot(cls);
  StatChunk* c = chunk_at(slot / kStatChunkSlots, /*create=*/true);
  std::atomic<Entry*>& eslot = c->slots[slot % kStatChunkSlots];
  Entry* e = eslot.load(std::memory_order_acquire);
  for (;;) {
    if (e != nullptr && e->id == cls) return &e->st;
    // Empty slot, or a stats block keyed by a previous generation of
    // this slot: install a fresh block under the full stamped id. The
    // displaced block parks on the retired list — a racing recorder
    // may still hold a pointer into it, so it is never freed.
    auto* fresh = new Entry(cls);
    if (eslot.compare_exchange_strong(e, fresh,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      if (e != nullptr) park_retired(e);
      return &fresh->st;
    }
    delete fresh;  // lost the race; `e` reloaded, re-check its id
  }
}

ClassStats* LockStat::peek(lockdep::ClassId cls) const noexcept {
  if (!lockdep::class_tracked(cls)) return nullptr;
  const std::uint32_t slot = lockdep::class_slot(cls);
  const StatChunk* c =
      dir_[slot / kStatChunkSlots].load(std::memory_order_acquire);
  if (c == nullptr) return nullptr;
  Entry* e = c->slots[slot % kStatChunkSlots].load(
      std::memory_order_acquire);
  if (e == nullptr || e->id != cls) return nullptr;
  return &e->st;
}

LockStat::Totals LockStat::totals() const noexcept {
  Totals t;
  for (std::uint32_t ci = 0; ci < kStatDirSlots; ++ci) {
    const StatChunk* chunk = dir_[ci].load(std::memory_order_acquire);
    if (chunk == nullptr) continue;
    for (std::uint32_t si = 0; si < kStatChunkSlots; ++si) {
      const Entry* e = chunk->slots[si].load(std::memory_order_acquire);
      if (e == nullptr) continue;
      const ClassStats* s = &e->st;
      const HistogramSnapshot wait = s->wait.snapshot();
      const HistogramSnapshot hold = s->hold.snapshot();
      std::uint64_t acq = 0;
      for (const auto& m : s->by_mode) {
        acq += m.load(std::memory_order_relaxed);
      }
      const std::uint64_t con = wait.count;
      const std::uint64_t tf =
          s->trylock_fails.load(std::memory_order_relaxed);
      const std::uint64_t mis =
          s->misuses.load(std::memory_order_relaxed);
      if (acq + con + tf + mis + wait.count + hold.count == 0) continue;
      ++t.classes;
      t.acquisitions += acq;
      t.contentions += con;
      t.trylock_fails += tf;
      t.misuses += mis;
      t.wait_ns += wait.total;
      t.hold_ns += hold.total;
      t.parks += s->parks.load(std::memory_order_relaxed);
      t.park_ns += s->park_ns.load(std::memory_order_relaxed);
    }
  }
  return t;
}

std::vector<ClassReport> LockStat::report() const {
  std::vector<ClassReport> out;
  const lockdep::Graph& graph = lockdep::Graph::instance();
  for (std::uint32_t ci = 0; ci < kStatDirSlots; ++ci) {
    const StatChunk* chunk = dir_[ci].load(std::memory_order_acquire);
    if (chunk == nullptr) continue;
    for (std::uint32_t si = 0; si < kStatChunkSlots; ++si) {
      const Entry* e = chunk->slots[si].load(std::memory_order_acquire);
      if (e == nullptr) continue;
      const ClassStats* s = &e->st;
      ClassReport r;
      r.cls = e->id;
      r.hold_sample = lockstat_sample();
      r.trylock_fails =
          s->trylock_fails.load(std::memory_order_relaxed);
      r.misuses = s->misuses.load(std::memory_order_relaxed);
      for (std::size_t m = 0; m < kAccessModes; ++m) {
        r.by_mode[m] = s->by_mode[m].load(std::memory_order_relaxed);
        r.acquisitions += r.by_mode[m];
      }
      r.wait = s->wait.snapshot();
      r.hold = s->hold.snapshot();
      r.contentions = r.wait.count;
      r.parks = s->parks.load(std::memory_order_relaxed);
      r.wakes = s->wakes.load(std::memory_order_relaxed);
      r.park_time = s->park_ns.load(std::memory_order_relaxed);
      if (r.acquisitions + r.contentions + r.trylock_fails + r.misuses +
              r.wait.count + r.hold.count ==
          0) {
        continue;
      }
      // label_of is generation-checked: a block whose class has since
      // retired (or whose slot was recycled) falls back to class#N.
      const char* label = graph.label_of(r.cls);
      if (label != nullptr && label[0] != '\0') {
        r.label = label;
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "class#%u",
                      static_cast<unsigned>(lockdep::class_slot(r.cls)));
        r.label = buf;
      }
      r.site_overflow = s->sites.overflow();
      s->sites.for_each([&r](std::uintptr_t addr, std::uint64_t count) {
        r.sites.push_back(CallSiteRow{addr, count});
      });
      std::sort(r.sites.begin(), r.sites.end(),
                [](const CallSiteRow& a, const CallSiteRow& b) {
                  return a.count > b.count;
                });
      out.push_back(std::move(r));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ClassReport& a, const ClassReport& b) {
              if (a.wait.total != b.wait.total)
                return a.wait.total > b.wait.total;
              return a.acquisitions > b.acquisitions;
            });
  return out;
}

void LockStat::reset() noexcept {
  const auto zero = [](ClassStats* s) {
    s->wait.reset();
    s->hold.reset();
    s->trylock_fails.store(0, std::memory_order_relaxed);
    s->misuses.store(0, std::memory_order_relaxed);
    for (auto& m : s->by_mode) m.store(0, std::memory_order_relaxed);
    s->parks.store(0, std::memory_order_relaxed);
    s->park_ns.store(0, std::memory_order_relaxed);
    s->wakes.store(0, std::memory_order_relaxed);
    s->sites.reset();
  };
  for (std::uint32_t ci = 0; ci < kStatDirSlots; ++ci) {
    StatChunk* chunk = dir_[ci].load(std::memory_order_acquire);
    if (chunk == nullptr) continue;
    for (std::uint32_t si = 0; si < kStatChunkSlots; ++si) {
      Entry* e = chunk->slots[si].load(std::memory_order_acquire);
      if (e != nullptr) zero(&e->st);
    }
  }
  // Displaced blocks too: a reset means "forget recorded history", and
  // the retired list is history by definition.
  for (Entry* e = retired_.load(std::memory_order_acquire); e != nullptr;
       e = e->next_retired) {
    zero(&e->st);
  }
}

// ---------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------

void symbolize_site(std::uintptr_t site, char* buf, std::size_t len,
                    bool symbolize) {
#if RESILOCK_HAVE_DLADDR
  if (symbolize) {
    Dl_info info{};
    if (dladdr(reinterpret_cast<void*>(site), &info) != 0 &&
        info.dli_sname != nullptr) {
      const auto base = reinterpret_cast<std::uintptr_t>(info.dli_saddr);
      const char* module = "?";
      if (info.dli_fname != nullptr) {
        module = std::strrchr(info.dli_fname, '/');
        module = module != nullptr ? module + 1 : info.dli_fname;
      }
      std::snprintf(buf, len, "%s+0x%" PRIxPTR " [%s]", info.dli_sname,
                    site - base, module);
      return;
    }
  }
#else
  (void)symbolize;
#endif
  std::snprintf(buf, len, "0x%" PRIxPTR, site);
}

namespace {

void write_histogram_line(std::FILE* f, const char* name,
                          const HistogramSnapshot& h,
                          std::uint32_t sample = 1) {
  std::fprintf(f,
               "  %-7s count %10llu  total %14llu ns  "
               "p50 %10llu  p90 %10llu  p99 %10llu  max %10llu",
               name, static_cast<unsigned long long>(h.count),
               static_cast<unsigned long long>(h.total),
               static_cast<unsigned long long>(h.percentile(0.50)),
               static_cast<unsigned long long>(h.percentile(0.90)),
               static_cast<unsigned long long>(h.percentile(0.99)),
               static_cast<unsigned long long>(h.max));
  if (sample > 1) std::fprintf(f, "  (sampled 1/%u)", sample);
  std::fputc('\n', f);
}

}  // namespace

void write_report(std::FILE* f, const std::vector<ClassReport>& classes,
                  std::size_t top_sites, bool symbolize) {
  std::fputs(
      "resilock lock_stat (classes by total wait; times in ns)\n", f);
  if (classes.empty()) {
    std::fputs("  (no lock activity recorded)\n", f);
    return;
  }
  for (const ClassReport& r : classes) {
    std::fputs(
        "------------------------------------------------------------"
        "--------------------\n",
        f);
    std::fprintf(f, "%s (cls %u)\n", r.label.c_str(),
                 static_cast<unsigned>(r.cls));
    std::fprintf(f,
                 "  acquisitions %llu  contentions %llu  "
                 "trylock-fails %llu  misuses %llu\n",
                 static_cast<unsigned long long>(r.acquisitions),
                 static_cast<unsigned long long>(r.contentions),
                 static_cast<unsigned long long>(r.trylock_fails),
                 static_cast<unsigned long long>(r.misuses));
    if (r.by_mode[1] != 0 || r.by_mode[2] != 0) {
      std::fprintf(f,
                   "  modes: excl %llu  read %llu  write %llu\n",
                   static_cast<unsigned long long>(r.by_mode[0]),
                   static_cast<unsigned long long>(r.by_mode[1]),
                   static_cast<unsigned long long>(r.by_mode[2]));
    }
    write_histogram_line(f, "wait", r.wait);
    write_histogram_line(f, "hold", r.hold, r.hold_sample);
    if (r.parks != 0 || r.wakes != 0) {
      std::fprintf(f,
                   "  parks %llu  wakes %llu  park-time %llu ns\n",
                   static_cast<unsigned long long>(r.parks),
                   static_cast<unsigned long long>(r.wakes),
                   static_cast<unsigned long long>(r.park_time));
    }
    if (!r.sites.empty() || r.site_overflow != 0) {
      std::fputs("  call sites:\n", f);
      std::uint64_t site_total = r.site_overflow;
      for (const CallSiteRow& row : r.sites) site_total += row.count;
      std::size_t shown = 0;
      for (const CallSiteRow& row : r.sites) {
        if (shown++ == top_sites) break;
        char sym[256];
        symbolize_site(row.site, sym, sizeof(sym), symbolize);
        const double pct =
            site_total != 0
                ? 100.0 * static_cast<double>(row.count) /
                      static_cast<double>(site_total)
                : 0.0;
        std::fprintf(f, "    %5.1f%% %10llu  0x%" PRIxPTR "  %s\n", pct,
                     static_cast<unsigned long long>(row.count),
                     row.site, sym);
      }
      if (r.site_overflow != 0) {
        std::fprintf(f, "    (+%llu acquisitions from other sites)\n",
                     static_cast<unsigned long long>(r.site_overflow));
      }
    }
  }
}

bool dump_report(const char* path) {
  const std::vector<ClassReport> classes = LockStat::instance().report();
  std::FILE* f = stderr;
  if (path != nullptr) {
    f = std::fopen(path, "w");
    if (f == nullptr) return false;
  }
  write_report(f, classes);
  if (path != nullptr) {
    std::fclose(f);
  } else {
    std::fflush(f);
  }
  return true;
}

// ---------------------------------------------------------------------
// Live trigger.
// ---------------------------------------------------------------------

namespace {
std::atomic<bool> g_dump_requested{false};

#if RESILOCK_HAVE_SIGACTION
extern "C" void lockstat_signal_handler(int) { request_dump(); }
#endif
}  // namespace

void request_dump() noexcept {
  g_dump_requested.store(true, std::memory_order_release);
}

bool consume_dump_request() noexcept {
  return g_dump_requested.exchange(false, std::memory_order_acq_rel);
}

bool install_signal_trigger(int signo) {
#if RESILOCK_HAVE_SIGACTION
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = lockstat_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  return sigaction(signo, &sa, nullptr) == 0;
#else
  (void)signo;
  return false;
#endif
}

void install_signal_trigger_from_env() {
#if RESILOCK_HAVE_SIGACTION
  static std::atomic<bool> installed{false};
  if (installed.load(std::memory_order_acquire)) return;
  const char* raw = platform::env_raw("RESILOCK_LOCKSTAT_SIGNAL");
  if (raw == nullptr &&
      !platform::env_flag("RESILOCK_LOCKSTAT", false)) {
    return;
  }
  if (installed.exchange(true, std::memory_order_acq_rel)) return;
  int signo = SIGUSR2;
  if (raw != nullptr) {
    const std::uint32_t n =
        platform::env_u32("RESILOCK_LOCKSTAT_SIGNAL", 0);
    if (n != 0) signo = static_cast<int>(n);
  }
  install_signal_trigger(signo);
#endif
}

}  // namespace resilock::observe
