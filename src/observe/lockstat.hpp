// Lockstat: per-class lock statistics, /proc/lock_stat style.
//
// The telemetry plane (PR 6) answers "what happened" — discrete
// misuse/span events — and "how much" — flat counters. What it cannot
// answer is the production question the paper's Uber incidents start
// from: WHICH lock classes hurt, HOW BAD is the tail, and WHERE are
// they acquired from. Lockstat is that layer:
//
//   * per lockdep-class wait-time and hold-time log-bucketed
//     histograms (observe/histogram.hpp) with exact count/total/max —
//     wait is the CONTENDED window of a blocking acquire (matching
//     /proc/lock_stat's contention semantics and the telemetry wait
//     spans), hold is base-acquire .. balanced-release;
//   * contention, trylock-failure, and misuse tallies that reconcile
//     exactly against the shield's own counters;
//   * top-N acquisition call sites per class (observe/callsite.hpp),
//     captured as raw return addresses on the acquire path and
//     symbolized lazily (dladdr) at report time;
//   * mode-tagged acquisition counts for the rw family.
//
// Gating: everything above is behind lockstat_enabled() — one relaxed
// flag load on the lock paths, the exact pattern span tracing set
// (RESILOCK_LOCKSTAT env seed, set_lockstat()/LockstatGuard at
// runtime). Off (the default), the uncontended fast path is the
// pre-lockstat code.
//
// Cost model: every tally above is EXACT except the hold-time
// histogram, which samples 1-in-N hold windows per thread
// (RESILOCK_LOCKSTAT_SAMPLE, default 8, power of two; 1 = exact).
// The split is deliberate: the exact tallies are counter bumps, but a
// hold window is two timestamps, and on an uncontended
// acquire/release pair (~50 ns) unconditional timestamps alone blow
// the repo's 2x overhead budget — rdtsc is ~18 ns even on good
// hardware. Sampling keeps the default-on cost inside the budget
// (bench/lockstat_overhead.cpp prices both modes) while the
// reconciliation story — acquisitions, contentions, trylock
// failures, misuses vs the shield's own counters — stays exact.
//
// Reports render three ways, all through the same ClassReport shape:
// on demand / periodically by the telemetry collector next to the
// metrics file (RESILOCK_LOCKSTAT_FILE), live out of an unmodified
// LD_PRELOAD-ed process via a signal trigger (SIGUSR2, or
// RESILOCK_LOCKSTAT_SIGNAL=<n> — the handler only sets a flag; the
// collector's duty cycle services the dump), and offline from a
// JSONL/perfetto trace via tools/resilock_report.cpp.
//
// Class stats are keyed by the FULL generation-stamped lockdep
// ClassId and allocated lazily on a class's first recorded event.
// Chunks of stats pointers map on demand, mirroring the lockdep class
// table's own chunk growth, so an application with N live classes
// pays O(N) here — not O(kMaxClassSlots). When lockdep recycles a
// retired class's slot, the new generation's id differs in its stamp:
// its first recorded event displaces the old stats block onto a
// retired list (never freed — racing recorders may still hold a
// pointer into it) and starts a fresh block, so a recycled slot never
// inherits its predecessor's histograms or call sites.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/access_mode.hpp"
#include "lockdep/lockdep.hpp"
#include "observe/callsite.hpp"
#include "observe/histogram.hpp"
#include "platform/env.hpp"
#include "runtime/timer.hpp"

namespace resilock::observe {

// ---------------------------------------------------------------------
// Runtime gate (RESILOCK_LOCKSTAT, runtime-settable) — mirrors
// lockdep::span_tracing_enabled().
// ---------------------------------------------------------------------

namespace detail {
inline std::atomic<bool>& lockstat_flag() {
  static std::atomic<bool> f{
      platform::env_flag("RESILOCK_LOCKSTAT", false)};
  return f;
}
}  // namespace detail

inline bool lockstat_enabled() noexcept {
  return detail::lockstat_flag().load(std::memory_order_relaxed);
}

inline void set_lockstat(bool on) noexcept {
  detail::lockstat_flag().store(on, std::memory_order_relaxed);
}

class LockstatGuard {
 public:
  explicit LockstatGuard(bool on) : previous_(lockstat_enabled()) {
    set_lockstat(on);
  }
  ~LockstatGuard() { set_lockstat(previous_); }
  LockstatGuard(const LockstatGuard&) = delete;
  LockstatGuard& operator=(const LockstatGuard&) = delete;

 private:
  const bool previous_;
};

// ---------------------------------------------------------------------
// Hold-window sampling rate (RESILOCK_LOCKSTAT_SAMPLE). Stored as a
// mask (N - 1, N a power of two); 0 means every hold is timed.
// ---------------------------------------------------------------------

namespace detail {
constexpr std::uint32_t sample_mask_from(std::uint32_t n) noexcept {
  if (n <= 1) return 0;
  if (n > (1u << 20)) n = 1u << 20;
  std::uint32_t pow2 = 1;
  while (pow2 * 2 <= n) pow2 *= 2;  // round down to a power of two
  return pow2 - 1;
}

inline std::atomic<std::uint32_t>& sample_mask_flag() {
  static std::atomic<std::uint32_t> m{
      sample_mask_from(platform::env_u32("RESILOCK_LOCKSTAT_SAMPLE", 8))};
  return m;
}
}  // namespace detail

// The effective 1-in-N hold sampling rate (>= 1).
inline std::uint32_t lockstat_sample() noexcept {
  return detail::sample_mask_flag().load(std::memory_order_relaxed) + 1;
}

// Sets the hold sampling rate; `n` is rounded down to a power of two
// (1 = time every hold window — exact mode, what the reconciliation
// tests pin).
inline void set_lockstat_sample(std::uint32_t n) noexcept {
  detail::sample_mask_flag().store(detail::sample_mask_from(n),
                                   std::memory_order_relaxed);
}

class LockstatSampleGuard {
 public:
  explicit LockstatSampleGuard(std::uint32_t n)
      : previous_(lockstat_sample()) {
    set_lockstat_sample(n);
  }
  ~LockstatSampleGuard() { set_lockstat_sample(previous_); }
  LockstatSampleGuard(const LockstatSampleGuard&) = delete;
  LockstatSampleGuard& operator=(const LockstatSampleGuard&) = delete;

 private:
  const std::uint32_t previous_;
};

// ---------------------------------------------------------------------
// Per-class statistics.
// ---------------------------------------------------------------------

inline constexpr std::size_t kAccessModes = 3;  // AccessMode values

// Derived rather than stored (hot-path RMWs are the whole overhead
// budget): acquisitions = sum of by_mode, contentions = wait.count —
// on_contended_wait and on_acquired each pay exactly one counter bump
// beyond their histogram/site recording.
struct ClassStats {
  LogHistogram wait;  // contended-acquire wait, ns
  LogHistogram hold;  // base acquire .. balanced release, ns
  std::atomic<std::uint64_t> trylock_fails{0};
  std::atomic<std::uint64_t> misuses{0};
  std::atomic<std::uint64_t> by_mode[kAccessModes] = {};
  // Parking tier (src/park/): kernel sleeps attributed to this class.
  // park_ns is inside the wait histogram's window (a parked wait is a
  // contended wait), so parks/park_time read as "of the wait above,
  // this much was spent descheduled".
  std::atomic<std::uint64_t> parks{0};
  std::atomic<std::uint64_t> park_ns{0};
  std::atomic<std::uint64_t> wakes{0};
  CallSiteTable sites;
};

struct CallSiteRow {
  std::uintptr_t site = 0;
  std::uint64_t count = 0;
};

// Plain-data per-class report row: built from live ClassStats by
// LockStat::report(), or reconstructed from a trace by the offline
// analyzer — both feed the same write_report() renderer, which is what
// keeps the live and post-mortem views answering identically.
struct ClassReport {
  std::string label;  // lockdep label, or "class#N" when unnamed
  lockdep::ClassId cls = lockdep::kInvalidClass;
  std::uint64_t acquisitions = 0;
  std::uint64_t contentions = 0;
  std::uint64_t trylock_fails = 0;
  std::uint64_t misuses = 0;
  std::uint64_t by_mode[kAccessModes] = {};
  std::uint64_t parks = 0;
  std::uint64_t wakes = 0;
  std::uint64_t park_time = 0;  // ns descheduled, subset of wait total
  std::uint64_t site_overflow = 0;
  // 1-in-N hold sampling rate the hold histogram was recorded at
  // (live reports: lockstat_sample(); trace reconstruction: 1 — every
  // span in the trace is a sample).
  std::uint32_t hold_sample = 1;
  HistogramSnapshot wait;
  HistogramSnapshot hold;
  std::vector<CallSiteRow> sites;  // sorted by count, descending
};

class LockStat {
 public:
  struct Totals {
    std::uint64_t classes = 0;  // classes with any recorded activity
    std::uint64_t acquisitions = 0;
    std::uint64_t contentions = 0;
    std::uint64_t trylock_fails = 0;
    std::uint64_t misuses = 0;
    std::uint64_t wait_ns = 0;
    std::uint64_t hold_ns = 0;
    std::uint64_t parks = 0;
    std::uint64_t park_ns = 0;
  };

  static LockStat& instance();

  // Stats block for `cls`, allocated on first use and keyed by the
  // full generation-stamped id: a stale block left by a previous
  // generation of the same slot is displaced, not reused. nullptr for
  // the sentinel ids (kInvalidClass/kUntrackedClass) — events on a
  // lock whose class table slot never existed are not attributable.
  ClassStats* stats_for(lockdep::ClassId cls);

  // Like stats_for but never allocates and never displaces: nullptr
  // unless a block keyed by exactly `cls` (generation included) is
  // installed.
  ClassStats* peek(lockdep::ClassId cls) const noexcept;

  Totals totals() const noexcept;

  // Snapshot of every class with recorded activity, labels resolved
  // against the live lockdep class table, sorted by total wait
  // descending (ties: acquisitions). Defined in lockstat.cpp.
  std::vector<ClassReport> report() const;

  // Zeroes every allocated stats block (tests, bench phases). Callers
  // must quiesce recorders first; concurrent record() during a reset
  // can misplace an increment, nothing worse.
  void reset() noexcept;

  // Stats blocks displaced by slot recycling, still reachable by
  // racing recorders. Exposed for tests/telemetry.
  std::uint64_t retired_blocks() const noexcept {
    return retired_count_.load(std::memory_order_relaxed);
  }

 private:
  LockStat() = default;

  // One pointer chunk per kStatChunkSlots lockdep slots, mapped
  // lazily; the directory is sized for the lockdep table's full slot
  // space but costs one atomic pointer per chunk until used.
  static constexpr std::uint32_t kStatChunkSlots = 1024;
  static constexpr std::uint32_t kStatDirSlots =
      lockdep::kMaxClassSlots / kStatChunkSlots;

  struct Entry {
    explicit Entry(lockdep::ClassId id_in) : id(id_in) {}
    const lockdep::ClassId id;  // full generation-stamped ClassId
    ClassStats st;
    Entry* next_retired = nullptr;  // displaced-block list link
  };

  struct StatChunk {
    std::atomic<Entry*> slots[kStatChunkSlots] = {};
  };

  StatChunk* chunk_at(std::uint32_t index, bool create);
  void park_retired(Entry* e) noexcept;

  std::atomic<StatChunk*> dir_[kStatDirSlots] = {};
  std::atomic<Entry*> retired_{nullptr};
  std::atomic<std::uint64_t> retired_count_{0};
};

// ---------------------------------------------------------------------
// Shield hook points. All are no-ops unless called — the shields gate
// every call on lockstat_enabled(), so the disabled fast path pays one
// relaxed load and nothing else.
// ---------------------------------------------------------------------

// Per-thread open-hold table for hold-time measurement. Per-thread
// because rw read holds have many simultaneous holders; bounded
// because lockstat is telemetry — past kMaxOpen simultaneous holds the
// extra holds simply go unmeasured. push() purges any stale entry for
// the same lock first (a fresh acquisition proves earlier entries
// leaked across a disable window), so at most one entry per
// (thread, lock) exists.
class HoldTracker {
 public:
  static constexpr std::size_t kMaxOpen = 32;

  struct Open {
    const void* lock = nullptr;
    lockdep::ClassId cls = lockdep::kInvalidClass;
    std::uint64_t begin_ns = 0;
  };

  static HoldTracker& mine() {
    thread_local HoldTracker t;
    return t;
  }

  void push(const void* lock, lockdep::ClassId cls, std::uint64_t ns) {
    for (std::size_t i = 0; i < n_; ++i) {
      if (entries_[i].lock == lock) {
        entries_[i] = entries_[--n_];
        break;
      }
    }
    if (n_ == kMaxOpen) {
      ++dropped_;
      return;
    }
    entries_[n_++] = Open{lock, cls, ns};
  }

  bool pop(const void* lock, Open& out) {
    for (std::size_t i = n_; i-- > 0;) {
      if (entries_[i].lock == lock) {
        out = entries_[i];
        entries_[i] = entries_[--n_];
        return true;
      }
    }
    return false;
  }

  std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  Open entries_[kMaxOpen];
  std::size_t n_ = 0;
  std::uint64_t dropped_ = 0;
};

// A contended blocking acquire finished after waiting `wait_ns`.
// Called for every contended acquire — including forwarded re-acquires
// — so the contention tally (the wait histogram's count) reconciles
// exactly with the shield's ContentionProbe::contended_total().
inline void on_contended_wait(lockdep::ClassId cls,
                              std::uint64_t wait_ns) {
  ClassStats* s = LockStat::instance().stats_for(cls);
  if (s == nullptr) return;
  s->wait.record(wait_ns);
}

// A fresh base acquisition completed (blocking or try path). Tallies
// the acquisition under its mode (exact), records the call site
// (exact), and — for 1-in-lockstat_sample() acquisitions per thread —
// opens a timed hold window. The decimation counter is per-thread and
// shared across classes, so a hot class is sampled at the configured
// rate regardless of what else the thread locks.
inline void on_acquired(const void* lock, lockdep::ClassId cls,
                        AccessMode mode, const void* site) {
  ClassStats* s = LockStat::instance().stats_for(cls);
  if (s == nullptr) return;
  s->by_mode[static_cast<std::size_t>(mode) % kAccessModes].fetch_add(
      1, std::memory_order_relaxed);
  s->sites.record(site);
  const std::uint32_t mask =
      detail::sample_mask_flag().load(std::memory_order_relaxed);
  thread_local std::uint32_t decimate = 0;
  if (mask == 0 || (++decimate & mask) == 0) {
    HoldTracker::mine().push(lock, cls, runtime::now_ns_fast());
  }
}

// The balanced release of a fresh acquisition: closes the hold window
// if on_acquired sampled one (a miss is a short scan of the
// per-thread open table, no timestamp).
inline void on_released(const void* lock) {
  HoldTracker::Open open;
  if (!HoldTracker::mine().pop(lock, open)) return;
  ClassStats* s = LockStat::instance().peek(open.cls);
  if (s == nullptr) return;
  const std::uint64_t now = runtime::now_ns_fast();
  s->hold.record(now > open.begin_ns ? now - open.begin_ns : 0);
}

inline void on_trylock_fail(lockdep::ClassId cls) {
  ClassStats* s = LockStat::instance().stats_for(cls);
  if (s == nullptr) return;
  s->trylock_fails.fetch_add(1, std::memory_order_relaxed);
}

inline void on_misuse(lockdep::ClassId cls) {
  ClassStats* s = LockStat::instance().stats_for(cls);
  if (s == nullptr) return;
  s->misuses.fetch_add(1, std::memory_order_relaxed);
}

// A contended acquire that went through the parking tier: `parks`
// kernel sleeps totalling `park_ns` descheduled, `wakes` of them ended
// by a hand-off wake. The shield snapshots the thread's ParkTally
// around the base acquire and forwards the delta here, so attribution
// happens once per acquisition, off the park hot path.
inline void on_parked(lockdep::ClassId cls, std::uint64_t parks,
                      std::uint64_t park_ns, std::uint64_t wakes) {
  ClassStats* s = LockStat::instance().stats_for(cls);
  if (s == nullptr) return;
  s->parks.fetch_add(parks, std::memory_order_relaxed);
  s->park_ns.fetch_add(park_ns, std::memory_order_relaxed);
  s->wakes.fetch_add(wakes, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// Reports (defined in lockstat.cpp).
// ---------------------------------------------------------------------

// Renders the /proc/lock_stat-shaped table: classes sorted by total
// wait, p50/p90/p99/max for wait and hold, worst `top_sites` call
// sites per class. `symbolize` resolves site addresses with dladdr
// (live, in-process reports); the offline analyzer passes false and
// prints raw hex.
void write_report(std::FILE* f, const std::vector<ClassReport>& classes,
                  std::size_t top_sites = 4, bool symbolize = true);

// Symbolizes one site address into `buf` ("func+0x1a2 [module]", raw
// "0x..." fallback). Exposed for tests.
void symbolize_site(std::uintptr_t site, char* buf, std::size_t len,
                    bool symbolize);

// Live report to `path` (truncating — current state, not a log), or to
// stderr when `path` is nullptr. True when the report was written.
bool dump_report(const char* path);

// ---------------------------------------------------------------------
// Live trigger (defined in lockstat.cpp). The signal handler only
// sets an atomic flag (the only async-signal-safe option); whoever
// polls consume_dump_request() — the telemetry collector's duty cycle
// in production — performs the actual dump.
// ---------------------------------------------------------------------

// Async-signal-safe: request a report dump.
void request_dump() noexcept;

// True exactly once per request (exchange semantics).
bool consume_dump_request() noexcept;

// Installs the dump-request handler on `signo`. Returns false when
// sigaction fails.
bool install_signal_trigger(int signo);

// Installs the trigger from the environment — RESILOCK_LOCKSTAT_SIGNAL
// (a signal number) or SIGUSR2 — when RESILOCK_LOCKSTAT is truthy or a
// signal is explicitly configured. Idempotent; called from the
// interpose cold paths and from Collector::start().
void install_signal_trigger_from_env();

}  // namespace resilock::observe
