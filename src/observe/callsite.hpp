// Acquisition call-site capture for lockstat.
//
// /proc/lock_stat's most actionable column is not the wait time — it
// is WHICH call site acquired the contended class. The cheap way to
// get that without unwinding is the compiler's return-address
// intrinsic: RESILOCK_RETURN_ADDRESS() evaluated at the top of
// Shield::acquire yields an address inside the calling function (or,
// when the whole acquire body was inlined into the caller, one frame
// further up — still application code, never shield internals).
// Capture is one register read; symbolization is deferred to report
// time (dladdr in lockstat.cpp, raw hex fallback), so the acquire
// path never touches the dynamic linker.
//
// Each lock class keeps a small fixed table of sites: slots are
// CAS-claimed by address on first sight, counts bump relaxed, and
// everything past kSlots distinct sites tallies as overflow — a
// deliberate top-N design, because a class acquired from more than a
// handful of sites is a "too coarse class" finding in itself.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#if defined(__GNUC__) || defined(__clang__)
#define RESILOCK_RETURN_ADDRESS() __builtin_return_address(0)
#else
#define RESILOCK_RETURN_ADDRESS() static_cast<void*>(nullptr)
#endif

namespace resilock::observe {

namespace detail {
// Interposition call-site override (LD_PRELOAD path). When the shield
// is reached through libresilock_preload.so, RESILOCK_RETURN_ADDRESS()
// inside Shield::acquire names the preload shim, not the application.
// The preload entry point captures ITS return address (application
// code) here before forwarding; current_site() prefers it.
inline thread_local const void* interposed_site = nullptr;
}  // namespace detail

// The call site lockstat should attribute this acquisition to: the
// interposition override when one is active on this thread, otherwise
// the address the caller captured itself.
inline const void* current_site(const void* captured) noexcept {
  const void* o = detail::interposed_site;
  return o != nullptr ? o : captured;
}

// RAII setter for the override; preload entry points hold one across
// the forwarded rl_* call.
class InterposedSiteScope {
 public:
  explicit InterposedSiteScope(const void* site) noexcept
      : prev_(detail::interposed_site) {
    detail::interposed_site = site;
  }
  ~InterposedSiteScope() { detail::interposed_site = prev_; }
  InterposedSiteScope(const InterposedSiteScope&) = delete;
  InterposedSiteScope& operator=(const InterposedSiteScope&) = delete;

 private:
  const void* prev_;
};

class CallSiteTable {
 public:
  static constexpr std::size_t kSlots = 8;

  void record(const void* site) noexcept {
    const auto addr = reinterpret_cast<std::uintptr_t>(site);
    if (addr == 0) return;
    for (Slot& slot : slots_) {
      std::uintptr_t cur = slot.site.load(std::memory_order_acquire);
      if (cur == 0) {
        if (slot.site.compare_exchange_strong(cur, addr,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
          cur = addr;
        }
        // CAS lost: cur now holds the winner's address; fall through.
      }
      if (cur == addr) {
        slot.count.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    overflow_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t overflow() const noexcept {
    return overflow_.load(std::memory_order_relaxed);
  }

  // Visits every claimed slot as (address, count).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      const std::uintptr_t addr = slot.site.load(std::memory_order_acquire);
      if (addr == 0) continue;
      fn(addr, slot.count.load(std::memory_order_relaxed));
    }
  }

  void reset() noexcept {
    for (Slot& slot : slots_) {
      slot.site.store(0, std::memory_order_relaxed);
      slot.count.store(0, std::memory_order_relaxed);
    }
    overflow_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::uintptr_t> site{0};
    std::atomic<std::uint64_t> count{0};
  };

  Slot slots_[kSlots];
  std::atomic<std::uint64_t> overflow_{0};
};

}  // namespace resilock::observe
