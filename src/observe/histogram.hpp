// Log-bucketed (HDR-style) duration histogram with striped recording.
//
// Lockstat (observe/lockstat.hpp) wants wait- and hold-time
// DISTRIBUTIONS, not averages: the paper's production motivation is
// tail latency under contention, and a p99 is invisible in a
// total/count pair. A full HDR histogram is overkill for nanosecond
// lock telemetry; this is the classic compromise:
//
//   * buckets are log2-major with kSubBuckets linear sub-buckets per
//     power of two, so the relative bucket width is bounded by
//     1/kSubBuckets (25%) across the whole 64-bit range in
//     kBucketCount (252) counters;
//   * record() is two relaxed fetch_adds plus a rare max CAS, striped
//     kStripes ways by thread id so concurrent recorders on a hot
//     class do not serialize on one counter line;
//   * percentiles are answered from a merged Snapshot by a cumulative
//     bucket walk, returning the bucket midpoint — within one bucket
//     width of the true value, which the sub-bucket resolution bounds.
//
// count and total are exact (RMW); max is exact too (CAS loop). Only
// the assignment of an increment to a stripe is thread-dependent, and
// merging stripes restores the exact aggregate.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "platform/cacheline.hpp"
#include "platform/thread_registry.hpp"

namespace resilock::observe {

inline constexpr std::size_t kSubBucketBits = 2;
inline constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBucketBits;
// Max index: msb 63 -> shift 61 -> (61 + 1) * 4 + 3 = 251.
inline constexpr std::size_t kBucketCount =
    (64 - kSubBucketBits + 1) * kSubBuckets;

// Value -> bucket index. Values below kSubBuckets are exact; above,
// the index is (msb - kSubBucketBits + 1) * kSubBuckets + the
// kSubBucketBits bits directly below the msb.
constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
  if (v < kSubBuckets) return static_cast<std::size_t>(v);
  const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
  const unsigned shift = msb - static_cast<unsigned>(kSubBucketBits);
  const std::size_t sub =
      static_cast<std::size_t>(v >> shift) & (kSubBuckets - 1);
  return (static_cast<std::size_t>(shift) + 1) * kSubBuckets + sub;
}

static_assert(bucket_index(~std::uint64_t{0}) < kBucketCount);

// Smallest value mapping to bucket `idx` (inverse of bucket_index).
constexpr std::uint64_t bucket_lower_bound(std::size_t idx) noexcept {
  if (idx < kSubBuckets) return idx;
  const std::size_t shift = idx / kSubBuckets - 1;
  const std::uint64_t sub = idx % kSubBuckets;
  return (kSubBuckets + sub) << shift;
}

// Bucket width (the bucket covers [lower, lower + width)).
constexpr std::uint64_t bucket_width(std::size_t idx) noexcept {
  if (idx < kSubBuckets) return 1;
  return std::uint64_t{1} << (idx / kSubBuckets - 1);
}

// Merged, immutable view of a histogram: what reports and percentile
// queries operate on. Plain data so the offline analyzer
// (tools/resilock_report.cpp) can rebuild one from a trace and feed it
// to the same renderer as the live tables.
struct HistogramSnapshot {
  std::uint64_t counts[kBucketCount] = {};
  std::uint64_t count = 0;
  std::uint64_t total = 0;
  std::uint64_t max = 0;

  void add(std::uint64_t v) {
    ++counts[bucket_index(v)];
    ++count;
    total += v;
    if (v > max) max = v;
  }

  // Value at quantile q in [0, 1]: the midpoint of the bucket holding
  // the ceil(q * count)-th sample (max is exact and clamps the top).
  std::uint64_t percentile(double q) const noexcept {
    if (count == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(count) + 0.5);
    if (target == 0) target = 1;
    if (target >= count) return max;  // the top sample is tracked exactly
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      seen += counts[i];
      if (seen >= target) {
        const std::uint64_t mid =
            bucket_lower_bound(i) + bucket_width(i) / 2;
        return mid < max ? mid : max;
      }
    }
    return max;
  }
};

class LogHistogram {
 public:
  // Stripes trade memory for recorder independence. Four is enough to
  // take the serialization off a hot class without blowing the lazy
  // per-class footprint (4 stripes x 252 counters x 8 B ~= 8 KiB per
  // histogram, allocated only for classes that actually record).
  static constexpr std::size_t kStripes = 4;

  // Two RMWs on the hot path (bucket, total); the sample count is
  // derived at snapshot time as the sum of the buckets, which the
  // bucket RMWs keep exact.
  void record(std::uint64_t v) noexcept {
    Stripe& s = stripe_for_thread();
    s.counts[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    s.total.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = s.max.load(std::memory_order_relaxed);
    while (v > cur && !s.max.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed,
                          std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot snapshot() const noexcept {
    HistogramSnapshot out;
    for (const Stripe& s : stripes_) {
      for (std::size_t i = 0; i < kBucketCount; ++i) {
        const std::uint64_t c = s.counts[i].load(std::memory_order_relaxed);
        out.counts[i] += c;
        out.count += c;
      }
      out.total += s.total.load(std::memory_order_relaxed);
      const std::uint64_t m = s.max.load(std::memory_order_relaxed);
      if (m > out.max) out.max = m;
    }
    return out;
  }

  void reset() noexcept {
    for (Stripe& s : stripes_) {
      for (auto& c : s.counts) c.store(0, std::memory_order_relaxed);
      s.total.store(0, std::memory_order_relaxed);
      s.max.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(platform::kCacheLineSize) Stripe {
    std::atomic<std::uint64_t> counts[kBucketCount] = {};
    std::atomic<std::uint64_t> total{0};
    std::atomic<std::uint64_t> max{0};
  };

  Stripe& stripe_for_thread() noexcept {
    return stripes_[static_cast<std::size_t>(platform::self_pid()) &
                    (kStripes - 1)];
  }

  Stripe stripes_[kStripes];
};

}  // namespace resilock::observe
