#include "platform/topology.hpp"

#include <thread>

namespace resilock::platform {

Topology Topology::uniform(std::uint32_t domains,
                           std::uint32_t threads_per_domain) {
  return Topology(domains, threads_per_domain);
}

const Topology& Topology::host_default() {
  static const Topology topo = [] {
    const unsigned hw = hardware_threads();
    const std::uint32_t per_domain = hw > 1 ? (hw + 1) / 2 : 1;
    return Topology(2, per_domain);
  }();
  return topo;
}

unsigned hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n ? n : 1;
}

}  // namespace resilock::platform
