// Machine topology model for NUMA-aware locks.
//
// The paper evaluates on a dual-socket 24-core x 2-SMT Xeon (48 hardware
// threads, 2 NUMA domains). Reproduction hosts differ, so hierarchical
// locks (HMCS §3.8.1, HCLH §3.8.2, HBO §3.8.3, cohort locks §3.8.4) take
// an explicit Topology that maps a thread pid to its NUMA domain. The
// default models the paper's machine shape scaled to the host; tests use
// small fixed topologies for determinism.
#pragma once

#include <cstdint>
#include <vector>

#include "platform/thread_registry.hpp"

namespace resilock::platform {

class Topology {
 public:
  // `domains` NUMA domains, `threads_per_domain` pids per domain,
  // assigned round-robin in blocks: pid / threads_per_domain, wrapped.
  static Topology uniform(std::uint32_t domains,
                          std::uint32_t threads_per_domain);

  // Two domains sized for the host: models the paper's dual-socket box.
  static const Topology& host_default();

  std::uint32_t num_domains() const noexcept { return domains_; }
  std::uint32_t threads_per_domain() const noexcept { return per_domain_; }
  std::uint32_t total_slots() const noexcept { return domains_ * per_domain_; }

  std::uint32_t domain_of(pid_t pid) const noexcept {
    return (pid / per_domain_) % domains_;
  }

 private:
  Topology(std::uint32_t domains, std::uint32_t per_domain)
      : domains_(domains ? domains : 1),
        per_domain_(per_domain ? per_domain : 1) {}

  std::uint32_t domains_;
  std::uint32_t per_domain_;
};

// Number of hardware threads on this host (>= 1).
unsigned hardware_threads();

}  // namespace resilock::platform
