// Spin-wait primitives.
//
// All lock spin loops in this library go through SpinWait. It issues the
// architectural pause hint for a bounded number of iterations and then
// yields the processor. The yield does not change any lock protocol state;
// it only keeps busy-wait loops from live-locking the holder out of a
// core when the host has fewer hardware threads than the experiment has
// software threads (the paper ran on 48 hardware threads; reproduction
// hosts may be much smaller).
#pragma once

#include <cstdint>
#include <thread>

namespace resilock::platform {

// One architectural "I am spinning" hint.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // Fallback: compiler barrier only.
  asm volatile("" ::: "memory");
#endif
}

// Bounded spin, then yield. Reset whenever the condition being awaited
// makes progress.
class SpinWait {
 public:
  explicit SpinWait(std::uint32_t spins_before_yield = 256) noexcept
      : threshold_(spins_before_yield) {}

  void pause() noexcept {
    if (count_ < threshold_) {
      ++count_;
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { count_ = 0; }

  std::uint32_t spins() const noexcept { return count_; }

 private:
  std::uint32_t count_ = 0;
  std::uint32_t threshold_;
};

// Convenience: spin until `cond()` is true.
template <typename Cond>
void spin_until(Cond&& cond) {
  SpinWait w;
  while (!cond()) w.pause();
}

}  // namespace resilock::platform
