// Dense thread identifiers ("PIDs" in the paper's terminology).
//
// Several remedies in the paper store the owner's thread id inside the
// lock (TAS §3.1, Ticket §3.2, HBO §3.8.3, MCS-K42 §3.6) or index
// per-thread arrays by it (Graunke–Thakkar §3.3.2). OS thread ids are
// sparse and task runtimes may migrate tasks across OS threads (§2.3),
// so the library assigns its own dense ids: the first time a thread asks
// for its pid it gets the smallest free slot in [0, capacity), and the
// slot is recycled when the thread exits.
#pragma once

#include <cstdint>
#include <limits>

namespace resilock::platform {

using pid_t = std::uint32_t;

inline constexpr pid_t kInvalidPid = std::numeric_limits<pid_t>::max();

class ThreadRegistry {
 public:
  // Upper bound on concurrently registered threads. Sized generously;
  // per-thread lock arrays (ABQL slots, GT slots) use this as default.
  static constexpr pid_t kCapacity = 512;

  // Dense id of the calling thread; registers it on first use.
  // Never returns kInvalidPid (aborts if capacity exhausted).
  static pid_t current_pid();

  // Number of pids currently registered (for tests/diagnostics).
  static pid_t live_count();

  ThreadRegistry() = delete;
};

// Shorthand used throughout lock implementations.
inline pid_t self_pid() { return ThreadRegistry::current_pid(); }

}  // namespace resilock::platform
