#include "platform/affinity.hpp"

#include <pthread.h>
#include <sched.h>

#include <algorithm>

namespace resilock::platform {

std::vector<int> allowed_cpus() {
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) != 0) return {};
  std::vector<int> cpus;
  for (int c = 0; c < CPU_SETSIZE; ++c) {
    if (CPU_ISSET(c, &set)) cpus.push_back(c);
  }
  return cpus;
}

std::vector<int> placement_cpus(const Topology& topo,
                                const std::vector<int>& cpus,
                                std::size_t nthreads, Placement p) {
  std::vector<int> out;
  if (cpus.empty() || nthreads == 0) return out;
  out.reserve(nthreads);
  // Partition the allowed CPUs into num_domains() contiguous blocks —
  // the same block shape Topology::domain_of assumes for pids.
  const std::size_t domains =
      std::max<std::size_t>(1, std::min<std::size_t>(topo.num_domains(),
                                                     cpus.size()));
  const std::size_t per_dom = (cpus.size() + domains - 1) / domains;
  if (p == Placement::kCompact) {
    for (std::size_t i = 0; i < nthreads; ++i) {
      out.push_back(cpus[i % cpus.size()]);
    }
  } else {
    // Spread: walk domains round-robin, taking the next unused CPU of
    // each; wrap when the whole set is consumed.
    std::size_t taken = 0;
    std::vector<std::size_t> next_in_dom(domains, 0);
    std::size_t dom = 0;
    while (out.size() < nthreads) {
      const std::size_t base = dom * per_dom;
      const std::size_t limit =
          std::min(per_dom, cpus.size() - std::min(base, cpus.size()));
      if (next_in_dom[dom] < limit) {
        out.push_back(cpus[base + next_in_dom[dom]]);
        ++next_in_dom[dom];
        ++taken;
      }
      dom = (dom + 1) % domains;
      if (taken == cpus.size()) {  // all consumed: start a fresh pass
        std::fill(next_in_dom.begin(), next_in_dom.end(), 0);
        taken = 0;
      }
    }
  }
  return out;
}

bool pin_self_to(int cpu) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

}  // namespace resilock::platform
