// Bounded exponential backoff with multiplicative jitter.
//
// Used by TATAS-with-backoff (Mellor-Crummey & Scott 1991, §2) and by the
// HBO lock (Radovic & Hagersten 2003), where threads local to the lock
// holder's NUMA domain back off for a shorter period than remote threads.
#pragma once

#include <cstdint>

#include "platform/spin.hpp"

namespace resilock::platform {

class ExponentialBackoff {
 public:
  // `min_spins`/`max_spins` bound the pause count per backoff episode.
  explicit ExponentialBackoff(std::uint32_t min_spins = 4,
                              std::uint32_t max_spins = 1024,
                              std::uint64_t seed = 0x9E3779B97F4A7C15ull)
      : min_(min_spins ? min_spins : 1),
        max_(max_spins > min_ ? max_spins : min_),
        limit_(min_),
        state_(seed | 1) {}

  // Spin for a jittered count in [limit/2, limit], then double the limit.
  void pause() noexcept {
    const std::uint32_t half = limit_ / 2;
    const std::uint32_t span = limit_ - half;
    const std::uint32_t spins = half + (span ? next_rand() % span : 0) + 1;
    for (std::uint32_t i = 0; i < spins; ++i) cpu_relax();
    if (limit_ < max_) {
      limit_ *= 2;
      if (limit_ > max_) limit_ = max_;
    }
  }

  void reset() noexcept { limit_ = min_; }

  std::uint32_t current_limit() const noexcept { return limit_; }

 private:
  // xorshift64*; cheap thread-private jitter, not for statistics.
  std::uint32_t next_rand() noexcept {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return static_cast<std::uint32_t>((state_ * 0x2545F4914F6CDD1Dull) >> 32);
  }

  std::uint32_t min_;
  std::uint32_t max_;
  std::uint32_t limit_;
  std::uint64_t state_;
};

}  // namespace resilock::platform
