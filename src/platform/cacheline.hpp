// Cache-line geometry and padding helpers.
//
// Queue locks place each spin flag on its own cache line (Anderson 1990;
// Graunke & Thakkar 1990; Mellor-Crummey & Scott 1991) so that a waiter
// spins only on processor-local state. Everything here exists to make
// that property explicit in the type system.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace resilock::platform {

// std::hardware_destructive_interference_size is 64 on the x86-64 targets
// we care about, but using the constant directly avoids GCC's ABI warning
// and keeps layouts identical across compilers.
inline constexpr std::size_t kCacheLineSize = 64;

// A T alone on its own cache line. Used for per-thread spin flags in
// array-based queue locks, ReadIndicator slots, and statistics counters.
template <typename T>
struct alignas(kCacheLineSize) CacheLineAligned {
  static_assert(sizeof(T) <= kCacheLineSize,
                "value does not fit in a single cache line");

  T value{};

  CacheLineAligned() = default;
  template <typename... Args>
    requires(!(sizeof...(Args) == 1 &&
               (std::is_same_v<std::remove_cvref_t<Args>, CacheLineAligned> &&
                ...)))
  explicit CacheLineAligned(Args&&... args)
      : value(std::forward<Args>(args)...) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }

 private:
  char pad_[kCacheLineSize - sizeof(T) > 0 ? kCacheLineSize - sizeof(T)
                                           : 1] = {};
};

static_assert(sizeof(CacheLineAligned<int>) == kCacheLineSize);
static_assert(alignof(CacheLineAligned<int>) == kCacheLineSize);

}  // namespace resilock::platform
