#include "platform/thread_registry.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace resilock::platform {
namespace {

// One bit per pid slot, grouped into 64-bit words. Claiming scans for a
// clear bit with CAS; releasing clears it. Registration happens once per
// thread lifetime, so contention here is irrelevant to lock benchmarks.
std::atomic<std::uint64_t> g_slot_words[ThreadRegistry::kCapacity / 64];
std::atomic<std::uint32_t> g_live{0};

pid_t claim_slot() {
  for (;;) {
    for (std::size_t w = 0; w < ThreadRegistry::kCapacity / 64; ++w) {
      std::uint64_t bits = g_slot_words[w].load(std::memory_order_relaxed);
      while (bits != ~std::uint64_t{0}) {
        const int bit = __builtin_ctzll(~bits);
        const std::uint64_t want = bits | (std::uint64_t{1} << bit);
        if (g_slot_words[w].compare_exchange_weak(bits, want,
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_relaxed)) {
          g_live.fetch_add(1, std::memory_order_relaxed);
          return static_cast<pid_t>(w * 64 + bit);
        }
        // bits was refreshed by the failed CAS; retry this word.
      }
    }
    std::fprintf(stderr,
                 "resilock: thread registry exhausted (%u slots)\n",
                 ThreadRegistry::kCapacity);
    std::abort();
  }
}

void release_slot(pid_t pid) {
  const std::size_t w = pid / 64;
  const std::uint64_t mask = ~(std::uint64_t{1} << (pid % 64));
  g_slot_words[w].fetch_and(mask, std::memory_order_acq_rel);
  g_live.fetch_sub(1, std::memory_order_relaxed);
}

// RAII holder: registers lazily, releases at thread exit.
struct Slot {
  pid_t pid = kInvalidPid;
  ~Slot() {
    if (pid != kInvalidPid) release_slot(pid);
  }
};

thread_local Slot t_slot;

}  // namespace

pid_t ThreadRegistry::current_pid() {
  if (t_slot.pid == kInvalidPid) t_slot.pid = claim_slot();
  return t_slot.pid;
}

pid_t ThreadRegistry::live_count() {
  return g_live.load(std::memory_order_relaxed);
}

}  // namespace resilock::platform
