// Environment-variable parsing, in one place.
//
// Every RESILOCK_* knob used to reimplement its own getenv-and-parse
// (harness/evaluation.cpp, interpose/, shield/policy.hpp,
// lockdep/lockdep.cpp); the copies had already begun to drift (some
// accepted empty strings, some required exact "0"). These helpers are
// the single definition of how resilock reads its environment:
//   * env_raw    — the variable's value, nullptr when unset OR empty
//                  (an empty assignment means "use the default");
//   * env_u32    — positive integer; malformed or zero -> fallback;
//   * env_double — positive double; malformed or non-positive -> fallback;
//   * env_flag   — boolean: 0/false/off/no and 1/true/on/yes; anything
//                  else (including unset) -> fallback.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string_view>

namespace resilock::platform {

inline const char* env_raw(const char* name) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? v : nullptr;
}

inline std::uint32_t env_u32(const char* name, std::uint32_t fallback) {
  const char* v = env_raw(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const unsigned long u = std::strtoul(v, &end, 10);
  return (end != nullptr && *end == '\0' && u > 0)
             ? static_cast<std::uint32_t>(u)
             : fallback;
}

inline double env_double(const char* name, double fallback) {
  const char* v = env_raw(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const double d = std::strtod(v, &end);
  return (end != nullptr && *end == '\0' && d > 0.0) ? d : fallback;
}

inline bool env_flag(const char* name, bool fallback) {
  const char* v = env_raw(name);
  if (v == nullptr) return fallback;
  const std::string_view s(v);
  if (s == "0" || s == "false" || s == "off" || s == "no") return false;
  if (s == "1" || s == "true" || s == "on" || s == "yes") return true;
  return fallback;
}

}  // namespace resilock::platform
