// CPU-affinity placement helpers for the interposition drive harness.
//
// The paper's evaluation pins workload threads explicitly and sweeps
// placements across the two sockets (§6: same-socket vs cross-socket
// runs change which lock family wins). resilock_drive reproduces that
// by computing a CPU list from the Topology model — "compact" fills one
// domain before spilling to the next (the same-socket shape),
// "spread" round-robins domains (the cross-socket shape) — and passing
// it to the workload, which pins thread i to cpus[i % n].
//
// Placement is modeled over the Topology abstraction, not libnuma
// (which the toolchain image does not carry): CPU ids are taken from
// the process's current affinity mask and partitioned into
// num_domains() contiguous blocks, matching Topology::domain_of's
// block-round-robin pid assignment.
#pragma once

#include <cstddef>
#include <vector>

#include "platform/topology.hpp"

namespace resilock::platform {

// CPUs this process may run on, ascending. Empty only if
// sched_getaffinity fails (then callers skip pinning).
std::vector<int> allowed_cpus();

enum class Placement {
  kCompact,  // fill a domain before spilling into the next
  kSpread,   // round-robin across domains
};

// A CPU id per thread slot, |nthreads| long, drawn from `cpus`
// partitioned into topo.num_domains() blocks. CPUs repeat once
// nthreads exceeds the available set (oversubscription is a valid
// drive mode).
std::vector<int> placement_cpus(const Topology& topo,
                                const std::vector<int>& cpus,
                                std::size_t nthreads, Placement p);

// Pins the calling thread; false if the kernel refused.
bool pin_self_to(int cpu);

}  // namespace resilock::platform
