// Minimal JSON string escaping, shared by every emitter that prints
// user-controlled text (lockdep class labels, metrics gauge names,
// perfetto thread names) into a JSON document.
//
// The trace/metrics emitters are deliberately fprintf-based — no JSON
// library, bounded work on the collector thread — which made label
// strings a quoting hazard: a LockClassKey labeled `db["main"]` used
// to produce invalid JSONL. Everything that prints a string into JSON
// now routes through write_json_escaped, which emits the surrounding
// quotes and escapes the two structural characters plus control bytes
// (\uXXXX for anything below 0x20). Non-ASCII bytes pass through
// untouched: JSON is UTF-8 and the escapes above are the only ones
// required by RFC 8259.
#pragma once

#include <cstdio>
#include <string_view>

namespace resilock::platform {

inline void write_json_escaped(std::FILE* f, std::string_view s) {
  std::fputc('"', f);
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': std::fputs("\\\"", f); break;
      case '\\': std::fputs("\\\\", f); break;
      case '\n': std::fputs("\\n", f); break;
      case '\r': std::fputs("\\r", f); break;
      case '\t': std::fputs("\\t", f); break;
      default:
        if (c < 0x20) {
          std::fprintf(f, "\\u%04x", c);
        } else {
          std::fputc(ch, f);
        }
    }
  }
  std::fputc('"', f);
}

}  // namespace resilock::platform
