// Deadline math between the time vocabularies the parking tier speaks.
//
// Three parties disagree about time. POSIX timedlock entry points take
// an ABSOLUTE timespec on CLOCK_REALTIME (pthread_mutex_timedlock
// contract). futex(2) FUTEX_WAIT takes a RELATIVE timeout. The parking
// layer itself reasons in monotonic nanoseconds (a realtime deadline
// must be converted once, up front, or a wall-clock step mid-wait
// would stretch or shrink the wait). These helpers are the single
// place that conversion and its overflow handling live:
//
//   * ns_from_timespec / timespec_from_ns — saturating, never UB on
//     hostile input (tv_sec near the 64-bit horizon, negative fields);
//   * monotonic_deadline_from_realtime — pin a realtime abstime to a
//     monotonic deadline at call time;
//   * relative_until — the remaining-time timespec a futex wait wants,
//     recomputed per loop iteration (waits restart after spurious
//     wakes, so "remaining" shrinks each trip).
//
// Saturation convention: kNsInfinite (UINT64_MAX) means "never".
#pragma once

#include <cstdint>
#include <ctime>

namespace resilock::platform {

inline constexpr std::uint64_t kNsPerSec = 1000000000ull;
inline constexpr std::uint64_t kNsInfinite = ~std::uint64_t{0};

// POSIX validity: tv_nsec in [0, 1e9). (A negative tv_sec is a valid
// timespec — a deadline in the past — and clamps to "already expired".)
constexpr bool timespec_valid(const timespec& ts) noexcept {
  return ts.tv_nsec >= 0 && ts.tv_nsec < static_cast<long>(kNsPerSec);
}

constexpr std::uint64_t saturating_add_ns(std::uint64_t a,
                                          std::uint64_t b) noexcept {
  const std::uint64_t s = a + b;
  return s < a ? kNsInfinite : s;
}

// Saturating timespec -> ns. Negative times clamp to 0 (an expired
// deadline); seconds past the ns-representable horizon clamp to
// kNsInfinite rather than wrapping.
constexpr std::uint64_t ns_from_timespec(const timespec& ts) noexcept {
  if (ts.tv_sec < 0) return 0;
  const auto sec = static_cast<std::uint64_t>(ts.tv_sec);
  if (sec > kNsInfinite / kNsPerSec) return kNsInfinite;
  const std::uint64_t nsec =
      ts.tv_nsec > 0 ? static_cast<std::uint64_t>(ts.tv_nsec) : 0;
  return saturating_add_ns(sec * kNsPerSec, nsec);
}

constexpr timespec timespec_from_ns(std::uint64_t ns) noexcept {
  timespec ts{};
  ts.tv_sec = static_cast<time_t>(ns / kNsPerSec);
  ts.tv_nsec = static_cast<long>(ns % kNsPerSec);
  return ts;
}

// Now on `clk`, in saturating ns. 0 if the clock is unreadable (never
// the case for MONOTONIC/REALTIME on supported hosts).
inline std::uint64_t clock_now_ns(clockid_t clk) noexcept {
  timespec ts{};
  if (clock_gettime(clk, &ts) != 0) return 0;
  return ns_from_timespec(ts);
}

inline std::uint64_t monotonic_now_ns() noexcept {
  return clock_now_ns(CLOCK_MONOTONIC);
}

// Converts an ABSOLUTE CLOCK_REALTIME deadline (the POSIX timedlock
// contract) into an absolute CLOCK_MONOTONIC deadline in ns: the two
// clocks are sampled back to back and the realtime delta is re-based
// onto the monotonic clock. An abstime at or before "now" yields the
// current monotonic instant (immediately expired, never negative).
inline std::uint64_t monotonic_deadline_from_realtime(
    const timespec& abstime) noexcept {
  const std::uint64_t real_now = clock_now_ns(CLOCK_REALTIME);
  const std::uint64_t mono_now = monotonic_now_ns();
  const std::uint64_t abs_ns = ns_from_timespec(abstime);
  if (abs_ns <= real_now) return mono_now;
  return saturating_add_ns(mono_now, abs_ns - real_now);
}

// Remaining time until `deadline_ns` (monotonic), as the RELATIVE
// timespec a futex wait takes. False when the deadline already passed
// (the caller must not wait at all — a zero-relative futex wait would
// still enter the kernel).
inline bool relative_until(std::uint64_t deadline_ns, std::uint64_t now_ns,
                           timespec& out) noexcept {
  if (now_ns >= deadline_ns) return false;
  out = timespec_from_ns(deadline_ns - now_ns);
  return true;
}

}  // namespace resilock::platform
