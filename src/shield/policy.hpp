// Misuse policies for the ownership-shield subsystem.
//
// The paper bakes its remedies into each protocol (`Resilience::kResilient`
// per lock in src/core/); the shield takes the complementary, glibc-style
// route of a generic ownership layer *outside* the protocol. What that
// layer should do when it catches a misuse is a deployment decision, not a
// protocol decision — debug builds want a loud abort (Go's panic, §7),
// production wants silent suppression (the paper's resilient remedies),
// migrations want logging, and measurement runs want faithful
// pass-through so the original consequences stay observable.
//
// The process-wide default policy is RESILOCK_SHIELD_POLICY
// ("suppress" | "abort" | "log" | "passthrough", default "suppress") and
// can be changed at runtime; every Shield<L> instance can override it.
//
// Since the unified response engine (src/response/), this static
// policy is the *fallback* of the verdict pipeline: with
// RESILOCK_POLICY rules installed, a default-policy shield asks the
// engine first (telemetry-aware escalation) and only lands here when
// no rule matches. RESILOCK_SHIELD_POLICY is therefore a deprecated
// alias kept for compatibility — without rules it behaves exactly as
// it always did.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string_view>

#include "platform/env.hpp"
#include "platform/thread_registry.hpp"
#include "response/response.hpp"

namespace resilock::shield {

enum class ShieldPolicy : std::uint8_t {
  kSuppress,        // swallow the misuse; the API reports false/EPERM
  kAbort,           // print a diagnostic and abort() (Go-panic semantics)
  kLogAndSuppress,  // print a diagnostic, then suppress
  kPassThrough,     // count it, then hand it to the protocol untouched
};

// What the shield caught. `kDoubleUnlock` is the special case of an
// unbalanced unlock where the caller *was* the previous owner and simply
// unlocked once too often; `kUnbalancedUnlock` covers releases of a lock
// the caller never held (including a completely free lock);
// `kNonOwnerUnlock` is a release while another thread holds the lock —
// the paper's headline scenario; `kReentrantRelock` is a second acquire
// by the current owner of a non-reentrant lock (self-deadlock or
// protocol corruption in the original protocols).
enum class MisuseKind : std::uint8_t {
  kUnbalancedUnlock = 0,
  kDoubleUnlock = 1,
  kNonOwnerUnlock = 2,
  kReentrantRelock = 3,
};

inline constexpr std::size_t kMisuseKinds = 4;

constexpr const char* to_string(ShieldPolicy p) noexcept {
  switch (p) {
    case ShieldPolicy::kSuppress: return "suppress";
    case ShieldPolicy::kAbort: return "abort";
    case ShieldPolicy::kLogAndSuppress: return "log";
    case ShieldPolicy::kPassThrough: return "passthrough";
  }
  return "?";
}

constexpr const char* to_string(MisuseKind k) noexcept {
  switch (k) {
    case MisuseKind::kUnbalancedUnlock: return "unbalanced-unlock";
    case MisuseKind::kDoubleUnlock: return "double-unlock";
    case MisuseKind::kNonOwnerUnlock: return "non-owner-unlock";
    case MisuseKind::kReentrantRelock: return "reentrant-relock";
  }
  return "?";
}

inline std::optional<ShieldPolicy> policy_from_name(std::string_view name) {
  if (name == "suppress") return ShieldPolicy::kSuppress;
  if (name == "abort") return ShieldPolicy::kAbort;
  if (name == "log") return ShieldPolicy::kLogAndSuppress;
  if (name == "passthrough") return ShieldPolicy::kPassThrough;
  return std::nullopt;
}

// The engine's Action space is the policy space; this is the
// compatibility mapping that lets a static ShieldPolicy serve as the
// verdict-pipeline fallback.
constexpr response::Action to_action(ShieldPolicy p) noexcept {
  switch (p) {
    case ShieldPolicy::kSuppress: return response::Action::kSuppress;
    case ShieldPolicy::kAbort: return response::Action::kAbort;
    case ShieldPolicy::kLogAndSuppress: return response::Action::kLog;
    case ShieldPolicy::kPassThrough: return response::Action::kPassthrough;
  }
  return response::Action::kSuppress;
}

namespace detail {
inline std::atomic<ShieldPolicy>& default_policy_flag() {
  static std::atomic<ShieldPolicy> flag{[] {
    if (const char* v = platform::env_raw("RESILOCK_SHIELD_POLICY")) {
      if (auto p = policy_from_name(v)) return *p;
    }
    return ShieldPolicy::kSuppress;
  }()};
  return flag;
}
}  // namespace detail

// Process-wide default, picked up by every Shield constructed without an
// explicit policy. Runtime-settable (tests, REPL-style exploration).
inline ShieldPolicy default_shield_policy() noexcept {
  return detail::default_policy_flag().load(std::memory_order_relaxed);
}

inline void set_default_shield_policy(ShieldPolicy p) noexcept {
  detail::default_policy_flag().store(p, std::memory_order_relaxed);
}

// RAII pin for the process-wide default policy (the MisuseCheckGuard
// pattern): restores the previous default on scope exit, so code that
// pins a policy for a measurement or a test cannot leak it past an
// early return or an exception.
class ShieldPolicyGuard {
 public:
  explicit ShieldPolicyGuard(ShieldPolicy p)
      : previous_(default_shield_policy()) {
    set_default_shield_policy(p);
  }
  ~ShieldPolicyGuard() { set_default_shield_policy(previous_); }
  ShieldPolicyGuard(const ShieldPolicyGuard&) = delete;
  ShieldPolicyGuard& operator=(const ShieldPolicyGuard&) = delete;

 private:
  const ShieldPolicy previous_;
};

// Diagnostic line for kAbort / kLogAndSuppress. stderr + fprintf (not a
// logging framework) so it works inside interposed pthread programs.
inline void report_misuse(MisuseKind kind, const void* lock) {
  std::fprintf(stderr,
               "resilock[shield]: %s on lock %p by thread pid %u\n",
               to_string(kind), lock,
               static_cast<unsigned>(platform::self_pid()));
}

// Same line for the event kinds with no MisuseKind value (the rw
// misuses RwShield intercepts).
inline void report_misuse(response::ResponseEvent kind, const void* lock) {
  std::fprintf(stderr,
               "resilock[shield]: %s on lock %p by thread pid %u\n",
               response::to_string(kind), lock,
               static_cast<unsigned>(platform::self_pid()));
}

}  // namespace resilock::shield
