// Per-shield misuse counters, in the stats_lock snapshot idiom.
//
// A production shield is as much a telemetry source as a guard: knowing
// *that* misuse happens (and which kind, and how often) is what turns a
// suppressed bug into a fixed one (paper §7's feedback-to-programmer
// discussion). Unlike StatsLock (an opt-in wrapper), a shield fronts
// EVERY interposed mutex — PARSEC-style apps allocate millions — so the
// counters pack into two cache lines per instance instead of one line
// per counter: threads bumping them are already bouncing the lock's own
// line, so per-counter isolation buys nothing here.
#pragma once

#include <atomic>
#include <cstdint>

#include "platform/cacheline.hpp"
#include "shield/policy.hpp"

namespace resilock::shield {

struct ShieldSnapshot {
  std::uint64_t acquisitions = 0;       // base-protocol acquisitions
  std::uint64_t releases = 0;           // balanced releases (incl. absorbed)
  std::uint64_t reentrant_absorbed = 0; // relocks converted to depth bumps
  std::uint64_t suppressed = 0;         // misuses swallowed by policy
  std::uint64_t passed_through = 0;     // misuses forwarded to the base
  std::uint64_t misuse[kMisuseKinds] = {0, 0, 0, 0};

  std::uint64_t count(MisuseKind k) const {
    return misuse[static_cast<std::size_t>(k)];
  }

  std::uint64_t total_misuses() const {
    std::uint64_t t = 0;
    for (auto m : misuse) t += m;
    return t;
  }
};

class ShieldCounters {
  enum Slot : std::size_t {
    kAcquisitions = 0,
    kReleases = 1,
    kAbsorbed = 2,
    kSuppressed = 3,
    kPassedThrough = 4,
    kMisuseBase = 5,  // + MisuseKind, 4 slots
    kSlots = kMisuseBase + kMisuseKinds,
  };

 public:
  void bump_acquisition() { bump(kAcquisitions); }
  void bump_release() { bump(kReleases); }
  void bump_absorbed() { bump(kAbsorbed); }
  void bump_suppressed() { bump(kSuppressed); }
  void bump_passed_through() { bump(kPassedThrough); }
  void bump_misuse(MisuseKind k) {
    bump(kMisuseBase + static_cast<std::size_t>(k));
  }

  ShieldSnapshot snapshot() const {
    ShieldSnapshot s;
    s.acquisitions = read(kAcquisitions);
    s.releases = read(kReleases);
    s.reentrant_absorbed = read(kAbsorbed);
    s.suppressed = read(kSuppressed);
    s.passed_through = read(kPassedThrough);
    for (std::size_t i = 0; i < kMisuseKinds; ++i) {
      s.misuse[i] = read(kMisuseBase + i);
    }
    return s;
  }

  void reset() {
    for (auto& s : slots_) s.store(0, std::memory_order_relaxed);
  }

 private:
  void bump(std::size_t slot) {
    slots_[slot].fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t read(std::size_t slot) const {
    return slots_[slot].load(std::memory_order_relaxed);
  }

  // One aligned block (9 words, 2 cache lines), isolated from whatever
  // the shield places next to it.
  alignas(platform::kCacheLineSize) std::atomic<std::uint64_t>
      slots_[kSlots] = {};
};

}  // namespace resilock::shield
