// Shield<L>: a lock-agnostic ownership shield around any lock in src/core.
//
// The paper's remedies live *inside* each protocol (one bespoke
// kResilient fix per lock). The shield is the complementary design the
// paper contrasts them with: a generic ownership-tracking layer in front
// of the protocol — glibc's shield_arr approach from the Lock-Bench
// companion repo — that stops unbalanced unlock(), double unlock,
// unlock-by-non-owner, and (non-reentrant) relock *before they reach the
// protocol*. Because the base protocol never observes the misuse, even a
// kOriginal lock behind a shield keeps mutual exclusion and liveness
// under misuse, at the cost of one thread-local table probe per
// operation (bench/shield_overhead.cpp quantifies it against the native
// in-protocol checks).
//
// Interception map (policy decides the consequence, see policy.hpp):
//   acquire while already holding  -> kReentrantRelock
//       suppress: absorbed as a recursion-depth bump (the §3.9 reentrant
//       remedy), so the matching release is absorbed too.
//   release while not holding      -> classified by the shield's owner
//       tag: another thread holds it  -> kNonOwnerUnlock
//             nobody holds, caller was the previous owner
//                                     -> kDoubleUnlock
//             otherwise               -> kUnbalancedUnlock
//
// The §5 escape hatch is honored: with misuse_checks_enabled() == false
// (RESILOCK_DISABLE_CHECK=1) the shield forwards everything verbatim, so
// hand-off designs where one thread acquires and another releases work
// exactly as they do on the unshielded lock.
//
// Shield<L> satisfies the same Lockable shape as L (PlainLock stays
// plain, ContextLock keeps its Context), so it composes with LockGuard,
// StatsLock, AnyLockAdapter, and the registry.
//
// The shield is also the feeding point of the lockdep subsystem
// (src/lockdep/): every blocking acquire attempt records held-while-
// acquiring order edges (flagging AB/BA inversions and deadlock cycles
// before they can wedge, RESILOCK_LOCKDEP=report|abort|off), and every
// caught misuse is emitted as a timestamped trace event.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <type_traits>
#include <utility>

#include "core/contention.hpp"
#include "core/generic.hpp"
#include "core/lock_concepts.hpp"
#include "core/resilience.hpp"
#include "lockdep/class_key.hpp"
#include "lockdep/lockdep.hpp"
#include "observe/lockstat.hpp"
#include "park/parking_lot.hpp"
#include "platform/thread_registry.hpp"
#include "runtime/timer.hpp"
#include "response/response.hpp"
#include "shield/held_lock_table.hpp"
#include "shield/policy.hpp"
#include "shield/shield_stats.hpp"

namespace resilock::shield {

// The engine's tag space mirrors MisuseKind; keep them in lock step.
static_assert(static_cast<int>(response::ResponseEvent::kUnbalancedUnlock) ==
              static_cast<int>(MisuseKind::kUnbalancedUnlock));
static_assert(static_cast<int>(response::ResponseEvent::kReentrantRelock) ==
              static_cast<int>(MisuseKind::kReentrantRelock));

template <typename Base>
class Shield {
  static constexpr std::uint32_t kNoOwner = 0;

 public:
  using Context = context_of_t<Base>;

  Shield() : policy_(default_shield_policy()) {}

  // Per-instance policy override, plus perfect forwarding to the base
  // (topology-aware locks take their Topology through here). An
  // explicit policy always wins over RESILOCK_POLICY rules.
  template <typename... Args>
  explicit Shield(ShieldPolicy policy, Args&&... args)
      : base_(std::forward<Args>(args)...),
        policy_(policy),
        policy_explicit_(true) {}

  // Keyed construction (lockdep/class_key.hpp): every shield built
  // against `key` shares one lockdep class — container-level order
  // tracking with one class-table slot. Unkeyed shields keep the
  // per-instance default.
  template <typename... Args>
  explicit Shield(lockdep::LockClassKey& key, Args&&... args)
      : base_(std::forward<Args>(args)...),
        policy_(default_shield_policy()),
        lockdep_key_(&key) {}

  template <typename... Args>
  Shield(ShieldPolicy policy, lockdep::LockClassKey& key, Args&&... args)
      : base_(std::forward<Args>(args)...),
        policy_(policy),
        policy_explicit_(true),
        lockdep_key_(&key) {}

  // Base-constructor forwarding with the process-default policy.
  template <typename First, typename... Rest,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<First>, ShieldPolicy> &&
                !std::is_same_v<std::decay_t<First>,
                                lockdep::LockClassKey> &&
                !std::is_same_v<std::decay_t<First>, Shield>>>
  explicit Shield(First&& first, Rest&&... rest)
      : base_(std::forward<First>(first), std::forward<Rest>(rest)...),
        policy_(default_shield_policy()) {}

  Shield(const Shield&) = delete;
  Shield& operator=(const Shield&) = delete;

  ~Shield() {
    // A keyed class belongs to the key (other instances may still use
    // it); only per-instance classes retire with their shield.
    if (lockdep_key_ == nullptr) {
      lockdep::Graph::instance().retire_class(
          lockdep_class_.load(std::memory_order_relaxed));
    }
  }

  void acquire(Context& ctx) {
    // Lockstat call-site capture must happen HERE, in the body the
    // application called into, so the return address points at
    // application code (a noinline helper would collapse every site
    // into the shield). One relaxed flag load when lockstat is off.
    const bool lockstat = observe::lockstat_enabled();
    const void* site =
        lockstat ? observe::current_site(RESILOCK_RETURN_ADDRESS()) : nullptr;
    if (HeldLockTable::mine().holds(this) && confirm_held_or_heal() &&
        misuse_checks_enabled()) {
      if (intercept_relock()) return;  // absorbed as a depth bump
    }
    // Order edges are recorded at the ATTEMPT, before the base can
    // block: an acquisition about to close an AB/BA cycle is flagged
    // (or aborted) before it can actually wedge. The contention signal
    // rides along so a cycle-with-waiters escalation rule can fire —
    // "held by another thread" counts as contended even with an empty
    // waiter queue, because that is exactly the canonical two-thread
    // wedge shape (the other holder is parked on a DIFFERENT lock and
    // registers on that lock's gauge, not this one's).
    const std::uint32_t holder = owner_.load(std::memory_order_relaxed);
    const bool owned_by_other =
        holder != kNoOwner && holder != platform::self_pid() + 1;
    if (lockdep::lockdep_enabled()) {
      lockdep::on_acquire_attempt(this, lockdep_ensure_class(),
                                  contention_.waiters(), owned_by_other,
                                  AccessMode::kExclusive);
    }
    // Contention telemetry: one relaxed load on the uncontended path;
    // threads that observed the lock held register as live waiters for
    // the duration of the blocking acquire.
    const bool contended = holder != kNoOwner;
    // Telemetry wait spans (opt-in): bracket only the CONTENDED window
    // — an uncontended acquire costs one relaxed flag load and emits
    // nothing, keeping the default fast path identical to before.
    const bool span = contended && lockdep::span_tracing_enabled();
    const std::uint64_t wait_t0 =
        (lockstat && contended) ? runtime::now_ns() : 0;
    if (span) emit_span(lockdep::EventKind::kWaitBegin, site);
    if (contended) contention_.begin_wait();
    // Park attribution: the park layer sits below observe/ and cannot
    // name lockdep classes, so the class hint is stamped into the
    // thread's park tally for the duration of the contended acquire
    // (it rides on kParkBegin spans) and the tally delta is credited
    // to this class afterwards. Uncontended acquires skip all of it.
    park::ThreadParkTally& pt = park::ThreadParkTally::mine();
    const bool tally_parks = contended && (lockstat || span);
    std::uint64_t parks0 = 0, park_ns0 = 0, wakes0 = 0;
    std::uint32_t prev_hint = park::kNoClsHint;
    if (tally_parks) {
      parks0 = pt.parks;
      park_ns0 = pt.park_ns;
      wakes0 = pt.wakes;
      prev_hint = pt.cls_hint;
      pt.cls_hint = lockdep_ensure_class();
    }
    generic_acquire(base_, ctx);
    if (tally_parks) {
      pt.cls_hint = prev_hint;
      if (lockstat && pt.parks != parks0) {
        observe::on_parked(lockdep_ensure_class(), pt.parks - parks0,
                           pt.park_ns - park_ns0, pt.wakes - wakes0);
      }
    }
    if (contended) contention_.end_wait();
    if (span) emit_span(lockdep::EventKind::kWaitEnd, site);
    if (lockstat && contended) {
      observe::on_contended_wait(lockdep_ensure_class(),
                                 runtime::now_ns() - wait_t0);
    }
    note_base_acquired(ctx, site);
  }

  bool try_acquire(Context& ctx)
    requires(generic_has_trylock<Base>())
  {
    const bool lockstat = observe::lockstat_enabled();
    const void* site =
        lockstat ? observe::current_site(RESILOCK_RETURN_ADDRESS()) : nullptr;
    if (HeldLockTable::mine().holds(this) && confirm_held_or_heal() &&
        misuse_checks_enabled()) {
      if (intercept_relock()) return true;  // absorbed
      if (!generic_try_acquire(base_, ctx)) {
        if (lockstat) observe::on_trylock_fail(lockdep_ensure_class());
        return false;
      }
      note_base_acquired(ctx, site);  // kPassThrough: faithful
      return true;
    }
    if (!generic_try_acquire(base_, ctx)) {
      if (lockstat) observe::on_trylock_fail(lockdep_ensure_class());
      return false;
    }
    note_base_acquired(ctx, site);
    return true;
  }

  bool release(Context& ctx) {
    const std::uint32_t me = platform::self_pid() + 1;
    auto& tbl = HeldLockTable::mine();
    int remaining = tbl.note_released(this);
    if (remaining != HeldLockTable::kNotHeld &&
        owner_.load(std::memory_order_relaxed) != me) {
      // Stale entry: the lock left this thread through the §5 escape
      // hatch (cross-thread release with checks disabled). Releasing on
      // the strength of that entry would free a lock some *other*
      // thread may now hold — drain the stale depth and treat this call
      // as releasing a lock the thread does not hold.
      while (tbl.note_released(this) > 0) {
      }
      lockdep::on_released(this);
      remaining = HeldLockTable::kNotHeld;
    }
    if (remaining > 0) {  // matching release of an absorbed relock
      counters_.bump_release();
      return true;
    }
    if (remaining == 0) {  // balanced: the base really gets released
      if (lockdep::span_tracing_enabled()) {
        emit_span(lockdep::EventKind::kHoldEnd);
      }
      if (observe::lockstat_enabled()) observe::on_released(this);
      lockdep::on_released(this);
      clear_owner_mirror();
      last_owner_.store(me, std::memory_order_relaxed);
      owner_.store(kNoOwner, std::memory_order_relaxed);
      bool ok;
      if constexpr (ContextLock<Base>) {
        // The base was acquired with the context recorded at acquire
        // time; an absorbed relock may hand release() a context the
        // base never enqueued (self-deadlock bait).
        Context* base_ctx = active_ctx_;
        active_ctx_ = nullptr;
        ok = generic_release(base_, base_ctx != nullptr ? *base_ctx : ctx);
      } else {
        ok = generic_release(base_, ctx);
      }
      counters_.bump_release();
      return ok;
    }
    // Not held by this thread.
    if (!misuse_checks_enabled()) {
      // §5 escape hatch: trust the caller and behave like the base.
      // Clearing the owner tag lets the acquiring thread's stale table
      // entry self-heal on its next acquire (confirm_held_or_heal).
      // The releasing thread has no acquisition-stack entry for this
      // lock, so on_released is a no-op here; clearing the graph-side
      // owner mirror is what invalidates the ACQUIRER's stale stack
      // entry — its next blocking acquire purges it instead of
      // recording orders it never held across.
      owner_.store(kNoOwner, std::memory_order_relaxed);
      clear_owner_mirror();
      return generic_release(base_, ctx);
    }
    const MisuseKind kind = classify_release(me);
    if (apply_policy(kind)) return false;  // suppressed
    return generic_release(base_, ctx);    // kPassThrough: faithful
  }

  // PlainLock convenience overloads (the context is stateless).
  void acquire()
    requires(std::is_same_v<Context, NoContext>)
  {
    NoContext c;
    acquire(c);
  }
  bool release()
    requires(std::is_same_v<Context, NoContext>)
  {
    NoContext c;
    return release(c);
  }
  bool try_acquire()
    requires(std::is_same_v<Context, NoContext> &&
             generic_has_trylock<Base>())
  {
    NoContext c;
    return try_acquire(c);
  }

  // -- policy engine ---------------------------------------------------
  ShieldPolicy policy() const {
    return policy_.load(std::memory_order_relaxed);
  }
  // An explicitly set policy pins this instance: RESILOCK_POLICY rules
  // no longer apply to it (same precedence as the policy constructor).
  void set_policy(ShieldPolicy p) {
    policy_.store(p, std::memory_order_relaxed);
    policy_explicit_.store(true, std::memory_order_relaxed);
  }

  // -- lockdep integration ---------------------------------------------
  // Stable human-readable class label for lockdep reports (the registry
  // passes the algorithm name). Set before first use; not synchronized.
  void set_lockdep_label(const char* label) { lockdep_label_ = label; }

  // This shield's lockdep class id: kInvalidClass before the first
  // tracked acquire, kUntrackedClass if the class table was full.
  lockdep::ClassId lockdep_class() const {
    return lockdep_class_.load(std::memory_order_acquire);
  }

  // -- telemetry --------------------------------------------------------
  ShieldSnapshot snapshot() const { return counters_.snapshot(); }
  void reset_stats() { counters_.reset(); }

  // Live contention telemetry — the signals the response engine keys
  // escalation off (core/contention.hpp).
  std::uint32_t waiters() const { return contention_.waiters(); }
  std::uint64_t contended_total() const {
    return contention_.contended_total();
  }
  ContentionSnapshot contention() const { return contention_.snapshot(); }

  // Calling thread's recursion depth on this shield (0 == not held).
  std::uint32_t held_depth() const {
    return HeldLockTable::mine().depth(this);
  }

  // Every exclusive-shield hold is tagged kExclusive in the (now
  // mode-aware) held-locks table; the rw family records kRead/kWrite
  // through RwShield (shield/rw_shield.hpp).
  AccessMode held_mode() const {
    return HeldLockTable::mine().mode_of(this);
  }

  Base& base() { return base_; }
  const Base& base() const { return base_; }

  static constexpr Resilience resilience() { return Base::resilience(); }

 private:
  // Records the misuse and runs the verdict pipeline shared by every
  // interception point. Returns true when the verdict suppresses the
  // misuse (kAbort only returns through a verify/test abort trap);
  // false means passthrough and the caller must forward to the base
  // protocol, misbehavior and all.
  //
  // Precedence: an explicit per-instance policy is final; otherwise
  // the response engine decides from (event, contention telemetry,
  // lockdep state), falling back to this instance's captured default
  // policy when no rule matches — which is exactly the pre-engine
  // behavior when RESILOCK_POLICY is unset.
  bool apply_policy(MisuseKind kind) {
    counters_.bump_misuse(kind);
    const auto ev =
        static_cast<response::ResponseEvent>(static_cast<std::uint8_t>(kind));
    // With lockstat on, a misuse must register the class even when it
    // fires before the first acquire, or the per-class misuse tally
    // would silently undercount the shield's own counters.
    const lockdep::ClassId cls =
        observe::lockstat_enabled()
            ? lockdep_ensure_class()
            : lockdep_class_.load(std::memory_order_relaxed);
    if (observe::lockstat_enabled()) observe::on_misuse(cls);
    response::Action action;
    if (policy_explicit_.load(std::memory_order_relaxed)) {
      action = to_action(policy());
    } else {
      response::EventContext ctx;
      ctx.waiters = contention_.waiters();
      ctx.waiters_parked = base_parked_waiters();
      ctx.contended = ctx.waiters > 0;
      ctx.in_flagged_cycle = lockdep::Graph::instance().is_flagged(cls);
      ctx.cls = cls;
      ctx.cls_label = lockdep::Graph::instance().label_of(cls);
      action = response::ResponseEngine::instance().decide(
          ev, ctx, to_action(policy()));
    }
    // Every caught misuse also becomes a timestamped trace event
    // (src/lockdep/event_ring.hpp); MisuseKind values map one-to-one
    // onto the low EventKind values, and the shield's lockdep class and
    // the verdict ride along so post-mortem traces show both what the
    // engine decided and which class the misuse is attributed to.
    lockdep::TraceBuffer::instance().emit(
        static_cast<lockdep::EventKind>(static_cast<std::uint8_t>(kind)),
        this, cls, lockdep::kNoClassTag,
        static_cast<std::uint8_t>(action));
    // An absorbed unlock-family misuse orphans the base protocol's
    // waiters: the misbehaving thread will never deliver the hand-off
    // they are waiting for. A spinning waiter rides it out until the
    // REAL owner releases; a parked one would sleep forever. Rescue:
    // broadcast-wake the lock's parked waiters so they re-check and
    // re-park against the legitimate hand-off. (Relock absorption
    // keeps the hold intact — nothing to rescue.)
    if (action != response::Action::kPassthrough &&
        kind != MisuseKind::kReentrantRelock) {
      base_misuse_wake();
    }
    switch (action) {
      case response::Action::kAbort:
        report_misuse(kind, this);
        response::dispatch_abort(ev, this);
        // An abort trap chose to survive: degrade to suppression.
        counters_.bump_suppressed();
        return true;
      case response::Action::kLog:
        report_misuse(kind, this);
        [[fallthrough]];
      case response::Action::kSuppress:
        counters_.bump_suppressed();
        return true;
      case response::Action::kPassthrough:
        counters_.bump_passed_through();
        return false;
    }
    return true;  // unreachable
  }

  // Parking hook points, present only when the base has a parking
  // tier (MCS/CLH/Ticket/HMCS); the TAS/backoff family compiles to
  // no-ops through the requires clauses.
  std::uint32_t base_parked_waiters() const {
    if constexpr (requires(const Base& b) { b.parked_waiters(); }) {
      return base_.parked_waiters();
    } else {
      return 0;
    }
  }

  void base_misuse_wake() {
    if constexpr (requires(Base& b) { b.misuse_wake(); }) {
      base_.misuse_wake();
    }
  }

  // Returns true when the relock was absorbed (caller must not touch the
  // base); false means the policy is kPassThrough and the caller should
  // forward to the base protocol.
  bool intercept_relock() {
    if (!apply_policy(MisuseKind::kReentrantRelock)) return false;
    counters_.bump_absorbed();
    HeldLockTable::mine().note_acquired(this);
    return true;
  }

  // Validates this thread's table entry against the owner tag. True
  // means the thread really holds the base lock (a second acquire is a
  // genuine reentrant relock). A mismatch means the lock left this
  // thread through the §5 escape hatch — a cross-thread release with
  // checks disabled — so the stale entry is dropped and the caller
  // proceeds as a normal first acquire.
  bool confirm_held_or_heal() {
    if (owner_.load(std::memory_order_relaxed) ==
        platform::self_pid() + 1) {
      return true;
    }
    auto& tbl = HeldLockTable::mine();
    while (tbl.note_released(this) > 0) {
    }
    lockdep::on_released(this);  // purge the stale stack entry too
    return false;
  }

  // Lazily registers this shield in the lockdep class table — its own
  // class by default, the key's shared class when keyed. Racing first
  // acquires CAS; the loser returns its surplus id (keyed shields get
  // the same id from the key, so the CAS cannot lose a distinct one).
  lockdep::ClassId lockdep_ensure_class() {
    lockdep::ClassId id = lockdep_class_.load(std::memory_order_acquire);
    if (id != lockdep::kInvalidClass) return id;
    const lockdep::ClassId fresh =
        lockdep_key_ != nullptr
            ? lockdep_key_->ensure(lockdep_label_)
            : lockdep::Graph::instance().register_class(this,
                                                        lockdep_label_);
    lockdep::ClassId expected = lockdep::kInvalidClass;
    if (!lockdep_class_.compare_exchange_strong(
            expected, fresh, std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      if (lockdep_key_ == nullptr) {
        lockdep::Graph::instance().retire_class(fresh);
      }
      return expected;
    }
    return fresh;
  }

  // The graph-side owner mirror identifies per-instance classes only;
  // a shared (keyed) class has many concurrent owners, so keyed
  // shields skip it rather than thrash one word across instances.
  void clear_owner_mirror() {
    if (lockdep_key_ == nullptr) {
      lockdep::Graph::instance().clear_owner(
          lockdep_class_.load(std::memory_order_relaxed));
    }
  }

  void note_base_acquired(Context& ctx, const void* site = nullptr) {
    if (lockdep::lockdep_enabled()) {
      // Try-path acquisitions register here (no blocking attempt ran);
      // they add no order edges — a trylock cannot wedge — but must
      // enter the held set so later blocking acquires see them. The
      // graph-side owner mirror is what lets other code validate a
      // stack entry without touching this object (it may be destroyed
      // by then); shared keyed classes have no usable mirror and skip
      // it.
      const lockdep::ClassId cls = lockdep_ensure_class();
      lockdep::on_acquired(this, cls, AccessMode::kExclusive);
      if (lockdep_key_ == nullptr) {
        lockdep::Graph::instance().note_owner(
            cls, platform::self_pid() + 1);
      }
    }
    owner_.store(platform::self_pid() + 1, std::memory_order_relaxed);
    if constexpr (ContextLock<Base>) {
      // Plain locks pass throwaway stack NoContexts — never retain
      // those; only a real base context must be remembered for release.
      active_ctx_ = &ctx;
    } else {
      (void)ctx;
    }
    HeldLockTable::mine().note_acquired(this, AccessMode::kExclusive);
    counters_.bump_acquisition();
    if (observe::lockstat_enabled()) {
      observe::on_acquired(this, lockdep_ensure_class(),
                           AccessMode::kExclusive, site);
    }
    if (lockdep::span_tracing_enabled()) {
      emit_span(lockdep::EventKind::kHoldBegin, site);
    }
  }

  // Hold/wait span marker for the telemetry timeline (paired into
  // slices by the perfetto sink). The class tag rides along so traces
  // group by lock class, not just instance address; the acquisition
  // call site (when lockstat captured one) rides to the exporters.
  void emit_span(lockdep::EventKind kind, const void* site = nullptr) {
    lockdep::TraceBuffer::instance().emit(
        kind, this, lockdep_class_.load(std::memory_order_relaxed),
        lockdep::kNoClassTag, lockdep::kNoVerdict, lockdep::kNoMode, 0,
        reinterpret_cast<std::uint64_t>(site));
  }

  MisuseKind classify_release(std::uint32_t me) const {
    const std::uint32_t owner = owner_.load(std::memory_order_relaxed);
    if (owner != kNoOwner && owner != me) {
      return MisuseKind::kNonOwnerUnlock;
    }
    if (owner == kNoOwner &&
        last_owner_.load(std::memory_order_relaxed) == me) {
      return MisuseKind::kDoubleUnlock;
    }
    return MisuseKind::kUnbalancedUnlock;
  }

  Base base_;
  std::atomic<ShieldPolicy> policy_;
  // True when the policy was chosen per instance (constructor or
  // set_policy): the verdict pipeline then never overrides it.
  std::atomic<bool> policy_explicit_{false};
  // Live waiter gauge + cumulative contended-acquire count
  // (core/contention.hpp) — the telemetry half of the engine's inputs.
  ContentionProbe contention_;
  // Owner tag (pid+1) for release classification only — the held-locks
  // table, not this word, decides balanced vs unbalanced, so a stale
  // read here can at worst mislabel the *kind* of an already-detected
  // misuse, never miss or invent one.
  std::atomic<std::uint32_t> owner_{kNoOwner};
  std::atomic<std::uint32_t> last_owner_{kNoOwner};
  // Context the base was actually acquired with — what the base must be
  // released with, even when an absorbed relock handed release() a
  // different context. Only the owning thread touches it between a
  // base acquire and the matching base release (guarded by base_), so
  // a plain pointer suffices; §5 hand-off releases bypass it.
  Context* active_ctx_ = nullptr;
  // Lockdep class of this shield: registered on first tracked acquire,
  // retired (and its order edges cleared) on destruction — unless the
  // shield was built against a LockClassKey, whose shared class the
  // key owns.
  std::atomic<lockdep::ClassId> lockdep_class_{lockdep::kInvalidClass};
  lockdep::LockClassKey* lockdep_key_ = nullptr;
  const char* lockdep_label_ = nullptr;
  ShieldCounters counters_;
};

}  // namespace resilock::shield

namespace resilock {
// The shield is part of the lock vocabulary: resilock::Shield<L>.
using shield::Shield;
}  // namespace resilock
