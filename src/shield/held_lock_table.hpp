// Per-thread held-locks table — the shield's source of truth for "does
// the calling thread hold this lock, and how deep?".
//
// Modeled on the glibc `shield_arr` layer from the Lock-Bench companion
// repo (SNIPPETS.md): a small thread-local array of (lock, recursion
// count) entries consulted before every acquire/release. Two bugs in
// that exemplar are fixed here:
//
//   1. Off-by-one: its lookup/insert guard is `lock_count <= MAX_LOCKS`,
//      so the insert at `lock_table[lock_count]` writes one past the end
//      of the array when the table is full, and its decrement guard is
//      `lock_count < MAX_LOCKS`, so a release with an *exactly full*
//      table is refused as unbalanced even though the entry is present.
//   2. Overflow loss: once more than MAX_LOCKS locks are held the extra
//      entries are silently dropped, and every later unlock of a dropped
//      lock is misreported as unbalanced.
//
// Here the fixed-size array is only the fast path (kFastSlots covers the
// common "a thread holds a handful of locks" case with zero allocation);
// deeper nests spill into a per-thread hash map, so the table is exact
// at any depth. Everything is thread-local: no atomics, no sharing.
//
// Every entry carries the AccessMode it was acquired under (exclusive
// for plain mutexes, read/write for the rw family), so the release path
// can detect mode mismatches — releasing a read hold as a write and
// vice versa — in addition to unbalanced releases. Recursion bumps keep
// the mode of the first acquisition.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "core/access_mode.hpp"

namespace resilock::shield {

class HeldLockTable {
 public:
  // Sized for the common case; PARSEC-style apps rarely nest deeper
  // than a few locks per thread. Beyond this the spill map takes over.
  static constexpr std::size_t kFastSlots = 8;

  // Sentinel returned by note_released() when the calling thread does
  // not hold the lock at all.
  static constexpr int kNotHeld = -1;
  // Sentinel returned by note_released_in_mode() when the lock is held
  // but under a DIFFERENT AccessMode than the release names (the entry
  // is left untouched — the caller decides the misuse consequence).
  static constexpr int kWrongMode = -2;

  // The calling thread's table (lazily constructed thread-local).
  static HeldLockTable& mine() {
    thread_local HeldLockTable table;
    return table;
  }

  // Recursion depth of `lock` in this thread's table; 0 when not held.
  std::uint32_t depth(const void* lock) const {
    for (std::size_t i = 0; i < fast_count_; ++i) {
      if (fast_[i].lock == lock) return fast_[i].depth;
    }
    if (!spill_.empty()) {
      auto it = spill_.find(lock);
      if (it != spill_.end()) return it->second.depth;
    }
    return 0;
  }

  bool holds(const void* lock) const { return depth(lock) > 0; }

  // AccessMode the calling thread holds `lock` under. Only meaningful
  // while holds(lock); kExclusive when the lock is not held.
  AccessMode mode_of(const void* lock) const {
    for (std::size_t i = 0; i < fast_count_; ++i) {
      if (fast_[i].lock == lock) return fast_[i].mode;
    }
    if (!spill_.empty()) {
      auto it = spill_.find(lock);
      if (it != spill_.end()) return it->second.mode;
    }
    return AccessMode::kExclusive;
  }

  // Records one acquisition in `mode`: inserts with depth 1, or bumps
  // the recursion count when already held (absorbed reentrant acquire —
  // the entry keeps the mode of the FIRST acquisition).
  void note_acquired(const void* lock,
                     AccessMode mode = AccessMode::kExclusive) {
    for (std::size_t i = 0; i < fast_count_; ++i) {
      if (fast_[i].lock == lock) {
        ++fast_[i].depth;
        return;
      }
    }
    if (!spill_.empty()) {
      auto it = spill_.find(lock);
      if (it != spill_.end()) {
        ++it->second.depth;
        return;
      }
    }
    if (fast_count_ < kFastSlots) {  // strict <: the exemplar's OOB fix
      fast_[fast_count_++] = Entry{lock, 1, mode};
    } else {
      auto& cell = spill_[lock];
      cell.mode = mode;
      ++cell.depth;
    }
  }

  // Records one release. Returns the remaining recursion depth (0 means
  // the lock is now fully released and the entry is gone), or kNotHeld
  // when the calling thread does not hold `lock` — the shield's
  // unbalanced-unlock signal.
  int note_released(const void* lock) {
    for (std::size_t i = 0; i < fast_count_; ++i) {
      if (fast_[i].lock != lock) continue;
      if (fast_[i].depth > 1) return static_cast<int>(--fast_[i].depth);
      // Compact: move the last fast entry into the freed slot, then
      // promote one spilled entry so the fast path stays full.
      fast_[i] = fast_[--fast_count_];
      if (!spill_.empty()) {
        auto it = spill_.begin();
        fast_[fast_count_++] =
            Entry{it->first, it->second.depth, it->second.mode};
        spill_.erase(it);
      }
      return 0;
    }
    if (!spill_.empty()) {
      auto it = spill_.find(lock);
      if (it != spill_.end()) {
        if (it->second.depth > 1) {
          return static_cast<int>(--it->second.depth);
        }
        spill_.erase(it);
        return 0;
      }
    }
    return kNotHeld;
  }

  // Mode-checked release in ONE table scan (the rw shield's release
  // fast path): kNotHeld when absent, kWrongMode when held under a
  // different mode (entry untouched), otherwise the remaining depth
  // exactly like note_released().
  int note_released_in_mode(const void* lock, AccessMode mode) {
    for (std::size_t i = 0; i < fast_count_; ++i) {
      if (fast_[i].lock != lock) continue;
      if (fast_[i].mode != mode) return kWrongMode;
      if (fast_[i].depth > 1) return static_cast<int>(--fast_[i].depth);
      fast_[i] = fast_[--fast_count_];
      if (!spill_.empty()) {
        auto it = spill_.begin();
        fast_[fast_count_++] =
            Entry{it->first, it->second.depth, it->second.mode};
        spill_.erase(it);
      }
      return 0;
    }
    if (!spill_.empty()) {
      auto it = spill_.find(lock);
      if (it != spill_.end()) {
        if (it->second.mode != mode) return kWrongMode;
        if (it->second.depth > 1) {
          return static_cast<int>(--it->second.depth);
        }
        spill_.erase(it);
        return 0;
      }
    }
    return kNotHeld;
  }

  // Number of distinct locks this thread currently holds.
  std::size_t held_count() const { return fast_count_ + spill_.size(); }

  // True while every held lock fits in the no-allocation fast path.
  bool fast_path_only() const { return spill_.empty(); }

 private:
  struct Entry {
    const void* lock = nullptr;
    std::uint32_t depth = 0;
    AccessMode mode = AccessMode::kExclusive;
  };

  struct SpillCell {
    std::uint32_t depth = 0;
    AccessMode mode = AccessMode::kExclusive;
  };

  std::array<Entry, kFastSlots> fast_{};
  std::size_t fast_count_ = 0;
  std::unordered_map<const void*, SpillCell> spill_;
};

}  // namespace resilock::shield
