// RwShield<L>: the mode-aware ownership shield for the reader-writer
// family (core/rw/crw.hpp).
//
// Shield<L> models every acquisition as exclusive; a C-RW lock breaks
// that assumption in both directions — read holds coexist, and the
// paper's §4 analysis shows the R side's misuse (RUnlock without RLock)
// is *undetectable inside the protocol* for every compact ReadIndicator:
// the indicator counts without identity, so a bogus depart silently
// skews it forever (readers and writers co-resident in the CS, then
// writer starvation). RwShield solves that open problem the same way
// the exclusive shield solved unbalanced unlock: ownership tracking in
// FRONT of the protocol. The per-thread HeldLockTable entry carries the
// AccessMode of the hold, so the shield can intercept, before the
// indicator or the cohort lock can be corrupted:
//
//   runlock while not holding        -> kUnbalancedReadUnlock
//   runlock while holding WRITE      -> kRwModeMismatch
//   wunlock while holding READ       -> kRwModeMismatch
//   wunlock while not holding        -> kNonOwnerWriteUnlock when
//       another thread write-holds; kDoubleUnlock when the caller was
//       the previous writer; kUnbalancedUnlock otherwise
//   rlock  while holding READ        -> kReentrantRelock (absorbed as a
//       recursion-depth bump — pthread read locks are recursive; the
//       checked indicator would refuse the double arrive)
//   wlock  while holding WRITE       -> kReentrantRelock (absorbed)
//   rlock  while holding WRITE       -> kRwModeMismatch (absorbed: a
//       write hold already implies read permission)
//   wlock  while holding READ        -> kRwModeMismatch (absorbed: a
//       passthrough upgrade self-deadlocks — the writer spins on an
//       indicator that contains the caller itself)
//
// Verdicts route through the same response-engine pipeline as the
// exclusive shield (policy fallback, RESILOCK_POLICY rules, abort
// dispatch), with the rw contention signal — live blocked writers PLUS
// the ReadIndicator's reader estimate — as the EventContext. Lockdep
// sees read acquisitions as AccessMode::kRead and write acquisitions
// as kWrite, so R–R dependencies are edge-free and only write-involved
// orders can flag inversions (lockdep/lockdep.hpp).
//
// The shield's lockdep class is registered SHARED (one class, many
// concurrent reader "owners"): the graph's single-owner mirror cannot
// describe a read-held lock, exactly the property shared classes exist
// for.
//
// The §5 escape hatch is honored: with misuse_checks_enabled() == false
// every call forwards verbatim (local table entries are drained on the
// way through so re-enabling checks later does not see phantom holds).
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "core/access_mode.hpp"
#include "core/contention.hpp"
#include "core/resilience.hpp"
#include "lockdep/lockdep.hpp"
#include "observe/lockstat.hpp"
#include "platform/cacheline.hpp"
#include "platform/thread_registry.hpp"
#include "response/response.hpp"
#include "shield/held_lock_table.hpp"
#include "shield/policy.hpp"

namespace resilock::shield {

// The rw tail of the shared tag space; keep in lock step with
// lockdep::EventKind.
static_assert(static_cast<int>(response::ResponseEvent::kUnbalancedReadUnlock) ==
              static_cast<int>(lockdep::EventKind::kUnbalancedReadUnlock));
static_assert(static_cast<int>(response::ResponseEvent::kRwModeMismatch) ==
              static_cast<int>(lockdep::EventKind::kRwModeMismatch));
static_assert(static_cast<int>(response::ResponseEvent::kNonOwnerWriteUnlock) ==
              static_cast<int>(lockdep::EventKind::kNonOwnerWriteUnlock));

struct RwShieldSnapshot {
  std::uint64_t read_acquisitions = 0;   // base rlock grants
  std::uint64_t write_acquisitions = 0;  // base wlock grants
  std::uint64_t read_releases = 0;       // balanced runlocks (incl. absorbed)
  std::uint64_t write_releases = 0;      // balanced wunlocks (incl. absorbed)
  std::uint64_t absorbed = 0;            // acquire-side depth bumps
  std::uint64_t suppressed = 0;          // misuses swallowed by verdict
  std::uint64_t passed_through = 0;      // misuses forwarded to the base
  // Indexed by response::ResponseEvent value; only the misuse kinds
  // (0..3 and 6..8) are ever bumped.
  std::uint64_t misuse[response::kResponseEvents] = {};

  std::uint64_t count(response::ResponseEvent e) const {
    return misuse[static_cast<std::size_t>(e)];
  }
  std::uint64_t total_misuses() const {
    std::uint64_t t = 0;
    for (auto m : misuse) t += m;
    return t;
  }
};

template <typename Base>
class RwShield {
  static constexpr std::uint32_t kNoOwner = 0;
  using Event = response::ResponseEvent;

 public:
  using Context = typename Base::Context;

  RwShield() : policy_(default_shield_policy()) {}

  // Per-instance policy override plus perfect forwarding to the base
  // (topology-aware rw locks take their Topology through here). An
  // explicit policy always wins over RESILOCK_POLICY rules.
  template <typename... Args>
  explicit RwShield(ShieldPolicy policy, Args&&... args)
      : base_(std::forward<Args>(args)...),
        policy_(policy),
        policy_explicit_(true) {}

  template <typename First, typename... Rest,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<First>, ShieldPolicy> &&
                !std::is_same_v<std::decay_t<First>, RwShield>>>
  explicit RwShield(First&& first, Rest&&... rest)
      : base_(std::forward<First>(first), std::forward<Rest>(rest)...),
        policy_(default_shield_policy()) {}

  RwShield(const RwShield&) = delete;
  RwShield& operator=(const RwShield&) = delete;

  ~RwShield() {
    lockdep::Graph::instance().retire_class(
        lockdep_class_.load(std::memory_order_relaxed));
  }

  // ---------------------------------------------------------------- //
  //  Read side.
  // ---------------------------------------------------------------- //

  void rlock(Context& ctx) {
    // Call-site capture stays in this body so the return address
    // points at application code (see Shield::acquire).
    const bool lockstat = observe::lockstat_enabled();
    const void* site =
        lockstat ? observe::current_site(RESILOCK_RETURN_ADDRESS()) : nullptr;
    auto& tbl = HeldLockTable::mine();
    // `fresh` reflects the table, not the policy outcome: a forwarded
    // (passthrough or §5-disabled) re-acquire must neither bump the
    // table — the shield stays faithful, so the base sees every later
    // release too — nor double-push the lockdep stack.
    const bool fresh = !tbl.holds(this);
    if (!fresh && misuse_checks_enabled()) {
      const AccessMode held = tbl.mode_of(this);
      const Event ev = held == AccessMode::kRead
                           ? Event::kReentrantRelock
                           : Event::kRwModeMismatch;  // read-under-write
      if (apply_policy(ev, held)) {  // absorbed as a depth bump
        counters_.absorbed.fetch_add(1, std::memory_order_relaxed);
        tbl.note_acquired(this, held);
        return;
      }
      // kPassthrough: forward to the base, faithfully.
    }
    lockdep_attempt(AccessMode::kRead);
    // A reader blocks only behind writers; readers inside the CS are
    // not contention for an arriving reader.
    const bool contended = write_owner_.load(std::memory_order_relaxed) !=
                           kNoOwner;
    const bool span = contended && lockdep::span_tracing_enabled();
    const std::uint64_t wait_t0 =
        (lockstat && contended) ? runtime::now_ns() : 0;
    if (span) {
      emit_span(lockdep::EventKind::kWaitBegin, AccessMode::kRead, site);
    }
    if (contended) contention_.begin_wait();
    base_.rlock(ctx);
    if (contended) contention_.end_wait();
    if (span) emit_span(lockdep::EventKind::kWaitEnd, AccessMode::kRead);
    if (lockstat && contended) {
      observe::on_contended_wait(lockdep_ensure_class(),
                                 runtime::now_ns() - wait_t0);
    }
    note_acquired(tbl, AccessMode::kRead, ctx, fresh, site);
  }

  // Returns false iff a misuse was intercepted (or detected by the
  // base) and suppressed — EPERM semantics, like Shield::release.
  bool runlock(Context& ctx) {
    auto& tbl = HeldLockTable::mine();
    // The balanced release is the fast path: one table scan decides
    // everything, and only the cold branches (absorbed depth, misuse,
    // §5 escape hatch) consult any global flag.
    const int remaining =
        tbl.note_released_in_mode(this, AccessMode::kRead);
    if (remaining >= 0) {
      ReadStripe::bump(counters_.read_stripe_for(tbl).releases);
      if (remaining > 0) {
        // Matching release of an absorbed recursion — unless the §5
        // escape hatch is open, in which case every call forwards to
        // the base verbatim (the caller asked for raw behavior).
        if (misuse_checks_enabled()) return true;
        return base_.runlock(ctx);
      }
      if (lockdep::span_tracing_enabled()) {
        emit_span(lockdep::EventKind::kHoldEnd, AccessMode::kRead);
      }
      if (observe::lockstat_enabled()) observe::on_released(this);
      lockdep::on_released(this);
      return base_.runlock(ctx);
    }
    if (!misuse_checks_enabled()) {
      // §5 escape hatch: trust the caller, forward verbatim. The
      // not-held/wrong-mode entry state is left as-is: a cross-thread
      // read hand-off is the acquirer's entry to shed, not ours.
      return base_.runlock(ctx);
    }
    if (remaining == HeldLockTable::kNotHeld) {
      // The §4 headline: depart-without-arrive. Intercepted HERE, the
      // indicator never skews — no mutex violation, no writer
      // starvation — even over indicators that cannot detect it.
      if (apply_policy(Event::kUnbalancedReadUnlock, AccessMode::kRead)) {
        return false;
      }
      return base_.runlock(ctx);  // kPassthrough: corrupt faithfully
    }
    // kWrongMode: a write hold released as a read.
    if (apply_policy(Event::kRwModeMismatch, AccessMode::kWrite)) {
      return false;
    }
    return base_.runlock(ctx);
  }

  // ---------------------------------------------------------------- //
  //  Write side.
  // ---------------------------------------------------------------- //

  void wlock(Context& ctx) {
    const bool lockstat = observe::lockstat_enabled();
    const void* site =
        lockstat ? observe::current_site(RESILOCK_RETURN_ADDRESS()) : nullptr;
    auto& tbl = HeldLockTable::mine();
    const bool fresh = !tbl.holds(this);  // see rlock
    if (!fresh && misuse_checks_enabled()) {
      const AccessMode held = tbl.mode_of(this);
      const Event ev = held == AccessMode::kRead
                           ? Event::kRwModeMismatch  // upgrade: deadlock bait
                           : Event::kReentrantRelock;
      if (apply_policy(ev, held)) {
        counters_.absorbed.fetch_add(1, std::memory_order_relaxed);
        tbl.note_acquired(this, held);
        return;
      }
      // kPassthrough: forward to the base, faithfully.
    }
    lockdep_attempt(AccessMode::kWrite);
    const bool contended =
        write_owner_.load(std::memory_order_relaxed) != kNoOwner ||
        !base_.indicator().is_empty();
    const bool span = contended && lockdep::span_tracing_enabled();
    const std::uint64_t wait_t0 =
        (lockstat && contended) ? runtime::now_ns() : 0;
    if (span) {
      emit_span(lockdep::EventKind::kWaitBegin, AccessMode::kWrite, site);
    }
    if (contended) contention_.begin_wait();
    base_.wlock(ctx);
    if (contended) contention_.end_wait();
    if (span) emit_span(lockdep::EventKind::kWaitEnd, AccessMode::kWrite);
    if (lockstat && contended) {
      observe::on_contended_wait(lockdep_ensure_class(),
                                 runtime::now_ns() - wait_t0);
    }
    note_acquired(tbl, AccessMode::kWrite, ctx, fresh, site);
  }

  bool wunlock(Context& ctx) {
    const std::uint32_t me = platform::self_pid() + 1;
    auto& tbl = HeldLockTable::mine();
    // One table scan decides everything, like runlock.
    const int remaining =
        tbl.note_released_in_mode(this, AccessMode::kWrite);
    if (remaining >= 0) {
      counters_.write_releases.fetch_add(1, std::memory_order_relaxed);
      if (remaining > 0) {
        // Matching release of an absorbed relock — unless the §5
        // escape hatch is open (forward every call verbatim).
        if (misuse_checks_enabled()) return true;
        return base_.wunlock(ctx);
      }
      if (lockdep::span_tracing_enabled()) {
        emit_span(lockdep::EventKind::kHoldEnd, AccessMode::kWrite);
      }
      if (observe::lockstat_enabled()) observe::on_released(this);
      lockdep::on_released(this);
      last_writer_.store(me, std::memory_order_relaxed);
      write_owner_.store(kNoOwner, std::memory_order_relaxed);
      // Release with the context the base was acquired with: an
      // absorbed relock may hand wunlock a context the cohort never
      // enqueued.
      Context* base_ctx = active_wctx_;
      active_wctx_ = nullptr;
      return base_.wunlock(base_ctx != nullptr ? *base_ctx : ctx);
    }
    if (!misuse_checks_enabled()) {
      // §5 escape hatch: trust the caller and forward verbatim (the
      // cross-thread hand-off case — the acquirer keeps its own
      // entry; clearing the owner tag lets unlock() route sanely).
      write_owner_.store(kNoOwner, std::memory_order_relaxed);
      return base_.wunlock(ctx);
    }
    if (remaining == HeldLockTable::kWrongMode) {
      // A read hold released as a write.
      if (apply_policy(Event::kRwModeMismatch, AccessMode::kRead)) {
        return false;
      }
      return base_.wunlock(ctx);
    }
    if (apply_policy(classify_wunlock(me), AccessMode::kWrite)) {
      return false;
    }
    return base_.wunlock(ctx);  // kPassthrough: faithful
  }

  // ---------------------------------------------------------------- //
  //  Trylock entry points (pthread_rwlock_tryrdlock/trywrlock shapes).
  //  A trylock cannot block, so it adds NO lockdep order edges — only
  //  the held-set entry on success (mirroring Shield::try_acquire); the
  //  reentrant/mode-mismatch interceptions behave exactly as on the
  //  blocking paths, because an absorbed re-acquire succeeds without
  //  touching the base either way.
  // ---------------------------------------------------------------- //

  bool try_rlock(Context& ctx)
    requires requires(Base& b, Context& c) { b.try_rlock(c); }
  {
    const bool lockstat = observe::lockstat_enabled();
    const void* site =
        lockstat ? observe::current_site(RESILOCK_RETURN_ADDRESS()) : nullptr;
    auto& tbl = HeldLockTable::mine();
    const bool fresh = !tbl.holds(this);  // see rlock
    if (!fresh && misuse_checks_enabled()) {
      const AccessMode held = tbl.mode_of(this);
      const Event ev = held == AccessMode::kRead
                           ? Event::kReentrantRelock
                           : Event::kRwModeMismatch;  // read-under-write
      if (apply_policy(ev, held)) {  // absorbed as a depth bump
        counters_.absorbed.fetch_add(1, std::memory_order_relaxed);
        tbl.note_acquired(this, held);
        return true;
      }
      // kPassthrough: forward to the base, faithfully.
    }
    if (!base_.try_rlock(ctx)) {
      if (lockstat) observe::on_trylock_fail(lockdep_ensure_class());
      return false;
    }
    note_acquired(tbl, AccessMode::kRead, ctx, fresh, site);
    return true;
  }

  bool try_wlock(Context& ctx)
    requires requires(Base& b, Context& c) { b.try_wlock(c); }
  {
    const bool lockstat = observe::lockstat_enabled();
    const void* site =
        lockstat ? observe::current_site(RESILOCK_RETURN_ADDRESS()) : nullptr;
    auto& tbl = HeldLockTable::mine();
    const bool fresh = !tbl.holds(this);  // see rlock
    if (!fresh && misuse_checks_enabled()) {
      const AccessMode held = tbl.mode_of(this);
      const Event ev = held == AccessMode::kRead
                           ? Event::kRwModeMismatch  // upgrade: deadlock bait
                           : Event::kReentrantRelock;
      if (apply_policy(ev, held)) {
        counters_.absorbed.fetch_add(1, std::memory_order_relaxed);
        tbl.note_acquired(this, held);
        return true;
      }
      // kPassthrough: forward to the base, faithfully.
    }
    if (!base_.try_wlock(ctx)) {
      if (lockstat) observe::on_trylock_fail(lockdep_ensure_class());
      return false;
    }
    note_acquired(tbl, AccessMode::kWrite, ctx, fresh, site);
    return true;
  }

  // ---------------------------------------------------------------- //
  //  pthread_rwlock_unlock semantics: one entry point, the held-locks
  //  table (not the caller) decides which side to release. This is the
  //  API the interpose shim routes pthread_rwlock_unlock through — the
  //  mode tag is what makes the single-unlock contract implementable.
  // ---------------------------------------------------------------- //
  bool unlock(Context& ctx) {
    auto& tbl = HeldLockTable::mine();
    if (!misuse_checks_enabled()) {
      // Without the table's word, fall back to the write-owner tag;
      // the side entry points own the escape-hatch table draining.
      return write_owner_.load(std::memory_order_relaxed) != kNoOwner
                 ? wunlock(ctx)
                 : runlock(ctx);
    }
    if (tbl.holds(this)) {
      return tbl.mode_of(this) == AccessMode::kWrite ? wunlock(ctx)
                                                     : runlock(ctx);
    }
    // Not held at all: classify on the write side (the read side has
    // no ownership to misattribute) and suppress/forward per verdict.
    if (apply_policy(classify_wunlock(platform::self_pid() + 1),
                     AccessMode::kWrite)) {
      return false;
    }
    return base_.runlock(ctx);  // faithful: behaves like a bogus depart
  }

  // -- policy ----------------------------------------------------------
  ShieldPolicy policy() const {
    return policy_.load(std::memory_order_relaxed);
  }
  void set_policy(ShieldPolicy p) {
    policy_.store(p, std::memory_order_relaxed);
    policy_explicit_.store(true, std::memory_order_relaxed);
  }

  // -- lockdep ---------------------------------------------------------
  void set_lockdep_label(const char* label) { lockdep_label_ = label; }
  lockdep::ClassId lockdep_class() const {
    return lockdep_class_.load(std::memory_order_acquire);
  }

  // -- telemetry -------------------------------------------------------
  RwShieldSnapshot snapshot() const {
    RwShieldSnapshot s;
    for (const auto& stripe : counters_.read) {
      s.read_acquisitions += stripe.acqs.load(std::memory_order_relaxed);
      s.read_releases += stripe.releases.load(std::memory_order_relaxed);
    }
    s.write_acquisitions =
        counters_.write_acqs.load(std::memory_order_relaxed);
    s.write_releases =
        counters_.write_releases.load(std::memory_order_relaxed);
    s.absorbed = counters_.absorbed.load(std::memory_order_relaxed);
    s.suppressed = counters_.suppressed.load(std::memory_order_relaxed);
    s.passed_through =
        counters_.passed.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < response::kResponseEvents; ++i) {
      s.misuse[i] = counters_.misuse[i].load(std::memory_order_relaxed);
    }
    return s;
  }

  // Live blocked writers (the contention probe) and the indicator's
  // reader estimate — together the rw "stake" the engine escalates on.
  std::uint32_t waiters() const { return contention_.waiters(); }
  std::uint32_t readers() const {
    return base_.indicator().approx_readers();
  }
  std::uint64_t contended_total() const {
    return contention_.contended_total();
  }

  // Calling thread's view of this lock.
  std::uint32_t held_depth() const {
    return HeldLockTable::mine().depth(this);
  }
  AccessMode held_mode() const {
    return HeldLockTable::mine().mode_of(this);
  }

  Base& base() { return base_; }
  const Base& base() const { return base_; }

  static constexpr Resilience resilience() { return Base::resilience(); }

 private:
  // Parking hooks, compiled away for bases without a parking bay (the
  // rw locks built on TAS-family primitives have none today).
  std::uint32_t base_parked_waiters() const {
    if constexpr (requires(const Base& b) { b.parked_waiters(); }) {
      return base_.parked_waiters();
    } else {
      return 0;
    }
  }
  void base_misuse_wake() {
    if constexpr (requires(Base& b) { b.misuse_wake(); }) {
      base_.misuse_wake();
    }
  }

  // The read-side tallies are the only per-op counters on a path that
  // can be nearly free (reader-pref rlock is two RMWs); a single shared
  // counter would double the bounced lines and blow the 2x budget, so
  // they stripe by thread and bump with a plain load+store instead of
  // a fetch_add — an atomic RMW costs more than the whole bare read
  // acquisition on some hosts. A stripe collision can therefore lose
  // the odd increment; these are telemetry-grade tallies (the misuse
  // counters, which protection decisions read, stay exact RMWs).
  static constexpr std::size_t kStripes = 8;

  struct alignas(platform::kCacheLineSize) ReadStripe {
    std::atomic<std::uint64_t> acqs{0};
    std::atomic<std::uint64_t> releases{0};

    static void bump(std::atomic<std::uint64_t>& c) {
      c.store(c.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
    }
  };

  struct Counters {
    ReadStripe read[kStripes];
    std::atomic<std::uint64_t> write_acqs{0};
    std::atomic<std::uint64_t> write_releases{0};
    std::atomic<std::uint64_t> absorbed{0};
    std::atomic<std::uint64_t> suppressed{0};
    std::atomic<std::uint64_t> passed{0};
    std::atomic<std::uint64_t> misuse[response::kResponseEvents] = {};

    // Stripe selection hashes the calling thread's (already fetched)
    // held-lock table address instead of self_pid(): one TLS object
    // per thread, no out-of-line pid lookup on the read fast path.
    // The low ~12 bits of a TLS address are the offset WITHIN the
    // thread's TLS block and identical across glibc worker threads —
    // only the block bases differ, at page-or-larger spacing — so the
    // hash mixes the page-and-up bits.
    ReadStripe& read_stripe_for(const HeldLockTable& tbl) {
      const auto h = reinterpret_cast<std::uintptr_t>(&tbl);
      return read[((h >> 12) ^ (h >> 18)) & (kStripes - 1)];
    }
  };

  // Blocked writers plus live readers: every thread with a stake in
  // this lock right now — the damage radius a verdict weighs.
  std::uint32_t rw_stake() const {
    return contention_.waiters() + base_.indicator().approx_readers();
  }

  // The order-edge hook, with the telemetry computed LAZILY: the
  // reader estimate can be an O(threads) scan (checked indicator), so
  // the single-lock hot path — empty acquisition stack, where the
  // attempt records nothing anyway — must not pay for it.
  void lockdep_attempt(AccessMode mode) {
    if (!lockdep::lockdep_enabled()) return;
    if (lockdep::AcqStack::mine().depth() == 0) return;  // no edges
    lockdep::on_acquire_attempt(this, lockdep_ensure_class(), rw_stake(),
                                write_owned_by_other(), mode);
  }

  bool write_owned_by_other() const {
    const std::uint32_t owner =
        write_owner_.load(std::memory_order_relaxed);
    return owner != kNoOwner && owner != platform::self_pid() + 1;
  }

  Event classify_wunlock(std::uint32_t me) const {
    const std::uint32_t owner =
        write_owner_.load(std::memory_order_relaxed);
    if (owner != kNoOwner && owner != me) {
      return Event::kNonOwnerWriteUnlock;
    }
    if (owner == kNoOwner &&
        last_writer_.load(std::memory_order_relaxed) == me) {
      return Event::kDoubleUnlock;
    }
    return Event::kUnbalancedUnlock;
  }

  // The shared verdict pipeline (mirrors Shield::apply_policy): true
  // means the misuse is suppressed and the caller must not touch the
  // base; false means kPassthrough. `mode` is the caller's hold mode at
  // interception (or the side of the misbehaving operation when the
  // caller holds nothing) — it rides into the trace event together with
  // the indicator's reader estimate, the §4 "who else is exposed"
  // payload a post-mortem wants next to each rw misuse.
  bool apply_policy(Event ev, AccessMode mode) {
    counters_.misuse[static_cast<std::size_t>(ev)].fetch_add(
        1, std::memory_order_relaxed);
    // Mirror Shield::apply_policy: with lockstat on, register the
    // class even for a misuse-before-first-acquire so per-class misuse
    // tallies reconcile exactly with the shield counters.
    const lockdep::ClassId cls =
        observe::lockstat_enabled()
            ? lockdep_ensure_class()
            : lockdep_class_.load(std::memory_order_relaxed);
    if (observe::lockstat_enabled()) observe::on_misuse(cls);
    const std::uint32_t readers = base_.indicator().approx_readers();
    response::Action action;
    if (policy_explicit_.load(std::memory_order_relaxed)) {
      action = to_action(policy());
    } else {
      response::EventContext ctx;
      ctx.waiters = contention_.waiters() + readers;
      ctx.contended = ctx.waiters > 0 || write_owned_by_other();
      ctx.in_flagged_cycle = lockdep::Graph::instance().is_flagged(cls);
      ctx.waiters_parked = base_parked_waiters();
      ctx.cls = cls;
      ctx.cls_label = lockdep::Graph::instance().label_of(cls);
      action = response::ResponseEngine::instance().decide(
          ev, ctx, to_action(policy()));
    }
    // Misuse-aware wakeup (mirrors Shield::apply_policy): an absorbed
    // rw misuse may orphan waiters parked on the base lock's hand-off.
    // Broadcast-wake them so each re-checks its wait word.
    if (action != response::Action::kPassthrough) base_misuse_wake();
    lockdep::TraceBuffer::instance().emit(
        static_cast<lockdep::EventKind>(static_cast<std::uint8_t>(ev)),
        this, cls, lockdep::kNoClassTag,
        static_cast<std::uint8_t>(action),
        static_cast<std::uint8_t>(mode), readers);
    switch (action) {
      case response::Action::kAbort:
        report_misuse(ev, this);
        response::dispatch_abort(ev, this);
        // An abort trap chose to survive: degrade to suppression.
        counters_.suppressed.fetch_add(1, std::memory_order_relaxed);
        return true;
      case response::Action::kLog:
        report_misuse(ev, this);
        [[fallthrough]];
      case response::Action::kSuppress:
        counters_.suppressed.fetch_add(1, std::memory_order_relaxed);
        return true;
      case response::Action::kPassthrough:
        counters_.passed.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    return true;  // unreachable
  }

  void note_acquired(HeldLockTable& tbl, AccessMode mode, Context& ctx,
                     bool fresh, const void* site = nullptr) {
    if (lockdep::lockdep_enabled()) {
      // `fresh` skips the duplicate-entry scan: the table probe above
      // already said "not held", so the stack cannot contain us. A
      // re-acquire keeps the scan and therefore never double-pushes.
      lockdep::on_acquired(this, lockdep_ensure_class(), mode, !fresh);
    }
    if (mode == AccessMode::kWrite) {
      write_owner_.store(platform::self_pid() + 1,
                         std::memory_order_relaxed);
      active_wctx_ = &ctx;  // owned exclusively until the base wunlock
      counters_.write_acqs.fetch_add(1, std::memory_order_relaxed);
    } else {
      ReadStripe::bump(counters_.read_stripe_for(tbl).acqs);
    }
    // Only a FRESH acquisition enters the table. A forwarded re-acquire
    // (passthrough verdict or §5 escape hatch) is deliberately not
    // recorded: the base saw the extra acquire, so the base must see
    // the matching extra release too — a depth bump would swallow it
    // and skew a counting ReadIndicator forever.
    if (fresh) {
      tbl.note_acquired(this, mode);
      if (observe::lockstat_enabled()) {
        observe::on_acquired(this, lockdep_ensure_class(), mode, site);
      }
      if (lockdep::span_tracing_enabled()) {
        emit_span(lockdep::EventKind::kHoldBegin, mode, site);
      }
    }
  }

  // Hold/wait span marker for the telemetry timeline; the mode payload
  // lets the perfetto sink label read vs write slices, and the
  // acquisition call site (when lockstat captured one) rides along.
  void emit_span(lockdep::EventKind kind, AccessMode mode,
                 const void* site = nullptr) {
    lockdep::TraceBuffer::instance().emit(
        kind, this, lockdep_class_.load(std::memory_order_relaxed),
        lockdep::kNoClassTag, lockdep::kNoVerdict,
        static_cast<std::uint8_t>(mode), 0,
        reinterpret_cast<std::uint64_t>(site));
  }

  // Lazily registers this shield's lockdep class — SHARED, because a
  // read-held rw lock has many simultaneous holders and the graph's
  // single-owner mirror cannot describe it. Racing first acquires CAS;
  // the loser retires its surplus id.
  lockdep::ClassId lockdep_ensure_class() {
    lockdep::ClassId id = lockdep_class_.load(std::memory_order_acquire);
    if (id != lockdep::kInvalidClass) return id;
    const lockdep::ClassId fresh =
        lockdep::Graph::instance().register_shared_class(this,
                                                         lockdep_label_);
    lockdep::ClassId expected = lockdep::kInvalidClass;
    if (!lockdep_class_.compare_exchange_strong(
            expected, fresh, std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      lockdep::Graph::instance().retire_class(fresh);
      return expected;
    }
    return fresh;
  }

  Base base_;
  std::atomic<ShieldPolicy> policy_;
  std::atomic<bool> policy_explicit_{false};
  ContentionProbe contention_;  // writer-side blocking only
  // Write-owner tag (pid+1) for wunlock classification; the held-locks
  // table, not this word, decides balanced vs unbalanced.
  std::atomic<std::uint32_t> write_owner_{kNoOwner};
  std::atomic<std::uint32_t> last_writer_{kNoOwner};
  // Context the base wlock was granted with (see Shield::active_ctx_);
  // only the write owner touches it between base wlock and wunlock.
  Context* active_wctx_ = nullptr;
  std::atomic<lockdep::ClassId> lockdep_class_{lockdep::kInvalidClass};
  const char* lockdep_label_ = "rw-shield";
  Counters counters_;
};

}  // namespace resilock::shield

namespace resilock {
using shield::RwShield;
using shield::RwShieldSnapshot;
}  // namespace resilock
