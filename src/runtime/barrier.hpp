// Sense-reversing centralized barrier (Mellor-Crummey & Scott 1991, §3.1).
//
// Used by the evaluation harness to line threads up at measurement start
// so that ramp-up does not pollute timed regions.
#pragma once

#include <atomic>
#include <cstdint>

#include "platform/spin.hpp"

namespace resilock::runtime {

class SenseBarrier {
 public:
  explicit SenseBarrier(std::uint32_t participants) noexcept
      : participants_(participants), count_(participants) {}

  SenseBarrier(const SenseBarrier&) = delete;
  SenseBarrier& operator=(const SenseBarrier&) = delete;

  // Blocks until all participants arrive. Each thread keeps its sense in
  // thread-local storage keyed by this barrier instance's epoch.
  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (count_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      count_.store(participants_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);  // releases waiters
    } else {
      platform::SpinWait w;
      while (sense_.load(std::memory_order_acquire) != my_sense) w.pause();
    }
  }

  std::uint32_t participants() const noexcept { return participants_; }

 private:
  const std::uint32_t participants_;
  std::atomic<std::uint32_t> count_;
  std::atomic<bool> sense_{false};
};

}  // namespace resilock::runtime
