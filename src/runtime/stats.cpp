#include "runtime/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace resilock::runtime {

void RunStats::add(double sample) { samples_.push_back(sample); }

double RunStats::min() const {
  if (samples_.empty()) throw std::logic_error("RunStats::min on empty set");
  return *std::min_element(samples_.begin(), samples_.end());
}

double RunStats::max() const {
  if (samples_.empty()) throw std::logic_error("RunStats::max on empty set");
  return *std::max_element(samples_.begin(), samples_.end());
}

double RunStats::mean() const {
  if (samples_.empty()) throw std::logic_error("RunStats::mean on empty set");
  double sum = 0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double RunStats::median() const {
  if (samples_.empty())
    throw std::logic_error("RunStats::median on empty set");
  std::vector<double> copy = samples_;
  std::sort(copy.begin(), copy.end());
  const std::size_t n = copy.size();
  return n % 2 ? copy[n / 2] : 0.5 * (copy[n / 2 - 1] + copy[n / 2]);
}

double RunStats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double overhead_percent(double baseline, double modified) {
  if (baseline <= 0.0) return 0.0;
  return (modified - baseline) / baseline * 100.0;
}

}  // namespace resilock::runtime
