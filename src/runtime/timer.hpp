// Monotonic timing helpers.
#pragma once

#include <chrono>
#include <cstdint>

namespace resilock::runtime {

inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Measures wall time of a callable in seconds.
template <typename Fn>
double timed_seconds(Fn&& fn) {
  const std::uint64_t t0 = now_ns();
  fn();
  const std::uint64_t t1 = now_ns();
  return static_cast<double>(t1 - t0) * 1e-9;
}

// Calibrated busy work: spins for roughly `units` dependent multiplies.
// Workload generators express critical-section lengths in these units so
// they are stable across optimization levels (the value dependency chain
// cannot be elided).
inline std::uint64_t busy_work(std::uint64_t units,
                               std::uint64_t seed = 0x243F6A8885A308D3ull) {
  std::uint64_t x = seed | 1;
  for (std::uint64_t i = 0; i < units; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
  }
  return x;
}

}  // namespace resilock::runtime
