// Monotonic timing helpers.
#pragma once

#include <chrono>
#include <cstdint>

namespace resilock::runtime {

inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Cheap timestamp for hot-path telemetry (lockstat hold windows): on
// x86-64, rdtsc scaled by a once-calibrated tick period (~6 ns vs
// ~25 ns for the vDSO clock); elsewhere, now_ns(). The epoch differs
// from now_ns() — only DIFFERENCES of two now_ns_fast() readings are
// meaningful, accurate to the calibration error (<0.1% over a 2 ms
// window; modern x86 has constant_tsc so the rate holds across cores
// and frequency scaling).
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
namespace detail {
// ns-per-tick in 32.32 fixed point, calibrated once against the
// steady clock; the per-call conversion is one 64x64->128 multiply.
inline std::uint64_t tsc_ns_mult() noexcept {
  static const std::uint64_t mult = [] {
    const std::uint64_t t0 = now_ns();
    const std::uint64_t c0 = __builtin_ia32_rdtsc();
    while (now_ns() - t0 < 2000000) {  // 2 ms calibration spin
    }
    const std::uint64_t t1 = now_ns();
    const std::uint64_t c1 = __builtin_ia32_rdtsc();
    if (c1 <= c0) return std::uint64_t{1} << 32;  // 1 ns/tick fallback
    return static_cast<std::uint64_t>(
        static_cast<double>(t1 - t0) / static_cast<double>(c1 - c0) *
        4294967296.0);
  }();
  return mult;
}
}  // namespace detail

inline std::uint64_t now_ns_fast() noexcept {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(__builtin_ia32_rdtsc()) *
       detail::tsc_ns_mult()) >>
      32);
}
#else
inline std::uint64_t now_ns_fast() noexcept { return now_ns(); }
#endif

// Measures wall time of a callable in seconds.
template <typename Fn>
double timed_seconds(Fn&& fn) {
  const std::uint64_t t0 = now_ns();
  fn();
  const std::uint64_t t1 = now_ns();
  return static_cast<double>(t1 - t0) * 1e-9;
}

// Calibrated busy work: spins for roughly `units` dependent multiplies.
// Workload generators express critical-section lengths in these units so
// they are stable across optimization levels (the value dependency chain
// cannot be elided).
inline std::uint64_t busy_work(std::uint64_t units,
                               std::uint64_t seed = 0x243F6A8885A308D3ull) {
  std::uint64_t x = seed | 1;
  for (std::uint64_t i = 0; i < units; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
  }
  return x;
}

}  // namespace resilock::runtime
