// Small-sample run statistics for the evaluation harness.
//
// The paper (§6) runs every configuration 5 times and compares the *best*
// run of the original lock against the *best* run of the modified lock;
// RunStats keeps enough to do that and to report dispersion.
#pragma once

#include <cstddef>
#include <vector>

namespace resilock::runtime {

class RunStats {
 public:
  void add(double sample);

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  double min() const;   // the paper's "best run" for time metrics
  double max() const;   // the paper's "best run" for throughput metrics
  double mean() const;
  double median() const;
  double stddev() const;  // sample standard deviation (n-1)

  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  std::vector<double> samples_;
};

// Percentage overhead of `modified` relative to `baseline`
// ((modified - baseline) / baseline * 100). Table 2 / Figure 14 metric.
double overhead_percent(double baseline, double modified);

}  // namespace resilock::runtime
