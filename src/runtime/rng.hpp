// Deterministic per-thread random number generation.
//
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64. Workload
// generators need independent, reproducible streams per thread; seeding
// each stream as f(global_seed, thread_index) gives run-to-run stability
// regardless of scheduling.
#pragma once

#include <cstdint>

namespace resilock::runtime {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : x_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (x_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t x_;
};

class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256ss(std::uint64_t seed = 1) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound) without modulo bias for small bounds
  // (Lemire's multiply-shift reduction).
  constexpr std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace resilock::runtime
