// Fork/join thread team with dense member indices.
//
// The evaluation harness (§6) runs "1 thread .. all hardware threads"
// configurations; ThreadTeam owns that loop: spawn N workers, hand each
// its team-local index (0..N-1), join, propagate the first exception.
#pragma once

#include <cstdint>
#include <functional>

namespace resilock::runtime {

class ThreadTeam {
 public:
  // Runs body(index) on `threads` std::threads and joins them all.
  // If any body throws, the first exception is rethrown after join.
  static void run(std::uint32_t threads,
                  const std::function<void(std::uint32_t)>& body);

  ThreadTeam() = delete;
};

}  // namespace resilock::runtime
