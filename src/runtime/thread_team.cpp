#include "runtime/thread_team.hpp"

#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace resilock::runtime {

void ThreadTeam::run(std::uint32_t threads,
                     const std::function<void(std::uint32_t)>& body) {
  if (threads == 0) return;
  if (threads == 1) {  // run inline: keeps single-thread baselines cheap
    body(0);
    return;
  }

  std::vector<std::thread> workers;
  workers.reserve(threads);
  std::exception_ptr first_error;
  std::mutex error_mu;

  for (std::uint32_t i = 0; i < threads; ++i) {
    workers.emplace_back([&, i] {
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> g(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : workers) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace resilock::runtime
