// Uniform calling helpers over the two lock families.
//
// Harness, cohort, and type-erasure code all want to treat PlainLock and
// ContextLock uniformly: a PlainLock gets an empty NoContext so the same
// template can drive both.
#pragma once

#include "core/lock_concepts.hpp"

namespace resilock {

struct NoContext {};

template <typename L>
struct ContextOf {
  using type = NoContext;
};

template <ContextLock L>
struct ContextOf<L> {
  using type = typename L::Context;
};

template <typename L>
using context_of_t = typename ContextOf<L>::type;

template <typename L>
void generic_acquire(L& lock, context_of_t<L>& ctx) {
  if constexpr (ContextLock<L>) {
    lock.acquire(ctx);
  } else {
    (void)ctx;
    lock.acquire();
  }
}

template <typename L>
bool generic_release(L& lock, context_of_t<L>& ctx) {
  if constexpr (ContextLock<L>) {
    return lock.release(ctx);
  } else {
    (void)ctx;
    return lock.release();
  }
}

template <typename L>
constexpr bool generic_has_trylock() {
  return TryLockable<L> || TryContextLockable<L>;
}

// Returns false if the lock was not acquired. Locks without a trylock
// (e.g. CLH, paper §6) do not satisfy generic_has_trylock() and must not
// be called through here.
template <typename L>
bool generic_try_acquire(L& lock, context_of_t<L>& ctx) {
  if constexpr (TryContextLockable<L>) {
    return lock.try_acquire(ctx);
  } else {
    (void)ctx;
    return lock.try_acquire();
  }
}

// Cohort hooks: locks that can serve as the local lock of a cohort lock
// expose has_waiters / owned_by_caller either with or without a context.
template <typename L>
bool generic_has_waiters(L& lock, context_of_t<L>& ctx) {
  if constexpr (requires { lock.has_waiters(ctx); }) {
    return lock.has_waiters(ctx);
  } else {
    (void)ctx;
    return lock.has_waiters();
  }
}

template <typename L>
bool generic_owned_by_caller(L& lock, context_of_t<L>& ctx) {
  if constexpr (requires { lock.owned_by_caller(ctx); }) {
    return lock.owned_by_caller(ctx);
  } else {
    (void)ctx;
    return lock.owned_by_caller();
  }
}

}  // namespace resilock
