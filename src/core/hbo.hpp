// HBO: Hierarchical Backoff Lock (Radovic & Hagersten, HPCA 2003).
// Paper §3.8.3.
//
// A TAS-style lock where the word holds the *NUMA domain id* of the
// holder instead of a boolean: spinners from the holder's own domain back
// off briefly, remote spinners back off longer, so the lock tends to stay
// within a domain while it is contended.
//
// Unbalanced-unlock behavior: inherited from TAS (§3.1) — a misuse while
// the lock is held admits one extra thread; no starvation.
//
// Resilient fix (paper §3.8.3): CAS both the owner's PID and its domain
// id into the word — a 32-bit PID and an 8-bit domain id bit-packed into
// the single 64-bit lock word — so release() can check ownership and
// acquire() still learns how far away the holder is.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/resilience.hpp"
#include "core/verify_access.hpp"
#include "platform/backoff.hpp"
#include "platform/cacheline.hpp"
#include "platform/thread_registry.hpp"
#include "platform/topology.hpp"

namespace resilock {

template <Resilience R>
class BasicHboLock {
  static constexpr std::uint64_t kFree = 0;

 public:
  explicit BasicHboLock(
      const platform::Topology& topo = platform::Topology::host_default())
      : topo_(topo) {}

  BasicHboLock(const BasicHboLock&) = delete;
  BasicHboLock& operator=(const BasicHboLock&) = delete;

  void acquire() {
    const std::uint32_t dom = topo_.domain_of(platform::self_pid());
    const std::uint64_t mine = pack(dom);
    platform::ExponentialBackoff near_bo(4, 128);
    platform::ExponentialBackoff far_bo(64, 4096);
    for (;;) {
      std::uint64_t cur = word_.load(std::memory_order_relaxed);
      if (cur == kFree) {
        if (word_.compare_exchange_weak(cur, mine,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
          return;
        }
      }
      if (cur != kFree) {
        // Back off proportionally to the holder's distance.
        if (domain_of_word(cur) == dom) {
          near_bo.pause();
        } else {
          far_bo.pause();
        }
      }
    }
  }

  bool try_acquire() {
    std::uint64_t expected = kFree;
    return word_.compare_exchange_strong(
        expected, pack(topo_.domain_of(platform::self_pid())),
        std::memory_order_acquire, std::memory_order_relaxed);
  }

  bool release() {
    if constexpr (R == kResilient) {
      const std::uint64_t cur = word_.load(std::memory_order_relaxed);
      if (misuse_checks_enabled() &&
          pid_of_word(cur) != platform::self_pid() + 1) {
        return false;
      }
    }
    word_.store(kFree, std::memory_order_release);
    return true;
  }

  static constexpr Resilience resilience() { return R; }

 private:
  friend struct VerifyAccess;

  // Layout: bits [39..32] = domain id + 1; bits [31..0] = PID + 1 in the
  // resilient flavor, the constant 1 (just "locked") in the original.
  std::uint64_t pack(std::uint32_t dom) const {
    const std::uint64_t low =
        (R == kResilient) ? std::uint64_t{platform::self_pid()} + 1 : 1;
    return (std::uint64_t{dom + 1} << 32) | low;
  }
  static std::uint32_t domain_of_word(std::uint64_t w) {
    return static_cast<std::uint32_t>((w >> 32) & 0xFF) - 1;
  }
  static std::uint32_t pid_of_word(std::uint64_t w) {
    return static_cast<std::uint32_t>(w & 0xFFFFFFFFu);
  }

  platform::Topology topo_;  // by value: 8 bytes, no lifetime coupling
  alignas(platform::kCacheLineSize) std::atomic<std::uint64_t> word_{kFree};
};

using HboLock = BasicHboLock<kOriginal>;
using HboLockResilient = BasicHboLock<kResilient>;

}  // namespace resilock
