// Hemlock (Dice & Kogan, SPAA 2021). Paper §3.7.
//
// The "K42 counterpart of CLH": context-free and allocation-free. Every
// thread owns a single Grant cell (shared across all Hemlock instances);
// the lock itself is one tail word pointing at the last waiter's Grant
// cell. A waiter spins on its *predecessor's* Grant cell until it holds
// this lock's address, then consumes it (CTR — consume-then-reset — by
// storing null back). release() either CASes the tail back to null
// (no successor) or publishes the lock address in its own Grant cell and
// waits for the successor to consume it.
//
// Unbalanced-unlock behavior (original), per §3.7: the misbehaving
// thread either trips the release-time assertion (debug builds) or — the
// tail does not point at its Grant cell — publishes the lock address in
// its own Grant cell and spins forever waiting for a successor that will
// never consume it: Tm starves itself. The lock state proper is never
// touched, so there is no mutex violation and no starvation of others.
//
// Resilient fix (paper Figure 9): acquire() stores a sentinel ACQ in the
// caller's Grant cell; release() requires ACQ — a null Grant cell means
// the caller holds nothing and the release is unbalanced. A successful
// release resets Grant to null. Because one Grant cell serves all locks,
// the plain sentinel would misfire when a thread holds several Hemlocks
// at once; we keep a per-thread hold counter alongside so the sentinel is
// restored while other Hemlocks are still held (a strict superset of the
// paper's fix, documented here because the paper does not discuss nested
// holds).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "core/resilience.hpp"
#include "core/verify_access.hpp"
#include "platform/cacheline.hpp"
#include "platform/spin.hpp"

namespace resilock {

namespace detail {

struct HemlockThreadState {
  // Values held: nullptr (idle), a lock address (handoff in progress),
  // or the ACQ sentinel (resilient flavor: "this thread holds >=1 lock").
  platform::CacheLineAligned<std::atomic<void*>> grant;
  std::uint32_t holds = 0;  // resilient bookkeeping, owner-thread only
};

inline HemlockThreadState& hemlock_self() {
  thread_local HemlockThreadState state;
  return state;
}

}  // namespace detail

template <Resilience R>
class BasicHemlock {
  using Cell = std::atomic<void*>;

  // Distinguished non-null, non-lock-address sentinel.
  static void* acq_sentinel() {
    static int tag;
    return &tag;
  }

 public:
  BasicHemlock() = default;
  BasicHemlock(const BasicHemlock&) = delete;
  BasicHemlock& operator=(const BasicHemlock&) = delete;

  void acquire() {
    auto& self = detail::hemlock_self();
    Cell* const my_cell = &self.grant.value;
    Cell* const pred =
        tail_.exchange(my_cell, std::memory_order_acq_rel);
    if (pred != nullptr) {
      // Wait until the predecessor passes *this* lock, then consume.
      platform::SpinWait w;
      while (pred->load(std::memory_order_acquire) != this) w.pause();
      pred->store(nullptr, std::memory_order_release);  // CTR
    }
    if constexpr (R == kResilient) {
      self.holds += 1;
      self.grant.value.store(acq_sentinel(), std::memory_order_relaxed);
    }
  }

  bool try_acquire() {
    auto& self = detail::hemlock_self();
    Cell* expected = nullptr;
    if (!tail_.compare_exchange_strong(expected, &self.grant.value,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
      return false;
    }
    if constexpr (R == kResilient) {
      self.holds += 1;
      self.grant.value.store(acq_sentinel(), std::memory_order_relaxed);
    }
    return true;
  }

  bool release() {
    auto& self = detail::hemlock_self();
    Cell* const my_cell = &self.grant.value;
    if constexpr (R == kResilient) {
      // Figure 9: Grant must hold the ACQ sentinel; null means this
      // thread acquired nothing — unbalanced unlock.
      if (misuse_checks_enabled() &&
          (self.holds == 0 ||
           my_cell->load(std::memory_order_relaxed) != acq_sentinel())) {
        return false;
      }
      if (self.holds > 0) self.holds -= 1;
      my_cell->store(nullptr, std::memory_order_relaxed);
    }
    Cell* expected = my_cell;
    if (tail_.load(std::memory_order_acquire) == my_cell &&
        tail_.compare_exchange_strong(expected, nullptr,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      restore_sentinel(self);
      return true;
    }
    // A successor exists: publish this lock's address in our Grant cell
    // and wait for the successor to consume it. (The original protocol
    // asserts the cell is empty here — the paper's "line 18".)
    assert(my_cell->load(std::memory_order_relaxed) == nullptr ||
           R == kOriginal);
    my_cell->store(this, std::memory_order_release);
    platform::SpinWait w;
    while (my_cell->load(std::memory_order_acquire) != nullptr) w.pause();
    restore_sentinel(self);
    return true;
  }

  static constexpr Resilience resilience() { return R; }

 private:
  friend struct VerifyAccess;

  static void restore_sentinel(detail::HemlockThreadState& self) {
    if constexpr (R == kResilient) {
      if (self.holds > 0) {
        self.grant.value.store(acq_sentinel(), std::memory_order_relaxed);
      }
    }
  }

  alignas(platform::kCacheLineSize) std::atomic<Cell*> tail_{nullptr};
};

using Hemlock = BasicHemlock<kOriginal>;
using HemlockResilient = BasicHemlock<kResilient>;

}  // namespace resilock
