// HCLH: hierarchical CLH queue lock (Luchangco, Nussbaum & Shavit 2006;
// implementation follows Herlihy & Shavit, "The Art of Multiprocessor
// Programming", §7.8, plus a local-queue reset at splice time).
// Paper §3.8.2.
//
// Each NUMA domain keeps a local CLH-style queue; the thread that finds
// itself at the head of a local batch becomes the *cluster master* and
// splices the whole batch into the global queue with one SWAP. A node's
// packed state word carries (successor_must_wait | tail_when_spliced |
// cluster id): a waiter spins on its predecessor until either the
// predecessor releases within the same cluster (the waiter owns the lock)
// or the predecessor turns out to be a spliced batch tail / foreign node
// (the waiter becomes the next cluster master).
//
// Unbalanced-unlock behavior: *relatively immune* (paper Table 1 — the
// only queue lock with no defect). The key deviation from CLH is that
// ownership of the predecessor node transfers during acquire(), not
// release(); release() is a single store clearing successor_must_wait on
// a node that, on a misuse, is simply not enqueued — no thread observes
// the store. (The paper's caveat: the caller must not dig out an old
// qnode it previously owned, which the Context API here prevents.)
//
// Known caveat inherited from the published algorithm: recycled nodes can
// in principle be observed by a very stale local-queue reader; the splice
// here resets the local queue (CAS to null) to shrink that window. See
// tests/test_hierarchical.cpp for the bounded-stress validation.
//
// Lockdep attribution: the two levels of the queue hierarchy get one
// shared LockClassKey each per lock instance — "hclh.level0" (the
// global queue, root) and "hclh.level1" (the per-cluster local queues,
// which all share the level's class). A granted thread logically holds
// BOTH levels (its batch position and the global lock), so both enter
// the acquisition stack; the cluster master's local→global splice is
// edge-free (the local class rides the skip set), and a within-cluster
// grant inherits the global level with no blocking attempt and no
// edges — the exact analogue of the cohort combinator's top_granted
// path, one level down the generalization ladder from the
// arbitrary-depth HMCS trees.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/resilience.hpp"
#include "core/verify_access.hpp"
#include "lockdep/class_key.hpp"
#include "platform/cacheline.hpp"
#include "platform/spin.hpp"
#include "platform/thread_registry.hpp"
#include "platform/topology.hpp"

namespace resilock {

// Per-level class labels for the two-level HCLH queue hierarchy.
inline constexpr const char* kHclhLevelLabels[] = {"hclh.level0",
                                                   "hclh.level1"};

template <Resilience R>
class BasicHclhLock {
  static constexpr std::uint32_t kSuccMustWait = 1u << 31;
  static constexpr std::uint32_t kTailWhenSpliced = 1u << 30;
  static constexpr std::uint32_t kClusterMask = kTailWhenSpliced - 1;

 public:
  struct alignas(platform::kCacheLineSize) QNode {
    std::atomic<std::uint32_t> state{0};
  };

  class Context {
   public:
    Context() : curr_(new QNode), pred_(nullptr) {}
    ~Context() { delete curr_; }
    Context(const Context&) = delete;
    Context& operator=(const Context&) = delete;

   private:
    friend class BasicHclhLock;
    friend struct VerifyAccess;
    QNode* curr_;
    QNode* pred_;
  };

  explicit BasicHclhLock(
      const platform::Topology& topo = platform::Topology::host_default())
      : topo_(topo),
        global_tail_(new QNode),
        local_tails_(std::make_unique<
                     platform::CacheLineAligned<std::atomic<QNode*>>[]>(
            topo.num_domains())) {
    // Global dummy: released state, so the first master proceeds.
    global_tail_.load(std::memory_order_relaxed)
        ->state.store(0, std::memory_order_relaxed);
    for (std::uint32_t d = 0; d < topo.num_domains(); ++d)
      local_tails_[d].value.store(nullptr, std::memory_order_relaxed);
  }

  ~BasicHclhLock() {
    delete global_tail_.load(std::memory_order_relaxed);
    local_key_.retire();
    global_key_.retire();
  }
  BasicHclhLock(const BasicHclhLock&) = delete;
  BasicHclhLock& operator=(const BasicHclhLock&) = delete;

  void acquire(Context& ctx) {
    const std::uint32_t cluster = topo_.domain_of(platform::self_pid());
    const bool dep = lockdep::lockdep_enabled();
    const void* const local_id = &local_tails_[cluster];
    lockdep::ClassId local_cls = lockdep::kInvalidClass;
    if (dep) {
      // Edges from app-held locks to the local level, before the
      // enqueue can block on a predecessor's grant.
      local_cls = local_key_.ensure(kHclhLevelLabels[1]);
      lockdep::on_acquire_attempt(local_id, local_cls);
    }
    QNode* const my = ctx.curr_;
    my->state.store(kSuccMustWait | cluster, std::memory_order_relaxed);
    auto& local = local_tails_[cluster].value;
    QNode* const my_pred = local.exchange(my, std::memory_order_acq_rel);
    if (my_pred != nullptr) {
      if (wait_for_grant_or_cluster_master(my_pred, cluster)) {
        ctx.pred_ = my_pred;  // lock handed over within the cluster
        if (dep) {
          // Granted within the cluster: the thread holds its batch
          // position AND the global lock — the latter inherited with
          // no blocking attempt, hence no edges (cohort top_granted
          // analogue).
          lockdep::on_acquired(local_id, local_cls);
          lockdep::on_acquired(&global_tail_,
                               global_key_.ensure(kHclhLevelLabels[0]));
        }
        return;
      }
    }
    // Cluster master: splice the local batch into the global queue.
    if (dep) {
      lockdep::on_acquired(local_id, local_cls);
      // The splice is the internal child→parent climb: edge-free (the
      // local class rides the skip set); app-held locks still source
      // their edges to the global level.
      lockdep::on_acquire_attempt(&global_tail_,
                                  global_key_.ensure(kHclhLevelLabels[0]),
                                  0, false, AccessMode::kExclusive,
                                  local_cls);
    }
    QNode* const local_tail = local.load(std::memory_order_acquire);
    // Reset the local queue if nobody arrived after the batch tail, so
    // later arrivals start a fresh batch instead of chaining onto a
    // node that is about to be recycled.
    QNode* expected = local_tail;
    local.compare_exchange_strong(expected, nullptr,
                                  std::memory_order_acq_rel,
                                  std::memory_order_relaxed);
    QNode* const global_pred =
        global_tail_.exchange(local_tail, std::memory_order_acq_rel);
    local_tail->state.fetch_or(kTailWhenSpliced, std::memory_order_acq_rel);
    platform::SpinWait w;
    while (global_pred->state.load(std::memory_order_acquire) &
           kSuccMustWait) {
      w.pause();
    }
    ctx.pred_ = global_pred;
    if (dep) {
      lockdep::on_acquired(&global_tail_,
                           global_key_.ensure(kHclhLevelLabels[0]));
    }
  }

  bool release(Context& ctx) {
    // The caller stops holding both levels. Not gated on
    // lockdep_enabled(): entries pushed while tracking was on must come
    // off regardless (no-ops when never pushed).
    lockdep::on_released(&global_tail_);
    lockdep::on_released(
        &local_tails_[topo_.domain_of(platform::self_pid())]);
    // A single store — HCLH returns the predecessor node from acquire(),
    // so release has no queue surgery left to do (§3.8.2).
    ctx.curr_->state.fetch_and(~kSuccMustWait, std::memory_order_release);
    if (ctx.pred_ != nullptr) {
      ctx.curr_ = ctx.pred_;  // adopt the predecessor's node
      ctx.pred_ = nullptr;
    }
    return true;
  }

  // Per-level lockdep surface: level 0 = the global queue, level 1 =
  // the per-cluster local queues (one shared class across clusters).
  // kInvalidClass before the level's first tracked acquisition.
  static constexpr std::uint32_t kTrackedLevels = 2;
  std::uint32_t tracked_levels() const { return kTrackedLevels; }
  lockdep::ClassId level_class(std::uint32_t level) const {
    return level == 0 ? global_key_.id() : local_key_.id();
  }

  static constexpr Resilience resilience() { return R; }

 private:
  friend struct VerifyAccess;

  // True -> the predecessor released the lock to us. False -> the
  // predecessor is a spliced tail or foreign node: we are cluster master.
  bool wait_for_grant_or_cluster_master(const QNode* pred,
                                        std::uint32_t my_cluster) {
    platform::SpinWait w;
    for (;;) {
      const std::uint32_t s = pred->state.load(std::memory_order_acquire);
      const std::uint32_t cluster = s & kClusterMask;
      const bool tws = (s & kTailWhenSpliced) != 0;
      const bool smw = (s & kSuccMustWait) != 0;
      if (cluster == my_cluster && !tws && !smw) return true;
      if (cluster != my_cluster || tws) return false;
      w.pause();
    }
  }

  platform::Topology topo_;  // by value: 8 bytes, no lifetime coupling
  std::atomic<QNode*> global_tail_;
  std::unique_ptr<platform::CacheLineAligned<std::atomic<QNode*>>[]>
      local_tails_;
  // Per-level shared lockdep classes, owned by the lock (see the
  // header comment); &global_tail_ / &local_tails_[cluster] serve as
  // the levels' stack identities.
  lockdep::LockClassKey global_key_;
  lockdep::LockClassKey local_key_;
};

using HclhLock = BasicHclhLock<kOriginal>;
// HCLH needs no fix (paper Table 1: "not applicable"); the alias exists
// so the evaluation harness can treat every lock uniformly.
using HclhLockResilient = BasicHclhLock<kResilient>;

}  // namespace resilock
