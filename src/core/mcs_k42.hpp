// MCS-K42: the K42 variant of the MCS lock (Auslander et al., US patent
// 2003/0200457; see also M. Scott, "Shared-Memory Synchronization",
// Fig. 4.8). Paper §3.6.
//
// Eliminates the context-passing API of classic MCS: waiters allocate
// their qnodes on their own stacks, and the lock keeps both a tail and a
// head pointer inside its own embedded node `q_`:
//   q_.tail : null = free; &q_ = held with no waiters; otherwise = last
//             waiter's stack node.
//   q_.next : head of the waiter list (first waiter) or null.
// A granted thread migrates the queue head out of its stack node before
// entering the critical section, so its frame can be popped safely.
//
// Unbalanced-unlock behavior (original), per §3.6:
//   * lock free            -> Tm fails the tail CAS and spins on q_.next
//                             forever: Tm starves.
//   * held, no waiters     -> Tm's CAS(&q_ -> null) succeeds; the lock
//                             looks free while the holder is inside:
//                             mutex violation; the real holder's own
//                             release later spins forever: any thread
//                             starvation.
//   * held, with waiters   -> Tm grants the head waiter: mutex violation;
//                             racy double releases can then write to a
//                             stack frame that was already popped: stack
//                             corruption.
//
// Resilient fix: the paper sketches re-purposing the qnode fields to
// store the owner's PID (head-as-PID with a discriminating tag bit when
// there are no waiters, the locked field while there are) and omits the
// details for space (§3.6). We ship the straightforward realization — a
// dedicated owner-PID word checked at release — which trades one word of
// footprint (the §2.3 discussion) for the same functional guarantee:
// release() by a non-owner is detected and suppressed before any queue
// state is touched.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/resilience.hpp"
#include "core/verify_access.hpp"
#include "platform/cacheline.hpp"
#include "platform/spin.hpp"
#include "platform/thread_registry.hpp"

namespace resilock {

template <Resilience R>
class BasicMcsK42Lock {
  struct Node;
  // Sentinel "still waiting" value for a waiter's status field.
  static Node* waiting_sentinel() {
    return reinterpret_cast<Node*>(std::uintptr_t{1});
  }

  struct alignas(platform::kCacheLineSize) Node {
    // In the lock's embedded node: the queue tail. In a waiter's stack
    // node: the grant status (waiting_sentinel() until granted).
    std::atomic<Node*> tail{nullptr};
    // In the lock's embedded node: the queue head. In a waiter's node:
    // the successor link.
    std::atomic<Node*> next{nullptr};
  };

  static constexpr std::uint32_t kNoOwner = 0;

 public:
  BasicMcsK42Lock() = default;
  BasicMcsK42Lock(const BasicMcsK42Lock&) = delete;
  BasicMcsK42Lock& operator=(const BasicMcsK42Lock&) = delete;

  void acquire() {
    platform::SpinWait w;
    for (;;) {
      Node* prev = q_.tail.load(std::memory_order_acquire);
      if (prev == nullptr) {
        // Lock appears free: try to take it uncontended.
        if (q_.tail.compare_exchange_weak(prev, &q_,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
          set_owner();
          return;
        }
        continue;
      }
      // Lock held: enqueue a stack node.
      Node me;
      me.tail.store(waiting_sentinel(), std::memory_order_relaxed);
      me.next.store(nullptr, std::memory_order_relaxed);
      if (!q_.tail.compare_exchange_weak(prev, &me,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
        continue;  // tail moved; retry from scratch
      }
      // Link ourselves as our predecessor's successor (the lock's own
      // node doubles as the predecessor when we are the first waiter).
      if (prev == &q_) {
        q_.next.store(&me, std::memory_order_release);
      } else {
        prev->next.store(&me, std::memory_order_release);
      }
      while (me.tail.load(std::memory_order_acquire) == waiting_sentinel())
        w.pause();
      // Granted. Migrate the head out of our stack frame.
      Node* succ = me.next.load(std::memory_order_acquire);
      if (succ == nullptr) {
        q_.next.store(nullptr, std::memory_order_relaxed);
        Node* expected = &me;
        if (!q_.tail.compare_exchange_strong(expected, &q_,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
          // Someone is enqueuing behind us; wait for the link.
          while ((succ = me.next.load(std::memory_order_acquire)) == nullptr)
            w.pause();
          q_.next.store(succ, std::memory_order_release);
        }
      } else {
        q_.next.store(succ, std::memory_order_release);
      }
      set_owner();
      return;
    }
  }

  bool try_acquire() {
    Node* expected = nullptr;
    if (q_.tail.compare_exchange_strong(expected, &q_,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
      set_owner();
      return true;
    }
    return false;
  }

  bool release() {
    if constexpr (R == kResilient) {
      if (misuse_checks_enabled() &&
          owner_.load(std::memory_order_relaxed) !=
              platform::self_pid() + 1) {
        return false;  // unbalanced unlock detected; state untouched
      }
      owner_.store(kNoOwner, std::memory_order_relaxed);
    }
    Node* succ = q_.next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      Node* expected = &q_;
      if (q_.tail.compare_exchange_strong(expected, nullptr,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
        return true;  // no waiters; lock is now free
      }
      // A waiter is mid-enqueue; wait for the head to materialize.
      platform::SpinWait w;
      while ((succ = q_.next.load(std::memory_order_acquire)) == nullptr)
        w.pause();
    }
    succ->tail.store(nullptr, std::memory_order_release);  // grant
    return true;
  }

  static constexpr Resilience resilience() { return R; }

 private:
  friend struct VerifyAccess;

  void set_owner() {
    if constexpr (R == kResilient) {
      owner_.store(platform::self_pid() + 1, std::memory_order_relaxed);
    }
  }

  struct Empty {};
  Node q_;
  [[no_unique_address]] std::conditional_t<R == kResilient,
                                           std::atomic<std::uint32_t>, Empty>
      owner_{};
};

using McsK42Lock = BasicMcsK42Lock<kOriginal>;
using McsK42LockResilient = BasicMcsK42Lock<kResilient>;

}  // namespace resilock
