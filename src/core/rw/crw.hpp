// NUMA-aware reader-writer locks: C-RW-NP / C-RW-RP / C-RW-WP
// (Calciu, Dice, Lev, Luchangco, Marathe & Shavit, PPoPP 2013). Paper §4.
//
// Building blocks: a cohort lock (C-PTK-TKT: global partitioned ticket
// over per-domain ticket locks) and a ReadIndicator.
//
// Neutral preference (Figure 10 of the paper):
//   reader: CohortLock.acquire; ReadIndr.arrive; CohortLock.release;
//           <read CS>; ReadIndr.depart
//   writer: CohortLock.acquire; while (!ReadIndr.isEmpty()) pause;
//           <write CS>; CohortLock.release
//
// Reader preference: readers skip the cohort lock entirely and only back
// out while a writer is *active*; writers may starve. Writer preference:
// readers defer to *pending* writers; readers may starve. Both reuse the
// same misuse analysis (§4).
//
// Unbalanced-unlock behavior (§4):
//   * RUnlock without RLock corrupts the ReadIndicator: with one reader
//     and one waiting writer it empties the indicator — reader and writer
//     end up in the CS together (mutex violation) — and the reader's own
//     later depart drives the count negative, so every future writer
//     spins on isEmpty forever (starvation of others).
//   * WUnlock without WLock behaves like the underlying cohort lock.
//
// Resilience (§4): the W side reuses the ticket-lock remedy through the
// cohort lock. The R side is *unsolved in the paper* for the compact
// indicators; instantiating with CheckedReadIndicator (our extension)
// makes RUnlock misuse detectable at the cost of per-thread state.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/cohort.hpp"
#include "core/resilience.hpp"
#include "core/rw/read_indicator.hpp"
#include "core/verify_access.hpp"
#include "park/parking_lot.hpp"
#include "platform/spin.hpp"
#include "platform/thread_registry.hpp"
#include "platform/topology.hpp"
#include "runtime/timer.hpp"

namespace resilock {

enum class RwPreference {
  kNeutral,  // C-RW-NP
  kReader,   // C-RW-RP
  kWriter,   // C-RW-WP
};

// The cohort backing the writer side is a template parameter so the
// protection matrix can drive the C-RW construction over different
// cohort families (C-PTKT-TKT is the paper's choice and the default;
// C-TKT-TKT and C-BO-BO give the ticket- and TAS-local variants).
template <Resilience R, typename ReadIndicator = SplitReadIndicator,
          RwPreference P = RwPreference::kNeutral,
          typename CohortT = CPtktTktLock<R>>
class CrwLock {
  using Cohort = CohortT;

 public:
  using Context = typename Cohort::Context;

  explicit CrwLock(
      const platform::Topology& topo = platform::Topology::host_default())
      : cohort_(topo), indicator_(make_indicator(topo)) {}

  CrwLock(const CrwLock&) = delete;
  CrwLock& operator=(const CrwLock&) = delete;

  void rlock(Context& ctx) {
    if constexpr (P == RwPreference::kNeutral) {
      // Figure 10: readers serialize briefly on the cohort lock, arrive,
      // and release it before entering the CS so readers can overlap.
      cohort_.acquire(ctx);
      indicator_.arrive(platform::self_pid());
      cohort_.release(ctx);
    } else if constexpr (P == RwPreference::kReader) {
      for (;;) {
        indicator_.arrive(platform::self_pid());
        if (!writer_active_.load(std::memory_order_seq_cst)) return;
        indicator_.depart(platform::self_pid());
        read_side_wait([this] {
          return !writer_active_.load(std::memory_order_seq_cst);
        });
      }
    } else {  // writer preference
      for (;;) {
        read_side_wait([this] {
          return writers_pending_.load(std::memory_order_seq_cst) == 0;
        });
        indicator_.arrive(platform::self_pid());
        if (writers_pending_.load(std::memory_order_seq_cst) == 0) return;
        indicator_.depart(platform::self_pid());
      }
    }
  }

  // Returns false iff the indicator detected a misuse (checked indicator
  // only; the compact indicators silently corrupt, as the paper states).
  bool runlock(Context&) { return indicator_.depart(platform::self_pid()); }

  // Non-blocking read acquisition (pthread_rwlock_tryrdlock shape):
  // false means EBUSY and no observable state change — an arrived
  // indicator presence is departed again before returning. Needs a
  // trylock-capable cohort only on the neutral path (readers there
  // serialize briefly on the cohort lock).
  bool try_rlock(Context& ctx)
    requires(generic_has_trylock<Cohort>())
  {
    if constexpr (P == RwPreference::kNeutral) {
      if (!cohort_.try_acquire(ctx)) return false;
      indicator_.arrive(platform::self_pid());
      cohort_.release(ctx);
      return true;
    } else if constexpr (P == RwPreference::kReader) {
      indicator_.arrive(platform::self_pid());
      if (!writer_active_.load(std::memory_order_seq_cst)) return true;
      indicator_.depart(platform::self_pid());
      return false;
    } else {  // writer preference: defer to pending writers, once
      if (writers_pending_.load(std::memory_order_acquire) != 0) {
        return false;
      }
      indicator_.arrive(platform::self_pid());
      if (writers_pending_.load(std::memory_order_seq_cst) == 0) {
        return true;
      }
      indicator_.depart(platform::self_pid());
      return false;
    }
  }

  void wlock(Context& ctx) {
    if constexpr (P == RwPreference::kWriter) {
      writers_pending_.fetch_add(1, std::memory_order_seq_cst);
    }
    cohort_.acquire(ctx);
    if constexpr (R == kResilient) {
      writer_pid_.store(platform::self_pid() + 1,
                        std::memory_order_relaxed);
    }
    if constexpr (P == RwPreference::kReader) {
      writer_active_.store(true, std::memory_order_seq_cst);
    }
    platform::SpinWait w;
    while (!indicator_.is_empty()) w.pause();
  }

  // Non-blocking write acquisition (pthread_rwlock_trywrlock shape):
  // the cohort lock is tried, and a non-empty ReadIndicator — where the
  // blocking wlock would spin — backs the whole acquisition out
  // instead. The WP pending count is raised around the attempt exactly
  // as wlock raises it, so readers observe the same deference window.
  bool try_wlock(Context& ctx)
    requires(generic_has_trylock<Cohort>())
  {
    if constexpr (P == RwPreference::kWriter) {
      writers_pending_.fetch_add(1, std::memory_order_seq_cst);
    }
    if (!cohort_.try_acquire(ctx)) {
      if constexpr (P == RwPreference::kWriter) {
        writers_pending_.fetch_sub(1, std::memory_order_seq_cst);
        // Same barrier as every other pending-count drop: a reader that
        // parked on the raised count must observe this 1->0 transition
        // or it sleeps through the lost epoch bump forever.
        maybe_wake_readers();
      }
      return false;
    }
    if constexpr (P == RwPreference::kReader) {
      writer_active_.store(true, std::memory_order_seq_cst);
    }
    if (!indicator_.is_empty()) {  // readers live: would block — EBUSY
      if constexpr (P == RwPreference::kReader) {
        writer_active_.store(false, std::memory_order_seq_cst);
      }
      cohort_.release(ctx);
      if constexpr (P == RwPreference::kWriter) {
        writers_pending_.fetch_sub(1, std::memory_order_seq_cst);
      }
      // Backed-out barrier: readers parked on the raised flag must
      // re-check, same as a completed wunlock.
      if constexpr (P != RwPreference::kNeutral) maybe_wake_readers();
      return false;
    }
    if constexpr (R == kResilient) {
      writer_pid_.store(platform::self_pid() + 1,
                        std::memory_order_relaxed);
    }
    return true;
  }

  bool wunlock(Context& ctx) {
    if constexpr (R == kResilient) {
      // Ticket-style PID remedy applied at the RW level, so the check
      // happens before any flag (RP barrier, WP pending count) or the
      // cohort lock itself can be corrupted.
      if (misuse_checks_enabled() &&
          writer_pid_.load(std::memory_order_relaxed) !=
              platform::self_pid() + 1) {
        return false;
      }
      writer_pid_.store(0, std::memory_order_relaxed);
    }
    if constexpr (P == RwPreference::kReader) {
      writer_active_.store(false, std::memory_order_seq_cst);
    }
    const bool ok = cohort_.release(ctx);
    if constexpr (P == RwPreference::kWriter) {
      writers_pending_.fetch_sub(1, std::memory_order_seq_cst);
    }
    if constexpr (P != RwPreference::kNeutral) maybe_wake_readers();
    return ok;
  }

  // Shield rescue hook, mirroring BasicTicketLock: an absorbed misuse
  // may have left readers parked on a barrier flag whose owner is gone;
  // bump the epoch and broadcast so they re-evaluate. (RwShield detects
  // this pair via `requires` and reports waiters_parked in its rescue
  // telemetry.)
  void misuse_wake() noexcept {
    park::ParkStats::instance().misuse_wakes.fetch_add(
        1, std::memory_order_relaxed);
    wake_all_readers();
  }

  std::uint32_t parked_waiters() const noexcept {
    return parked_.load(std::memory_order_acquire);
  }

  ReadIndicator& indicator() { return indicator_; }
  const ReadIndicator& indicator() const { return indicator_; }
  static constexpr Resilience resilience() { return R; }
  static constexpr RwPreference preference() { return P; }

 private:
  friend struct VerifyAccess;

  // Read-side barrier wait with futex parking (RP: writer_active_; WP:
  // writers_pending_). The ticket lock's epoch scheme transplants
  // directly — there is no per-waiter node to futex on, so waiters
  // sleep on a shared epoch word and every barrier drop broadcast-
  // wakes; `clear` must load its flag seq_cst so the registration in
  // parked_ (seq_cst) and the releaser's flag-store/fence/parked_-check
  // form the Dekker pairing that keeps a parker from slipping between
  // the store and the wake decision.
  template <typename Clear>
  void read_side_wait(Clear&& clear) {
    platform::SpinWait w;
    const std::uint32_t budget = park::park_spins();
    for (std::uint32_t i = 0; i < budget; ++i) {
      if (clear()) return;
      w.pause();
    }
    if (!park::parking_enabled()) {
      while (!clear()) w.pause();
      return;
    }
    park::ParkStats& g = park::ParkStats::instance();
    park::ThreadParkTally& tally = park::ThreadParkTally::mine();
    for (;;) {
      // Epoch sample BEFORE the barrier re-check: a wunlock landing
      // after the re-check has already bumped past the sampled epoch,
      // so the futex_wait refuses to sleep.
      const std::uint32_t e = park_epoch_.load(std::memory_order_acquire);
      parked_.fetch_add(1, std::memory_order_seq_cst);
      if (clear()) {
        parked_.fetch_sub(1, std::memory_order_release);
        return;
      }
      const std::uint64_t t0 = runtime::now_ns();
      g.currently_parked.fetch_add(1, std::memory_order_relaxed);
      const park::WaitResult r =
          park::futex_wait(&park_epoch_, e, nullptr);
      g.currently_parked.fetch_sub(1, std::memory_order_relaxed);
      parked_.fetch_sub(1, std::memory_order_release);
      if (r != park::WaitResult::kValueChanged) {
        tally.parks += 1;
        tally.park_ns += runtime::now_ns() - t0;
        g.parks.fetch_add(1, std::memory_order_relaxed);
      }
      if (clear()) {
        if (r != park::WaitResult::kValueChanged) {
          tally.wakes += 1;
          g.wakes.fetch_add(1, std::memory_order_relaxed);
        }
        return;
      }
      g.wakes_spurious.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Releaser half of the Dekker pairing; cheap when parking is cold.
  void maybe_wake_readers() noexcept {
    if (!park::parking_enabled() &&
        parked_.load(std::memory_order_acquire) == 0) {
      return;
    }
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (parked_.load(std::memory_order_relaxed) == 0) return;
    wake_all_readers();
  }

  void wake_all_readers() noexcept {
    park_epoch_.fetch_add(1, std::memory_order_release);
    park::futex_wake_all(&park_epoch_);
  }

  static ReadIndicator make_indicator(const platform::Topology& topo) {
    if constexpr (std::is_constructible_v<ReadIndicator,
                                          const platform::Topology&>) {
      return ReadIndicator(topo);
    } else {
      (void)topo;
      return ReadIndicator();
    }
  }

  Cohort cohort_;
  ReadIndicator indicator_;
  alignas(platform::kCacheLineSize) std::atomic<bool> writer_active_{false};
  alignas(platform::kCacheLineSize) std::atomic<std::int32_t>
      writers_pending_{0};
  alignas(platform::kCacheLineSize) std::atomic<std::uint32_t>
      writer_pid_{0};
  // Read-side park epoch + registered-parker count (see
  // read_side_wait). Own line so parker churn does not bounce the
  // barrier flags above.
  alignas(platform::kCacheLineSize) std::atomic<std::uint32_t>
      park_epoch_{0};
  std::atomic<std::uint32_t> parked_{0};
};

// Aliases for the three variants over the default (split) indicator.
using CrwNpLock = CrwLock<kOriginal, SplitReadIndicator,
                          RwPreference::kNeutral>;
using CrwNpLockResilient =
    CrwLock<kResilient, SplitReadIndicator, RwPreference::kNeutral>;
using CrwRpLock = CrwLock<kOriginal, SplitReadIndicator,
                          RwPreference::kReader>;
using CrwRpLockResilient =
    CrwLock<kResilient, SplitReadIndicator, RwPreference::kReader>;
using CrwWpLock = CrwLock<kOriginal, SplitReadIndicator,
                          RwPreference::kWriter>;
using CrwWpLockResilient =
    CrwLock<kResilient, SplitReadIndicator, RwPreference::kWriter>;
// Fully checked variant: W side by the ticket PID remedy, R side by the
// per-thread presence bits (our extension of §4's open problem).
using CrwNpLockChecked =
    CrwLock<kResilient, CheckedReadIndicator, RwPreference::kNeutral>;

}  // namespace resilock
