// NUMA-aware reader-writer locks: C-RW-NP / C-RW-RP / C-RW-WP
// (Calciu, Dice, Lev, Luchangco, Marathe & Shavit, PPoPP 2013). Paper §4.
//
// Building blocks: a cohort lock (C-PTK-TKT: global partitioned ticket
// over per-domain ticket locks) and a ReadIndicator.
//
// Neutral preference (Figure 10 of the paper):
//   reader: CohortLock.acquire; ReadIndr.arrive; CohortLock.release;
//           <read CS>; ReadIndr.depart
//   writer: CohortLock.acquire; while (!ReadIndr.isEmpty()) pause;
//           <write CS>; CohortLock.release
//
// Reader preference: readers skip the cohort lock entirely and only back
// out while a writer is *active*; writers may starve. Writer preference:
// readers defer to *pending* writers; readers may starve. Both reuse the
// same misuse analysis (§4).
//
// Unbalanced-unlock behavior (§4):
//   * RUnlock without RLock corrupts the ReadIndicator: with one reader
//     and one waiting writer it empties the indicator — reader and writer
//     end up in the CS together (mutex violation) — and the reader's own
//     later depart drives the count negative, so every future writer
//     spins on isEmpty forever (starvation of others).
//   * WUnlock without WLock behaves like the underlying cohort lock.
//
// Resilience (§4): the W side reuses the ticket-lock remedy through the
// cohort lock. The R side is *unsolved in the paper* for the compact
// indicators; instantiating with CheckedReadIndicator (our extension)
// makes RUnlock misuse detectable at the cost of per-thread state.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/cohort.hpp"
#include "core/resilience.hpp"
#include "core/rw/read_indicator.hpp"
#include "core/verify_access.hpp"
#include "platform/spin.hpp"
#include "platform/thread_registry.hpp"
#include "platform/topology.hpp"

namespace resilock {

enum class RwPreference {
  kNeutral,  // C-RW-NP
  kReader,   // C-RW-RP
  kWriter,   // C-RW-WP
};

// The cohort backing the writer side is a template parameter so the
// protection matrix can drive the C-RW construction over different
// cohort families (C-PTKT-TKT is the paper's choice and the default;
// C-TKT-TKT and C-BO-BO give the ticket- and TAS-local variants).
template <Resilience R, typename ReadIndicator = SplitReadIndicator,
          RwPreference P = RwPreference::kNeutral,
          typename CohortT = CPtktTktLock<R>>
class CrwLock {
  using Cohort = CohortT;

 public:
  using Context = typename Cohort::Context;

  explicit CrwLock(
      const platform::Topology& topo = platform::Topology::host_default())
      : cohort_(topo), indicator_(make_indicator(topo)) {}

  CrwLock(const CrwLock&) = delete;
  CrwLock& operator=(const CrwLock&) = delete;

  void rlock(Context& ctx) {
    if constexpr (P == RwPreference::kNeutral) {
      // Figure 10: readers serialize briefly on the cohort lock, arrive,
      // and release it before entering the CS so readers can overlap.
      cohort_.acquire(ctx);
      indicator_.arrive(platform::self_pid());
      cohort_.release(ctx);
    } else if constexpr (P == RwPreference::kReader) {
      platform::SpinWait w;
      for (;;) {
        indicator_.arrive(platform::self_pid());
        if (!writer_active_.load(std::memory_order_seq_cst)) return;
        indicator_.depart(platform::self_pid());
        while (writer_active_.load(std::memory_order_acquire)) w.pause();
      }
    } else {  // writer preference
      platform::SpinWait w;
      for (;;) {
        while (writers_pending_.load(std::memory_order_acquire) != 0)
          w.pause();
        indicator_.arrive(platform::self_pid());
        if (writers_pending_.load(std::memory_order_seq_cst) == 0) return;
        indicator_.depart(platform::self_pid());
      }
    }
  }

  // Returns false iff the indicator detected a misuse (checked indicator
  // only; the compact indicators silently corrupt, as the paper states).
  bool runlock(Context&) { return indicator_.depart(platform::self_pid()); }

  // Non-blocking read acquisition (pthread_rwlock_tryrdlock shape):
  // false means EBUSY and no observable state change — an arrived
  // indicator presence is departed again before returning. Needs a
  // trylock-capable cohort only on the neutral path (readers there
  // serialize briefly on the cohort lock).
  bool try_rlock(Context& ctx)
    requires(generic_has_trylock<Cohort>())
  {
    if constexpr (P == RwPreference::kNeutral) {
      if (!cohort_.try_acquire(ctx)) return false;
      indicator_.arrive(platform::self_pid());
      cohort_.release(ctx);
      return true;
    } else if constexpr (P == RwPreference::kReader) {
      indicator_.arrive(platform::self_pid());
      if (!writer_active_.load(std::memory_order_seq_cst)) return true;
      indicator_.depart(platform::self_pid());
      return false;
    } else {  // writer preference: defer to pending writers, once
      if (writers_pending_.load(std::memory_order_acquire) != 0) {
        return false;
      }
      indicator_.arrive(platform::self_pid());
      if (writers_pending_.load(std::memory_order_seq_cst) == 0) {
        return true;
      }
      indicator_.depart(platform::self_pid());
      return false;
    }
  }

  void wlock(Context& ctx) {
    if constexpr (P == RwPreference::kWriter) {
      writers_pending_.fetch_add(1, std::memory_order_seq_cst);
    }
    cohort_.acquire(ctx);
    if constexpr (R == kResilient) {
      writer_pid_.store(platform::self_pid() + 1,
                        std::memory_order_relaxed);
    }
    if constexpr (P == RwPreference::kReader) {
      writer_active_.store(true, std::memory_order_seq_cst);
    }
    platform::SpinWait w;
    while (!indicator_.is_empty()) w.pause();
  }

  // Non-blocking write acquisition (pthread_rwlock_trywrlock shape):
  // the cohort lock is tried, and a non-empty ReadIndicator — where the
  // blocking wlock would spin — backs the whole acquisition out
  // instead. The WP pending count is raised around the attempt exactly
  // as wlock raises it, so readers observe the same deference window.
  bool try_wlock(Context& ctx)
    requires(generic_has_trylock<Cohort>())
  {
    if constexpr (P == RwPreference::kWriter) {
      writers_pending_.fetch_add(1, std::memory_order_seq_cst);
    }
    if (!cohort_.try_acquire(ctx)) {
      if constexpr (P == RwPreference::kWriter) {
        writers_pending_.fetch_sub(1, std::memory_order_seq_cst);
      }
      return false;
    }
    if constexpr (P == RwPreference::kReader) {
      writer_active_.store(true, std::memory_order_seq_cst);
    }
    if (!indicator_.is_empty()) {  // readers live: would block — EBUSY
      if constexpr (P == RwPreference::kReader) {
        writer_active_.store(false, std::memory_order_seq_cst);
      }
      cohort_.release(ctx);
      if constexpr (P == RwPreference::kWriter) {
        writers_pending_.fetch_sub(1, std::memory_order_seq_cst);
      }
      return false;
    }
    if constexpr (R == kResilient) {
      writer_pid_.store(platform::self_pid() + 1,
                        std::memory_order_relaxed);
    }
    return true;
  }

  bool wunlock(Context& ctx) {
    if constexpr (R == kResilient) {
      // Ticket-style PID remedy applied at the RW level, so the check
      // happens before any flag (RP barrier, WP pending count) or the
      // cohort lock itself can be corrupted.
      if (misuse_checks_enabled() &&
          writer_pid_.load(std::memory_order_relaxed) !=
              platform::self_pid() + 1) {
        return false;
      }
      writer_pid_.store(0, std::memory_order_relaxed);
    }
    if constexpr (P == RwPreference::kReader) {
      writer_active_.store(false, std::memory_order_seq_cst);
    }
    const bool ok = cohort_.release(ctx);
    if constexpr (P == RwPreference::kWriter) {
      writers_pending_.fetch_sub(1, std::memory_order_seq_cst);
    }
    return ok;
  }

  ReadIndicator& indicator() { return indicator_; }
  const ReadIndicator& indicator() const { return indicator_; }
  static constexpr Resilience resilience() { return R; }
  static constexpr RwPreference preference() { return P; }

 private:
  friend struct VerifyAccess;

  static ReadIndicator make_indicator(const platform::Topology& topo) {
    if constexpr (std::is_constructible_v<ReadIndicator,
                                          const platform::Topology&>) {
      return ReadIndicator(topo);
    } else {
      (void)topo;
      return ReadIndicator();
    }
  }

  Cohort cohort_;
  ReadIndicator indicator_;
  alignas(platform::kCacheLineSize) std::atomic<bool> writer_active_{false};
  alignas(platform::kCacheLineSize) std::atomic<std::int32_t>
      writers_pending_{0};
  alignas(platform::kCacheLineSize) std::atomic<std::uint32_t>
      writer_pid_{0};
};

// Aliases for the three variants over the default (split) indicator.
using CrwNpLock = CrwLock<kOriginal, SplitReadIndicator,
                          RwPreference::kNeutral>;
using CrwNpLockResilient =
    CrwLock<kResilient, SplitReadIndicator, RwPreference::kNeutral>;
using CrwRpLock = CrwLock<kOriginal, SplitReadIndicator,
                          RwPreference::kReader>;
using CrwRpLockResilient =
    CrwLock<kResilient, SplitReadIndicator, RwPreference::kReader>;
using CrwWpLock = CrwLock<kOriginal, SplitReadIndicator,
                          RwPreference::kWriter>;
using CrwWpLockResilient =
    CrwLock<kResilient, SplitReadIndicator, RwPreference::kWriter>;
// Fully checked variant: W side by the ticket PID remedy, R side by the
// per-thread presence bits (our extension of §4's open problem).
using CrwNpLockChecked =
    CrwLock<kResilient, CheckedReadIndicator, RwPreference::kNeutral>;

}  // namespace resilock
