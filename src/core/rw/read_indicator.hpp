// ReadIndicator abstractions for the C-RW family (Calciu et al. 2013).
// Paper §4.
//
// A ReadIndicator lets readers announce arrival/departure and lets
// writers ask "any readers present?". The paper names three realizations
// — SNZI (Lev et al.), per-NUMA-domain counters, and split ingress/egress
// counters — plus notes that an unbalanced RUnlock() is *undetectable*
// with all of them because they count without identity. We implement all
// three, and additionally a CheckedReadIndicator that spends one bit per
// thread to make departure-without-arrival detectable — the "future
// research" direction §4 leaves open, shipped here as an explicit
// extension (its cost appears in bench/ablation_readindr).
//
// API: arrive(pid) / depart(pid) -> bool (false iff the call was detected
// as a misuse; only the checked indicator ever detects), is_empty(), and
// approx_readers() — a relaxed estimate of the live reader population.
// The estimate is the rw contention signal the response engine keys
// verdict escalation off (a misuse while readers are inside has a
// non-zero damage radius); it is approximate by design: counters can be
// mid-update, and SNZI's root counts nonempty leaves (a lower bound),
// so treat it as telemetry, never as a correctness input.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "platform/cacheline.hpp"
#include "platform/thread_registry.hpp"
#include "platform/topology.hpp"

namespace resilock {

// Single shared counter: correct but contended — every arrival/departure
// bounces one cache line across all readers.
class CentralReadIndicator {
 public:
  bool arrive(platform::pid_t) {
    count_.fetch_add(1, std::memory_order_acq_rel);
    return true;
  }
  bool depart(platform::pid_t) {
    count_.fetch_sub(1, std::memory_order_acq_rel);
    return true;
  }
  bool is_empty() const {
    return count_.load(std::memory_order_acquire) == 0;
  }

  std::uint32_t approx_readers() const {
    const std::int64_t c = count_.load(std::memory_order_relaxed);
    return c > 0 ? static_cast<std::uint32_t>(c) : 0;
  }

 private:
  alignas(platform::kCacheLineSize) std::atomic<std::int64_t> count_{0};
};

// Split ingress/egress counters, one pair per NUMA domain (Calciu et al.
// §3.2): readers increment their domain's ingress on arrive and its
// egress on depart; writers subtract. A misused depart makes ingress and
// egress diverge forever — the §4 starvation scenario.
class SplitReadIndicator {
 public:
  explicit SplitReadIndicator(
      const platform::Topology& topo = platform::Topology::host_default())
      : topo_(topo),
        cells_(std::make_unique<Cell[]>(topo.num_domains())) {}

  bool arrive(platform::pid_t pid) {
    cells_[topo_.domain_of(pid)].ingress.value.fetch_add(
        1, std::memory_order_acq_rel);
    return true;
  }
  bool depart(platform::pid_t pid) {
    cells_[topo_.domain_of(pid)].egress.value.fetch_add(
        1, std::memory_order_acq_rel);
    return true;
  }
  bool is_empty() const {
    // Sum egress before ingress: a concurrent arrive can only make the
    // indicator look non-empty (safe direction for writers).
    std::int64_t egress = 0, ingress = 0;
    for (std::uint32_t d = 0; d < topo_.num_domains(); ++d)
      egress += cells_[d].egress.value.load(std::memory_order_acquire);
    for (std::uint32_t d = 0; d < topo_.num_domains(); ++d)
      ingress += cells_[d].ingress.value.load(std::memory_order_acquire);
    return ingress == egress;
  }

  std::uint32_t approx_readers() const {
    std::int64_t diff = 0;
    for (std::uint32_t d = 0; d < topo_.num_domains(); ++d) {
      diff += cells_[d].ingress.value.load(std::memory_order_relaxed) -
              cells_[d].egress.value.load(std::memory_order_relaxed);
    }
    return diff > 0 ? static_cast<std::uint32_t>(diff) : 0;
  }

 private:
  struct Cell {
    platform::CacheLineAligned<std::atomic<std::int64_t>> ingress;
    platform::CacheLineAligned<std::atomic<std::int64_t>> egress;
  };
  platform::Topology topo_;  // by value: 8 bytes, no lifetime coupling
  std::unique_ptr<Cell[]> cells_;
};

// SNZI — Scalable NonZero Indicator (Ellen, Lev, Luchangco & Moir, PODC
// 2007). A tree of counters: a reader arrives at its domain's leaf and
// climbs only on 0 -> nonzero transitions, so the root (which the writer
// polls) changes state once per *episode* of readers, not once per
// reader. The intermediate "one-half" value and version tag implement
// the paper's hand-off between racing arrivers. The root here is a plain
// counter read directly by is_empty() — we drop the announce-bit
// optimization of the original paper, which only accelerates Query.
class SnziReadIndicator {
  // Leaf/intermediate node state: count is doubled so that the special
  // "one-half" value is representable (half == 1, whole k == 2k);
  // a version tag in the high bits disambiguates racing 0->half setters.
  static constexpr std::uint64_t kHalf = 1;
  static constexpr std::uint64_t kOne = 2;
  static constexpr std::uint64_t kCountMask = 0xFFFFFFFFull;

  static std::uint64_t make(std::uint64_t count2, std::uint64_t version) {
    return (version << 32) | count2;
  }
  static std::uint64_t count2_of(std::uint64_t x) { return x & kCountMask; }
  static std::uint64_t version_of(std::uint64_t x) { return x >> 32; }

 public:
  explicit SnziReadIndicator(
      const platform::Topology& topo = platform::Topology::host_default())
      : topo_(topo),
        leaves_(std::make_unique<
                platform::CacheLineAligned<std::atomic<std::uint64_t>>[]>(
            topo.num_domains())) {
    for (std::uint32_t d = 0; d < topo.num_domains(); ++d)
      leaves_[d].value.store(0, std::memory_order_relaxed);
  }

  bool arrive(platform::pid_t pid) {
    leaf_arrive(leaves_[topo_.domain_of(pid)].value);
    return true;
  }

  bool depart(platform::pid_t pid) {
    leaf_depart(leaves_[topo_.domain_of(pid)].value);
    return true;
  }

  bool is_empty() const {
    return root_.load(std::memory_order_acquire) == 0;
  }

  // The root counts leaves with readers, not readers — a lower bound
  // (that is the whole point of SNZI); good enough as a "readers are
  // present and roughly how spread out" signal.
  std::uint32_t approx_readers() const {
    const std::int64_t c = root_.load(std::memory_order_relaxed);
    return c > 0 ? static_cast<std::uint32_t>(c) : 0;
  }

 private:
  void leaf_arrive(std::atomic<std::uint64_t>& X) {
    bool succeeded = false;
    int undo_arrivals = 0;
    while (!succeeded) {
      std::uint64_t x = X.load(std::memory_order_acquire);
      const std::uint64_t c2 = count2_of(x);
      if (c2 >= kOne) {
        if (X.compare_exchange_weak(x, make(c2 + kOne, version_of(x)),
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
          succeeded = true;
        }
        continue;
      }
      if (c2 == 0) {
        // Claim the 0 -> half transition; whoever wins must arrive at
        // the parent before promoting half -> one.
        if (X.compare_exchange_weak(x, make(kHalf, version_of(x) + 1),
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
          succeeded = true;
          x = make(kHalf, version_of(x) + 1);
        } else {
          continue;
        }
      }
      if (count2_of(x) == kHalf) {
        root_arrive();
        std::uint64_t expected = x;
        if (!X.compare_exchange_strong(expected,
                                       make(kOne, version_of(x)),
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
          // Another helper promoted it first; our parent arrival is
          // surplus and must be undone after we finish.
          ++undo_arrivals;
        }
      }
    }
    for (; undo_arrivals > 0; --undo_arrivals) root_depart();
  }

  void leaf_depart(std::atomic<std::uint64_t>& X) {
    for (;;) {
      std::uint64_t x = X.load(std::memory_order_acquire);
      const std::uint64_t c2 = count2_of(x);
      // A well-formed depart always sees a whole count. (A *misused*
      // depart on an empty leaf would underflow — exactly the §4
      // corruption; we saturate at zero-count to keep the experiment
      // repeatable rather than wrap.)
      const std::uint64_t next = c2 >= kOne ? c2 - kOne : 0;
      if (X.compare_exchange_weak(x, make(next, version_of(x)),
                                  std::memory_order_acq_rel,
                                  std::memory_order_relaxed)) {
        if (c2 == kOne) root_depart();  // leaf became empty
        return;
      }
    }
  }

  void root_arrive() { root_.fetch_add(1, std::memory_order_acq_rel); }
  void root_depart() { root_.fetch_sub(1, std::memory_order_acq_rel); }

  platform::Topology topo_;  // by value: 8 bytes, no lifetime coupling
  alignas(platform::kCacheLineSize) std::atomic<std::int64_t> root_{0};
  std::unique_ptr<platform::CacheLineAligned<std::atomic<std::uint64_t>>[]>
      leaves_;
};

// One presence bit per thread: costs memory and an O(threads) writer
// scan, but makes an unbalanced RUnlock *detectable* — the extension the
// paper leaves to future research (§4 "detection and solution").
class CheckedReadIndicator {
 public:
  explicit CheckedReadIndicator(
      std::uint32_t capacity = platform::ThreadRegistry::kCapacity)
      : capacity_(capacity),
        present_(std::make_unique<
                 platform::CacheLineAligned<std::atomic<bool>>[]>(capacity)) {
    for (std::uint32_t i = 0; i < capacity_; ++i)
      present_[i].value.store(false, std::memory_order_relaxed);
  }

  bool arrive(platform::pid_t pid) {
    auto& bit = present_[pid % capacity_].value;
    if (bit.load(std::memory_order_relaxed)) return false;  // double arrive
    bit.store(true, std::memory_order_seq_cst);
    return true;
  }

  bool depart(platform::pid_t pid) {
    auto& bit = present_[pid % capacity_].value;
    if (!bit.load(std::memory_order_relaxed)) return false;  // misuse!
    bit.store(false, std::memory_order_release);
    return true;
  }

  bool is_empty() const {
    for (std::uint32_t i = 0; i < capacity_; ++i) {
      if (present_[i].value.load(std::memory_order_acquire)) return false;
    }
    return true;
  }

  std::uint32_t approx_readers() const {
    std::uint32_t n = 0;
    for (std::uint32_t i = 0; i < capacity_; ++i) {
      if (present_[i].value.load(std::memory_order_relaxed)) ++n;
    }
    return n;
  }

 private:
  const std::uint32_t capacity_;
  std::unique_ptr<platform::CacheLineAligned<std::atomic<bool>>[]> present_;
};

}  // namespace resilock
