// Anderson's array-based queuing lock (ABQL). Paper §3.3.1; protocol from
// Anderson 1990 / Mellor-Crummey & Scott 1991 §2.
//
// A bounded array of per-cache-line flags; a thread takes a slot with
// fetch-and-add and spins on it; release() wakes the next slot. The slot
// index (`myPlace`) is the per-thread context carried from acquire() to
// release().
//
// Unbalanced-unlock behavior (original): release() with an uninitialized
// or stale myPlace wakes some slot's waiter while another thread is in the
// critical section — a mutex violation that cascades (each extra thread's
// release wakes yet another waiter). The modulus keeps every access in
// bounds, so there is no memory corruption and no starvation (§3.3.1).
//
// Resilient fix (paper Figure 4): wrap myPlace in an object (`Place`)
// whose constructor initializes it to INVALID and whose raw index is
// private to the lock. acquire() sets it; release() checks it and resets
// it to INVALID, refusing to wake anybody on a mismatch.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "core/resilience.hpp"
#include "core/verify_access.hpp"
#include "platform/cacheline.hpp"
#include "platform/spin.hpp"

namespace resilock {

template <Resilience R>
class BasicAndersonLock {
  static constexpr std::uint64_t kInvalidPlace = ~std::uint64_t{0};
  static constexpr std::uint32_t kMustWait = 0;
  static constexpr std::uint32_t kHasLock = 1;

 public:
  // Per-thread context. In the original flavor the index default-
  // initializes to 0, modeling the paper's "uninitialized myPlace" that
  // an unbalanced unlock hands to release(). The resilient flavor starts
  // INVALID and is reset to INVALID by every successful release.
  class Place {
   public:
    Place() = default;

   private:
    friend class BasicAndersonLock;
    friend struct VerifyAccess;
    std::uint64_t index_ = (R == kResilient) ? kInvalidPlace : 0;
  };
  using Context = Place;

  // `max_procs` bounds the number of threads that may contend at once;
  // rounded up to a power of two so that the fetch-and-add counter can
  // wrap without misaligning the modulus.
  explicit BasicAndersonLock(std::uint32_t max_procs = 64)
      : size_(round_up_pow2(max_procs)),
        slots_(std::make_unique<
               platform::CacheLineAligned<std::atomic<std::uint32_t>>[]>(
            size_)) {
    for (std::uint32_t i = 0; i < size_; ++i)
      slots_[i].value.store(kMustWait, std::memory_order_relaxed);
    slots_[0].value.store(kHasLock, std::memory_order_relaxed);
  }

  BasicAndersonLock(const BasicAndersonLock&) = delete;
  BasicAndersonLock& operator=(const BasicAndersonLock&) = delete;

  void acquire(Place& place) {
    const std::uint64_t my_place =
        queue_last_.fetch_add(1, std::memory_order_relaxed);
    auto& slot = slots_[my_place & (size_ - 1)].value;
    platform::SpinWait w;
    while (slot.load(std::memory_order_acquire) == kMustWait) w.pause();
    // Consume the token so the slot is reusable `size_` acquisitions later.
    slot.store(kMustWait, std::memory_order_relaxed);
    place.index_ = my_place;
  }

  // Take the lock only if it is immediately available: claim ticket t via
  // CAS only after observing slot t's token, so we never commit to
  // waiting. (LiTL equips ABQL with a trylock the same way; the paper's
  // trylock-using applications run ABQL but skip CLH, §6.)
  bool try_acquire(Place& place) {
    std::uint64_t t = queue_last_.load(std::memory_order_relaxed);
    auto& slot = slots_[t & (size_ - 1)].value;
    if (slot.load(std::memory_order_acquire) == kMustWait) return false;
    if (!queue_last_.compare_exchange_strong(t, t + 1,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
      return false;
    }
    slot.store(kMustWait, std::memory_order_relaxed);
    place.index_ = t;
    return true;
  }

  bool release(Place& place) {
    if constexpr (R == kResilient) {
      if (misuse_checks_enabled() && place.index_ == kInvalidPlace) {
        return false;  // unbalanced
      }
    }
    const std::uint64_t idx = place.index_;
    if constexpr (R == kResilient) place.index_ = kInvalidPlace;
    slots_[(idx + 1) & (size_ - 1)].value.store(kHasLock,
                                                std::memory_order_release);
    return true;
  }

  std::uint32_t capacity() const noexcept { return size_; }
  static constexpr Resilience resilience() { return R; }

 private:
  friend struct VerifyAccess;

  static std::uint32_t round_up_pow2(std::uint32_t v) {
    std::uint32_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  const std::uint32_t size_;
  std::unique_ptr<platform::CacheLineAligned<std::atomic<std::uint32_t>>[]>
      slots_;
  alignas(platform::kCacheLineSize) std::atomic<std::uint64_t> queue_last_{0};
};

using AndersonLock = BasicAndersonLock<kOriginal>;
using AndersonLockResilient = BasicAndersonLock<kResilient>;

}  // namespace resilock
