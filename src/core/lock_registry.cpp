#include "core/lock_registry.hpp"

#include <functional>
#include <map>
#include <stdexcept>

#include "core/abql.hpp"
#include "core/ahmcs.hpp"
#include "core/clh.hpp"
#include "core/cohort.hpp"
#include "core/graunke_thakkar.hpp"
#include "core/hbo.hpp"
#include "core/hclh.hpp"
#include "core/hemlock.hpp"
#include "core/hmcs.hpp"
#include "core/mcs.hpp"
#include "core/mcs_k42.hpp"
#include "core/partitioned_ticket.hpp"
#include "core/tas.hpp"
#include "core/ticket.hpp"

namespace resilock {
namespace {

using Factory = std::function<std::unique_ptr<AnyLock>(
    Resilience, const platform::Topology&)>;

// One factory per algorithm; the flavor decides which template
// instantiation backs it.
template <template <Resilience> class LockT>
Factory simple_factory(const char* name) {
  return [name](Resilience r, const platform::Topology&) {
    std::unique_ptr<AnyLock> p;
    if (r == kOriginal) {
      p = std::make_unique<AnyLockAdapter<LockT<kOriginal>>>(name);
    } else {
      p = std::make_unique<AnyLockAdapter<LockT<kResilient>>>(name);
    }
    return p;
  };
}

template <template <Resilience> class LockT>
Factory topo_factory(const char* name) {
  return [name](Resilience r, const platform::Topology& topo) {
    std::unique_ptr<AnyLock> p;
    if (r == kOriginal) {
      p = std::make_unique<AnyLockAdapter<LockT<kOriginal>>>(name, topo);
    } else {
      p = std::make_unique<AnyLockAdapter<LockT<kResilient>>>(name, topo);
    }
    return p;
  };
}

template <Resilience R>
using TasSwap = BasicTasLock<R, TasVariant::kTas>;
template <Resilience R>
using TasTatas = BasicTasLock<R, TasVariant::kTatas>;
template <Resilience R>
using TasBackoff = BasicTasLock<R, TasVariant::kBackoff>;

const std::map<std::string, Factory, std::less<>>& registry() {
  static const std::map<std::string, Factory, std::less<>> r = {
      {"TAS", simple_factory<TasTatas>("TAS")},
      {"TAS_SWAP", simple_factory<TasSwap>("TAS_SWAP")},
      {"TAS_BO", simple_factory<TasBackoff>("TAS_BO")},
      {"Ticket", simple_factory<BasicTicketLock>("Ticket")},
      {"PTKT", simple_factory<BasicPartitionedTicketLock>("PTKT")},
      {"ABQL", simple_factory<BasicAndersonLock>("ABQL")},
      {"GT", simple_factory<BasicGraunkeThakkarLock>("GT")},
      {"MCS", simple_factory<BasicMcsLock>("MCS")},
      {"CLH", simple_factory<BasicClhLock>("CLH")},
      {"MCS_K42", simple_factory<BasicMcsK42Lock>("MCS_K42")},
      {"Hemlock", simple_factory<BasicHemlock>("Hemlock")},
      {"HMCS", topo_factory<BasicHmcsLock>("HMCS")},
      {"AHMCS", topo_factory<BasicAhmcsLock>("AHMCS")},
      {"HCLH", topo_factory<BasicHclhLock>("HCLH")},
      {"HBO", topo_factory<BasicHboLock>("HBO")},
      {"C-BO-BO", topo_factory<CBoBoLock>("C-BO-BO")},
      {"C-TKT-TKT", topo_factory<CTktTktLock>("C-TKT-TKT")},
      {"C-MCS-MCS", topo_factory<CMcsMcsLock>("C-MCS-MCS")},
      {"C-TKT-MCS", topo_factory<CTktMcsLock>("C-TKT-MCS")},
      {"C-PTKT-TKT", topo_factory<CPtktTktLock>("C-PTKT-TKT")},
  };
  return r;
}

}  // namespace

const std::vector<std::string>& lock_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const auto& [name, _] : registry()) v.push_back(name);
    return v;
  }();
  return names;
}

const std::vector<std::string>& table2_lock_names() {
  static const std::vector<std::string> names = {"TAS",  "Ticket", "ABQL",
                                                 "MCS",  "CLH",    "HMCS"};
  return names;
}

bool is_lock_name(std::string_view name) {
  return registry().find(name) != registry().end();
}

std::unique_ptr<AnyLock> make_lock(std::string_view name, Resilience r,
                                   const platform::Topology& topo) {
  auto it = registry().find(name);
  if (it == registry().end()) {
    throw std::out_of_range("resilock: unknown lock algorithm: " +
                            std::string(name));
  }
  return it->second(r, topo);
}

}  // namespace resilock
