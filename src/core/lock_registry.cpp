#include "core/lock_registry.hpp"

#include <functional>
#include <map>
#include <stdexcept>

#include "core/abql.hpp"
#include "core/ahmcs.hpp"
#include "core/clh.hpp"
#include "core/cohort.hpp"
#include "core/graunke_thakkar.hpp"
#include "core/hbo.hpp"
#include "core/hclh.hpp"
#include "core/hemlock.hpp"
#include "core/hmcs.hpp"
#include "core/mcs.hpp"
#include "core/mcs_k42.hpp"
#include "core/partitioned_ticket.hpp"
#include "core/tas.hpp"
#include "core/ticket.hpp"
#include "shield/shield.hpp"

namespace resilock {
namespace {

using Factory = std::function<std::unique_ptr<AnyLock>(
    Resilience, const platform::Topology&)>;

// One factory per algorithm; the flavor decides which template
// instantiation backs it. `Wrap` optionally interposes an adapter
// around the flavored lock — the identity by default, Shield for the
// "shield<X>" composites (flavor still selects the BASE protocol; the
// shield's own policy comes from RESILOCK_SHIELD_POLICY).
template <typename T>
using Identity = T;

// Registry-made shields carry their registry name as the lockdep class
// label, so order-cycle reports read "shield<MCS>#12 -> shield<MCS>#13"
// instead of bare class numbers. `name` is a string literal captured by
// the factory — stable for the process lifetime, as the label requires.
template <typename Adapter>
std::unique_ptr<Adapter> label_for_lockdep(std::unique_ptr<Adapter> a,
                                           const char* name) {
  if constexpr (requires { a->underlying().set_lockdep_label(name); }) {
    a->underlying().set_lockdep_label(name);
  }
  return a;
}

template <template <Resilience> class LockT,
          template <typename> class Wrap = Identity>
Factory simple_factory(const char* name) {
  return [name](Resilience r,
                const platform::Topology&) -> std::unique_ptr<AnyLock> {
    if (r == kOriginal) {
      return label_for_lockdep(
          std::make_unique<AnyLockAdapter<Wrap<LockT<kOriginal>>>>(name),
          name);
    }
    return label_for_lockdep(
        std::make_unique<AnyLockAdapter<Wrap<LockT<kResilient>>>>(name),
        name);
  };
}

template <template <Resilience> class LockT,
          template <typename> class Wrap = Identity>
Factory topo_factory(const char* name) {
  return [name](Resilience r, const platform::Topology& topo)
             -> std::unique_ptr<AnyLock> {
    if (r == kOriginal) {
      return label_for_lockdep(
          std::make_unique<AnyLockAdapter<Wrap<LockT<kOriginal>>>>(name,
                                                                   topo),
          name);
    }
    return label_for_lockdep(
        std::make_unique<AnyLockAdapter<Wrap<LockT<kResilient>>>>(name,
                                                                  topo),
        name);
  };
}

template <Resilience R>
using TasSwap = BasicTasLock<R, TasVariant::kTas>;
template <Resilience R>
using TasTatas = BasicTasLock<R, TasVariant::kTatas>;
template <Resilience R>
using TasBackoff = BasicTasLock<R, TasVariant::kBackoff>;

const std::map<std::string, Factory, std::less<>>& registry() {
  static const std::map<std::string, Factory, std::less<>> r = {
      {"TAS", simple_factory<TasTatas>("TAS")},
      {"TAS_SWAP", simple_factory<TasSwap>("TAS_SWAP")},
      {"TAS_BO", simple_factory<TasBackoff>("TAS_BO")},
      {"Ticket", simple_factory<BasicTicketLock>("Ticket")},
      {"PTKT", simple_factory<BasicPartitionedTicketLock>("PTKT")},
      {"ABQL", simple_factory<BasicAndersonLock>("ABQL")},
      {"GT", simple_factory<BasicGraunkeThakkarLock>("GT")},
      {"MCS", simple_factory<BasicMcsLock>("MCS")},
      {"CLH", simple_factory<BasicClhLock>("CLH")},
      {"MCS_K42", simple_factory<BasicMcsK42Lock>("MCS_K42")},
      {"Hemlock", simple_factory<BasicHemlock>("Hemlock")},
      {"HMCS", topo_factory<BasicHmcsLock>("HMCS")},
      {"AHMCS", topo_factory<BasicAhmcsLock>("AHMCS")},
      {"HCLH", topo_factory<BasicHclhLock>("HCLH")},
      {"HBO", topo_factory<BasicHboLock>("HBO")},
      {"C-BO-BO", topo_factory<CBoBoLock>("C-BO-BO")},
      {"C-TKT-TKT", topo_factory<CTktTktLock>("C-TKT-TKT")},
      {"C-MCS-MCS", topo_factory<CMcsMcsLock>("C-MCS-MCS")},
      {"C-TKT-MCS", topo_factory<CTktMcsLock>("C-TKT-MCS")},
      {"C-PTKT-TKT", topo_factory<CPtktTktLock>("C-PTKT-TKT")},
      // Ownership-shield composites (src/shield/): shield<X> is X behind
      // the generic misuse shield. Every base algorithm is covered so
      // locks with no bespoke resilient variant still get protection.
      {"shield<TAS>", simple_factory<TasTatas, Shield>("shield<TAS>")},
      {"shield<TAS_SWAP>",
       simple_factory<TasSwap, Shield>("shield<TAS_SWAP>")},
      {"shield<TAS_BO>",
       simple_factory<TasBackoff, Shield>("shield<TAS_BO>")},
      {"shield<Ticket>",
       simple_factory<BasicTicketLock, Shield>("shield<Ticket>")},
      {"shield<PTKT>",
       simple_factory<BasicPartitionedTicketLock, Shield>("shield<PTKT>")},
      {"shield<ABQL>",
       simple_factory<BasicAndersonLock, Shield>("shield<ABQL>")},
      {"shield<GT>",
       simple_factory<BasicGraunkeThakkarLock, Shield>("shield<GT>")},
      {"shield<MCS>", simple_factory<BasicMcsLock, Shield>("shield<MCS>")},
      {"shield<CLH>", simple_factory<BasicClhLock, Shield>("shield<CLH>")},
      {"shield<MCS_K42>",
       simple_factory<BasicMcsK42Lock, Shield>("shield<MCS_K42>")},
      {"shield<Hemlock>",
       simple_factory<BasicHemlock, Shield>("shield<Hemlock>")},
      {"shield<HMCS>", topo_factory<BasicHmcsLock, Shield>("shield<HMCS>")},
      {"shield<AHMCS>", topo_factory<BasicAhmcsLock, Shield>("shield<AHMCS>")},
      {"shield<HCLH>", topo_factory<BasicHclhLock, Shield>("shield<HCLH>")},
      {"shield<HBO>", topo_factory<BasicHboLock, Shield>("shield<HBO>")},
      {"shield<C-BO-BO>", topo_factory<CBoBoLock, Shield>("shield<C-BO-BO>")},
      {"shield<C-TKT-TKT>",
       topo_factory<CTktTktLock, Shield>("shield<C-TKT-TKT>")},
      {"shield<C-MCS-MCS>",
       topo_factory<CMcsMcsLock, Shield>("shield<C-MCS-MCS>")},
      {"shield<C-TKT-MCS>",
       topo_factory<CTktMcsLock, Shield>("shield<C-TKT-MCS>")},
      {"shield<C-PTKT-TKT>",
       topo_factory<CPtktTktLock, Shield>("shield<C-PTKT-TKT>")},
  };
  return r;
}

}  // namespace

const std::vector<std::string>& lock_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const auto& [name, _] : registry()) v.push_back(name);
    return v;
  }();
  return names;
}

const std::vector<std::string>& base_lock_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const auto& name : lock_names()) {
      if (!is_shielded_name(name)) v.push_back(name);
    }
    return v;
  }();
  return names;
}

const std::vector<std::string>& table2_lock_names() {
  static const std::vector<std::string> names = {"TAS",  "Ticket", "ABQL",
                                                 "MCS",  "CLH",    "HMCS"};
  return names;
}

bool is_lock_name(std::string_view name) {
  return registry().find(name) != registry().end();
}

std::unique_ptr<AnyLock> make_lock(std::string_view name, Resilience r,
                                   const platform::Topology& topo) {
  auto it = registry().find(name);
  if (it == registry().end()) {
    throw std::out_of_range("resilock: unknown lock algorithm: " +
                            std::string(name));
  }
  return it->second(r, topo);
}

std::string shielded_name(std::string_view base) {
  std::string s;
  s.reserve(base.size() + 8);
  s += "shield<";
  s += base;
  s += '>';
  return s;
}

bool is_shielded_name(std::string_view name) {
  return !shield_base_name(name).empty();
}

std::string_view shield_base_name(std::string_view name) {
  constexpr std::string_view prefix = "shield<";
  if (name.size() > prefix.size() + 1 && name.substr(0, prefix.size()) == prefix &&
      name.back() == '>') {
    return name.substr(prefix.size(), name.size() - prefix.size() - 1);
  }
  return {};
}

}  // namespace resilock
