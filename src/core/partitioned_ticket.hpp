// Partitioned ticket lock (Dice, SPAA 2011 brief announcement).
// Substrate for the C-RW-NP reader-writer lock (paper §4), whose cohort
// lock is C-PTK-TKT: a *global partitioned ticket lock* over node-level
// ticket locks.
//
// A ticket lock whose grant variable is partitioned over a small array of
// cache lines: waiter t spins on grants[t mod S], so at most (waiters/S)
// threads share a spin line instead of all of them. The holder's ticket
// is stored in the lock (not in the thread), which gives the lock the
// thread-oblivious release that a cohort global lock must have
// (Dice et al. 2012, property (a)).
//
// Misuse behavior and remedy are those of the ticket lock (§3.2): the
// resilient flavor adds the PID field checked at release.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "core/resilience.hpp"
#include "core/verify_access.hpp"
#include "platform/cacheline.hpp"
#include "platform/spin.hpp"
#include "platform/thread_registry.hpp"

namespace resilock {

template <Resilience R>
class BasicPartitionedTicketLock {
  static constexpr std::uint32_t kNoOwner = 0;

 public:
  explicit BasicPartitionedTicketLock(std::uint32_t partitions = 16)
      : mask_(round_up_pow2(partitions) - 1),
        grants_(std::make_unique<
                platform::CacheLineAligned<std::atomic<std::uint64_t>>[]>(
            mask_ + 1)) {
    for (std::uint32_t i = 0; i <= mask_; ++i)
      grants_[i].value.store(0, std::memory_order_relaxed);
    // Ticket 0 proceeds immediately: grants[0] == 0 already.
  }

  BasicPartitionedTicketLock(const BasicPartitionedTicketLock&) = delete;
  BasicPartitionedTicketLock& operator=(const BasicPartitionedTicketLock&) =
      delete;

  void acquire() {
    const std::uint64_t t = next_ticket_.fetch_add(1,
                                                   std::memory_order_relaxed);
    auto& slot = grants_[t & mask_].value;
    platform::SpinWait w;
    while (slot.load(std::memory_order_acquire) != t) w.pause();
    // The holder's ticket lives in the lock so any thread may release
    // (cohort property (a)); only the holder writes it.
    holder_ticket_.store(t, std::memory_order_relaxed);
    if constexpr (R == kResilient) {
      owner_.store(platform::self_pid() + 1, std::memory_order_relaxed);
    }
  }

  // A ticket is claimable without waiting only while its grant slot
  // already shows it being served: CAS the dispenser forward iff the
  // next ticket would be granted immediately. A lost CAS means another
  // thread took that ticket first — EBUSY, faithfully.
  bool try_acquire() {
    std::uint64_t t = next_ticket_.load(std::memory_order_acquire);
    if (grants_[t & mask_].value.load(std::memory_order_acquire) != t) {
      return false;
    }
    if (!next_ticket_.compare_exchange_strong(t, t + 1,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed)) {
      return false;
    }
    holder_ticket_.store(t, std::memory_order_relaxed);
    if constexpr (R == kResilient) {
      owner_.store(platform::self_pid() + 1, std::memory_order_relaxed);
    }
    return true;
  }

  bool release() {
    if constexpr (R == kResilient) {
      if (misuse_checks_enabled() &&
          owner_.load(std::memory_order_relaxed) !=
              platform::self_pid() + 1) {
        return false;
      }
      owner_.store(kNoOwner, std::memory_order_relaxed);
    }
    return release_thread_oblivious();
  }

  // Release without the ownership check: used by the cohort combinator,
  // where the releasing thread legitimately differs from the acquirer.
  bool release_thread_oblivious() {
    const std::uint64_t t = holder_ticket_.load(std::memory_order_relaxed);
    grants_[(t + 1) & mask_].value.store(t + 1, std::memory_order_release);
    return true;
  }

  bool has_waiters() const {
    return next_ticket_.load(std::memory_order_relaxed) >
           holder_ticket_.load(std::memory_order_relaxed) + 1;
  }

  static constexpr Resilience resilience() { return R; }

 private:
  friend struct VerifyAccess;

  static std::uint32_t round_up_pow2(std::uint32_t v) {
    std::uint32_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  struct Empty {};
  alignas(platform::kCacheLineSize) std::atomic<std::uint64_t> next_ticket_{0};
  alignas(platform::kCacheLineSize) std::atomic<std::uint64_t>
      holder_ticket_{~std::uint64_t{0}};
  const std::uint32_t mask_;
  std::unique_ptr<platform::CacheLineAligned<std::atomic<std::uint64_t>>[]>
      grants_;
  [[no_unique_address]] std::conditional_t<R == kResilient,
                                           std::atomic<std::uint32_t>, Empty>
      owner_{};
};

using PartitionedTicketLock = BasicPartitionedTicketLock<kOriginal>;
using PartitionedTicketLockResilient = BasicPartitionedTicketLock<kResilient>;

}  // namespace resilock
