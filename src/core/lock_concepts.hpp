// Lock API concepts and RAII guards.
//
// Two families of locks exist in this library, mirroring the paper:
//
//  * PlainLock    — acquire()/release() with no per-thread state
//                   (TAS, Ticket, Hemlock, MCS-K42, HBO, ...).
//  * ContextLock  — acquire(Context&)/release(Context&); the context is
//                   the per-thread state carried from acquire to release
//                   (MCS qnode, CLH node, ABQL place, HMCS qnode, ...).
//
// Per the paper (§3), contexts are passed by lvalue reference — never by
// pointer — so a rogue or null context cannot be handed to release().
// Every release() returns bool: false iff the call was detected as an
// unbalanced unlock and suppressed (only resilient flavors detect).
#pragma once

#include <concepts>
#include <utility>

namespace resilock {

template <typename L>
concept PlainLock = requires(L l) {
  l.acquire();
  { l.release() } -> std::same_as<bool>;
};

template <typename L>
concept ContextLock = requires(L l, typename L::Context& c) {
  typename L::Context;
  l.acquire(c);
  { l.release(c) } -> std::same_as<bool>;
};

// Anything the library can drive generically: either family.
template <typename L>
concept Lockable = PlainLock<L> || ContextLock<L>;

template <typename L>
concept TryLockable = requires(L l) {
  { l.try_acquire() } -> std::same_as<bool>;
};

template <typename L>
concept TryContextLockable = requires(L l, typename L::Context& c) {
  { l.try_acquire(c) } -> std::same_as<bool>;
};

// RAII guard for PlainLock.
template <PlainLock L>
class LockGuard {
 public:
  explicit LockGuard(L& lock) : lock_(lock) { lock_.acquire(); }
  ~LockGuard() { lock_.release(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  L& lock_;
};

// RAII guard for ContextLock; the caller owns the context.
template <ContextLock L>
class CtxGuard {
 public:
  CtxGuard(L& lock, typename L::Context& ctx) : lock_(lock), ctx_(ctx) {
    lock_.acquire(ctx_);
  }
  ~CtxGuard() { lock_.release(ctx_); }
  CtxGuard(const CtxGuard&) = delete;
  CtxGuard& operator=(const CtxGuard&) = delete;

 private:
  L& lock_;
  typename L::Context& ctx_;
};

}  // namespace resilock
