// Type-erased lock with per-thread context management.
//
// This is the in-process equivalent of what LiTL (Guiroux 2018) does via
// LD_PRELOAD interposition (paper §6): application code sees one mutex
// shape; the algorithm behind it is chosen at runtime by name. Context-
// carrying locks (MCS, CLH, ABQL, HMCS, ...) get a lazily allocated
// per-thread context per lock instance, exactly as LiTL keeps per-thread
// qnode tables.
#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "core/generic.hpp"
#include "core/resilience.hpp"
#include "platform/thread_registry.hpp"

namespace resilock {

// Lazily allocated per-pid slot table.
template <typename T>
class PerPid {
 public:
  PerPid() {
    for (auto& s : slots_) s.store(nullptr, std::memory_order_relaxed);
  }
  ~PerPid() {
    for (auto& s : slots_) delete s.load(std::memory_order_relaxed);
  }
  PerPid(const PerPid&) = delete;
  PerPid& operator=(const PerPid&) = delete;

  T& mine() {
    auto& slot = slots_[platform::self_pid()];
    T* p = slot.load(std::memory_order_acquire);
    if (p == nullptr) {
      p = new T();
      T* expected = nullptr;
      if (!slot.compare_exchange_strong(expected, p,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        delete p;  // pid slots are recycled; someone else installed one
        p = expected;
      }
    }
    return *p;
  }

 private:
  std::atomic<T*> slots_[platform::ThreadRegistry::kCapacity];
};

class AnyLock {
 public:
  virtual ~AnyLock() = default;

  virtual void acquire() = 0;
  // False iff an unbalanced unlock was detected and suppressed.
  virtual bool release() = 0;
  // Falls back to a blocking acquire for algorithms without a native
  // trylock; supports_trylock() reports which one you got.
  virtual bool try_acquire() = 0;
  virtual bool supports_trylock() const = 0;

  virtual const std::string& name() const = 0;
  virtual Resilience resilience() const = 0;

  // Total misuses the wrapped lock has detected so far, when the lock
  // keeps a tally (Shield counters, StatsLock); 0 for bare protocols.
  // Lets interposed programs print detection telemetry without knowing
  // which wrapper (if any) backs the mutex.
  virtual std::uint64_t misuse_total() const { return 0; }

  // Live contention telemetry (core/contention.hpp), when the wrapped
  // lock carries a probe (Shield, StatsLock); 0 for bare protocols.
  // The response engine escalates verdicts on these signals; exposing
  // them here lets harness/verify code observe the same numbers the
  // engine sees, whatever wrapper backs the mutex.
  virtual std::uint32_t waiters() const { return 0; }
  virtual std::uint64_t contended_total() const { return 0; }
};

template <typename L>
class AnyLockAdapter final : public AnyLock {
 public:
  template <typename... Args>
  explicit AnyLockAdapter(std::string name, Args&&... args)
      : name_(std::move(name)), lock_(std::forward<Args>(args)...) {}

  void acquire() override { generic_acquire(lock_, contexts_.mine()); }

  bool release() override { return generic_release(lock_, contexts_.mine()); }

  bool try_acquire() override {
    if constexpr (generic_has_trylock<L>()) {
      return generic_try_acquire(lock_, contexts_.mine());
    } else {
      generic_acquire(lock_, contexts_.mine());
      return true;
    }
  }

  bool supports_trylock() const override {
    return generic_has_trylock<L>();
  }

  std::uint64_t misuse_total() const override {
    if constexpr (requires { lock_.snapshot().total_misuses(); }) {
      return lock_.snapshot().total_misuses();  // Shield counters
    } else if constexpr (requires { lock_.snapshot().detected_misuses; }) {
      return lock_.snapshot().detected_misuses;  // StatsLock counters
    } else {
      return 0;
    }
  }

  std::uint32_t waiters() const override {
    if constexpr (requires { lock_.waiters(); }) {
      return lock_.waiters();
    } else {
      return 0;
    }
  }

  std::uint64_t contended_total() const override {
    if constexpr (requires { lock_.contended_total(); }) {
      return lock_.contended_total();
    } else if constexpr (requires { lock_.snapshot().contended_acquisitions; }) {
      return lock_.snapshot().contended_acquisitions;
    } else {
      return 0;
    }
  }

  const std::string& name() const override { return name_; }
  Resilience resilience() const override { return L::resilience(); }

  L& underlying() { return lock_; }

 private:
  const std::string name_;
  L lock_;
  PerPid<context_of_t<L>> contexts_;
};

}  // namespace resilock
