// HMCS: hierarchical MCS lock (Chabbi, Fagan & Mellor-Crummey, PPoPP'15).
// Paper §3.8.1.
//
// A tree of MCS-style locks mirrors the machine's memory hierarchy (one
// leaf per NUMA domain here, one root). A thread competes at its leaf; a
// leaf queue head competes at the parent with the leaf's embedded qnode.
// The holder's release passes the lock within its leaf cohort up to
// `threshold` consecutive times (the qnode status doubles as the passing
// count); after that — or when no cohort successor exists — it releases
// the parent level first and grants its leaf successor kAcquireParent,
// telling it to go compete at the parent itself.
//
// Unbalanced-unlock behavior (original): all of MCS's §3.4 issues, at
// every level — a misused release walks up the tree and can release the
// parent-level lock out from under the legitimate cohort leader (mutex
// violation), and the misbehaving thread ends up spinning for a successor
// that never links itself (Tm starvation).
//
// Resilient fix (paper §3.8.1): only the leaf needs the MCS remedy,
// because every release starts at the leaf: mark the context "acquired"
// when the acquisition protocol completes, check and clear it in
// release(). The AHMCS refinement keeps per-thread qnodes too, so the
// same remedy applies (§3.8.1).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/resilience.hpp"
#include "core/verify_access.hpp"
#include "platform/cacheline.hpp"
#include "platform/spin.hpp"
#include "platform/thread_registry.hpp"
#include "platform/topology.hpp"

namespace resilock {

template <Resilience R>
class BasicAhmcsLock;

template <Resilience R>
class BasicHmcsLock {
 public:
  // Grant-status protocol values (Chabbi et al. 2015).
  static constexpr std::uint64_t kWait = ~std::uint64_t{0};
  static constexpr std::uint64_t kAcquireParent = ~std::uint64_t{0} - 1;
  static constexpr std::uint64_t kCohortStart = 1;

  struct alignas(platform::kCacheLineSize) QNode {
    std::atomic<QNode*> next{nullptr};
    std::atomic<std::uint64_t> status{0};
  };

  class Context {
   public:
    Context() = default;
    Context(const Context&) = delete;
    Context& operator=(const Context&) = delete;

   private:
    friend class BasicHmcsLock;
    friend struct VerifyAccess;
    QNode node_;
    bool acquired_ = false;  // the resilient "I.locked" marker
  };

  // Two-level tree mirroring the topology: one leaf per NUMA domain
  // under a single root (the paper's evaluation shape).
  explicit BasicHmcsLock(
      const platform::Topology& topo = platform::Topology::host_default(),
      std::uint64_t passing_threshold = 64)
      : topo_(topo), map_by_domain_(true) {
    HNode* root = new_node(nullptr, passing_threshold);
    for (std::uint32_t d = 0; d < topo.num_domains(); ++d) {
      leaves_.push_back(new_node(root, passing_threshold));
    }
  }

  // Arbitrary-depth tree: `fanouts` gives the child count per level from
  // the root down (e.g. {2, 3} = root -> 2 mid nodes -> 6 leaves),
  // modeling deeper memory hierarchies (socket / die / core cluster).
  // Threads map to leaves by pid modulo leaf count.
  explicit BasicHmcsLock(const std::vector<std::uint32_t>& fanouts,
                         std::uint64_t passing_threshold = 64)
      : topo_(platform::Topology::uniform(1, 1)), map_by_domain_(false) {
    std::vector<HNode*> frontier = {new_node(nullptr, passing_threshold)};
    for (const std::uint32_t fanout : fanouts) {
      std::vector<HNode*> next;
      next.reserve(frontier.size() * (fanout ? fanout : 1));
      for (HNode* parent : frontier) {
        for (std::uint32_t c = 0; c < (fanout ? fanout : 1); ++c) {
          next.push_back(new_node(parent, passing_threshold));
        }
      }
      frontier = std::move(next);
    }
    leaves_ = std::move(frontier);  // deepest level (== root if empty)
  }

  BasicHmcsLock(const BasicHmcsLock&) = delete;
  BasicHmcsLock& operator=(const BasicHmcsLock&) = delete;

  void acquire(Context& ctx) {
    acquire_at(leaf_of_self(), &ctx.node_);
    if constexpr (R == kResilient) ctx.acquired_ = true;
  }

  bool release(Context& ctx) {
    if constexpr (R == kResilient) {
      if (misuse_checks_enabled() && !ctx.acquired_) return false;
      ctx.acquired_ = false;
    }
    release_at(leaf_of_self(), &ctx.node_);
    return true;
  }

  std::uint32_t num_leaves() const {
    return static_cast<std::uint32_t>(leaves_.size());
  }
  static constexpr Resilience resilience() { return R; }

 private:
  friend struct VerifyAccess;
  template <Resilience>
  friend class BasicAhmcsLock;  // adaptive entry at chosen levels

  struct alignas(platform::kCacheLineSize) HNode {
    std::atomic<QNode*> tail{nullptr};
    QNode node;  // used by this level's queue head to compete at parent
    HNode* parent{nullptr};
    std::uint64_t threshold{64};
  };

  HNode* new_node(HNode* parent, std::uint64_t threshold) {
    nodes_.push_back(std::make_unique<HNode>());
    HNode* n = nodes_.back().get();
    n->parent = parent;
    n->threshold = threshold;
    return n;
  }

  HNode* leaf_of_self() const {
    const platform::pid_t pid = platform::self_pid();
    return map_by_domain_
               ? leaves_[topo_.domain_of(pid)]
               : leaves_[pid % leaves_.size()];
  }

  // Returns true iff the acquisition was uncontended at this level and
  // every ancestor (the signal the adaptive AHMCS refinement feeds on).
  bool acquire_at(HNode* level, QNode* I) {
    I->next.store(nullptr, std::memory_order_relaxed);
    I->status.store(kWait, std::memory_order_relaxed);
    QNode* const pred = level->tail.exchange(I, std::memory_order_acq_rel);
    if (pred == nullptr) {
      // Head of this level's queue: compete at the parent (or, at the
      // root, the lock is ours).
      I->status.store(kCohortStart, std::memory_order_relaxed);
      if (level->parent != nullptr) {
        return acquire_at(level->parent, &level->node);
      }
      return true;
    }
    pred->next.store(I, std::memory_order_release);
    platform::SpinWait w;
    std::uint64_t st;
    while ((st = I->status.load(std::memory_order_acquire)) == kWait)
      w.pause();
    if (st == kAcquireParent) {
      // Predecessor exhausted the cohort-passing budget: we own this
      // level but must compete at the parent ourselves.
      I->status.store(kCohortStart, std::memory_order_relaxed);
      acquire_at(level->parent, &level->node);
    }
    // else: st is a passing count — the lock and all ancestors were
    // handed to us implicitly.
    return false;  // we waited: contended
  }

  void release_at(HNode* level, QNode* I) {
    if (level->parent == nullptr) {
      // Root: plain MCS release; the grant value just has to differ from
      // kWait and kAcquireParent.
      release_mcs_style(level, I, kCohortStart);
      return;
    }
    const std::uint64_t cur = I->status.load(std::memory_order_relaxed);
    if (cur < level->threshold) {
      QNode* const succ = I->next.load(std::memory_order_acquire);
      if (succ != nullptr) {
        // Pass within the cohort; the successor inherits all ancestors.
        succ->status.store(cur + 1, std::memory_order_release);
        return;
      }
    }
    // Threshold reached or no cohort successor: give the ancestors back,
    // then tell any successor at this level to re-compete upward.
    release_at(level->parent, &level->node);
    release_mcs_style(level, I, kAcquireParent);
  }

  void release_mcs_style(HNode* level, QNode* I, std::uint64_t grant) {
    QNode* succ = I->next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      QNode* expected = I;
      if (level->tail.compare_exchange_strong(expected, nullptr,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed)) {
        return;
      }
      platform::SpinWait w;
      while ((succ = I->next.load(std::memory_order_acquire)) == nullptr)
        w.pause();
    }
    succ->status.store(grant, std::memory_order_release);
  }

  platform::Topology topo_;  // by value: 8 bytes, no lifetime coupling
  const bool map_by_domain_;
  std::vector<std::unique_ptr<HNode>> nodes_;  // whole tree, root first
  std::vector<HNode*> leaves_;
};

using HmcsLock = BasicHmcsLock<kOriginal>;
using HmcsLockResilient = BasicHmcsLock<kResilient>;

}  // namespace resilock
