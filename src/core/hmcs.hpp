// HMCS: hierarchical MCS lock (Chabbi, Fagan & Mellor-Crummey, PPoPP'15).
// Paper §3.8.1.
//
// A tree of MCS-style locks mirrors the machine's memory hierarchy (one
// leaf per NUMA domain here, one root). A thread competes at its leaf; a
// leaf queue head competes at the parent with the leaf's embedded qnode.
// The holder's release passes the lock within its leaf cohort up to
// `threshold` consecutive times (the qnode status doubles as the passing
// count); after that — or when no cohort successor exists — it releases
// the parent level first and grants its leaf successor kAcquireParent,
// telling it to go compete at the parent itself.
//
// Unbalanced-unlock behavior (original): all of MCS's §3.4 issues, at
// every level — a misused release walks up the tree and can release the
// parent-level lock out from under the legitimate cohort leader (mutex
// violation), and the misbehaving thread ends up spinning for a successor
// that never links itself (Tm starvation).
//
// Resilient fix (paper §3.8.1): only the leaf needs the MCS remedy,
// because every release starts at the leaf: mark the context "acquired"
// when the acquisition protocol completes, check and clear it in
// release(). The AHMCS refinement keeps per-thread qnodes too, so the
// same remedy applies (§3.8.1).
//
// Parking (src/park/): only the ENTRY level parks — a thread that
// loses the bounded spin at its leaf flips its qnode's 32-bit `park`
// word and futex_waits on it; the granter publishes `status` first,
// then (behind a seq_cst Dekker fence) wakes any parked successor.
// Internal climbs (a level's embedded qnode competing at the parent)
// stay pure spins: the queue head holds a whole level hostage, and a
// descheduled head is exactly the pathology the leaf-level parking
// already bounds. The tree carries one ParkBay so a refused misuse
// can broadcast-rescue parked leaf waiters.
//
// Lockdep attribution: every tree owns one shared LockClassKey per
// LEVEL ("hmcs.level0" = root downwards; the nodes of a level share the
// level's class slot), registered lazily on first tracked acquire. The
// acquisition protocol emits on_acquire_attempt/on_acquired at each
// level transition — including the implicit grants, where a cohort
// hand-off or passing count hands a thread every ancestor level without
// a blocking attempt — so app code acquiring other locks while an HMCS
// tree is held gets its order edges attributed to the level, and a
// same-level AB/BA across two trees is reported against "hmcs.levelK",
// not an anonymous pointer. The internal child→parent climb is
// edge-free: every attempt passes the tree's own level classes as the
// skip set (the arbitrary-depth generalization of cohort's skip_src),
// because the climb order is the protocol's invariant, not an
// app-level fact. A refused misused release is likewise attributed to
// the entry-level class and routed through the response engine, which
// is what lets @class=-scoped rules target the level where the damage
// would have happened.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/resilience.hpp"
#include "core/verify_access.hpp"
#include "lockdep/class_key.hpp"
#include "lockdep/event_ring.hpp"
#include "park/parking_lot.hpp"
#include "platform/cacheline.hpp"
#include "platform/spin.hpp"
#include "platform/thread_registry.hpp"
#include "platform/topology.hpp"
#include "response/response.hpp"
#include "runtime/timer.hpp"

namespace resilock {

template <Resilience R>
class BasicAhmcsLock;

// Per-level class labels, root first. Trees deeper than the table share
// the last slot's key (one class for "level 7 and below" — far beyond
// any real memory hierarchy).
inline constexpr const char* kHmcsLevelLabels[] = {
    "hmcs.level0", "hmcs.level1", "hmcs.level2", "hmcs.level3",
    "hmcs.level4", "hmcs.level5", "hmcs.level6", "hmcs.level7"};
// The AHMCS refinement drives the same tree but is its own protocol
// family for attribution purposes (reports and @class= scopes should
// name what the application instantiated).
inline constexpr const char* kAhmcsLevelLabels[] = {
    "ahmcs.level0", "ahmcs.level1", "ahmcs.level2", "ahmcs.level3",
    "ahmcs.level4", "ahmcs.level5", "ahmcs.level6", "ahmcs.level7"};

template <Resilience R>
class BasicHmcsLock {
 public:
  // Grant-status protocol values (Chabbi et al. 2015).
  static constexpr std::uint64_t kWait = ~std::uint64_t{0};
  static constexpr std::uint64_t kAcquireParent = ~std::uint64_t{0} - 1;
  static constexpr std::uint64_t kCohortStart = 1;

  struct alignas(platform::kCacheLineSize) QNode {
    std::atomic<QNode*> next{nullptr};
    std::atomic<std::uint64_t> status{0};
    // Parking word (status is 64-bit, unfutexable): kWordParked while
    // the owner sleeps in futex_wait, kWordGranted otherwise.
    std::atomic<std::uint32_t> park{park::kWordGranted};
  };

  class Context {
   public:
    Context() = default;
    Context(const Context&) = delete;
    Context& operator=(const Context&) = delete;

   private:
    friend class BasicHmcsLock;
    friend struct VerifyAccess;
    QNode node_;
    bool acquired_ = false;  // the resilient "I.locked" marker
  };

  // Trees deeper than this fold their tail levels into one shared
  // class (matches the label tables above).
  static constexpr std::uint32_t kMaxTrackedLevels = 8;
  static_assert(sizeof(kHmcsLevelLabels) / sizeof(const char*) ==
                    kMaxTrackedLevels &&
                sizeof(kAhmcsLevelLabels) / sizeof(const char*) ==
                    kMaxTrackedLevels);

  // Two-level tree mirroring the topology: one leaf per NUMA domain
  // under a single root (the paper's evaluation shape).
  explicit BasicHmcsLock(
      const platform::Topology& topo = platform::Topology::host_default(),
      std::uint64_t passing_threshold = 64)
      : topo_(topo), map_by_domain_(true) {
    HNode* root = new_node(nullptr, passing_threshold);
    for (std::uint32_t d = 0; d < topo.num_domains(); ++d) {
      leaves_.push_back(new_node(root, passing_threshold));
    }
    init_level_keys(2);
  }

  // Arbitrary-depth tree: `fanouts` gives the child count per level from
  // the root down (e.g. {2, 3} = root -> 2 mid nodes -> 6 leaves),
  // modeling deeper memory hierarchies (socket / die / core cluster).
  // Threads map to leaves by pid modulo leaf count.
  explicit BasicHmcsLock(const std::vector<std::uint32_t>& fanouts,
                         std::uint64_t passing_threshold = 64)
      : topo_(platform::Topology::uniform(1, 1)), map_by_domain_(false) {
    std::vector<HNode*> frontier = {new_node(nullptr, passing_threshold)};
    for (const std::uint32_t fanout : fanouts) {
      std::vector<HNode*> next;
      next.reserve(frontier.size() * (fanout ? fanout : 1));
      for (HNode* parent : frontier) {
        for (std::uint32_t c = 0; c < (fanout ? fanout : 1); ++c) {
          next.push_back(new_node(parent, passing_threshold));
        }
      }
      frontier = std::move(next);
    }
    leaves_ = std::move(frontier);  // deepest level (== root if empty)
    init_level_keys(static_cast<std::uint32_t>(fanouts.size()) + 1);
  }

  BasicHmcsLock(const BasicHmcsLock&) = delete;
  BasicHmcsLock& operator=(const BasicHmcsLock&) = delete;

  ~BasicHmcsLock() {
    // The level keys are owned by the tree (unlike static app-declared
    // keys); destruction returns their shared class slots.
    for (std::uint32_t i = 0; i < tracked_levels_; ++i) {
      level_keys_[i].retire();
    }
  }

  void acquire(Context& ctx) {
    acquire_at(leaf_of_self(), &ctx.node_, /*can_park=*/true);
    if constexpr (R == kResilient) ctx.acquired_ = true;
  }

  // Shield rescue hook; see BasicMcsLock::misuse_wake. Also invoked
  // internally when the bespoke resilient check refuses a release.
  void misuse_wake() noexcept { bay_.misuse_wake(); }

  std::uint32_t parked_waiters() const noexcept {
    return bay_.parked_count();
  }

  bool release(Context& ctx) {
    HNode* const leaf = leaf_of_self();
    if constexpr (R == kResilient) {
      if (misuse_checks_enabled() && !ctx.acquired_) {
        // Intercepted BEFORE release_at can walk up and free a parent
        // level out from under the legitimate cohort leader — and
        // attributed to the entry level's class, so per-class response
        // rules can target misuse at this depth. A passthrough verdict
        // falls through and corrupts faithfully, like the original.
        if (misuse_refused(leaf)) return false;
      }
      ctx.acquired_ = false;
    }
    pop_level_entries(leaf);
    release_at(leaf, &ctx.node_);
    return true;
  }

  std::uint32_t num_leaves() const {
    return static_cast<std::uint32_t>(leaves_.size());
  }

  // Tree depth in levels (root == level 0); capped at
  // kMaxTrackedLevels for class-key purposes.
  std::uint32_t tracked_levels() const { return tracked_levels_; }

  // The shared lockdep class of one tree level; kInvalidClass before
  // the level's first tracked acquisition. Verify/test surface.
  lockdep::ClassId level_class(std::uint32_t level) const {
    return level_keys_[key_index(level)].id();
  }

  static constexpr Resilience resilience() { return R; }

 private:
  friend struct VerifyAccess;
  template <Resilience>
  friend class BasicAhmcsLock;  // adaptive entry at chosen levels

  struct alignas(platform::kCacheLineSize) HNode {
    std::atomic<QNode*> tail{nullptr};
    QNode node;  // used by this level's queue head to compete at parent
    HNode* parent{nullptr};
    std::uint64_t threshold{64};
    std::uint32_t level{0};  // root == 0, leaves deepest
  };

  HNode* new_node(HNode* parent, std::uint64_t threshold) {
    nodes_.push_back(std::make_unique<HNode>());
    HNode* n = nodes_.back().get();
    n->parent = parent;
    n->threshold = threshold;
    n->level = parent != nullptr ? parent->level + 1 : 0;
    return n;
  }

  void init_level_keys(std::uint32_t depth) {
    tracked_levels_ = std::min(depth, kMaxTrackedLevels);
    level_keys_ =
        std::make_unique<lockdep::LockClassKey[]>(tracked_levels_);
  }

  std::uint32_t key_index(std::uint32_t level) const {
    return std::min(level, tracked_levels_ - 1);
  }

  // The level's shared class, registering it (under the family's label)
  // on first use.
  lockdep::ClassId ensure_level_class(const HNode* n) {
    const std::uint32_t i = key_index(n->level);
    return level_keys_[i].ensure(level_labels_[i]);
  }

  // Already-registered level classes of THIS tree — the skip set that
  // keeps the internal child→parent climb edge-free.
  std::size_t own_level_classes(lockdep::ClassId* out) const {
    std::size_t n = 0;
    for (std::uint32_t i = 0; i < tracked_levels_; ++i) {
      const lockdep::ClassId id = level_keys_[i].id();
      if (lockdep::class_tracked(id)) out[n++] = id;
    }
    return n;
  }

  // Order edges from app-held locks to this level, with the tree's own
  // levels excluded (the climb is the protocol's invariant).
  void hier_attempt(HNode* level) {
    // Single-lock hot path: an empty acquisition stack records no
    // edges, so skip the class ensure and the skip-set scan entirely
    // (the on_acquired that follows registers the class regardless).
    // Mirrors RwShield::lockdep_attempt.
    if (lockdep::AcqStack::mine().depth() == 0) return;
    const lockdep::ClassId cls = ensure_level_class(level);
    lockdep::ClassId skip[kMaxTrackedLevels];
    const std::size_t n = own_level_classes(skip);
    lockdep::on_acquire_attempt(level, cls, 0, false,
                                AccessMode::kExclusive, skip, n);
  }

  // The caller ceases to hold EVERY level on its path whether the
  // release passes within the cohort or walks up — the successor
  // inherits the ancestors either way (not gated on lockdep_enabled():
  // entries pushed while tracking was on must come off regardless).
  void pop_level_entries(HNode* from) {
    for (HNode* n = from; n != nullptr; n = n->parent) {
      lockdep::on_released(n);
    }
  }

  // A refused release, attributed to `entry`'s level class and routed
  // through the response engine (fallback: suppress — the bespoke
  // remedy's native behavior). Returns false only for a passthrough
  // verdict, telling the caller to corrupt faithfully.
  bool misuse_refused(HNode* entry) {
    response::EventContext rctx;
    lockdep::ClassId cls = lockdep::kInvalidClass;
    if (lockdep::lockdep_enabled()) {
      cls = ensure_level_class(entry);
      rctx.cls = cls;
      rctx.cls_label = lockdep::Graph::instance().label_of(cls);
      rctx.in_flagged_cycle = lockdep::Graph::instance().is_flagged(cls);
    }
    const auto ev = response::ResponseEvent::kUnbalancedUnlock;
    rctx.waiters_parked = bay_.parked_count();
    const response::Action action =
        response::ResponseEngine::instance().decide(
            ev, rctx, response::Action::kSuppress);
    lockdep::TraceBuffer::instance().emit(
        lockdep::EventKind::kUnbalancedUnlock, entry, cls,
        lockdep::kNoClassTag, static_cast<std::uint8_t>(action));
    if (action == response::Action::kAbort ||
        action == response::Action::kLog) {
      std::fprintf(stderr,
                   "resilock[hmcs]: unbalanced release refused by "
                   "thread pid %u at %s (node %p)\n",
                   static_cast<unsigned>(platform::self_pid()),
                   rctx.cls_label != nullptr ? rctx.cls_label : "?",
                   static_cast<void*>(entry));
    }
    if (action == response::Action::kAbort) {
      response::dispatch_abort(ev, entry);
      misuse_wake();
      return true;  // an abort trap survived: refuse
    }
    if (action != response::Action::kPassthrough) {
      // The bogus release was absorbed: the real owner still holds the
      // lock, but a parked leaf waiter may be sleeping on a hand-off
      // the misbehaving thread was never going to deliver. Broadcast;
      // the woken waiters re-check status and re-park or proceed.
      misuse_wake();
      return true;
    }
    return false;
  }

  HNode* leaf_of_self() const {
    const platform::pid_t pid = platform::self_pid();
    return map_by_domain_
               ? leaves_[topo_.domain_of(pid)]
               : leaves_[pid % leaves_.size()];
  }

  // Returns true iff the acquisition was uncontended at this level and
  // every ancestor (the signal the adaptive AHMCS refinement feeds on).
  // can_park is true only for the entry level's thread-owned qnode;
  // internal climbs never park (see the file comment).
  bool acquire_at(HNode* level, QNode* I, bool can_park = false) {
    const bool dep = lockdep::lockdep_enabled();
    // The attempt hook runs BEFORE the exchange can block, so an
    // imminent cross-tree inversion is flagged (or aborted) while the
    // thread can still back out; the tree's own classes are skipped.
    if (dep) hier_attempt(level);
    I->next.store(nullptr, std::memory_order_relaxed);
    I->status.store(kWait, std::memory_order_relaxed);
    QNode* const pred = level->tail.exchange(I, std::memory_order_acq_rel);
    if (pred == nullptr) {
      // Head of this level's queue: compete at the parent (or, at the
      // root, the lock is ours).
      I->status.store(kCohortStart, std::memory_order_relaxed);
      if (dep) lockdep::on_acquired(level, ensure_level_class(level));
      if (level->parent != nullptr) {
        return acquire_at(level->parent, &level->node);
      }
      return true;
    }
    pred->next.store(I, std::memory_order_release);
    const std::uint64_t st = wait_status(I, can_park);
    if (st == kAcquireParent) {
      // Predecessor exhausted the cohort-passing budget: we own this
      // level but must compete at the parent ourselves.
      if (dep) lockdep::on_acquired(level, ensure_level_class(level));
      I->status.store(kCohortStart, std::memory_order_relaxed);
      acquire_at(level->parent, &level->node);
    } else if (dep) {
      // st is a passing count — this level AND every ancestor were
      // handed to us implicitly. Inherited, not attempted: the holds
      // enter the acquisition stack with no blocking attempt and hence
      // no edges, mirroring the cohort combinator's top_granted path.
      for (HNode* n = level; n != nullptr; n = n->parent) {
        lockdep::on_acquired(n, ensure_level_class(n));
      }
    }
    return false;  // we waited: contended
  }

  void release_at(HNode* level, QNode* I) {
    if (level->parent == nullptr) {
      // Root: plain MCS release; the grant value just has to differ from
      // kWait and kAcquireParent.
      release_mcs_style(level, I, kCohortStart);
      return;
    }
    const std::uint64_t cur = I->status.load(std::memory_order_relaxed);
    if (cur < level->threshold) {
      QNode* const succ = I->next.load(std::memory_order_acquire);
      if (succ != nullptr) {
        // Pass within the cohort; the successor inherits all ancestors.
        grant_status(succ, cur + 1);
        return;
      }
    }
    // Threshold reached or no cohort successor: give the ancestors back,
    // then tell any successor at this level to re-compete upward.
    release_at(level->parent, &level->node);
    release_mcs_style(level, I, kAcquireParent);
  }

  void release_mcs_style(HNode* level, QNode* I, std::uint64_t grant) {
    QNode* succ = I->next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      QNode* expected = I;
      if (level->tail.compare_exchange_strong(expected, nullptr,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed)) {
        return;
      }
      platform::SpinWait w;
      while ((succ = I->next.load(std::memory_order_acquire)) == nullptr)
        w.pause();
    }
    grant_status(succ, grant);
  }

  // Spin-then-park on a qnode's 64-bit status, using the adjacent
  // 32-bit park word as the futex. Dekker with grant_status: the
  // waiter writes park then reads status; the granter writes status
  // then reads park, seq_cst fences between each side's write and
  // read, so a sleeping waiter is always either granted-before-sleep
  // or seen-and-woken.
  std::uint64_t wait_status(QNode* I, bool can_park) {
    platform::SpinWait w;
    std::uint64_t st;
    const std::uint32_t budget = park::park_spins();
    for (std::uint32_t i = 0; i < budget; ++i) {
      if ((st = I->status.load(std::memory_order_acquire)) != kWait)
        return st;
      w.pause();
    }
    int slot = -1;
    if (can_park && park::parking_enabled()) {
      slot = bay_.register_parker(&I->park);
    }
    if (slot < 0) {
      while ((st = I->status.load(std::memory_order_acquire)) == kWait)
        w.pause();
      return st;
    }
    park::ParkStats& g = park::ParkStats::instance();
    park::ThreadParkTally& tally = park::ThreadParkTally::mine();
    for (;;) {
      I->park.store(park::kWordParked, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if ((st = I->status.load(std::memory_order_acquire)) != kWait)
        break;
      const std::uint64_t t0 = runtime::now_ns();
      bay_.note_parked();
      g.currently_parked.fetch_add(1, std::memory_order_relaxed);
      const park::WaitResult r =
          park::futex_wait(&I->park, park::kWordParked, nullptr);
      g.currently_parked.fetch_sub(1, std::memory_order_relaxed);
      bay_.note_unparked();
      const bool slept = r != park::WaitResult::kValueChanged;
      if (slept) {
        tally.parks += 1;
        tally.park_ns += runtime::now_ns() - t0;
        g.parks.fetch_add(1, std::memory_order_relaxed);
      }
      if ((st = I->status.load(std::memory_order_acquire)) != kWait) {
        if (slept) {
          tally.wakes += 1;
          g.wakes.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      g.wakes_spurious.fetch_add(1, std::memory_order_relaxed);
    }
    I->park.store(park::kWordGranted, std::memory_order_relaxed);
    bay_.unregister_parker(slot);
    return st;
  }

  // Granter half of the Dekker pairing in wait_status. The park word
  // is CHANGED (not just woken): a wake alone can land between the
  // waiter's status check and its futex_wait and be lost, but the
  // store makes that late futex_wait refuse to sleep (EAGAIN).
  static void grant_status(QNode* succ, std::uint64_t grant) {
    succ->status.store(grant, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (succ->park.load(std::memory_order_relaxed) == park::kWordParked) {
      succ->park.store(park::kWordGranted, std::memory_order_relaxed);
      park::futex_wake_all(&succ->park);
    }
  }

  platform::Topology topo_;  // by value: 8 bytes, no lifetime coupling
  const bool map_by_domain_;
  std::vector<std::unique_ptr<HNode>> nodes_;  // whole tree, root first
  std::vector<HNode*> leaves_;
  // One shared lockdep class per level (root first); the AHMCS wrapper
  // re-labels the family before first use (it is a friend).
  std::uint32_t tracked_levels_ = 1;
  std::unique_ptr<lockdep::LockClassKey[]> level_keys_;
  const char* const* level_labels_ = kHmcsLevelLabels;
  park::ParkBay bay_;  // rescue registry for parked leaf waiters
};

using HmcsLock = BasicHmcsLock<kOriginal>;
using HmcsLockResilient = BasicHmcsLock<kResilient>;

}  // namespace resilock
