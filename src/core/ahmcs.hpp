// AHMCS-style adaptive hierarchical MCS lock (Chabbi & Mellor-Crummey,
// PPoPP 2016 — "Contention-Conscious, Locality-Preserving Locks").
// Paper §3.8.1: "The AHMCS lock is a refinement atop the HMCS lock
// allowing threads to start their acquire() and the corresponding
// release() at any level in the tree to dynamically adjust to contention.
// Our suggested remedy for HMCS applies to AHMCS as well since each
// thread brings its own qnode allowing us to inspect whether the locked
// flag is set."
//
// This implementation captures the adaptation mechanism the paper relies
// on: a per-context contention estimator. After `kFastStreak` consecutive
// uncontended acquisitions a thread bypasses its leaf and enqueues
// directly at the root with its own qnode (the uncontended fast path);
// observing contention anywhere drops it back to the full leaf-to-root
// path. The context records the entry level so release() unwinds exactly
// what acquire() wound — and carries the same `acquired` marker as the
// HMCS remedy, which (as the paper argues) is level-agnostic. The full
// AHMCS hysteresis machinery (per-level hot paths, HTM fast paths) is
// beyond the paper's use of it and is not reproduced.
//
// Lockdep attribution rides the underlying HMCS tree's per-level class
// keys, re-labeled "ahmcs.level0..N": a full-path entry tags every
// level it climbs, an adaptive root entry joins mid-tree and tags ONLY
// from its entry level (the root) — it never held the leaf, so it must
// not claim it — and a refused misused release is attributed to the
// class of the level the context entered at.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/hmcs.hpp"
#include "core/resilience.hpp"
#include "core/verify_access.hpp"
#include "platform/thread_registry.hpp"
#include "platform/topology.hpp"

namespace resilock {

template <Resilience R>
class BasicAhmcsLock {
  using Base = BasicHmcsLock<R>;
  using QNode = typename Base::QNode;
  using HNode = typename Base::HNode;
  static constexpr std::uint32_t kFastStreak = 8;

 public:
  class Context {
   public:
    Context() = default;
    Context(const Context&) = delete;
    Context& operator=(const Context&) = delete;

   private:
    friend class BasicAhmcsLock;
    friend struct VerifyAccess;
    QNode node_;
    bool acquired_ = false;    // the HMCS remedy, level-agnostic (§3.8.1)
    bool entered_at_root_ = false;
    std::uint32_t uncontended_streak_ = 0;
  };

  explicit BasicAhmcsLock(
      const platform::Topology& topo = platform::Topology::host_default(),
      std::uint64_t passing_threshold = 64)
      : tree_(topo, passing_threshold) {
    tree_.level_labels_ = kAhmcsLevelLabels;  // before any key registers
  }

  // Arbitrary-depth tree (fanouts from the root down), matching the
  // BasicHmcsLock builder: the adaptive fast path then skips the whole
  // multi-level climb, not just one leaf hop.
  explicit BasicAhmcsLock(const std::vector<std::uint32_t>& fanouts,
                          std::uint64_t passing_threshold = 64)
      : tree_(fanouts, passing_threshold) {
    tree_.level_labels_ = kAhmcsLevelLabels;
  }

  BasicAhmcsLock(const BasicAhmcsLock&) = delete;
  BasicAhmcsLock& operator=(const BasicAhmcsLock&) = delete;

  void acquire(Context& ctx) {
    if (ctx.uncontended_streak_ >= kFastStreak) {
      // Fast path: compete at the root directly. The root MCS queue
      // accepts any qnode, so adaptive entrants mix freely with leaf
      // leaders competing on behalf of their cohorts.
      ctx.entered_at_root_ = true;
      if (!tree_.acquire_at(root(), &ctx.node_, /*can_park=*/true)) {
        ctx.uncontended_streak_ = 0;  // back to the full path next time
      }
    } else {
      ctx.entered_at_root_ = false;
      if (tree_.acquire_at(tree_.leaf_of_self(), &ctx.node_,
                            /*can_park=*/true)) {
        ++ctx.uncontended_streak_;
      } else {
        ctx.uncontended_streak_ = 0;
      }
    }
    if constexpr (R == kResilient) ctx.acquired_ = true;
  }

  bool release(Context& ctx) {
    if constexpr (R == kResilient) {
      if (misuse_checks_enabled() && !ctx.acquired_) {
        // Attributed to the class of the level this context entered at
        // (the root for an adaptive entry, the leaf otherwise) and
        // routed through the response engine like the HMCS remedy; a
        // passthrough verdict corrupts faithfully.
        if (tree_.misuse_refused(ctx.entered_at_root_
                                     ? root()
                                     : tree_.leaf_of_self())) {
          return false;
        }
      }
      ctx.acquired_ = false;
    }
    if (ctx.entered_at_root_) {
      // Root entry unwinds as a plain MCS release at the root — and
      // sheds exactly the one level entry the adaptive entry tagged.
      tree_.pop_level_entries(root());
      tree_.release_mcs_style(root(), &ctx.node_, Base::kCohortStart);
    } else {
      HNode* const leaf = tree_.leaf_of_self();
      tree_.pop_level_entries(leaf);
      tree_.release_at(leaf, &ctx.node_);
    }
    return true;
  }

  // Per-level lockdep surface (see BasicHmcsLock): "ahmcs.level0..N".
  std::uint32_t tracked_levels() const { return tree_.tracked_levels(); }
  lockdep::ClassId level_class(std::uint32_t level) const {
    return tree_.level_class(level);
  }

  static constexpr Resilience resilience() { return R; }

 private:
  friend struct VerifyAccess;

  typename Base::HNode* root() { return tree_.nodes_.front().get(); }

  Base tree_;
};

using AhmcsLock = BasicAhmcsLock<kOriginal>;
using AhmcsLockResilient = BasicAhmcsLock<kResilient>;

}  // namespace resilock
