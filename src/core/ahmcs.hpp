// AHMCS-style adaptive hierarchical MCS lock (Chabbi & Mellor-Crummey,
// PPoPP 2016 — "Contention-Conscious, Locality-Preserving Locks").
// Paper §3.8.1: "The AHMCS lock is a refinement atop the HMCS lock
// allowing threads to start their acquire() and the corresponding
// release() at any level in the tree to dynamically adjust to contention.
// Our suggested remedy for HMCS applies to AHMCS as well since each
// thread brings its own qnode allowing us to inspect whether the locked
// flag is set."
//
// This implementation captures the adaptation mechanism the paper relies
// on: a per-context contention estimator. After `kFastStreak` consecutive
// uncontended acquisitions a thread bypasses its leaf and enqueues
// directly at the root with its own qnode (the uncontended fast path);
// observing contention anywhere drops it back to the full leaf-to-root
// path. The context records the entry level so release() unwinds exactly
// what acquire() wound — and carries the same `acquired` marker as the
// HMCS remedy, which (as the paper argues) is level-agnostic. The full
// AHMCS hysteresis machinery (per-level hot paths, HTM fast paths) is
// beyond the paper's use of it and is not reproduced.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/hmcs.hpp"
#include "core/resilience.hpp"
#include "core/verify_access.hpp"
#include "platform/thread_registry.hpp"
#include "platform/topology.hpp"

namespace resilock {

template <Resilience R>
class BasicAhmcsLock {
  using Base = BasicHmcsLock<R>;
  using QNode = typename Base::QNode;
  static constexpr std::uint32_t kFastStreak = 8;

 public:
  class Context {
   public:
    Context() = default;
    Context(const Context&) = delete;
    Context& operator=(const Context&) = delete;

   private:
    friend class BasicAhmcsLock;
    friend struct VerifyAccess;
    QNode node_;
    bool acquired_ = false;    // the HMCS remedy, level-agnostic (§3.8.1)
    bool entered_at_root_ = false;
    std::uint32_t uncontended_streak_ = 0;
  };

  explicit BasicAhmcsLock(
      const platform::Topology& topo = platform::Topology::host_default(),
      std::uint64_t passing_threshold = 64)
      : tree_(topo, passing_threshold) {}

  BasicAhmcsLock(const BasicAhmcsLock&) = delete;
  BasicAhmcsLock& operator=(const BasicAhmcsLock&) = delete;

  void acquire(Context& ctx) {
    if (ctx.uncontended_streak_ >= kFastStreak) {
      // Fast path: compete at the root directly. The root MCS queue
      // accepts any qnode, so adaptive entrants mix freely with leaf
      // leaders competing on behalf of their cohorts.
      ctx.entered_at_root_ = true;
      if (!tree_.acquire_at(root(), &ctx.node_)) {
        ctx.uncontended_streak_ = 0;  // back to the full path next time
      }
    } else {
      ctx.entered_at_root_ = false;
      if (tree_.acquire_at(tree_.leaf_of_self(), &ctx.node_)) {
        ++ctx.uncontended_streak_;
      } else {
        ctx.uncontended_streak_ = 0;
      }
    }
    if constexpr (R == kResilient) ctx.acquired_ = true;
  }

  bool release(Context& ctx) {
    if constexpr (R == kResilient) {
      if (misuse_checks_enabled() && !ctx.acquired_) return false;
      ctx.acquired_ = false;
    }
    if (ctx.entered_at_root_) {
      // Root entry unwinds as a plain MCS release at the root.
      tree_.release_mcs_style(root(), &ctx.node_, Base::kCohortStart);
    } else {
      tree_.release_at(tree_.leaf_of_self(), &ctx.node_);
    }
    return true;
  }

  static constexpr Resilience resilience() { return R; }

 private:
  friend struct VerifyAccess;

  typename Base::HNode* root() { return tree_.nodes_.front().get(); }

  Base tree_;
};

using AhmcsLock = BasicAhmcsLock<kOriginal>;
using AhmcsLockResilient = BasicAhmcsLock<kResilient>;

}  // namespace resilock
