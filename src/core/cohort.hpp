// Lock cohorting (Dice, Marathe & Shavit, PPoPP 2012). Paper §3.8.4.
//
// Combines a global lock G with one local lock S per NUMA domain.
// Requirements (Dice et al.): (a) G tolerates release by a thread other
// than the acquirer; (b) S has the *cohort detection* property — the
// holder can tell whether other local threads are waiting.
//
// Protocol: acquire the local lock; if the previous local holder left the
// global lock with the cohort (top_granted), the global lock is inherited
// for free; otherwise acquire it. On release, if local waiters exist and
// the passing budget is not exhausted, leave the global lock with the
// cohort and just release the local lock; otherwise release the global
// lock first and then the local lock.
//
// Unbalanced-unlock behavior (original): exactly the local lock's
// behavior (§3.8.4 — "these locks suffer from the issues of the
// corresponding locks used at the local level").
//
// Resilient fix (paper §3.8.4): reuse the local lock's remedy. The
// cohort release consults the local lock's ownership check *before*
// touching the global lock, so a misuse leaves both levels untouched.
//
// Lockdep attribution: the combinator annotates its internal locks
// with one shared LockClassKey per LEVEL ("cohort.local",
// "cohort.global") so that application code acquiring other locks
// while a cohort lock is held gets its order edges attributed to the
// right level — and a cross-level inversion in app code names the
// level, not an anonymous pointer. The combinator's own local→global
// nesting is edge-free (the global attempt passes the local class as
// skip_src): the internal protocol order is the combinator's invariant,
// recording it would let a legal app-level "held global of A, acquire
// local of B" edge close a false cycle against it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/generic.hpp"
#include "core/mcs.hpp"
#include "core/partitioned_ticket.hpp"
#include "core/resilience.hpp"
#include "core/tas.hpp"
#include "core/ticket.hpp"
#include "core/verify_access.hpp"
#include "lockdep/class_key.hpp"
#include "platform/cacheline.hpp"
#include "platform/thread_registry.hpp"
#include "platform/topology.hpp"

namespace resilock {

// One shared lockdep class per cohort level, across every cohort
// instantiation: app-level inversions involving cohort internals are
// reported against these names.
inline lockdep::LockClassKey& cohort_local_class_key() {
  static lockdep::LockClassKey key("cohort.local");
  return key;
}
inline lockdep::LockClassKey& cohort_global_class_key() {
  static lockdep::LockClassKey key("cohort.global");
  return key;
}

// TATAS+backoff local lock augmented with a waiter count, giving the BO
// lock the cohort detection property it natively lacks (Dice et al. use a
// successor-exists flag; a counter is the same signal without the reset
// subtleties).
template <Resilience R>
class BoCohortLocal {
 public:
  void acquire() {
    if (!base_.try_acquire()) {
      waiters_.fetch_add(1, std::memory_order_relaxed);
      base_.acquire();
      waiters_.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  bool try_acquire() { return base_.try_acquire(); }

  bool release() { return base_.release(); }

  bool has_waiters() const {
    return waiters_.load(std::memory_order_relaxed) > 0;
  }

  bool owned_by_caller() const {
    if constexpr (R == kResilient) {
      return base_.is_locked_by_self();
    } else {
      return true;
    }
  }

 private:
  friend struct VerifyAccess;
  BasicTasLock<R, TasVariant::kBackoff> base_;
  std::atomic<std::int32_t> waiters_{0};
};

template <Resilience R, typename GlobalLock, typename LocalLock>
class CohortLock {
 public:
  class Context {
   public:
    Context() = default;
    Context(const Context&) = delete;
    Context& operator=(const Context&) = delete;

   private:
    friend class CohortLock;
    friend struct VerifyAccess;
    context_of_t<LocalLock> local_;
  };

  explicit CohortLock(
      const platform::Topology& topo = platform::Topology::host_default(),
      std::uint32_t max_passes = 64)
      : topo_(topo), max_passes_(max_passes) {
    domains_.reserve(topo.num_domains());
    for (std::uint32_t d = 0; d < topo.num_domains(); ++d)
      domains_.push_back(std::make_unique<Domain>());
  }

  CohortLock(const CohortLock&) = delete;
  CohortLock& operator=(const CohortLock&) = delete;

  void acquire(Context& ctx) {
    Domain& d = *domains_[topo_.domain_of(platform::self_pid())];
    const bool dep = lockdep::lockdep_enabled();
    lockdep::ClassId local_cls = lockdep::kInvalidClass;
    if (dep) {
      local_cls = cohort_local_class_key().ensure();
      // Edges from app-held locks to the local level; attribution is
      // per level, so every cohort's local lands in one class.
      lockdep::on_acquire_attempt(&d.local, local_cls);
    }
    generic_acquire(d.local, ctx.local_);
    if (dep) lockdep::on_acquired(&d.local, local_cls);
    // Did the previous local holder leave the global lock with us?
    if (d.top_granted.load(std::memory_order_acquire)) {
      d.top_granted.store(false, std::memory_order_relaxed);
      // Inherited, not acquired — no blocking attempt, no edges — but
      // this thread now logically HOLDS the global level.
      if (dep) {
        lockdep::on_acquired(&global_, cohort_global_class_key().ensure());
      }
      return;  // global lock inherited
    }
    if (dep) {
      // skip_src = the local class: the combinator's own local→global
      // nesting stays edge-free (see the header comment); app-held
      // locks still source their edges to the global level.
      lockdep::on_acquire_attempt(&global_,
                                  cohort_global_class_key().ensure(), 0,
                                  false, AccessMode::kExclusive,
                                  local_cls);
    }
    generic_acquire(global_, d.global_ctx);
    if (dep) {
      lockdep::on_acquired(&global_, cohort_global_class_key().ensure());
    }
  }

  // Non-blocking acquire of BOTH levels, for trylock-shaped callers
  // (the C-RW trylock paths): the local level is tried first, an
  // inherited global grant is honored, and a failed global try rolls
  // the local acquisition back — EBUSY leaves no level held. Trylocks
  // add no lockdep order edges (they cannot wedge), but a successful
  // try still enters the held set at both levels.
  bool try_acquire(Context& ctx)
    requires(generic_has_trylock<GlobalLock>() &&
             generic_has_trylock<LocalLock>())
  {
    Domain& d = *domains_[topo_.domain_of(platform::self_pid())];
    if (!generic_try_acquire(d.local, ctx.local_)) return false;
    const bool dep = lockdep::lockdep_enabled();
    if (d.top_granted.load(std::memory_order_acquire)) {
      d.top_granted.store(false, std::memory_order_relaxed);
    } else if (!generic_try_acquire(global_, d.global_ctx)) {
      generic_release(d.local, ctx.local_);
      return false;
    }
    if (dep) {
      lockdep::on_acquired(&d.local, cohort_local_class_key().ensure());
      lockdep::on_acquired(&global_, cohort_global_class_key().ensure());
    }
    return true;
  }

  bool release(Context& ctx) {
    Domain& d = *domains_[topo_.domain_of(platform::self_pid())];
    if constexpr (R == kResilient) {
      // The paper's remedy: reuse the local lock's detection — and do it
      // before the global lock can be corrupted.
      if (misuse_checks_enabled() &&
          !generic_owned_by_caller(d.local, ctx.local_)) {
        return false;  // refused: the caller's held set is unchanged
      }
    }
    // The caller stops holding both levels whether the global is
    // passed to the cohort or released for real. Not gated on
    // lockdep_enabled(): entries pushed while tracking was on must
    // come off regardless (no-ops when never pushed).
    lockdep::on_released(&global_);
    lockdep::on_released(&d.local);
    if (generic_has_waiters(d.local, ctx.local_) &&
        d.pass_count < max_passes_) {
      ++d.pass_count;  // guarded by the local lock
      d.top_granted.store(true, std::memory_order_release);
      return generic_release(d.local, ctx.local_);
    }
    d.pass_count = 0;
    release_global(d);
    return generic_release(d.local, ctx.local_);
  }

  static constexpr Resilience resilience() { return R; }

 private:
  friend struct VerifyAccess;

  struct alignas(platform::kCacheLineSize) Domain {
    LocalLock local;
    std::atomic<bool> top_granted{false};
    std::uint32_t pass_count{0};  // written only while holding `local`
    [[no_unique_address]] context_of_t<GlobalLock> global_ctx{};
  };

  void release_global(Domain& d) {
    // The global release may legitimately run on a different thread than
    // the global acquire (cohort property (a)); use the thread-oblivious
    // entry point where the lock distinguishes one.
    if constexpr (requires(GlobalLock& g) { g.release_thread_oblivious(); }) {
      global_.release_thread_oblivious();
    } else {
      generic_release(global_, d.global_ctx);
    }
  }

  platform::Topology topo_;  // by value: 8 bytes, no lifetime coupling
  const std::uint32_t max_passes_;
  GlobalLock global_;
  std::vector<std::unique_ptr<Domain>> domains_;
};

// The cohort-lock menagerie of §3.8.4. The global lock is always the
// original flavor: its release is executed by cohort handoff and must
// stay thread-oblivious; the paper's fix targets the local lock, where
// every cohort release begins.
template <Resilience R>
using CBoBoLock =
    CohortLock<R, BasicTasLock<kOriginal, TasVariant::kBackoff>,
               BoCohortLocal<R>>;
template <Resilience R>
using CTktTktLock = CohortLock<R, TicketLock, BasicTicketLock<R>>;
template <Resilience R>
using CMcsMcsLock = CohortLock<R, McsLock, BasicMcsLock<R>>;
template <Resilience R>
using CTktMcsLock = CohortLock<R, TicketLock, BasicMcsLock<R>>;
// The C-RW-NP building block: global partitioned ticket over local
// ticket locks (Calciu et al. 2013, §4).
template <Resilience R>
using CPtktTktLock =
    CohortLock<R, PartitionedTicketLock, BasicTicketLock<R>>;

}  // namespace resilock
