// StatsLock<L>: transparent instrumentation around any lock.
//
// Production deployments of resilient locks want to know *whether*
// misuse is happening, not just to survive it (the paper's §7 discusses
// feedback-to-programmer designs: errorcheck mutexes, Go panics). This
// wrapper counts, per lock instance:
//   * acquisitions / releases,
//   * trylock attempts and failures,
//   * contended acquisitions (a trylock probe failed first), and
//   * detected unbalanced unlocks (resilient base locks only).
// Counters are relaxed atomics on their own cache lines: the wrapper
// adds one uncontended RMW per operation and never perturbs the base
// protocol.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/contention.hpp"
#include "core/generic.hpp"
#include "core/lock_concepts.hpp"
#include "platform/cacheline.hpp"

namespace resilock {

struct LockStatsSnapshot {
  std::uint64_t acquisitions = 0;
  std::uint64_t contended_acquisitions = 0;
  std::uint64_t releases = 0;
  std::uint64_t detected_misuses = 0;
  std::uint64_t trylock_attempts = 0;
  std::uint64_t trylock_failures = 0;

  double contention_ratio() const {
    return acquisitions == 0 ? 0.0
                             : static_cast<double>(contended_acquisitions) /
                                   static_cast<double>(acquisitions);
  }
};

template <typename Base>
class StatsLock {
 public:
  using Context = context_of_t<Base>;

  StatsLock() = default;
  template <typename... Args>
  explicit StatsLock(Args&&... args) : base_(std::forward<Args>(args)...) {}

  StatsLock(const StatsLock&) = delete;
  StatsLock& operator=(const StatsLock&) = delete;

  void acquire(Context& ctx) {
    // Contention probe: only where the base lock has a native trylock
    // (probing by other means would perturb the protocol). The probe
    // also brackets the blocking wait so waiters() is a live gauge.
    if constexpr (generic_has_trylock<Base>()) {
      if (generic_try_acquire(base_, ctx)) {
        bump(acquisitions_);
        return;
      }
      contention_.value.begin_wait();
      generic_acquire(base_, ctx);
      contention_.value.end_wait();
      bump(acquisitions_);
      return;
    }
    generic_acquire(base_, ctx);
    bump(acquisitions_);
  }

  bool try_acquire(Context& ctx)
    requires(generic_has_trylock<Base>())
  {
    bump(try_attempts_);
    if (generic_try_acquire(base_, ctx)) {
      bump(acquisitions_);
      return true;
    }
    bump(try_failures_);
    return false;
  }

  bool release(Context& ctx) {
    if (!generic_release(base_, ctx)) {
      bump(misuses_);
      return false;
    }
    bump(releases_);
    return true;
  }

  // PlainLock convenience overloads (the context is stateless).
  void acquire()
    requires(std::is_same_v<Context, NoContext>)
  {
    NoContext c;
    acquire(c);
  }
  bool release()
    requires(std::is_same_v<Context, NoContext>)
  {
    NoContext c;
    return release(c);
  }
  bool try_acquire()
    requires(std::is_same_v<Context, NoContext> &&
             generic_has_trylock<Base>())
  {
    NoContext c;
    return try_acquire(c);
  }

  LockStatsSnapshot snapshot() const {
    LockStatsSnapshot s;
    s.acquisitions = acquisitions_.value.load(std::memory_order_relaxed);
    s.contended_acquisitions = contention_.value.contended_total();
    s.releases = releases_.value.load(std::memory_order_relaxed);
    s.detected_misuses = misuses_.value.load(std::memory_order_relaxed);
    s.trylock_attempts =
        try_attempts_.value.load(std::memory_order_relaxed);
    s.trylock_failures =
        try_failures_.value.load(std::memory_order_relaxed);
    return s;
  }

  void reset_stats() {
    for (auto* c : {&acquisitions_, &releases_, &misuses_,
                    &try_attempts_, &try_failures_}) {
      c->value.store(0, std::memory_order_relaxed);
    }
    contention_.value.reset();
  }

  // Live contention telemetry (response-engine inputs).
  std::uint32_t waiters() const { return contention_.value.waiters(); }
  std::uint64_t contended_total() const {
    return contention_.value.contended_total();
  }

  Base& base() { return base_; }

 private:
  using Counter = platform::CacheLineAligned<std::atomic<std::uint64_t>>;
  static void bump(Counter& c) {
    c.value.fetch_add(1, std::memory_order_relaxed);
  }

  Base base_;
  Counter acquisitions_;
  platform::CacheLineAligned<ContentionProbe> contention_;
  Counter releases_;
  Counter misuses_;
  Counter try_attempts_;
  Counter try_failures_;
};

}  // namespace resilock
