// Runtime registry of every lock algorithm, by name.
//
// The evaluation harness, the interposition layer, and the benchmark
// binaries all select algorithms by string — mirroring how LiTL selects
// the interposed lock via an environment variable (paper §6).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/any_lock.hpp"
#include "core/resilience.hpp"
#include "platform/topology.hpp"

namespace resilock {

// All registered algorithm names (stable order), including the
// "shield<X>" composites.
const std::vector<std::string>& lock_names();

// Only the base algorithms — lock_names() minus the shield composites.
// Paper-reproduction sweeps (Tables 1/2, Figure 14) iterate these.
const std::vector<std::string>& base_lock_names();

// The six locks of the paper's Table 2 / Figure 14, in table order:
// TAS, Ticket, ABQL, MCS, CLH, HMCS.
const std::vector<std::string>& table2_lock_names();

// True iff `name` is a registered algorithm.
bool is_lock_name(std::string_view name);

// Instantiate `name` in the requested flavor. Topology-aware locks
// (HMCS, HCLH, HBO, cohort family) use `topo`. Throws std::out_of_range
// for unknown names.
std::unique_ptr<AnyLock> make_lock(
    std::string_view name, Resilience r,
    const platform::Topology& topo = platform::Topology::host_default());

// ---------------------------------------------------------------------
// Ownership-shield composites (src/shield/): every base algorithm X is
// also registered as "shield<X>", which wraps the requested flavor of X
// in Shield<X> — the generic ownership layer that intercepts unbalanced
// unlock, double unlock, non-owner unlock, and reentrant relock before
// they reach the protocol.
// ---------------------------------------------------------------------

// "TAS" -> "shield<TAS>".
std::string shielded_name(std::string_view base);

// True iff `name` has the "shield<...>" shape.
bool is_shielded_name(std::string_view name);

// "shield<TAS>" -> "TAS"; empty view when `name` is not a shield name.
std::string_view shield_base_name(std::string_view name);

}  // namespace resilock
