// Reentrant lock wrapper. Paper §3.9.
//
// Owner + depth over any PlainLock: re-acquisition by the owner bumps the
// depth, release by the owner decrements it, and — as in OpenJDK's
// ReentrantLock and glibc's PTHREAD_MUTEX_ERRORCHECK — release by a
// non-owner is refused with an error. Ownership checking is inherent to
// reentrancy, so this wrapper is immune to unbalanced unlock by
// construction; the paper's special case of *more unlocks than locks* by
// the owner itself is also caught (depth underflow).
#pragma once

#include <atomic>
#include <cstdint>

#include "core/lock_concepts.hpp"
#include "core/resilience.hpp"
#include "core/tas.hpp"
#include "platform/thread_registry.hpp"

namespace resilock {

template <PlainLock Base = TatasLockResilient>
class ReentrantLock {
  static constexpr std::uint32_t kNoOwner = 0;

 public:
  void acquire() {
    const std::uint32_t me = platform::self_pid() + 1;
    if (owner_.load(std::memory_order_relaxed) == me) {
      ++depth_;  // only the owner reaches here; no race
      return;
    }
    base_.acquire();
    owner_.store(me, std::memory_order_relaxed);
    depth_ = 1;
  }

  bool try_acquire() {
    const std::uint32_t me = platform::self_pid() + 1;
    if (owner_.load(std::memory_order_relaxed) == me) {
      ++depth_;
      return true;
    }
    if constexpr (TryLockable<Base>) {
      if (!base_.try_acquire()) return false;
      owner_.store(me, std::memory_order_relaxed);
      depth_ = 1;
      return true;
    } else {
      return false;
    }
  }

  // False iff the caller does not own the lock (the errorcheck behavior
  // the paper cites for pthreads, §3.9).
  bool release() {
    const std::uint32_t me = platform::self_pid() + 1;
    if (owner_.load(std::memory_order_relaxed) != me) return false;
    if (--depth_ == 0) {
      owner_.store(kNoOwner, std::memory_order_relaxed);
      return base_.release();
    }
    return true;
  }

  std::uint32_t depth() const { return depth_; }
  bool held_by_self() const {
    return owner_.load(std::memory_order_relaxed) ==
           platform::self_pid() + 1;
  }

 private:
  Base base_;
  std::atomic<std::uint32_t> owner_{kNoOwner};
  std::uint32_t depth_ = 0;  // guarded by base_
};

}  // namespace resilock
