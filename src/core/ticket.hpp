// Ticket lock. Paper §3.2; protocol from Mellor-Crummey & Scott 1991 §2.
//
// FIFO: a thread takes a ticket by atomically incrementing nextTicket and
// spins until nowServing equals its ticket; release() increments
// nowServing.
//
// Unbalanced-unlock behavior (original): an extra increment of nowServing
// admits the successor while the holder is still inside — one misuse lets
// at most 2 threads in simultaneously, N misuses at most N+1. Worse,
// nowServing can move past nextTicket, after which issued tickets are
// skipped forever: in almost all cases all other threads starve (§3.2).
// The misbehaving thread itself does not starve unless it re-acquires.
//
// Resilient fix (paper Figure 3): introduce a PID field (this is the one
// lock where the paper accepts a new field). It is set after acquisition;
// release() refuses to bump nowServing unless the caller's PID matches.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/resilience.hpp"
#include "core/verify_access.hpp"
#include "platform/spin.hpp"
#include "platform/thread_registry.hpp"

namespace resilock {

template <Resilience R>
class BasicTicketLock {
  static constexpr std::uint32_t kNoOwner = 0;

 public:
  BasicTicketLock() = default;
  BasicTicketLock(const BasicTicketLock&) = delete;
  BasicTicketLock& operator=(const BasicTicketLock&) = delete;

  void acquire() {
    const std::uint64_t my_ticket =
        next_ticket_.fetch_add(1, std::memory_order_relaxed);
    platform::SpinWait w;
    while (now_serving_.load(std::memory_order_acquire) != my_ticket)
      w.pause();
    if constexpr (R == kResilient) {
      // Relaxed is enough: the owning thread reads it back in program
      // order; other threads only ever need to see a value != their pid.
      owner_.store(platform::self_pid() + 1, std::memory_order_relaxed);
    }
  }

  // Succeeds only when the lock is free and no ticket is pending.
  bool try_acquire() {
    std::uint64_t serving = now_serving_.load(std::memory_order_acquire);
    std::uint64_t expected = serving;
    if (!next_ticket_.compare_exchange_strong(expected, serving + 1,
                                              std::memory_order_acquire,
                                              std::memory_order_relaxed)) {
      return false;
    }
    if constexpr (R == kResilient) {
      owner_.store(platform::self_pid() + 1, std::memory_order_relaxed);
    }
    return true;
  }

  bool release() {
    if constexpr (R == kResilient) {
      // The extra load the paper charges to the fix (§6: the modified
      // release has a load where the original had only a store).
      if (misuse_checks_enabled() &&
          owner_.load(std::memory_order_relaxed) !=
              platform::self_pid() + 1) {
        return false;
      }
      owner_.store(kNoOwner, std::memory_order_relaxed);
    }
    now_serving_.store(now_serving_.load(std::memory_order_relaxed) + 1,
                       std::memory_order_release);
    return true;
  }

  // Cohort detection property (Dice et al. 2012, required of the local
  // lock in a cohort lock, §3.8.4): are other threads waiting right now?
  bool has_waiters() const {
    return next_ticket_.load(std::memory_order_relaxed) >
           now_serving_.load(std::memory_order_relaxed) + 1;
  }

  // Ownership query used by the cohort combinator's resilient release
  // path; the original flavor cannot check and reports true.
  bool owned_by_caller() const {
    if constexpr (R == kResilient) {
      return owner_.load(std::memory_order_relaxed) ==
             platform::self_pid() + 1;
    } else {
      return true;
    }
  }

  static constexpr Resilience resilience() { return R; }

 private:
  friend struct VerifyAccess;

  struct Empty {};
  alignas(64) std::atomic<std::uint64_t> next_ticket_{0};
  alignas(64) std::atomic<std::uint64_t> now_serving_{0};
  // Present only in the resilient flavor: the PID field of Figure 3.
  [[no_unique_address]] std::conditional_t<R == kResilient,
                                           std::atomic<std::uint32_t>, Empty>
      owner_{};
};

using TicketLock = BasicTicketLock<kOriginal>;
using TicketLockResilient = BasicTicketLock<kResilient>;

}  // namespace resilock
