// Ticket lock. Paper §3.2; protocol from Mellor-Crummey & Scott 1991 §2.
//
// FIFO: a thread takes a ticket by atomically incrementing nextTicket and
// spins until nowServing equals its ticket; release() increments
// nowServing.
//
// Unbalanced-unlock behavior (original): an extra increment of nowServing
// admits the successor while the holder is still inside — one misuse lets
// at most 2 threads in simultaneously, N misuses at most N+1. Worse,
// nowServing can move past nextTicket, after which issued tickets are
// skipped forever: in almost all cases all other threads starve (§3.2).
// The misbehaving thread itself does not starve unless it re-acquires.
//
// Resilient fix (paper Figure 3): introduce a PID field (this is the one
// lock where the paper accepts a new field). It is set after acquisition;
// release() refuses to bump nowServing unless the caller's PID matches.
//
// Parking (src/park/): nowServing is 64-bit and per-waiter values are
// dense integers, so waiters cannot futex on it directly (futex words
// are 32-bit) nor on a private flag (there is no per-waiter node).
// Instead the lock carries a 32-bit park epoch: a waiter that loses
// the bounded spin registers in parked_, re-checks nowServing, and
// futex_waits on the epoch. Every release that sees registered
// parkers bumps the epoch and broadcast-wakes; woken waiters re-check
// their ticket and re-park. The thundering herd is bounded by the
// parked population and FIFO is preserved — tickets, not wake order,
// decide who enters. A seq_cst fence pairs the waiter's register/
// re-check with the releaser's publish/check (Dekker), so a parker
// can never slip between the releaser's store and its wake decision.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/resilience.hpp"
#include "core/verify_access.hpp"
#include "park/parking_lot.hpp"
#include "platform/spin.hpp"
#include "runtime/timer.hpp"
#include "platform/thread_registry.hpp"

namespace resilock {

template <Resilience R>
class BasicTicketLock {
  static constexpr std::uint32_t kNoOwner = 0;

 public:
  BasicTicketLock() = default;
  BasicTicketLock(const BasicTicketLock&) = delete;
  BasicTicketLock& operator=(const BasicTicketLock&) = delete;

  void acquire() {
    const std::uint64_t my_ticket =
        next_ticket_.fetch_add(1, std::memory_order_relaxed);
    wait_for_turn(my_ticket);
    if constexpr (R == kResilient) {
      // Relaxed is enough: the owning thread reads it back in program
      // order; other threads only ever need to see a value != their pid.
      owner_.store(platform::self_pid() + 1, std::memory_order_relaxed);
    }
  }

  // Succeeds only when the lock is free and no ticket is pending.
  bool try_acquire() {
    std::uint64_t serving = now_serving_.load(std::memory_order_acquire);
    std::uint64_t expected = serving;
    if (!next_ticket_.compare_exchange_strong(expected, serving + 1,
                                              std::memory_order_acquire,
                                              std::memory_order_relaxed)) {
      return false;
    }
    if constexpr (R == kResilient) {
      owner_.store(platform::self_pid() + 1, std::memory_order_relaxed);
    }
    return true;
  }

  bool release() {
    if constexpr (R == kResilient) {
      // The extra load the paper charges to the fix (§6: the modified
      // release has a load where the original had only a store).
      if (misuse_checks_enabled() &&
          owner_.load(std::memory_order_relaxed) !=
              platform::self_pid() + 1) {
        return false;
      }
      owner_.store(kNoOwner, std::memory_order_relaxed);
    }
    now_serving_.store(now_serving_.load(std::memory_order_relaxed) + 1,
                       std::memory_order_release);
    maybe_wake_parked();
    return true;
  }

  // Shield rescue hook: a bogus extra serving bump was absorbed, but
  // parked waiters may still be sleeping on the old epoch. Bump and
  // broadcast so they re-check their tickets.
  void misuse_wake() noexcept {
    park::ParkStats::instance().misuse_wakes.fetch_add(
        1, std::memory_order_relaxed);
    wake_all_parked();
  }

  std::uint32_t parked_waiters() const noexcept {
    return parked_.load(std::memory_order_acquire);
  }

  // Cohort detection property (Dice et al. 2012, required of the local
  // lock in a cohort lock, §3.8.4): are other threads waiting right now?
  bool has_waiters() const {
    return next_ticket_.load(std::memory_order_relaxed) >
           now_serving_.load(std::memory_order_relaxed) + 1;
  }

  // Ownership query used by the cohort combinator's resilient release
  // path; the original flavor cannot check and reports true.
  bool owned_by_caller() const {
    if constexpr (R == kResilient) {
      return owner_.load(std::memory_order_relaxed) ==
             platform::self_pid() + 1;
    } else {
      return true;
    }
  }

  static constexpr Resilience resilience() { return R; }

 private:
  friend struct VerifyAccess;

  void wait_for_turn(std::uint64_t my_ticket) {
    platform::SpinWait w;
    const std::uint32_t budget = park::park_spins();
    for (std::uint32_t i = 0; i < budget; ++i) {
      if (now_serving_.load(std::memory_order_acquire) == my_ticket)
        return;
      w.pause();
    }
    if (!park::parking_enabled()) {
      while (now_serving_.load(std::memory_order_acquire) != my_ticket)
        w.pause();
      return;
    }
    park::ParkStats& g = park::ParkStats::instance();
    park::ThreadParkTally& tally = park::ThreadParkTally::mine();
    for (;;) {
      // Order matters: epoch sample BEFORE the serving re-check, so a
      // release that lands after the re-check has already bumped past
      // our sampled epoch and the futex_wait refuses to sleep.
      const std::uint32_t e =
          park_epoch_.load(std::memory_order_acquire);
      parked_.fetch_add(1, std::memory_order_seq_cst);
      if (now_serving_.load(std::memory_order_seq_cst) == my_ticket) {
        parked_.fetch_sub(1, std::memory_order_release);
        return;
      }
      const std::uint64_t t0 = runtime::now_ns();
      g.currently_parked.fetch_add(1, std::memory_order_relaxed);
      const park::WaitResult r =
          park::futex_wait(&park_epoch_, e, nullptr);
      g.currently_parked.fetch_sub(1, std::memory_order_relaxed);
      parked_.fetch_sub(1, std::memory_order_release);
      if (r != park::WaitResult::kValueChanged) {
        tally.parks += 1;
        tally.park_ns += runtime::now_ns() - t0;
        g.parks.fetch_add(1, std::memory_order_relaxed);
      }
      if (now_serving_.load(std::memory_order_acquire) == my_ticket) {
        if (r != park::WaitResult::kValueChanged) {
          tally.wakes += 1;
          g.wakes.fetch_add(1, std::memory_order_relaxed);
        }
        return;
      }
      g.wakes_spurious.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Releaser half of the Dekker pairing with wait_for_turn. Cheap when
  // parking is cold: one relaxed flag load, one acquire load.
  void maybe_wake_parked() noexcept {
    if (!park::parking_enabled() &&
        parked_.load(std::memory_order_acquire) == 0) {
      return;
    }
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (parked_.load(std::memory_order_relaxed) == 0) return;
    wake_all_parked();
  }

  void wake_all_parked() noexcept {
    park_epoch_.fetch_add(1, std::memory_order_release);
    park::futex_wake_all(&park_epoch_);
  }

  struct Empty {};
  alignas(64) std::atomic<std::uint64_t> next_ticket_{0};
  alignas(64) std::atomic<std::uint64_t> now_serving_{0};
  // Parking epoch + registered-parker count (see file comment). Own
  // line so parker churn does not bounce the ticket counters.
  alignas(64) std::atomic<std::uint32_t> park_epoch_{0};
  std::atomic<std::uint32_t> parked_{0};
  // Present only in the resilient flavor: the PID field of Figure 3.
  [[no_unique_address]] std::conditional_t<R == kResilient,
                                           std::atomic<std::uint32_t>, Empty>
      owner_{};
};

using TicketLock = BasicTicketLock<kOriginal>;
using TicketLockResilient = BasicTicketLock<kResilient>;

}  // namespace resilock
