// The two build flavors of every lock in this library.
//
// `kOriginal` is the textbook protocol exactly as published; it is the
// baseline in every experiment and exhibits the misuse behavior the paper
// catalogs in Table 1. `kResilient` applies the paper's minimal fix so
// that an unbalanced unlock() is detected and suppressed.
#pragma once

#include <atomic>

#include "platform/env.hpp"

namespace resilock {

enum class Resilience {
  kOriginal,
  kResilient,
};

inline constexpr Resilience kOriginal = Resilience::kOriginal;
inline constexpr Resilience kResilient = Resilience::kResilient;

constexpr const char* to_string(Resilience r) noexcept {
  return r == kOriginal ? "original" : "resilient";
}

namespace detail {
inline std::atomic<bool>& misuse_check_flag() {
  // Defaults on; RESILOCK_DISABLE_CHECK=1 turns every resilient check
  // off at process start.
  static std::atomic<bool> flag{
      !platform::env_flag("RESILOCK_DISABLE_CHECK", false)};
  return flag;
}
}  // namespace detail

// The paper's §5 escape hatch: "By design some locks may require one
// thread to acquire() and another thread to release() the lock. To avoid
// flagging such a release() as unbalanced-unlock, one can set an
// environment variable to disable the check in all our proposed
// remedies." With checks disabled a resilient lock releases exactly like
// the original protocol — including the original's misuse consequences.
inline bool misuse_checks_enabled() noexcept {
  return detail::misuse_check_flag().load(std::memory_order_relaxed);
}

inline void set_misuse_checks(bool enabled) noexcept {
  detail::misuse_check_flag().store(enabled, std::memory_order_relaxed);
}

// RAII toggle for the process-global check flag. set_misuse_checks() is
// global state; a test or bench that flips it and then exits early (an
// ASSERT, an exception) leaks the setting into everything that runs
// after it. The guard restores the previous value on scope exit:
//
//   { MisuseCheckGuard off(false);  /* §5 hand-off section */ }
//   // checks are back to whatever they were
class MisuseCheckGuard {
 public:
  explicit MisuseCheckGuard(bool enabled)
      : previous_(misuse_checks_enabled()) {
    set_misuse_checks(enabled);
  }
  ~MisuseCheckGuard() { set_misuse_checks(previous_); }
  MisuseCheckGuard(const MisuseCheckGuard&) = delete;
  MisuseCheckGuard& operator=(const MisuseCheckGuard&) = delete;

 private:
  const bool previous_;
};

}  // namespace resilock
