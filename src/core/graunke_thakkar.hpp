// Graunke & Thakkar's array-based queue lock. Paper §3.3.2; protocol from
// Graunke & Thakkar 1990 / Mellor-Crummey & Scott 1991 §2.
//
// Each thread owns one uint16 slot (on its own cache line, even address).
// The lock's tail word packs (pointer to predecessor's slot | predecessor's
// slot value at enqueue time). acquire() SWAPs its own (slot address |
// current slot value) into tail and spins while *pred still equals the
// packed value; release() toggles the caller's own slot with an atomic
// XOR, which releases the successor spinning on it.
//
// Unbalanced-unlock behavior (original): mutual exclusion is never
// violated (§3.3.2 gives the case analysis), but a second toggle can flip
// the bit back before the spinning successor observes the first flip; the
// successor then waits forever, and FIFO ordering starves every thread
// behind it.
//
// Resilient fix (paper §3.3.2): a per-thread `holder` flag set after
// acquisition and checked + cleared by release(). (The paper notes the
// slots array itself could be re-purposed; we keep the separate array the
// paper describes.)
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "core/resilience.hpp"
#include "core/verify_access.hpp"
#include "platform/cacheline.hpp"
#include "platform/spin.hpp"
#include "platform/thread_registry.hpp"

namespace resilock {

template <Resilience R>
class BasicGraunkeThakkarLock {
  using Word = std::uintptr_t;

 public:
  explicit BasicGraunkeThakkarLock(
      std::uint32_t max_procs = platform::ThreadRegistry::kCapacity)
      : size_(max_procs),
        slots_(std::make_unique<
               platform::CacheLineAligned<std::atomic<std::uint16_t>>[]>(
            size_)),
        holder_(R == kResilient
                    ? std::make_unique<
                          platform::CacheLineAligned<std::atomic<bool>>[]>(
                          size_)
                    : nullptr) {
    for (std::uint32_t i = 0; i < size_; ++i)
      slots_[i].value.store(0, std::memory_order_relaxed);
    if constexpr (R == kResilient) {
      for (std::uint32_t i = 0; i < size_; ++i)
        holder_[i].value.store(false, std::memory_order_relaxed);
    }
    // Bootstrap: tail points at slot 0 with the *negation* of its value,
    // so the first acquirer's spin condition is immediately false.
    tail_.store(pack(&slots_[0].value, 1 ^ slots_[0].value.load(
                                               std::memory_order_relaxed)),
                std::memory_order_relaxed);
  }

  BasicGraunkeThakkarLock(const BasicGraunkeThakkarLock&) = delete;
  BasicGraunkeThakkarLock& operator=(const BasicGraunkeThakkarLock&) = delete;

  void acquire() {
    const platform::pid_t pid = platform::self_pid() % size_;
    auto& my_slot = slots_[pid].value;
    const Word packed =
        pack(&my_slot, my_slot.load(std::memory_order_relaxed));
    const Word prev = tail_.exchange(packed, std::memory_order_acq_rel);
    const auto* pred = unpack_ptr(prev);
    const std::uint16_t locked_value = unpack_bit(prev);
    platform::SpinWait w;
    while (pred->load(std::memory_order_acquire) == locked_value) w.pause();
    if constexpr (R == kResilient) {
      holder_[pid].value.store(true, std::memory_order_relaxed);
    }
  }

  bool release() {
    const platform::pid_t pid = platform::self_pid() % size_;
    if constexpr (R == kResilient) {
      if (misuse_checks_enabled() &&
          !holder_[pid].value.load(std::memory_order_relaxed)) {
        return false;  // unbalanced: this thread does not hold the lock
      }
      holder_[pid].value.store(false, std::memory_order_relaxed);
    }
    // Toggle our slot; the successor spins until it differs from the value
    // packed in tail at its enqueue time.
    slots_[pid].value.fetch_xor(1, std::memory_order_release);
    return true;
  }

  static constexpr Resilience resilience() { return R; }

 private:
  friend struct VerifyAccess;

  static Word pack(const std::atomic<std::uint16_t>* p, std::uint16_t bit) {
    return reinterpret_cast<Word>(p) | (bit & 1u);
  }
  static const std::atomic<std::uint16_t>* unpack_ptr(Word w) {
    return reinterpret_cast<const std::atomic<std::uint16_t>*>(w & ~Word{1});
  }
  static std::uint16_t unpack_bit(Word w) {
    return static_cast<std::uint16_t>(w & 1u);
  }

  const std::uint32_t size_;
  std::unique_ptr<platform::CacheLineAligned<std::atomic<std::uint16_t>>[]>
      slots_;
  std::unique_ptr<platform::CacheLineAligned<std::atomic<bool>>[]> holder_;
  alignas(platform::kCacheLineSize) std::atomic<Word> tail_{0};
};

using GraunkeThakkarLock = BasicGraunkeThakkarLock<kOriginal>;
using GraunkeThakkarLockResilient = BasicGraunkeThakkarLock<kResilient>;

}  // namespace resilock
