// Peterson's two-process mutual exclusion algorithm (Peterson 1981).
// Paper §5 and Appendix Listing 2.
//
// Software-only (no atomic RMW); two fixed slots. seq_cst accesses stand
// in for the algorithm's assumed sequential consistency.
//
// Unbalanced-unlock behavior: immune (paper Table 1). release(i) resets
// flag[i] — "undoes the intent to enter". If the caller is not in the
// critical section its flag is already 0 (or it is waiting, in which case
// it simply stops wanting the CS); neither starvation nor mutex violation
// can result with only two participants, whether one or both misbehave.
#pragma once

#include <atomic>
#include <cstdint>

#include "platform/spin.hpp"

namespace resilock {

class PetersonLock {
 public:
  // `self` must be 0 or 1 and unique per participating thread.
  void acquire(unsigned self) {
    const unsigned other = 1u - self;
    flag_[self].store(1, std::memory_order_seq_cst);
    turn_.store(other, std::memory_order_seq_cst);
    platform::SpinWait w;
    while (flag_[other].load(std::memory_order_seq_cst) == 1 &&
           turn_.load(std::memory_order_seq_cst) == other) {
      w.pause();
    }
  }

  bool release(unsigned self) {
    flag_[self].store(0, std::memory_order_seq_cst);
    return true;  // misuse is side-effect free; nothing to detect
  }

 private:
  std::atomic<std::uint32_t> flag_[2] = {0, 0};
  std::atomic<std::uint32_t> turn_{0};
};

}  // namespace resilock
