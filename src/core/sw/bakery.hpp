// Lamport's Bakery algorithm (Lamport 1974). Paper Appendix A.1.
//
// Each thread draws a number one larger than any it can see and waits for
// every thread with a smaller (number, id) pair. Software-only, FIFO-ish,
// and famously tolerant of weak registers.
//
// Unbalanced-unlock behavior (Appendix A.1): immune — release() resets
// the caller's own number[i] to 0, which is exactly its idle state; a
// misuse by a non-holder is a no-op visible to nobody, so there is no
// mutex violation and no starvation.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "platform/cacheline.hpp"
#include "platform/spin.hpp"
#include "platform/thread_registry.hpp"

namespace resilock {

class BakeryLock {
 public:
  explicit BakeryLock(std::uint32_t capacity = 64)
      : capacity_(capacity),
        choosing_(std::make_unique<
                  platform::CacheLineAligned<std::atomic<bool>>[]>(capacity)),
        number_(std::make_unique<
                platform::CacheLineAligned<std::atomic<std::uint64_t>>[]>(
            capacity)) {
    for (std::uint32_t i = 0; i < capacity_; ++i) {
      choosing_[i].value.store(false, std::memory_order_relaxed);
      number_[i].value.store(0, std::memory_order_relaxed);
    }
  }

  void acquire() {
    const std::uint32_t i = platform::self_pid() % capacity_;
    choosing_[i].value.store(true, std::memory_order_seq_cst);
    std::uint64_t max = 0;
    for (std::uint32_t j = 0; j < capacity_; ++j) {
      const std::uint64_t n = number_[j].value.load(std::memory_order_seq_cst);
      if (n > max) max = n;
    }
    number_[i].value.store(max + 1, std::memory_order_seq_cst);
    choosing_[i].value.store(false, std::memory_order_seq_cst);

    platform::SpinWait w;
    for (std::uint32_t j = 0; j < capacity_; ++j) {
      if (j == i) continue;
      while (choosing_[j].value.load(std::memory_order_seq_cst)) w.pause();
      for (;;) {
        const std::uint64_t nj =
            number_[j].value.load(std::memory_order_seq_cst);
        if (nj == 0) break;
        const std::uint64_t ni =
            number_[i].value.load(std::memory_order_seq_cst);
        if (nj > ni || (nj == ni && j > i)) break;
        w.pause();
      }
    }
  }

  bool release() {
    const std::uint32_t i = platform::self_pid() % capacity_;
    // Resetting number[i] to its idle value is side-effect free when the
    // caller holds nothing (Appendix A.1): nothing to detect or fix.
    number_[i].value.store(0, std::memory_order_seq_cst);
    return true;
  }

  std::uint32_t capacity() const { return capacity_; }

 private:
  const std::uint32_t capacity_;
  std::unique_ptr<platform::CacheLineAligned<std::atomic<bool>>[]> choosing_;
  std::unique_ptr<platform::CacheLineAligned<std::atomic<std::uint64_t>>[]>
      number_;
};

}  // namespace resilock
