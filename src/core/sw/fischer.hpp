// Fischer's N-process mutual exclusion (as presented in Lamport 1987).
// Paper §5 and Appendix Figure 11.
//
//   start: while <x != 0> ;
//          <x := i> ; <delay> ;
//          if <x != i> goto start ;
//          critical section ;
//          x := 0
//
// Correctness relies on a timing assumption: `delay` must exceed the
// maximum time between a competitor's read of x == 0 and the visibility
// of its subsequent write (a real-time property; under arbitrary OS
// preemption it can be violated — tests bound thread counts accordingly).
//
// Unbalanced-unlock behavior (§5): a misused release sets x := 0 while
// T_i is in the CS; a waiter T_j then passes the gate — one misuse admits
// at most one extra thread. Nobody starves.
//
// Resilient fix (Figure 11): the exit path compares x with the caller's
// id and skips the reset on mismatch.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/resilience.hpp"
#include "platform/spin.hpp"
#include "platform/thread_registry.hpp"

namespace resilock {

template <Resilience R>
class BasicFischerLock {
 public:
  // `delay_spins` implements the <delay>; generous by default.
  explicit BasicFischerLock(std::uint32_t delay_spins = 2048)
      : delay_spins_(delay_spins) {}

  void acquire() {
    const std::uint32_t me = platform::self_pid() + 1;
    platform::SpinWait w;
    for (;;) {
      while (x_.load(std::memory_order_seq_cst) != 0) w.pause();
      x_.store(me, std::memory_order_seq_cst);
      for (std::uint32_t i = 0; i < delay_spins_; ++i)
        platform::cpu_relax();
      if (x_.load(std::memory_order_seq_cst) == me) return;
    }
  }

  bool release() {
    const std::uint32_t me = platform::self_pid() + 1;
    if constexpr (R == kResilient) {
      // Figure 11's fix: "if <x != i> goto exit".
      if (misuse_checks_enabled() &&
          x_.load(std::memory_order_seq_cst) != me) {
        return false;
      }
    }
    (void)me;
    x_.store(0, std::memory_order_seq_cst);
    return true;
  }

  static constexpr Resilience resilience() { return R; }

 private:
  std::atomic<std::uint32_t> x_{0};
  const std::uint32_t delay_spins_;
};

using FischerLock = BasicFischerLock<kOriginal>;
using FischerLockResilient = BasicFischerLock<kResilient>;

}  // namespace resilock
