// Lamport's fast mutual exclusion algorithms 1 and 2 (Lamport 1987).
// Paper §5 and Appendix Figures 12 & 13.
//
// Algorithm 1 (Figure 12) — two shared words x, y; correct under the same
// timing assumption as Fischer's lock (the <delay>):
//
//   start: <x := i> ;
//          if <y != 0> then goto start fi ;
//          <y := i> ;
//          if <x != i> then delay ;
//             if <y != i> then goto start fi ; fi
//          critical section ;
//          <y := 0>
//
// Algorithm 2 (Figure 13) — adds per-thread flags b[i] and is correct
// without timing assumptions (this is the classic "fast mutex").
//
// Unbalanced-unlock behavior (§5): a misused release writes y := 0 while
// T_i is in the CS; a third thread then sees all gates open and enters —
// mutex violation. It can also overwrite y between T_i's checks, sending
// T_i back to start repeatedly — starvation of another thread.
//
// Resilient fix (Figures 12/13): compare y with the caller's id on exit
// and skip the reset on mismatch. (Figure 13 in the paper prints the
// guard as "if <y = i> then goto exit", with the comparison inverted
// relative to Figure 12; we implement the evident intent, y != i -> do
// not reset, matching Figure 12 and the prose.)
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "core/resilience.hpp"
#include "platform/cacheline.hpp"
#include "platform/spin.hpp"
#include "platform/thread_registry.hpp"

namespace resilock {

template <Resilience R>
class BasicLamportFast1Lock {
 public:
  explicit BasicLamportFast1Lock(std::uint32_t delay_spins = 2048)
      : delay_spins_(delay_spins) {}

  void acquire() {
    const std::uint32_t me = platform::self_pid() + 1;
    platform::SpinWait w;
    for (;;) {
      x_.store(me, std::memory_order_seq_cst);
      if (y_.load(std::memory_order_seq_cst) != 0) {
        w.pause();
        continue;  // goto start
      }
      y_.store(me, std::memory_order_seq_cst);
      if (x_.load(std::memory_order_seq_cst) != me) {
        for (std::uint32_t i = 0; i < delay_spins_; ++i)
          platform::cpu_relax();
        if (y_.load(std::memory_order_seq_cst) != me) {
          w.pause();
          continue;  // goto start
        }
      }
      return;
    }
  }

  bool release() {
    if constexpr (R == kResilient) {
      if (misuse_checks_enabled() &&
          y_.load(std::memory_order_seq_cst) !=
              platform::self_pid() + 1) {
        return false;  // Figure 12's fix: "if <y != i> goto exit"
      }
    }
    y_.store(0, std::memory_order_seq_cst);
    return true;
  }

  static constexpr Resilience resilience() { return R; }

 private:
  std::atomic<std::uint32_t> x_{0};
  std::atomic<std::uint32_t> y_{0};
  const std::uint32_t delay_spins_;
};

template <Resilience R>
class BasicLamportFast2Lock {
 public:
  explicit BasicLamportFast2Lock(
      std::uint32_t capacity = platform::ThreadRegistry::kCapacity)
      : capacity_(capacity),
        b_(std::make_unique<
            platform::CacheLineAligned<std::atomic<bool>>[]>(capacity)) {
    for (std::uint32_t i = 0; i < capacity_; ++i)
      b_[i].value.store(false, std::memory_order_relaxed);
  }

  void acquire() {
    const std::uint32_t pid = platform::self_pid() % capacity_;
    const std::uint32_t me = pid + 1;
    platform::SpinWait w;
    for (;;) {
      b_[pid].value.store(true, std::memory_order_seq_cst);
      x_.store(me, std::memory_order_seq_cst);
      if (y_.load(std::memory_order_seq_cst) != 0) {
        b_[pid].value.store(false, std::memory_order_seq_cst);
        while (y_.load(std::memory_order_seq_cst) != 0) w.pause();
        continue;  // goto start
      }
      y_.store(me, std::memory_order_seq_cst);
      if (x_.load(std::memory_order_seq_cst) != me) {
        b_[pid].value.store(false, std::memory_order_seq_cst);
        for (std::uint32_t j = 0; j < capacity_; ++j) {
          while (b_[j].value.load(std::memory_order_seq_cst)) w.pause();
        }
        if (y_.load(std::memory_order_seq_cst) != me) {
          while (y_.load(std::memory_order_seq_cst) != 0) w.pause();
          continue;  // goto start
        }
      }
      return;
    }
  }

  bool release() {
    const std::uint32_t pid = platform::self_pid() % capacity_;
    if constexpr (R == kResilient) {
      if (misuse_checks_enabled() &&
          y_.load(std::memory_order_seq_cst) != pid + 1) {
        return false;  // the Figure 13 fix (comparison as in Figure 12)
      }
    }
    y_.store(0, std::memory_order_seq_cst);
    b_[pid].value.store(false, std::memory_order_seq_cst);
    return true;
  }

  static constexpr Resilience resilience() { return R; }

 private:
  const std::uint32_t capacity_;
  std::atomic<std::uint32_t> x_{0};
  std::atomic<std::uint32_t> y_{0};
  std::unique_ptr<platform::CacheLineAligned<std::atomic<bool>>[]> b_;
};

using LamportFast1Lock = BasicLamportFast1Lock<kOriginal>;
using LamportFast1LockResilient = BasicLamportFast1Lock<kResilient>;
using LamportFast2Lock = BasicLamportFast2Lock<kOriginal>;
using LamportFast2LockResilient = BasicLamportFast2Lock<kResilient>;

}  // namespace resilock
