// Test-and-Set family: TAS, TATAS, TATAS with exponential backoff.
// Paper §3.1; protocol from Mellor-Crummey & Scott 1991, §2.
//
// Original protocol: one shared word, UNLOCKED (0) when free. acquire()
// SWAPs LOCKED in until it reads back UNLOCKED; release() unconditionally
// stores UNLOCKED.
//
// Unbalanced-unlock behavior (original): resetting the word while another
// thread holds the lock admits exactly one extra waiter into the critical
// section — N misuses admit at most N extra threads. No starvation is
// introduced (the TAS family never guaranteed starvation freedom anyway).
//
// Resilient fix (paper Figure 2): the lock word stores the owner's
// PID + 1 instead of a boolean, re-purposing the same word (no new field,
// footprint unchanged — §2.3 requirement). acquire() must then use CAS
// instead of SWAP (a blind SWAP would clobber the owner's PID), and
// release() gains one extra load to compare the stored PID with the
// caller's — exactly the deltas whose cost Table 2 measures.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/resilience.hpp"
#include "core/verify_access.hpp"
#include "platform/backoff.hpp"
#include "platform/spin.hpp"
#include "platform/thread_registry.hpp"

namespace resilock {

enum class TasVariant {
  kTas,      // swap in a tight loop
  kTatas,    // read until free, then swap (test-and-test-and-set)
  kBackoff,  // TATAS + bounded exponential backoff between attempts
};

template <Resilience R, TasVariant V = TasVariant::kTatas>
class BasicTasLock {
  static constexpr std::uint32_t kUnlocked = 0;

  // Resilient flavor stores pid+1 so that pid 0 is distinguishable from
  // UNLOCKED; the original flavor stores the constant 1.
  static std::uint32_t self_tag() {
    if constexpr (R == kResilient) {
      return platform::self_pid() + 1;
    } else {
      return 1;
    }
  }

 public:
  BasicTasLock() = default;
  BasicTasLock(const BasicTasLock&) = delete;
  BasicTasLock& operator=(const BasicTasLock&) = delete;

  void acquire() {
    const std::uint32_t tag = self_tag();
    if constexpr (R == kOriginal) {
      // SWAP until we observe UNLOCKED.
      platform::SpinWait w;
      platform::ExponentialBackoff bo;
      while (word_.exchange(tag, std::memory_order_acquire) != kUnlocked) {
        if constexpr (V == TasVariant::kTas) {
          w.pause();
        } else if constexpr (V == TasVariant::kTatas) {
          while (word_.load(std::memory_order_relaxed) != kUnlocked)
            w.pause();
        } else {
          bo.pause();
          while (word_.load(std::memory_order_relaxed) != kUnlocked)
            w.pause();
        }
      }
    } else {
      // CAS(UNLOCKED -> my pid); a SWAP would overwrite the owner's PID.
      platform::SpinWait w;
      platform::ExponentialBackoff bo;
      for (;;) {
        std::uint32_t expected = kUnlocked;
        if (word_.compare_exchange_weak(expected, tag,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
          return;
        }
        if constexpr (V == TasVariant::kTas) {
          w.pause();
        } else if constexpr (V == TasVariant::kTatas) {
          while (word_.load(std::memory_order_relaxed) != kUnlocked)
            w.pause();
        } else {
          bo.pause();
          while (word_.load(std::memory_order_relaxed) != kUnlocked)
            w.pause();
        }
      }
    }
  }

  bool try_acquire() {
    std::uint32_t expected = kUnlocked;
    return word_.compare_exchange_strong(expected, self_tag(),
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  // Returns false iff an unbalanced unlock was detected (resilient only).
  bool release() {
    if constexpr (R == kOriginal) {
      word_.store(kUnlocked, std::memory_order_release);
      return true;
    } else {
      // The extra load the paper charges to the fix: only the thread
      // whose PID is stored may reset the word.
      if (misuse_checks_enabled() &&
          word_.load(std::memory_order_relaxed) != self_tag()) {
        return false;
      }
      word_.store(kUnlocked, std::memory_order_release);
      return true;
    }
  }

  bool is_locked() const {
    return word_.load(std::memory_order_acquire) != kUnlocked;
  }

  // Ownership query (resilient flavor only — the original lock word
  // cannot identify its holder; it reports true so cohort code compiles
  // uniformly).
  bool is_locked_by_self() const {
    if constexpr (R == kResilient) {
      return word_.load(std::memory_order_relaxed) == self_tag();
    } else {
      return true;
    }
  }

  static constexpr Resilience resilience() { return R; }

 private:
  friend struct VerifyAccess;
  std::atomic<std::uint32_t> word_{kUnlocked};
};

using TasLock = BasicTasLock<kOriginal, TasVariant::kTas>;
using TasLockResilient = BasicTasLock<kResilient, TasVariant::kTas>;
using TatasLock = BasicTasLock<kOriginal, TasVariant::kTatas>;
using TatasLockResilient = BasicTasLock<kResilient, TasVariant::kTatas>;
using TatasBackoffLock = BasicTasLock<kOriginal, TasVariant::kBackoff>;
using TatasBackoffLockResilient = BasicTasLock<kResilient, TasVariant::kBackoff>;

}  // namespace resilock
