// CLH list-based queue lock. Paper §3.5; protocol from Craig 1993 /
// Magnusson, Landin & Hagersten 1994.
//
// Like MCS, but each waiter spins on its *predecessor's* flag
// (`succ_must_wait`) rather than its own, and the releaser takes
// ownership of the predecessor's qnode for its next locking episode. The
// queue is bootstrapped with a dummy node whose flag is already false.
//
// Unbalanced-unlock behavior (original), per §3.5 and Figure 8: because a
// releaser inherits its predecessor's node, a misbehaving release makes
// the thread believe it owns a node that another thread still legitimately
// owns. Two contexts then hold aliases of one qnode; when both re-enqueue
// it, one succ_must_wait update can admit two waiters at once (mutex
// violation), and the racy updates can make the implicit list cyclic or
// lose the handoff so no successor is ever released (starvation of all
// other threads).
//
// Resilient fix (paper Figure 7): the ability of a misuse to reach an
// arbitrary qnode through `prev` is the root cause, so release() resets
// I.prev to null when done and treats a null prev on entry as an
// unbalanced unlock. qnode constructors initialize prev to null.
//
// Node ownership: a Context owns exactly one node between episodes; the
// lock owns whatever node the tail points at. Both are reclaimed on
// destruction (destroying a context while it is enqueued is undefined,
// as with any queue lock).
//
// Parking (src/park/): `succ_must_wait` is a 32-bit wait word (0 =
// released, 1 = successor must wait, 2 = successor parked). The waiter
// runs park::wait_word on its PREDECESSOR's word; the releaser
// publishes through park::wake_word (exchange + conditional
// futex_wake). misuse_wake() broadcast-wakes parked waiters after the
// shield absorbs an unlock-family misuse.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/resilience.hpp"
#include "core/verify_access.hpp"
#include "park/parking_lot.hpp"
#include "platform/cacheline.hpp"
#include "platform/spin.hpp"

namespace resilock {

template <Resilience R>
class BasicClhLock {
 public:
  struct alignas(platform::kCacheLineSize) QNode {
    std::atomic<std::uint32_t> succ_must_wait{park::kWordGranted};
    QNode* prev{nullptr};  // written/read only by the node's owner thread
  };

  // Per-thread context; owns one qnode between locking episodes.
  class Context {
   public:
    Context() : node_(new QNode) {}
    ~Context() { delete node_; }
    Context(const Context&) = delete;
    Context& operator=(const Context&) = delete;

   private:
    friend class BasicClhLock;
    friend struct VerifyAccess;
    QNode* node_;
  };

  BasicClhLock() : tail_(new QNode) {}
  ~BasicClhLock() { delete tail_.load(std::memory_order_relaxed); }
  BasicClhLock(const BasicClhLock&) = delete;
  BasicClhLock& operator=(const BasicClhLock&) = delete;

  void acquire(Context& ctx) {
    QNode* const I = ctx.node_;
    I->succ_must_wait.store(park::kWordWaiting, std::memory_order_relaxed);
    QNode* const pred = tail_.exchange(I, std::memory_order_acq_rel);
    I->prev = pred;
    park::wait_word(pred->succ_must_wait, &bay_);
  }

  bool release(Context& ctx) {
    QNode* const I = ctx.node_;
    if constexpr (R == kResilient) {
      // A node that was never enqueued (or was already released) has a
      // null prev: unbalanced unlock.
      if (misuse_checks_enabled() && I->prev == nullptr) return false;
    }
    QNode* const pred = I->prev;
    if constexpr (R == kResilient) {
      // Reset before publishing the handoff: once succ_must_wait is
      // false the successor may adopt I, so prev must already be scrubbed
      // (the fix of Figure 7, ordered to stay data-race-free).
      I->prev = nullptr;
    }
    park::wake_word(I->succ_must_wait);
    ctx.node_ = pred;  // take ownership of the predecessor's node
    return true;
  }

  // Shield rescue hook; see BasicMcsLock::misuse_wake.
  void misuse_wake() noexcept { bay_.misuse_wake(); }

  std::uint32_t parked_waiters() const noexcept {
    return bay_.parked_count();
  }

  static constexpr Resilience resilience() { return R; }

 private:
  friend struct VerifyAccess;
  alignas(platform::kCacheLineSize) std::atomic<QNode*> tail_;
  park::ParkBay bay_;
};

using ClhLock = BasicClhLock<kOriginal>;
using ClhLockResilient = BasicClhLock<kResilient>;

}  // namespace resilock
