// Back door used exclusively by the misuse-injection framework
// (src/verify) to observe and repair lock internals around scripted
// unbalanced-unlock scenarios — e.g. rescuing a thread that the *original*
// MCS protocol leaves spinning forever after a misuse (paper §3.4 case 1),
// so that experiments remain joinable. Not part of the public API.
#pragma once

namespace resilock {

struct VerifyAccess;  // each lock befriends this; defined in src/verify

}  // namespace resilock
