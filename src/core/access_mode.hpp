// AccessMode: how a thread holds (or is acquiring) a lock.
//
// The protection stack modeled every acquisition as exclusive through
// PR 3; the reader-writer family (core/rw/) breaks that assumption —
// read acquisitions of the same lock coexist, and read/write holds have
// asymmetric deadlock semantics (R–R dependencies can never wedge,
// Linux-lockdep-style). This tag threads the distinction through every
// layer that records acquisitions: HeldLockTable entries, the Shield
// record/validate/release path, lockdep acquisition stacks, and the
// order-graph edge recording.
//
// kExclusive is the mutex case and deliberately distinct from kWrite:
// a mutex acquisition is exclusive by protocol, a write acquisition is
// exclusive by *mode* of a lock that also has a shared mode. Both count
// as "write-involved" for deadlock analysis; only rw locks ever record
// kRead/kWrite.
#pragma once

#include <cstdint>

namespace resilock {

enum class AccessMode : std::uint8_t {
  kExclusive = 0,  // plain mutex acquisition
  kRead = 1,       // shared (reader) side of an rw lock
  kWrite = 2,      // exclusive (writer) side of an rw lock
};

constexpr const char* to_string(AccessMode m) noexcept {
  switch (m) {
    case AccessMode::kExclusive: return "exclusive";
    case AccessMode::kRead: return "read";
    case AccessMode::kWrite: return "write";
  }
  return "?";
}

// True when an acquisition in mode `m` can participate in a deadlock
// cycle against another read-mode hold: readers never block readers, so
// only a write-involved dependency is a deadlock ingredient.
constexpr bool is_write_involved(AccessMode m) noexcept {
  return m != AccessMode::kRead;
}

}  // namespace resilock
