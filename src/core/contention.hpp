// Lightweight contention telemetry, extracted from StatsLock and
// generalized so any wrapper can carry it.
//
// StatsLock counted contended acquisitions (a trylock probe failed
// first) as a cumulative statistic. The response engine
// (src/response/) needs the *live* side of the same signal — "how many
// threads are blocked on this lock right now?" — to escalate a misuse
// verdict while the damage radius is non-zero. ContentionProbe keeps
// both: a live waiter gauge and the cumulative contended-acquire
// count, at a cost the hot path can ignore (callers only touch the
// probe when they are about to block, i.e. when they are already
// losing; the uncontended path pays nothing).
#pragma once

#include <atomic>
#include <cstdint>

namespace resilock {

struct ContentionSnapshot {
  std::uint32_t waiters = 0;                 // blocked right now
  std::uint64_t contended_acquisitions = 0;  // cumulative
};

class ContentionProbe {
 public:
  // Bracket a blocking wait: begin before handing control to the base
  // protocol's acquire, end once the lock is granted.
  void begin_wait() noexcept {
    contended_.fetch_add(1, std::memory_order_relaxed);
    waiters_.fetch_add(1, std::memory_order_relaxed);
  }
  void end_wait() noexcept {
    waiters_.fetch_sub(1, std::memory_order_relaxed);
  }

  std::uint32_t waiters() const noexcept {
    return waiters_.load(std::memory_order_relaxed);
  }
  std::uint64_t contended_total() const noexcept {
    return contended_.load(std::memory_order_relaxed);
  }

  ContentionSnapshot snapshot() const noexcept {
    return {waiters(), contended_total()};
  }

  // Resets the cumulative count only; the waiter gauge is live state.
  void reset() noexcept {
    contended_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint32_t> waiters_{0};
  std::atomic<std::uint64_t> contended_{0};
};

}  // namespace resilock
