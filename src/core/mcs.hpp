// MCS list-based queue lock. Paper §3.4; protocol from Mellor-Crummey &
// Scott 1991 §2.
//
// Waiters form a singly-linked list; each spins on the `locked` flag of
// its own qnode (the per-thread context). acquire() SWAPs its qnode into
// the tail; release() hands the lock to I.next, or CASes the tail back to
// null when there is no successor.
//
// Unbalanced-unlock behavior (original), by the state of the misused
// qnode I (§3.4):
//   1. I.next == null  -> the misbehaving thread fails the tail CAS and
//      spins forever waiting for a successor that will never link itself:
//      Tm starves. No other thread starves.
//   2. I.next is a rogue pointer -> memory corruption (excluded here: the
//      C++ API takes the context by lvalue reference).
//   3. I.next points at a legal qnode that happens to be enqueued again
//      (stale next from a previous episode) -> that waiter is released
//      into the critical section: mutex violation.
//
// Resilient fix (paper Figure 6): acquire() always sets I.locked = true
// after the lock is acquired; release() treats I.locked == false as an
// unbalanced unlock and otherwise resets both I.locked and I.next, so a
// stale next can never be dereferenced by a later misuse.
//
// Parking (src/park/): `locked` is a 32-bit wait word in the parking
// protocol (0 = granted/free, 1 = waiting, 2 = parked in futex_wait).
// The contended wait runs through park::wait_word (bounded spin, then
// kernel sleep when RESILOCK_PARK is on) and the hand-off through
// park::wake_word (exchange + conditional futex_wake). misuse_wake()
// is the shield's rescue hook: broadcast-wake every parked waiter
// after an absorbed unlock-family misuse would otherwise leave them
// wedged.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/resilience.hpp"
#include "core/verify_access.hpp"
#include "park/parking_lot.hpp"
#include "platform/cacheline.hpp"
#include "platform/spin.hpp"

namespace resilock {

template <Resilience R>
class BasicMcsLock {
 public:
  struct alignas(platform::kCacheLineSize) QNode {
    std::atomic<QNode*> next{nullptr};
    std::atomic<std::uint32_t> locked{park::kWordGranted};
  };
  using Context = QNode;

  BasicMcsLock() = default;
  BasicMcsLock(const BasicMcsLock&) = delete;
  BasicMcsLock& operator=(const BasicMcsLock&) = delete;

  void acquire(QNode& I) {
    I.next.store(nullptr, std::memory_order_relaxed);
    QNode* const pred = tail_.exchange(&I, std::memory_order_acq_rel);
    if (pred != nullptr) {
      I.locked.store(park::kWordWaiting, std::memory_order_relaxed);
      pred->next.store(&I, std::memory_order_release);
      park::wait_word(I.locked, &bay_);
    }
    if constexpr (R == kResilient) {
      // Uniform "I hold the lock" marker, on both the contended and the
      // uncontended path (the original leaves `locked` inconsistent).
      I.locked.store(park::kWordHeldMarker, std::memory_order_relaxed);
    }
  }

  bool try_acquire(QNode& I) {
    I.next.store(nullptr, std::memory_order_relaxed);
    QNode* expected = nullptr;
    if (!tail_.compare_exchange_strong(expected, &I,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
      return false;
    }
    if constexpr (R == kResilient) {
      I.locked.store(park::kWordHeldMarker, std::memory_order_relaxed);
    }
    return true;
  }

  bool release(QNode& I) {
    if constexpr (R == kResilient) {
      if (misuse_checks_enabled() &&
          I.locked.load(std::memory_order_relaxed) ==
              park::kWordGranted) {
        return false;
      }
    }
    QNode* succ = I.next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      QNode* expected = &I;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        if constexpr (R == kResilient) {
          I.locked.store(park::kWordGranted, std::memory_order_relaxed);
        }
        return true;
      }
      // A successor is mid-enqueue: wait for it to link itself.
      platform::SpinWait w;
      while ((succ = I.next.load(std::memory_order_acquire)) == nullptr)
        w.pause();
    }
    if constexpr (R == kResilient) {
      // Scrub our node before the handoff so a later misuse of this
      // context cannot follow a stale next pointer (misuse case 3).
      I.next.store(nullptr, std::memory_order_relaxed);
      I.locked.store(park::kWordGranted, std::memory_order_relaxed);
    }
    park::wake_word(succ->locked);
    return true;
  }

  // Rescue hook for the shield: after it absorbs an unlock-family
  // misuse, waiters parked on this lock may be waiting for a hand-off
  // that will never come from the misbehaving thread. Broadcast-wake
  // them; each re-checks its wait word and re-parks or proceeds.
  void misuse_wake() noexcept { bay_.misuse_wake(); }

  std::uint32_t parked_waiters() const noexcept {
    return bay_.parked_count();
  }

  // Cohort detection property (Dice et al. 2012, §3.8.4): a linked
  // successor means another local thread is waiting. Conservative — a
  // waiter mid-enqueue is not counted, which only causes an unnecessary
  // global release, never a correctness issue.
  bool has_waiters(const QNode& I) const {
    return I.next.load(std::memory_order_relaxed) != nullptr;
  }

  bool owned_by_caller(const QNode& I) const {
    if constexpr (R == kResilient) {
      return I.locked.load(std::memory_order_relaxed) !=
             park::kWordGranted;
    } else {
      (void)I;
      return true;
    }
  }

  static constexpr Resilience resilience() { return R; }

 private:
  friend struct VerifyAccess;
  alignas(platform::kCacheLineSize) std::atomic<QNode*> tail_{nullptr};
  park::ParkBay bay_;
};

using McsLock = BasicMcsLock<kOriginal>;
using McsLockResilient = BasicMcsLock<kResilient>;

}  // namespace resilock
