#include "harness/evaluation.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "core/lock_registry.hpp"
#include "platform/env.hpp"
#include "platform/topology.hpp"
#include "runtime/barrier.hpp"
#include "runtime/rng.hpp"
#include "runtime/stats.hpp"
#include "runtime/thread_team.hpp"
#include "runtime/timer.hpp"

namespace resilock::harness {
namespace {

using platform::env_double;
using platform::env_u32;

bool is_pow2(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

// One worker's measured loop. Lock choice is a deterministic per-thread
// xoshiro stream so runs are reproducible and both flavors see the same
// access sequence.
void worker_loop(AnyLock& only_lock, std::vector<std::unique_ptr<AnyLock>>& locks,
                 const AppProfile& p, std::uint64_t ops, std::uint32_t tid,
                 std::uint64_t* sink) {
  runtime::Xoshiro256ss rng(0x5EEDBA5Eull * (tid + 1));
  std::uint64_t acc = 0;
  const bool single = locks.empty();
  for (std::uint64_t i = 0; i < ops; ++i) {
    AnyLock& lock =
        single ? only_lock : *locks[rng.bounded(locks.size())];
    if (p.uses_trylock) {
      // Trylock-based apps (fluidanimate, streamcluster): attempt, then
      // fall back to a blocking acquire — the usual application pattern.
      if (!lock.try_acquire()) lock.acquire();
    } else {
      lock.acquire();
    }
    if (p.cs_work) acc ^= runtime::busy_work(p.cs_work, acc + i);
    lock.release();
    if (p.out_work) acc ^= runtime::busy_work(p.out_work, acc + i);
  }
  *sink = acc;  // defeat dead-code elimination
}

}  // namespace

double env_scale() { return env_double("RESILOCK_SCALE", 1.0); }

std::uint32_t env_max_threads() {
  // The paper's max equals the machine's hardware thread count (48 on
  // its dual-socket Xeon); default to the same policy, capped at 48.
  const unsigned hw = platform::hardware_threads();
  const std::uint32_t dflt = std::min<std::uint32_t>(std::max(2u, hw), 48);
  return env_u32("RESILOCK_MAX_THREADS", dflt);
}

std::uint32_t env_reps() { return env_u32("RESILOCK_REPS", 5); }

std::vector<std::uint32_t> thread_axis(std::uint32_t max_threads) {
  std::vector<std::uint32_t> axis;
  for (std::uint32_t t = 1; t < max_threads; t *= 2) axis.push_back(t);
  axis.push_back(max_threads);
  // Deduplicate if max is itself a power of two already in the list.
  if (axis.size() >= 2 && axis[axis.size() - 2] == axis.back())
    axis.pop_back();
  return axis;
}

std::optional<RunResult> run_app(const AppProfile& profile,
                                 const std::string& lock_name, Resilience r,
                                 std::uint32_t threads,
                                 std::uint32_t repetitions) {
  if (threads == 0) return std::nullopt;
  if (profile.pow2_threads_only && !is_pow2(threads)) return std::nullopt;
  if (repetitions == 0) repetitions = env_reps();

  // CLH has no trylock (§6): trylock profiles skip it, as in Figure 14.
  if (profile.uses_trylock && lock_name == "CLH") return std::nullopt;

  const std::uint64_t ops = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(profile.ops_per_thread) * env_scale()));

  runtime::RunStats times;
  for (std::uint32_t rep = 0; rep < repetitions; ++rep) {
    // Fresh lock instances per repetition: no warm state carries over.
    auto single = make_lock(lock_name, r);
    std::vector<std::unique_ptr<AnyLock>> locks;
    if (profile.num_locks > 1) {
      locks.reserve(profile.num_locks);
      for (std::uint32_t i = 0; i < profile.num_locks; ++i)
        locks.push_back(make_lock(lock_name, r));
    }

    runtime::SenseBarrier barrier(threads);
    std::vector<std::uint64_t> sinks(threads, 0);
    std::atomic<std::uint64_t> t_start{0};
    std::atomic<std::uint64_t> t_stop{0};

    runtime::ThreadTeam::run(threads, [&](std::uint32_t tid) {
      barrier.arrive_and_wait();
      if (tid == 0) t_start.store(runtime::now_ns(),
                                  std::memory_order_relaxed);
      barrier.arrive_and_wait();
      worker_loop(*single, locks, profile, ops, tid, &sinks[tid]);
      barrier.arrive_and_wait();
      if (tid == 0) t_stop.store(runtime::now_ns(),
                                 std::memory_order_relaxed);
    });
    times.add(static_cast<double>(t_stop.load() - t_start.load()) * 1e-9);
  }

  RunResult res;
  res.seconds = times.min();  // the paper's best-of-N policy
  const double total_ops =
      static_cast<double>(ops) * threads * 2.0;  // lock + unlock calls
  res.mops = total_ops / res.seconds / 1e6;
  res.metric_value =
      profile.metric == Metric::kSeconds ? res.seconds : res.mops;
  return res;
}

std::optional<double> overhead_cell(const AppProfile& profile,
                                    const std::string& lock_name,
                                    std::uint32_t threads,
                                    std::uint32_t repetitions) {
  if (repetitions == 0) repetitions = env_reps();
  // Interleave the flavors rep-by-rep so slow machine drift (thermal,
  // co-tenants) hits both sides equally; then compare best-vs-best as
  // the paper does (§6).
  runtime::RunStats orig_times, resi_times;
  for (std::uint32_t rep = 0; rep < repetitions; ++rep) {
    const auto orig = run_app(profile, lock_name, kOriginal, threads, 1);
    const auto resi = run_app(profile, lock_name, kResilient, threads, 1);
    if (!orig || !resi) return std::nullopt;
    orig_times.add(orig->seconds);
    resi_times.add(resi->seconds);
  }
  // Both metrics reduce to a time ratio (Mops is ops/second with the
  // same op count on both sides).
  return runtime::overhead_percent(orig_times.min(), resi_times.min());
}

}  // namespace resilock::harness
