#include "harness/app_profiles.hpp"

#include <stdexcept>

namespace resilock::harness {

// Traits are scaled so a full original-vs-resilient comparison of all
// profiles completes in minutes on a laptop; RESILOCK_SCALE (see
// evaluation.cpp) multiplies ops_per_thread for larger runs. Rationale
// per profile (sources: SPLASH-2 characterization [Woo et al. 1995],
// PARSEC characterization [Bienia 2011], and the paper's §6 remarks):
//
//   Barnes        n-body; per-cell tree locks: many locks, short CS,
//                 substantial compute between acquisitions.
//   Dedup         pipeline with queue locks: moderate lock count,
//                 medium CS (queue ops), medium outside work.
//   Ferret        similarity-search pipeline: like dedup with fewer
//                 locks and more outside work per stage.
//   Fluidanimate  fine-grained per-grid-cell locks, TRYLOCK-based,
//                 power-of-two threads required; tiny CS.
//   FMM           fast multipole: tree + list locks, low contention.
//   Ocean         few global locks, mostly barriers; power-of-two
//                 threads; long compute phases.
//   Radiosity     task queues with heavy sharing; the paper singles it
//                 out as >25% of time at synchronization: small CS,
//                 very little work outside — high contention.
//   Raytrace      work-stealing off a few queues: lock-intensive, the
//                 paper reports large TAS/Ticket overheads here.
//   Streamcluster tiny CSs around shared counters + trylock; the other
//                 lock-intensive app of §6.
//   Synthetic     empty CS, back-to-back lock()/unlock() on one lock —
//                 the paper's omp_set_lock microbenchmark; throughput
//                 in Mops.
const std::vector<AppProfile>& app_profiles() {
  static const std::vector<AppProfile> profiles = {
      // name          locks  cs   out   ops/thr  trylock pow2  metric
      {"Barnes",        2048,  40,  600,  60'000, false, false, Metric::kSeconds},
      {"Dedup",          256,  80,  400,  50'000, false, false, Metric::kSeconds},
      {"Ferret",          64,  60,  500,  50'000, false, false, Metric::kSeconds},
      {"Fluidanimate",  4096,  10,   80, 150'000, true,  true,  Metric::kSeconds},
      {"FMM",           1024,  50,  700,  50'000, false, false, Metric::kSeconds},
      {"Ocean",           16,  30,  900,  40'000, false, true,  Metric::kSeconds},
      {"Radiosity",       64,  25,   60, 150'000, false, false, Metric::kSeconds},
      {"Raytrace",         8,  15,   40, 200'000, false, false, Metric::kSeconds},
      {"Streamcluster",    4,  10,   30, 200'000, true,  false, Metric::kSeconds},
      {"Synthetic",        1,   0,    0, 400'000, false, false, Metric::kMopsPerSec},
  };
  return profiles;
}

const AppProfile& app_profile(const std::string& name) {
  for (const auto& p : app_profiles()) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("resilock: unknown app profile: " + name);
}

}  // namespace resilock::harness
