// Application profiles: the SPLASH-2x / PARSEC 3.0 substitution.
//
// The paper (§6) measures nine lock-sensitive applications plus one
// synthetic through LiTL interposition. The measured quantity — overhead
// of the resilient fix — is a property of the lock-API usage pattern,
// not of the applications' numerics, so each profile reproduces the
// traits that drive it: number of distinct locks, critical-section
// length, work between critical sections, trylock usage, thread-count
// constraints, and the reported metric. DESIGN.md §2.1 documents this
// substitution; per-profile rationale is in app_profiles.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace resilock::harness {

enum class Metric {
  kSeconds,     // execution time (lower is better; paper reports time)
  kMopsPerSec,  // synthetic app: million lock-API calls per second
};

struct AppProfile {
  std::string name;
  std::uint32_t num_locks;      // distinct lock instances
  std::uint32_t cs_work;        // busy-work units inside the CS
  std::uint32_t out_work;       // busy-work units between CSs
  std::uint64_t ops_per_thread; // lock acquisitions per thread
  bool uses_trylock;            // fluidanimate/streamcluster (§6)
  bool pow2_threads_only;       // fluidanimate/ocean (§6)
  Metric metric;
};

// The ten applications of Table 2 / Figure 14, in table order:
// Barnes, Dedup, Ferret, Fluidanimate, FMM, Ocean, Radiosity, Raytrace,
// Streamcluster, Synthetic.
const std::vector<AppProfile>& app_profiles();

// Look up a profile by (case-sensitive) name; throws std::out_of_range.
const AppProfile& app_profile(const std::string& name);

}  // namespace resilock::harness
