// Evaluation engine for Table 2 and Figure 14.
//
// run_app() drives one (profile, lock, flavor, threads) configuration:
// every thread performs ops_per_thread acquisitions of pseudo-randomly
// chosen lock instances, doing cs_work inside and out_work outside each
// critical section, all behind a start barrier. The paper's methodology
// (§6) is followed: each configuration runs `repetitions` times and the
// best run of the original is compared with the best run of the
// resilient flavor.
//
// Environment knobs (mirroring LiTL's env-var driven workflow):
//   RESILOCK_SCALE        multiplies ops_per_thread (default 1.0; use
//                         >1 for lab machines, <1 for quick smokes)
//   RESILOCK_MAX_THREADS  caps the Figure 14 thread axis (default: the
//                         hardware thread count, capped at 48 — the
//                         paper's own policy; set 48 to reproduce the
//                         paper's axis exactly)
//   RESILOCK_REPS         repetitions per configuration (default 3;
//                         paper uses 5)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/resilience.hpp"
#include "harness/app_profiles.hpp"

namespace resilock::harness {

struct RunResult {
  double seconds = 0.0;  // wall time of the timed region (best run)
  double mops = 0.0;     // million lock-API calls per second (best run)
  // The profile's preferred metric value (seconds or mops).
  double metric_value = 0.0;
};

// Runs one configuration; returns nullopt when the configuration is
// inapplicable, matching the paper's gaps: CLH with a trylock profile
// ('*' in Figure 14) or a non-power-of-two thread count for a pow2-only
// app ('#').
std::optional<RunResult> run_app(const AppProfile& profile,
                                 const std::string& lock_name, Resilience r,
                                 std::uint32_t threads,
                                 std::uint32_t repetitions = 0);

// Percentage overhead of the resilient flavor vs the original for one
// cell of Table 2 / Figure 14 (nullopt when inapplicable).
std::optional<double> overhead_cell(const AppProfile& profile,
                                    const std::string& lock_name,
                                    std::uint32_t threads,
                                    std::uint32_t repetitions = 0);

// Environment-derived defaults (exposed for the bench binaries).
double env_scale();
std::uint32_t env_max_threads();
std::uint32_t env_reps();

// The Figure 14 thread axis: 1,2,4,...,max (paper: 1..48).
std::vector<std::uint32_t> thread_axis(std::uint32_t max_threads);

}  // namespace resilock::harness
