// The kernel-sleep primitive under the parking tier: futex(2) on
// Linux, a hashed mutex+condvar stripe table everywhere else.
//
// Contract (both backends):
//
//   futex_wait(word, expected, rel_timeout)
//     Sleeps while *word == expected. Returns kValueChanged without
//     sleeping if the word already differs (the waker changed it
//     between the caller's last load and the wait — the classic race
//     futex closes in the kernel). May return spuriously (kWoken with
//     the word unchanged, or kInterrupted on EINTR); callers MUST
//     re-check their predicate and re-wait. rel_timeout is RELATIVE
//     (nullptr = forever).
//
//   futex_wait_until(word, expected, deadline_mono_ns)
//     Like futex_wait but against an ABSOLUTE CLOCK_MONOTONIC
//     deadline in ns — the timed paths' native vocabulary. On Linux
//     this is FUTEX_WAIT_BITSET (absolute monotonic timeout, bitset
//     MATCH_ANY so plain FUTEX_WAKE still reaches it); the fallback
//     reaches pthread_cond_timedwait on a CLOCK_MONOTONIC-conditioned
//     condvar, so the deadline is honored exactly instead of being
//     re-derived (and rounded up) from a relative duration.
//
//   futex_wake(word, n)
//     Wakes up to n waiters sleeping on the word's ADDRESS. The word
//     is never dereferenced by the waker on either backend (Linux
//     keys on the physical address; the fallback hashes the pointer
//     value), so waking a word whose memory has been freed is safe —
//     which is exactly what the misuse-rescue path needs, since a
//     bogus unlock can race an exiting waiter whose queue node is
//     already gone.
//
// Wakers that need a waiter to observe progress must CHANGE the word
// before waking: a wake delivered between a waiter's predicate check
// and its futex_wait syscall is lost, but a changed word makes that
// late futex_wait return kValueChanged instead of sleeping.
//
// The fallback is compiled unconditionally (namespace `fallback`) so
// Linux test builds can exercise it; futex_wait/futex_wake dispatch
// to the native backend at compile time.
#pragma once

#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <ctime>
#include <mutex>

#include "platform/chrono_to_timespec.hpp"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>
#define RESILOCK_HAVE_FUTEX 1
#else
#define RESILOCK_HAVE_FUTEX 0
#endif

// The fallback stripes ride pthread directly where pthread exists:
// std::condition_variable has no portable way to wait against an
// absolute CLOCK_MONOTONIC deadline (wait_for re-derives a relative
// duration, wait_until may re-base onto the system clock), and the
// timed-park contract is exact-deadline. pthread_condattr_setclock
// pins the condvar to CLOCK_MONOTONIC where available (not macOS).
#if defined(__unix__) || defined(__APPLE__)
#include <pthread.h>
#define RESILOCK_FALLBACK_PTHREAD 1
#if !defined(__APPLE__)
#define RESILOCK_FALLBACK_COND_SETCLOCK 1
#else
#define RESILOCK_FALLBACK_COND_SETCLOCK 0
#endif
#else
#define RESILOCK_FALLBACK_PTHREAD 0
#define RESILOCK_FALLBACK_COND_SETCLOCK 0
#endif

namespace resilock::park {

enum class WaitResult : std::uint8_t {
  kWoken,         // futex_wake (or a spurious kernel wake) — re-check
  kValueChanged,  // *word != expected at sleep time; never slept
  kTimedOut,      // rel_timeout expired
  kInterrupted,   // signal (EINTR) — re-check and re-wait
};

// futex operates on a bare 32-bit word; std::atomic<uint32_t> must be
// layout-identical for the address pun to be sound.
static_assert(sizeof(std::atomic<std::uint32_t>) == sizeof(std::uint32_t));
static_assert(alignof(std::atomic<std::uint32_t>) >= 4);
static_assert(std::atomic<std::uint32_t>::is_always_lock_free);

// ---------------------------------------------------------------------
// Portable fallback: 64 mutex+condvar stripes keyed by word address.
// ---------------------------------------------------------------------

namespace fallback {

#if RESILOCK_FALLBACK_PTHREAD

struct Stripe {
  pthread_mutex_t mu;
  pthread_cond_t cv;
  Stripe() noexcept {
    pthread_mutex_init(&mu, nullptr);
    pthread_condattr_t attr;
    pthread_condattr_init(&attr);
#if RESILOCK_FALLBACK_COND_SETCLOCK
    pthread_condattr_setclock(&attr, CLOCK_MONOTONIC);
#endif
    pthread_cond_init(&cv, &attr);
    pthread_condattr_destroy(&attr);
  }
};

#else

struct Stripe {
  std::mutex mu;
  std::condition_variable cv;
};

#endif

inline Stripe& stripe_for(const void* addr) {
  static std::array<Stripe, 64>& stripes = *new std::array<Stripe, 64>;
  // Fibonacci hash of the pointer bits; low bits of lock-word
  // addresses are alignment zeros.
  const auto p = reinterpret_cast<std::uintptr_t>(addr);
  return stripes[(p * 0x9E3779B97F4A7C15ull) >> 58];
}

#if RESILOCK_FALLBACK_PTHREAD

// Sleeps until the ABSOLUTE CLOCK_MONOTONIC deadline. Exact on
// setclock platforms: the deadline timespec goes straight into
// pthread_cond_timedwait, nothing re-derived, nothing rounded.
inline WaitResult wait_until(const std::atomic<std::uint32_t>* word,
                             std::uint32_t expected,
                             std::uint64_t deadline_mono_ns) {
  Stripe& s = stripe_for(word);
  pthread_mutex_lock(&s.mu);
  // Checked under the stripe mutex: a waker changes the word, then
  // takes this mutex before notifying, so either we see the change
  // here or our wait starts before the notify — no lost wakeup.
  if (word->load(std::memory_order_acquire) != expected) {
    pthread_mutex_unlock(&s.mu);
    return WaitResult::kValueChanged;
  }
#if RESILOCK_FALLBACK_COND_SETCLOCK
  const timespec abs = platform::timespec_from_ns(deadline_mono_ns);
  const int rc = pthread_cond_timedwait(&s.cv, &s.mu, &abs);
  pthread_mutex_unlock(&s.mu);
  return rc == ETIMEDOUT ? WaitResult::kTimedOut : WaitResult::kWoken;
#else
  // No pthread_condattr_setclock (macOS): re-base the monotonic
  // deadline onto CLOCK_REALTIME per wait. A wall-clock step can cut
  // one sleep short or stretch it; the monotonic re-check bounds the
  // damage to that one trip and never times out early.
  for (;;) {
    const std::uint64_t now = platform::monotonic_now_ns();
    if (now >= deadline_mono_ns) {
      pthread_mutex_unlock(&s.mu);
      return WaitResult::kTimedOut;
    }
    const timespec abs = platform::timespec_from_ns(
        platform::saturating_add_ns(platform::clock_now_ns(CLOCK_REALTIME),
                                    deadline_mono_ns - now));
    if (pthread_cond_timedwait(&s.cv, &s.mu, &abs) != ETIMEDOUT) {
      pthread_mutex_unlock(&s.mu);
      return WaitResult::kWoken;
    }
  }
#endif
}

inline WaitResult wait(const std::atomic<std::uint32_t>* word,
                       std::uint32_t expected,
                       const timespec* rel_timeout) {
  if (rel_timeout != nullptr) {
    return wait_until(
        word, expected,
        platform::saturating_add_ns(
            platform::monotonic_now_ns(),
            platform::ns_from_timespec(*rel_timeout)));
  }
  Stripe& s = stripe_for(word);
  pthread_mutex_lock(&s.mu);
  if (word->load(std::memory_order_acquire) != expected) {
    pthread_mutex_unlock(&s.mu);
    return WaitResult::kValueChanged;
  }
  pthread_cond_wait(&s.cv, &s.mu);
  pthread_mutex_unlock(&s.mu);
  return WaitResult::kWoken;
}

inline void wake(const std::atomic<std::uint32_t>* word,
                 std::uint32_t count) {
  Stripe& s = stripe_for(word);
  // Empty critical section orders this wake after any in-progress
  // predicate check in wait() — without it, the broadcast could fire
  // between a waiter's word load and its cond_wait.
  pthread_mutex_lock(&s.mu);
  pthread_mutex_unlock(&s.mu);
  // Stripes are shared by many words; a targeted signal could wake
  // the wrong word's waiter and strand ours. Always broadcast —
  // waiters re-check their predicate anyway.
  (void)count;
  pthread_cond_broadcast(&s.cv);
}

#else  // !RESILOCK_FALLBACK_PTHREAD

// No pthread: std::condition_variable, with the absolute-deadline
// wait approximated by re-deriving the remaining duration from the
// monotonic clock each trip (never times out early; may oversleep by
// the condvar's internal rounding).
inline WaitResult wait_until(const std::atomic<std::uint32_t>* word,
                             std::uint32_t expected,
                             std::uint64_t deadline_mono_ns) {
  Stripe& s = stripe_for(word);
  std::unique_lock<std::mutex> lk(s.mu);
  if (word->load(std::memory_order_acquire) != expected) {
    return WaitResult::kValueChanged;
  }
  for (;;) {
    const std::uint64_t now = platform::monotonic_now_ns();
    if (now >= deadline_mono_ns) return WaitResult::kTimedOut;
    const auto rel = std::chrono::nanoseconds(deadline_mono_ns - now);
    if (s.cv.wait_for(lk, rel) != std::cv_status::timeout) {
      return WaitResult::kWoken;
    }
  }
}

inline WaitResult wait(const std::atomic<std::uint32_t>* word,
                       std::uint32_t expected,
                       const timespec* rel_timeout) {
  Stripe& s = stripe_for(word);
  std::unique_lock<std::mutex> lk(s.mu);
  // Checked under the stripe mutex: a waker changes the word, then
  // takes this mutex before notifying, so either we see the change
  // here or our wait starts before the notify — no lost wakeup.
  if (word->load(std::memory_order_acquire) != expected) {
    return WaitResult::kValueChanged;
  }
  if (rel_timeout == nullptr) {
    s.cv.wait(lk);
    return WaitResult::kWoken;
  }
  const auto rel = std::chrono::seconds(rel_timeout->tv_sec) +
                   std::chrono::nanoseconds(rel_timeout->tv_nsec);
  return s.cv.wait_for(lk, rel) == std::cv_status::timeout
             ? WaitResult::kTimedOut
             : WaitResult::kWoken;
}

inline void wake(const std::atomic<std::uint32_t>* word,
                 std::uint32_t count) {
  Stripe& s = stripe_for(word);
  {
    // Empty critical section orders this wake after any in-progress
    // predicate check in wait() — without it, notify could fire
    // between a waiter's word load and its cv.wait.
    std::lock_guard<std::mutex> lk(s.mu);
  }
  // Stripes are shared by many words; a targeted notify_one could
  // wake the wrong word's waiter and strand ours. Always broadcast —
  // waiters re-check their predicate anyway.
  (void)count;
  s.cv.notify_all();
}

#endif  // RESILOCK_FALLBACK_PTHREAD

}  // namespace fallback

// ---------------------------------------------------------------------
// Native futex backend + dispatch.
// ---------------------------------------------------------------------

#if RESILOCK_HAVE_FUTEX

inline WaitResult futex_wait(const std::atomic<std::uint32_t>* word,
                             std::uint32_t expected,
                             const timespec* rel_timeout = nullptr) {
  const long rc = ::syscall(
      SYS_futex, reinterpret_cast<const std::uint32_t*>(word),
      FUTEX_WAIT_PRIVATE, expected, rel_timeout, nullptr, 0);
  if (rc == 0) return WaitResult::kWoken;
  switch (errno) {
    case EAGAIN: return WaitResult::kValueChanged;
    case ETIMEDOUT: return WaitResult::kTimedOut;
    default: return WaitResult::kInterrupted;  // EINTR
  }
}

// FUTEX_WAIT_BITSET takes its timeout as an ABSOLUTE timespec on
// CLOCK_MONOTONIC (FUTEX_CLOCK_REALTIME unset), which is exactly the
// timed paths' deadline vocabulary — no relative re-derivation, no
// rounding. MATCH_ANY keeps plain FUTEX_WAKE effective: the kernel
// wakes on any bitset intersection, and FUTEX_WAIT waiters queue as
// MATCH_ANY themselves, so both wait flavors share one wake side.
inline WaitResult futex_wait_until(const std::atomic<std::uint32_t>* word,
                                   std::uint32_t expected,
                                   std::uint64_t deadline_mono_ns) {
  const timespec abs = platform::timespec_from_ns(deadline_mono_ns);
  const long rc = ::syscall(
      SYS_futex, reinterpret_cast<const std::uint32_t*>(word),
      FUTEX_WAIT_BITSET_PRIVATE, expected, &abs, nullptr,
      FUTEX_BITSET_MATCH_ANY);
  if (rc == 0) return WaitResult::kWoken;
  switch (errno) {
    case EAGAIN: return WaitResult::kValueChanged;
    case ETIMEDOUT: return WaitResult::kTimedOut;
    default: return WaitResult::kInterrupted;  // EINTR
  }
}

inline void futex_wake(const std::atomic<std::uint32_t>* word,
                       std::uint32_t count) {
  ::syscall(SYS_futex, reinterpret_cast<const std::uint32_t*>(word),
            FUTEX_WAKE_PRIVATE, static_cast<int>(count), nullptr, nullptr,
            0);
}

#else

inline WaitResult futex_wait(const std::atomic<std::uint32_t>* word,
                             std::uint32_t expected,
                             const timespec* rel_timeout = nullptr) {
  return fallback::wait(word, expected, rel_timeout);
}

inline WaitResult futex_wait_until(const std::atomic<std::uint32_t>* word,
                                   std::uint32_t expected,
                                   std::uint64_t deadline_mono_ns) {
  return fallback::wait_until(word, expected, deadline_mono_ns);
}

inline void futex_wake(const std::atomic<std::uint32_t>* word,
                       std::uint32_t count) {
  fallback::wake(word, count);
}

#endif

inline void futex_wake_one(const std::atomic<std::uint32_t>* word) {
  futex_wake(word, 1);
}

inline void futex_wake_all(const std::atomic<std::uint32_t>* word) {
  futex_wake(word, ~std::uint32_t{0} >> 1);  // INT_MAX waiters
}

}  // namespace resilock::park
