// The kernel-sleep primitive under the parking tier: futex(2) on
// Linux, a hashed mutex+condvar stripe table everywhere else.
//
// Contract (both backends):
//
//   futex_wait(word, expected, rel_timeout)
//     Sleeps while *word == expected. Returns kValueChanged without
//     sleeping if the word already differs (the waker changed it
//     between the caller's last load and the wait — the classic race
//     futex closes in the kernel). May return spuriously (kWoken with
//     the word unchanged, or kInterrupted on EINTR); callers MUST
//     re-check their predicate and re-wait. rel_timeout is RELATIVE
//     (nullptr = forever).
//
//   futex_wake(word, n)
//     Wakes up to n waiters sleeping on the word's ADDRESS. The word
//     is never dereferenced by the waker on either backend (Linux
//     keys on the physical address; the fallback hashes the pointer
//     value), so waking a word whose memory has been freed is safe —
//     which is exactly what the misuse-rescue path needs, since a
//     bogus unlock can race an exiting waiter whose queue node is
//     already gone.
//
// Wakers that need a waiter to observe progress must CHANGE the word
// before waking: a wake delivered between a waiter's predicate check
// and its futex_wait syscall is lost, but a changed word makes that
// late futex_wait return kValueChanged instead of sleeping.
//
// The fallback is compiled unconditionally (namespace `fallback`) so
// Linux test builds can exercise it; futex_wait/futex_wake dispatch
// to the native backend at compile time.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <ctime>
#include <mutex>

#if defined(__linux__)
#include <cerrno>
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>
#define RESILOCK_HAVE_FUTEX 1
#else
#define RESILOCK_HAVE_FUTEX 0
#endif

namespace resilock::park {

enum class WaitResult : std::uint8_t {
  kWoken,         // futex_wake (or a spurious kernel wake) — re-check
  kValueChanged,  // *word != expected at sleep time; never slept
  kTimedOut,      // rel_timeout expired
  kInterrupted,   // signal (EINTR) — re-check and re-wait
};

// futex operates on a bare 32-bit word; std::atomic<uint32_t> must be
// layout-identical for the address pun to be sound.
static_assert(sizeof(std::atomic<std::uint32_t>) == sizeof(std::uint32_t));
static_assert(alignof(std::atomic<std::uint32_t>) >= 4);
static_assert(std::atomic<std::uint32_t>::is_always_lock_free);

// ---------------------------------------------------------------------
// Portable fallback: 64 mutex+condvar stripes keyed by word address.
// ---------------------------------------------------------------------

namespace fallback {

struct Stripe {
  std::mutex mu;
  std::condition_variable cv;
};

inline Stripe& stripe_for(const void* addr) {
  static std::array<Stripe, 64>& stripes = *new std::array<Stripe, 64>;
  // Fibonacci hash of the pointer bits; low bits of lock-word
  // addresses are alignment zeros.
  const auto p = reinterpret_cast<std::uintptr_t>(addr);
  return stripes[(p * 0x9E3779B97F4A7C15ull) >> 58];
}

inline WaitResult wait(const std::atomic<std::uint32_t>* word,
                       std::uint32_t expected,
                       const timespec* rel_timeout) {
  Stripe& s = stripe_for(word);
  std::unique_lock<std::mutex> lk(s.mu);
  // Checked under the stripe mutex: a waker changes the word, then
  // takes this mutex before notifying, so either we see the change
  // here or our wait starts before the notify — no lost wakeup.
  if (word->load(std::memory_order_acquire) != expected) {
    return WaitResult::kValueChanged;
  }
  if (rel_timeout == nullptr) {
    s.cv.wait(lk);
    return WaitResult::kWoken;
  }
  const auto rel = std::chrono::seconds(rel_timeout->tv_sec) +
                   std::chrono::nanoseconds(rel_timeout->tv_nsec);
  return s.cv.wait_for(lk, rel) == std::cv_status::timeout
             ? WaitResult::kTimedOut
             : WaitResult::kWoken;
}

inline void wake(const std::atomic<std::uint32_t>* word,
                 std::uint32_t count) {
  Stripe& s = stripe_for(word);
  {
    // Empty critical section orders this wake after any in-progress
    // predicate check in wait() — without it, notify could fire
    // between a waiter's word load and its cv.wait.
    std::lock_guard<std::mutex> lk(s.mu);
  }
  // Stripes are shared by many words; a targeted notify_one could
  // wake the wrong word's waiter and strand ours. Always broadcast —
  // waiters re-check their predicate anyway.
  (void)count;
  s.cv.notify_all();
}

}  // namespace fallback

// ---------------------------------------------------------------------
// Native futex backend + dispatch.
// ---------------------------------------------------------------------

#if RESILOCK_HAVE_FUTEX

inline WaitResult futex_wait(const std::atomic<std::uint32_t>* word,
                             std::uint32_t expected,
                             const timespec* rel_timeout = nullptr) {
  const long rc = ::syscall(
      SYS_futex, reinterpret_cast<const std::uint32_t*>(word),
      FUTEX_WAIT_PRIVATE, expected, rel_timeout, nullptr, 0);
  if (rc == 0) return WaitResult::kWoken;
  switch (errno) {
    case EAGAIN: return WaitResult::kValueChanged;
    case ETIMEDOUT: return WaitResult::kTimedOut;
    default: return WaitResult::kInterrupted;  // EINTR
  }
}

inline void futex_wake(const std::atomic<std::uint32_t>* word,
                       std::uint32_t count) {
  ::syscall(SYS_futex, reinterpret_cast<const std::uint32_t*>(word),
            FUTEX_WAKE_PRIVATE, static_cast<int>(count), nullptr, nullptr,
            0);
}

#else

inline WaitResult futex_wait(const std::atomic<std::uint32_t>* word,
                             std::uint32_t expected,
                             const timespec* rel_timeout = nullptr) {
  return fallback::wait(word, expected, rel_timeout);
}

inline void futex_wake(const std::atomic<std::uint32_t>* word,
                       std::uint32_t count) {
  fallback::wake(word, count);
}

#endif

inline void futex_wake_one(const std::atomic<std::uint32_t>* word) {
  futex_wake(word, 1);
}

inline void futex_wake_all(const std::atomic<std::uint32_t>* word) {
  futex_wake(word, ~std::uint32_t{0} >> 1);  // INT_MAX waiters
}

}  // namespace resilock::park
