// Parking slow path: the spin-then-park waiter loop, the deadline
// wait behind the shim's timedlock entry points, and the ParkBay
// rescue registry. Design overview in parking_lot.hpp.
#include "park/parking_lot.hpp"

#include <new>

#include "lockdep/event_ring.hpp"
#include "platform/spin.hpp"
#include "runtime/timer.hpp"

namespace resilock::park {

namespace {

// kParkBegin/kParkEnd span markers around a kernel sleep. The wait
// word's address stands in as the "lock" identity (one waiter, one
// word, one span track) and the shield-stamped class hint rides as
// the class tag so offline reports can group parks by lock class.
inline void emit_park_span(lockdep::EventKind kind, const void* word,
                           std::uint32_t cls_hint) {
  lockdep::TraceBuffer::instance().emit(kind, word, cls_hint);
}

}  // namespace

// ---------------------------------------------------------------------
// ParkBay.
// ---------------------------------------------------------------------

ParkBay::Slots* ParkBay::slots() noexcept {
  Slots* s = slots_.load(std::memory_order_acquire);
  if (s != nullptr) return s;
  auto* fresh = new (std::nothrow) Slots;
  if (fresh == nullptr) return nullptr;
  if (slots_.compare_exchange_strong(s, fresh,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
    return fresh;
  }
  delete fresh;  // lost the install race; `s` holds the winner
  return s;
}

int ParkBay::register_parker(std::atomic<std::uint32_t>* word) noexcept {
  Slots* s = slots();
  if (s == nullptr) return -1;
  for (std::uint32_t i = 0; i < kSlots; ++i) {
    std::atomic<std::uint32_t>* expected = nullptr;
    if (s->ptr[i].compare_exchange_strong(expected, word,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
      return static_cast<int>(i);
    }
  }
  return -1;  // all 64 slots taken; caller stays on the spin path
}

void ParkBay::unregister_parker(int slot) noexcept {
  if (slot < 0) return;
  Slots* s = slots_.load(std::memory_order_acquire);
  if (s == nullptr) return;
  s->ptr[static_cast<std::uint32_t>(slot)].store(
      nullptr, std::memory_order_release);
}

void ParkBay::misuse_wake() noexcept {
  ParkStats::instance().misuse_wakes.fetch_add(
      1, std::memory_order_relaxed);
  Slots* s = slots_.load(std::memory_order_acquire);
  if (s == nullptr) return;
  for (std::uint32_t i = 0; i < kSlots; ++i) {
    std::atomic<std::uint32_t>* w =
        s->ptr[i].load(std::memory_order_acquire);
    // Advisory broadcast: the word is an ADDRESS to the futex layer,
    // never dereferenced, so racing a waiter that already woke,
    // deregistered, and freed its queue node is harmless.
    if (w != nullptr) futex_wake_all(w);
  }
}

// ---------------------------------------------------------------------
// wait_word: the queue locks' contended slow path.
// ---------------------------------------------------------------------

std::uint32_t wait_word(std::atomic<std::uint32_t>& word,
                        ParkBay* bay) noexcept {
  platform::SpinWait w;
  const std::uint32_t budget = park_spins();
  for (std::uint32_t i = 0; i < budget; ++i) {
    const std::uint32_t v = word.load(std::memory_order_acquire);
    if (v != kWordWaiting && v != kWordParked) return v;
    w.pause();
  }
  int slot = -1;
  if (parking_enabled() && bay != nullptr) {
    slot = bay->register_parker(&word);
  }
  if (slot < 0) {
    // Parking off, or the bay is full. An unregistered sleeper would
    // be invisible to misuse_wake — never park unrescuable; keep the
    // (yielding, via SpinWait) spin loop instead.
    for (;;) {
      const std::uint32_t v = word.load(std::memory_order_acquire);
      if (v != kWordWaiting && v != kWordParked) return v;
      w.pause();
    }
  }
  ParkStats& g = ParkStats::instance();
  ThreadParkTally& tally = ThreadParkTally::mine();
  std::uint32_t v;
  for (;;) {
    std::uint32_t cur = kWordWaiting;
    if (!word.compare_exchange_strong(cur, kWordParked,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire) &&
        cur != kWordParked) {
      v = cur;  // granted between the spin phase and the flip
      break;
    }
    // The word is kWordParked (flipped by us now or left from the
    // previous round after a rescue wake); the releaser's exchange
    // will see it and futex_wake.
    const bool trace = lockdep::span_tracing_enabled();
    const std::uint64_t t0 = runtime::now_ns();
    if (trace) {
      emit_park_span(lockdep::EventKind::kParkBegin, &word,
                     tally.cls_hint);
    }
    bay->note_parked();
    g.currently_parked.fetch_add(1, std::memory_order_relaxed);
    const WaitResult r = futex_wait(&word, kWordParked, nullptr);
    g.currently_parked.fetch_sub(1, std::memory_order_relaxed);
    bay->note_unparked();
    const std::uint64_t dt = runtime::now_ns() - t0;
    if (trace) {
      emit_park_span(lockdep::EventKind::kParkEnd, &word,
                     tally.cls_hint);
    }
    // kValueChanged never slept (the hand-off raced ahead of the
    // syscall) — not a park, just a cheap detour through the kernel.
    const bool slept = r != WaitResult::kValueChanged;
    if (slept) {
      tally.parks += 1;
      tally.park_ns += dt;
      g.parks.fetch_add(1, std::memory_order_relaxed);
    }
    v = word.load(std::memory_order_acquire);
    if (v != kWordWaiting && v != kWordParked) {
      if (slept) {
        tally.wakes += 1;
        g.wakes.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    // Woken without a grant: a misuse_wake rescue broadcast, a
    // signal, or futex spuriousness. Re-check and re-park.
    g.wakes_spurious.fetch_add(1, std::memory_order_relaxed);
  }
  bay->unregister_parker(slot);
  return v;
}

// ---------------------------------------------------------------------
// park_until: one bounded sleep for the timed paths.
// ---------------------------------------------------------------------

bool park_until(const std::atomic<std::uint32_t>& word,
                std::uint32_t expected,
                std::uint64_t deadline_ns) noexcept {
  ParkStats& g = ParkStats::instance();
  ThreadParkTally& tally = ThreadParkTally::mine();
  if (platform::monotonic_now_ns() >= deadline_ns) {
    // Already expired — a zero-length kernel wait would still syscall.
    g.timeouts.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const bool trace = lockdep::span_tracing_enabled();
  const std::uint64_t t0 = runtime::now_ns();
  if (trace) {
    emit_park_span(lockdep::EventKind::kParkBegin, &word,
                   tally.cls_hint);
  }
  g.currently_parked.fetch_add(1, std::memory_order_relaxed);
  // The deadline goes to the kernel (or the fallback's monotonic
  // condvar) ABSOLUTE — not re-derived as a relative duration — so
  // the wait expires at deadline_ns exactly, however many spurious
  // trips precede it.
  const WaitResult r = futex_wait_until(&word, expected, deadline_ns);
  g.currently_parked.fetch_sub(1, std::memory_order_relaxed);
  const std::uint64_t dt = runtime::now_ns() - t0;
  if (trace) {
    emit_park_span(lockdep::EventKind::kParkEnd, &word, tally.cls_hint);
  }
  if (r != WaitResult::kValueChanged) {
    tally.parks += 1;
    tally.park_ns += dt;
    g.parks.fetch_add(1, std::memory_order_relaxed);
  }
  if (r == WaitResult::kTimedOut) {
    g.timeouts.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (r == WaitResult::kWoken) {
    tally.wakes += 1;
    g.wakes.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

}  // namespace resilock::park
