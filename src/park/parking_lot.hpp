// The parking tier: spin-then-park waiting for the queue locks, with
// misuse-aware rescue wakeups.
//
// Every lock in the repo used to busy-spin. Past core count that burns
// the machine — at 4x oversubscription a spinning waiter steals the
// very quantum the holder needs to release. This layer gives the queue
// locks (MCS, CLH, Ticket, the HMCS leaf level) a slow path that spins
// a bounded number of times (RESILOCK_PARK_SPINS, default 512) on the
// per-waiter flag word and then sleeps in the kernel via futex.hpp,
// gated by RESILOCK_PARK (default off). The uncontended fast path is
// untouched: parking code runs only after the bounded spin loses.
//
// Word protocol. A parking wait word is a 32-bit atomic with three
// states:
//
//   kWordGranted (0)  the hand-off happened — proceed
//   kWordWaiting (1)  enqueued, spinning
//   kWordParked  (2)  enqueued, (about to be) asleep in futex_wait
//
// The waiter CASes 1 -> 2 before sleeping; the releaser hands off with
// an unconditional exchange(0) and issues futex_wake only when the
// exchange returned 2. The exchange — never a plain store — is what
// makes the hand-off race-free: a waiter that flips to kWordParked
// after the releaser's store would sleep forever, but an exchange
// publishes 0 atomically, so the waiter's CAS either loses (sees 0,
// proceeds) or wins before the exchange (releaser sees 2, wakes).
//
// Misuse rescue (the point of putting parking in *this* repo): the
// worst victim of an unbalanced/non-owner unlock is a parked waiter —
// a spinner wastes CPU but recovers on the next hand-off; a parked
// thread sleeps until a wake that may never come. Each parking lock
// owns a ParkBay, a lazily allocated registry of the wait-word
// addresses of its currently-parking waiters. When the shield absorbs
// an unlock-family misuse on a lock with parked waiters it calls the
// lock's misuse_wake(), which futex_wakes every registered address —
// never touching protocol state, never dereferencing the words (a
// registered address may already be dead; see futex.hpp). Woken
// waiters re-check their predicate and re-park or proceed; the rescue
// is purely advisory and therefore always safe to issue.
//
// Attribution. The park layer sits BELOW observe/ and shield/ (core
// locks include it), so it cannot name lockdep classes itself.
// Instead each park is tallied in a thread-local ThreadParkTally; the
// shield stamps the tally's cls_hint around the contended acquire and
// snapshots the delta into observe::on_parked afterwards. The same
// hint rides on kParkBegin/kParkEnd trace spans (emitted when
// RESILOCK_TELEMETRY_SPANS is on) so offline reports can rebuild the
// per-class park table from a trace alone.
#pragma once

#include <atomic>
#include <cstdint>

#include "park/futex.hpp"
#include "platform/chrono_to_timespec.hpp"
#include "platform/env.hpp"

namespace resilock::park {

inline constexpr std::uint32_t kWordGranted = 0;
inline constexpr std::uint32_t kWordWaiting = 1;
inline constexpr std::uint32_t kWordParked = 2;
// Resilient queue locks reuse their wait word as the "I hold the
// lock" marker after acquisition (paper Fig. 6); any nonzero value
// works, and staying inside the protocol vocabulary keeps debugging
// dumps readable.
inline constexpr std::uint32_t kWordHeldMarker = kWordWaiting;

// ---------------------------------------------------------------------
// Knobs: RESILOCK_PARK (master gate) and RESILOCK_PARK_SPINS (spin
// budget before the first futex_wait), both runtime-settable with the
// same relaxed-flag + RAII-guard shape as lockstat/span tracing.
// ---------------------------------------------------------------------

namespace detail {
inline std::atomic<bool>& park_flag() {
  static std::atomic<bool> f{platform::env_flag("RESILOCK_PARK", false)};
  return f;
}
inline std::atomic<std::uint32_t>& spins_knob() {
  static std::atomic<std::uint32_t> n{
      platform::env_u32("RESILOCK_PARK_SPINS", 512)};
  return n;
}
}  // namespace detail

inline bool parking_enabled() noexcept {
  return detail::park_flag().load(std::memory_order_relaxed);
}

inline void set_parking(bool on) noexcept {
  detail::park_flag().store(on, std::memory_order_relaxed);
}

inline std::uint32_t park_spins() noexcept {
  return detail::spins_knob().load(std::memory_order_relaxed);
}

inline void set_park_spins(std::uint32_t n) noexcept {
  detail::spins_knob().store(n, std::memory_order_relaxed);
}

class ParkingGuard {
 public:
  explicit ParkingGuard(bool on) : previous_(parking_enabled()) {
    set_parking(on);
  }
  ~ParkingGuard() { set_parking(previous_); }
  ParkingGuard(const ParkingGuard&) = delete;
  ParkingGuard& operator=(const ParkingGuard&) = delete;

 private:
  const bool previous_;
};

class ParkSpinsGuard {
 public:
  explicit ParkSpinsGuard(std::uint32_t n) : previous_(park_spins()) {
    set_park_spins(n);
  }
  ~ParkSpinsGuard() { set_park_spins(previous_); }
  ParkSpinsGuard(const ParkSpinsGuard&) = delete;
  ParkSpinsGuard& operator=(const ParkSpinsGuard&) = delete;

 private:
  const std::uint32_t previous_;
};

// ---------------------------------------------------------------------
// Process-wide parking counters (MetricsRegistry's park.* section).
// ---------------------------------------------------------------------

struct ParkStatsSnapshot {
  std::uint64_t parks = 0;           // futex_wait calls that slept
  std::uint64_t wakes = 0;           // parks that woke to a grant
  std::uint64_t wakes_spurious = 0;  // parks that woke and re-checked
  std::uint64_t timeouts = 0;        // deadline expiries (park_until)
  std::uint64_t misuse_wakes = 0;    // rescue broadcasts issued
  std::uint64_t currently_parked = 0;
};

class ParkStats {
 public:
  static ParkStats& instance() {
    // Leaked like LockStat: lock teardown may park during shutdown.
    static ParkStats* inst = new ParkStats;
    return *inst;
  }

  ParkStatsSnapshot snapshot() const noexcept {
    ParkStatsSnapshot s;
    s.parks = parks.load(std::memory_order_relaxed);
    s.wakes = wakes.load(std::memory_order_relaxed);
    s.wakes_spurious = wakes_spurious.load(std::memory_order_relaxed);
    s.timeouts = timeouts.load(std::memory_order_relaxed);
    s.misuse_wakes = misuse_wakes.load(std::memory_order_relaxed);
    s.currently_parked =
        currently_parked.load(std::memory_order_relaxed);
    return s;
  }

  void reset() noexcept {
    parks.store(0, std::memory_order_relaxed);
    wakes.store(0, std::memory_order_relaxed);
    wakes_spurious.store(0, std::memory_order_relaxed);
    timeouts.store(0, std::memory_order_relaxed);
    misuse_wakes.store(0, std::memory_order_relaxed);
    // currently_parked is a live gauge, not a tally — never reset.
  }

  std::atomic<std::uint64_t> parks{0};
  std::atomic<std::uint64_t> wakes{0};
  std::atomic<std::uint64_t> wakes_spurious{0};
  std::atomic<std::uint64_t> timeouts{0};
  std::atomic<std::uint64_t> misuse_wakes{0};
  std::atomic<std::uint64_t> currently_parked{0};
};

// ---------------------------------------------------------------------
// Thread-local park tally, for per-class lockstat attribution.
// ---------------------------------------------------------------------

inline constexpr std::uint32_t kNoClsHint = 0xFFFFFFFFu;

struct ThreadParkTally {
  std::uint64_t parks = 0;
  std::uint64_t park_ns = 0;
  std::uint64_t wakes = 0;
  // Lockdep class of the acquire in progress; stamped by the shield
  // around the contended window, kNoClsHint otherwise. Rides on
  // kParkBegin/kParkEnd trace spans as the class tag.
  std::uint32_t cls_hint = kNoClsHint;

  static ThreadParkTally& mine() noexcept {
    thread_local ThreadParkTally t;
    return t;
  }
};

// ---------------------------------------------------------------------
// ParkBay: the per-lock rescue registry.
// ---------------------------------------------------------------------

class ParkBay {
 public:
  ParkBay() = default;
  ~ParkBay() { delete slots_.load(std::memory_order_relaxed); }
  ParkBay(const ParkBay&) = delete;
  ParkBay& operator=(const ParkBay&) = delete;

  static constexpr std::uint32_t kSlots = 64;

  // Registers a wait word about to park; returns the slot index, or
  // -1 when every slot is taken (or allocation failed). A waiter that
  // cannot register MUST NOT park — an unregistered sleeper would be
  // invisible to misuse_wake and could wedge forever on an absorbed
  // unlock. wait_word() keeps such waiters on the spin path instead.
  int register_parker(std::atomic<std::uint32_t>* word) noexcept;
  void unregister_parker(int slot) noexcept;

  // Rescue broadcast: futex_wake every registered word. Touches no
  // protocol state and never dereferences the words, so it is safe to
  // call from any thread at any time — including racing a waiter that
  // is already gone. Spurious wakes are absorbed by the waiters'
  // predicate re-check.
  void misuse_wake() noexcept;

  // Live count of waiters inside their park window (between the
  // pre-park registration and the post-wake deregistration).
  std::uint32_t parked_count() const noexcept {
    return parked_.load(std::memory_order_acquire);
  }

  void note_parked() noexcept {
    parked_.fetch_add(1, std::memory_order_acq_rel);
  }
  void note_unparked() noexcept {
    parked_.fetch_sub(1, std::memory_order_acq_rel);
  }

 private:
  struct Slots {
    std::atomic<std::atomic<std::uint32_t>*> ptr[kSlots] = {};
  };
  Slots* slots() noexcept;  // lazy CAS-install; nullptr on OOM

  std::atomic<Slots*> slots_{nullptr};
  std::atomic<std::uint32_t> parked_{0};
};

// ---------------------------------------------------------------------
// The waiter primitives.
// ---------------------------------------------------------------------

// Spin-then-park until `word` leaves {kWordWaiting, kWordParked};
// returns the terminal value (kWordGranted in the queue-lock protocol,
// but any other value a releaser publishes works). `bay` is the
// owning lock's rescue registry; pass nullptr to forbid parking (the
// waiter then spins indefinitely, i.e. pre-parking behavior).
std::uint32_t wait_word(std::atomic<std::uint32_t>& word,
                        ParkBay* bay) noexcept;

// Hand-off: atomically publish kWordGranted and wake the waiter if it
// was parked. The unconditional exchange is load-bearing — see the
// word-protocol comment at the top of this file.
inline void wake_word(std::atomic<std::uint32_t>& word) noexcept {
  const std::uint32_t prev =
      word.exchange(kWordGranted, std::memory_order_acq_rel);
  if (prev == kWordParked) futex_wake_all(&word);
}

// One bounded sleep on `word` while it equals `expected`, no later
// than the absolute CLOCK_MONOTONIC deadline `deadline_ns`. Returns
// false when the deadline expired (counted in ParkStats::timeouts),
// true otherwise — including spurious wakes; the caller loops on its
// own predicate. Backs the shim's timedlock entry points.
bool park_until(const std::atomic<std::uint32_t>& word,
                std::uint32_t expected,
                std::uint64_t deadline_ns) noexcept;

// ---------------------------------------------------------------------
// TimedGate: deadline-bounded acquisition over any try-lockable lock.
// ---------------------------------------------------------------------
//
// The queue locks have no cancellation path (abandoning a queue node
// mid-wait would corrupt the hand-off chain), so timed acquisition is
// built OUTSIDE the protocol: a try-acquire loop that parks on a
// generation word between attempts. Every release bumps the epoch and
// wakes the timed waiters; they re-try, and give up at the deadline
// without ever having entered the queue — which is also why a timeout
// adds no lockdep edge (the try path never records one).
class TimedGate {
 public:
  // Release-side hook: call after the underlying lock is released.
  // Cheap when nobody is in a timed wait (one fence + one load).
  void on_release() noexcept {
    // Dekker with acquire_until's waiter registration: the waiter
    // increments waiters_ then re-tries the lock; we release the lock
    // then read waiters_. The fences make at least one side see the
    // other — either the waiter's retry wins the lock, or we see
    // waiters_ != 0 and wake.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_relaxed) == 0) return;
    epoch_.fetch_add(1, std::memory_order_release);
    futex_wake_all(&epoch_);
  }

  // Runs `try_lock` until it succeeds or the CLOCK_MONOTONIC deadline
  // passes. Returns true on acquisition, false on timeout.
  template <typename Try>
  bool acquire_until(Try&& try_lock, std::uint64_t deadline_ns) {
    if (try_lock()) return true;
    for (;;) {
      waiters_.fetch_add(1, std::memory_order_seq_cst);
      const std::uint32_t e = epoch_.load(std::memory_order_acquire);
      if (try_lock()) {
        waiters_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
      const bool alive = park_until(epoch_, e, deadline_ns);
      waiters_.fetch_sub(1, std::memory_order_relaxed);
      if (!alive) {
        // Deadline passed while parked; one last grab-if-free, per
        // the POSIX "shall lock if available" clause.
        return static_cast<bool>(try_lock());
      }
    }
  }

  std::uint32_t waiters() const noexcept {
    return waiters_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint32_t> epoch_{0};
  std::atomic<std::uint32_t> waiters_{0};
};

}  // namespace resilock::park
