#include "verify/hier_matrix.hpp"

#include <atomic>
#include <cstdio>
#include <memory>

#include "core/ahmcs.hpp"
#include "core/hclh.hpp"
#include "core/hmcs.hpp"
#include "core/tas.hpp"
#include "lockdep/event_ring.hpp"
#include "lockdep/lockdep.hpp"
#include "platform/topology.hpp"
#include "response/response.hpp"
#include "shield/policy.hpp"
#include "shield/shield.hpp"
#include "verify/checkers.hpp"

namespace resilock::verify {
namespace {

using lockdep::EventKind;
using lockdep::Graph;
using lockdep::TraceBuffer;
using lockdep::TraceEvent;

std::uint64_t report_count() { return Graph::instance().stats().reports(); }

void clear_trace() { TraceBuffer::instance().drain_all(); }

// The @class= abort trap: counts would-be deaths instead of dying.
std::atomic<std::uint64_t> g_abort_count{0};
void counting_abort_trap(response::ResponseEvent, const void*) {
  g_abort_count.fetch_add(1, std::memory_order_relaxed);
}

bool label_is(lockdep::ClassId cls, const char* want) {
  const char* l = Graph::instance().label_of(cls);
  return l != nullptr && want != nullptr &&
         std::string_view(l) == want;
}

// Two trees, both nested A-then-B from two threads concurrently: no
// report, and the cross-tree edges that DO record never connect two
// levels of the same tree.
template <typename L, typename Make>
bool run_ordered(const Make& make) {
  auto a = make();
  auto b = make();
  using Ctx = typename L::Context;
  const std::uint64_t before = report_count();
  std::atomic<bool> go{false};
  auto worker = [&] {
    Ctx ca, cb;
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    for (int i = 0; i < 40; ++i) {
      a->acquire(ca);
      b->acquire(cb);
      b->release(cb);
      a->release(ca);
    }
  };
  Probe p1(worker);
  Probe p2(worker);
  go.store(true, std::memory_order_release);
  p1.join();
  p2.join();
  return report_count() == before;
}

// A-then-B, then B-then-A, then the reversed order replayed: the
// same-level cross-tree pair must be reported exactly once, attributed
// to the leaf level's label on both ends.
template <typename L, typename Make>
void run_inversion(const Make& make, std::uint32_t leaf_level,
                   const char* leaf_label, bool& at_level, bool& once) {
  auto a = make();
  auto b = make();
  using Ctx = typename L::Context;
  Ctx ca, cb;
  clear_trace();
  a->acquire(ca);
  b->acquire(cb);  // edges A.* -> B.*
  b->release(cb);
  a->release(ca);
  b->acquire(cb);
  a->acquire(ca);  // closes B.leaf -> A.leaf (and the cross-level pairs)
  a->release(ca);
  b->release(cb);
  b->acquire(cb);  // replay the reversed order: no new edge, no report
  a->acquire(ca);
  a->release(ca);
  b->release(cb);
  const lockdep::ClassId a_leaf = a->level_class(leaf_level);
  const lockdep::ClassId b_leaf = b->level_class(leaf_level);
  std::uint64_t leaf_pair_reports = 0;
  bool leaf_labels_right = false;
  for (const TraceEvent& e : TraceBuffer::instance().drain_all()) {
    if (e.kind != EventKind::kOrderInversion) continue;
    const bool same_level_pair =
        (e.a == b_leaf && e.b == a_leaf) ||
        (e.a == a_leaf && e.b == b_leaf);
    if (!same_level_pair) continue;
    ++leaf_pair_reports;
    // Attribution check: BOTH endpoints carry the level's label — the
    // report names "hmcs.level2 -> hmcs.level2", not raw pointers.
    leaf_labels_right =
        label_is(e.a, leaf_label) && label_is(e.b, leaf_label);
  }
  at_level = leaf_pair_reports >= 1 && leaf_labels_right;
  once = leaf_pair_reports == 1;
}

// One contended tree: after a multi-threaded storm, no order edge may
// connect any two of the tree's own level classes.
template <typename L, typename Make>
bool run_climb(const Make& make, std::uint32_t levels) {
  auto l = make();
  using Ctx = typename L::Context;
  const std::uint64_t before = report_count();
  std::atomic<bool> go{false};
  auto worker = [&] {
    Ctx c;
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    for (int i = 0; i < 60; ++i) {
      l->acquire(c);
      l->release(c);
    }
  };
  Probe p1(worker);
  Probe p2(worker);
  Probe p3(worker);
  go.store(true, std::memory_order_release);
  p1.join();
  p2.join();
  p3.join();
  const Graph& g = Graph::instance();
  for (std::uint32_t i = 0; i < levels; ++i) {
    for (std::uint32_t j = 0; j < levels; ++j) {
      if (i == j) continue;
      if (g.has_edge(l->level_class(i), l->level_class(j))) return false;
    }
  }
  return report_count() == before;
}

// Misused release at depth, injected from a second thread while the
// legitimate holder is inside the CS: must be refused BEFORE the
// parent hand-off (the holder's own release stays clean and the tree
// stays functional), and the trace event must name the entry level's
// class.
template <typename L, typename Make>
void run_misuse(const Make& make, std::uint32_t leaf_level,
                const char* leaf_label, bool& intercepted,
                bool& attributed) {
  auto l = make();
  using Ctx = typename L::Context;
  Ctx hold;
  clear_trace();
  l->acquire(hold);
  std::atomic<bool> refused{false};
  {
    Probe p([&] {
      Ctx bogus;  // never acquired: the §5 misused release at depth
      refused.store(!l->release(bogus), std::memory_order_release);
    });
    p.join();
  }
  // Intercepted before corruption: the holder's release is still
  // honored and a fresh episode round-trips.
  const bool holder_clean = l->release(hold);
  l->acquire(hold);
  const bool functional = l->release(hold);
  intercepted =
      refused.load(std::memory_order_acquire) && holder_clean && functional;
  attributed = false;
  for (const TraceEvent& e : TraceBuffer::instance().drain_all()) {
    if (e.kind == EventKind::kUnbalancedUnlock &&
        e.a == l->level_class(leaf_level) &&
        label_is(e.a, leaf_label)) {
      attributed = true;
    }
  }
}

// HCLH variant: the protocol is immune (paper Table 1) — the gate is
// that a bogus release is HARMLESS: the holder's grant, the global
// queue, and subsequent episodes are unaffected.
template <typename L, typename Make>
void run_misuse_immune(const Make& make, bool& intercepted,
                       bool& attributed) {
  auto l = make();
  using Ctx = typename L::Context;
  Ctx hold;
  l->acquire(hold);
  {
    Probe p([&] {
      Ctx bogus;
      l->release(bogus);  // immune: a store nobody observes
    });
    p.join();
  }
  const bool holder_clean = l->release(hold);
  l->acquire(hold);
  const bool functional = l->release(hold);
  intercepted = holder_clean && functional;
  attributed = true;  // nothing to attribute: no misuse is detectable
}

// AHMCS only: after the adaptive streak the context joins at the ROOT;
// a double release of that context must be attributed to level 0, not
// the leaf the fast path bypassed.
template <typename L, typename Make>
bool run_adaptive_attribution(const Make& make) {
  auto l = make();
  using Ctx = typename L::Context;
  Ctx c;
  // 8 uncontended leaf-path acquisitions build the streak; the 9th
  // enters at the root.
  for (int i = 0; i < 9; ++i) {
    l->acquire(c);
    l->release(c);
  }
  clear_trace();
  const bool refused = !l->release(c);  // double release, root-entry ctx
  bool tagged_root = false;
  for (const TraceEvent& e : TraceBuffer::instance().drain_all()) {
    if (e.kind == EventKind::kUnbalancedUnlock &&
        e.a == l->level_class(0)) {
      tagged_root = true;
    }
  }
  return refused && tagged_root;
}

// An "inversion@class=<leaf label>=abort" rule: fires (via the trap)
// for the same-level cross-tree inversion, and does NOT fire for an
// inversion among unrelated per-instance shield classes.
template <typename L, typename Make>
void run_scoped_rule(const Make& make, const char* leaf_label,
                     bool& fired, bool& scoped) {
  response::ResponseRulesGuard rules(std::string("inversion@class=") +
                                     leaf_label + "=abort;lockdep=log");
  response::ScopedAbortHandler trap(&counting_abort_trap);
  using Ctx = typename L::Context;
  {
    auto a = make();
    auto b = make();
    Ctx ca, cb;
    const std::uint64_t before =
        g_abort_count.load(std::memory_order_relaxed);
    a->acquire(ca);
    b->acquire(cb);
    b->release(cb);
    a->release(ca);
    b->acquire(cb);
    a->acquire(ca);  // closes the leaf-level pair: the scope matches
    a->release(ca);
    b->release(cb);
    fired = g_abort_count.load(std::memory_order_relaxed) > before;
  }
  {
    // Negative control: an AB/BA among two per-instance (unlabeled)
    // shield classes reports through the lockdep=log rule, never the
    // scoped abort.
    Shield<TasLock> x, y;
    const std::uint64_t before =
        g_abort_count.load(std::memory_order_relaxed);
    const std::uint64_t reports_before = report_count();
    x.acquire();
    y.acquire();
    y.release();
    x.release();
    y.acquire();
    x.acquire();
    x.release();
    y.release();
    scoped = g_abort_count.load(std::memory_order_relaxed) == before &&
             report_count() > reports_before;
  }
}

template <typename L, typename Make>
HierReport run_config(const char* name, const Make& make,
                      std::uint32_t levels, const char* leaf_label,
                      bool detects_misuse, bool adaptive) {
  HierReport r;
  r.config = name;
  const std::uint32_t leaf = levels - 1;
  r.ordered_clean = run_ordered<L>(make);
  run_inversion<L>(make, leaf, leaf_label, r.inversion_at_level,
                   r.inversion_once);
  r.climb_edge_free = run_climb<L>(make, levels);
  if (detects_misuse) {
    run_misuse<L>(make, leaf, leaf_label, r.misuse_intercepted,
                  r.misuse_attributed);
    if (adaptive) {
      r.misuse_attributed =
          r.misuse_attributed && run_adaptive_attribution<L>(make);
    }
  } else {
    run_misuse_immune<L>(make, r.misuse_intercepted, r.misuse_attributed);
  }
  run_scoped_rule<L>(make, leaf_label, r.scoped_rule_fired,
                     r.scoped_rule_scoped);
  return r;
}

}  // namespace

std::vector<HierReport> run_hier_matrix() {
  // Pin every policy surface so results do not depend on the
  // environment; the scoped-rule gate installs its own rule set.
  response::ResponseRulesGuard rules("");
  shield::ShieldPolicyGuard policy(shield::ShieldPolicy::kSuppress);
  lockdep::LockdepModeGuard mode(lockdep::LockdepMode::kReport);

  using Hmcs = BasicHmcsLock<kResilient>;
  using Hclh = BasicHclhLock<kResilient>;
  using Ahmcs = BasicAhmcsLock<kResilient>;
  const std::vector<std::uint32_t> two{2};
  const std::vector<std::uint32_t> three{2, 2};

  std::vector<HierReport> out;
  out.push_back(run_config<Hmcs>(
      "HMCS-2lvl", [&] { return std::make_unique<Hmcs>(two); }, 2,
      "hmcs.level1", true, false));
  out.push_back(run_config<Hmcs>(
      "HMCS-3lvl", [&] { return std::make_unique<Hmcs>(three); }, 3,
      "hmcs.level2", true, false));
  out.push_back(run_config<Hclh>(
      "HCLH-2lvl",
      [&] {
        return std::make_unique<Hclh>(platform::Topology::uniform(2, 2));
      },
      2, "hclh.level1", false, false));
  out.push_back(run_config<Ahmcs>(
      "AHMCS-2lvl", [&] { return std::make_unique<Ahmcs>(two); }, 2,
      "ahmcs.level1", true, true));
  out.push_back(run_config<Ahmcs>(
      "AHMCS-3lvl", [&] { return std::make_unique<Ahmcs>(three); }, 3,
      "ahmcs.level2", true, true));
  return out;
}

void print_hier_matrix(const std::vector<HierReport>& reports) {
  std::printf("%-12s %8s %9s %5s %6s %7s %8s %6s %7s\n", "Config",
              "ordered", "inv@lvl", "once", "climb", "misuse", "attrib",
              "rule", "scoped");
  for (const auto& r : reports) {
    std::printf("%-12s %8s %9s %5s %6s %7s %8s %6s %7s\n",
                r.config.c_str(), r.ordered_clean ? "clean" : "NOISY",
                r.inversion_at_level ? "yes" : "MISSED",
                r.inversion_once ? "yes" : "SPAM",
                r.climb_edge_free ? "free" : "EDGED",
                r.misuse_intercepted ? "yes" : "NO",
                r.misuse_attributed ? "yes" : "NO",
                r.scoped_rule_fired ? "fires" : "DEAD",
                r.scoped_rule_scoped ? "yes" : "LEAKY");
  }
}

}  // namespace resilock::verify
