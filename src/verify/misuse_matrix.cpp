#include "verify/misuse_matrix.hpp"

#include <atomic>
#include <cstdio>
#include <memory>

#include "core/hbo.hpp"
#include "core/hclh.hpp"
#include "core/lock_registry.hpp"
#include "core/rw/crw.hpp"
#include "core/sw/bakery.hpp"
#include "core/sw/fischer.hpp"
#include "core/sw/lamport_fast.hpp"
#include "core/sw/peterson.hpp"
#include "platform/thread_registry.hpp"
#include "response/response.hpp"
#include "shield/policy.hpp"
#include "verify/access.hpp"
#include "verify/checkers.hpp"

namespace resilock::verify {
namespace {

using platform::self_pid;

// Scenario outcome for one flavor.
struct FlavorOutcome {
  bool violated = false;
  bool tm_starved = false;
  bool others_starved = false;
  bool detected = false;
  bool functional_after = false;
};

// ---------------------------------------------------------------------
// Generic script for plain locks whose misuse can only admit an extra
// thread (TAS family, HBO, Fischer, Lamport): T1 holds; Tm (this thread)
// misuses release(); T2 tries to enter. Original: T2 gets in (violation).
// Resilient: the misuse is refused and T2 stays out until T1 leaves.
// ---------------------------------------------------------------------
template <typename Lock>
FlavorOutcome plain_violation_script(Lock& lock) {
  FlavorOutcome out;
  MutexChecker chk;
  std::atomic<bool> t1_out{false};
  Probe t1([&] {
    lock.acquire();
    chk.enter();
    wait_for([&] { return t1_out.load(); }, milliseconds{5000});
    chk.exit();
    lock.release();
  });
  wait_for([&] { return chk.current() == 1; }, milliseconds{2000});

  out.detected = !lock.release();  // the unbalanced unlock

  Probe t2([&] {
    lock.acquire();
    chk.enter();
    chk.exit();
    lock.release();
  });
  out.violated = wait_for([&] { return chk.max_simultaneous() >= 2; });
  t1_out.store(true);
  t1.join();
  t2.join();

  // Only the resilient flavor is expected to stay functional (an
  // original ticket lock, e.g., has skipped tickets at this point and a
  // fresh acquire would never return).
  if constexpr (Lock::resilience() == kResilient) {
    lock.acquire();
    out.functional_after = lock.release();
  }
  return out;
}

MisuseReport make_report(const char* name, const FlavorOutcome& orig,
                         const FlavorOutcome& res, bool pv, bool pt, bool po,
                         bool pd, const char* remedy) {
  MisuseReport r;
  r.lock = name;
  r.violates_mutex = orig.violated;
  r.tm_starves = orig.tm_starved;
  r.others_starve = orig.others_starved;
  r.detected = res.detected;
  r.prevented = !res.violated && !res.tm_starved && !res.others_starved &&
                res.functional_after;
  r.paper_violates = pv;
  r.paper_tm = pt;
  r.paper_others = po;
  r.paper_detectable = pd;
  r.remedy = remedy;
  return r;
}

// ---------------------------------------------------------------------
// TAS (§3.1)
// ---------------------------------------------------------------------
template <Resilience R>
FlavorOutcome run_tas() {
  BasicTasLock<R, TasVariant::kTatas> lock;
  return plain_violation_script(lock);
}

// ---------------------------------------------------------------------
// Ticket (§3.2): violation + permanent skip of issued tickets.
// ---------------------------------------------------------------------
template <Resilience R>
FlavorOutcome run_ticket() {
  BasicTicketLock<R> lock;
  FlavorOutcome out = plain_violation_script(lock);
  if constexpr (R == kOriginal) {
    // plain_violation_script's functional check re-acquired once; after
    // the violation nowServing has leapt past nextTicket, so reproduce
    // the starvation from a clean slate.
    BasicTicketLock<R> l2;
    MutexChecker chk;
    std::atomic<bool> t1_out{false};
    Probe t1([&] {
      l2.acquire();
      chk.enter();
      wait_for([&] { return t1_out.load(); }, milliseconds{5000});
      chk.exit();
      l2.release();
    });
    wait_for([&] { return chk.current() == 1; }, milliseconds{2000});
    l2.release();  // misuse: nowServing leaps ahead
    Probe t2([&] { l2.acquire(); l2.release(); });
    wait_for([&] { return t2.done(); });
    t1_out.store(true);
    t1.join();
    // After T1 and T2, nowServing > nextTicket: the next ticket holder
    // is skipped forever.
    Probe t3([&] {
      l2.acquire();
      l2.release();
    });
    out.others_starved = !t3.finished_within();
    if (out.others_starved) {
      // Rescue: realign nowServing with the oldest pending ticket.
      VerifyAccess::ticket_force_serving(
          l2, VerifyAccess::ticket_next(l2) - 1);
    }
    t3.join();
    // The misbehaving thread itself did not starve (it is this thread).
    out.tm_starved = false;
    // The generic functional check above already passed before the lock
    // state diverged; after the leap the lock is NOT functional — record
    // that by reporting others_starved (Table 1's "starves others").
  }
  return out;
}

// ---------------------------------------------------------------------
// Anderson ABQL (§3.3.1): uninitialized myPlace wakes a waiting slot.
// ---------------------------------------------------------------------
template <Resilience R>
FlavorOutcome run_abql() {
  BasicAndersonLock<R> lock(8);
  FlavorOutcome out;
  MutexChecker chk;
  typename BasicAndersonLock<R>::Place p1;
  std::atomic<bool> t1_out{false};
  Probe t1([&] {
    lock.acquire(p1);
    chk.enter();
    wait_for([&] { return t1_out.load(); }, milliseconds{5000});
    chk.exit();
    lock.release(p1);
  });
  wait_for([&] { return chk.current() == 1; }, milliseconds{2000});

  typename BasicAndersonLock<R>::Place rogue;  // never acquired
  out.detected = !lock.release(rogue);  // misuse: releases slot 1

  typename BasicAndersonLock<R>::Place p2;
  Probe t2([&] {
    lock.acquire(p2);
    chk.enter();
    chk.exit();
    lock.release(p2);
  });
  out.violated = wait_for([&] { return chk.max_simultaneous() >= 2; });
  t1_out.store(true);
  t1.join();
  t2.join();

  typename BasicAndersonLock<R>::Place p3;
  lock.acquire(p3);
  out.functional_after = lock.release(p3);
  return out;
}

// ---------------------------------------------------------------------
// Graunke–Thakkar (§3.3.2): the double toggle makes a successor miss the
// flip and wait forever; mutual exclusion is never violated.
// ---------------------------------------------------------------------
template <Resilience R>
FlavorOutcome run_gt() {
  BasicGraunkeThakkarLock<R> lock(64);
  FlavorOutcome out;
  const std::uint32_t my_pid = self_pid();

  lock.acquire();
  lock.release();                   // legitimate round: slot toggled
  out.detected = !lock.release();   // misuse: toggles the slot back

  MutexChecker chk;
  Probe t2([&] {
    lock.acquire();
    chk.enter();
    chk.exit();
    lock.release();
  });
  // Original: T2's tail snapshot says "wait until my slot differs from
  // its pre-toggle value" — which the double toggle restored.
  out.others_starved = !t2.finished_within();
  out.violated = chk.max_simultaneous() > 1;
  if (out.others_starved) {
    VerifyAccess::gt_toggle_slot(lock, my_pid);  // rescue the waiter
  }
  t2.join();
  out.functional_after = !out.others_starved || R == kOriginal;
  if constexpr (R == kResilient) {
    lock.acquire();
    out.functional_after = lock.release();
  }
  return out;
}

// ---------------------------------------------------------------------
// MCS (§3.4): case 1 (Tm spins forever on a successor-less node) and
// case 3 (stale I.next releases a re-enqueued waiter: violation).
// ---------------------------------------------------------------------
template <Resilience R>
FlavorOutcome run_mcs() {
  using Lock = BasicMcsLock<R>;
  using QNode = typename Lock::QNode;
  FlavorOutcome out;

  {  // --- case 1: Tm starvation ---
    Lock lock;
    QNode fresh, dummy;
    Probe tm([&] { lock.release(fresh); });
    out.tm_starved = !tm.finished_within();
    if (out.tm_starved) {
      VerifyAccess::mcs_link_successor<R>(fresh, dummy);  // rescue
    } else if constexpr (R == kResilient) {
      out.detected = true;  // returned promptly because it refused
    }
    tm.join();
  }

  {  // --- case 3: stale-next violation ---
    Lock lock;
    QNode a, b, d;
    MutexChecker chk;

    // Episode 1: leave a.next pointing at b.
    std::atomic<bool> t2_out{false};
    lock.acquire(a);
    Probe t2([&] {
      lock.acquire(b);
      chk.enter();
      wait_for([&] { return t2_out.load(); }, milliseconds{5000});
      chk.exit();
      lock.release(b);
    });
    wait_for([&] { return VerifyAccess::mcs_tail(lock) == &b; },
             milliseconds{2000});
    lock.release(a);  // grants b; original leaves a.next == &b
    t2_out.store(true);
    t2.join();

    // Episode 2: T3 holds via d; b is re-enqueued and spinning.
    std::atomic<bool> t3_out{false}, t2b_out{false};
    Probe t3([&] {
      lock.acquire(d);
      chk.enter();
      wait_for([&] { return t3_out.load(); }, milliseconds{5000});
      chk.exit();
      lock.release(d);
    });
    wait_for([&] { return chk.current() == 1; }, milliseconds{2000});
    Probe t2b([&] {
      lock.acquire(b);
      chk.enter();
      wait_for([&] { return t2b_out.load(); }, milliseconds{5000});
      chk.exit();
      lock.release(b);
    });
    wait_for([&] { return VerifyAccess::mcs_tail(lock) == &b; },
             milliseconds{2000});

    const bool detected = !lock.release(a);  // MISUSE with stale next
    out.detected = out.detected || detected;
    out.violated = wait_for([&] { return chk.max_simultaneous() >= 2; });
    t3_out.store(true);
    t2b_out.store(true);
    t3.join();
    t2b.join();

    QNode f;
    lock.acquire(f);
    out.functional_after = lock.release(f);
  }
  return out;
}

// ---------------------------------------------------------------------
// CLH (§3.5, Figure 8): a misused release adopts a node another context
// still owns; double-enqueueing that node releases two waiters at once.
// ---------------------------------------------------------------------
template <Resilience R>
FlavorOutcome run_clh() {
  using Lock = BasicClhLock<R>;
  using Context = typename Lock::Context;
  FlavorOutcome out;

  Lock lock;
  auto c1 = std::make_unique<Context>();
  auto cm = std::make_unique<Context>();
  auto cx = std::make_unique<Context>();
  auto cy = std::make_unique<Context>();
  MutexChecker chk;

  // Episode 1 (Figure 8a): T1 then Tm lock/unlock cleanly; ownership of
  // T1's node migrates to Tm's context.
  Probe t1([&] {
    lock.acquire(*c1);
    lock.release(*c1);
  });
  t1.join();
  lock.acquire(*cm);
  lock.release(*cm);

  // The misuse: Tm releases again. Original: Tm's context adopts a node
  // that c1 also owns (aliasing). Resilient: refused (prev is null).
  out.detected = !lock.release(*cm);

  // Episode 2 (Figure 8b): both owners of the shared node re-enqueue it.
  std::atomic<bool> t2_in{false}, t2_out{false};
  Probe t2([&] {
    lock.acquire(*c1);
    chk.enter();
    t2_in.store(true);
    wait_for([&] { return t2_out.load(); }, milliseconds{5000});
    chk.exit();
    lock.release(*c1);
  });
  wait_for([&] { return t2_in.load(); }, milliseconds{2000});

  // tx/ty dwell inside the CS until they see a peer (or a short timeout)
  // so that the simultaneous wake-up is observable as overlap.
  auto dwell_cs = [&chk, &lock](typename Lock::Context& c) {
    lock.acquire(c);
    chk.enter();
    wait_for([&] { return chk.current() >= 2; }, milliseconds{300});
    chk.exit();
    lock.release(c);
  };

  Probe tx([&] { dwell_cs(*cx); });
  wait_for([&] {
    return VerifyAccess::clh_tail(lock) == VerifyAccess::clh_node<R>(*cx);
  }, milliseconds{2000});

  Probe tm2([&] { dwell_cs(*cm); });  // original: re-enqueues aliased node
  wait_for([&] {
    return VerifyAccess::clh_tail(lock) == VerifyAccess::clh_node<R>(*cm);
  }, milliseconds{2000});

  Probe ty([&] { dwell_cs(*cy); });
  wait_for([&] {
    return VerifyAccess::clh_tail(lock) == VerifyAccess::clh_node<R>(*cy);
  }, milliseconds{2000});

  // T2's release clears succ_must_wait on the doubly-enqueued node:
  // with the original protocol both tx and ty wake simultaneously.
  t2_out.store(true);
  out.violated = wait_for([&] { return chk.max_simultaneous() >= 2; });

  // Rescue anything still waiting (the aliased queue can strand nodes).
  // The window must cover three back-to-back CS dwells of the clean
  // (resilient) run.
  if (!wait_for([&] { return tx.done() && ty.done() && tm2.done(); },
                milliseconds{2500})) {
    out.others_starved = true;
    VerifyAccess::clh_force_release<R>(lock, VerifyAccess::clh_node<R>(*cx));
    VerifyAccess::clh_force_release<R>(lock, VerifyAccess::clh_node<R>(*cm));
    VerifyAccess::clh_force_release<R>(lock, VerifyAccess::clh_node<R>(*cy));
    VerifyAccess::clh_force_release<R>(lock, VerifyAccess::clh_node<R>(*c1));
  }
  t2.join();
  tx.join();
  tm2.join();
  ty.join();

  if constexpr (R == kResilient) {
    typename Lock::Context cf;
    lock.acquire(cf);
    out.functional_after = lock.release(cf);
  }

  if constexpr (R == kOriginal) {
    // §3.5 "Starvation": when both owners of the aliased node race —
    // one releasing (flag := false) while the other re-enqueues it
    // (flag := true) — a waiter can miss the hand-off and spin forever.
    // The interleaving is racy; retry bounded attempts on fresh locks.
    for (int attempt = 0; attempt < 30 && !out.others_starved; ++attempt) {
      Lock l2;
      auto a1 = std::make_unique<Context>();
      auto am = std::make_unique<Context>();
      auto ax = std::make_unique<Context>();
      // Build the alias: a1 and am end up owning the same node.
      l2.acquire(*a1);
      l2.release(*a1);
      l2.acquire(*am);
      l2.release(*am);
      l2.release(*am);  // misuse

      std::atomic<bool> holder_go{false};
      std::atomic<int> ready{0};
      Probe holder([&] {
        l2.acquire(*a1);  // enqueues the shared node; holds the lock
        ready.fetch_add(1);
        wait_for([&] { return holder_go.load(); }, milliseconds{2000});
        l2.release(*a1);  // races with tm's re-enqueue of the same node
      });
      wait_for([&] { return ready.load() == 1; }, milliseconds{2000});
      Probe waiter([&] {
        l2.acquire(*ax);  // spins on the shared node
        l2.release(*ax);
      });
      // No direct way to observe "spinning"; give it a moment to enqueue.
      wait_for([&] { return false; }, milliseconds{20});
      Probe tm([&] {
        wait_for([&] { return holder_go.load(); }, milliseconds{2000});
        l2.acquire(*am);  // re-sets succ_must_wait on the shared node
        l2.release(*am);
      });
      holder_go.store(true);  // fire both sides of the race
      if (!wait_for([&] { return waiter.done(); }, milliseconds{250})) {
        out.others_starved = true;  // waiter missed the flip
        // Rescue every node either context might be spinning on.
        VerifyAccess::clh_force_release<R>(l2, VerifyAccess::clh_node<R>(*a1));
        VerifyAccess::clh_force_release<R>(l2, VerifyAccess::clh_node<R>(*am));
        VerifyAccess::clh_force_release<R>(l2, VerifyAccess::clh_node<R>(*ax));
        wait_for([&] { return waiter.done() && tm.done(); },
                 milliseconds{500});
        // Repeat rescues until everyone is out (aliasing can re-arm).
        for (int i = 0; i < 50 && !(waiter.done() && tm.done() &&
                                    holder.done()); ++i) {
          VerifyAccess::clh_force_release<R>(l2, VerifyAccess::clh_node<R>(*a1));
          VerifyAccess::clh_force_release<R>(l2, VerifyAccess::clh_node<R>(*am));
          VerifyAccess::clh_force_release<R>(l2, VerifyAccess::clh_node<R>(*ax));
          wait_for([&] { return false; }, milliseconds{10});
        }
      }
      holder.join();
      waiter.join();
      tm.join();
      // De-alias before the contexts and lock are destroyed.
      VerifyAccess::clh_node<R>(*a1) = new typename Lock::QNode;
      VerifyAccess::clh_node<R>(*am) = new typename Lock::QNode;
      VerifyAccess::clh_node<R>(*ax) = new typename Lock::QNode;
    }
  }

  // De-alias contexts before destruction: after a misuse several
  // contexts can own the same node, and each destructor frees its node.
  // Hand every context a fresh node and deliberately leak the tangled
  // ones (bounded: a handful of nodes, once, in an experiment that ends
  // with the lock destroyed). The lock's own tail node is distinct from
  // the fresh nodes, so its destructor stays safe.
  if constexpr (R == kOriginal) {
    VerifyAccess::clh_node<R>(*c1) = new typename Lock::QNode;
    VerifyAccess::clh_node<R>(*cm) = new typename Lock::QNode;
    VerifyAccess::clh_node<R>(*cx) = new typename Lock::QNode;
    VerifyAccess::clh_node<R>(*cy) = new typename Lock::QNode;
  }
  return out;
}

// ---------------------------------------------------------------------
// MCS-K42 (§3.6): misuse while held-no-waiters frees the lock under the
// holder (violation) and the holder's own release then spins forever.
// ---------------------------------------------------------------------
template <Resilience R>
FlavorOutcome run_mcs_k42() {
  using Lock = BasicMcsK42Lock<R>;
  FlavorOutcome out;

  {  // --- Tm starvation: misuse on a free lock ---
    Lock lock;
    typename VerifyAccess::K42Node<R> dummy;
    Probe tm([&] { lock.release(); });
    out.tm_starved = !tm.finished_within();
    if (out.tm_starved) VerifyAccess::k42_publish_head(lock, dummy);
    tm.join();
  }

  {  // --- violation + any-thread starvation ---
    Lock lock;
    MutexChecker chk;
    std::atomic<bool> t1_out{false};
    Probe t1([&] {
      lock.acquire();
      chk.enter();
      wait_for([&] { return t1_out.load(); }, milliseconds{5000});
      chk.exit();
      lock.release();  // original: spins forever after the misuse below
    });
    wait_for([&] { return chk.current() == 1; }, milliseconds{2000});

    const bool detected = !lock.release();  // misuse: lock appears free
    out.detected = detected;

    Probe t2([&] {
      lock.acquire();
      chk.enter();
      chk.exit();
      lock.release();
    });
    out.violated = wait_for([&] { return chk.max_simultaneous() >= 2; });
    wait_for([&] { return t2.done(); });
    t1_out.store(true);

    typename VerifyAccess::K42Node<R> dummy;
    if (!t1.finished_within()) {
      out.others_starved = true;  // the legitimate holder starved
      VerifyAccess::k42_publish_head(lock, dummy);
    }
    t1.join();
    t2.join();
    if constexpr (R == kResilient) {
      lock.acquire();
      out.functional_after = lock.release();
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// Hemlock (§3.7): the misbehaving thread starves itself; lock state and
// all other threads are untouched.
// ---------------------------------------------------------------------
template <Resilience R>
FlavorOutcome run_hemlock() {
  BasicHemlock<R> lock;
  FlavorOutcome out;
  MutexChecker chk;
  std::atomic<bool> t1_out{false};
  Probe t1([&] {
    lock.acquire();
    chk.enter();
    wait_for([&] { return t1_out.load(); }, milliseconds{5000});
    chk.exit();
    lock.release();
  });
  wait_for([&] { return chk.current() == 1; }, milliseconds{2000});

  std::atomic<std::atomic<void*>*> tm_cell{nullptr};
  std::atomic<bool> tm_detected{false};
  Probe tm([&] {
    tm_cell.store(VerifyAccess::hemlock_cell_of_current_thread());
    tm_detected.store(!lock.release());  // the misuse
  });
  out.tm_starved = !tm.finished_within();
  if (out.tm_starved) {
    tm_cell.load()->store(nullptr, std::memory_order_release);  // rescue
  }
  tm.join();
  out.detected = tm_detected.load();

  // Other threads unaffected: T2 enters once T1 leaves; never before.
  Probe t2([&] {
    lock.acquire();
    chk.enter();
    chk.exit();
    lock.release();
  });
  out.violated = wait_for([&] { return chk.max_simultaneous() >= 2; },
                          milliseconds{200});
  t1_out.store(true);
  t1.join();
  t2.join();
  lock.acquire();
  out.functional_after = lock.release() && !out.violated;
  return out;
}

// ---------------------------------------------------------------------
// HMCS (§3.8.1): MCS's stale-next violation reproduced at the leaf, and
// Tm starvation walking up the tree.
// ---------------------------------------------------------------------
template <Resilience R>
FlavorOutcome run_hmcs() {
  using Lock = BasicHmcsLock<R>;
  using Context = typename Lock::Context;
  static const platform::Topology topo = platform::Topology::uniform(1, 64);
  FlavorOutcome out;

  {  // --- Tm starvation on a fresh lock ---
    Lock lock(topo);
    Context fresh;
    typename Lock::QNode dummy1, dummy2;
    Probe tm([&] { lock.release(fresh); });
    out.tm_starved = !tm.finished_within();
    if (out.tm_starved) {
      // Two spin points: the root-level release, then the leaf release.
      VerifyAccess::hmcs_leaf_node(lock, 0).next.store(
          &dummy1, std::memory_order_release);
      wait_for([&] { return tm.done(); }, milliseconds{200});
      VerifyAccess::hmcs_ctx_node<R>(fresh).next.store(
          &dummy2, std::memory_order_release);
    }
    tm.join();
  }

  {  // --- stale-next violation at the leaf ---
    Lock lock(topo);
    Context cm, c2, ca;
    MutexChecker chk;

    // Episode 1: Tm holds, T2 queues behind, handoff leaves
    // cm.node.next == &c2.node.
    lock.acquire(cm);
    std::atomic<bool> t2_out{false};
    Probe t2a([&] {
      lock.acquire(c2);
      chk.enter();
      wait_for([&] { return t2_out.load(); }, milliseconds{5000});
      chk.exit();
      lock.release(c2);
    });
    wait_for([&] {
      return VerifyAccess::hmcs_ctx_node<R>(cm).next.load(
                 std::memory_order_acquire) != nullptr;
    }, milliseconds{2000});
    lock.release(cm);  // passes within cohort
    t2_out.store(true);
    t2a.join();

    // Episode 2: Ta holds; T2 re-enqueues the same context and waits.
    std::atomic<bool> ta_out{false}, t2b_out{false};
    Probe ta([&] {
      lock.acquire(ca);
      chk.enter();
      wait_for([&] { return ta_out.load(); }, milliseconds{5000});
      chk.exit();
      lock.release(ca);
    });
    wait_for([&] { return chk.current() == 1; }, milliseconds{2000});
    Probe t2b([&] {
      lock.acquire(c2);
      chk.enter();
      wait_for([&] { return t2b_out.load(); }, milliseconds{5000});
      chk.exit();
      lock.release(c2);
    });
    wait_for([&] {
      return VerifyAccess::hmcs_ctx_node<R>(ca).next.load(
                 std::memory_order_acquire) != nullptr;
    }, milliseconds{2000});

    out.detected = !lock.release(cm);  // MISUSE: stale next at the leaf
    out.violated = wait_for([&] { return chk.max_simultaneous() >= 2; });
    ta_out.store(true);
    t2b_out.store(true);
    ta.join();
    t2b.join();

    Context cf;
    lock.acquire(cf);
    out.functional_after = lock.release(cf);
  }
  return out;
}

// ---------------------------------------------------------------------
// HCLH (§3.8.2): immune — the misused node is not enqueued; clearing its
// flag is invisible.
// ---------------------------------------------------------------------
template <Resilience R>
FlavorOutcome run_hclh() {
  static const platform::Topology topo = platform::Topology::uniform(2, 2);
  BasicHclhLock<R> lock(topo);
  typename BasicHclhLock<R>::Context cm;
  // Warm the misbehaving context with one clean round first (the paper's
  // caveat: misuse with a *never-used* context only touches idle state).
  lock.acquire(cm);
  lock.release(cm);
  auto misuse = [&] { return lock.release(cm); };

  FlavorOutcome out;
  MutexChecker chk;
  std::atomic<bool> t1_out{false};
  Probe t1([&] {
    typename BasicHclhLock<R>::Context c;
    lock.acquire(c);
    chk.enter();
    wait_for([&] { return t1_out.load(); }, milliseconds{5000});
    chk.exit();
    lock.release(c);
  });
  wait_for([&] { return chk.current() == 1; }, milliseconds{2000});
  out.detected = !misuse();  // HCLH has nothing to detect: returns true
  Probe t2([&] {
    typename BasicHclhLock<R>::Context c;
    lock.acquire(c);
    chk.enter();
    chk.exit();
    lock.release(c);
  });
  out.violated = wait_for([&] { return chk.max_simultaneous() >= 2; },
                          milliseconds{200});
  t1_out.store(true);
  t1.join();
  t2.join();
  lock.acquire(cm);
  out.functional_after = lock.release(cm) && !out.violated;
  return out;
}

// ---------------------------------------------------------------------
// HBO (§3.8.3): TAS semantics with NUMA backoff.
// ---------------------------------------------------------------------
template <Resilience R>
FlavorOutcome run_hbo() {
  static const platform::Topology topo = platform::Topology::uniform(2, 2);
  BasicHboLock<R> lock(topo);
  return plain_violation_script(lock);
}

// ---------------------------------------------------------------------
// Cohort C-TKT-TKT (§3.8.4): the misuse lands on the local ticket lock
// and, unchecked, propagates to the global lock.
// ---------------------------------------------------------------------
template <Resilience R>
FlavorOutcome run_cohort() {
  static const platform::Topology topo = platform::Topology::uniform(1, 64);
  using Lock = CTktTktLock<R>;
  Lock lock(topo);
  FlavorOutcome out;
  MutexChecker chk;
  typename Lock::Context c1, cm, c2;
  std::atomic<bool> t1_out{false};
  Probe t1([&] {
    lock.acquire(c1);
    chk.enter();
    wait_for([&] { return t1_out.load(); }, milliseconds{5000});
    chk.exit();
    lock.release(c1);
  });
  wait_for([&] { return chk.current() == 1; }, milliseconds{2000});

  out.detected = !lock.release(cm);  // misuse via a never-acquired context

  Probe t2([&] {
    lock.acquire(c2);
    chk.enter();
    chk.exit();
    lock.release(c2);
  });
  out.violated = wait_for([&] { return chk.max_simultaneous() >= 2; });
  t1_out.store(true);
  t1.join();
  t2.join();

  if constexpr (R == kOriginal) {
    // Both ticket levels now have nowServing ahead of nextTicket; later
    // acquirers starve. Observe, then rescue by realigning.
    typename Lock::Context c3;
    Probe t3([&] {
      lock.acquire(c3);
      lock.release(c3);
    });
    out.others_starved = !t3.finished_within();
    if (out.others_starved) {
      // t3 is stuck inside the LOCAL acquire (its ticket is already
      // issued: realign to next-1); it has not taken a GLOBAL ticket yet
      // (realign to next so its upcoming ticket is served immediately).
      auto& local = VerifyAccess::cohort_local(lock, 0);
      auto& global = VerifyAccess::cohort_global(lock);
      VerifyAccess::ticket_force_serving(
          local, VerifyAccess::ticket_next(local) - 1);
      VerifyAccess::ticket_force_serving(global,
                                         VerifyAccess::ticket_next(global));
    }
    t3.join();
  } else {
    typename Lock::Context c3;
    lock.acquire(c3);
    out.functional_after = lock.release(c3);
  }
  return out;
}

// ---------------------------------------------------------------------
// C-RW-NP (§4): a misbehaving RUnlock lets a waiting writer overlap the
// reader, and the reader's own departure corrupts the indicator so all
// later writers starve.
// ---------------------------------------------------------------------
template <Resilience R, typename Indicator>
FlavorOutcome run_crw() {
  static const platform::Topology topo = platform::Topology::uniform(1, 64);
  using Lock = CrwLock<R, Indicator, RwPreference::kNeutral>;
  Lock rw(topo);
  FlavorOutcome out;
  MutexChecker chk;
  typename Lock::Context cr, cw, cm, cw2;

  std::atomic<bool> r_out{false};
  Probe reader([&] {
    rw.rlock(cr);
    chk.enter();
    wait_for([&] { return r_out.load(); }, milliseconds{5000});
    chk.exit();
    rw.runlock(cr);
  });
  wait_for([&] { return chk.current() == 1; }, milliseconds{2000});

  Probe writer([&] {
    rw.wlock(cw);
    chk.enter();
    chk.exit();
    rw.wunlock(cw);
  });
  // Give the writer time to take the cohort lock and block on isEmpty.
  wait_for([&] { return false; }, milliseconds{100});

  out.detected = !rw.runlock(cm);  // MISUSE: depart without arrive

  out.violated = wait_for([&] { return chk.max_simultaneous() >= 2; });
  r_out.store(true);
  reader.join();
  writer.join();

  // Indicator now unbalanced (unless checked): later writers starve.
  Probe writer2([&] {
    rw.wlock(cw2);
    rw.wunlock(cw2);
  });
  out.others_starved = !writer2.finished_within();
  if (out.others_starved) {
    rw.indicator().arrive(self_pid());  // rescue: rebalance
  }
  writer2.join();
  out.functional_after = !out.others_starved && !out.violated;
  return out;
}

// ---------------------------------------------------------------------
// Software-only locks (§5, Appendix).
// ---------------------------------------------------------------------
FlavorOutcome run_peterson() {
  PetersonLock lock;
  FlavorOutcome out;
  MutexChecker chk;
  std::atomic<bool> t0_out{false};
  Probe t0([&] {
    lock.acquire(0);
    chk.enter();
    wait_for([&] { return t0_out.load(); }, milliseconds{5000});
    chk.exit();
    lock.release(0);
  });
  wait_for([&] { return chk.current() == 1; }, milliseconds{2000});
  out.detected = !lock.release(1);  // misuse by the idle thread: no-op
  Probe t1([&] {
    lock.acquire(1);
    chk.enter();
    chk.exit();
    lock.release(1);
  });
  out.violated = wait_for([&] { return chk.max_simultaneous() >= 2; },
                          milliseconds{200});
  t0_out.store(true);
  t0.join();
  t1.join();
  out.functional_after = !out.violated;
  return out;
}

template <Resilience R>
FlavorOutcome run_fischer() {
  BasicFischerLock<R> lock(512);
  return plain_violation_script(lock);
}

template <Resilience R>
FlavorOutcome run_lamport1() {
  BasicLamportFast1Lock<R> lock(512);
  return plain_violation_script(lock);
}

template <Resilience R>
FlavorOutcome run_lamport2() {
  BasicLamportFast2Lock<R> lock(64);
  return plain_violation_script(lock);
}

FlavorOutcome run_bakery() {
  BakeryLock lock(64);
  // Misuse by an idle thread resets its own (already zero) number: no-op.
  FlavorOutcome out;
  MutexChecker chk;
  std::atomic<bool> t1_out{false};
  Probe t1([&] {
    lock.acquire();
    chk.enter();
    wait_for([&] { return t1_out.load(); }, milliseconds{5000});
    chk.exit();
    lock.release();
  });
  wait_for([&] { return chk.current() == 1; }, milliseconds{2000});
  out.detected = !lock.release();  // immune; nothing to detect
  Probe t2([&] {
    lock.acquire();
    chk.enter();
    chk.exit();
    lock.release();
  });
  out.violated = wait_for([&] { return chk.max_simultaneous() >= 2; },
                          milliseconds{200});
  t1_out.store(true);
  t1.join();
  t2.join();
  out.functional_after = !out.violated;
  return out;
}

}  // namespace

// --------------------------------------------------------------------
// Public entry points: run both flavors and fill the report.
// --------------------------------------------------------------------

MisuseReport misuse_tas() {
  return make_report("TAS", run_tas<kOriginal>(), run_tas<kResilient>(),
                     true, false, false, true, "store PID in L");
}

MisuseReport misuse_ticket() {
  return make_report("Ticket", run_ticket<kOriginal>(),
                     run_ticket<kResilient>(), true, false, true, true,
                     "introduce a new PID field");
}

MisuseReport misuse_abql() {
  return make_report("Anderson ABQL", run_abql<kOriginal>(),
                     run_abql<kResilient>(), true, false, false, true,
                     "check and reset myPlace in release()");
}

MisuseReport misuse_graunke_thakkar() {
  return make_report("Graunke-Thakkar", run_gt<kOriginal>(),
                     run_gt<kResilient>(), false, false, true, true,
                     "introduce holder array");
}

MisuseReport misuse_mcs() {
  return make_report("MCS", run_mcs<kOriginal>(), run_mcs<kResilient>(),
                     true, true, false, true,
                     "check I.locked and reset I.next");
}

MisuseReport misuse_clh() {
  return make_report("CLH", run_clh<kOriginal>(), run_clh<kResilient>(),
                     true, false, true, true,
                     "check and reset I.prev in release()");
}

MisuseReport misuse_mcs_k42() {
  return make_report("MCS-K42", run_mcs_k42<kOriginal>(),
                     run_mcs_k42<kResilient>(), true, true, true, true,
                     "re-purpose qnode fields for owner PID");
}

MisuseReport misuse_hemlock() {
  return make_report("Hemlock", run_hemlock<kOriginal>(),
                     run_hemlock<kResilient>(), false, true, false, true,
                     "check and reset Grant in release()");
}

MisuseReport misuse_hmcs() {
  return make_report("HMCS", run_hmcs<kOriginal>(), run_hmcs<kResilient>(),
                     true, true, false, true, "same as MCS at each level");
}

MisuseReport misuse_hclh() {
  return make_report("HCLH", run_hclh<kOriginal>(),
                     run_hclh<kResilient>(), false, false, false, false,
                     "not applicable (immune)");
}

MisuseReport misuse_hbo() {
  return make_report("HBO", run_hbo<kOriginal>(), run_hbo<kResilient>(),
                     true, false, false, true,
                     "pack PID + NUMA id into lock word");
}

MisuseReport misuse_cohort_tkt_tkt() {
  return make_report("C-TKT-TKT", run_cohort<kOriginal>(),
                     run_cohort<kResilient>(), true, false, true, true,
                     "reuse local ticket remedy");
}

MisuseReport misuse_crw_np() {
  // The paper's resilient story: W side fixable, R side unsolved. Run
  // the original with the compact split indicator and the "resilient"
  // with the checked indicator (our extension) to show both columns.
  return make_report("C-RW-NP", run_crw<kOriginal, SplitReadIndicator>(),
                     run_crw<kResilient, CheckedReadIndicator>(), true,
                     false, true, false,
                     "W side: ticket remedy; R side: unsolved in paper "
                     "(checked indicator shipped as extension)");
}

MisuseReport misuse_peterson() {
  const FlavorOutcome o = run_peterson();
  return make_report("Peterson", o, o, false, false, false, false,
                     "not applicable (immune)");
}

MisuseReport misuse_fischer() {
  return make_report("Fischer", run_fischer<kOriginal>(),
                     run_fischer<kResilient>(), true, false, false, true,
                     "check and reset x in release()");
}

MisuseReport misuse_lamport1() {
  return make_report("Lamport Algo 1", run_lamport1<kOriginal>(),
                     run_lamport1<kResilient>(), true, false, true, true,
                     "check and reset y in release()");
}

MisuseReport misuse_lamport2() {
  return make_report("Lamport Algo 2", run_lamport2<kOriginal>(),
                     run_lamport2<kResilient>(), true, false, true, true,
                     "check and reset y in release()");
}

MisuseReport misuse_bakery() {
  const FlavorOutcome o = run_bakery();
  return make_report("Bakery", o, o, false, false, false, false,
                     "immune (Appendix A.1)");
}

std::vector<MisuseReport> run_misuse_matrix() {
  std::vector<MisuseReport> rows;
  rows.push_back(misuse_tas());
  rows.push_back(misuse_ticket());
  rows.push_back(misuse_abql());
  rows.push_back(misuse_graunke_thakkar());
  rows.push_back(misuse_mcs());
  rows.push_back(misuse_clh());
  rows.push_back(misuse_mcs_k42());
  rows.push_back(misuse_hemlock());
  rows.push_back(misuse_hmcs());
  rows.push_back(misuse_hclh());
  rows.push_back(misuse_hbo());
  rows.push_back(misuse_cohort_tkt_tkt());
  rows.push_back(misuse_crw_np());
  rows.push_back(misuse_peterson());
  rows.push_back(misuse_fischer());
  rows.push_back(misuse_lamport1());
  rows.push_back(misuse_lamport2());
  rows.push_back(misuse_bakery());
  return rows;
}

// ---------------------------------------------------------------------
// Shield-vs-native matrix: the generic ownership shield over ORIGINAL
// protocols, compared against the bespoke in-protocol RESILIENT fixes,
// on the four canonical misuse scenarios. All driving happens through
// the type-erased AnyLock interface so the same script covers plain and
// context locks alike.
// ---------------------------------------------------------------------
namespace {

// Misuse a lock nobody holds: release() out of thin air.
ShieldCell drive_unbalanced_unlock(AnyLock& lock) {
  ShieldCell cell;
  cell.detected = !lock.release();
  lock.acquire();
  cell.functional_after = lock.release();
  return cell;
}

// Balanced episode followed by one release too many.
ShieldCell drive_double_unlock(AnyLock& lock) {
  ShieldCell cell;
  lock.acquire();
  if (!lock.release()) return cell;  // balanced release must succeed
  cell.detected = !lock.release();
  lock.acquire();
  cell.functional_after = lock.release();
  return cell;
}

// T1 holds the lock; this thread releases it. T2 must not slip into the
// critical section while T1 is still inside.
ShieldCell drive_non_owner_unlock(AnyLock& lock) {
  ShieldCell cell;
  MutexChecker chk;
  std::atomic<bool> t1_out{false};
  Probe t1([&] {
    lock.acquire();
    chk.enter();
    wait_for([&] { return t1_out.load(); }, milliseconds{5000});
    chk.exit();
    lock.release();
  });
  wait_for([&] { return chk.current() == 1; }, milliseconds{2000});

  cell.detected = !lock.release();  // the misuse

  Probe t2([&] {
    lock.acquire();
    chk.enter();
    chk.exit();
    lock.release();
  });
  // Window for T2 to (incorrectly) enter while T1 is still inside.
  wait_for([&] { return chk.max_simultaneous() >= 2; }, milliseconds{150});
  cell.mutex_preserved = chk.max_simultaneous() <= 1;
  t1_out.store(true);
  t1.join();
  t2.join();

  lock.acquire();
  cell.functional_after = lock.release();
  return cell;
}

// Same-thread relock of a held, non-reentrant lock. Probed through
// try_acquire so the scenario cannot self-deadlock; locks without a
// native trylock (CLH, §6) are inapplicable. "Detected" means the
// relock was handled safely: refused outright (the in-protocol CAS
// fixes), or absorbed reentrantly with the matching release absorbed
// too (the shield's kSuppress remedy).
ShieldCell drive_reentrant_relock(AnyLock& lock) {
  ShieldCell cell;
  if (!lock.supports_trylock()) {
    cell.applicable = false;
    return cell;
  }
  lock.acquire();
  if (lock.try_acquire()) {
    const bool r1 = lock.release();
    const bool r2 = lock.release();
    cell.detected = r1 && r2;  // absorbed consistently, depth balanced
  } else {
    cell.detected = true;  // refused: no double-entry
    lock.release();
  }
  lock.acquire();
  cell.functional_after = lock.release();
  return cell;
}

void drive_all(AnyLock& lock, ShieldCell (&cells)[4]) {
  cells[0] = drive_unbalanced_unlock(lock);
  cells[1] = drive_double_unlock(lock);
  cells[2] = drive_non_owner_unlock(lock);
  cells[3] = drive_reentrant_relock(lock);
}

bool cell_ok(const ShieldCell& c) {
  return !c.applicable ||
         (c.detected && c.mutex_preserved && c.functional_after);
}

}  // namespace

bool ShieldComparison::shield_matches_native() const {
  for (int i = 0; i < 4; ++i) {
    if (cell_ok(shielded[i]) != cell_ok(native[i])) return false;
  }
  return true;
}

std::vector<ShieldComparison> run_shield_matrix(
    const std::vector<std::string>& names) {
  const std::vector<std::string>& selected =
      names.empty() ? table2_lock_names() : names;
  // Pin the shield policy — and clear any RESILOCK_POLICY rules — so
  // the matrix is deterministic regardless of the environment (RAII:
  // an unknown name in `names` throws out of make_lock and must not
  // leak the pins).
  response::ResponseRulesGuard rules("");
  shield::ShieldPolicyGuard pin(shield::ShieldPolicy::kSuppress);

  std::vector<ShieldComparison> rows;
  for (const auto& name : selected) {
    ShieldComparison row;
    row.lock = name;
    auto shielded = make_lock(shielded_name(name), kOriginal);
    drive_all(*shielded, row.shielded);
    auto native = make_lock(name, kResilient);
    drive_all(*native, row.native);
    rows.push_back(std::move(row));
  }
  return rows;
}

void print_shield_matrix(const std::vector<ShieldComparison>& reports) {
  std::printf("%-10s | %-29s | %-29s | agree\n", "Lock",
              "shield<original>  U/D/N/R", "native resilient  U/D/N/R");
  auto fmt = [](const ShieldCell& c) {
    if (!c.applicable) return '-';
    return cell_ok(c) ? 'Y' : 'n';
  };
  std::printf(
      "-----------+-------------------------------+----------------------"
      "---------+------\n");
  for (const auto& r : reports) {
    std::printf("%-10s | %c / %c / %c / %c %15s | %c / %c / %c / %c %15s | %s\n",
                r.lock.c_str(), fmt(r.shielded[0]), fmt(r.shielded[1]),
                fmt(r.shielded[2]), fmt(r.shielded[3]), "",
                fmt(r.native[0]), fmt(r.native[1]), fmt(r.native[2]),
                fmt(r.native[3]), "",
                r.shield_matches_native() ? "yes" : "NO");
  }
  std::printf(
      "\nU = unbalanced unlock of a free lock, D = double unlock, N = "
      "non-owner unlock,\nR = same-thread reentrant relock (via trylock; "
      "'-' = no trylock, not drivable).\nY = detected, mutual exclusion "
      "preserved, functional afterwards.\n");
}

void print_misuse_matrix(const std::vector<MisuseReport>& reports) {
  std::printf(
      "%-18s | %-8s %-8s %-8s | %-8s %-9s | paper(V/Tm/O/D)\n", "Lock",
      "violates", "Tm-strv", "oth-strv", "detected", "prevented");
  std::printf(
      "-------------------+----------------------------+--------------------"
      "+----------------\n");
  for (const auto& r : reports) {
    std::printf("%-18s | %-8s %-8s %-8s | %-8s %-9s | %c/%c/%c/%c\n",
                r.lock.c_str(), r.violates_mutex ? "yes" : "no",
                r.tm_starves ? "yes" : "no", r.others_starve ? "yes" : "no",
                r.detected ? "yes" : "no", r.prevented ? "yes" : "no",
                r.paper_violates ? 'Y' : 'N', r.paper_tm ? 'Y' : 'N',
                r.paper_others ? 'Y' : 'N', r.paper_detectable ? 'Y' : 'N');
  }
  std::printf(
      "\nNotes: observed columns use bounded watchdogs; 'starves' means no "
      "progress within the window.\n"
      "Lamport Algo 1/2: the paper's starvation is a transient bounce back "
      "to start (one retry per misuse\ninstance), not permanent spinning — "
      "the observed column reports permanent starvation only.\n"
      "C-RW-NP resilient column uses the CheckedReadIndicator extension "
      "(the paper leaves the R side unsolved).\n");
}

}  // namespace resilock::verify
