// Reader-writer protection matrix: does the mode-aware stack — RwShield
// ownership interception, mode-tagged lockdep edges, and the response
// engine's rw verdicts — deliver what it promises, across C-RW
// configurations?
//
// Five scripted scenarios per configuration, run on RwShield<CrwLock>
// so the mode tags come from the real shield hooks:
//   * rr-clean    — two threads read-acquire two rw locks in OPPOSITE
//                   orders, concurrently inside the read CS: zero
//                   inversion reports and zero new edges (R–R pairs are
//                   edge-free; rr_skipped must grow instead);
//   * w-inversion — wlock A-then-B followed by B-then-A: the
//                   write-involved AB/BA is flagged on the FIRST
//                   occurrence of the reversed order, exactly once;
//   * rw-mixed    — rlock(A)+wlock(B) then rlock(B)+wlock(A): a cycle
//                   of R→W edges (write participates) is still caught;
//   * mismatch    — wunlock of a read hold is intercepted with the
//                   verdict the installed rule names, base untouched;
//   * r-unbalance — runlock without rlock is refused; the indicator
//                   stays balanced and a writer still gets in — the §4
//                   corruption (mutex violation + writer starvation)
//                   does NOT happen, which is the shield's answer to
//                   the paper's open R-side problem;
// plus the agreement gate: the shielded ORIGINAL lock must answer the
// write-side misuses exactly like the native resilient protocol.
#pragma once

#include <string>
#include <vector>

namespace resilock::verify {

struct RwReport {
  std::string config;  // e.g. "C-RW-NP/ptkt-tkt"

  bool rr_clean = false;          // no report from concurrent R–R
  bool rr_edge_free = false;      // R–R pairs skipped, no edges added
  bool w_inversion = false;       // W/W AB/BA flagged on first occurrence
  bool w_inversion_once = false;  // ...and only once on replay
  bool rw_mixed_inversion = false;  // R→W/W→R cycle flagged
  bool mismatch_intercepted = false;  // rw-mode-mismatch verdict observed
  bool unbalanced_read_refused = false;  // bogus runlock intercepted
  bool indicator_intact = false;  // ...and no §4 skew: writer proceeds
  bool agrees_native = false;     // shielded original == native resilient

  bool all_pass() const {
    return rr_clean && rr_edge_free && w_inversion && w_inversion_once &&
           rw_mixed_inversion && mismatch_intercepted &&
           unbalanced_read_refused && indicator_intact && agrees_native;
  }
};

// Runs the matrix over the rw configurations: neutral-preference
// C-RW-NP over the paper's C-PTKT-TKT cohort, reader-preference over
// the C-TKT-TKT cohort, and writer-preference over the C-BO-BO (TAS
// local) cohort. Pins the shield default policy to suppress, lockdep
// to report, and clears response rules for the run (the mismatch
// scenario installs its own rule set in scope).
std::vector<RwReport> run_rw_matrix();

void print_rw_matrix(const std::vector<RwReport>& reports);

}  // namespace resilock::verify
