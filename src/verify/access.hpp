// Definition of the VerifyAccess back door declared in
// core/verify_access.hpp. Misuse scenarios need two capabilities that no
// public API should offer:
//   * observation of private protocol state (queue tails, tickets) to
//     script deterministic interleavings, and
//   * surgical repairs ("rescues") that unstick a thread the *original*
//     protocol leaves spinning forever after a misuse, so experiment
//     threads always join. A rescued lock is considered destroyed; no
//     scenario keeps using it.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/abql.hpp"
#include "core/clh.hpp"
#include "core/cohort.hpp"
#include "core/graunke_thakkar.hpp"
#include "core/hemlock.hpp"
#include "core/hmcs.hpp"
#include "core/mcs.hpp"
#include "core/mcs_k42.hpp"
#include "core/ticket.hpp"

namespace resilock {

struct VerifyAccess {
  // ----- Ticket -----
  template <Resilience R>
  static std::uint64_t ticket_next(const BasicTicketLock<R>& l) {
    return l.next_ticket_.load(std::memory_order_acquire);
  }
  template <Resilience R>
  static std::uint64_t ticket_serving(const BasicTicketLock<R>& l) {
    return l.now_serving_.load(std::memory_order_acquire);
  }
  // Rescue: realign nowServing so skipped tickets can proceed. The
  // epoch bump + broadcast covers waiters that parked on the old
  // serving value (a sweep is exactly the "grant without a release"
  // case the parking epoch exists for).
  template <Resilience R>
  static void ticket_force_serving(BasicTicketLock<R>& l, std::uint64_t v) {
    l.now_serving_.store(v, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    l.wake_all_parked();
  }

  // ----- Graunke–Thakkar -----
  // Rescue: toggle a thread's slot so a waiter that missed the flip can
  // proceed.
  template <Resilience R>
  static void gt_toggle_slot(BasicGraunkeThakkarLock<R>& l,
                             std::uint32_t pid) {
    l.slots_[pid % l.size_].value.fetch_xor(1, std::memory_order_acq_rel);
  }

  // ----- MCS -----
  template <Resilience R>
  static typename BasicMcsLock<R>::QNode* mcs_tail(
      const BasicMcsLock<R>& l) {
    return l.tail_.load(std::memory_order_acquire);
  }
  // Rescue: hand a stuck misused release a fake successor.
  template <Resilience R>
  static void mcs_link_successor(typename BasicMcsLock<R>::QNode& stuck,
                                 typename BasicMcsLock<R>::QNode& dummy) {
    stuck.next.store(&dummy, std::memory_order_release);
  }

  // ----- CLH -----
  template <Resilience R>
  static typename BasicClhLock<R>::QNode*& clh_node(
      typename BasicClhLock<R>::Context& ctx) {
    return ctx.node_;
  }
  template <Resilience R>
  static typename BasicClhLock<R>::QNode* clh_tail(
      const BasicClhLock<R>& l) {
    return l.tail_.load(std::memory_order_acquire);
  }
  // Rescue: release a waiter spinning (or parked) on `node` directly.
  // The bay broadcast is load-bearing under aliasing misuse: a
  // double-enqueue's store can trample kWordParked, after which every
  // conditional wake (including this wake_word) skips the futex_wake
  // and a parked waiter would sleep forever.
  template <Resilience R>
  static void clh_force_release(BasicClhLock<R>& l,
                                typename BasicClhLock<R>::QNode* node) {
    park::wake_word(node->succ_must_wait);
    l.misuse_wake();
  }

  // ----- MCS-K42 -----
  template <Resilience R>
  using K42Node = typename BasicMcsK42Lock<R>::Node;
  // Rescue: publish a fake head so a stuck release can grant and return.
  template <Resilience R>
  static void k42_publish_head(BasicMcsK42Lock<R>& l, K42Node<R>& dummy) {
    l.q_.next.store(&dummy, std::memory_order_release);
  }
  template <Resilience R>
  static K42Node<R>* k42_tail(const BasicMcsK42Lock<R>& l) {
    return l.q_.tail.load(std::memory_order_acquire);
  }

  // ----- Hemlock -----
  // The calling thread's grant cell (for rescuing a self-starved Tm:
  // store null to fake a successor's consume).
  static std::atomic<void*>* hemlock_cell_of_current_thread() {
    return &detail::hemlock_self().grant.value;
  }

  // ----- HMCS -----
  template <Resilience R>
  static typename BasicHmcsLock<R>::QNode& hmcs_ctx_node(
      typename BasicHmcsLock<R>::Context& ctx) {
    return ctx.node_;
  }
  template <Resilience R>
  static typename BasicHmcsLock<R>::QNode& hmcs_leaf_node(
      BasicHmcsLock<R>& l, std::uint32_t domain) {
    return l.leaves_[domain]->node;
  }

  // ----- Cohort locks -----
  template <Resilience R, typename G, typename L>
  static L& cohort_local(CohortLock<R, G, L>& c, std::uint32_t domain) {
    return c.domains_[domain]->local;
  }
  template <Resilience R, typename G, typename L>
  static G& cohort_global(CohortLock<R, G, L>& c) {
    return c.global_;
  }
};

}  // namespace resilock
