#include "verify/rw_matrix.hpp"

#include <atomic>
#include <cstdio>

#include "core/cohort.hpp"
#include "core/rw/crw.hpp"
#include "core/rw/read_indicator.hpp"
#include "lockdep/lockdep.hpp"
#include "response/response.hpp"
#include "shield/rw_shield.hpp"
#include "verify/checkers.hpp"

namespace resilock::verify {
namespace {

using response::Action;
using response::ResponseEngine;
using response::ResponseEvent;
using shield::RwShield;
using shield::ShieldPolicy;

std::uint64_t report_count() {
  return lockdep::Graph::instance().stats().reports();
}

std::uint64_t inversion_count() {
  return lockdep::Graph::instance().stats().inversions;
}

std::uint64_t rr_skip_count() {
  return lockdep::Graph::instance().stats().rr_skipped;
}

std::uint64_t event_count(ResponseEvent ev) {
  return ResponseEngine::instance().stats().by_event[
      static_cast<std::size_t>(ev)];
}

std::uint64_t action_count(Action a) {
  return ResponseEngine::instance().stats().by_action[
      static_cast<std::size_t>(a)];
}

// Two threads, two rw locks, OPPOSITE read-nesting orders, rendezvous
// inside the read CS so the acquisitions are genuinely concurrent:
// R–R dependencies must add no edges and no reports.
template <typename Rw>
void run_rr_clean(bool& clean, bool& edge_free) {
  RwShield<Rw> a, b;
  using Ctx = typename Rw::Context;
  const std::uint64_t reports_before = report_count();
  const std::uint64_t skips_before = rr_skip_count();
  std::atomic<int> inside{0};
  std::atomic<bool> go{false};
  auto reader = [&](RwShield<Rw>& first, RwShield<Rw>& second) {
    Ctx c1, c2;
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    first.rlock(c1);
    inside.fetch_add(1, std::memory_order_acq_rel);
    // Hold the first read until BOTH threads are inside, so the nested
    // read acquisition below happens with the opposite order live.
    wait_for([&] { return inside.load(std::memory_order_acquire) == 2; });
    second.rlock(c2);  // A(r) held while acquiring B(r) — and vice versa
    second.runlock(c2);
    first.runlock(c1);
  };
  Probe p1([&] { reader(a, b); });
  Probe p2([&] { reader(b, a); });
  go.store(true, std::memory_order_release);
  p1.join();
  p2.join();
  clean = report_count() == reports_before;
  // Edge-free between the two rw CLASSES specifically: the neutral
  // preference also touches the cohort-level classes on the way
  // through (attribution edges rw→cohort.local/global), which are
  // acyclic here and not what this gate measures.
  const lockdep::Graph& g = lockdep::Graph::instance();
  edge_free = !g.has_edge(a.lockdep_class(), b.lockdep_class()) &&
              !g.has_edge(b.lockdep_class(), a.lockdep_class()) &&
              rr_skip_count() >= skips_before + 2;
}

// wlock A-then-B, then B-then-A, strictly sequentially: the
// write-involved inversion flags on the FIRST reversed acquisition,
// and replaying the reversed order adds nothing (first-occurrence
// semantics). The count may exceed one report for the single app-level
// bug: the write CS holds the cohort levels too, so the same inversion
// is also attributed at cohort.local/global granularity — one report
// per (class pair), each on its own first occurrence only.
template <typename Rw>
void run_w_inversion(bool& flagged, bool& once) {
  RwShield<Rw> a, b;
  using Ctx = typename Rw::Context;
  Ctx ca, cb;
  const std::uint64_t before = inversion_count();
  a.wlock(ca);
  b.wlock(cb);  // edge A(w)→B(w)
  b.wunlock(cb);
  a.wunlock(ca);
  b.wlock(cb);
  a.wlock(ca);  // edge B(w)→A(w): closes AB/BA — flags right here
  flagged = inversion_count() > before;
  a.wunlock(ca);
  b.wunlock(cb);
  const std::uint64_t after_first = inversion_count();
  b.wlock(cb);
  a.wlock(ca);  // same reversed order again: no new edge, no new report
  a.wunlock(ca);
  b.wunlock(cb);
  once = inversion_count() == after_first;
}

// rlock(A)-then-wlock(B), then rlock(B)-then-wlock(A): every edge has a
// read SOURCE but a write destination — the cycle still involves write
// acquisitions and must be caught (only pure R–R is exempt).
template <typename Rw>
bool run_rw_mixed_inversion() {
  RwShield<Rw> a, b;
  using Ctx = typename Rw::Context;
  Ctx ca, cb;
  const std::uint64_t before = inversion_count();
  a.rlock(ca);
  b.wlock(cb);  // edge A(r)→B(w)
  b.wunlock(cb);
  a.runlock(ca);
  b.rlock(cb);
  a.wlock(ca);  // edge B(r)→A(w): write-involved cycle — flagged
  a.wunlock(ca);
  b.runlock(cb);
  return inversion_count() > before;
}

// wunlock of a read hold, with an explicit rule naming the verdict:
// the engine must take the named verdict (log), the base must stay
// untouched (the read hold survives and releases cleanly).
template <typename Rw>
bool run_mode_mismatch() {
  response::ResponseRulesGuard rules("rw-mode-mismatch=log");
  RwShield<Rw> rw;
  using Ctx = typename Rw::Context;
  Ctx c;
  rw.rlock(c);
  const std::uint64_t ev_before =
      event_count(ResponseEvent::kRwModeMismatch);
  const std::uint64_t log_before = action_count(Action::kLog);
  const bool refused = !rw.wunlock(c);  // read hold released as write
  const bool verdict_taken =
      event_count(ResponseEvent::kRwModeMismatch) == ev_before + 1 &&
      action_count(Action::kLog) == log_before + 1;
  // The interception left the protocol untouched: the read hold is
  // still live and releases cleanly, then the write side still works.
  const bool functional = rw.runlock(c);
  rw.wlock(c);
  const bool write_ok = rw.wunlock(c);
  return refused && verdict_taken && functional && write_ok &&
         rw.snapshot().count(ResponseEvent::kRwModeMismatch) == 1;
}

// runlock without rlock: intercepted before the indicator can skew —
// afterwards the indicator is still balanced and a writer acquires
// immediately (no §4 writer starvation) while a concurrent reader
// keeps mutual exclusion.
template <typename Rw>
void run_unbalanced_read(bool& refused, bool& intact) {
  RwShield<Rw> rw;
  using Ctx = typename Rw::Context;
  Ctx c;
  refused = !rw.runlock(c) &&
            rw.snapshot().count(ResponseEvent::kUnbalancedReadUnlock) == 1;
  // §4's corruption would leave the indicator non-empty forever (the
  // split counters skew) or negative (writer admitted over a reader).
  // Intercepted, neither happens: empty indicator, writer proceeds.
  const bool balanced = rw.base().indicator().is_empty();
  Probe writer([&] {
    Ctx wc;
    rw.wlock(wc);
    rw.wunlock(wc);
  });
  const bool writer_done = writer.finished_within(4 * kWatchWindow);
  intact = balanced && writer_done;
}

// The agreement gate: the shielded ORIGINAL protocol must answer the
// misuses the native RESILIENT protocol can detect with the same
// refusals — and the R-side misuse (undetectable natively with compact
// indicators, §4) must be detected by the shield AND by the native
// checked-indicator extension.
template <template <Resilience> class CohortFor, RwPreference P>
bool run_agreement() {
  using Original = CrwLock<kOriginal, SplitReadIndicator, P,
                           CohortFor<kOriginal>>;
  using NativeResilient = CrwLock<kResilient, CheckedReadIndicator, P,
                                  CohortFor<kResilient>>;
  // Shielded original: all four probes refused by interception.
  RwShield<Original> s;
  typename Original::Context sc;
  const bool s_wunlock_refused = !s.wunlock(sc);
  const bool s_runlock_refused = !s.runlock(sc);
  s.wlock(sc);
  const bool s_balanced_w = s.wunlock(sc);
  s.rlock(sc);
  const bool s_balanced_r = s.runlock(sc);

  // Native resilient: W side by the ticket PID remedy, R side by the
  // checked indicator's presence bits.
  NativeResilient n;
  typename NativeResilient::Context nc;
  const bool n_wunlock_refused = !n.wunlock(nc);
  const bool n_runlock_refused = !n.runlock(nc);
  n.wlock(nc);
  const bool n_balanced_w = n.wunlock(nc);
  n.rlock(nc);
  const bool n_balanced_r = n.runlock(nc);

  return s_wunlock_refused == n_wunlock_refused &&
         s_runlock_refused == n_runlock_refused &&
         s_balanced_w == n_balanced_w && s_balanced_r == n_balanced_r &&
         s_wunlock_refused && s_runlock_refused;
}

template <template <Resilience> class CohortFor, RwPreference P>
RwReport run_config(const char* name) {
  using Rw = CrwLock<kOriginal, SplitReadIndicator, P, CohortFor<kOriginal>>;
  RwReport r;
  r.config = name;
  run_rr_clean<Rw>(r.rr_clean, r.rr_edge_free);
  run_w_inversion<Rw>(r.w_inversion, r.w_inversion_once);
  r.rw_mixed_inversion = run_rw_mixed_inversion<Rw>();
  r.mismatch_intercepted = run_mode_mismatch<Rw>();
  run_unbalanced_read<Rw>(r.unbalanced_read_refused, r.indicator_intact);
  r.agrees_native = run_agreement<CohortFor, P>();
  return r;
}

}  // namespace

std::vector<RwReport> run_rw_matrix() {
  // Pin every policy surface so results do not depend on the
  // environment; the mismatch scenario scopes its own rule set.
  response::ResponseRulesGuard rules("");
  shield::ShieldPolicyGuard policy(ShieldPolicy::kSuppress);
  lockdep::LockdepModeGuard mode(lockdep::LockdepMode::kReport);
  std::vector<RwReport> out;
  out.push_back(run_config<CPtktTktLock, RwPreference::kNeutral>(
      "C-RW-NP/ptkt-tkt"));
  out.push_back(run_config<CTktTktLock, RwPreference::kReader>(
      "C-RW-RP/tkt-tkt"));
  out.push_back(run_config<CBoBoLock, RwPreference::kWriter>(
      "C-RW-WP/bo-bo"));
  return out;
}

void print_rw_matrix(const std::vector<RwReport>& reports) {
  std::printf("%-18s %8s %9s %7s %5s %6s %9s %8s %7s %7s\n", "Config",
              "rr", "edgefree", "w-inv", "once", "mixed", "mismatch",
              "r-unbal", "intact", "native");
  for (const auto& r : reports) {
    std::printf("%-18s %8s %9s %7s %5s %6s %9s %8s %7s %7s\n",
                r.config.c_str(), r.rr_clean ? "clean" : "NOISY",
                r.rr_edge_free ? "yes" : "NO",
                r.w_inversion ? "yes" : "MISSED",
                r.w_inversion_once ? "yes" : "SPAM",
                r.rw_mixed_inversion ? "yes" : "MISSED",
                r.mismatch_intercepted ? "yes" : "NO",
                r.unbalanced_read_refused ? "yes" : "NO",
                r.indicator_intact ? "yes" : "SKEWED",
                r.agrees_native ? "agree" : "DIFFER");
  }
}

}  // namespace resilock::verify
