// The Table 1 engine: empirically derives, per lock algorithm, the
// paper's misuse matrix — does one unbalanced unlock violate mutual
// exclusion? starve the misbehaving thread (Tm)? starve others? — for
// the *original* protocol, and whether the *resilient* protocol detects
// and prevents it.
//
// Every scenario is a scripted deterministic interleaving taken from the
// paper's §3–§5 case analyses (e.g., CLH's Figure 8 re-enqueue, MCS's
// stale-next case 3, GT's missed-toggle). "Starves" is operationalized
// as "makes no progress within verify::kWatchWindow while peers do";
// starved threads are rescued through VerifyAccess so experiments join.
#pragma once

#include <string>
#include <vector>

namespace resilock::verify {

struct MisuseReport {
  std::string lock;

  // Observed on the ORIGINAL protocol under a single misbehaving release.
  bool violates_mutex = false;
  bool tm_starves = false;
  bool others_starve = false;

  // Observed on the RESILIENT protocol under the same script.
  bool detected = false;    // release() returned false
  bool prevented = false;   // no violation, no starvation, still functional

  // The paper's Table 1 claims, for side-by-side printing.
  bool paper_violates = false;
  bool paper_tm = false;
  bool paper_others = false;
  bool paper_detectable = false;
  std::string remedy;  // Table 1 "detection + remedy" column
};

MisuseReport misuse_tas();
MisuseReport misuse_ticket();
MisuseReport misuse_abql();
MisuseReport misuse_graunke_thakkar();
MisuseReport misuse_mcs();
MisuseReport misuse_clh();
MisuseReport misuse_mcs_k42();
MisuseReport misuse_hemlock();
MisuseReport misuse_hmcs();
MisuseReport misuse_hclh();
MisuseReport misuse_hbo();
MisuseReport misuse_cohort_tkt_tkt();
MisuseReport misuse_crw_np();
MisuseReport misuse_peterson();
MisuseReport misuse_fischer();
MisuseReport misuse_lamport1();
MisuseReport misuse_lamport2();
MisuseReport misuse_bakery();

// All of the above, in the paper's Table 1 row order (plus the extra
// rows this repo adds: HBO, C-TKT-TKT).
std::vector<MisuseReport> run_misuse_matrix();

// Pretty-print the matrix next to the paper's claims (used by
// bench/table1_behavior).
void print_misuse_matrix(const std::vector<MisuseReport>& reports);

}  // namespace resilock::verify
