// The Table 1 engine: empirically derives, per lock algorithm, the
// paper's misuse matrix — does one unbalanced unlock violate mutual
// exclusion? starve the misbehaving thread (Tm)? starve others? — for
// the *original* protocol, and whether the *resilient* protocol detects
// and prevents it.
//
// Every scenario is a scripted deterministic interleaving taken from the
// paper's §3–§5 case analyses (e.g., CLH's Figure 8 re-enqueue, MCS's
// stale-next case 3, GT's missed-toggle). "Starves" is operationalized
// as "makes no progress within verify::kWatchWindow while peers do";
// starved threads are rescued through VerifyAccess so experiments join.
#pragma once

#include <string>
#include <vector>

namespace resilock::verify {

struct MisuseReport {
  std::string lock;

  // Observed on the ORIGINAL protocol under a single misbehaving release.
  bool violates_mutex = false;
  bool tm_starves = false;
  bool others_starve = false;

  // Observed on the RESILIENT protocol under the same script.
  bool detected = false;    // release() returned false
  bool prevented = false;   // no violation, no starvation, still functional

  // The paper's Table 1 claims, for side-by-side printing.
  bool paper_violates = false;
  bool paper_tm = false;
  bool paper_others = false;
  bool paper_detectable = false;
  std::string remedy;  // Table 1 "detection + remedy" column
};

MisuseReport misuse_tas();
MisuseReport misuse_ticket();
MisuseReport misuse_abql();
MisuseReport misuse_graunke_thakkar();
MisuseReport misuse_mcs();
MisuseReport misuse_clh();
MisuseReport misuse_mcs_k42();
MisuseReport misuse_hemlock();
MisuseReport misuse_hmcs();
MisuseReport misuse_hclh();
MisuseReport misuse_hbo();
MisuseReport misuse_cohort_tkt_tkt();
MisuseReport misuse_crw_np();
MisuseReport misuse_peterson();
MisuseReport misuse_fischer();
MisuseReport misuse_lamport1();
MisuseReport misuse_lamport2();
MisuseReport misuse_bakery();

// All of the above, in the paper's Table 1 row order (plus the extra
// rows this repo adds: HBO, C-TKT-TKT).
std::vector<MisuseReport> run_misuse_matrix();

// Pretty-print the matrix next to the paper's claims (used by
// bench/table1_behavior).
void print_misuse_matrix(const std::vector<MisuseReport>& reports);

// ---------------------------------------------------------------------
// Shield-vs-native comparison (src/shield/). The ownership shield
// claims to deliver, from *outside* the protocol, what each bespoke
// kResilient fix delivers from inside. This matrix drives the four
// canonical misuse scenarios — unbalanced unlock of a free lock, double
// unlock by the previous owner, unlock while another thread holds the
// lock, and same-thread reentrant relock — against shield<X> over the
// ORIGINAL protocol and against the native RESILIENT protocol, and
// records whether each one detected the misuse, preserved mutual
// exclusion, and stayed functional afterwards.
// ---------------------------------------------------------------------

struct ShieldCell {
  bool applicable = true;      // false: cannot be driven safely (e.g.
                               // relock on a lock with no trylock)
  bool detected = false;       // misuse refused or safely absorbed
  bool mutex_preserved = true; // no double-entry observed
  bool functional_after = false;
};

struct ShieldComparison {
  std::string lock;  // base algorithm name
  // Cells indexed in shield::MisuseKind order: unbalanced unlock,
  // double unlock, non-owner unlock, reentrant relock.
  ShieldCell shielded[4];  // "shield<lock>" over the kOriginal protocol
  ShieldCell native[4];    // the lock's own kResilient flavor

  bool shield_matches_native() const;
};

// Runs the comparison for `names` (default: the Table 2 six). The
// shield policy is pinned to kSuppress for the run so results do not
// depend on RESILOCK_SHIELD_POLICY.
std::vector<ShieldComparison> run_shield_matrix(
    const std::vector<std::string>& names = {});

void print_shield_matrix(const std::vector<ShieldComparison>& reports);

}  // namespace resilock::verify
