// Hierarchical lockdep-attribution matrix: does the per-level class-key
// treatment of the HMCS/HCLH/AHMCS trees (core/{hmcs,hclh,ahmcs}.hpp)
// attribute what it promises, at the level it promises, and nothing
// more?
//
// Five scripted gates per configuration (2- and 3-level HMCS trees,
// the two-level HCLH queue hierarchy, 2- and 3-level AHMCS):
//   * ordered   — two trees nested in a consistent order from two
//                 threads produce NO report (false-positive gate; the
//                 internal climbs of both trees stay edge-free while
//                 real cross-tree edges record);
//   * inversion — A-then-B followed by B-then-A on one thread: the
//                 same-level cross-tree AB/BA is flagged on the first
//                 reversed acquisition, attributed to the LEAF level's
//                 class on both ends (the trace event's a/b labels are
//                 the level label, e.g. "hmcs.level2"), and reported
//                 exactly once for that class pair even when the
//                 reversed order is replayed;
//   * climb     — a contended single tree records no order edge
//                 between any two of its own level classes (the
//                 child→parent climb and the implicit ancestor grants
//                 are the protocol's invariant, not app-level facts);
//   * misuse    — a misused release at depth is intercepted BEFORE the
//                 parent-level hand-off can free an ancestor out from
//                 under the legitimate holder, and the trace event is
//                 attributed to the entry level's class — including
//                 the AHMCS adaptive root entry, which must tag from
//                 the level it joined at, not the leaf it bypassed.
//                 HCLH is immune by construction (paper Table 1); its
//                 gate verifies the immunity: a bogus release leaves
//                 the holder and the protocol intact;
//   * scoped    — an "inversion@class=<leaf label>=abort" response
//                 rule fires (through the abort trap) for an inversion
//                 attributed to that level and does NOT fire for an
//                 inversion among unrelated per-instance classes.
#pragma once

#include <string>
#include <vector>

namespace resilock::verify {

struct HierReport {
  std::string config;

  bool ordered_clean = false;       // consistent nesting: no report
  bool inversion_at_level = false;  // AB/BA attributed to the leaf level
  bool inversion_once = false;      // one report per class pair, ever
  bool climb_edge_free = false;     // no edges among own level classes
  bool misuse_intercepted = false;  // release-at-depth refused (HCLH:
                                    // immune and intact)
  bool misuse_attributed = false;   // trace names the entry level class
  bool scoped_rule_fired = false;   // @class= abort fired on its class
  bool scoped_rule_scoped = false;  // ...and only on its class

  bool all_pass() const {
    return ordered_clean && inversion_at_level && inversion_once &&
           climb_edge_free && misuse_intercepted && misuse_attributed &&
           scoped_rule_fired && scoped_rule_scoped;
  }
};

// Runs the matrix across the five configurations. Pins the shield
// policy to kSuppress, the lockdep mode to kReport, and the response
// rules to the no-rules state (the scoped gate installs its own rule
// set for its scope).
std::vector<HierReport> run_hier_matrix();

void print_hier_matrix(const std::vector<HierReport>& reports);

}  // namespace resilock::verify
