// Lockdep scenario matrix: does the dependency subsystem (src/lockdep/)
// flag what it promises, and nothing more?
//
// Four scripted scenarios per base algorithm, run on shield<X> so the
// order edges come from the real Shield hooks:
//   * ordered   — consistently ordered nesting (A→B→C from several
//                 threads) must produce NO report (false-positive gate);
//   * inversion — A-then-B followed by B-then-A on one thread: the AB/BA
//                 cycle must be flagged on the FIRST occurrence of the
//                 reversed order, with no two-thread wedge anywhere;
//   * cycle     — the dining-philosophers pattern over three locks,
//                 driven sequentially: the 3-cycle must be flagged while
//                 still no thread has ever blocked;
//   * wedge     — two probes REALLY deadlock (T1 holds A wants B, T2
//                 holds B wants A). Lockdep must report before/while
//                 they wedge, and the probes are then rescued through
//                 VerifyAccess back doors so the experiment always
//                 joins. Applicable where a wedged acquire can be
//                 rescued from outside (TAS word reset, Ticket
//                 now-serving sweep); a rescued lock is destroyed.
#pragma once

#include <string>
#include <vector>

namespace resilock::verify {

struct LockdepScenarioReport {
  std::string lock;  // base algorithm name

  bool ordered_clean = false;      // no report on consistent order
  bool inversion_flagged = false;  // AB/BA flagged, first occurrence
  bool inversion_once = false;     // exactly one report for one edge
  bool cycle_flagged = false;      // 3-lock cycle flagged

  bool wedge_applicable = false;   // rescue tooling exists for the base
  bool wedge_forewarned = false;   // report fired while probes wedged
  bool probes_joined = false;      // rescues unstuck every probe

  bool all_pass() const {
    return ordered_clean && inversion_flagged && inversion_once &&
           cycle_flagged && (!wedge_applicable ||
                             (wedge_forewarned && probes_joined));
  }
};

// Runs the matrix for `names` (default: TAS, Ticket, MCS — one word
// lock, one FIFO counter lock, one context queue lock). Pins the shield
// policy to kSuppress and the lockdep mode to kReport for the run.
std::vector<LockdepScenarioReport> run_lockdep_matrix(
    const std::vector<std::string>& names = {});

void print_lockdep_matrix(
    const std::vector<LockdepScenarioReport>& reports);

}  // namespace resilock::verify
