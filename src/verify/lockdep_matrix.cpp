#include "verify/lockdep_matrix.hpp"

#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>

#include "core/lock_registry.hpp"
#include "core/tas.hpp"
#include "core/ticket.hpp"
#include "lockdep/lockdep.hpp"
#include "response/response.hpp"
#include "shield/shield.hpp"
#include "verify/access.hpp"
#include "verify/checkers.hpp"

namespace resilock::verify {
namespace {

std::uint64_t report_count() {
  const auto s = lockdep::Graph::instance().stats();
  return s.reports();
}

std::uint64_t inversion_count() {
  return lockdep::Graph::instance().stats().inversions;
}

std::uint64_t cycle_count() {
  return lockdep::Graph::instance().stats().cycles;
}

// Consistently ordered nesting from two threads: must stay silent.
bool run_ordered(const std::string& shielded) {
  auto a = make_lock(shielded, kOriginal);
  auto b = make_lock(shielded, kOriginal);
  auto c = make_lock(shielded, kOriginal);
  const std::uint64_t before = report_count();
  std::atomic<bool> t2_done{false};
  auto nest = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      a->acquire();
      b->acquire();
      c->acquire();
      c->release();
      b->release();
      a->release();
    }
  };
  std::thread t([&] {
    nest(50);
    t2_done.store(true, std::memory_order_release);
  });
  nest(50);
  t.join();
  return t2_done.load() && report_count() == before;
}

// A→B then B→A on ONE thread, strictly sequentially: the inversion is
// flagged on the first reversed acquisition although no thread ever
// blocks (both locks are free at every acquire).
void run_inversion(const std::string& shielded, bool& flagged,
                   bool& once) {
  auto a = make_lock(shielded, kOriginal);
  auto b = make_lock(shielded, kOriginal);
  const std::uint64_t before = inversion_count();
  a->acquire();
  b->acquire();  // edge A→B
  b->release();
  a->release();
  b->acquire();
  a->acquire();  // edge B→A: closes AB/BA — must flag right here
  flagged = inversion_count() == before + 1;
  a->release();
  b->release();
  // Replaying the same reversed order adds no new edge, so no second
  // report: first-occurrence semantics, not per-event spam.
  b->acquire();
  a->acquire();
  a->release();
  b->release();
  once = inversion_count() == before + 1;
}

// Dining-philosophers order over three forks, walked sequentially by
// one thread (each "philosopher" in turn): the closing 2→0 edge makes a
// 3-cycle with no concurrency anywhere.
bool run_cycle(const std::string& shielded) {
  std::unique_ptr<AnyLock> fork[3] = {make_lock(shielded, kOriginal),
                                      make_lock(shielded, kOriginal),
                                      make_lock(shielded, kOriginal)};
  const std::uint64_t before = cycle_count();
  for (int p = 0; p < 3; ++p) {
    fork[p]->acquire();
    fork[(p + 1) % 3]->acquire();
    fork[(p + 1) % 3]->release();
    fork[p]->release();
  }
  return cycle_count() == before + 1;
}

// Two probes really wedge on an AB/BA; lockdep must have reported by
// then, and `rescue` (repeatedly invoked) must unstick both.
template <typename BaseLock, typename Rescue>
void run_wedge(Rescue rescue, bool& forewarned, bool& joined) {
  shield::Shield<BaseLock> a(shield::ShieldPolicy::kSuppress);
  shield::Shield<BaseLock> b(shield::ShieldPolicy::kSuppress);
  const std::uint64_t before = report_count();
  std::atomic<bool> a_held{false}, b_held{false}, go{false};
  Probe p1([&] {
    a.acquire();
    a_held.store(true, std::memory_order_release);
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    b.acquire();  // wedges: p2 holds b
    b.release();
    a.release();
  });
  Probe p2([&] {
    b.acquire();
    b_held.store(true, std::memory_order_release);
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    a.acquire();  // wedges: p1 holds a — the report fires HERE, before
    a.release();  // the spin can begin
    b.release();
  });
  wait_for([&] { return a_held.load() && b_held.load(); });
  go.store(true, std::memory_order_release);
  // The report must arrive while both probes are still stuck in their
  // crossed acquires — detection did not need the wedge to resolve.
  const bool flagged = wait_for([&] { return report_count() > before; });
  forewarned = flagged && !p1.done() && !p2.done();
  // Rescue until both probes return; the locks are destroyed after.
  const auto deadline =
      std::chrono::steady_clock::now() + 20 * kWatchWindow;
  while (!p1.done() || !p2.done()) {
    rescue(a, b);
    std::this_thread::yield();
    if (std::chrono::steady_clock::now() >= deadline) break;
  }
  joined = p1.done() && p2.done();
  // Probe destructors join; if a rescue ever failed we would rather
  // hang visibly here than leak a detached spinner into later tests.
}

LockdepScenarioReport run_row(const std::string& name) {
  LockdepScenarioReport r;
  r.lock = name;
  const std::string shielded = shielded_name(name);
  r.ordered_clean = run_ordered(shielded);
  run_inversion(shielded, r.inversion_flagged, r.inversion_once);
  r.cycle_flagged = run_cycle(shielded);

  if (name == "TAS") {
    r.wedge_applicable = true;
    run_wedge<TatasLock>(
        [](shield::Shield<TatasLock>& a, shield::Shield<TatasLock>& b) {
          // Blind word reset: exactly the misuse the ORIGINAL TAS
          // protocol permits, aimed on purpose at the wedged waiters.
          a.base().release();
          b.base().release();
        },
        r.wedge_forewarned, r.probes_joined);
  } else if (name == "Ticket") {
    r.wedge_applicable = true;
    using TL = BasicTicketLock<kOriginal>;
    run_wedge<TL>(
        [](shield::Shield<TL>& a, shield::Shield<TL>& b) {
          // Sweep now_serving over every issued ticket so any wedged
          // waiter observes its own value (equality spin).
          for (auto* l : {&a.base(), &b.base()}) {
            const auto next = VerifyAccess::ticket_next(*l);
            for (std::uint64_t s = VerifyAccess::ticket_serving(*l);
                 s <= next; ++s) {
              VerifyAccess::ticket_force_serving(*l, s);
              std::this_thread::yield();
            }
          }
        },
        r.wedge_forewarned, r.probes_joined);
  }
  return r;
}

}  // namespace

std::vector<LockdepScenarioReport> run_lockdep_matrix(
    const std::vector<std::string>& names) {
  // Pin every policy surface so results do not depend on the
  // environment: no response-engine rules (RESILOCK_POLICY cleared for
  // the scope), misuses the scenarios provoke are suppressed, lockdep
  // reports but never aborts.
  response::ResponseRulesGuard rules("");
  shield::ShieldPolicyGuard policy(shield::ShieldPolicy::kSuppress);
  lockdep::LockdepModeGuard mode(lockdep::LockdepMode::kReport);
  const std::vector<std::string> defaults = {"TAS", "Ticket", "MCS"};
  std::vector<LockdepScenarioReport> out;
  for (const auto& n : names.empty() ? defaults : names) {
    out.push_back(run_row(n));
  }
  return out;
}

void print_lockdep_matrix(
    const std::vector<LockdepScenarioReport>& reports) {
  std::printf("%-10s %8s %10s %6s %6s | %10s %8s %7s\n", "Lock",
              "ordered", "inversion", "once", "cycle", "wedge?",
              "flagged", "joined");
  for (const auto& r : reports) {
    std::printf("%-10s %8s %10s %6s %6s | %10s %8s %7s\n",
                r.lock.c_str(), r.ordered_clean ? "clean" : "NOISY",
                r.inversion_flagged ? "yes" : "MISSED",
                r.inversion_once ? "yes" : "SPAM",
                r.cycle_flagged ? "yes" : "MISSED",
                r.wedge_applicable ? "run" : "n/a",
                !r.wedge_applicable ? "-"
                                    : (r.wedge_forewarned ? "yes"
                                                          : "MISSED"),
                !r.wedge_applicable ? "-"
                                    : (r.probes_joined ? "yes" : "NO"));
  }
}

}  // namespace resilock::verify
