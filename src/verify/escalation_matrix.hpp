// Escalation scenario matrix: does the unified response engine
// (src/response/) fire each tier of the adaptive ladder under exactly
// the situation the rule names, and do the legacy policy knobs still
// mean what they always meant?
//
// Three scripted scenarios per base algorithm, run on shield<X> from
// the registry (default-policy shields — the engine-eligible kind)
// with the "adaptive" rule set installed:
//   * uncontended — an unbalanced unlock of a free, waiter-less lock
//                   must take the PASSTHROUGH verdict (the base
//                   protocol, resilient flavor here, refuses it);
//   * contended   — a non-owner unlock while another thread is
//                   blocked on the lock (live waiter queued) must take
//                   the LOG verdict: diagnosed AND suppressed;
//   * cycle       — an AB/BA order inversion whose closing edge is
//                   inserted while the acquired lock has waiters must
//                   take the ABORT verdict. The verify abort trap
//                   records the would-be death and lets the run
//                   continue, so the scenario also proves every thread
//                   still joins.
// Plus the compatibility gate: with no rules installed, the engine
// must map every legacy RESILOCK_SHIELD_POLICY value and
// RESILOCK_LOCKDEP mode onto itself (decide() == fallback).
#pragma once

#include <string>
#include <vector>

namespace resilock::verify {

struct EscalationReport {
  std::string lock;  // base algorithm name

  bool uncontended_passthrough = false;  // tier 1 verdict observed
  bool contended_logged = false;         // tier 2 verdict observed
  bool contended_suppressed = false;     // ...and the misuse was refused
  bool cycle_abort_verdict = false;      // tier 3 verdict trapped
  bool threads_joined = false;           // nothing wedged on the way

  bool all_pass() const {
    return uncontended_passthrough && contended_logged &&
           contended_suppressed && cycle_abort_verdict && threads_joined;
  }
};

// Runs the matrix for `names` (default: TAS, Ticket, MCS). Installs
// the adaptive rule set, pins lockdep to report and the shield default
// policy to suppress for the run; every pin is restored on return.
std::vector<EscalationReport> run_escalation_matrix(
    const std::vector<std::string>& names = {});

// True iff decide() == fallback for every (legacy policy, event kind,
// context) combination with no rules installed — the compatibility
// mapping the old env vars ride on.
bool verify_legacy_compat_mapping();

void print_escalation_matrix(const std::vector<EscalationReport>& reports);

}  // namespace resilock::verify
