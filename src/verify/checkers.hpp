// Invariant checkers for misuse-injection experiments.
//
// The paper's Table 1 asks, per lock: does a single unbalanced unlock
// violate mutual exclusion? starve the misbehaving thread? starve
// others? These checkers operationalize the questions:
//   * MutexChecker counts threads simultaneously inside a critical
//     section and records the high-water mark (>1 == violation).
//   * Probe runs a potentially-starving operation on its own thread and
//     answers "did it finish within a generous window?" — the bounded
//     stand-in for "spins forever". Scenarios that induce real protocol
//     starvation rescue the probe through VerifyAccess afterwards so the
//     thread always joins.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>

namespace resilock::verify {

using std::chrono::milliseconds;

// Generous on oversubscribed CI hosts; a starved spinner never finishes
// regardless of the window.
inline constexpr milliseconds kWatchWindow{400};

class MutexChecker {
 public:
  void enter() {
    const std::int32_t v = in_cs_.fetch_add(1, std::memory_order_acq_rel) + 1;
    std::int32_t m = max_in_cs_.load(std::memory_order_relaxed);
    while (m < v && !max_in_cs_.compare_exchange_weak(
                        m, v, std::memory_order_acq_rel,
                        std::memory_order_relaxed)) {
    }
  }
  void exit() { in_cs_.fetch_sub(1, std::memory_order_acq_rel); }

  std::int32_t current() const {
    return in_cs_.load(std::memory_order_acquire);
  }
  std::int32_t max_simultaneous() const {
    return max_in_cs_.load(std::memory_order_acquire);
  }
  bool violated() const { return max_simultaneous() > 1; }

 private:
  std::atomic<std::int32_t> in_cs_{0};
  std::atomic<std::int32_t> max_in_cs_{0};
};

// Polls `pred` until true or timeout; returns whether it became true.
inline bool wait_for(const std::function<bool()>& pred,
                     milliseconds timeout = kWatchWindow) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

// A thread running one operation, with bounded completion observation.
class Probe {
 public:
  explicit Probe(std::function<void()> fn)
      : thread_([this, f = std::move(fn)] {
          f();
          done_.store(true, std::memory_order_release);
        }) {}

  ~Probe() {
    if (thread_.joinable()) thread_.join();
  }
  Probe(const Probe&) = delete;
  Probe& operator=(const Probe&) = delete;

  bool done() const { return done_.load(std::memory_order_acquire); }

  bool finished_within(milliseconds t = kWatchWindow) {
    return wait_for([this] { return done(); }, t);
  }

  void join() { thread_.join(); }

 private:
  std::atomic<bool> done_{false};
  std::thread thread_;
};

}  // namespace resilock::verify
