#include "verify/escalation_matrix.hpp"

#include <atomic>
#include <cstdio>
#include <memory>

#include "core/lock_registry.hpp"
#include "lockdep/lockdep.hpp"
#include "response/response.hpp"
#include "shield/policy.hpp"
#include "verify/checkers.hpp"

namespace resilock::verify {
namespace {

using response::Action;
using response::EventContext;
using response::ResponseEngine;
using response::ResponseEvent;

std::uint64_t action_count(Action a) {
  return ResponseEngine::instance().stats().by_action[
      static_cast<std::size_t>(a)];
}

// Abort-trap plumbing: the handler is a bare function pointer, so the
// scenario parks its flags here before installing it. A trapped abort
// records the verdict and releases the scenario's held lock so the
// deliberately-wedging acquire can complete.
std::atomic<bool>* g_trap_fired = nullptr;
std::atomic<bool>* g_trap_release = nullptr;

void abort_trap(ResponseEvent, const void*) {
  if (g_trap_fired != nullptr) {
    g_trap_fired->store(true, std::memory_order_release);
  }
  if (g_trap_release != nullptr) {
    g_trap_release->store(true, std::memory_order_release);
  }
}

// Tier 1 — unbalanced unlock of a free lock, nobody waiting: the
// adaptive ladder forwards it to the base protocol (whose resilient
// check refuses it) instead of spending a diagnostic on a harmless
// slip.
bool run_uncontended(const std::string& shielded) {
  auto lock = make_lock(shielded, kResilient);
  const std::uint64_t pass_before = action_count(Action::kPassthrough);
  const bool refused = !lock->release();  // resilient base returns false
  return refused && action_count(Action::kPassthrough) == pass_before + 1 &&
         lock->misuse_total() == 1;
}

// Tier 2 — non-owner unlock while a waiter is queued: must be logged
// AND suppressed (the owner keeps the lock, the waiter keeps its
// place).
void run_contended(const std::string& shielded, bool& logged,
                   bool& suppressed, bool& joined) {
  auto lock = make_lock(shielded, kResilient);
  std::atomic<bool> held{false}, release{false};
  Probe owner([&] {
    lock->acquire();
    held.store(true, std::memory_order_release);
    wait_for([&] { return release.load(std::memory_order_acquire); },
             20 * kWatchWindow);
    lock->release();
  });
  wait_for([&] { return held.load(std::memory_order_acquire); });
  Probe waiter([&] { lock->acquire(); lock->release(); });
  // The waiter registers on the shield's contention probe the moment it
  // blocks; that live gauge is what flips the engine's verdict.
  wait_for([&] { return lock->waiters() == 1; });

  const std::uint64_t log_before = action_count(Action::kLog);
  suppressed = !lock->release();  // non-owner unlock, refused
  logged = action_count(Action::kLog) == log_before + 1;

  release.store(true, std::memory_order_release);
  joined = wait_for([&] { return owner.done() && waiter.done(); },
                    20 * kWatchWindow);
}

// Tier 3 — AB/BA inversion whose closing edge lands while the acquired
// lock has live waiters: the adaptive ladder's abort rule must fire.
// The trap stands in for the death, then unsticks the scenario.
void run_cycle_with_waiters(const std::string& shielded, bool& verdict,
                            bool& joined) {
  auto a = make_lock(shielded, kResilient);
  auto b = make_lock(shielded, kResilient);

  // Teach the graph A→B with everything quiet.
  a->acquire();
  b->acquire();
  b->release();
  a->release();

  std::atomic<bool> held{false}, release{false}, trapped{false};
  Probe holder([&] {
    a->acquire();
    held.store(true, std::memory_order_release);
    // Released by the abort trap — or by the timeout, so a missed
    // verdict fails the row instead of wedging the run.
    wait_for([&] { return release.load(std::memory_order_acquire); },
             20 * kWatchWindow);
    a->release();
  });
  wait_for([&] { return held.load(std::memory_order_acquire); });
  Probe waiter([&] { a->acquire(); a->release(); });
  wait_for([&] { return a->waiters() == 1; });

  const std::uint64_t abort_before = action_count(Action::kAbort);
  g_trap_fired = &trapped;
  g_trap_release = &release;
  {
    response::ScopedAbortHandler trap(abort_trap);
    b->acquire();
    a->acquire();  // closes B→A with a waiter queued: abort verdict here
    a->release();
    b->release();
  }
  g_trap_fired = nullptr;
  g_trap_release = nullptr;
  release.store(true, std::memory_order_release);

  joined = wait_for([&] { return holder.done() && waiter.done(); },
                    20 * kWatchWindow);
  verdict = trapped.load(std::memory_order_acquire) &&
            action_count(Action::kAbort) == abort_before + 1;
}

EscalationReport run_row(const std::string& name) {
  EscalationReport r;
  r.lock = name;
  const std::string shielded = shielded_name(name);
  bool contended_joined = false, cycle_joined = false;
  r.uncontended_passthrough = run_uncontended(shielded);
  run_contended(shielded, r.contended_logged, r.contended_suppressed,
                contended_joined);
  run_cycle_with_waiters(shielded, r.cycle_abort_verdict, cycle_joined);
  r.threads_joined = contended_joined && cycle_joined;
  return r;
}

}  // namespace

std::vector<EscalationReport> run_escalation_matrix(
    const std::vector<std::string>& names) {
  // Pin every global policy surface for the run: the adaptive rules
  // under test, lockdep reporting (edges must be tracked; the verdict
  // comes from the rules), and a suppress default as the fallback.
  response::ResponseRulesGuard rules(response::adaptive_policy_spec());
  lockdep::LockdepModeGuard mode(lockdep::LockdepMode::kReport);
  shield::ShieldPolicyGuard policy(shield::ShieldPolicy::kSuppress);
  const std::vector<std::string> defaults = {"TAS", "Ticket", "MCS"};
  std::vector<EscalationReport> out;
  for (const auto& n : names.empty() ? defaults : names) {
    out.push_back(run_row(n));
  }
  return out;
}

bool verify_legacy_compat_mapping() {
  response::ResponseRulesGuard none("");  // the legacy state
  const EventContext uncontended{};
  const EventContext contended{/*waiters=*/2, /*contended=*/true,
                               /*in_flagged_cycle=*/false};
  for (const shield::ShieldPolicy p :
       {shield::ShieldPolicy::kSuppress, shield::ShieldPolicy::kAbort,
        shield::ShieldPolicy::kLogAndSuppress,
        shield::ShieldPolicy::kPassThrough}) {
    const Action fallback = shield::to_action(p);
    for (std::size_t e = 0; e < response::kResponseEvents; ++e) {
      const auto ev = static_cast<ResponseEvent>(e);
      for (const EventContext* ctx : {&uncontended, &contended}) {
        if (ResponseEngine::instance().decide(ev, *ctx, fallback) !=
            fallback) {
          return false;
        }
      }
    }
  }
  return true;
}

void print_escalation_matrix(const std::vector<EscalationReport>& reports) {
  std::printf("%-10s %14s %12s %12s %12s %8s\n", "Lock", "uncontended",
              "contended", "suppressed", "cycle", "joined");
  for (const auto& r : reports) {
    std::printf("%-10s %14s %12s %12s %12s %8s\n", r.lock.c_str(),
                r.uncontended_passthrough ? "passthrough" : "WRONG",
                r.contended_logged ? "logged" : "SILENT",
                r.contended_suppressed ? "yes" : "NO",
                r.cycle_abort_verdict ? "abort" : "MISSED",
                r.threads_joined ? "yes" : "NO");
  }
}

}  // namespace resilock::verify
