// Synthetic commit corpus for the Figure 1 pipeline.
//
// DESIGN.md §2.1, substitution 4: the real repositories cannot be
// crawled offline, so generate_corpus() emits realistic commit messages
// with the paper's ground-truth misuse counts per project —
//   Golang 14/20, Linux 40/12, LLVM 16/26, MySQL 4/7, memcached 3/9
// (unbalanced-unlock / unbalanced-lock, read off Figure 1) — plus a
// configurable volume of lock-mentioning noise commits (design and
// performance changes, which the paper's methodology excludes). The
// classifier must recover the planted counts; that is the end-to-end
// test of the mining pipeline.
#pragma once

#include <cstdint>
#include <vector>

#include "mining/classifier.hpp"

namespace resilock::mining {

struct ProjectGroundTruth {
  const char* project;
  std::uint32_t unbalanced_unlock;
  std::uint32_t unbalanced_lock;
};

// The paper's Figure 1 counts.
const std::vector<ProjectGroundTruth>& figure1_ground_truth();

// Deterministic corpus: planted misuse commits per the ground truth,
// interleaved with `noise_per_project` lock-related-but-not-misuse
// commits. Same seed -> same corpus.
std::vector<Commit> generate_corpus(std::uint32_t noise_per_project = 50,
                                    std::uint64_t seed = 0xF16uLL);

}  // namespace resilock::mining
