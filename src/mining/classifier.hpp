// Commit-message classifier for the Figure 1 study (paper §2.1).
//
// The paper mined the full commit histories of Golang, the Linux kernel,
// LLVM, MySQL, and memcached for lock-misuse fixes, searching for a list
// of strings ("double unlock", "missing unlock", ...) and then binning
// the hits into two categories:
//   * unbalanced-LOCK  — forgetting to release, re-acquiring a held
//     lock, destroyed-mutex release failures, wrong lock placement;
//   * unbalanced-UNLOCK — releasing a lock that is not held, double
//     unlock, unbalanced reader-writer pairs.
// This module implements that classifier. The corpus itself cannot be
// crawled offline; corpus.hpp generates a synthetic one with the paper's
// ground-truth per-project counts (see DESIGN.md §2.1, substitution 4).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace resilock::mining {

enum class MisuseClass {
  kUnrelated,         // lock-mentioning commit that is not a misuse fix
  kUnbalancedLock,    // missing/forgotten unlock, self-deadlock, placement
  kUnbalancedUnlock,  // unlock without lock, double unlock, RW mismatch
};

struct Commit {
  std::string project;
  std::string sha;
  std::string message;
};

// The paper's §2.1 search strings; a commit must match at least one to
// be considered lock-related.
const std::vector<std::string>& search_strings();

// Classify one commit message (case-insensitive matching).
MisuseClass classify(const std::string& message);

struct ProjectTally {
  std::uint32_t unbalanced_lock = 0;
  std::uint32_t unbalanced_unlock = 0;
  std::uint32_t unrelated = 0;

  std::uint32_t misuse_total() const {
    return unbalanced_lock + unbalanced_unlock;
  }
  double unlock_fraction() const {
    return misuse_total() == 0
               ? 0.0
               : static_cast<double>(unbalanced_unlock) / misuse_total();
  }
};

// Classify a corpus and aggregate per project.
std::map<std::string, ProjectTally> tally(const std::vector<Commit>& corpus);

// Print the Figure 1 stacked-percentage histogram with counts.
void print_figure1(const std::map<std::string, ProjectTally>& tallies);

}  // namespace resilock::mining
