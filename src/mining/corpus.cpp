#include "mining/corpus.hpp"

#include <array>
#include <cstdio>

#include "runtime/rng.hpp"

namespace resilock::mining {
namespace {

// Message templates phrased after real commit logs in the studied
// repositories; %s is a subsystem name.
constexpr std::array kUnlockTemplates = {
    "%s: fix double unlock in error path",
    "%s: don't unlock mutex without holding it",
    "%s: remove stray unlock left after refactor",
    "%s: avoid unlock of unlocked mutex when init fails",
    "%s: fix unbalanced unlock in retry loop",
    "%s: fix double unlock when the goto out path is taken early",
    "%s: fix read unlock on write-locked rwlock",
    "%s: releases the lock without acquiring it in shutdown path",
};

constexpr std::array kLockTemplates = {
    "%s: fix missing unlock on error return",
    "%s: don't forget to unlock before returning early",
    "%s: fix mutex lock leak when allocation fails",
    "%s: release lock in all exit paths (was never released)",
    "%s: fix recursive lock self-deadlock in reconnect",
    "%s: fix double lock of state mutex",
    "%s: correct lock placement around cache update",
    "%s: forgetting to release a lock in the slow path",
};

constexpr std::array kNoiseTemplates = {
    "%s: reduce mutex hold time in hot path",
    "%s: replace spinlock with mutex for long sections",
    "%s: document locking rules for the queue",
    "%s: lockless fast path for stat counters",
    "%s: shard the global mutex to reduce contention",
    "%s: rename lock fields for clarity",
    "%s: add lockdep annotations",
    "%s: convert rwlock to RCU",
};

constexpr std::array kSubsystems = {
    "net",    "sched",  "driver",  "fs",     "mm",     "runtime",
    "server", "cache",  "storage", "proto",  "crypto", "io",
};

std::string format_one(const char* tmpl, const char* subsystem) {
  char buf[256];
  std::snprintf(buf, sizeof buf, tmpl, subsystem);
  return std::string(buf);
}

std::string fake_sha(runtime::Xoshiro256ss& rng) {
  static const char hex[] = "0123456789abcdef";
  std::string s(10, '0');
  for (auto& c : s) c = hex[rng.bounded(16)];
  return s;
}

}  // namespace

const std::vector<ProjectGroundTruth>& figure1_ground_truth() {
  static const std::vector<ProjectGroundTruth> gt = {
      {"Golang", 14, 20},  {"Linux kernel", 40, 12}, {"LLVM", 16, 26},
      {"MySQL", 4, 7},     {"memcached", 3, 9},
  };
  return gt;
}

std::vector<Commit> generate_corpus(std::uint32_t noise_per_project,
                                    std::uint64_t seed) {
  std::vector<Commit> corpus;
  runtime::Xoshiro256ss rng(seed);
  for (const auto& p : figure1_ground_truth()) {
    for (std::uint32_t i = 0; i < p.unbalanced_unlock; ++i) {
      corpus.push_back({p.project, fake_sha(rng),
                        format_one(kUnlockTemplates[rng.bounded(
                                       kUnlockTemplates.size())],
                                   kSubsystems[rng.bounded(
                                       kSubsystems.size())])});
    }
    for (std::uint32_t i = 0; i < p.unbalanced_lock; ++i) {
      corpus.push_back({p.project, fake_sha(rng),
                        format_one(kLockTemplates[rng.bounded(
                                       kLockTemplates.size())],
                                   kSubsystems[rng.bounded(
                                       kSubsystems.size())])});
    }
    for (std::uint32_t i = 0; i < noise_per_project; ++i) {
      corpus.push_back({p.project, fake_sha(rng),
                        format_one(kNoiseTemplates[rng.bounded(
                                       kNoiseTemplates.size())],
                                   kSubsystems[rng.bounded(
                                       kSubsystems.size())])});
    }
  }
  // Deterministic shuffle so the planted commits are not grouped.
  for (std::size_t i = corpus.size(); i > 1; --i) {
    std::swap(corpus[i - 1], corpus[rng.bounded(i)]);
  }
  return corpus;
}

}  // namespace resilock::mining
