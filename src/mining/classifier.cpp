#include "mining/classifier.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace resilock::mining {
namespace {

std::string to_lower(const std::string& s) {
  std::string out(s.size(), '\0');
  std::transform(s.begin(), s.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

bool contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

bool contains_any(const std::string& haystack,
                  std::initializer_list<const char*> needles) {
  for (const char* n : needles) {
    if (contains(haystack, n)) return true;
  }
  return false;
}

}  // namespace

const std::vector<std::string>& search_strings() {
  // Verbatim from §2.1.
  static const std::vector<std::string> strings = {
      "unlock", "mutex", "double unlock", "unlock without lock",
      "lock placement", "deadlock", "starvation", "improper",
      "release lock", "lock misuse", "missing lock", "missing unlock",
      "stray unlock", "forget to unlock", "holding lock",
      "without acquiring", "without unlocking", "acquiring the lock",
      "forgetting to release a lock"};
  return strings;
}

MisuseClass classify(const std::string& message) {
  const std::string m = to_lower(message);

  // Must be lock-related at all (one §2.1 search string).
  bool related = false;
  for (const auto& s : search_strings()) {
    if (contains(m, s.c_str())) {
      related = true;
      break;
    }
  }
  if (!related) return MisuseClass::kUnrelated;

  // Unbalanced-unlock markers (§2.1: releasing when not acquired,
  // double unlock, unbalanced reader-writer pairs).
  if (contains_any(m, {"double unlock", "double-unlock", "unlock twice",
                       "unlock without lock", "unlock without holding",
                       "without holding it", "unlock mutex without",
                       "stray unlock", "unlock of unlocked",
                       "unlock when not locked", "extra unlock",
                       "spurious unlock", "unbalanced unlock",
                       "release without acquir", "released twice",
                       "without acquiring it", "releasing an unheld",
                       "read unlock on write",
                       "write unlock on read", "runlock without rlock",
                       "unlock an unlocked", "unlock not locked",
                       "unlock before lock", "unlock a mutex that"})) {
    return MisuseClass::kUnbalancedUnlock;
  }

  // Unbalanced-lock markers (§2: forgetting to release, failing to
  // release, re-acquiring a held lock, misplaced acquire/release).
  if (contains_any(m, {"missing unlock", "forget to unlock",
                       "forgot to unlock", "forgetting to release",
                       "forget to release", "fail to unlock",
                       "failed to release", "never released",
                       "leaked lock", "lock leak", "missing release",
                       "without unlocking", "leave the lock held",
                       "left locked", "recursive lock", "self deadlock",
                       "self-deadlock", "double lock", "deadlock on the same",
                       "lock placement", "misplaced lock", "lock ordering",
                       "hold the lock too", "acquiring the same lock",
                       "destroyed mutex", "missing lock"})) {
    return MisuseClass::kUnbalancedLock;
  }

  return MisuseClass::kUnrelated;
}

std::map<std::string, ProjectTally> tally(const std::vector<Commit>& corpus) {
  std::map<std::string, ProjectTally> out;
  for (const auto& c : corpus) {
    ProjectTally& t = out[c.project];
    switch (classify(c.message)) {
      case MisuseClass::kUnbalancedLock:
        ++t.unbalanced_lock;
        break;
      case MisuseClass::kUnbalancedUnlock:
        ++t.unbalanced_unlock;
        break;
      case MisuseClass::kUnrelated:
        ++t.unrelated;
        break;
    }
  }
  return out;
}

void print_figure1(const std::map<std::string, ProjectTally>& tallies) {
  std::printf("%-18s %10s %10s %8s   %s\n", "Project", "unb-unlock",
              "unb-lock", "%unlock", "stacked histogram (U=unlock/L=lock)");
  for (const auto& [project, t] : tallies) {
    const double frac = t.unlock_fraction();
    const int bar_u = static_cast<int>(frac * 40.0 + 0.5);
    std::string bar(static_cast<std::size_t>(bar_u), 'U');
    bar.append(static_cast<std::size_t>(40 - bar_u), 'L');
    std::printf("%-18s %10u %10u %7.1f%%   |%s|\n", project.c_str(),
                t.unbalanced_unlock, t.unbalanced_lock, 100.0 * frac,
                bar.c_str());
  }
}

}  // namespace resilock::mining
