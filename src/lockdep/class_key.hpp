// Static lock-class keys, after the Linux lockdep facility of the same
// name.
//
// Lockdep classes default to one per lock INSTANCE, which is the right
// granularity for a handful of named locks but wrong for
// data-structure-heavy code: a tree with one mutex per node would (a)
// balloon the class table with one slot per node and (b) never
// see the order bug "lock node of container A, then node of container
// B" vs the reverse, because every node is its own class and every
// pairing is a fresh, cycle-free edge.
//
// A LockClassKey folds all lock instances constructed against it into
// ONE order-graph class: declare one key per container (or per lock
// role) and pass it to the keyed Shield<L> constructor:
//
//   static resilock::lockdep::LockClassKey tree_node_key("tree.node");
//   struct Node { Shield<McsLock> mu{tree_node_key}; ... };
//
// Now a million nodes occupy one class-table slot, and an AB/BA
// inversion across *different* node instances of two keyed containers
// is a two-class cycle lockdep reports on first occurrence.
//
// Lifetime: like Linux lockdep, keys are meant to be static — the
// class registers on first use and stays registered (shield
// destruction does not retire a keyed class, other instances may still
// use it). A key must outlive every lock constructed against it.
// Tests that create short-lived keys can call retire() once all locks
// under the key are gone.
//
// Tradeoff, by design: a shared class cannot be validated per instance
// (the graph's instance/owner mirrors identify classes, not locks), so
// the §5 stale-entry purge in on_acquire_attempt only checks that the
// key is still registered. Nesting two locks of the SAME key records
// no edge (from == to is skipped): intra-container nesting order is
// the container's own invariant, not lockdep's.
#pragma once

#include "lockdep/lockdep.hpp"

namespace resilock::lockdep {

class LockClassKey {
 public:
  constexpr explicit LockClassKey(const char* label = nullptr)
      : label_(label) {}
  LockClassKey(const LockClassKey&) = delete;
  LockClassKey& operator=(const LockClassKey&) = delete;

  // The key's shared class id, registering it on first use. Racing
  // first users CAS; the loser retires its surplus id. `fallback_label`
  // names the class when the key itself carries no label (the shield
  // passes its registry name).
  ClassId ensure(const char* fallback_label = nullptr) {
    ClassId id = id_.load(std::memory_order_acquire);
    if (id != kInvalidClass) return id;
    const ClassId fresh = Graph::instance().register_shared_class(
        this, label_ != nullptr ? label_ : fallback_label);
    ClassId expected = kInvalidClass;
    if (!id_.compare_exchange_strong(expected, fresh,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      Graph::instance().retire_class(fresh);
      return expected;
    }
    return fresh;
  }

  // kInvalidClass before the first keyed acquire.
  ClassId id() const { return id_.load(std::memory_order_acquire); }

  const char* label() const { return label_; }

  // Returns the class-table slot (test hygiene for short-lived keys).
  // Caller's contract: no lock constructed against this key is alive
  // or held.
  void retire() {
    Graph::instance().retire_class(
        id_.exchange(kInvalidClass, std::memory_order_acq_rel));
  }

 private:
  std::atomic<ClassId> id_{kInvalidClass};
  const char* label_;
};

}  // namespace resilock::lockdep
