// Out-of-line slow paths of the lockdep graph: class allocation and
// retirement, cycle detection on new edges, and report emission (the
// verdict now routes through the response engine, src/response/).
#include "lockdep/lockdep.hpp"

#include <cstdio>
#include <thread>

#include "response/response.hpp"

namespace resilock::lockdep {

// The engine's tag space mirrors EventKind; keep them in lock step.
static_assert(static_cast<int>(response::ResponseEvent::kOrderInversion) ==
              static_cast<int>(EventKind::kOrderInversion));
static_assert(static_cast<int>(response::ResponseEvent::kDeadlockCycle) ==
              static_cast<int>(EventKind::kDeadlockCycle));
// The trace ring's "no class attribution" tag is the class table's
// invalid id: exporters may resolve any other value against the table.
static_assert(kNoClassTag == kInvalidClass);

ClassId Graph::register_class(const void* instance, const char* label) {
  std::lock_guard<std::mutex> g(class_mutex_);
  ClassId id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else if (next_unused_ < kMaxClasses) {
    id = next_unused_++;
  } else {
    class_table_full_.fetch_add(1, std::memory_order_relaxed);
    return kUntrackedClass;
  }
  instances_[id].store(instance, std::memory_order_release);
  labels_[id].store(label, std::memory_order_release);
  classes_registered_.fetch_add(1, std::memory_order_relaxed);
  classes_live_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

ClassId Graph::register_shared_class(const void* key, const char* label) {
  const ClassId id = register_class(key, label);
  if (id < kMaxClasses) {
    shared_[id >> 6].fetch_or(1ull << (id & 63),
                              std::memory_order_acq_rel);
  }
  return id;
}

void Graph::retire_class(ClassId id) {
  if (id >= kMaxClasses) return;  // kInvalid/kUntracked: nothing to do
  std::lock_guard<std::mutex> g(class_mutex_);
  // Clear the class's successor row (seq_cst so a DFS starting after
  // the drain below cannot observe any pre-clear bit) ...
  for (auto& w : rows_[id].bits) w.store(0, std::memory_order_seq_cst);
  for (auto& w : rows_[id].read_src) w.store(0, std::memory_order_relaxed);
  for (auto& w : rows_[id].read_dst) w.store(0, std::memory_order_relaxed);
  // ... and its column bit in every other row, so a recycled id starts
  // with no inherited order constraints.
  const std::size_t word = id >> 6;
  const std::uint64_t mask = ~(1ull << (id & 63));
  for (auto& row : rows_) {
    row.bits[word].fetch_and(mask, std::memory_order_seq_cst);
    row.read_src[word].fetch_and(mask, std::memory_order_relaxed);
    row.read_dst[word].fetch_and(mask, std::memory_order_relaxed);
  }
  instances_[id].store(nullptr, std::memory_order_release);
  labels_[id].store(nullptr, std::memory_order_release);
  owner_pid_[id].store(0, std::memory_order_relaxed);
  shared_[word].fetch_and(mask, std::memory_order_acq_rel);
  flagged_[word].fetch_and(mask, std::memory_order_relaxed);
  // A traversal concurrent with the clears may still have seen the
  // dying class's edges. Drain every in-flight DFS before recycling
  // the id, so no traversal can stitch a dead class's stale in-edge to
  // a recycled id's fresh out-edges (a cycle that existed in no epoch).
  // DFS runs are rare (first occurrence of an edge) and bounded, so
  // this wait is short; it takes no locks a DFS could be holding.
  while (dfs_in_flight_.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
  free_ids_.push_back(id);
  classes_live_.fetch_sub(1, std::memory_order_relaxed);
}

ClassId Graph::find_class(std::string_view label) const {
  for (ClassId id = 0; id < kMaxClasses; ++id) {
    const char* l = labels_[id].load(std::memory_order_acquire);
    if (l != nullptr && label == l &&
        instances_[id].load(std::memory_order_acquire) != nullptr) {
      return id;
    }
  }
  return kInvalidClass;
}

void Graph::check_cycle(ClassId from, ClassId to, const void* lock,
                        std::uint32_t waiters, bool owned) {
  // Iterative DFS from `to` looking for `from`: a path to→…→from plus
  // the just-inserted from→to closes a cycle. Bounded by kMaxClasses;
  // runs only on the first occurrence of an edge. The in-flight count
  // keeps retire_class from recycling a class id mid-traversal.
  struct DfsScope {
    std::atomic<std::uint32_t>& n;
    explicit DfsScope(std::atomic<std::uint32_t>& c) : n(c) {
      n.fetch_add(1, std::memory_order_seq_cst);
    }
    ~DfsScope() { n.fetch_sub(1, std::memory_order_seq_cst); }
  } scope(dfs_in_flight_);

  ClassId parent[kMaxClasses];
  ClassId stack[kMaxClasses];
  std::uint64_t visited[kWords] = {};
  std::size_t top = 0;
  stack[top++] = to;
  visited[to >> 6] |= 1ull << (to & 63);
  parent[to] = kInvalidClass;
  bool found = false;
  while (top > 0 && !found) {
    const ClassId n = stack[--top];
    for (std::size_t w = 0; w < kWords && !found; ++w) {
      std::uint64_t bits = rows_[n].bits[w].load(std::memory_order_seq_cst);
      bits &= ~visited[w];
      while (bits != 0) {
        const auto b = static_cast<std::uint32_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        const auto succ = static_cast<ClassId>(w * 64 + b);
        parent[succ] = n;
        if (succ == from) {
          found = true;
          break;
        }
        visited[w] |= 1ull << b;
        stack[top++] = succ;
      }
    }
  }
  if (!found) return;

  // The parent chain walks from→…→to backwards through the DFS tree;
  // reversing it yields the stored-edge path to→…→from, and prepending
  // `from` (the new edge's source) closes the printed cycle:
  // from → to → … → from.
  ClassId rev[kMaxClasses + 1];
  std::size_t n = 0;
  for (ClassId c = from; c != kInvalidClass; c = parent[c]) rev[n++] = c;
  ClassId path[kMaxClasses + 1];
  std::size_t len = 0;
  path[len++] = from;
  for (std::size_t i = n; i-- > 0;) path[len++] = rev[i];
  report_cycle(path, len, lock, waiters, owned);
}

void Graph::report_cycle(const ClassId* path, std::size_t len,
                         const void* lock, std::uint32_t waiters,
                         bool owned) {
  // len counts nodes including the repeated endpoint: an AB/BA
  // inversion is {A, B, A} (len 3, two distinct classes).
  const bool two_lock = len == 3;
  if (two_lock) {
    inversions_.fetch_add(1, std::memory_order_relaxed);
  } else {
    cycles_.fetch_add(1, std::memory_order_relaxed);
  }
  // Every class on the path is now "entangled in a reported cycle" —
  // the lockdep-state input later misuse verdicts consult.
  for (std::size_t i = 0; i < len; ++i) {
    flagged_[path[i] >> 6].fetch_or(1ull << (path[i] & 63),
                                    std::memory_order_relaxed);
  }
  const EventKind kind =
      two_lock ? EventKind::kOrderInversion : EventKind::kDeadlockCycle;

  // The verdict pipeline: rules (RESILOCK_POLICY) first, the legacy
  // RESILOCK_LOCKDEP mode as the fallback — report maps to kLog,
  // abort to kAbort, so the old knob behaves exactly as before when no
  // rules are installed.
  response::EventContext ctx;
  ctx.waiters = waiters;
  // "Held by another thread" is contention too: in the canonical
  // two-thread AB/BA wedge the closing lock has an empty waiter queue
  // (its holder is parked on the OTHER lock), yet the wedge is
  // imminent — exactly what the abort tier exists for.
  ctx.contended = waiters > 0 || owned;
  ctx.in_flagged_cycle = true;
  // The report is attributed to the class of the lock whose acquisition
  // closed the cycle (path[1] — the destination of the new edge), which
  // is what @class=<name>-scoped rules key on: a per-level hierarchy
  // class lets "abort on inversion at hmcs.level1" fire only there.
  ctx.cls = path[1];
  ctx.cls_label = label_of(path[1]);
  const auto ev = static_cast<response::ResponseEvent>(kind);
  const response::Action fallback =
      lockdep_mode() == LockdepMode::kAbort ? response::Action::kAbort
                                            : response::Action::kLog;
  const response::Action action =
      response::ResponseEngine::instance().decide(ev, ctx, fallback);

  TraceBuffer::instance().emit(kind, lock, path[0], path[1],
                               static_cast<std::uint8_t>(action));

  if (action == response::Action::kLog ||
      action == response::Action::kAbort) {
    std::lock_guard<std::mutex> g(report_mutex_);
    std::fprintf(stderr,
                 "resilock[lockdep]: %s detected by thread pid %u on "
                 "lock %p (%u waiter%s) — acquisition order cycle:\n  ",
                 two_lock ? "lock-order inversion (AB/BA)"
                          : "potential deadlock cycle",
                 static_cast<unsigned>(platform::self_pid()), lock,
                 waiters, waiters == 1 ? "" : "s");
    for (std::size_t i = 0; i < len; ++i) {
      const char* label = label_of(path[i]);
      // Mode annotation from the edge tag bitmaps: a node prints (r)
      // when the path traverses it in read mode (as the destination of
      // the incoming edge or the source of the outgoing one). Plain
      // exclusive paths carry no annotation.
      const bool read_here =
          (i > 0 && edge_dst_was_read(path[i - 1], path[i])) ||
          (i + 1 < len && edge_src_was_read(path[i], path[i + 1]));
      std::fprintf(stderr, "%s%s#%u%s", i == 0 ? "" : " -> ",
                   label != nullptr ? label : "lock",
                   static_cast<unsigned>(path[i]),
                   read_here ? "(r)" : "");
    }
    std::fprintf(stderr,
                 "\n  (flagged on first occurrence of this order; the "
                 "threads need never actually wedge)\n");
  }
  if (action == response::Action::kAbort) {
    response::dispatch_abort(ev, lock);
    // A verify/test abort trap returned: degrade to the report-only
    // outcome and let the acquisition proceed.
  }
}

LockdepStats Graph::stats() const {
  LockdepStats s;
  s.classes_registered =
      classes_registered_.load(std::memory_order_relaxed);
  s.classes_live = classes_live_.load(std::memory_order_relaxed);
  s.class_table_full = class_table_full_.load(std::memory_order_relaxed);
  s.edges = edges_.load(std::memory_order_relaxed);
  s.rr_skipped = rr_skipped_.load(std::memory_order_relaxed);
  s.inversions = inversions_.load(std::memory_order_relaxed);
  s.cycles = cycles_.load(std::memory_order_relaxed);
  s.stack_overflow = stack_overflow_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace resilock::lockdep
