// Out-of-line slow paths of the lockdep graph: sharded class
// allocation, chunk growth, epoch-based retirement/reclamation, cycle
// detection on new edges, and report emission (the verdict routes
// through the response engine, src/response/).
#include "lockdep/lockdep.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>

#include "response/response.hpp"

namespace resilock::lockdep {

// The engine's tag space mirrors EventKind; keep them in lock step.
static_assert(static_cast<int>(response::ResponseEvent::kOrderInversion) ==
              static_cast<int>(EventKind::kOrderInversion));
static_assert(static_cast<int>(response::ResponseEvent::kDeadlockCycle) ==
              static_cast<int>(EventKind::kDeadlockCycle));
// The trace ring's "no class attribution" tag is the class table's
// invalid id: exporters may resolve any other value against the table.
static_assert(kNoClassTag == kInvalidClass);

namespace {

// Env-tuned power of two in [lo, hi], or `dflt` when unset/garbage.
std::uint32_t env_pow2(const char* name, std::uint32_t dflt,
                       std::uint32_t lo, std::uint32_t hi) {
  std::uint32_t v = dflt;
  if (const char* raw = platform::env_raw(name)) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(raw, &end, 10);
    if (end != raw && *end == '\0' && parsed > 0) {
      v = static_cast<std::uint32_t>(std::min<unsigned long>(parsed, hi));
    }
  }
  v = std::max(lo, std::min(hi, v));
  // Round down to a power of two so shift/mask indexing works.
  while ((v & (v - 1)) != 0) v &= v - 1;
  return v;
}

constexpr std::uint32_t log2_pow2(std::uint32_t v) {
  std::uint32_t s = 0;
  while ((1u << s) < v) ++s;
  return s;
}

// Per-thread epoch-pin state. The lease returns the reader slot to the
// graph's pool at thread exit (the graph singleton is leaked, so this
// is safe during shutdown).
struct PinTls {
  std::uint32_t depth = 0;
  std::int32_t slot = -2;  // -2 unclaimed, -1 fallback pool
};
thread_local PinTls t_pin;

struct PinLease {
  void touch() {}
  ~PinLease() {
    if (t_pin.slot >= 0) {
      Graph::instance().release_reader_slot(
          static_cast<std::uint32_t>(t_pin.slot));
    }
    t_pin.slot = -2;
    t_pin.depth = 0;
  }
};
thread_local PinLease t_pin_lease;

// Heap scratch for the DFS, grown to the table's live capacity (the
// old stack arrays were a stack-overflow landmine past a few thousand
// classes). Thread-local: DFS runs at most once per distinct edge, so
// only reporting threads ever pay for it.
struct DfsScratch {
  std::uint32_t cap = 0;
  std::unique_ptr<std::uint32_t[]> parent;
  std::unique_ptr<std::uint32_t[]> stack;
  std::unique_ptr<std::uint64_t[]> visited;
};

DfsScratch& dfs_scratch(std::uint32_t cap) {
  thread_local DfsScratch s;
  if (s.cap < cap) {
    s.parent.reset(new std::uint32_t[cap]);
    s.stack.reset(new std::uint32_t[cap]);
    s.visited.reset(new std::uint64_t[(cap + 63) / 64]);
    s.cap = cap;
  }
  std::memset(s.visited.get(), 0,
              ((cap + 63) / 64) * sizeof(std::uint64_t));
  return s;
}

}  // namespace

Graph::Graph()
    : chunk_slots_(env_pow2("RESILOCK_LOCKDEP_CHUNK", 1024,
                            kMinChunkSlots, kMaxChunkSlots)),
      chunk_shift_(log2_pow2(chunk_slots_)),
      chunk_mask_(chunk_slots_ - 1),
      shard_count_(env_pow2("RESILOCK_LOCKDEP_SHARDS", 8, 1, kMaxShards)),
      shard_mask_(shard_count_ - 1) {}

// ---------------------------------------------------------------------
// Epoch pins.
// ---------------------------------------------------------------------

void Graph::pin_epoch() {
  PinTls& p = t_pin;
  if (p.depth++ != 0) return;
  if (p.slot == -2) {
    t_pin_lease.touch();  // arm the thread-exit return of the slot
    p.slot = claim_reader_slot();
  }
  if (p.slot < 0) {
    // Reader pool exhausted: pin coarsely. Any nonzero fallback count
    // blocks all reclamation, which is correct, just not granular.
    fallback_pins_.fetch_add(1, std::memory_order_seq_cst);
    return;
  }
  auto& slot = readers_[p.slot].epoch;
  // Publish the pin, then re-read the epoch: if a retirement advanced
  // it in between, re-pin at the newer epoch. After this loop either
  // the pin was globally visible before any later epoch bump, or it
  // names the bumped epoch — either way no entry retired at >= the
  // pinned epoch can be reclaimed under us (see try_reclaim).
  std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    slot.store(e, std::memory_order_seq_cst);
    const std::uint64_t e2 =
        global_epoch_.load(std::memory_order_seq_cst);
    if (e2 == e) break;
    e = e2;
  }
}

void Graph::unpin_epoch() {
  PinTls& p = t_pin;
  if (--p.depth != 0) return;
  if (p.slot < 0) {
    fallback_pins_.fetch_sub(1, std::memory_order_seq_cst);
    return;
  }
  readers_[p.slot].epoch.store(0, std::memory_order_seq_cst);
}

std::int32_t Graph::claim_reader_slot() {
  std::lock_guard<std::mutex> g(reader_mutex_);
  if (!reader_free_.empty()) {
    const std::uint32_t idx = reader_free_.back();
    reader_free_.pop_back();
    return static_cast<std::int32_t>(idx);
  }
  if (reader_next_ < kEpochReaders) {
    return static_cast<std::int32_t>(reader_next_++);
  }
  return -1;
}

void Graph::release_reader_slot(std::uint32_t idx) {
  readers_[idx].epoch.store(0, std::memory_order_seq_cst);
  std::lock_guard<std::mutex> g(reader_mutex_);
  reader_free_.push_back(idx);
}

// ---------------------------------------------------------------------
// Allocation: shard freelists -> stealing -> reclaim -> chunk growth.
// ---------------------------------------------------------------------

bool Graph::pop_shard(std::uint32_t shard, std::uint32_t& slot) {
  Shard& s = shards_[shard];
  std::lock_guard<std::mutex> g(s.mu);
  if (s.free_slots.empty()) return false;
  slot = s.free_slots.back();
  s.free_slots.pop_back();
  return true;
}

void Graph::push_shard(std::uint32_t shard, std::uint32_t slot) {
  Shard& s = shards_[shard];
  std::lock_guard<std::mutex> g(s.mu);
  s.free_slots.push_back(slot);
}

std::uint32_t Graph::alloc_slot() {
  const std::uint32_t home = platform::self_pid() & shard_mask_;
  std::uint32_t slot;
  if (pop_shard(home, slot)) return slot;
  for (std::uint32_t i = 1; i < shard_count_; ++i) {
    if (pop_shard((home + i) & shard_mask_, slot)) {
      shard_steals_.fetch_add(1, std::memory_order_relaxed);
      return slot;
    }
  }
  // Every freelist is dry: recycle whatever limbo has matured before
  // paying for a new chunk.
  if (try_reclaim() > 0) {
    for (std::uint32_t i = 0; i < shard_count_; ++i) {
      if (pop_shard((home + i) & shard_mask_, slot)) {
        if (i != 0) shard_steals_.fetch_add(1, std::memory_order_relaxed);
        return slot;
      }
    }
  }
  return grow(home);
}

std::uint32_t Graph::grow(std::uint32_t home_shard) {
  std::lock_guard<std::mutex> g(grow_mutex_);
  // A racing grower may have refilled the shards while we waited.
  std::uint32_t slot;
  if (pop_shard(home_shard, slot)) return slot;
  const std::uint32_t base = capacity_.load(std::memory_order_relaxed);
  const std::uint32_t limit =
      std::min(capacity_limit_.load(std::memory_order_relaxed),
               kMaxClassSlots);
  if (base + chunk_slots_ > limit) {
    // Growth ceiling (test clamp or the 4M directory bound): last
    // sweep across all shards, then fail open.
    for (std::uint32_t i = 1; i < shard_count_; ++i) {
      if (pop_shard((home_shard + i) & shard_mask_, slot)) {
        shard_steals_.fetch_add(1, std::memory_order_relaxed);
        return slot;
      }
    }
    return kNoSlot;
  }
  auto* chunk = new ClassSlot[chunk_slots_];
  chunk_dir_[base >> chunk_shift_].store(chunk,
                                         std::memory_order_release);
  capacity_.store(base + chunk_slots_, std::memory_order_release);
  chunks_.fetch_add(1, std::memory_order_relaxed);
  // Keep the first slot for the caller; deal the rest across the
  // shards in contiguous runs, the grower's own shard first.
  const std::uint32_t spare = chunk_slots_ - 1;
  const std::uint32_t run = spare / shard_count_;
  std::uint32_t next = base + 1;
  for (std::uint32_t i = 0; i < shard_count_; ++i) {
    const std::uint32_t shard = (home_shard + i) & shard_mask_;
    std::uint32_t n = run + (i < spare % shard_count_ ? 1 : 0);
    Shard& s = shards_[shard];
    std::lock_guard<std::mutex> sg(s.mu);
    while (n-- > 0) s.free_slots.push_back(next++);
  }
  return base;
}

ClassId Graph::register_internal(const void* instance, const char* label,
                                 bool shared) {
  const std::uint32_t slot = alloc_slot();
  if (slot == kNoSlot) {
    class_table_full_.fetch_add(1, std::memory_order_relaxed);
    return kUntrackedClass;
  }
  ClassSlot* s = slot_ptr(slot);
  // The slot is exclusively ours (freshly grown or post-grace). Its
  // generation survived retirement in the meta word.
  const std::uint32_t gen =
      meta_gen(s->meta.load(std::memory_order_relaxed));
  s->instance.store(instance, std::memory_order_release);
  s->label.store(label, std::memory_order_release);
  s->meta.store((gen << kMetaGenShift) | kMetaLive |
                    (shared ? kMetaShared : 0u),
                std::memory_order_release);
  classes_registered_.fetch_add(1, std::memory_order_relaxed);
  classes_live_.fetch_add(1, std::memory_order_relaxed);
  return make_class_id(slot, gen);
}

ClassId Graph::register_class(const void* instance, const char* label) {
  return register_internal(instance, label, false);
}

ClassId Graph::register_shared_class(const void* key, const char* label) {
  return register_internal(key, label, true);
}

// ---------------------------------------------------------------------
// Retirement and reclamation.
// ---------------------------------------------------------------------

void Graph::clear_in_edge(const InEdgeNode& in, std::uint32_t dst_slot) {
  ClassSlot* src = slot_ptr(in.src_slot);
  if (src == nullptr) return;
  // seq_cst meta load: if the source class was itself retired (its row
  // detached to limbo, its bits dying with it), a recycled tenant's
  // fresh row must not lose edges to a stale clear. The retire path's
  // meta CAS is seq_cst too, and slot recycling needs a grace period
  // our own epoch pin holds open — so a generation match here means
  // the row we load is still the recorded edge's row.
  const std::uint32_t m = src->meta.load(std::memory_order_seq_cst);
  if (meta_gen(m) != in.src_gen) return;
  Row* row = src->row.load(std::memory_order_seq_cst);
  if (row == nullptr) return;
  EdgeSeg* seg =
      row->segs[dst_slot >> kSegShift].load(std::memory_order_acquire);
  if (seg == nullptr) return;
  const std::uint32_t w = (dst_slot & kSegMask) >> 6;
  const std::uint64_t mask = ~(1ull << (dst_slot & 63));
  seg->bits[w].fetch_and(mask, std::memory_order_seq_cst);
  seg->read_src[w].fetch_and(mask, std::memory_order_relaxed);
  seg->read_dst[w].fetch_and(mask, std::memory_order_relaxed);
}

void Graph::retire_class(ClassId id) {
  if (!class_tracked(id)) return;  // kInvalid/kUntracked: nothing to do
  const std::uint32_t slot = class_slot(id);
  ClassSlot* s = slot_ptr(slot);
  if (s == nullptr) return;
  // Bump the generation first: from here on the id is stale everywhere
  // (label_of, lockstat attribution, response @class scopes all check
  // the stamp), and a racing retire of the same id loses the CAS.
  std::uint32_t meta = s->meta.load(std::memory_order_seq_cst);
  for (;;) {
    if ((meta & kMetaLive) == 0 || meta_gen(meta) != class_gen(id)) {
      return;  // already retired (or a stale id): no-op
    }
    const std::uint32_t bumped =
        ((class_gen(id) + 1) & kClassGenMask) << kMetaGenShift;
    if (s->meta.compare_exchange_weak(meta, bumped,
                                      std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
      break;
    }
  }
  s->instance.store(nullptr, std::memory_order_release);
  s->label.store(nullptr, std::memory_order_release);
  s->owner_pid.store(0, std::memory_order_relaxed);
  // Clear this class's column — O(in-degree) via the in-edge list the
  // claims maintained, not a sweep of the whole table — and detach its
  // row. Under an epoch pin: the rows we touch may be retired
  // concurrently, and the pin keeps them out of the reclaimer's hands.
  pin_epoch();
  InEdgeNode* in = s->in_edges.exchange(nullptr, std::memory_order_seq_cst);
  while (in != nullptr) {
    InEdgeNode* next = in->next;
    clear_in_edge(*in, slot);
    delete in;
    in = next;
  }
  Row* row = s->row.exchange(nullptr, std::memory_order_seq_cst);
  unpin_epoch();
  // Park the slot (and detached row) in limbo. The epoch advance is
  // made under the limbo lock so the list stays sorted by epoch; a
  // traversal pinned at or before this epoch may still be walking the
  // detached row or stale in-edges naming this slot, so the slot is
  // not recycled — and the row not freed — until all such pins drain.
  // This replaces the old global "wait for every in-flight DFS" spin:
  // retirement no longer blocks on other threads at all.
  auto* lb = new LimboEntry{slot, 0, row, nullptr};
  {
    std::lock_guard<std::mutex> g(limbo_mutex_);
    lb->epoch = global_epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (limbo_tail_ != nullptr) {
      limbo_tail_->next = lb;
    } else {
      limbo_head_ = lb;
    }
    limbo_tail_ = lb;
  }
  limbo_count_.fetch_add(1, std::memory_order_relaxed);
  classes_live_.fetch_sub(1, std::memory_order_relaxed);
  // Opportunistic reclaim keeps limbo bounded under pure churn even if
  // no allocation ever runs dry.
  if (limbo_count_.load(std::memory_order_relaxed) >=
      2ull * chunk_slots_) {
    try_reclaim();
  }
}

std::size_t Graph::try_reclaim() {
  if (limbo_count_.load(std::memory_order_acquire) == 0) return 0;
  if (fallback_pins_.load(std::memory_order_seq_cst) != 0) return 0;
  // The grace-period bound: entries retired strictly before every
  // active pin are invisible to all current readers (a pin taken after
  // the retirement epoch advanced cannot reach the detached row — the
  // detach precedes the advance), and future pins only observe later
  // epochs still.
  std::uint64_t min_pin = global_epoch_.load(std::memory_order_seq_cst);
  for (std::uint32_t i = 0; i < kEpochReaders; ++i) {
    const std::uint64_t e =
        readers_[i].epoch.load(std::memory_order_seq_cst);
    if (e != 0 && e < min_pin) min_pin = e;
  }
  LimboEntry* matured = nullptr;
  LimboEntry** tail = &matured;
  {
    std::lock_guard<std::mutex> g(limbo_mutex_);
    while (limbo_head_ != nullptr && limbo_head_->epoch < min_pin) {
      LimboEntry* e = limbo_head_;
      limbo_head_ = e->next;
      if (limbo_head_ == nullptr) limbo_tail_ = nullptr;
      e->next = nullptr;
      *tail = e;
      tail = &e->next;
    }
  }
  std::size_t n = 0;
  while (matured != nullptr) {
    LimboEntry* e = matured;
    matured = e->next;
    if (e->row != nullptr) {
      for (std::uint32_t si = 0; si < kMaxSegs / 64; ++si) {
        std::uint64_t pres =
            e->row->present[si].load(std::memory_order_relaxed);
        while (pres != 0) {
          const auto b =
              static_cast<std::uint32_t>(__builtin_ctzll(pres));
          pres &= pres - 1;
          delete e->row->segs[si * 64 + b].load(
              std::memory_order_relaxed);
        }
      }
      delete e->row;
    }
    // Deal recycled slots round-robin so reclamation feeds every
    // shard, not just the reclaiming thread's.
    push_shard(reclaim_cursor_.fetch_add(1, std::memory_order_relaxed) &
                   shard_mask_,
               e->slot);
    delete e;
    ++n;
  }
  if (n != 0) {
    limbo_count_.fetch_sub(n, std::memory_order_relaxed);
    reclaimed_.fetch_add(n, std::memory_order_relaxed);
  }
  return n;
}

std::uint32_t Graph::set_capacity_limit(std::uint32_t slots) {
  std::lock_guard<std::mutex> g(grow_mutex_);
  const std::uint32_t prev =
      capacity_limit_.load(std::memory_order_relaxed);
  capacity_limit_.store(std::min(slots, kMaxClassSlots),
                        std::memory_order_relaxed);
  return prev;
}

// ---------------------------------------------------------------------
// Lookup.
// ---------------------------------------------------------------------

ClassId Graph::find_class(std::string_view label) const {
  const std::uint32_t cap = capacity_.load(std::memory_order_acquire);
  for (std::uint32_t base = 0; base < cap; base += chunk_slots_) {
    const ClassSlot* chunk =
        chunk_dir_[base >> chunk_shift_].load(std::memory_order_acquire);
    if (chunk == nullptr) continue;
    const std::uint32_t n = std::min(chunk_slots_, cap - base);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t meta =
          chunk[i].meta.load(std::memory_order_acquire);
      if ((meta & kMetaLive) == 0) continue;
      const char* l = chunk[i].label.load(std::memory_order_acquire);
      if (l != nullptr && label == l &&
          chunk[i].instance.load(std::memory_order_acquire) != nullptr) {
        return make_class_id(base + i, meta_gen(meta));
      }
    }
  }
  return kInvalidClass;
}

// ---------------------------------------------------------------------
// Edge claims and cycle detection.
// ---------------------------------------------------------------------

void Graph::claim_edge(ClassId from, ClassId to, const void* lock,
                       std::uint32_t waiters, bool owned,
                       AccessMode from_mode, AccessMode to_mode) {
  const std::uint32_t fs = class_slot(from);
  const std::uint32_t ts = class_slot(to);
  ClassSlot* fsl = slot_ptr(fs);
  ClassSlot* tsl = slot_ptr(ts);
  if (fsl == nullptr || tsl == nullptr) return;
  // Generation gate (seq_cst, pairing with retire's meta CAS): a stale
  // id — its class retired since the caller read it — must not write
  // into the slot's next tenant's bitmaps. Our epoch pin (taken by
  // ensure_edge) means a class retired AFTER this check cannot have
  // its slot recycled before we finish, so at worst we claim an edge
  // for a dying class, which dies with its detached row.
  const std::uint32_t fmeta = fsl->meta.load(std::memory_order_seq_cst);
  const std::uint32_t tmeta = tsl->meta.load(std::memory_order_seq_cst);
  if ((fmeta & kMetaLive) == 0 || meta_gen(fmeta) != class_gen(from) ||
      (tmeta & kMetaLive) == 0 || meta_gen(tmeta) != class_gen(to)) {
    return;
  }
  Row* row = fsl->row.load(std::memory_order_acquire);
  if (row == nullptr) {
    auto* fresh = new Row();
    if (fsl->row.compare_exchange_strong(row, fresh,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      row = fresh;
    } else {
      delete fresh;  // racing claimer installed one; `row` reloaded
    }
  }
  const std::uint32_t seg_idx = ts >> kSegShift;
  EdgeSeg* seg = row->segs[seg_idx].load(std::memory_order_acquire);
  if (seg == nullptr) {
    auto* fresh = new EdgeSeg();
    if (row->segs[seg_idx].compare_exchange_strong(
            seg, fresh, std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      seg = fresh;
      row->present[seg_idx >> 6].fetch_or(1ull << (seg_idx & 63),
                                          std::memory_order_release);
    } else {
      delete fresh;
    }
  }
  const std::uint32_t w = (ts & kSegMask) >> 6;
  const std::uint64_t mask = 1ull << (ts & 63);
  // Claim first-occurrence duty: exactly one thread sees the bit flip.
  // seq_cst so two threads inserting the two halves of a cycle cannot
  // both miss each other in the DFS below (store-buffering).
  if (seg->bits[w].fetch_or(mask, std::memory_order_seq_cst) & mask) {
    return;
  }
  // Mode tags for this first occurrence; readers of the tags only
  // consult them for edges whose bit they have already observed.
  if (from_mode == AccessMode::kRead) {
    seg->read_src[w].fetch_or(mask, std::memory_order_release);
  }
  if (to_mode == AccessMode::kRead) {
    seg->read_dst[w].fetch_or(mask, std::memory_order_release);
  }
  // Reverse edge for retire's O(in-degree) column clear. Lock-free
  // push; the list is detached wholesale by retire_class.
  auto* node = new InEdgeNode{fs, class_gen(from), nullptr};
  InEdgeNode* head = tsl->in_edges.load(std::memory_order_relaxed);
  do {
    node->next = head;
  } while (!tsl->in_edges.compare_exchange_weak(
      head, node, std::memory_order_release,
      std::memory_order_relaxed));
  edges_.fetch_add(1, std::memory_order_relaxed);
  check_cycle(fs, ts, lock, waiters, owned);
}

void Graph::check_cycle(std::uint32_t from_slot, std::uint32_t to_slot,
                        const void* lock, std::uint32_t waiters,
                        bool owned) {
  // Iterative DFS from `to` looking for `from`: a path to→…→from plus
  // the just-inserted from→to closes a cycle. Runs only on the first
  // occurrence of an edge, under the caller's epoch pin — so no slot
  // on the walk can be recycled mid-traversal (a stale in-edge can
  // therefore never be stitched to a recycled slot's fresh out-edges;
  // the old design drained a global DFS counter for the same
  // guarantee).
  const std::uint32_t cap = capacity_.load(std::memory_order_acquire);
  if (from_slot >= cap || to_slot >= cap) return;
  DfsScratch& scr = dfs_scratch(cap);
  std::size_t top = 0;
  scr.stack[top++] = to_slot;
  scr.visited[to_slot >> 6] |= 1ull << (to_slot & 63);
  scr.parent[to_slot] = kNoSlot;
  bool found = false;
  while (top > 0 && !found) {
    const std::uint32_t n = scr.stack[--top];
    const ClassSlot* s = slot_ptr(n);
    if (s == nullptr) continue;
    const Row* row = s->row.load(std::memory_order_acquire);
    if (row == nullptr) continue;
    const std::uint32_t live_segs = (cap + kSegSlots - 1) >> kSegShift;
    const std::uint32_t seg_words =
        std::min((live_segs + 63) / 64, kMaxSegs / 64);
    for (std::uint32_t sw = 0; sw < seg_words && !found; ++sw) {
      std::uint64_t pres =
          row->present[sw].load(std::memory_order_acquire);
      while (pres != 0 && !found) {
        const auto sb =
            static_cast<std::uint32_t>(__builtin_ctzll(pres));
        pres &= pres - 1;
        const std::uint32_t seg_idx = sw * 64 + sb;
        const EdgeSeg* seg =
            row->segs[seg_idx].load(std::memory_order_acquire);
        if (seg == nullptr) continue;
        for (std::uint32_t w = 0; w < kSegWords && !found; ++w) {
          const std::uint32_t base = seg_idx * kSegSlots + w * 64;
          if (base >= cap) break;
          std::uint64_t bits =
              seg->bits[w].load(std::memory_order_seq_cst);
          bits &= ~scr.visited[base >> 6];
          while (bits != 0) {
            const auto b =
                static_cast<std::uint32_t>(__builtin_ctzll(bits));
            bits &= bits - 1;
            const std::uint32_t succ = base + b;
            if (succ >= cap) break;
            scr.parent[succ] = n;
            if (succ == from_slot) {
              found = true;
              break;
            }
            scr.visited[base >> 6] |= 1ull << b;
            scr.stack[top++] = succ;
          }
        }
      }
    }
  }
  if (!found) return;

  // The parent chain walks from→…→to backwards through the DFS tree;
  // reversing it yields the stored-edge path to→…→from, and prepending
  // `from` (the new edge's source) closes the printed cycle:
  // from → to → … → from.
  std::vector<std::uint32_t> rev;
  for (std::uint32_t c = from_slot; c != kNoSlot; c = scr.parent[c]) {
    rev.push_back(c);
  }
  std::vector<std::uint32_t> path;
  path.reserve(rev.size() + 1);
  path.push_back(from_slot);
  for (std::size_t i = rev.size(); i-- > 0;) path.push_back(rev[i]);
  report_cycle(path.data(), path.size(), lock, waiters, owned);
}

void Graph::report_cycle(const std::uint32_t* path, std::size_t len,
                         const void* lock, std::uint32_t waiters,
                         bool owned) {
  // len counts nodes including the repeated endpoint: an AB/BA
  // inversion is {A, B, A} (len 3, two distinct classes).
  const bool two_lock = len == 3;
  if (two_lock) {
    inversions_.fetch_add(1, std::memory_order_relaxed);
  } else {
    cycles_.fetch_add(1, std::memory_order_relaxed);
  }
  // Every class on the path is now "entangled in a reported cycle" —
  // the lockdep-state input later misuse verdicts consult. The flag is
  // set under a generation check so a slot retired mid-report does not
  // have its next tenant born pre-flagged.
  for (std::size_t i = 0; i < len; ++i) {
    if (ClassSlot* s = slot_ptr(path[i])) {
      std::uint32_t meta = s->meta.load(std::memory_order_relaxed);
      while ((meta & kMetaLive) != 0 &&
             !s->meta.compare_exchange_weak(meta, meta | kMetaFlagged,
                                            std::memory_order_relaxed,
                                            std::memory_order_relaxed)) {
      }
    }
  }
  const EventKind kind =
      two_lock ? EventKind::kOrderInversion : EventKind::kDeadlockCycle;

  // Generation-stamped ids for attribution (trace consumers resolve
  // them later, when the slot may already have a new tenant).
  const auto stamp = [this](std::uint32_t slot) -> ClassId {
    const ClassSlot* s = slot_ptr(slot);
    if (s == nullptr) return make_class_id(slot, 0);
    return make_class_id(
        slot, meta_gen(s->meta.load(std::memory_order_relaxed)));
  };

  // The verdict pipeline: rules (RESILOCK_POLICY) first, the legacy
  // RESILOCK_LOCKDEP mode as the fallback — report maps to kLog,
  // abort to kAbort, so the old knob behaves exactly as before when no
  // rules are installed.
  response::EventContext ctx;
  ctx.waiters = waiters;
  // "Held by another thread" is contention too: in the canonical
  // two-thread AB/BA wedge the closing lock has an empty waiter queue
  // (its holder is parked on the OTHER lock), yet the wedge is
  // imminent — exactly what the abort tier exists for.
  ctx.contended = waiters > 0 || owned;
  ctx.in_flagged_cycle = true;
  // The report is attributed to the class of the lock whose acquisition
  // closed the cycle (path[1] — the destination of the new edge), which
  // is what @class=<name>-scoped rules key on: a per-level hierarchy
  // class lets "abort on inversion at hmcs.level1" fire only there.
  ctx.cls = stamp(path[1]);
  ctx.cls_label = label_of(ctx.cls);
  const auto ev = static_cast<response::ResponseEvent>(kind);
  const response::Action fallback =
      lockdep_mode() == LockdepMode::kAbort ? response::Action::kAbort
                                            : response::Action::kLog;
  const response::Action action =
      response::ResponseEngine::instance().decide(ev, ctx, fallback);

  TraceBuffer::instance().emit(kind, lock, stamp(path[0]),
                               stamp(path[1]),
                               static_cast<std::uint8_t>(action));

  if (action == response::Action::kLog ||
      action == response::Action::kAbort) {
    std::lock_guard<std::mutex> g(report_mutex_);
    std::fprintf(stderr,
                 "resilock[lockdep]: %s detected by thread pid %u on "
                 "lock %p (%u waiter%s) — acquisition order cycle:\n  ",
                 two_lock ? "lock-order inversion (AB/BA)"
                          : "potential deadlock cycle",
                 static_cast<unsigned>(platform::self_pid()), lock,
                 waiters, waiters == 1 ? "" : "s");
    for (std::size_t i = 0; i < len; ++i) {
      const ClassId id = stamp(path[i]);
      const char* label = label_of(id);
      // Mode annotation from the edge tag bitmaps: a node prints (r)
      // when the path traverses it in read mode (as the destination of
      // the incoming edge or the source of the outgoing one). Plain
      // exclusive paths carry no annotation.
      const bool read_here =
          (i > 0 && edge_dst_was_read(make_class_id(path[i - 1], 0),
                                      make_class_id(path[i], 0))) ||
          (i + 1 < len && edge_src_was_read(make_class_id(path[i], 0),
                                            make_class_id(path[i + 1],
                                                          0)));
      std::fprintf(stderr, "%s%s#%u%s", i == 0 ? "" : " -> ",
                   label != nullptr ? label : "lock",
                   static_cast<unsigned>(path[i]),
                   read_here ? "(r)" : "");
    }
    std::fprintf(stderr,
                 "\n  (flagged on first occurrence of this order; the "
                 "threads need never actually wedge)\n");
  }
  if (action == response::Action::kAbort) {
    response::dispatch_abort(ev, lock);
    // A verify/test abort trap returned: degrade to the report-only
    // outcome and let the acquisition proceed.
  }
}

LockdepStats Graph::stats() const {
  LockdepStats s;
  s.classes_registered =
      classes_registered_.load(std::memory_order_relaxed);
  s.classes_live = classes_live_.load(std::memory_order_relaxed);
  s.class_table_full = class_table_full_.load(std::memory_order_relaxed);
  s.edges = edges_.load(std::memory_order_relaxed);
  s.rr_skipped = rr_skipped_.load(std::memory_order_relaxed);
  s.inversions = inversions_.load(std::memory_order_relaxed);
  s.cycles = cycles_.load(std::memory_order_relaxed);
  s.stack_overflow = stack_overflow_.load(std::memory_order_relaxed);
  s.capacity = capacity_.load(std::memory_order_relaxed);
  s.chunks = chunks_.load(std::memory_order_relaxed);
  s.epoch = global_epoch_.load(std::memory_order_relaxed);
  s.limbo = limbo_count_.load(std::memory_order_relaxed);
  s.reclaimed = reclaimed_.load(std::memory_order_relaxed);
  s.shard_steals = shard_steals_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace resilock::lockdep
