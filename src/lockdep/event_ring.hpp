// Misuse event tracing: per-thread SPSC rings drained by a collector.
//
// Counters (shield_stats.hpp) say *that* misuse happened; production
// diagnosis needs *when*, *by whom*, and *on what*. Every shield
// violation and every lockdep report is recorded as a timestamped
// TraceEvent in the emitting thread's private ring — a single-producer
// single-consumer queue, so the emit path is two relaxed-ish atomic ops
// and one struct store, wait-free, no contention with other threads.
// A collector drains all rings through TraceBuffer::drain(); in
// production that collector is the background thread in src/telemetry/
// (bounded duty cycle, batched sink writes), with the atexit dump and
// on-demand exporters as fallbacks.
//
// Rings are bounded: when a producer outruns the collector the newest
// event is dropped and counted, never blocking the lock operation that
// triggered it — tracing must not perturb the thing it observes. The
// per-ring capacity defaults to EventRing::kDefaultCapacity and is
// tunable per process with RESILOCK_RING_CAPACITY (rounded up to a
// power of two): a long-running service pairs a larger ring with the
// background collector so bursts ride out the collector's sleep.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "platform/env.hpp"
#include "platform/thread_registry.hpp"
#include "runtime/timer.hpp"

namespace resilock::lockdep {

// One tag space for every layer: the shield's four ownership misuses
// (values match shield::MisuseKind), the lockdep verdicts, the
// reader-writer misuses intercepted by RwShield (values match the
// response engine's ResponseEvent tail), and — beyond the response
// engine's vocabulary — the telemetry span markers emitted when
// RESILOCK_TELEMETRY_SPANS is on, which the Perfetto sink pairs into
// lock-hold and contention slices on per-thread timeline tracks.
enum class EventKind : std::uint8_t {
  kUnbalancedUnlock = 0,
  kDoubleUnlock = 1,
  kNonOwnerUnlock = 2,
  kReentrantRelock = 3,
  kOrderInversion = 4,  // AB/BA two-lock order inversion
  kDeadlockCycle = 5,   // order cycle over three or more lock classes
  kUnbalancedReadUnlock = 6,   // runlock without a matching rlock
  kRwModeMismatch = 7,         // read hold released as write (or v.v.)
  kNonOwnerWriteUnlock = 8,    // wunlock while another thread writes
  // Telemetry spans (opt-in, never routed through the response
  // engine): hold = base-protocol acquisition .. release, wait = the
  // contended window of a blocking acquire.
  kHoldBegin = 9,
  kHoldEnd = 10,
  kWaitBegin = 11,
  kWaitEnd = 12,
  // Parking spans (src/park/): one kernel sleep on a wait word, a
  // sub-interval of the enclosing wait span. `lock` is the wait-word
  // address and `a` the shield-stamped class hint.
  kParkBegin = 13,
  kParkEnd = 14,
};

inline constexpr std::size_t kEventKinds = 15;
// Kinds below this value are misuse/lockdep reports; at or above it,
// telemetry span markers (kEventKinds - kFirstSpanKind span kinds).
inline constexpr std::size_t kFirstSpanKind = 9;

constexpr bool is_span_kind(EventKind k) noexcept {
  return static_cast<std::size_t>(k) >= kFirstSpanKind;
}

constexpr const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kUnbalancedUnlock: return "unbalanced-unlock";
    case EventKind::kDoubleUnlock: return "double-unlock";
    case EventKind::kNonOwnerUnlock: return "non-owner-unlock";
    case EventKind::kReentrantRelock: return "reentrant-relock";
    case EventKind::kOrderInversion: return "order-inversion";
    case EventKind::kDeadlockCycle: return "deadlock-cycle";
    case EventKind::kUnbalancedReadUnlock: return "unbalanced-read-unlock";
    case EventKind::kRwModeMismatch: return "rw-mode-mismatch";
    case EventKind::kNonOwnerWriteUnlock: return "non-owner-write-unlock";
    case EventKind::kHoldBegin: return "hold-begin";
    case EventKind::kHoldEnd: return "hold-end";
    case EventKind::kWaitBegin: return "wait-begin";
    case EventKind::kWaitEnd: return "wait-end";
    case EventKind::kParkBegin: return "park-begin";
    case EventKind::kParkEnd: return "park-end";
  }
  return "?";
}

// TraceEvent.verdict when the response engine was not consulted.
inline constexpr std::uint8_t kNoVerdict = 0xFF;
// TraceEvent.mode when the emitting layer tracks no AccessMode (the
// lockdep report path, hand-rolled test events). Real values are the
// AccessMode enum (core/access_mode.hpp).
inline constexpr std::uint8_t kNoMode = 0xFF;
// TraceEvent.a / .b when the event carries no class attribution
// (mirrors lockdep::kInvalidClass; a static_assert in lockdep.cpp
// keeps them in lock step).
inline constexpr std::uint32_t kNoClassTag = 0xFFFFFFFFu;

struct TraceEvent {
  std::uint64_t ns = 0;         // runtime::now_ns() at emission
  const void* lock = nullptr;   // the lock the misbehaving op targeted
  std::uint32_t pid = 0;        // dense thread id of the emitter
  // Lockdep reports: source/destination class of the new edge. Misuse
  // events: `a` is the class the misuse is attributed to (the shield's
  // class, or the entry-level class of a hierarchical lock) and `b` is
  // unused. Generation-stamped ClassIds (slot + generation), so a
  // trace consumer resolving them later can detect that the slot was
  // recycled instead of misattributing. kNoClassTag when unattributed.
  std::uint32_t a = kNoClassTag;
  std::uint32_t b = kNoClassTag;
  EventKind kind = EventKind::kUnbalancedUnlock;
  // response::Action the engine returned for this event (kNoVerdict
  // when none was taken), so post-mortem traces show not just what
  // happened but what the engine decided to do about it.
  std::uint8_t verdict = kNoVerdict;
  // Reader-writer payload: the AccessMode of the caller's hold at
  // interception (kNoMode outside the rw family) and the lock's
  // ReadIndicator estimate of live readers at that instant — the §4
  // damage radius a post-mortem wants next to each rw misuse.
  std::uint8_t mode = kNoMode;
  std::uint32_t readers = 0;
  // Acquisition call site (return address captured on the acquire
  // path) for span-begin events; 0 when lockstat is off or the event
  // kind carries no site. uint64 rather than a pointer so exporters
  // can print it without a cast chain.
  std::uint64_t site = 0;
};

// ---------------------------------------------------------------------
// Span tracing knob (RESILOCK_TELEMETRY_SPANS, runtime-settable).
// The shield's fast path checks this one relaxed flag before emitting
// hold/wait span markers; off (the default) the emit path is exactly
// the pre-telemetry code.
// ---------------------------------------------------------------------

namespace detail {
inline std::atomic<bool>& span_flag() {
  static std::atomic<bool> f{
      platform::env_flag("RESILOCK_TELEMETRY_SPANS", false)};
  return f;
}
}  // namespace detail

inline bool span_tracing_enabled() noexcept {
  return detail::span_flag().load(std::memory_order_relaxed);
}

inline void set_span_tracing(bool on) noexcept {
  detail::span_flag().store(on, std::memory_order_relaxed);
}

// RAII pin, mirroring LockdepModeGuard / MisuseCheckGuard.
class SpanTracingGuard {
 public:
  explicit SpanTracingGuard(bool on) : previous_(span_tracing_enabled()) {
    set_span_tracing(on);
  }
  ~SpanTracingGuard() { set_span_tracing(previous_); }
  SpanTracingGuard(const SpanTracingGuard&) = delete;
  SpanTracingGuard& operator=(const SpanTracingGuard&) = delete;

 private:
  const bool previous_;
};

// Lamport SPSC ring. The producer is whichever thread currently owns
// the pid slot (one at a time by construction of ThreadRegistry); the
// consumer is whoever calls TraceBuffer::drain().
class EventRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 128;  // power of two
  // Backward-compatible alias (tests and callers sized against it).
  static constexpr std::size_t kCapacity = kDefaultCapacity;
  static_assert((kDefaultCapacity & (kDefaultCapacity - 1)) == 0);

  // Capacity is rounded up to a power of two and clamped to
  // [64, 1 << 20] — big enough to ride out a collector duty cycle,
  // bounded so a typo'd env var cannot OOM the process.
  explicit EventRing(std::size_t capacity = kDefaultCapacity)
      : capacity_(round_capacity(capacity)),
        buf_(new TraceEvent[capacity_]()) {}

  std::size_t capacity() const noexcept { return capacity_; }

  // Producer side. False (and a dropped_ bump) when the ring is full.
  bool push(const TraceEvent& e) {
    attempts_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) == capacity_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    buf_[t & (capacity_ - 1)] = e;
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. False when the ring is empty.
  bool pop(TraceEvent& out) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_.load(std::memory_order_acquire)) return false;
    out = buf_[h & (capacity_ - 1)];
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  // Push attempts (accepted + dropped) — the producer-side half of the
  // pipeline's exact accounting: emitted == delivered + dropped.
  std::uint64_t emitted() const {
    return attempts_.load(std::memory_order_relaxed);
  }

  static std::size_t round_capacity(std::size_t c) noexcept {
    if (c < 64) c = 64;
    if (c > (std::size_t{1} << 20)) c = std::size_t{1} << 20;
    std::size_t p = 64;
    while (p < c) p <<= 1;
    return p;
  }

 private:
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> attempts_{0};
  const std::size_t capacity_;
  std::unique_ptr<TraceEvent[]> buf_;
};

// Per-process ring capacity: RESILOCK_RING_CAPACITY, rounded/clamped
// as EventRing does. Read once, on the first ring allocation.
inline std::size_t ring_capacity_from_env() {
  static const std::size_t cap = EventRing::round_capacity(
      platform::env_u32("RESILOCK_RING_CAPACITY",
                        EventRing::kDefaultCapacity));
  return cap;
}

// Registers the RESILOCK_TRACE_FILE atexit JSONL dump when that
// variable is set; idempotent. Defined in trace_export.cpp.
void register_env_trace_exporter();

// First-use notification for the telemetry plane (src/telemetry/):
// registers the flush-before-abort hook and autostarts the background
// collector when RESILOCK_TELEMETRY is set. Idempotent, reentrancy-
// safe. Defined in telemetry/collector.cpp.
void telemetry_first_use_hook();

// Process-wide collector over lazily allocated per-pid rings.
class TraceBuffer {
 public:
  static TraceBuffer& instance() {
    static TraceBuffer tb;
    // Registered AFTER tb's construction completes, so the atexit dump
    // runs BEFORE tb's destructor (handlers run in reverse
    // registration order) and never touches freed rings.
    register_env_trace_exporter();
    telemetry_first_use_hook();
    return tb;
  }

  // Emit from the calling thread (wait-free; the ring is allocated on
  // the thread's first event, never on the lock fast path).
  void emit(EventKind kind, const void* lock,
            std::uint32_t a = kNoClassTag, std::uint32_t b = kNoClassTag,
            std::uint8_t verdict = kNoVerdict,
            std::uint8_t mode = kNoMode, std::uint32_t readers = 0,
            std::uint64_t site = 0) {
    TraceEvent e;
    e.ns = runtime::now_ns();
    e.lock = lock;
    e.pid = platform::self_pid();
    e.a = a;
    e.b = b;
    e.kind = kind;
    e.verdict = verdict;
    e.mode = mode;
    e.readers = readers;
    e.site = site;
    ring_for(e.pid).push(e);
  }

  // Drains every ring through `sink`; returns the number of events
  // delivered. SINGLE consumer: the contract is enforced — a second
  // drainer arriving while one is in progress (the background
  // collector vs an on-demand exporter) gets 0 immediately instead of
  // silently interleaving pops with the first.
  std::size_t drain(const std::function<void(const TraceEvent&)>& sink) {
    if (draining_.exchange(true, std::memory_order_acquire)) return 0;
    std::size_t n = 0;
    for (auto& slot : rings_) {
      EventRing* r = slot.load(std::memory_order_acquire);
      if (r == nullptr) continue;
      TraceEvent e;
      while (r->pop(e)) {
        sink(e);
        ++n;
      }
    }
    draining_.store(false, std::memory_order_release);
    return n;
  }

  std::vector<TraceEvent> drain_all() {
    std::vector<TraceEvent> v;
    drain([&](const TraceEvent& e) { v.push_back(e); });
    return v;
  }

  // Events discarded because a producer outran the collector.
  std::uint64_t dropped() const {
    std::uint64_t d = 0;
    for (const auto& slot : rings_) {
      const EventRing* r = slot.load(std::memory_order_acquire);
      if (r != nullptr) d += r->dropped();
    }
    return d;
  }

  // Emit attempts across all rings (delivered + still queued + dropped).
  std::uint64_t emitted() const {
    std::uint64_t n = 0;
    for (const auto& slot : rings_) {
      const EventRing* r = slot.load(std::memory_order_acquire);
      if (r != nullptr) n += r->emitted();
    }
    return n;
  }

 private:
  TraceBuffer() {
    for (auto& s : rings_) s.store(nullptr, std::memory_order_relaxed);
  }
  ~TraceBuffer() {
    for (auto& s : rings_) delete s.load(std::memory_order_relaxed);
  }
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  EventRing& ring_for(std::uint32_t pid) {
    auto& slot = rings_[pid];
    EventRing* r = slot.load(std::memory_order_acquire);
    if (r == nullptr) {
      r = new EventRing(ring_capacity_from_env());
      EventRing* expected = nullptr;
      if (!slot.compare_exchange_strong(expected, r,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        delete r;  // pid slots recycle; a previous tenant installed one
        r = expected;
      }
    }
    return *r;
  }

  std::atomic<EventRing*> rings_[platform::ThreadRegistry::kCapacity];
  // In-drain guard: enforces the single-consumer contract now that the
  // background collector and on-demand exporters can race.
  std::atomic<bool> draining_{false};
};

}  // namespace resilock::lockdep
