#include "lockdep/trace_export.hpp"

#include <cstdlib>

#include "interpose/reentry.hpp"
#include "lockdep/lockdep.hpp"
#include "platform/env.hpp"
#include "platform/json.hpp"
#include "response/response.hpp"

namespace resilock::lockdep {

void write_event_jsonl(std::FILE* f, const TraceEvent& e) {
  Graph& g = Graph::instance();
  std::fprintf(f,
               "{\"ns\":%llu,\"kind\":\"%s\",\"lock\":\"%p\",\"pid\":%u",
               static_cast<unsigned long long>(e.ns), to_string(e.kind),
               e.lock, static_cast<unsigned>(e.pid));
  if (e.kind == EventKind::kOrderInversion ||
      e.kind == EventKind::kDeadlockCycle) {
    std::fprintf(f, ",\"a\":%u,\"b\":%u", static_cast<unsigned>(e.a),
                 static_cast<unsigned>(e.b));
    // Labels resolve against the LIVE class table; a class retired
    // between emission and drain simply drops its label. Labels are
    // user-controlled strings, so they go through the shared escaper.
    if (const char* la = g.label_of(e.a)) {
      std::fputs(",\"a_label\":", f);
      platform::write_json_escaped(f, la);
    }
    if (const char* lb = g.label_of(e.b)) {
      std::fputs(",\"b_label\":", f);
      platform::write_json_escaped(f, lb);
    }
  } else if (e.a != kNoClassTag) {
    // Misuse events attribute to one class (`a`): the shield's own
    // class, or the entry-level class of a hierarchical lock — which
    // is what makes a per-level key like "hmcs.level1" show up next
    // to the misuse that happened at that depth.
    std::fprintf(f, ",\"cls\":%u", static_cast<unsigned>(e.a));
    if (const char* lc = g.label_of(e.a)) {
      std::fputs(",\"cls_label\":", f);
      platform::write_json_escaped(f, lc);
    }
  }
  if (e.mode != kNoMode) {
    // Reader-writer payload: the hold's AccessMode at interception
    // and the indicator's live-reader estimate.
    std::fprintf(f, ",\"mode\":\"%s\",\"readers\":%u",
                 to_string(static_cast<AccessMode>(e.mode)),
                 static_cast<unsigned>(e.readers));
  }
  if (e.verdict != kNoVerdict &&
      e.verdict < response::kActions) {
    std::fprintf(f, ",\"verdict\":\"%s\"",
                 to_string(static_cast<response::Action>(e.verdict)));
  }
  if (e.site != 0) {
    // Acquisition call site (lockstat return-address capture); the
    // offline analyzer attributes span waits to sites through this.
    std::fprintf(f, ",\"site\":\"0x%llx\"",
                 static_cast<unsigned long long>(e.site));
  }
  std::fputs("}\n", f);
}

std::size_t write_trace_jsonl(std::FILE* f) {
  return TraceBuffer::instance().drain(
      [&](const TraceEvent& e) { write_event_jsonl(f, e); });
}

bool export_trace_jsonl(const char* path, std::size_t* written) {
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) {
    std::fprintf(stderr, "resilock[trace]: cannot open %s for append\n",
                 path);
    return false;
  }
  const std::size_t n = write_trace_jsonl(f);
  std::fclose(f);
  if (written != nullptr) *written = n;
  return true;
}

namespace {
void atexit_trace_dump() {
  // Runs on the exiting thread OUTSIDE any interposed frame. Under
  // LD_PRELOAD the drain below operates resilock-internal locks, which
  // must reach glibc rather than be adopted mid-exit.
  interpose::preload_pin_thread();
  if (const char* path = platform::env_raw("RESILOCK_TRACE_FILE")) {
    export_trace_jsonl(path);
  }
}
}  // namespace

void register_env_trace_exporter() {
  static const bool once = [] {
    if (platform::env_raw("RESILOCK_TRACE_FILE") != nullptr) {
      std::atexit(atexit_trace_dump);
    }
    return true;
  }();
  (void)once;
}

}  // namespace resilock::lockdep
