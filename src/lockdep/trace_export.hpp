// JSONL export of the misuse event ring — the first trace export
// format (ROADMAP: "text/JSONL dumper on atexit").
//
// Counters say THAT misuse happened; the ring says when/who/what; this
// exporter gets that record out of the process so it can be inspected
// post-mortem: one JSON object per line, append-mode, so successive
// dumps (and successive runs) accumulate into one greppable log.
//
//   {"ns":123,"kind":"non-owner-unlock","lock":"0x...","pid":3,
//    "a":7,"b":9,"a_label":"shield<MCS>","verdict":"log"}
//
// Two entry points:
//   * on-demand — export_trace_jsonl(path) / write_trace_jsonl(FILE*)
//     drain whatever is queued right now;
//   * atexit   — with RESILOCK_TRACE_FILE=<path> set, a process-exit
//     dump is registered automatically the first time any event is
//     emitted (note: std::abort() exits do not run atexit handlers —
//     an aborting verdict leaves only what earlier dumps captured).
//
// Draining consumes: events written by an exporter are gone from the
// ring. The single-consumer contract of TraceBuffer::drain applies.
#pragma once

#include <cstddef>
#include <cstdio>

namespace resilock::lockdep {

// Drains every ring into `f` as JSONL; returns events written.
std::size_t write_trace_jsonl(std::FILE* f);

// Opens `path` (append) and drains into it. False when the file cannot
// be opened; `written` (optional) receives the event count.
bool export_trace_jsonl(const char* path, std::size_t* written = nullptr);

}  // namespace resilock::lockdep
