// JSONL export of the misuse event ring — the first trace export
// format (ROADMAP: "text/JSONL dumper on atexit").
//
// Counters say THAT misuse happened; the ring says when/who/what; this
// exporter gets that record out of the process so it can be inspected
// post-mortem: one JSON object per line, append-mode, so successive
// dumps (and successive runs) accumulate into one greppable log.
//
//   {"ns":123,"kind":"non-owner-unlock","lock":"0x...","pid":3,
//    "a":7,"b":9,"a_label":"shield<MCS>","verdict":"log"}
//
// Two entry points:
//   * on-demand — export_trace_jsonl(path) / write_trace_jsonl(FILE*)
//     drain whatever is queued right now;
//   * atexit   — with RESILOCK_TRACE_FILE=<path> set, a process-exit
//     dump is registered automatically the first time any event is
//     emitted. std::abort() exits skip atexit handlers, but the
//     telemetry plane's flush-before-abort hook (telemetry/collector)
//     drains the rings to RESILOCK_TRACE_FILE on the engine's abort
//     path, so aborting verdicts no longer lose the trace.
//
// Draining consumes: events written by an exporter are gone from the
// ring. The single-consumer contract of TraceBuffer::drain applies —
// and is now enforced: a drain racing the background collector's
// returns 0 rather than interleaving.
#pragma once

#include <cstddef>
#include <cstdio>

namespace resilock::lockdep {

struct TraceEvent;

// Formats one event as a single JSONL line (no drain). Shared by the
// on-demand exporters below and the telemetry plane's JsonlSink so the
// line schema cannot fork.
void write_event_jsonl(std::FILE* f, const TraceEvent& e);

// Drains every ring into `f` as JSONL; returns events written.
std::size_t write_trace_jsonl(std::FILE* f);

// Opens `path` (append) and drains into it. False when the file cannot
// be opened; `written` (optional) receives the event count.
bool export_trace_jsonl(const char* path, std::size_t* written = nullptr);

}  // namespace resilock::lockdep
