// Lock-dependency subsystem: runtime lock-order graph with incremental
// cycle detection (lockdep, after the Linux kernel facility of the same
// name).
//
// The shield (src/shield/) answers "does the calling thread hold THIS
// lock?" — a per-thread, per-lock question. Deadlocks are a cross-thread,
// cross-lock property: thread 1 takes A then B, thread 2 takes B then A,
// and whether they wedge depends on timing. This subsystem makes the
// hazard timing-independent: every "held H while acquiring L" pair is an
// edge H→L in a global order graph, and an acquisition whose new edge
// closes a cycle is flagged the FIRST time that order is ever observed —
// long before (and whether or not) two threads actually interleave into
// the deadlock.
//
// Structure:
//   * a sharded, chunk-growable class table: every shielded lock
//     instance lazily registers a class id from a per-shard freelist
//     (shard = hash of the registering thread, work-stealing on
//     exhaustion); when every freelist is dry the table grows by one
//     chunk of slots, pointer-published with release semantics, so the
//     hot-path probe stays a wait-free two-load indirection and no
//     existing id ever moves. Ids carry a generation stamp in their
//     upper bits: a retired slot's id is recycled with a bumped
//     generation, so stale ids held by lockstat, traces, or response
//     rules can never alias the slot's next tenant;
//   * the order graph, sharded by source class into per-class bitmap
//     rows that grow by fixed-size segments (no global capacity in the
//     row layout). The hot path — "is this edge already known?" — is a
//     chain of lock-free loads. A NEW edge is claimed with one fetch_or
//     (seq_cst); the claiming thread then runs a DFS over the bitmap
//     rows for a path back. Two threads racing to insert the two halves
//     of a cycle both use seq_cst RMWs, so at least one of them
//     observes the other's edge and reports;
//   * epoch-based reclamation instead of the old global
//     dfs_inflight drain: readers (edge probes, DFS, reports, retire's
//     column clears) pin the global epoch on entry; retire_class parks
//     the dead slot and its detached row on an epoch-stamped limbo list
//     and returns immediately. Limbo entries are physically recycled
//     (row freed, id returned to a shard freelist) only once every
//     active reader pin postdates them — so a traversal can never
//     stitch a dead class's stale in-edge to a recycled id's fresh
//     out-edges, and retirement never blocks on other threads;
//   * a per-thread acquisition stack (AcqStack) recording the held set
//     in acquisition order, fed by Shield<L> hooks;
//   * verdicts wired to RESILOCK_LOCKDEP=report|abort|off (default
//     report), runtime-settable like the shield policy.
//
// Tunables: RESILOCK_LOCKDEP_SHARDS (freelist shards, power of two,
// default 8, max 64) and RESILOCK_LOCKDEP_CHUNK (slots mapped per
// growth step, power of two, default 1024, range 256..65536).
//
// Trylocks never add edges: an acquisition that cannot block cannot
// contribute to a deadlock cycle (it can only be held while someone
// else blocks, which the blocking side's edge records).
//
// Mode-tagged edges (the rw refactor): every acquisition-stack entry
// and every edge records its AccessMode. Read/read dependencies add NO
// edges — readers never block readers, so holding A in read mode while
// read-acquiring B can never be a deadlock ingredient (Linux lockdep's
// recursive-read rule) — and therefore every edge the graph stores has
// a write-mode (or exclusive) acquisition on at least one end, which is
// exactly the "cycle detection only fires when a write participates"
// property. The first-occurrence mode of each endpoint is kept in
// side bitmaps so reports can annotate the path (A(r) -> B(w)).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "core/access_mode.hpp"
#include "lockdep/event_ring.hpp"
#include "platform/env.hpp"

namespace resilock::lockdep {

// A class id is a table slot plus a generation stamp. The slot names a
// position in the chunk-growable table (it never moves); the generation
// counts how many times the slot has been recycled, so consumers that
// cached an id across a retire can detect the mismatch instead of
// attributing state to the slot's next tenant.
using ClassId = std::uint32_t;

inline constexpr std::uint32_t kClassSlotBits = 22;
inline constexpr std::uint32_t kClassGenBits = 8;
// Hard ceiling on table growth: 4M slots. The table starts empty and
// maps chunks on demand; this only bounds the static directory.
inline constexpr std::uint32_t kMaxClassSlots = 1u << kClassSlotBits;
inline constexpr std::uint32_t kClassSlotMask = kMaxClassSlots - 1;
inline constexpr std::uint32_t kClassGenMask = (1u << kClassGenBits) - 1;

// Not yet registered (lazy registration happens on first acquire).
inline constexpr ClassId kInvalidClass = 0xFFFFFFFFu;
// Registration was attempted while the table was at its growth ceiling;
// the lock participates in nothing (fail-open: no tracking, no false
// reports).
inline constexpr ClassId kUntrackedClass = 0xFFFFFFFEu;

constexpr std::uint32_t class_slot(ClassId id) noexcept {
  return id & kClassSlotMask;
}
constexpr std::uint32_t class_gen(ClassId id) noexcept {
  return (id >> kClassSlotBits) & kClassGenMask;
}
constexpr ClassId make_class_id(std::uint32_t slot,
                                std::uint32_t gen) noexcept {
  return slot | ((gen & kClassGenMask) << kClassSlotBits);
}
// True for real (trackable) ids; false for kInvalidClass /
// kUntrackedClass. This is THE guard every id-indexed path uses — the
// old `id < kMaxClasses` bound died with the fixed table.
constexpr bool class_tracked(ClassId id) noexcept {
  return id < (1u << (kClassSlotBits + kClassGenBits));
}

// ---------------------------------------------------------------------
// Mode: the lockdep analog of the shield's policy engine.
// ---------------------------------------------------------------------

enum class LockdepMode : std::uint8_t {
  kOff,     // no tracking at all (hooks disengage)
  kReport,  // count + trace + print each first-seen inversion/cycle
  kAbort,   // report, then abort() before the acquisition can wedge
};

constexpr const char* to_string(LockdepMode m) noexcept {
  switch (m) {
    case LockdepMode::kOff: return "off";
    case LockdepMode::kReport: return "report";
    case LockdepMode::kAbort: return "abort";
  }
  return "?";
}

inline std::optional<LockdepMode> mode_from_name(std::string_view name) {
  if (name == "off") return LockdepMode::kOff;
  if (name == "report") return LockdepMode::kReport;
  if (name == "abort") return LockdepMode::kAbort;
  return std::nullopt;
}

namespace detail {
inline std::atomic<LockdepMode>& mode_flag() {
  // RESILOCK_LOCKDEP is the legacy static knob; with RESILOCK_POLICY
  // rules installed it only decides whether tracking is engaged (off)
  // and serves as the verdict fallback for unmatched events.
  static std::atomic<LockdepMode> flag{[] {
    if (const char* v = platform::env_raw("RESILOCK_LOCKDEP")) {
      if (auto m = mode_from_name(v)) return *m;
    }
    return LockdepMode::kReport;
  }()};
  return flag;
}
}  // namespace detail

inline LockdepMode lockdep_mode() noexcept {
  return detail::mode_flag().load(std::memory_order_relaxed);
}

inline void set_lockdep_mode(LockdepMode m) noexcept {
  detail::mode_flag().store(m, std::memory_order_relaxed);
}

inline bool lockdep_enabled() noexcept {
  return lockdep_mode() != LockdepMode::kOff;
}

// RAII pin, mirroring ShieldPolicyGuard / MisuseCheckGuard.
class LockdepModeGuard {
 public:
  explicit LockdepModeGuard(LockdepMode m) : previous_(lockdep_mode()) {
    set_lockdep_mode(m);
  }
  ~LockdepModeGuard() { set_lockdep_mode(previous_); }
  LockdepModeGuard(const LockdepModeGuard&) = delete;
  LockdepModeGuard& operator=(const LockdepModeGuard&) = delete;

 private:
  const LockdepMode previous_;
};

// ---------------------------------------------------------------------
// Telemetry.
// ---------------------------------------------------------------------

struct LockdepStats {
  std::uint64_t classes_registered = 0;  // cumulative
  std::uint64_t classes_live = 0;        // currently registered
  std::uint64_t class_table_full = 0;    // registrations refused
  std::uint64_t edges = 0;               // distinct order edges recorded
  std::uint64_t rr_skipped = 0;          // read/read pairs taken edge-free
  std::uint64_t inversions = 0;          // two-class AB/BA reports
  std::uint64_t cycles = 0;              // reports with cycle length >= 3
  std::uint64_t stack_overflow = 0;      // held-set entries not tracked
  std::uint64_t capacity = 0;            // table slots currently mapped
  std::uint64_t chunks = 0;              // chunk mappings (growth steps)
  std::uint64_t epoch = 0;               // global reclamation epoch
  std::uint64_t limbo = 0;               // retired ids awaiting grace
  std::uint64_t reclaimed = 0;           // ids recycled after grace
  std::uint64_t shard_steals = 0;        // cross-shard freelist steals

  std::uint64_t reports() const { return inversions + cycles; }
};

// ---------------------------------------------------------------------
// The global order graph.
// ---------------------------------------------------------------------

class Graph {
 public:
  static Graph& instance() {
    // Deliberately leaked: thread-exit hooks (reader-slot leases) and
    // detached telemetry threads may touch the graph during shutdown.
    static Graph* g = new Graph();
    return *g;
  }

  // Allocates a class id (recycling retired ones first — own shard,
  // then stealing, then reclaiming limbo, then growing the table).
  // Returns kUntrackedClass only at the growth ceiling — callers must
  // treat that as "do not track" and carry on.
  ClassId register_class(const void* instance, const char* label);

  // Allocates a class id shared by MANY lock instances (Linux-style
  // static class keys, see class_key.hpp). `key` is registered as the
  // class's instance so reports can name it; the shared bit tells the
  // acquisition-stack validation that neither the instance mirror nor
  // the owner mirror can identify individual locks of this class.
  ClassId register_shared_class(const void* key, const char* label);

  // Logically retires the class: bumps the slot's generation (so the
  // id held by the caller — and anyone else — goes stale), clears its
  // in-edges from other rows, detaches its own row, and parks both on
  // the epoch limbo list. Returns immediately; the slot is recycled
  // and the row freed only after every reader pinned at or before the
  // retirement epoch has unpinned. Safe to call with kUntrackedClass /
  // kInvalidClass or an already-stale id (no-op).
  void retire_class(ClassId id);

  // True iff `id` was registered through register_shared_class (and is
  // still the slot's live tenant).
  bool is_shared(ClassId id) const {
    const ClassSlot* s = slot_checked(id);
    return s != nullptr &&
           (s->meta.load(std::memory_order_acquire) & kMetaShared) != 0;
  }

  // True iff `id` sat on the path of a reported inversion/cycle. This
  // is the "lockdep state" input of the response engine: a misuse on a
  // lock whose class is entangled in a known order cycle is graver
  // than the same misuse elsewhere.
  bool is_flagged(ClassId id) const {
    const ClassSlot* s = slot_checked(id);
    return s != nullptr &&
           (s->meta.load(std::memory_order_relaxed) & kMetaFlagged) != 0;
  }

  // Hot path: true iff from→to is already recorded (a chain of
  // wait-free loads: chunk → slot → row → segment → word).
  bool has_edge(ClassId from, ClassId to) const {
    if (!class_tracked(from) || !class_tracked(to)) return false;
    EpochPin pin(const_cast<Graph&>(*this));
    const EdgeSeg* seg = seg_of(class_slot(from), class_slot(to));
    if (seg == nullptr) return false;
    const std::uint32_t ts = class_slot(to);
    return (seg->bits[(ts & kSegMask) >> 6].load(
                std::memory_order_acquire) >>
            (ts & 63)) & 1u;
  }

  // Records "held `from` (in `from_mode`) while acquiring `to` (in
  // `to_mode`)" and, when the edge is new, runs cycle detection and the
  // response-engine verdict. `lock` is the lock being acquired (for the
  // report only); `waiters` is its live waiter count at the attempt and
  // `owned` whether another thread currently holds it — together the
  // contention signal the engine keys cycle-with-waiters escalation
  // off. A read/read pair adds NO edge (counted in rr_skipped): readers
  // never block readers, so the dependency cannot wedge — which leaves
  // every stored edge write-involved by construction.
  void ensure_edge(ClassId from, ClassId to, const void* lock,
                   std::uint32_t waiters = 0, bool owned = false,
                   AccessMode from_mode = AccessMode::kExclusive,
                   AccessMode to_mode = AccessMode::kExclusive) {
    if (!class_tracked(from) || !class_tracked(to)) return;
    const std::uint32_t fs = class_slot(from);
    const std::uint32_t ts = class_slot(to);
    if (fs == ts) return;
    if (from_mode == AccessMode::kRead && to_mode == AccessMode::kRead) {
      rr_skipped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // The pin covers every row/segment dereference below (and the DFS
    // inside claim_edge): reclamation frees a detached row only after
    // all pins taken before the retirement epoch are gone. Nested pins
    // (the on_acquire_attempt loop pins once around all its edges)
    // cost one thread-local increment.
    EpochPin pin(*this);
    if (const EdgeSeg* seg = seg_of(fs, ts)) {
      if ((seg->bits[(ts & kSegMask) >> 6].load(
               std::memory_order_acquire) >>
           (ts & 63)) & 1u) {
        return;  // hot path: the order is already known
      }
    }
    claim_edge(from, to, lock, waiters, owned, from_mode, to_mode);
  }

  // First-occurrence mode tags of a recorded edge: whether the source
  // hold / destination acquisition was read-mode. False for unrecorded
  // edges and write/exclusive endpoints.
  bool edge_src_was_read(ClassId from, ClassId to) const {
    if (!class_tracked(from) || !class_tracked(to)) return false;
    EpochPin pin(const_cast<Graph&>(*this));
    const EdgeSeg* seg = seg_of(class_slot(from), class_slot(to));
    if (seg == nullptr) return false;
    const std::uint32_t ts = class_slot(to);
    return (seg->read_src[(ts & kSegMask) >> 6].load(
                std::memory_order_acquire) >>
            (ts & 63)) & 1u;
  }
  bool edge_dst_was_read(ClassId from, ClassId to) const {
    if (!class_tracked(from) || !class_tracked(to)) return false;
    EpochPin pin(const_cast<Graph&>(*this));
    const EdgeSeg* seg = seg_of(class_slot(from), class_slot(to));
    if (seg == nullptr) return false;
    const std::uint32_t ts = class_slot(to);
    return (seg->read_dst[(ts & kSegMask) >> 6].load(
                std::memory_order_acquire) >>
            (ts & 63)) & 1u;
  }

  // Label of the slot's LIVE tenant; nullptr once the id went stale
  // (retired or recycled) — a recycled slot never answers for its
  // previous tenant.
  const char* label_of(ClassId id) const {
    const ClassSlot* s = slot_checked(id);
    return s != nullptr ? s->label.load(std::memory_order_acquire)
                        : nullptr;
  }

  // First live class registered under `label` (string compare), or
  // kInvalidClass. Cold path only: response-rule installation resolves
  // @class=<name> scopes through here. Scans only mapped chunks.
  ClassId find_class(std::string_view label) const;

  // Lock instance currently registered under `id`; nullptr when the
  // id is stale (or a sentinel).
  const void* instance_of(ClassId id) const {
    const ClassSlot* s = slot_checked(id);
    return s != nullptr ? s->instance.load(std::memory_order_acquire)
                        : nullptr;
  }

  // Graph-side owner mirror, maintained by the Shield hooks: pid+1 of
  // the thread that holds the class's lock, 0 when free. Lives in the
  // graph's own table (not in the lock) so a thread can validate a
  // possibly-stale acquisition-stack entry WITHOUT dereferencing a
  // lock object that may have been destroyed since.
  std::uint32_t owner_of(ClassId id) const {
    const ClassSlot* s = slot_checked(id);
    return s != nullptr ? s->owner_pid.load(std::memory_order_relaxed)
                        : 0;
  }
  void note_owner(ClassId id, std::uint32_t tag) {
    if (ClassSlot* s = slot_checked(id)) {
      s->owner_pid.store(tag, std::memory_order_relaxed);
    }
  }
  void clear_owner(ClassId id) { note_owner(id, 0); }

  // ------------------------------------------------------------------
  // Epoch reclamation (reader side is public: the hooks, the trace
  // exporter, and tests pin around multi-step graph reads).
  // ------------------------------------------------------------------

  // Reentrant per-thread epoch pin. While any thread is pinned at
  // epoch E, no limbo entry retired at an epoch >= E is recycled.
  void pin_epoch();
  void unpin_epoch();

  class EpochPin {
   public:
    explicit EpochPin(Graph& g) : g_(g) { g_.pin_epoch(); }
    ~EpochPin() { g_.unpin_epoch(); }
    EpochPin(const EpochPin&) = delete;
    EpochPin& operator=(const EpochPin&) = delete;

   private:
    Graph& g_;
  };

  // Frees every limbo entry whose grace period has passed (no active
  // pin at or before its retirement epoch): rows are deleted, slots
  // returned to the shard freelists. Called opportunistically by the
  // allocator and retire; public so tests and shutdown sweeps can
  // force it. Returns the number of entries recycled.
  std::size_t try_reclaim();

  // Table slots currently mapped (monotone; capacity never shrinks —
  // chunks are permanent, only their tenants churn).
  std::uint32_t capacity() const {
    return capacity_.load(std::memory_order_acquire);
  }

  // Caps future growth at `slots` (rounded down to a chunk multiple;
  // the ceiling kMaxClassSlots always applies). Already-mapped chunks
  // are unaffected. Returns the previous limit. Tests use this to
  // exercise the table-full fail-open path without mapping 4M slots.
  std::uint32_t set_capacity_limit(std::uint32_t slots);

  LockdepStats stats() const;

 private:
  Graph();
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  // ------------------------------------------------------------------
  // Table layout.
  // ------------------------------------------------------------------

  // Edge bitmaps grow in fixed 1024-destination segments, deliberately
  // decoupled from the (tunable) class-table chunk size.
  static constexpr std::uint32_t kSegSlots = 1024;
  static constexpr std::uint32_t kSegShift = 10;
  static constexpr std::uint32_t kSegMask = kSegSlots - 1;
  static constexpr std::uint32_t kSegWords = kSegSlots / 64;
  static constexpr std::uint32_t kMaxSegs = kMaxClassSlots / kSegSlots;

  struct EdgeSeg {
    std::atomic<std::uint64_t> bits[kSegWords] = {};
    // Mode tags, valid only where the corresponding `bits` bit is set:
    // the endpoint was read-mode at the edge's first occurrence.
    std::atomic<std::uint64_t> read_src[kSegWords] = {};
    std::atomic<std::uint64_t> read_dst[kSegWords] = {};
  };

  // One row = the successor bitmap of one source class, allocated on
  // its first out-edge. `present` mirrors which segments are mapped so
  // the DFS skips empty space in one word load per 64 segments.
  struct Row {
    std::atomic<std::uint64_t> present[kMaxSegs / 64] = {};
    std::atomic<EdgeSeg*> segs[kMaxSegs] = {};
  };

  // Reverse-edge bookkeeping: each successful first-occurrence claim
  // from→to pushes {from} onto to's in-edge list, so retire_class can
  // clear its column in O(in-degree) instead of sweeping the table.
  struct InEdgeNode {
    std::uint32_t src_slot;
    std::uint32_t src_gen;
    InEdgeNode* next;
  };

  struct ClassSlot {
    std::atomic<const char*> label{nullptr};
    std::atomic<const void*> instance{nullptr};
    std::atomic<std::uint32_t> owner_pid{0};
    // bit 0 live, bit 1 shared, bit 2 flagged; bits 8..15 generation.
    std::atomic<std::uint32_t> meta{0};
    std::atomic<Row*> row{nullptr};
    std::atomic<InEdgeNode*> in_edges{nullptr};
  };

  static constexpr std::uint32_t kMetaLive = 1u << 0;
  static constexpr std::uint32_t kMetaShared = 1u << 1;
  static constexpr std::uint32_t kMetaFlagged = 1u << 2;
  static constexpr std::uint32_t kMetaGenShift = 8;

  static constexpr std::uint32_t meta_gen(std::uint32_t meta) noexcept {
    return (meta >> kMetaGenShift) & kClassGenMask;
  }

  // Chunk directory: sized for the smallest permitted chunk so the
  // runtime chunk size only changes how much of it is used. 16384
  // pointers — the only statically-sized piece of the table.
  static constexpr std::uint32_t kMinChunkSlots = 256;
  static constexpr std::uint32_t kMaxChunkSlots = 65536;
  static constexpr std::uint32_t kChunkDirSlots =
      kMaxClassSlots / kMinChunkSlots;

  // Wait-free slot lookup: two dependent loads. Null when the slot's
  // chunk is not mapped (an id from a foreign/corrupt source).
  ClassSlot* slot_ptr(std::uint32_t slot) const {
    ClassSlot* chunk =
        chunk_dir_[slot >> chunk_shift_].load(std::memory_order_acquire);
    return chunk != nullptr ? &chunk[slot & chunk_mask_] : nullptr;
  }

  // slot_ptr plus the generation/liveness check: non-null only while
  // `id` is the slot's current live tenant.
  ClassSlot* slot_checked(ClassId id) const {
    if (!class_tracked(id)) return nullptr;
    ClassSlot* s = slot_ptr(class_slot(id));
    if (s == nullptr) return nullptr;
    const std::uint32_t m = s->meta.load(std::memory_order_acquire);
    if ((m & kMetaLive) == 0 || meta_gen(m) != class_gen(id)) {
      return nullptr;
    }
    return s;
  }

  // Segment holding from→to's bit, or nullptr when any level of the
  // row is unmapped (the edge was certainly never recorded).
  const EdgeSeg* seg_of(std::uint32_t fs, std::uint32_t ts) const {
    const ClassSlot* s = slot_ptr(fs);
    if (s == nullptr) return nullptr;
    const Row* row = s->row.load(std::memory_order_acquire);
    if (row == nullptr) return nullptr;
    return row->segs[ts >> kSegShift].load(std::memory_order_acquire);
  }

  // ------------------------------------------------------------------
  // Slow paths (lockdep.cpp).
  // ------------------------------------------------------------------

  ClassId register_internal(const void* instance, const char* label,
                            bool shared);
  // First-occurrence claim (allocates row/segment as needed, validates
  // both generations, records the in-edge, then runs the DFS). Called
  // with the caller's epoch pin held.
  void claim_edge(ClassId from, ClassId to, const void* lock,
                  std::uint32_t waiters, bool owned, AccessMode from_mode,
                  AccessMode to_mode);
  void check_cycle(std::uint32_t from_slot, std::uint32_t to_slot,
                   const void* lock, std::uint32_t waiters, bool owned);
  void report_cycle(const std::uint32_t* path, std::size_t len,
                    const void* lock, std::uint32_t waiters, bool owned);

  std::uint32_t alloc_slot();
  bool pop_shard(std::uint32_t shard, std::uint32_t& slot);
  void push_shard(std::uint32_t shard, std::uint32_t slot);
  std::uint32_t grow(std::uint32_t home_shard);
  void clear_in_edge(const InEdgeNode& in, std::uint32_t dst_slot);
  std::int32_t claim_reader_slot();

 public:
  // Thread-exit hook (reader-slot leases); not part of the API.
  void release_reader_slot(std::uint32_t idx);

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  static constexpr std::uint32_t kMaxShards = 64;
  static constexpr std::uint32_t kEpochReaders = 512;

  struct alignas(64) Shard {
    std::mutex mu;
    std::vector<std::uint32_t> free_slots;
  };
  struct alignas(64) ReaderSlot {
    std::atomic<std::uint64_t> epoch{0};  // 0 = quiescent
  };
  struct LimboEntry {
    std::uint32_t slot;
    std::uint64_t epoch;  // global epoch at retirement
    Row* row;             // detached row (may be null)
    LimboEntry* next;
  };

  // Geometry, fixed at construction from the env knobs.
  std::uint32_t chunk_slots_;
  std::uint32_t chunk_shift_;
  std::uint32_t chunk_mask_;
  std::uint32_t shard_count_;
  std::uint32_t shard_mask_;

  std::atomic<ClassSlot*> chunk_dir_[kChunkDirSlots] = {};
  std::atomic<std::uint32_t> capacity_{0};
  std::atomic<std::uint32_t> capacity_limit_{kMaxClassSlots};
  std::mutex grow_mutex_;

  Shard shards_[kMaxShards];
  std::atomic<std::uint32_t> reclaim_cursor_{0};

  // Epoch machinery. Reader slots are leased per thread (returned at
  // thread exit); when the pool is exhausted, extra readers pin via
  // the fallback counter, which blocks ALL reclamation while nonzero
  // (correct, just coarser).
  ReaderSlot readers_[kEpochReaders];
  std::atomic<std::uint64_t> global_epoch_{1};
  std::atomic<std::uint32_t> fallback_pins_{0};
  std::mutex reader_mutex_;
  std::vector<std::uint32_t> reader_free_;
  std::uint32_t reader_next_ = 0;

  std::mutex limbo_mutex_;
  LimboEntry* limbo_head_ = nullptr;
  LimboEntry* limbo_tail_ = nullptr;

  // Serializes report formatting so interleaved cycles stay readable.
  std::mutex report_mutex_;

  std::atomic<std::uint64_t> classes_registered_{0};
  std::atomic<std::uint64_t> classes_live_{0};
  std::atomic<std::uint64_t> class_table_full_{0};
  std::atomic<std::uint64_t> edges_{0};
  std::atomic<std::uint64_t> rr_skipped_{0};
  std::atomic<std::uint64_t> inversions_{0};
  std::atomic<std::uint64_t> cycles_{0};
  std::atomic<std::uint64_t> chunks_{0};
  std::atomic<std::uint64_t> limbo_count_{0};
  std::atomic<std::uint64_t> reclaimed_{0};
  std::atomic<std::uint64_t> shard_steals_{0};

  friend class AcqStack;  // stack_overflow_ lives here for one snapshot
  std::atomic<std::uint64_t> stack_overflow_{0};
};

// RAII capacity clamp for tests (restores the previous limit).
class CapacityLimitGuard {
 public:
  explicit CapacityLimitGuard(std::uint32_t slots)
      : previous_(Graph::instance().set_capacity_limit(slots)) {}
  ~CapacityLimitGuard() {
    Graph::instance().set_capacity_limit(previous_);
  }
  CapacityLimitGuard(const CapacityLimitGuard&) = delete;
  CapacityLimitGuard& operator=(const CapacityLimitGuard&) = delete;

 private:
  const std::uint32_t previous_;
};

// ---------------------------------------------------------------------
// Per-thread acquisition stack: the held set, in acquisition order.
// ---------------------------------------------------------------------

class AcqStack {
 public:
  // Deeper nests than this stop being tracked (counted, fail-open).
  // 64 is far beyond any sane lock nest; the shield's HeldLockTable
  // stays exact regardless.
  static constexpr std::size_t kMaxDepth = 64;

  struct Entry {
    const void* lock = nullptr;
    ClassId cls = kInvalidClass;
    AccessMode mode = AccessMode::kExclusive;
  };

  static AcqStack& mine() {
    thread_local AcqStack s;
    return s;
  }

  bool push(const void* lock, ClassId cls,
            AccessMode mode = AccessMode::kExclusive) {
    if (n_ == kMaxDepth) {
      Graph::instance().stack_overflow_.fetch_add(
          1, std::memory_order_relaxed);
      return false;
    }
    e_[n_++] = Entry{lock, cls, mode};
    return true;
  }

  // Removes the topmost entry for `lock`; no-op when absent (releases
  // of untracked or stale-handed-off locks).
  void remove(const void* lock) {
    for (std::size_t i = n_; i-- > 0;) {
      if (e_[i].lock != lock) continue;
      remove_at(i);
      return;
    }
  }

  // Removes the entry at `index`, preserving the order of the rest
  // (used by the lazy stale-entry purge in on_acquire_attempt).
  void remove_at(std::size_t index) {
    for (std::size_t j = index + 1; j < n_; ++j) e_[j - 1] = e_[j];
    --n_;
  }

  bool contains(const void* lock) const {
    for (std::size_t i = 0; i < n_; ++i) {
      if (e_[i].lock == lock) return true;
    }
    return false;
  }

  std::size_t depth() const { return n_; }
  const Entry* begin() const { return e_; }
  const Entry* end() const { return e_ + n_; }

 private:
  Entry e_[kMaxDepth] = {};
  std::size_t n_ = 0;
};

// ---------------------------------------------------------------------
// Hooks, called by Shield<L>.
// ---------------------------------------------------------------------

// Before a BLOCKING acquire attempt: records one order edge per held
// lock and runs the verdict on any new edge — i.e. an imminent
// inversion is flagged before the caller can wedge. Callers gate on
// lockdep_enabled(). `waiters` (the acquired lock's live waiter count)
// and `owned` (held by another thread right now) are forwarded to the
// response engine with any report. `mode` is the AccessMode of THIS
// acquisition; each held entry contributes its own recorded mode, and
// read/read pairs are edge-free (Graph::ensure_edge). `skip_src` /
// `skip_n` suppress edges sourced at the listed classes: combinators
// whose internal levels nest by construction (cohort local -> global,
// the HMCS/HCLH child -> parent climb) pass their own level classes
// here so their internal protocol order never pollutes the graph — an
// arbitrary-depth hierarchy holds EVERY level below the one it is
// climbing into, so the skip set must cover the whole tree, not one
// class.
inline void on_acquire_attempt(const void* lock, ClassId cls,
                               std::uint32_t waiters, bool owned,
                               AccessMode mode, const ClassId* skip_src,
                               std::size_t skip_n) {
  if (!class_tracked(cls)) return;
  AcqStack& st = AcqStack::mine();
  if (st.depth() == 0) return;  // single-lock hot path: no edges
  Graph& g = Graph::instance();
  // One pin for the whole held-set walk: every mirror probe and edge
  // claim below reads epoch-protected table state, and the nested pins
  // inside ensure_edge collapse to thread-local depth bumps.
  Graph::EpochPin pin(g);
  const std::uint32_t me = platform::self_pid() + 1;
  for (std::size_t i = 0; i < st.depth();) {
    const AcqStack::Entry held = st.begin()[i];
    const bool shared = g.is_shared(held.cls);
    // A per-instance held entry sources an edge only while the graph
    // still maps its class to this lock AND this thread is still the
    // owner. A §5 hand-off (cross-thread release with checks disabled)
    // or a destroyed lock leaves a stale entry that would otherwise
    // record orders this thread never held across — purge it lazily
    // instead. Both probes read the graph's own table, never the
    // (possibly freed) lock object; a recycled slot fails the id's
    // generation check and purges the same way.
    //
    // A SHARED (keyed) class maps many instances to one id, so neither
    // mirror can identify this entry; the only check left is that the
    // key itself is still registered. Stale keyed entries are instead
    // bounded by release() removing them by lock pointer. Read/write
    // holds of rw shields are shared-class by construction (many
    // concurrent readers), so they take this branch too.
    if (shared ? g.instance_of(held.cls) == nullptr
               : (g.instance_of(held.cls) != held.lock ||
                  g.owner_of(held.cls) != me)) {
      st.remove_at(i);
      continue;
    }
    bool skipped = false;
    for (std::size_t s = 0; s < skip_n; ++s) {
      if (held.cls == skip_src[s]) {
        skipped = true;
        break;
      }
    }
    if (!skipped) {
      g.ensure_edge(held.cls, cls, lock, waiters, owned, held.mode, mode);
    }
    ++i;
  }
}

// Single-skip convenience (the two-level cohort shape).
inline void on_acquire_attempt(const void* lock, ClassId cls,
                               std::uint32_t waiters = 0,
                               bool owned = false,
                               AccessMode mode = AccessMode::kExclusive,
                               ClassId skip_src = kInvalidClass) {
  on_acquire_attempt(lock, cls, waiters, owned, mode, &skip_src,
                     skip_src == kInvalidClass ? 0u : 1u);
}

// After the base protocol actually granted the lock (blocking or try
// path). Callers gate on lockdep_enabled(). `check_contains` guards
// against double-pushing a pass-through relock; callers that KNOW the
// acquisition is fresh (their held-table probe just said "not held")
// pass false and skip the scan — the rw read fast path cares.
inline void on_acquired(const void* lock, ClassId cls,
                        AccessMode mode = AccessMode::kExclusive,
                        bool check_contains = true) {
  if (!class_tracked(cls)) return;
  AcqStack& st = AcqStack::mine();
  if (check_contains && st.contains(lock)) {
    return;  // pass-through relock: held set, not depth
  }
  st.push(lock, cls, mode);
}

// After the base protocol was released (or the entry went stale through
// the §5 escape hatch). NOT gated on lockdep_enabled(): if tracking was
// on at acquire time the entry must come off even if the mode changed
// in between.
inline void on_released(const void* lock) {
  AcqStack::mine().remove(lock);
}

}  // namespace resilock::lockdep
