// Lock-dependency subsystem: runtime lock-order graph with incremental
// cycle detection (lockdep, after the Linux kernel facility of the same
// name).
//
// The shield (src/shield/) answers "does the calling thread hold THIS
// lock?" — a per-thread, per-lock question. Deadlocks are a cross-thread,
// cross-lock property: thread 1 takes A then B, thread 2 takes B then A,
// and whether they wedge depends on timing. This subsystem makes the
// hazard timing-independent: every "held H while acquiring L" pair is an
// edge H→L in a global order graph, and an acquisition whose new edge
// closes a cycle is flagged the FIRST time that order is ever observed —
// long before (and whether or not) two threads actually interleave into
// the deadlock.
//
// Structure:
//   * a fixed-size class table (kMaxClasses): every shielded lock
//     instance lazily registers a class id; ids are recycled on
//     destruction so long-lived processes do not exhaust the table;
//   * the order graph, sharded by source class into per-class atomic
//     bitmap rows. The hot path — "is this edge already known?" — is a
//     single lock-free word load. A NEW edge is claimed with one
//     fetch_or (seq_cst); the claiming thread then runs a DFS over the
//     bitmap rows for a path back. Two threads racing to insert the two
//     halves of a cycle both use seq_cst RMWs, so at least one of them
//     observes the other's edge and reports;
//   * a per-thread acquisition stack (AcqStack) recording the held set
//     in acquisition order, fed by Shield<L> hooks;
//   * verdicts wired to RESILOCK_LOCKDEP=report|abort|off (default
//     report), runtime-settable like the shield policy. Reports are
//     counted, pushed into the misuse event ring (event_ring.hpp), and
//     printed; abort additionally calls std::abort() — BEFORE the
//     acquisition blocks, so an imminent deadlock dies loudly instead
//     of wedging.
//
// Trylocks never add edges: an acquisition that cannot block cannot
// contribute to a deadlock cycle (it can only be held while someone
// else blocks, which the blocking side's edge records).
//
// Mode-tagged edges (the rw refactor): every acquisition-stack entry
// and every edge records its AccessMode. Read/read dependencies add NO
// edges — readers never block readers, so holding A in read mode while
// read-acquiring B can never be a deadlock ingredient (Linux lockdep's
// recursive-read rule) — and therefore every edge the graph stores has
// a write-mode (or exclusive) acquisition on at least one end, which is
// exactly the "cycle detection only fires when a write participates"
// property. The first-occurrence mode of each endpoint is kept in
// side bitmaps so reports can annotate the path (A(r) -> B(w)).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "core/access_mode.hpp"
#include "lockdep/event_ring.hpp"
#include "platform/env.hpp"

namespace resilock::lockdep {

using ClassId = std::uint16_t;

inline constexpr std::size_t kMaxClasses = 1024;
// Not yet registered (lazy registration happens on first acquire).
inline constexpr ClassId kInvalidClass = 0xFFFF;
// Registration was attempted while the class table was full; the lock
// participates in nothing (fail-open: no tracking, no false reports).
inline constexpr ClassId kUntrackedClass = 0xFFFE;

// ---------------------------------------------------------------------
// Mode: the lockdep analog of the shield's policy engine.
// ---------------------------------------------------------------------

enum class LockdepMode : std::uint8_t {
  kOff,     // no tracking at all (hooks disengage)
  kReport,  // count + trace + print each first-seen inversion/cycle
  kAbort,   // report, then abort() before the acquisition can wedge
};

constexpr const char* to_string(LockdepMode m) noexcept {
  switch (m) {
    case LockdepMode::kOff: return "off";
    case LockdepMode::kReport: return "report";
    case LockdepMode::kAbort: return "abort";
  }
  return "?";
}

inline std::optional<LockdepMode> mode_from_name(std::string_view name) {
  if (name == "off") return LockdepMode::kOff;
  if (name == "report") return LockdepMode::kReport;
  if (name == "abort") return LockdepMode::kAbort;
  return std::nullopt;
}

namespace detail {
inline std::atomic<LockdepMode>& mode_flag() {
  // RESILOCK_LOCKDEP is the legacy static knob; with RESILOCK_POLICY
  // rules installed it only decides whether tracking is engaged (off)
  // and serves as the verdict fallback for unmatched events.
  static std::atomic<LockdepMode> flag{[] {
    if (const char* v = platform::env_raw("RESILOCK_LOCKDEP")) {
      if (auto m = mode_from_name(v)) return *m;
    }
    return LockdepMode::kReport;
  }()};
  return flag;
}
}  // namespace detail

inline LockdepMode lockdep_mode() noexcept {
  return detail::mode_flag().load(std::memory_order_relaxed);
}

inline void set_lockdep_mode(LockdepMode m) noexcept {
  detail::mode_flag().store(m, std::memory_order_relaxed);
}

inline bool lockdep_enabled() noexcept {
  return lockdep_mode() != LockdepMode::kOff;
}

// RAII pin, mirroring ShieldPolicyGuard / MisuseCheckGuard.
class LockdepModeGuard {
 public:
  explicit LockdepModeGuard(LockdepMode m) : previous_(lockdep_mode()) {
    set_lockdep_mode(m);
  }
  ~LockdepModeGuard() { set_lockdep_mode(previous_); }
  LockdepModeGuard(const LockdepModeGuard&) = delete;
  LockdepModeGuard& operator=(const LockdepModeGuard&) = delete;

 private:
  const LockdepMode previous_;
};

// ---------------------------------------------------------------------
// Telemetry.
// ---------------------------------------------------------------------

struct LockdepStats {
  std::uint64_t classes_registered = 0;  // cumulative
  std::uint64_t classes_live = 0;        // currently registered
  std::uint64_t class_table_full = 0;    // registrations refused
  std::uint64_t edges = 0;               // distinct order edges recorded
  std::uint64_t rr_skipped = 0;          // read/read pairs taken edge-free
  std::uint64_t inversions = 0;          // two-class AB/BA reports
  std::uint64_t cycles = 0;              // reports with cycle length >= 3
  std::uint64_t stack_overflow = 0;      // held-set entries not tracked

  std::uint64_t reports() const { return inversions + cycles; }
};

// ---------------------------------------------------------------------
// The global order graph.
// ---------------------------------------------------------------------

class Graph {
 public:
  static Graph& instance() {
    static Graph g;
    return g;
  }

  // Allocates a class id (recycling retired ones first). Returns
  // kUntrackedClass when the table is full — callers must treat that as
  // "do not track" and carry on.
  ClassId register_class(const void* instance, const char* label);

  // Allocates a class id shared by MANY lock instances (Linux-style
  // static class keys, see class_key.hpp). `key` is registered as the
  // class's instance so reports can name it; the shared bit tells the
  // acquisition-stack validation that neither the instance mirror nor
  // the owner mirror can identify individual locks of this class.
  ClassId register_shared_class(const void* key, const char* label);

  // Clears the class's row and column in the edge relation and returns
  // the id to the free list. Safe to call with kUntrackedClass /
  // kInvalidClass (no-op).
  void retire_class(ClassId id);

  // True iff `id` was registered through register_shared_class.
  bool is_shared(ClassId id) const {
    if (id >= kMaxClasses) return false;
    return (shared_[id >> 6].load(std::memory_order_acquire) >>
            (id & 63)) & 1u;
  }

  // True iff `id` sat on the path of a reported inversion/cycle. This
  // is the "lockdep state" input of the response engine: a misuse on a
  // lock whose class is entangled in a known order cycle is graver
  // than the same misuse elsewhere.
  bool is_flagged(ClassId id) const {
    if (id >= kMaxClasses) return false;
    return (flagged_[id >> 6].load(std::memory_order_relaxed) >>
            (id & 63)) & 1u;
  }

  // Hot path: true iff from→to is already recorded (single word load).
  bool has_edge(ClassId from, ClassId to) const {
    if (from >= kMaxClasses || to >= kMaxClasses) return false;
    return (rows_[from].bits[to >> 6].load(std::memory_order_acquire) >>
            (to & 63)) & 1u;
  }

  // Records "held `from` (in `from_mode`) while acquiring `to` (in
  // `to_mode`)" and, when the edge is new, runs cycle detection and the
  // response-engine verdict. `lock` is the lock being acquired (for the
  // report only); `waiters` is its live waiter count at the attempt and
  // `owned` whether another thread currently holds it — together the
  // contention signal the engine keys cycle-with-waiters escalation
  // off. A read/read pair adds NO edge (counted in rr_skipped): readers
  // never block readers, so the dependency cannot wedge — which leaves
  // every stored edge write-involved by construction.
  void ensure_edge(ClassId from, ClassId to, const void* lock,
                   std::uint32_t waiters = 0, bool owned = false,
                   AccessMode from_mode = AccessMode::kExclusive,
                   AccessMode to_mode = AccessMode::kExclusive) {
    if (from >= kMaxClasses || to >= kMaxClasses || from == to) return;
    if (from_mode == AccessMode::kRead && to_mode == AccessMode::kRead) {
      rr_skipped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    auto& word = rows_[from].bits[to >> 6];
    const std::uint64_t mask = 1ull << (to & 63);
    if (word.load(std::memory_order_acquire) & mask) return;
    // Claim first-occurrence duty: exactly one thread sees the bit
    // flip. seq_cst so two threads inserting the two halves of a cycle
    // cannot both miss each other in the DFS below (store-buffering).
    if (word.fetch_or(mask, std::memory_order_seq_cst) & mask) return;
    // Mode tags for this first occurrence; readers of the tags only
    // consult them for edges whose bit they have already observed.
    if (from_mode == AccessMode::kRead) {
      rows_[from].read_src[to >> 6].fetch_or(mask,
                                             std::memory_order_release);
    }
    if (to_mode == AccessMode::kRead) {
      rows_[from].read_dst[to >> 6].fetch_or(mask,
                                             std::memory_order_release);
    }
    edges_.fetch_add(1, std::memory_order_relaxed);
    check_cycle(from, to, lock, waiters, owned);
  }

  // First-occurrence mode tags of a recorded edge: whether the source
  // hold / destination acquisition was read-mode. False for unrecorded
  // edges and write/exclusive endpoints.
  bool edge_src_was_read(ClassId from, ClassId to) const {
    if (from >= kMaxClasses || to >= kMaxClasses) return false;
    return (rows_[from].read_src[to >> 6].load(std::memory_order_acquire) >>
            (to & 63)) & 1u;
  }
  bool edge_dst_was_read(ClassId from, ClassId to) const {
    if (from >= kMaxClasses || to >= kMaxClasses) return false;
    return (rows_[from].read_dst[to >> 6].load(std::memory_order_acquire) >>
            (to & 63)) & 1u;
  }

  const char* label_of(ClassId id) const {
    if (id >= kMaxClasses) return nullptr;
    return labels_[id].load(std::memory_order_acquire);
  }

  // First live class registered under `label` (string compare), or
  // kInvalidClass. Cold path only: response-rule installation resolves
  // @class=<name> scopes through here.
  ClassId find_class(std::string_view label) const;

  // Lock instance currently registered under `id`; nullptr when the
  // class is retired (or the id is a sentinel).
  const void* instance_of(ClassId id) const {
    if (id >= kMaxClasses) return nullptr;
    return instances_[id].load(std::memory_order_acquire);
  }

  // Graph-side owner mirror, maintained by the Shield hooks: pid+1 of
  // the thread that holds the class's lock, 0 when free. Lives in the
  // graph's static arrays (not in the lock) so a thread can validate a
  // possibly-stale acquisition-stack entry WITHOUT dereferencing a
  // lock object that may have been destroyed since.
  std::uint32_t owner_of(ClassId id) const {
    if (id >= kMaxClasses) return 0;
    return owner_pid_[id].load(std::memory_order_relaxed);
  }
  void note_owner(ClassId id, std::uint32_t tag) {
    if (id < kMaxClasses) {
      owner_pid_[id].store(tag, std::memory_order_relaxed);
    }
  }
  void clear_owner(ClassId id) { note_owner(id, 0); }

  LockdepStats stats() const;

 private:
  Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  // DFS from `to` looking for `from`; on a hit, reports the cycle and
  // applies the response-engine verdict. Out of line — runs at most
  // once per distinct edge over the process lifetime.
  void check_cycle(ClassId from, ClassId to, const void* lock,
                   std::uint32_t waiters, bool owned);

  void report_cycle(const ClassId* path, std::size_t len,
                    const void* lock, std::uint32_t waiters, bool owned);

  static constexpr std::size_t kWords = kMaxClasses / 64;
  struct Row {
    std::atomic<std::uint64_t> bits[kWords] = {};
    // Mode tags, valid only where the corresponding `bits` bit is set:
    // the endpoint was read-mode at the edge's first occurrence.
    std::atomic<std::uint64_t> read_src[kWords] = {};
    std::atomic<std::uint64_t> read_dst[kWords] = {};
  };

  // The edge relation, sharded by source class: row r is the successor
  // bitmap of class r. Readers (hot-path probes and the DFS) are
  // lock-free; mutation is a single fetch_or.
  Row rows_[kMaxClasses] = {};

  std::atomic<const char*> labels_[kMaxClasses] = {};
  std::atomic<const void*> instances_[kMaxClasses] = {};
  std::atomic<std::uint32_t> owner_pid_[kMaxClasses] = {};
  // Shared-class bits (register_shared_class) and flagged-cycle bits
  // (set by report_cycle for every class on a reported path).
  std::atomic<std::uint64_t> shared_[kWords] = {};
  std::atomic<std::uint64_t> flagged_[kWords] = {};

  // DFS traversals in flight; retire_class waits for this to drain
  // before recycling an id, so a traversal can never stitch a dead
  // class's stale in-edge to a recycled id's fresh out-edges.
  std::atomic<std::uint32_t> dfs_in_flight_{0};

  // Class allocation (slow path only).
  std::mutex class_mutex_;
  std::vector<ClassId> free_ids_;
  ClassId next_unused_ = 0;

  // Serializes report formatting so interleaved cycles stay readable.
  std::mutex report_mutex_;

  std::atomic<std::uint64_t> classes_registered_{0};
  std::atomic<std::uint64_t> classes_live_{0};
  std::atomic<std::uint64_t> class_table_full_{0};
  std::atomic<std::uint64_t> edges_{0};
  std::atomic<std::uint64_t> rr_skipped_{0};
  std::atomic<std::uint64_t> inversions_{0};
  std::atomic<std::uint64_t> cycles_{0};

  friend class AcqStack;  // stack_overflow_ lives here for one snapshot
  std::atomic<std::uint64_t> stack_overflow_{0};
};

// ---------------------------------------------------------------------
// Per-thread acquisition stack: the held set, in acquisition order.
// ---------------------------------------------------------------------

class AcqStack {
 public:
  // Deeper nests than this stop being tracked (counted, fail-open).
  // 64 is far beyond any sane lock nest; the shield's HeldLockTable
  // stays exact regardless.
  static constexpr std::size_t kMaxDepth = 64;

  struct Entry {
    const void* lock = nullptr;
    ClassId cls = kInvalidClass;
    AccessMode mode = AccessMode::kExclusive;
  };

  static AcqStack& mine() {
    thread_local AcqStack s;
    return s;
  }

  bool push(const void* lock, ClassId cls,
            AccessMode mode = AccessMode::kExclusive) {
    if (n_ == kMaxDepth) {
      Graph::instance().stack_overflow_.fetch_add(
          1, std::memory_order_relaxed);
      return false;
    }
    e_[n_++] = Entry{lock, cls, mode};
    return true;
  }

  // Removes the topmost entry for `lock`; no-op when absent (releases
  // of untracked or stale-handed-off locks).
  void remove(const void* lock) {
    for (std::size_t i = n_; i-- > 0;) {
      if (e_[i].lock != lock) continue;
      remove_at(i);
      return;
    }
  }

  // Removes the entry at `index`, preserving the order of the rest
  // (used by the lazy stale-entry purge in on_acquire_attempt).
  void remove_at(std::size_t index) {
    for (std::size_t j = index + 1; j < n_; ++j) e_[j - 1] = e_[j];
    --n_;
  }

  bool contains(const void* lock) const {
    for (std::size_t i = 0; i < n_; ++i) {
      if (e_[i].lock == lock) return true;
    }
    return false;
  }

  std::size_t depth() const { return n_; }
  const Entry* begin() const { return e_; }
  const Entry* end() const { return e_ + n_; }

 private:
  Entry e_[kMaxDepth] = {};
  std::size_t n_ = 0;
};

// ---------------------------------------------------------------------
// Hooks, called by Shield<L>.
// ---------------------------------------------------------------------

// Before a BLOCKING acquire attempt: records one order edge per held
// lock and runs the verdict on any new edge — i.e. an imminent
// inversion is flagged before the caller can wedge. Callers gate on
// lockdep_enabled(). `waiters` (the acquired lock's live waiter count)
// and `owned` (held by another thread right now) are forwarded to the
// response engine with any report. `mode` is the AccessMode of THIS
// acquisition; each held entry contributes its own recorded mode, and
// read/read pairs are edge-free (Graph::ensure_edge). `skip_src` /
// `skip_n` suppress edges sourced at the listed classes: combinators
// whose internal levels nest by construction (cohort local -> global,
// the HMCS/HCLH child -> parent climb) pass their own level classes
// here so their internal protocol order never pollutes the graph — an
// arbitrary-depth hierarchy holds EVERY level below the one it is
// climbing into, so the skip set must cover the whole tree, not one
// class.
inline void on_acquire_attempt(const void* lock, ClassId cls,
                               std::uint32_t waiters, bool owned,
                               AccessMode mode, const ClassId* skip_src,
                               std::size_t skip_n) {
  if (cls >= kMaxClasses) return;
  AcqStack& st = AcqStack::mine();
  if (st.depth() == 0) return;  // single-lock hot path: no edges
  Graph& g = Graph::instance();
  const std::uint32_t me = platform::self_pid() + 1;
  for (std::size_t i = 0; i < st.depth();) {
    const AcqStack::Entry held = st.begin()[i];
    const bool shared = g.is_shared(held.cls);
    // A per-instance held entry sources an edge only while the graph
    // still maps its class to this lock AND this thread is still the
    // owner. A §5 hand-off (cross-thread release with checks disabled)
    // or a destroyed lock leaves a stale entry that would otherwise
    // record orders this thread never held across — purge it lazily
    // instead. Both probes read the graph's own arrays, never the
    // (possibly freed) lock object.
    //
    // A SHARED (keyed) class maps many instances to one id, so neither
    // mirror can identify this entry; the only check left is that the
    // key itself is still registered. Stale keyed entries are instead
    // bounded by release() removing them by lock pointer. Read/write
    // holds of rw shields are shared-class by construction (many
    // concurrent readers), so they take this branch too.
    if (shared ? g.instance_of(held.cls) == nullptr
               : (g.instance_of(held.cls) != held.lock ||
                  g.owner_of(held.cls) != me)) {
      st.remove_at(i);
      continue;
    }
    bool skipped = false;
    for (std::size_t s = 0; s < skip_n; ++s) {
      if (held.cls == skip_src[s]) {
        skipped = true;
        break;
      }
    }
    if (!skipped) {
      g.ensure_edge(held.cls, cls, lock, waiters, owned, held.mode, mode);
    }
    ++i;
  }
}

// Single-skip convenience (the two-level cohort shape).
inline void on_acquire_attempt(const void* lock, ClassId cls,
                               std::uint32_t waiters = 0,
                               bool owned = false,
                               AccessMode mode = AccessMode::kExclusive,
                               ClassId skip_src = kInvalidClass) {
  on_acquire_attempt(lock, cls, waiters, owned, mode, &skip_src,
                     skip_src == kInvalidClass ? 0u : 1u);
}

// After the base protocol actually granted the lock (blocking or try
// path). Callers gate on lockdep_enabled(). `check_contains` guards
// against double-pushing a pass-through relock; callers that KNOW the
// acquisition is fresh (their held-table probe just said "not held")
// pass false and skip the scan — the rw read fast path cares.
inline void on_acquired(const void* lock, ClassId cls,
                        AccessMode mode = AccessMode::kExclusive,
                        bool check_contains = true) {
  if (cls >= kMaxClasses) return;
  AcqStack& st = AcqStack::mine();
  if (check_contains && st.contains(lock)) {
    return;  // pass-through relock: held set, not depth
  }
  st.push(lock, cls, mode);
}

// After the base protocol was released (or the entry went stale through
// the §5 escape hatch). NOT gated on lockdep_enabled(): if tracking was
// on at acquire time the entry must come off even if the mode changed
// in between.
inline void on_released(const void* lock) {
  AcqStack::mine().remove(lock);
}

}  // namespace resilock::lockdep
