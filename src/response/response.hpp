// Unified adaptive response engine: one verdict pipeline for every
// protection layer.
//
// The paper frames the *remedy* for a caught misuse as a per-protocol
// decision; PR 1 (shield) and PR 2 (lockdep) each grew their own static
// policy knob (RESILOCK_SHIELD_POLICY, RESILOCK_LOCKDEP). A deployment,
// however, wants to express responses in terms of what is actually at
// stake RIGHT NOW: an unbalanced unlock of an uncontended lock is
// harmless to forward, the same unlock with waiters queued deserves a
// log line, and an order cycle reported while threads are already
// blocked on the lock is an imminent wedge worth dying for.
//
// This engine is that decision point. Both the Shield<L> misuse
// interception and the lockdep inversion/cycle verdict path route
// through
//
//   decide(event kind, lock telemetry, lockdep state) -> Action
//
// where telemetry is the lightweight contention probe threaded through
// the shield (core/contention.hpp) and the lockdep state is whether the
// lock's class sits on a reported order cycle.
//
// Rules come from RESILOCK_POLICY — an ordered, first-match-wins rule
// string:
//
//   RESILOCK_POLICY = rule[;rule...] | "adaptive" | "legacy"
//   rule   = events[@cond[@cond...]]=action
//            (several @cond clauses AND together: the rule matches
//            only when every clause holds — e.g.
//            "misuse@class=app.db@waiters>=2=abort" aborts misuse on
//            the app.db class only once two waiters are queued)
//   events = *|misuse|rw|lockdep|unbalanced-unlock|double-unlock|
//            non-owner-unlock|reentrant-relock|inversion|cycle|
//            unbalanced-read-unlock|rw-mode-mismatch|
//            non-owner-write-unlock
//            (several joined with '|')
//   cond   = uncontended | contended (alias: waiters) | incycle |
//            waiters>=N (live-waiter threshold, N a positive integer) |
//            parked>=N (threshold over waiters PARKED in futex_wait —
//            the blast radius of an absorbed unlock misuse: a parked
//            waiter wedges where a spinner merely burns cycles) |
//            class=<name> (per-class scope: the rule matches only
//            events attributed to the lockdep class named <name> — a
//            LockClassKey label such as "hmcs.level1", resolved to a
//            ClassId at rule-install time when the class is already
//            registered, by label comparison from then on otherwise)
//   action = passthrough | suppress | log | abort
//
// "adaptive" expands to the ROADMAP escalation ladder:
//   reentrant-relock=suppress; non-owner-unlock|rw=log;
//   misuse@uncontended=passthrough; misuse@contended=log;
//   lockdep@contended=abort; lockdep=log; misuse=suppress
//
// Log verdicts can additionally be rate-limited (token bucket per
// event kind, RESILOCK_LOG_RATE tokens/second): a log verdict with the
// bucket empty degrades to suppress, so noisy production misuse cannot
// flood stderr or the trace ring.
//
// Backward compatibility: with no rules installed (no RESILOCK_POLICY,
// "legacy", or an empty spec) every decision returns the caller's
// fallback action — the shield passes its per-instance policy and
// lockdep passes its mode — so the old env vars behave exactly as
// before. Explicit per-Shield policies always win over rules.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace resilock::response {

// One tag space across layers. Values 0..3 mirror shield::MisuseKind,
// 4..5 the lockdep half of lockdep::EventKind, 6..8 the reader-writer
// misuses RwShield intercepts (static_asserts at the call sites keep
// them in lock step).
enum class ResponseEvent : std::uint8_t {
  kUnbalancedUnlock = 0,
  kDoubleUnlock = 1,
  kNonOwnerUnlock = 2,
  kReentrantRelock = 3,
  kOrderInversion = 4,
  kDeadlockCycle = 5,
  kUnbalancedReadUnlock = 6,
  kRwModeMismatch = 7,
  kNonOwnerWriteUnlock = 8,
};

inline constexpr std::size_t kResponseEvents = 9;

constexpr const char* to_string(ResponseEvent e) noexcept {
  switch (e) {
    case ResponseEvent::kUnbalancedUnlock: return "unbalanced-unlock";
    case ResponseEvent::kDoubleUnlock: return "double-unlock";
    case ResponseEvent::kNonOwnerUnlock: return "non-owner-unlock";
    case ResponseEvent::kReentrantRelock: return "reentrant-relock";
    case ResponseEvent::kOrderInversion: return "inversion";
    case ResponseEvent::kDeadlockCycle: return "cycle";
    case ResponseEvent::kUnbalancedReadUnlock:
      return "unbalanced-read-unlock";
    case ResponseEvent::kRwModeMismatch: return "rw-mode-mismatch";
    case ResponseEvent::kNonOwnerWriteUnlock:
      return "non-owner-write-unlock";
  }
  return "?";
}

// What the consulted layer should do with the event. For shield
// misuses: forward to the base protocol / swallow / print + swallow /
// die. For lockdep reports (which cannot be "forwarded"): passthrough
// and suppress both mean count + trace silently, log prints the report,
// abort prints and dies before the acquisition can wedge.
enum class Action : std::uint8_t {
  kPassthrough = 0,
  kSuppress = 1,
  kLog = 2,
  kAbort = 3,
};

inline constexpr std::size_t kActions = 4;

constexpr const char* to_string(Action a) noexcept {
  switch (a) {
    case Action::kPassthrough: return "passthrough";
    case Action::kSuppress: return "suppress";
    case Action::kLog: return "log";
    case Action::kAbort: return "abort";
  }
  return "?";
}

std::optional<Action> action_from_name(std::string_view name) noexcept;

// Mirrors lockdep::kInvalidClass without pulling the lockdep headers in
// (response sits below lockdep in the include order). ClassIds are
// generation-stamped 32-bit values (slot + recycle generation).
inline constexpr std::uint32_t kNoClass = 0xFFFFFFFFu;

// Telemetry snapshot the reporting layer hands to decide().
struct EventContext {
  std::uint32_t waiters = 0;      // threads blocked on the lock now
  // Of those, threads parked in futex_wait (src/park/) at event time.
  // 0 when the base lock has no parking tier or RESILOCK_PARK is off.
  std::uint32_t waiters_parked = 0;
  bool contended = false;         // waiters > 0
  bool in_flagged_cycle = false;  // lock's class is on a reported cycle
  // Lockdep class the event is attributed to (and its label), when the
  // reporting layer knows one: the shield's own class for a misuse, the
  // closing-edge destination for an inversion/cycle, the entry-level
  // class for a hierarchical-lock misuse. kNoClass/nullptr disables
  // @class= rule scoping for the event.
  std::uint32_t cls = kNoClass;
  const char* cls_label = nullptr;
};

enum class Condition : std::uint8_t {
  kAlways,
  kUncontended,     // !contended
  kContended,       // contended (env alias: "waiters")
  kInCycle,         // in_flagged_cycle
  kWaitersAtLeast,  // waiters >= threshold ("waiters>=N")
  kParkedAtLeast,   // waiters_parked >= threshold ("parked>=N")
  kClassScope,      // event attributed to the named class ("class=<name>")
};

// One @cond clause, evaluated against the event context. Rules AND an
// arbitrary number of these together (compound conditions like
// "@class=app.db@waiters>=2").
struct CondClause {
  Condition cond = Condition::kAlways;
  std::uint32_t threshold = 0;  // kWaitersAtLeast / kParkedAtLeast
  // kClassScope only: the LockClassKey label the clause is scoped to,
  // and the ClassId it resolved to at install time (kNoClass when the
  // class was not yet registered — the clause then matches by label, so
  // a scope installed before the first acquire of its class still
  // works).
  std::string cls_name;
  std::uint32_t cls = kNoClass;
};

inline bool cond_matches(Condition cond, std::uint32_t threshold,
                         const std::string& cls_name, std::uint32_t cls,
                         const EventContext& ctx) noexcept {
  switch (cond) {
    case Condition::kAlways: return true;
    case Condition::kUncontended: return !ctx.contended;
    case Condition::kContended: return ctx.contended;
    case Condition::kInCycle: return ctx.in_flagged_cycle;
    case Condition::kWaitersAtLeast: return ctx.waiters >= threshold;
    case Condition::kParkedAtLeast:
      return ctx.waiters_parked >= threshold;
    case Condition::kClassScope:
      // The install-time id pin distinguishes same-label classes
      // (two trees both labeled "hmcs.level1"). Ids carry a recycle
      // generation, so a retired class's slot can never alias the
      // pin; the label check still corroborates the label-only
      // (pre-registration) install path.
      if (cls != kNoClass && ctx.cls != cls) return false;
      return ctx.cls_label != nullptr && cls_name == ctx.cls_label;
  }
  return false;
}

struct Rule {
  std::uint16_t events = 0x1FF;  // bitmask over ResponseEvent values
  // First @cond clause, kept as flat fields (the single-condition
  // grammar predates compound rules and callers read these directly).
  Condition cond = Condition::kAlways;
  Action action = Action::kSuppress;
  std::uint32_t threshold = 0;  // kWaitersAtLeast / kParkedAtLeast
  std::string cls_name;         // kClassScope only (see CondClause)
  std::uint32_t cls = kNoClass;
  // Second and later @cond clauses, ANDed with the first.
  std::vector<CondClause> extra;

  bool matches(ResponseEvent ev, const EventContext& ctx) const noexcept {
    if ((events & (1u << static_cast<unsigned>(ev))) == 0) return false;
    if (!cond_matches(cond, threshold, cls_name, cls, ctx)) return false;
    for (const CondClause& c : extra) {
      if (!cond_matches(c.cond, c.threshold, c.cls_name, c.cls, ctx)) {
        return false;
      }
    }
    return true;
  }
};

// Parses a rule spec ("adaptive"/"legacy" presets included). Returns
// nullopt on any malformed rule — a policy string must be all-or-
// nothing, a half-installed escalation ladder is worse than none.
std::optional<std::vector<Rule>> parse_rules(std::string_view spec);

// The "adaptive" preset, spelled out (bench and verify install it).
std::string_view adaptive_policy_spec() noexcept;

struct ResponseStats {
  std::uint64_t decisions = 0;
  std::uint64_t rule_hits = 0;  // decisions answered by a rule (not fallback)
  std::uint64_t log_rate_limited = 0;  // log verdicts degraded to suppress
  std::uint64_t by_action[kActions] = {};
  std::uint64_t by_event[kResponseEvents] = {};
};

class ResponseEngine {
 public:
  static ResponseEngine& instance();

  // The verdict pipeline. Rules are consulted in order, first match
  // wins; with no rules (or no match) the caller's `fallback` — its
  // legacy static policy — is returned, which is what keeps the old
  // RESILOCK_SHIELD_POLICY / RESILOCK_LOCKDEP semantics intact.
  // Called only on the cold path (a caught misuse or a first-seen
  // order violation), never per lock operation.
  Action decide(ResponseEvent ev, const EventContext& ctx,
                Action fallback) noexcept;

  // Installs `spec` (true) or rejects it untouched (false). An empty
  // spec or "legacy" clears the rules.
  bool configure(std::string_view spec);
  void install(std::vector<Rule> rules);
  void clear_rules();
  bool has_rules() const noexcept {
    return has_rules_.load(std::memory_order_acquire);
  }
  std::vector<Rule> rules() const;

  ResponseStats stats() const;
  void reset_stats();

  // -- log-verdict rate limiting (token bucket per event kind) ---------
  // `per_sec` tokens refill per second with an equal burst capacity;
  // 0 disables limiting (the default). Seeded from RESILOCK_LOG_RATE.
  // When the bucket for an event kind is empty, a kLog decision
  // degrades to kSuppress and counts in stats().log_rate_limited —
  // the misuse is still intercepted and traced, just not printed.
  void set_log_rate_limit(std::uint32_t per_sec) noexcept;
  std::uint32_t log_rate_limit() const noexcept {
    return log_rate_.load(std::memory_order_acquire);
  }

 private:
  ResponseEngine();  // reads RESILOCK_POLICY, RESILOCK_LOG_RATE
  ResponseEngine(const ResponseEngine&) = delete;
  ResponseEngine& operator=(const ResponseEngine&) = delete;

  // True when the calling kLog decision may print; false degrades it.
  bool take_log_token(ResponseEvent ev) noexcept;

  mutable std::mutex mutex_;   // guards rules_ (cold path only)
  std::vector<Rule> rules_;
  std::atomic<bool> has_rules_{false};

  struct LogBucket {  // guarded by bucket_mutex_
    double tokens = 0.0;
    std::uint64_t last_refill_ns = 0;
  };
  mutable std::mutex bucket_mutex_;  // cold path: log verdicts only
  LogBucket buckets_[kResponseEvents] = {};
  std::atomic<std::uint32_t> log_rate_{0};  // tokens/sec; 0 = unlimited

  std::atomic<std::uint64_t> decisions_{0};
  std::atomic<std::uint64_t> rule_hits_{0};
  std::atomic<std::uint64_t> log_rate_limited_{0};
  std::atomic<std::uint64_t> by_action_[kActions] = {};
  std::atomic<std::uint64_t> by_event_[kResponseEvents] = {};
};

// ---------------------------------------------------------------------
// Abort dispatch. kAbort verdicts funnel through here so the verify
// layer can observe "this would have died" without dying: the default
// handler calls std::abort(); a test/verify handler records and
// returns, and the caller then degrades to suppression.
// ---------------------------------------------------------------------

using AbortHandler = void (*)(ResponseEvent ev, const void* lock);

// Installs `h` (nullptr restores the default std::abort behavior);
// returns the previous handler.
AbortHandler set_abort_handler(AbortHandler h) noexcept;

// Invokes the current handler. Returns only when a non-default handler
// chose not to die.
void dispatch_abort(ResponseEvent ev, const void* lock);

// Flush hook run on the DEFAULT (dying) abort path, immediately before
// std::abort(). std::abort() skips atexit handlers, so without this an
// aborting verdict — the engine's strongest response — lost the very
// trace that justified it. The telemetry plane installs a hook that
// stops the collector (final drain included) and dumps any queued
// events to RESILOCK_TRACE_FILE. Not invoked when a custom
// AbortHandler intercepts the abort (the process survives; the normal
// pipeline keeps running). Returns the previous hook.
using AbortFlushHook = void (*)();
AbortFlushHook set_abort_flush_hook(AbortFlushHook h) noexcept;

// RAII pins, mirroring ShieldPolicyGuard / LockdepModeGuard.
class ResponseRulesGuard {
 public:
  // Installs `spec` for the scope ("" / "legacy" pins the no-rules
  // state). A malformed spec pins no-rules rather than throwing — the
  // guard is used in verify/bench paths that must not die on a typo'd
  // environment.
  explicit ResponseRulesGuard(std::string_view spec);
  explicit ResponseRulesGuard(std::vector<Rule> rules);
  ~ResponseRulesGuard();
  ResponseRulesGuard(const ResponseRulesGuard&) = delete;
  ResponseRulesGuard& operator=(const ResponseRulesGuard&) = delete;

 private:
  std::vector<Rule> previous_;
  bool previous_had_;
};

class ScopedAbortHandler {
 public:
  explicit ScopedAbortHandler(AbortHandler h) : prev_(set_abort_handler(h)) {}
  ~ScopedAbortHandler() { set_abort_handler(prev_); }
  ScopedAbortHandler(const ScopedAbortHandler&) = delete;
  ScopedAbortHandler& operator=(const ScopedAbortHandler&) = delete;

 private:
  AbortHandler prev_;
};

// RAII pin for the log-verdict rate limit (tests, measurement runs).
class LogRateLimitGuard {
 public:
  explicit LogRateLimitGuard(std::uint32_t per_sec)
      : previous_(ResponseEngine::instance().log_rate_limit()) {
    ResponseEngine::instance().set_log_rate_limit(per_sec);
  }
  ~LogRateLimitGuard() {
    ResponseEngine::instance().set_log_rate_limit(previous_);
  }
  LogRateLimitGuard(const LogRateLimitGuard&) = delete;
  LogRateLimitGuard& operator=(const LogRateLimitGuard&) = delete;

 private:
  const std::uint32_t previous_;
};

}  // namespace resilock::response
