// Out-of-line half of the response engine: the RESILOCK_POLICY rule
// parser, the singleton (env-seeded), verdict bookkeeping, and abort
// dispatch.
#include "response/response.hpp"

#include <cstdio>
#include <cstdlib>

#include "platform/env.hpp"

namespace resilock::response {

namespace {

// The escalation ladder, ordered most-specific first:
//   * a reentrant relock is NEVER forwarded — on a non-reentrant base
//     protocol passthrough is a guaranteed self-deadlock, not a
//     "harmless radius" misuse; absorbing it (suppress) is the §3.9
//     remedy;
//   * a non-owner unlock means another thread HOLDS the lock, so
//     forwarding it is the paper's headline corruption even with no
//     waiters queued: log + suppress;
//   * the remaining release misuses (unbalanced/double unlock of a
//     free lock) forward faithfully when nobody is queued, escalate to
//     log once waiters exist;
//   * lockdep reports abort when the flagged order closes against a
//     contended lock (waiters queued or held by another thread — the
//     imminent-wedge shape), otherwise log.
constexpr std::string_view kAdaptiveSpec =
    "reentrant-relock=suppress;non-owner-unlock=log;"
    "misuse@uncontended=passthrough;misuse@contended=log;"
    "lockdep@contended=abort;lockdep=log;misuse=suppress";

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// One event token -> bitmask over ResponseEvent values; 0 on error.
std::uint8_t event_mask(std::string_view tok) {
  if (tok == "*" || tok == "any") return 0x3F;
  if (tok == "misuse") return 0x0F;   // the four shield ownership kinds
  if (tok == "lockdep") return 0x30;  // inversion + cycle
  for (std::size_t i = 0; i < kResponseEvents; ++i) {
    const auto ev = static_cast<ResponseEvent>(i);
    if (tok == to_string(ev)) return static_cast<std::uint8_t>(1u << i);
  }
  // Long-form lockdep aliases (the EventKind names).
  if (tok == "order-inversion") return 0x10;
  if (tok == "deadlock-cycle") return 0x20;
  return 0;
}

std::optional<Condition> cond_from_name(std::string_view tok) {
  if (tok == "uncontended") return Condition::kUncontended;
  if (tok == "contended" || tok == "waiters") return Condition::kContended;
  if (tok == "incycle" || tok == "in-cycle") return Condition::kInCycle;
  return std::nullopt;
}

std::optional<Rule> parse_rule(std::string_view text) {
  const std::size_t eq = text.find('=');
  if (eq == std::string_view::npos) return std::nullopt;
  const auto action = action_from_name(trim(text.substr(eq + 1)));
  if (!action) return std::nullopt;

  std::string_view lhs = trim(text.substr(0, eq));
  Rule r;
  r.action = *action;
  const std::size_t at = lhs.find('@');
  if (at != std::string_view::npos) {
    const auto cond = cond_from_name(trim(lhs.substr(at + 1)));
    if (!cond) return std::nullopt;
    r.cond = *cond;
    lhs = trim(lhs.substr(0, at));
  }
  // Event list: tok['|'tok...].
  r.events = 0;
  while (!lhs.empty()) {
    const std::size_t bar = lhs.find('|');
    const std::string_view tok = trim(lhs.substr(0, bar));
    const std::uint8_t mask = event_mask(tok);
    if (mask == 0) return std::nullopt;
    r.events |= mask;
    if (bar == std::string_view::npos) break;
    lhs = lhs.substr(bar + 1);
  }
  if (r.events == 0) return std::nullopt;
  return r;
}

}  // namespace

std::optional<Action> action_from_name(std::string_view name) noexcept {
  if (name == "passthrough") return Action::kPassthrough;
  if (name == "suppress") return Action::kSuppress;
  if (name == "log") return Action::kLog;
  if (name == "abort") return Action::kAbort;
  return std::nullopt;
}

std::string_view adaptive_policy_spec() noexcept { return kAdaptiveSpec; }

std::optional<std::vector<Rule>> parse_rules(std::string_view spec) {
  spec = trim(spec);
  if (spec == "adaptive") spec = kAdaptiveSpec;
  std::vector<Rule> rules;
  if (spec.empty() || spec == "legacy") return rules;  // no-rules state
  while (true) {
    const std::size_t semi = spec.find(';');
    const std::string_view text = trim(spec.substr(0, semi));
    if (!text.empty()) {
      const auto r = parse_rule(text);
      if (!r) return std::nullopt;
      rules.push_back(*r);
    }
    if (semi == std::string_view::npos) break;
    spec = spec.substr(semi + 1);
  }
  return rules;
}

ResponseEngine& ResponseEngine::instance() {
  static ResponseEngine e;
  return e;
}

ResponseEngine::ResponseEngine() {
  const char* spec = platform::env_raw("RESILOCK_POLICY");
  if (spec == nullptr) return;
  if (!configure(spec)) {
    std::fprintf(stderr,
                 "resilock[response]: malformed RESILOCK_POLICY \"%s\" "
                 "ignored (legacy policies stay in effect)\n",
                 spec);
  }
}

Action ResponseEngine::decide(ResponseEvent ev, const EventContext& ctx,
                              Action fallback) noexcept {
  Action a = fallback;
  if (has_rules_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> g(mutex_);
    for (const Rule& r : rules_) {
      if (r.matches(ev, ctx)) {
        a = r.action;
        rule_hits_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
  }
  decisions_.fetch_add(1, std::memory_order_relaxed);
  by_action_[static_cast<std::size_t>(a)].fetch_add(
      1, std::memory_order_relaxed);
  by_event_[static_cast<std::size_t>(ev)].fetch_add(
      1, std::memory_order_relaxed);
  return a;
}

bool ResponseEngine::configure(std::string_view spec) {
  auto rules = parse_rules(spec);
  if (!rules) return false;
  install(std::move(*rules));
  return true;
}

void ResponseEngine::install(std::vector<Rule> rules) {
  std::lock_guard<std::mutex> g(mutex_);
  rules_ = std::move(rules);
  has_rules_.store(!rules_.empty(), std::memory_order_release);
}

void ResponseEngine::clear_rules() { install({}); }

std::vector<Rule> ResponseEngine::rules() const {
  std::lock_guard<std::mutex> g(mutex_);
  return rules_;
}

ResponseStats ResponseEngine::stats() const {
  ResponseStats s;
  s.decisions = decisions_.load(std::memory_order_relaxed);
  s.rule_hits = rule_hits_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kActions; ++i) {
    s.by_action[i] = by_action_[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kResponseEvents; ++i) {
    s.by_event[i] = by_event_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void ResponseEngine::reset_stats() {
  decisions_.store(0, std::memory_order_relaxed);
  rule_hits_.store(0, std::memory_order_relaxed);
  for (auto& a : by_action_) a.store(0, std::memory_order_relaxed);
  for (auto& e : by_event_) e.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// Abort dispatch.
// ---------------------------------------------------------------------

namespace {
std::atomic<AbortHandler> g_abort_handler{nullptr};
}  // namespace

AbortHandler set_abort_handler(AbortHandler h) noexcept {
  return g_abort_handler.exchange(h, std::memory_order_acq_rel);
}

void dispatch_abort(ResponseEvent ev, const void* lock) {
  AbortHandler h = g_abort_handler.load(std::memory_order_acquire);
  if (h != nullptr) {
    h(ev, lock);
    return;  // the handler chose to survive; caller degrades to suppress
  }
  std::abort();
}

ResponseRulesGuard::ResponseRulesGuard(std::string_view spec)
    : previous_(ResponseEngine::instance().rules()),
      previous_had_(ResponseEngine::instance().has_rules()) {
  if (!ResponseEngine::instance().configure(spec)) {
    ResponseEngine::instance().clear_rules();
  }
}

ResponseRulesGuard::ResponseRulesGuard(std::vector<Rule> rules)
    : previous_(ResponseEngine::instance().rules()),
      previous_had_(ResponseEngine::instance().has_rules()) {
  ResponseEngine::instance().install(std::move(rules));
}

ResponseRulesGuard::~ResponseRulesGuard() {
  if (previous_had_) {
    ResponseEngine::instance().install(std::move(previous_));
  } else {
    ResponseEngine::instance().clear_rules();
  }
}

}  // namespace resilock::response
