// Out-of-line half of the response engine: the RESILOCK_POLICY rule
// parser, the singleton (env-seeded), verdict bookkeeping, and abort
// dispatch.
#include "response/response.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "lockdep/lockdep.hpp"
#include "platform/env.hpp"
#include "runtime/timer.hpp"

namespace resilock::response {

namespace {

// The escalation ladder, ordered most-specific first:
//   * a reentrant relock is NEVER forwarded — on a non-reentrant base
//     protocol passthrough is a guaranteed self-deadlock, not a
//     "harmless radius" misuse; absorbing it (suppress) is the §3.9
//     remedy;
//   * a non-owner unlock means another thread HOLDS the lock, so
//     forwarding it is the paper's headline corruption even with no
//     waiters queued: log + suppress;
//   * the remaining release misuses (unbalanced/double unlock of a
//     free lock) forward faithfully when nobody is queued, escalate to
//     log once waiters exist;
//   * every reader-writer misuse is logged + suppressed regardless of
//     contention: an unbalanced read unlock skews the ReadIndicator
//     FOREVER (§4's writer-starvation corruption), so there is no
//     "harmless radius" tier for the rw family;
//   * lockdep reports abort when the flagged order closes against a
//     contended lock (waiters queued or held by another thread — the
//     imminent-wedge shape), otherwise log.
constexpr std::string_view kAdaptiveSpec =
    "reentrant-relock=suppress;non-owner-unlock|rw=log;"
    "misuse@uncontended=passthrough;misuse@contended=log;"
    "lockdep@contended=abort;lockdep=log;misuse=suppress";

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// One event token -> bitmask over ResponseEvent values; 0 on error.
std::uint16_t event_mask(std::string_view tok) {
  if (tok == "*" || tok == "any") return 0x1FF;
  // "misuse" is every intercepted caller mistake — the four exclusive
  // ownership kinds plus the three rw kinds; "rw" names just the
  // reader-writer tail; "lockdep" the order-graph reports.
  if (tok == "misuse") return 0x1CF;
  if (tok == "rw") return 0x1C0;
  if (tok == "lockdep") return 0x30;  // inversion + cycle
  for (std::size_t i = 0; i < kResponseEvents; ++i) {
    const auto ev = static_cast<ResponseEvent>(i);
    if (tok == to_string(ev)) return static_cast<std::uint16_t>(1u << i);
  }
  // Long-form lockdep aliases (the EventKind names) and short rw
  // aliases.
  if (tok == "order-inversion") return 0x10;
  if (tok == "deadlock-cycle") return 0x20;
  if (tok == "read-unlock") return 0x40;
  if (tok == "mode-mismatch") return 0x80;
  return 0;
}

// Fills one @cond clause from the text after an '@'; false on error.
bool parse_cond(std::string_view tok, CondClause& c) {
  if (tok == "uncontended") {
    c.cond = Condition::kUncontended;
    return true;
  }
  if (tok == "contended" || tok == "waiters") {
    c.cond = Condition::kContended;
    return true;
  }
  if (tok == "incycle" || tok == "in-cycle") {
    c.cond = Condition::kInCycle;
    return true;
  }
  // Per-class scope: class=<name> (a LockClassKey label, e.g.
  // "hmcs.level1"). Resolution to a ClassId happens at rule-install
  // time (ResponseEngine::install); an unresolved scope matches by
  // label instead, so rules may precede the class's first acquire.
  constexpr std::string_view kClassPrefix = "class=";
  if (tok.size() > kClassPrefix.size() &&
      tok.substr(0, kClassPrefix.size()) == kClassPrefix) {
    const std::string_view name = trim(tok.substr(kClassPrefix.size()));
    if (name.empty()) return false;
    c.cond = Condition::kClassScope;
    c.cls_name = std::string(name);
    return true;
  }
  // Threshold forms: waiters>=N / parked>=N (N a positive decimal
  // integer; ">=0" is just kAlways and is rejected).
  const auto threshold_form = [&](std::string_view prefix,
                                  Condition cond) -> int {
    if (tok.size() <= prefix.size() ||
        tok.substr(0, prefix.size()) != prefix) {
      return -1;  // not this form
    }
    std::string_view num = trim(tok.substr(prefix.size()));
    if (num.empty()) return 0;
    std::uint64_t n = 0;
    for (const char ch : num) {
      if (ch < '0' || ch > '9') return 0;
      n = n * 10 + static_cast<std::uint64_t>(ch - '0');
      if (n > 0xFFFFFFFFull) return 0;
    }
    if (n == 0) return 0;
    c.cond = cond;
    c.threshold = static_cast<std::uint32_t>(n);
    return 1;
  };
  int r = threshold_form("waiters>=", Condition::kWaitersAtLeast);
  if (r < 0) r = threshold_form("parked>=", Condition::kParkedAtLeast);
  return r == 1;
}

std::optional<Rule> parse_rule(std::string_view text) {
  const std::size_t eq = text.find('=');
  if (eq == std::string_view::npos) return std::nullopt;
  // The condition may itself contain '=' ("waiters>=3"): the
  // action's '=' is the LAST one.
  const std::size_t last_eq = text.rfind('=');
  const auto action = action_from_name(trim(text.substr(last_eq + 1)));
  if (!action) return std::nullopt;

  std::string_view lhs = trim(text.substr(0, last_eq));
  Rule r;
  r.action = *action;
  // Compound conditions: every '@' introduces a clause, all ANDed
  // ("misuse@class=app.db@waiters>=2=abort"). The first clause lands
  // in the Rule's flat fields (the original single-condition layout),
  // the rest in `extra`.
  std::size_t at = lhs.find('@');
  if (at != std::string_view::npos) {
    std::string_view conds = lhs.substr(at + 1);
    lhs = trim(lhs.substr(0, at));
    bool first = true;
    while (true) {
      const std::size_t next = conds.find('@');
      const std::string_view tok = trim(conds.substr(0, next));
      CondClause c;
      if (!parse_cond(tok, c)) return std::nullopt;  // "@@" rejects too
      if (first) {
        r.cond = c.cond;
        r.threshold = c.threshold;
        r.cls_name = std::move(c.cls_name);
        r.cls = c.cls;
        first = false;
      } else {
        r.extra.push_back(std::move(c));
      }
      if (next == std::string_view::npos) break;
      conds = conds.substr(next + 1);
    }
  }
  // Event list: tok['|'tok...].
  r.events = 0;
  while (!lhs.empty()) {
    const std::size_t bar = lhs.find('|');
    const std::string_view tok = trim(lhs.substr(0, bar));
    const std::uint16_t mask = event_mask(tok);
    if (mask == 0) return std::nullopt;
    r.events |= mask;
    if (bar == std::string_view::npos) break;
    lhs = lhs.substr(bar + 1);
  }
  if (r.events == 0) return std::nullopt;
  return r;
}

}  // namespace

std::optional<Action> action_from_name(std::string_view name) noexcept {
  if (name == "passthrough") return Action::kPassthrough;
  if (name == "suppress") return Action::kSuppress;
  if (name == "log") return Action::kLog;
  if (name == "abort") return Action::kAbort;
  return std::nullopt;
}

std::string_view adaptive_policy_spec() noexcept { return kAdaptiveSpec; }

std::optional<std::vector<Rule>> parse_rules(std::string_view spec) {
  spec = trim(spec);
  if (spec == "adaptive") spec = kAdaptiveSpec;
  std::vector<Rule> rules;
  if (spec.empty() || spec == "legacy") return rules;  // no-rules state
  while (true) {
    const std::size_t semi = spec.find(';');
    const std::string_view text = trim(spec.substr(0, semi));
    if (!text.empty()) {
      const auto r = parse_rule(text);
      if (!r) return std::nullopt;
      rules.push_back(*r);
    }
    if (semi == std::string_view::npos) break;
    spec = spec.substr(semi + 1);
  }
  return rules;
}

ResponseEngine& ResponseEngine::instance() {
  static ResponseEngine e;
  return e;
}

ResponseEngine::ResponseEngine() {
  log_rate_.store(platform::env_u32("RESILOCK_LOG_RATE", 0),
                  std::memory_order_relaxed);
  const char* spec = platform::env_raw("RESILOCK_POLICY");
  if (spec == nullptr) return;
  if (!configure(spec)) {
    std::fprintf(stderr,
                 "resilock[response]: malformed RESILOCK_POLICY \"%s\" "
                 "ignored (legacy policies stay in effect)\n",
                 spec);
  }
}

Action ResponseEngine::decide(ResponseEvent ev, const EventContext& ctx,
                              Action fallback) noexcept {
  Action a = fallback;
  if (has_rules_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> g(mutex_);
    for (const Rule& r : rules_) {
      if (r.matches(ev, ctx)) {
        a = r.action;
        rule_hits_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
  }
  // Rate-limit the diagnostic, never the protection: an over-budget
  // log verdict still suppresses the misuse, it just stays quiet.
  if (a == Action::kLog && !take_log_token(ev)) a = Action::kSuppress;
  decisions_.fetch_add(1, std::memory_order_relaxed);
  by_action_[static_cast<std::size_t>(a)].fetch_add(
      1, std::memory_order_relaxed);
  by_event_[static_cast<std::size_t>(ev)].fetch_add(
      1, std::memory_order_relaxed);
  return a;
}

bool ResponseEngine::configure(std::string_view spec) {
  auto rules = parse_rules(spec);
  if (!rules) return false;
  install(std::move(*rules));
  return true;
}

void ResponseEngine::install(std::vector<Rule> rules) {
  // Resolve @class= scopes against the live lockdep class table once,
  // at install time; a scope whose class is not yet registered keeps
  // matching by label (Rule::matches) until reinstalled.
  static_assert(kNoClass == lockdep::kInvalidClass);
  for (Rule& r : rules) {
    if (r.cond == Condition::kClassScope && r.cls == kNoClass) {
      r.cls = lockdep::Graph::instance().find_class(r.cls_name);
    }
    for (CondClause& c : r.extra) {
      if (c.cond == Condition::kClassScope && c.cls == kNoClass) {
        c.cls = lockdep::Graph::instance().find_class(c.cls_name);
      }
    }
  }
  std::lock_guard<std::mutex> g(mutex_);
  rules_ = std::move(rules);
  has_rules_.store(!rules_.empty(), std::memory_order_release);
}

void ResponseEngine::clear_rules() { install({}); }

std::vector<Rule> ResponseEngine::rules() const {
  std::lock_guard<std::mutex> g(mutex_);
  return rules_;
}

bool ResponseEngine::take_log_token(ResponseEvent ev) noexcept {
  const std::uint32_t rate = log_rate_.load(std::memory_order_acquire);
  if (rate == 0) return true;  // limiting disabled
  std::lock_guard<std::mutex> g(bucket_mutex_);
  LogBucket& b = buckets_[static_cast<std::size_t>(ev)];
  const std::uint64_t now = runtime::now_ns();
  if (b.last_refill_ns == 0) {
    b.tokens = static_cast<double>(rate);  // fresh bucket: full burst
  } else if (now > b.last_refill_ns) {
    const double refill = static_cast<double>(now - b.last_refill_ns) *
                          1e-9 * static_cast<double>(rate);
    b.tokens = std::min(b.tokens + refill, static_cast<double>(rate));
  }
  b.last_refill_ns = now;
  if (b.tokens >= 1.0) {
    b.tokens -= 1.0;
    return true;
  }
  log_rate_limited_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void ResponseEngine::set_log_rate_limit(std::uint32_t per_sec) noexcept {
  std::lock_guard<std::mutex> g(bucket_mutex_);
  log_rate_.store(per_sec, std::memory_order_release);
  // Restart every bucket at full burst under the new rate so a guard
  // entering/leaving a scope gives deterministic budgets.
  for (auto& b : buckets_) b = LogBucket{};
}

ResponseStats ResponseEngine::stats() const {
  ResponseStats s;
  s.decisions = decisions_.load(std::memory_order_relaxed);
  s.rule_hits = rule_hits_.load(std::memory_order_relaxed);
  s.log_rate_limited = log_rate_limited_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kActions; ++i) {
    s.by_action[i] = by_action_[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kResponseEvents; ++i) {
    s.by_event[i] = by_event_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void ResponseEngine::reset_stats() {
  decisions_.store(0, std::memory_order_relaxed);
  rule_hits_.store(0, std::memory_order_relaxed);
  log_rate_limited_.store(0, std::memory_order_relaxed);
  for (auto& a : by_action_) a.store(0, std::memory_order_relaxed);
  for (auto& e : by_event_) e.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// Abort dispatch.
// ---------------------------------------------------------------------

namespace {
std::atomic<AbortHandler> g_abort_handler{nullptr};
std::atomic<AbortFlushHook> g_abort_flush_hook{nullptr};
}  // namespace

AbortHandler set_abort_handler(AbortHandler h) noexcept {
  return g_abort_handler.exchange(h, std::memory_order_acq_rel);
}

AbortFlushHook set_abort_flush_hook(AbortFlushHook h) noexcept {
  return g_abort_flush_hook.exchange(h, std::memory_order_acq_rel);
}

void dispatch_abort(ResponseEvent ev, const void* lock) {
  AbortHandler h = g_abort_handler.load(std::memory_order_acquire);
  if (h != nullptr) {
    h(ev, lock);
    return;  // the handler chose to survive; caller degrades to suppress
  }
  // Genuinely dying: give telemetry one chance to get the queued trace
  // (including the event that earned this verdict — every caller emits
  // before dispatching) out of the process.
  if (AbortFlushHook flush =
          g_abort_flush_hook.load(std::memory_order_acquire)) {
    flush();
  }
  std::abort();
}

ResponseRulesGuard::ResponseRulesGuard(std::string_view spec)
    : previous_(ResponseEngine::instance().rules()),
      previous_had_(ResponseEngine::instance().has_rules()) {
  if (!ResponseEngine::instance().configure(spec)) {
    ResponseEngine::instance().clear_rules();
  }
}

ResponseRulesGuard::ResponseRulesGuard(std::vector<Rule> rules)
    : previous_(ResponseEngine::instance().rules()),
      previous_had_(ResponseEngine::instance().has_rules()) {
  ResponseEngine::instance().install(std::move(rules));
}

ResponseRulesGuard::~ResponseRulesGuard() {
  if (previous_had_) {
    ResponseEngine::instance().install(std::move(previous_));
  } else {
    ResponseEngine::instance().clear_rules();
  }
}

}  // namespace resilock::response
