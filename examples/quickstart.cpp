// Quickstart: the resilock public API in five minutes.
//
//   1. Pick a lock. Every algorithm comes in two flavors: the textbook
//      `McsLock` and the misuse-resilient `McsLockResilient`.
//   2. Context locks (MCS/CLH/ABQL/HMCS) carry a per-thread context from
//      acquire() to release(), passed by reference (never a pointer).
//   3. release() returns false iff it detected an unbalanced unlock —
//      the paper's core contribution.
//
// Build & run:  ./quickstart
#include <cstdio>
#include <thread>
#include <vector>

#include "core/lock_concepts.hpp"
#include "core/mcs.hpp"
#include "core/tas.hpp"

using namespace resilock;

int main() {
  std::printf("== resilock quickstart ==\n\n");

  // --- A plain lock: resilient TATAS ---------------------------------
  TatasLockResilient spin;
  long counter = 0;
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 100000; ++i) {
          LockGuard guard(spin);  // RAII acquire/release
          ++counter;
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  std::printf("4 threads x 100000 increments under TATAS: %ld (expect "
              "400000)\n",
              counter);

  // --- A context lock: resilient MCS ---------------------------------
  McsLockResilient mcs;
  McsLockResilient::QNode my_node;  // the per-thread context
  mcs.acquire(my_node);
  std::printf("MCS acquired; release -> %s\n",
              mcs.release(my_node) ? "true (balanced)" : "false");

  // --- The paper's headline: misuse detection ------------------------
  // Calling release() again without a matching acquire() is the
  // "unbalanced unlock" of the paper. The resilient flavor refuses it.
  const bool ok = mcs.release(my_node);
  std::printf("unbalanced release detected: %s\n",
              ok ? "NO (bug!)" : "YES (release returned false)");

  // With the ORIGINAL MCS this exact call would spin forever waiting
  // for a successor that never arrives (paper, Section 3.4 case 1).

  // The lock remains fully usable after the refused misuse:
  mcs.acquire(my_node);
  mcs.release(my_node);
  std::printf("lock still functional after the misuse: YES\n");
  return 0;
}
