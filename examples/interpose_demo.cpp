// interpose_demo: one program, every lock — the LiTL workflow in-process.
//
// Runs the same contended counter workload over each registered lock
// algorithm in both flavors and prints a throughput table, demonstrating
// runtime algorithm selection through the type-erased registry (what the
// paper does to PARSEC applications via LD_PRELOAD, §6). Ends with a
// misuse drill against a shielded lock and prints the shield's misuse
// counters — detection telemetry, not just survival.
//
// Build & run:  ./interpose_demo
#include <atomic>
#include <cstdio>
#include <thread>

#include "core/lock_registry.hpp"
#include "runtime/thread_team.hpp"
#include "runtime/timer.hpp"
#include "shield/policy.hpp"

using namespace resilock;

namespace {

double mops_for(const std::string& name, Resilience flavor,
                std::uint32_t threads, std::uint64_t iters) {
  auto lock = make_lock(name, flavor);
  std::uint64_t counter = 0;
  const double secs = runtime::timed_seconds([&] {
    runtime::ThreadTeam::run(threads, [&](std::uint32_t) {
      for (std::uint64_t i = 0; i < iters; ++i) {
        lock->acquire();
        ++counter;
        lock->release();
      }
    });
  });
  if (counter != iters * threads) {
    std::printf("!! %s lost updates\n", name.c_str());
  }
  return static_cast<double>(counter) / secs / 1e6;
}

}  // namespace

int main() {
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint64_t kIters = 50'000;
  std::printf("== interpose_demo: same workload, every algorithm "
              "(%u threads x %llu ops) ==\n\n",
              kThreads, static_cast<unsigned long long>(kIters));
  std::printf("%-20s %14s %14s %10s\n", "lock", "original Mops",
              "resilient Mops", "overhead");
  for (const auto& name : lock_names()) {
    const double orig = mops_for(name, kOriginal, kThreads, kIters);
    const double resi = mops_for(name, kResilient, kThreads, kIters);
    std::printf("%-20s %14.2f %14.2f %9.1f%%\n", name.c_str(), orig, resi,
                (orig / resi - 1.0) * 100.0);
  }
  std::printf("\nPositive overhead = the price of misuse detection; "
              "near-zero for the scalable queue locks,\nmatching the "
              "paper's Table 2.\n");

  // Misuse drill: hit one shielded lock with all four canonical
  // misuses, then read its counters back through the type-erased API —
  // what an interposed program's exit hook would log.
  std::printf("\n== misuse drill: shield<MCS> over the ORIGINAL "
              "protocol ==\n");
  shield::ShieldPolicyGuard pin(shield::ShieldPolicy::kSuppress);
  auto drilled = make_lock("shield<MCS>", kOriginal);
  drilled->release();  // unbalanced unlock of a free lock
  drilled->acquire();
  drilled->release();
  drilled->release();  // double unlock by the previous owner
  drilled->acquire();
  drilled->acquire();  // reentrant relock (absorbed as a depth bump)
  drilled->release();
  drilled->release();
  std::atomic<bool> held{false}, done{false};
  std::thread holder([&] {
    drilled->acquire();
    held.store(true);
    while (!done.load()) std::this_thread::yield();
    drilled->release();
  });
  while (!held.load()) std::this_thread::yield();
  drilled->release();  // unlock while another thread holds the lock
  done.store(true);
  holder.join();
  drilled->acquire();  // still functional after all of the above
  drilled->release();
  std::printf(
      "shield intercepted %llu misuses (unbalanced, double, reentrant "
      "relock,\nnon-owner) and the lock stayed functional throughout — "
      "detection counters\nare what turns a suppressed bug into a fixed "
      "one.\n",
      static_cast<unsigned long long>(drilled->misuse_total()));
  return 0;
}
