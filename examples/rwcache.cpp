// rwcache: a read-mostly cache guarded by the NUMA-aware C-RW-NP lock
// (paper §4), demonstrating
//   * concurrent readers with an exclusive writer,
//   * the undetectable R-side misuse on a compact ReadIndicator, and
//   * the CheckedReadIndicator extension that catches it.
//
// Build & run:  ./rwcache
#include <array>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/rw/crw.hpp"
#include "runtime/rng.hpp"

using namespace resilock;

namespace {

template <typename RwLock>
struct Cache {
  RwLock rw;
  std::array<std::uint64_t, 64> table{};
  std::uint64_t version = 0;

  std::uint64_t lookup(typename RwLock::Context& ctx, std::size_t key) {
    rw.rlock(ctx);
    const std::uint64_t v = table[key % table.size()];
    rw.runlock(ctx);
    return v;
  }

  void update(typename RwLock::Context& ctx, std::size_t key,
              std::uint64_t value) {
    rw.wlock(ctx);
    table[key % table.size()] = value;
    ++version;
    rw.wunlock(ctx);
  }
};

}  // namespace

int main() {
  std::printf("== rwcache: C-RW-NP in action ==\n\n");

  // --- Normal operation: 3 readers + 1 writer -------------------------
  Cache<CrwNpLockResilient> cache;
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> lookups{0};
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      CrwNpLockResilient::Context ctx;
      runtime::Xoshiro256ss rng(99);
      for (int i = 0; i < 50'000; ++i) {
        lookups.fetch_add(1 + (cache.lookup(ctx, rng.bounded(64)) & 0));
      }
    });
  }
  threads.emplace_back([&] {
    CrwNpLockResilient::Context ctx;
    for (int i = 0; i < 5'000; ++i) cache.update(ctx, i, i * 17);
  });
  for (auto& t : threads) t.join();
  std::printf("mixed run done: %llu lookups, %llu versions written\n",
              static_cast<unsigned long long>(lookups.load()),
              static_cast<unsigned long long>(cache.version));

  // --- The §4 misuse, on a compact indicator ---------------------------
  // An unbalanced RUnlock on the split-counter indicator goes UNDETECTED
  // and skews the counter: after it, a writer would wait forever.
  Cache<CrwNpLockResilient> skewed;
  CrwNpLockResilient::Context rogue;
  const bool undetected = skewed.rw.runlock(rogue);
  std::printf("\ncompact indicator: unbalanced RUnlock detected? %s "
              "(paper: undetectable)\n",
              undetected ? "no" : "yes");
  skewed.rw.indicator().arrive(platform::self_pid());  // repair the skew

  // --- The shipped extension: CheckedReadIndicator ---------------------
  Cache<CrwNpLockChecked> checked;
  CrwNpLockChecked::Context rogue2;
  const bool refused = !checked.rw.runlock(rogue2);
  std::printf("checked indicator: unbalanced RUnlock detected? %s "
              "(extension of the paper's future work)\n",
              refused ? "yes" : "no");

  CrwNpLockChecked::Context ctx;
  checked.rw.rlock(ctx);
  checked.rw.runlock(ctx);
  std::printf("checked cache still functional after refused misuse: YES\n");
  return 0;
}
