// bank_ledger: a Listing-1-shaped bug in a realistic program.
//
// The paper's motivating example (Linux wilc1000 driver) jumps to an
// error label that unlocks a mutex that was never locked. This example
// reproduces the same control-flow bug in a bank ledger: a transfer
// routine bails out early on a validation error and lands on a cleanup
// path that releases the account lock unconditionally.
//
// With the ORIGINAL TATAS lock the stray unlock silently frees the lock
// under the current holder: a second thread enters the critical section
// and updates are lost (§3.1 — each misuse admits one extra thread).
// With the RESILIENT flavors the stray unlock is refused and the books
// balance. (A ticket lock would be even worse in the original flavor:
// the §3.2 nowServing leap would starve the whole program — which is why
// this demo contrasts the TAS family and only runs the ticket lock in
// its resilient form.)
//
// Build & run:  ./bank_ledger
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/tas.hpp"
#include "core/ticket.hpp"
#include "verify/checkers.hpp"

using namespace resilock;

namespace {

constexpr long kInitialBalance = 1'000'000;
constexpr int kThreads = 4;
constexpr int kOpsPerThread = 30'000;

template <typename Lock>
struct Ledger {
  Lock lock;
  long credits = 0;  // plain longs: any lost update is visible
  long debits = 0;
  verify::MutexChecker checker;
  std::atomic<long> stray_unlocks_detected{0};

  // The buggy routine, shaped like the paper's Listing 1: when
  // validation fails we jump to the cleanup label *before* the lock was
  // taken — and the cleanup unlocks anyway.
  void transfer(long amount, bool validation_fails) {
    if (validation_fails) goto out;  // BUG: skips the acquire() below
    lock.acquire();
    checker.enter();
    credits += amount;
    debits += amount;
    checker.exit();
  out:
    if (!lock.release()) {  // Listing 1's unconditional unlock
      stray_unlocks_detected.fetch_add(1);
    }
  }
};

template <typename Lock>
void run_ledger(const char* label) {
  Ledger<Lock> ledger;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ledger, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        // A slice of operations per thread hits the buggy early-exit.
        const bool buggy = (i % 500) == (t * 125) % 500;
        ledger.transfer(100, buggy);
      }
    });
  }
  for (auto& t : threads) t.join();

  const long expected =
      static_cast<long>(kThreads) * kOpsPerThread * 100L -
      static_cast<long>(kThreads) * (kOpsPerThread / 500) * 100L;
  const bool books_balance =
      ledger.credits == ledger.debits && ledger.credits == expected;
  std::printf("%-26s credits=%11ld debits=%11ld %-10s "
              "max-in-CS=%d  strays-detected=%ld\n",
              label, ledger.credits, ledger.debits,
              books_balance ? "BALANCED" : "CORRUPTED",
              ledger.checker.max_simultaneous(),
              ledger.stray_unlocks_detected.load());
}

}  // namespace

int main() {
  std::printf("== bank_ledger: the Listing-1 bug under three locks ==\n\n");
  run_ledger<TatasLock>("original TATAS:");
  run_ledger<TatasLockResilient>("resilient TATAS:");
  run_ledger<TicketLockResilient>("resilient Ticket:");
  std::printf(
      "\nThe original lock lets the stray unlock admit extra threads "
      "(max-in-CS can exceed 1 and\nthe books can diverge). The resilient "
      "flavors refuse every stray unlock (release() returns\nfalse — the "
      "count is reported above) and the ledger stays balanced: the paper's "
      "Figure 2/3\nremedies at work.\n");
  return 0;
}
