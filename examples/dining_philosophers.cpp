// dining_philosophers: lockdep flags the classic deadlock before it can
// happen.
//
// Five philosophers, five forks, each picks up the left fork then the
// right — the textbook circular wait. This demo never risks the actual
// deadlock: it runs a single-threaded "rehearsal" in which each
// philosopher dines alone, in turn. No acquisition ever blocks, yet
// the moment the last philosopher picks up fork 4 then fork 0, the
// lock-order graph closes a 5-cycle and lockdep reports the potential
// deadlock — the whole point of order tracking: the hazard is a
// property of the ORDER, not of the unlucky interleaving.
//
// The concurrent dinner then runs with the standard fix (lowest-index
// fork first) to show the asymmetric order is report-free and safe.
//
//   ./example_dining_philosophers                # flags the cycle
//   RESILOCK_LOCKDEP=off ./example_dining_philosophers   # blind
#include <cstdio>
#include <memory>
#include <vector>

#include "core/lock_registry.hpp"
#include "lockdep/event_ring.hpp"
#include "lockdep/lockdep.hpp"
#include "runtime/thread_team.hpp"
#include "shield/policy.hpp"

using namespace resilock;

namespace {

constexpr int kPhilosophers = 5;

lockdep::LockdepStats stats() {
  return lockdep::Graph::instance().stats();
}

void drain_and_print_events() {
  std::size_t n = 0;
  lockdep::TraceBuffer::instance().drain(
      [&](const lockdep::TraceEvent& e) {
        std::printf(
            "  event[%zu] t=%lluns pid=%u kind=%s classes %u -> %u\n",
            n++, static_cast<unsigned long long>(e.ns), e.pid,
            lockdep::to_string(e.kind), e.a, e.b);
      });
  if (n == 0) std::printf("  (no events recorded)\n");
}

}  // namespace

int main() {
  // Reports should never kill the demo, and the one deliberate misuse
  // below should be absorbed quietly.
  shield::ShieldPolicyGuard policy(shield::ShieldPolicy::kSuppress);

  std::vector<std::unique_ptr<AnyLock>> fork;
  for (int i = 0; i < kPhilosophers; ++i) {
    fork.push_back(make_lock("shield<TAS>", kOriginal));
  }

  std::printf("== dining_philosophers: %d forks, left-then-right ==\n\n",
              kPhilosophers);
  std::printf(
      "Rehearsal: each philosopher dines ALONE, one after another —\n"
      "no contention, no blocking, no deadlock possible right now.\n\n");

  const auto before = stats();
  for (int p = 0; p < kPhilosophers; ++p) {
    const int left = p;
    const int right = (p + 1) % kPhilosophers;
    fork[left]->acquire();
    fork[right]->acquire();
    // eat
    fork[right]->release();
    fork[left]->release();
  }
  const auto after = stats();

  if (after.reports() > before.reports()) {
    std::printf(
        "\nlockdep flagged the circular fork order during the\n"
        "single-threaded rehearsal (see the report above): the cycle\n"
        "fork0 -> fork1 -> ... -> fork4 -> fork0 is a deadlock waiting\n"
        "for the right interleaving, and it was caught the FIRST time\n"
        "the order was seen — not when five threads finally wedge.\n\n");
  } else if (!lockdep::lockdep_enabled()) {
    std::printf(
        "\nRESILOCK_LOCKDEP=off: nobody watched the fork order. The\n"
        "concurrent dinner below survives only because it uses the\n"
        "ordered-fork fix; the left-then-right version could wedge at\n"
        "any moment.\n\n");
  } else {
    std::printf("\n!! expected a lockdep report and saw none\n\n");
  }

  // The rehearsal's circular order is now a recorded constraint on
  // those five lock classes — taking fork0 before fork4 would be a
  // (correctly!) flagged inversion against it. Lay a fresh table:
  // destroying a shielded lock retires its class and clears its edges.
  for (auto& f : fork) f = make_lock("shield<TAS>", kOriginal);

  std::printf(
      "Dinner on a fresh set of forks, with the classic fix "
      "(lowest-numbered fork first):\n");
  std::uint64_t meals = 0;
  runtime::ThreadTeam::run(kPhilosophers, [&](std::uint32_t p) {
    const int a = static_cast<int>(p);
    const int b = (a + 1) % kPhilosophers;
    const int first = a < b ? a : b;
    const int second = a < b ? b : a;
    for (int round = 0; round < 200; ++round) {
      fork[first]->acquire();
      fork[second]->acquire();
      __atomic_fetch_add(&meals, 1, __ATOMIC_RELAXED);
      fork[second]->release();
      fork[first]->release();
    }
  });
  const auto dinner = stats();
  std::printf(
      "  %llu meals eaten; new lockdep reports during the ordered "
      "dinner: %llu (the\n  asymmetric order is cycle-free, so lockdep "
      "stays silent)\n\n",
      static_cast<unsigned long long>(meals),
      static_cast<unsigned long long>(dinner.reports() -
                                      after.reports()));

  // One deliberate misuse so the trace shows both layers feeding the
  // same ring: a shield interception next to the lockdep reports.
  fork[0]->release();  // unbalanced unlock, suppressed by the shield

  std::printf("Misuse event ring (timestamped, exportable):\n");
  drain_and_print_events();

  std::printf(
      "\nShield misuse tallies per fork (detection, not just "
      "survival):\n");
  for (int i = 0; i < kPhilosophers; ++i) {
    std::printf("  fork%d: %llu misuse(s) intercepted\n", i,
                static_cast<unsigned long long>(fork[i]->misuse_total()));
  }
  return 0;
}
