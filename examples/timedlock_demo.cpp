// timedlock_demo: bounded-wait locking through the C shim.
//
// pthread_mutex_timedlock is the one pthread entry point a spinning
// queue lock cannot honor natively — an MCS/CLH waiter that joined the
// queue cannot abandon its slot. The shim's rl_mutex_timedlock waits
// OUTSIDE the queue protocol (a TimedGate epoch word kicked by every
// unlock), so a deadline can expire without corrupting the queue.
//
// The demo walks the three outcomes a caller sees:
//
//   1. the lock is held past the deadline   -> ETIMEDOUT, on time
//   2. the holder leaves before the deadline -> 0, woken by the unlock
//   3. the lock is free                      -> 0, immediately
//
// Exit status is 0 only when all three behave; CI runs this binary as
// the timedlock smoke test.
//
// Build & run:  ./timedlock_demo
#include <cerrno>
#include <cstdio>
#include <ctime>
#include <thread>

#include "interpose/pthread_shim.hpp"
#include "runtime/timer.hpp"

using namespace resilock;

namespace {

timespec realtime_in_ms(long ms) {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  ts.tv_nsec += ms * 1000000L;
  while (ts.tv_nsec >= 1000000000L) {
    ts.tv_sec += 1;
    ts.tv_nsec -= 1000000000L;
  }
  return ts;
}

int failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  if (!ok) ++failures;
}

}  // namespace

int main() {
  std::printf("== timedlock_demo: bounded waits on a queue lock ==\n");
  interpose::rl_mutex_t m{};
  if (interpose::rl_mutex_init(&m, "MCS", /*resilient=*/1) != 0) {
    std::printf("init failed\n");
    return 1;
  }

  // 1. Holder keeps the lock well past our 50 ms deadline.
  {
    std::thread holder([&] {
      interpose::rl_mutex_lock(&m);
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      interpose::rl_mutex_unlock(&m);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const timespec abs = realtime_in_ms(50);
    const std::uint64_t t0 = runtime::now_ns();
    const int rc = interpose::rl_mutex_timedlock(&m, &abs);
    const double waited_ms =
        static_cast<double>(runtime::now_ns() - t0) * 1e-6;
    std::printf("held lock, 50 ms deadline: rc=%d after %.0f ms\n", rc,
                waited_ms);
    check(rc == ETIMEDOUT, "times out instead of waiting forever");
    check(waited_ms < 190.0, "gave up before the holder was done");
    holder.join();
  }

  // 2. Holder releases at ~40 ms, deadline at 2 s: the unlock kicks
  // the gate and the timed waiter gets the lock early.
  {
    std::thread holder([&] {
      interpose::rl_mutex_lock(&m);
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
      interpose::rl_mutex_unlock(&m);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const timespec abs = realtime_in_ms(2000);
    const std::uint64_t t0 = runtime::now_ns();
    const int rc = interpose::rl_mutex_timedlock(&m, &abs);
    const double waited_ms =
        static_cast<double>(runtime::now_ns() - t0) * 1e-6;
    std::printf("released at ~40 ms, 2 s deadline: rc=%d after %.0f ms\n",
                rc, waited_ms);
    check(rc == 0, "acquired once the holder left");
    check(waited_ms < 1500.0, "woken by the unlock, not the deadline");
    if (rc == 0) interpose::rl_mutex_unlock(&m);
    holder.join();
  }

  // 3. Free lock: POSIX says timedlock "shall lock it if available".
  {
    const timespec abs = realtime_in_ms(1);
    const int rc = interpose::rl_mutex_timedlock(&m, &abs);
    std::printf("free lock, 1 ms deadline: rc=%d\n", rc);
    check(rc == 0, "free lock acquired immediately");
    if (rc == 0) interpose::rl_mutex_unlock(&m);
  }

  interpose::rl_mutex_destroy(&m);
  std::printf("%s\n", failures == 0 ? "all outcomes behaved"
                                    : "FAILURES above");
  return failures == 0 ? 0 : 1;
}
