// pipeline: a dedup/ferret-style multi-stage pipeline on the
// interposition layer — the workload class the paper's §6 evaluation
// draws on, written against the public API.
//
// Three stages (produce -> transform -> fold) connected by two bounded
// queues, each guarded by a TransparentMutex + condition variable. The
// lock algorithm for every queue comes from RESILOCK_ALGO (default MCS),
// exactly like running the app under LiTL with a chosen lock.
//
// Build & run:  ./pipeline            (MCS, resilient)
//               RESILOCK_ALGO=Ticket ./pipeline
//               RESILOCK_ALGO=CLH RESILOCK_RESILIENT=0 ./pipeline
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "interpose/transparent_mutex.hpp"
#include "runtime/timer.hpp"

using resilock::interpose::TransparentMutex;

namespace {

constexpr int kItems = 20'000;
constexpr std::size_t kQueueCap = 256;

// A bounded MPMC queue over the interposed mutex.
class BoundedQueue {
 public:
  void push(std::uint64_t v) {
    std::unique_lock<TransparentMutex> lk(mu_);
    not_full_.wait(lk, [&] { return q_.size() < kQueueCap; });
    q_.push_back(v);
    not_empty_.notify_one();
  }

  bool pop(std::uint64_t& out) {  // false == producer closed and drained
    std::unique_lock<TransparentMutex> lk(mu_);
    not_empty_.wait(lk, [&] { return !q_.empty() || closed_; });
    if (q_.empty()) return false;
    out = q_.front();
    q_.pop_front();
    not_full_.notify_one();
    return true;
  }

  void close() {
    std::unique_lock<TransparentMutex> lk(mu_);
    closed_ = true;
    not_empty_.notify_all();
  }

 private:
  TransparentMutex mu_;  // algorithm chosen via RESILOCK_ALGO
  std::condition_variable_any not_empty_, not_full_;
  std::deque<std::uint64_t> q_;
  bool closed_ = false;
};

}  // namespace

int main() {
  BoundedQueue stage1, stage2;
  std::uint64_t folded = 0;

  const double secs = resilock::runtime::timed_seconds([&] {
    std::thread producer([&] {
      for (int i = 1; i <= kItems; ++i)
        stage1.push(static_cast<std::uint64_t>(i));
      stage1.close();
    });
    std::vector<std::thread> transformers;
    std::atomic<int> live{2};
    for (int t = 0; t < 2; ++t) {
      transformers.emplace_back([&] {
        std::uint64_t v;
        while (stage1.pop(v)) {
          stage2.push(v * 2 + 1);  // the "transform"
        }
        if (live.fetch_sub(1) == 1) stage2.close();
      });
    }
    std::thread folder([&] {
      std::uint64_t v;
      while (stage2.pop(v)) folded += v;
    });
    producer.join();
    for (auto& t : transformers) t.join();
    folder.join();
  });

  // sum over i=1..N of (2i+1) = N(N+1) + N
  const std::uint64_t expect =
      static_cast<std::uint64_t>(kItems) * (kItems + 1) +
      static_cast<std::uint64_t>(kItems);
  std::printf("pipeline: algo=%s (%s)  items=%d  folded=%llu (expect "
              "%llu) %s  %.3fs\n",
              resilock::interpose::default_algorithm().c_str(),
              to_string(resilock::interpose::default_resilience()), kItems,
              static_cast<unsigned long long>(folded),
              static_cast<unsigned long long>(expect),
              folded == expect ? "OK" : "MISMATCH", secs);
  return folded == expect ? 0 : 1;
}
