// misuse_explorer: interactive CLI over the Table-1 engine.
//
// Run a single paper scenario by name and see the observed-vs-paper
// verdict — useful when studying one lock's misuse behavior without
// running the whole matrix.
//
//   ./misuse_explorer            # list scenarios
//   ./misuse_explorer mcs        # run the MCS §3.4 scripts
//   ./misuse_explorer all        # the full Table 1 (same as the bench)
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "verify/misuse_matrix.hpp"

using namespace resilock::verify;

int main(int argc, char** argv) {
  const std::map<std::string, MisuseReport (*)()> scenarios = {
      {"tas", misuse_tas},
      {"ticket", misuse_ticket},
      {"abql", misuse_abql},
      {"gt", misuse_graunke_thakkar},
      {"mcs", misuse_mcs},
      {"clh", misuse_clh},
      {"mcs_k42", misuse_mcs_k42},
      {"hemlock", misuse_hemlock},
      {"hmcs", misuse_hmcs},
      {"hclh", misuse_hclh},
      {"hbo", misuse_hbo},
      {"cohort", misuse_cohort_tkt_tkt},
      {"crw", misuse_crw_np},
      {"peterson", misuse_peterson},
      {"fischer", misuse_fischer},
      {"lamport1", misuse_lamport1},
      {"lamport2", misuse_lamport2},
      {"bakery", misuse_bakery},
  };

  if (argc < 2) {
    std::printf("usage: %s <scenario>|all\n\nscenarios:\n", argv[0]);
    for (const auto& [name, _] : scenarios) std::printf("  %s\n",
                                                        name.c_str());
    return 0;
  }

  if (std::strcmp(argv[1], "all") == 0) {
    print_misuse_matrix(run_misuse_matrix());
    return 0;
  }

  const auto it = scenarios.find(argv[1]);
  if (it == scenarios.end()) {
    std::fprintf(stderr, "unknown scenario: %s\n", argv[1]);
    return 1;
  }
  const MisuseReport r = it->second();
  print_misuse_matrix({r});
  std::printf("\nremedy: %s\n", r.remedy.c_str());
  return 0;
}
