// misuse_explorer: interactive CLI over the Table-1 engine.
//
// Run a single paper scenario by name and see the observed-vs-paper
// verdict — useful when studying one lock's misuse behavior without
// running the whole matrix.
//
//   ./misuse_explorer            # list scenarios
//   ./misuse_explorer mcs        # run the MCS §3.4 scripts
//   ./misuse_explorer all        # the full Table 1 (same as the bench)
//
// Scenarios whose lock is in the registry finish with a shield drill:
// the four canonical misuses against shield<lock>, with the shield's
// interception counter printed after each — detection, not just
// survival.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>

#include "core/lock_registry.hpp"
#include "shield/policy.hpp"
#include "verify/misuse_matrix.hpp"

using namespace resilock::verify;

namespace {

// Scenario key -> registry base algorithm (the sw/ locks have no
// registry entry and skip the drill).
const std::map<std::string, std::string>& registry_names() {
  static const std::map<std::string, std::string> m = {
      {"tas", "TAS"},         {"ticket", "Ticket"},
      {"abql", "ABQL"},       {"gt", "GT"},
      {"mcs", "MCS"},         {"clh", "CLH"},
      {"mcs_k42", "MCS_K42"}, {"hemlock", "Hemlock"},
      {"hmcs", "HMCS"},       {"hclh", "HCLH"},
      {"hbo", "HBO"},         {"cohort", "C-TKT-TKT"},
  };
  return m;
}

void shield_counter_drill(const std::string& base) {
  using namespace resilock;
  shield::ShieldPolicyGuard pin(shield::ShieldPolicy::kSuppress);
  auto lock = make_lock(shielded_name(base), kOriginal);
  std::printf("\nshield drill on %s (ORIGINAL protocol behind the "
              "generic shield):\n",
              shielded_name(base).c_str());
  auto step = [&](const char* what) {
    std::printf("  %-46s -> %llu misuse(s) intercepted so far\n", what,
                static_cast<unsigned long long>(lock->misuse_total()));
  };
  lock->release();
  step("unbalanced unlock of a free lock");
  lock->acquire();
  lock->release();
  lock->release();
  step("double unlock by the previous owner");
  lock->acquire();
  lock->acquire();
  lock->release();
  lock->release();
  step("reentrant relock (absorbed as a depth bump)");
  std::atomic<bool> held{false}, done{false};
  std::thread holder([&] {
    lock->acquire();
    held.store(true);
    while (!done.load()) std::this_thread::yield();
    lock->release();
  });
  while (!held.load()) std::this_thread::yield();
  lock->release();
  done.store(true);
  holder.join();
  step("unlock while another thread holds the lock");
  lock->acquire();
  lock->release();
  std::printf("  lock still functional after every misuse.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::map<std::string, MisuseReport (*)()> scenarios = {
      {"tas", misuse_tas},
      {"ticket", misuse_ticket},
      {"abql", misuse_abql},
      {"gt", misuse_graunke_thakkar},
      {"mcs", misuse_mcs},
      {"clh", misuse_clh},
      {"mcs_k42", misuse_mcs_k42},
      {"hemlock", misuse_hemlock},
      {"hmcs", misuse_hmcs},
      {"hclh", misuse_hclh},
      {"hbo", misuse_hbo},
      {"cohort", misuse_cohort_tkt_tkt},
      {"crw", misuse_crw_np},
      {"peterson", misuse_peterson},
      {"fischer", misuse_fischer},
      {"lamport1", misuse_lamport1},
      {"lamport2", misuse_lamport2},
      {"bakery", misuse_bakery},
  };

  if (argc < 2) {
    std::printf("usage: %s <scenario>|all\n\nscenarios:\n", argv[0]);
    for (const auto& [name, _] : scenarios) std::printf("  %s\n",
                                                        name.c_str());
    return 0;
  }

  if (std::strcmp(argv[1], "all") == 0) {
    print_misuse_matrix(run_misuse_matrix());
    return 0;
  }

  const auto it = scenarios.find(argv[1]);
  if (it == scenarios.end()) {
    std::fprintf(stderr, "unknown scenario: %s\n", argv[1]);
    return 1;
  }
  const MisuseReport r = it->second();
  print_misuse_matrix({r});
  std::printf("\nremedy: %s\n", r.remedy.c_str());

  const auto reg = registry_names().find(it->first);
  if (reg != registry_names().end()) {
    shield_counter_drill(reg->second);
  }
  return 0;
}
