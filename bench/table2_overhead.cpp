// Table 2 reproduction: % overhead of the resilient fix relative to the
// original lock, for 10 applications x 6 locks at the maximum thread
// count (paper §6, best-of-N runs).
//
// Defaults are host-scaled (RESILOCK_MAX_THREADS, RESILOCK_REPS,
// RESILOCK_SCALE); set RESILOCK_MAX_THREADS=48 RESILOCK_REPS=5 on a
// machine like the paper's to reproduce the exact configuration.
// Expected shape (paper): <5% for ABQL/MCS/CLH/HMCS everywhere; large
// TAS/Ticket overheads on the lock-intensive apps (Radiosity, Raytrace,
// Streamcluster, Synthetic); negatives are measurement noise.
#include <cstdio>

#include "core/lock_registry.hpp"
#include "harness/app_profiles.hpp"
#include "harness/evaluation.hpp"

int main() {
  using namespace resilock;
  using namespace resilock::harness;

  const std::uint32_t max_threads = env_max_threads();
  const std::uint32_t reps = env_reps();
  std::printf("=== Table 2: %% overhead of resilient vs original "
              "(threads=%u, reps=%u, scale=%.2f) ===\n\n",
              max_threads, reps, env_scale());
  std::printf("%-16s", "Application");
  for (const auto& lock : table2_lock_names()) std::printf("%10s", lock.c_str());
  std::printf("\n");

  for (const auto& profile : app_profiles()) {
    // The paper runs Fluidanimate/Ocean at 32 threads on its 48-thread
    // box (power-of-two requirement): use the largest power of two
    // <= max_threads for those apps.
    std::uint32_t threads = max_threads;
    if (profile.pow2_threads_only) {
      threads = 1;
      while (threads * 2 <= max_threads) threads *= 2;
    }
    std::printf("%-13s(%2u)", profile.name.c_str(), threads);
    for (const auto& lock : table2_lock_names()) {
      const auto cell = overhead_cell(profile, lock, threads, reps);
      if (cell) {
        std::printf("%9.2f%%", *cell);
      } else {
        std::printf("%10s", "*");  // inapplicable (CLH + trylock)
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "\n'*' = configuration inapplicable (CLH has no trylock, §6).\n"
      "Negative values are measurement noise (paper §6: 'within a margin "
      "of measurement error').\n");
  return 0;
}
