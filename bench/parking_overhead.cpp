// Parking-tier overhead: what does RESILOCK_PARK cost a lock that
// never actually parks, and what does it buy one that should?
//
// Three phases, all feeding BENCH_parking.json:
//
//   uncontended   one thread hammers an uncontended acquire/release
//                 pair (MCS and Ticket resilient), parking off then
//                 on. The "on" path must stay on the spin fast path —
//                 a granted word never reaches the futex — so the
//                 price is the extra park-word bookkeeping on the
//                 handoff path. CI gates the ratio against the repo's
//                 standing 2x budget.
//
//   timedlock     the shim's rl_mutex_timedlock on a FREE mutex (the
//                 common case for a deadline that never fires): one
//                 realtime->monotonic rebase plus a TimedGate trylock
//                 that succeeds first try, priced against the plain
//                 rl_mutex_lock/unlock pair.
//
//   oversub       compact spin-vs-park summary at 4x hardware cores
//                 on one MCS lock — the headline numbers (wall, total
//                 process CPU, throughput ratio) CI gates on: parked
//                 waiters must burn less CPU than spinners without
//                 giving up throughput. bench_lock_throughput has the
//                 full matched+oversubscribed table across lock
//                 algorithms; this phase exists so one JSON file
//                 carries every parking gate.
//
// RESILOCK_SCALE scales iteration counts; `--json out.json` writes
// the table (checked-in full-scale run: BENCH_parking.json).
#include <algorithm>
#include <cstdio>
#include <ctime>
#include <thread>

#include "core/generic.hpp"
#include "core/mcs.hpp"
#include "core/ticket.hpp"
#include "interpose/pthread_shim.hpp"
#include "json_writer.hpp"
#include "park/parking_lot.hpp"
#include "platform/env.hpp"
#include "runtime/barrier.hpp"
#include "runtime/thread_team.hpp"
#include "runtime/timer.hpp"

namespace {

using namespace resilock;

std::uint64_t process_cpu_ns() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

// ns per uncontended acquire/release pair, best of three passes (the
// CI smoke scale is short enough that one scheduler hiccup would
// poison a single-shot ratio).
template <typename Lock>
double time_pair_ns(Lock& lock, std::uint64_t iters) {
  context_of_t<Lock> ctx;
  double best = 0;
  for (int pass = 0; pass < 3; ++pass) {
    const std::uint64_t t0 = runtime::now_ns();
    for (std::uint64_t i = 0; i < iters; ++i) {
      generic_acquire(lock, ctx);
      generic_release(lock, ctx);
    }
    const std::uint64_t t1 = runtime::now_ns();
    const double ns =
        static_cast<double>(t1 - t0) / static_cast<double>(iters);
    if (pass == 0 || ns < best) best = ns;
  }
  return best;
}

template <typename Lock>
double pair_with_parking(bool parking, std::uint64_t iters) {
  park::ParkingGuard guard(parking);
  Lock lock;
  time_pair_ns(lock, iters / 10);  // warm up
  return time_pair_ns(lock, iters);
}

// ns per rl_mutex_timedlock/unlock pair on a free mutex with a
// deadline that never fires (best of three).
double timed_pair_ns(interpose::rl_mutex_t& m, std::uint64_t iters) {
  double best = 0;
  for (int pass = 0; pass < 3; ++pass) {
    timespec abs{};
    clock_gettime(CLOCK_REALTIME, &abs);
    abs.tv_sec += 3600;  // far future: the deadline is never consulted
    const std::uint64_t t0 = runtime::now_ns();
    for (std::uint64_t i = 0; i < iters; ++i) {
      interpose::rl_mutex_timedlock(&m, &abs);
      interpose::rl_mutex_unlock(&m);
    }
    const std::uint64_t t1 = runtime::now_ns();
    const double ns =
        static_cast<double>(t1 - t0) / static_cast<double>(iters);
    if (pass == 0 || ns < best) best = ns;
  }
  return best;
}

double plain_pair_ns(interpose::rl_mutex_t& m, std::uint64_t iters) {
  double best = 0;
  for (int pass = 0; pass < 3; ++pass) {
    const std::uint64_t t0 = runtime::now_ns();
    for (std::uint64_t i = 0; i < iters; ++i) {
      interpose::rl_mutex_lock(&m);
      interpose::rl_mutex_unlock(&m);
    }
    const std::uint64_t t1 = runtime::now_ns();
    const double ns =
        static_cast<double>(t1 - t0) / static_cast<double>(iters);
    if (pass == 0 || ns < best) best = ns;
  }
  return best;
}

struct OversubRun {
  std::uint64_t wall_ns = 0;
  std::uint64_t cpu_ns = 0;
  double ops_per_sec = 0;
};

OversubRun run_oversub(bool parking, std::uint32_t threads,
                       std::uint64_t per_thread) {
  park::ParkingGuard guard(parking);
  McsLockResilient lock;
  runtime::SenseBarrier start(threads);
  const std::uint64_t cpu0 = process_cpu_ns();
  const std::uint64_t t0 = runtime::now_ns();
  runtime::ThreadTeam::run(threads, [&](std::uint32_t) {
    McsLockResilient::Context ctx;
    start.arrive_and_wait();
    std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < per_thread; ++i) {
      lock.acquire(ctx);
      sink ^= runtime::busy_work(4, sink);
      lock.release(ctx);
    }
    if (sink == 42) std::fputc(0, stderr);
  });
  OversubRun r;
  r.wall_ns = runtime::now_ns() - t0;
  r.cpu_ns = process_cpu_ns() - cpu0;
  const std::uint64_t total =
      static_cast<std::uint64_t>(threads) * per_thread;
  r.ops_per_sec = r.wall_ns != 0
                      ? static_cast<double>(total) * 1e9 /
                            static_cast<double>(r.wall_ns)
                      : 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = platform::env_double("RESILOCK_SCALE", 1.0);
  const std::uint64_t fast_iters = std::max<std::uint64_t>(
      200000, static_cast<std::uint64_t>(2000000.0 * scale));
  const std::uint64_t oversub_per_thread = std::max<std::uint64_t>(
      2000, static_cast<std::uint64_t>(20000.0 * scale));
  const std::uint32_t cores =
      std::max(1u, std::thread::hardware_concurrency());
  const std::uint32_t oversub_threads = cores * 4;
  (void)runtime::now_ns_fast();  // one-time tsc calibration up front

  // ------------------------------------------------------------------
  // Phase 1: uncontended pair, parking off vs on.
  // ------------------------------------------------------------------
  const double mcs_off =
      pair_with_parking<McsLockResilient>(false, fast_iters);
  const double mcs_on =
      pair_with_parking<McsLockResilient>(true, fast_iters);
  const double ticket_off =
      pair_with_parking<TicketLockResilient>(false, fast_iters);
  const double ticket_on =
      pair_with_parking<TicketLockResilient>(true, fast_iters);
  const double mcs_ratio = mcs_on / mcs_off;
  const double ticket_ratio = ticket_on / ticket_off;
  std::printf("uncontended: MCS %.1f -> %.1f ns/pair (%.2fx), "
              "Ticket %.1f -> %.1f ns/pair (%.2fx), budget 2x\n",
              mcs_off, mcs_on, mcs_ratio, ticket_off, ticket_on,
              ticket_ratio);

  // ------------------------------------------------------------------
  // Phase 2: shim timedlock on a free mutex.
  // ------------------------------------------------------------------
  double plain_ns = 0, timed_ns = 0;
  {
    interpose::rl_mutex_t m{};
    interpose::rl_mutex_init(&m, "MCS", /*resilient=*/1);
    plain_pair_ns(m, fast_iters / 10);  // warm up
    plain_ns = plain_pair_ns(m, fast_iters);
    timed_ns = timed_pair_ns(m, fast_iters);
    interpose::rl_mutex_destroy(&m);
  }
  std::printf("timedlock (free mutex): plain %.1f ns/pair, timed %.1f "
              "ns/pair (%.2fx — one clock rebase + gate trylock)\n",
              plain_ns, timed_ns, timed_ns / plain_ns);

  // ------------------------------------------------------------------
  // Phase 3: oversubscribed MCS, spin vs park.
  // ------------------------------------------------------------------
  const OversubRun spin =
      run_oversub(false, oversub_threads, oversub_per_thread);
  const OversubRun park =
      run_oversub(true, oversub_threads, oversub_per_thread);
  const double cpu_ratio = spin.cpu_ns != 0
                               ? static_cast<double>(park.cpu_ns) /
                                     static_cast<double>(spin.cpu_ns)
                               : 0;
  const double tput_ratio =
      spin.ops_per_sec != 0 ? park.ops_per_sec / spin.ops_per_sec : 0;
  std::printf("oversub MCS (%u threads on %u cores): spin %9.0f acq/s "
              "cpu %.1f ms, park %9.0f acq/s cpu %.1f ms "
              "(cpu %.2fx, throughput %.2fx)\n",
              oversub_threads, cores, spin.ops_per_sec,
              static_cast<double>(spin.cpu_ns) * 1e-6, park.ops_per_sec,
              static_cast<double>(park.cpu_ns) * 1e-6, cpu_ratio,
              tput_ratio);

  if (const char* json = bench::json_out_path(argc, argv)) {
    const bool ok = bench::write_bench_json(
        json, "parking_overhead", oversub_threads, 1, fast_iters,
        [&](bench::JsonWriter& w) {
          w.begin_object();
          w.field("phase", "uncontended");
          w.field("lock", "MCS");
          w.field("pair_ns_spin", mcs_off);
          w.field("pair_ns_park", mcs_on);
          w.field("park_overhead_ratio", mcs_ratio);
          w.end_object();
          w.begin_object();
          w.field("phase", "uncontended");
          w.field("lock", "Ticket");
          w.field("pair_ns_spin", ticket_off);
          w.field("pair_ns_park", ticket_on);
          w.field("park_overhead_ratio", ticket_ratio);
          w.end_object();
          w.begin_object();
          w.field("phase", "timedlock");
          w.field("pair_ns_plain", plain_ns);
          w.field("pair_ns_timed", timed_ns);
          w.field("timed_overhead_ratio",
                  plain_ns != 0 ? timed_ns / plain_ns : 0);
          w.end_object();
          w.begin_object();
          w.field("phase", "oversub");
          w.field("lock", "MCS");
          w.field("threads", oversub_threads);
          w.field("hw_cores", cores);
          w.field("per_thread", oversub_per_thread);
          w.field("spin_wall_ns", spin.wall_ns);
          w.field("spin_cpu_ns", spin.cpu_ns);
          w.field("spin_ops_per_sec", spin.ops_per_sec);
          w.field("park_wall_ns", park.wall_ns);
          w.field("park_cpu_ns", park.cpu_ns);
          w.field("park_ops_per_sec", park.ops_per_sec);
          w.field("park_cpu_ratio", cpu_ratio);
          w.field("park_throughput_ratio", tput_ratio);
          w.end_object();
        });
    if (!ok) return 1;
  }
  return 0;
}
