// Ablation: ReadIndicator implementations (paper §4). Measures the
// arrive/depart cycle and the writer-side is_empty() query for the
// centralized counter, per-domain split counters, the SNZI tree, and the
// CheckedReadIndicator extension — quantifying what detectability of the
// R-side misuse costs.
#include <benchmark/benchmark.h>

#include "core/rw/read_indicator.hpp"
#include "platform/thread_registry.hpp"
#include "platform/topology.hpp"

namespace {

using namespace resilock;

const platform::Topology& topo() {
  static const auto t = platform::Topology::uniform(2, 4);
  return t;
}

template <typename I>
I make_indicator() {
  if constexpr (std::is_constructible_v<I, const platform::Topology&>) {
    return I(topo());
  } else {
    return I();
  }
}

template <typename I>
void BM_ArriveDepart(benchmark::State& state) {
  static I* ind = nullptr;
  if (state.thread_index() == 0) {
    static I instance = make_indicator<I>();
    ind = &instance;
  }
  const auto pid = platform::self_pid();
  for (auto _ : state) {
    ind->arrive(pid);
    ind->depart(pid);
  }
  state.SetItemsProcessed(state.iterations());
}

template <typename I>
void BM_IsEmptyQuery(benchmark::State& state) {
  I ind = make_indicator<I>();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ind.is_empty());
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_ArriveDepart<CentralReadIndicator>)
    ->Name("readindr/arrive_depart/central")
    ->Threads(1)
    ->Threads(4);
BENCHMARK(BM_ArriveDepart<SplitReadIndicator>)
    ->Name("readindr/arrive_depart/split")
    ->Threads(1)
    ->Threads(4);
BENCHMARK(BM_ArriveDepart<SnziReadIndicator>)
    ->Name("readindr/arrive_depart/snzi")
    ->Threads(1)
    ->Threads(4);
BENCHMARK(BM_ArriveDepart<CheckedReadIndicator>)
    ->Name("readindr/arrive_depart/checked")
    ->Threads(1)
    ->Threads(4);

BENCHMARK(BM_IsEmptyQuery<CentralReadIndicator>)
    ->Name("readindr/is_empty/central");
BENCHMARK(BM_IsEmptyQuery<SplitReadIndicator>)
    ->Name("readindr/is_empty/split");
BENCHMARK(BM_IsEmptyQuery<SnziReadIndicator>)
    ->Name("readindr/is_empty/snzi");
BENCHMARK(BM_IsEmptyQuery<CheckedReadIndicator>)
    ->Name("readindr/is_empty/checked");

BENCHMARK_MAIN();
