// Table 1 reproduction: per-lock behavior under a single misbehaving
// unlock() — mutex violation, Tm starvation, starvation of others — and
// whether the resilient flavor detects and prevents it.
//
// Every row is derived empirically from the scripted interleavings in
// src/verify/misuse_matrix.cpp (the paper's §3–§5 case analyses).
#include <cstdio>

#include "verify/misuse_matrix.hpp"

int main() {
  std::printf("=== Table 1: behavior under unbalanced unlock "
              "(observed vs paper) ===\n\n");
  const auto rows = resilock::verify::run_misuse_matrix();
  resilock::verify::print_misuse_matrix(rows);

  // Self-check: observed violation/detection columns must match the
  // paper (starvation columns are watchdog-based and noted separately).
  int mismatches = 0;
  for (const auto& r : rows) {
    if (r.violates_mutex != r.paper_violates) {
      std::printf("MISMATCH (%s): violates_mutex observed=%d paper=%d\n",
                  r.lock.c_str(), r.violates_mutex, r.paper_violates);
      ++mismatches;
    }
    if (!r.prevented) {
      std::printf("MISMATCH (%s): resilient flavor did not prevent\n",
                  r.lock.c_str());
      ++mismatches;
    }
  }
  std::printf("\nrows matching the paper's mutex/prevention claims: %zu/%zu\n",
              rows.size() - mismatches, rows.size());

  // The generic ownership shield (src/shield/) over the ORIGINAL
  // protocols must deliver what the bespoke in-protocol fixes deliver.
  std::printf("\n=== Shield<original> vs native resilient ===\n\n");
  const auto shield_rows = resilock::verify::run_shield_matrix();
  resilock::verify::print_shield_matrix(shield_rows);
  for (const auto& r : shield_rows) {
    if (!r.shield_matches_native()) {
      std::printf("MISMATCH (%s): shield<original> diverges from native "
                  "resilient\n", r.lock.c_str());
      ++mismatches;
    }
  }
  return mismatches == 0 ? 0 : 1;
}
