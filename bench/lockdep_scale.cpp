// Lockdep class-table scale: what does the sharded, chunk-growable,
// epoch-reclaimed table (PR 9) cost as the live-class population grows
// far past the old fixed 1024-slot table?
//
// Three sections, each emitted as rows under --json:
//
//   churn     — steady-state retire+register churn with the table held
//               at 1k / 100k / 1M LIVE classes. Each op is one retire
//               (logical, epoch-limbo push) plus one register (shard
//               freelist pop, stealing/reclaiming/growing as needed).
//               Also records the hot-path edge-probe latency (has_edge
//               on a known edge) AT that population — the wait-free
//               chunk-indirection probe must not care how big the
//               table is — and the limbo depth after a full drain
//               (must be 0: no leaked rows).
//   sweep     — multi-thread shard contention: T threads churning
//               private live sets concurrently, aggregate Mops across
//               the thread axis. Shard freelists (RESILOCK_LOCKDEP_
//               SHARDS) are the contention dial this prices.
//
// Methodology matches the other benches: barrier start, best of
// RESILOCK_REPS, RESILOCK_SCALE-sized op counts.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "harness/evaluation.hpp"
#include "json_writer.hpp"
#include "lockdep/lockdep.hpp"
#include "runtime/barrier.hpp"
#include "runtime/thread_team.hpp"
#include "runtime/timer.hpp"

namespace {

using namespace resilock;
using lockdep::ClassId;
using lockdep::Graph;

void drain_limbo(Graph& g) {
  while (g.try_reclaim() > 0) {
  }
}

struct ChurnRow {
  std::uint32_t live_target = 0;
  std::uint32_t live_achieved = 0;  // registrations that stayed tracked
  double churn_mops = 0;            // retire+register pairs per second
  double probe_ns = 0;              // has_edge hot path at this scale
  std::uint64_t capacity = 0;       // mapped slots after the fill
  std::uint64_t chunks = 0;
  std::uint64_t limbo_after_drain = 0;  // MUST be 0 (leak gate)
};

ChurnRow churn_at(std::uint32_t live_target, std::uint64_t churn_ops,
                  std::uint32_t reps) {
  auto& g = Graph::instance();
  drain_limbo(g);
  ChurnRow row;
  row.live_target = live_target;

  static int anchor = 0;
  std::vector<ClassId> live;
  live.reserve(live_target);
  for (std::uint32_t i = 0; i < live_target; ++i) {
    const ClassId c = g.register_class(&anchor, "bench.scale");
    if (c == lockdep::kUntrackedClass) break;
    live.push_back(c);
  }
  row.live_achieved = static_cast<std::uint32_t>(live.size());

  // Hot-path probe at this population: one known edge, hammered. The
  // probe is the same chunk→slot→row→segment load chain ensure_edge
  // takes per held lock on every blocking acquire.
  if (live.size() >= 2) {
    g.ensure_edge(live[0], live[1], &anchor);
    const std::uint64_t probe_iters = 2000000;
    std::uint64_t hits = 0;
    double best_ns = 0;
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
      const std::uint64_t t0 = runtime::now_ns();
      for (std::uint64_t i = 0; i < probe_iters; ++i) {
        hits += g.has_edge(live[0], live[1]) ? 1 : 0;
      }
      const double ns = static_cast<double>(runtime::now_ns() - t0) /
                        static_cast<double>(probe_iters);
      if (best_ns == 0 || ns < best_ns) best_ns = ns;
    }
    row.probe_ns = best_ns;
    if (hits == 0) std::fprintf(stderr, "probe sink elided?\n");
  }

  // Steady-state churn: the population stays at live_target while slots
  // cycle retire → limbo → grace → freelist → register.
  double best_mops = 0;
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    std::mt19937 rng(0xbadcafe + rep);
    const std::uint64_t t0 = runtime::now_ns();
    for (std::uint64_t i = 0; i < churn_ops; ++i) {
      const std::size_t k = rng() % live.size();
      g.retire_class(live[k]);
      live[k] = g.register_class(&anchor, "bench.scale");
    }
    const double secs =
        static_cast<double>(runtime::now_ns() - t0) * 1e-9;
    const double mops =
        static_cast<double>(churn_ops) / secs * 1e-6;
    if (mops > best_mops) best_mops = mops;
  }
  row.churn_mops = best_mops;

  const auto st = g.stats();
  row.capacity = st.capacity;
  row.chunks = st.chunks;

  for (const ClassId c : live) g.retire_class(c);
  drain_limbo(g);
  row.limbo_after_drain = g.stats().limbo;
  return row;
}

struct SweepRow {
  std::uint32_t threads = 0;
  double churn_mops = 0;  // aggregate retire+register pairs per second
};

SweepRow sweep_at(std::uint32_t threads, std::uint64_t ops_per_thread,
                  std::uint32_t reps) {
  auto& g = Graph::instance();
  SweepRow row;
  row.threads = threads;
  double best = 0;
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    drain_limbo(g);
    runtime::SenseBarrier start(threads);
    std::atomic<std::uint64_t> start_ns{0};
    std::vector<std::uint64_t> end_ns(threads, 0);
    runtime::ThreadTeam::run(threads, [&](std::uint32_t tid) {
      static thread_local int anchor = 0;
      std::vector<ClassId> mine;
      for (int i = 0; i < 256; ++i) {
        mine.push_back(g.register_class(&anchor, "bench.sweep"));
      }
      std::mt19937 rng(tid + 1);
      start.arrive_and_wait();
      if (tid == 0) {
        start_ns.store(runtime::now_ns(), std::memory_order_relaxed);
      }
      for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
        const std::size_t k = rng() % mine.size();
        g.retire_class(mine[k]);
        mine[k] = g.register_class(&anchor, "bench.sweep");
      }
      end_ns[tid] = runtime::now_ns();
      for (const ClassId c : mine) g.retire_class(c);
    });
    std::uint64_t last = 0;
    for (auto e : end_ns) last = std::max(last, e);
    const double secs =
        static_cast<double>(last -
                            start_ns.load(std::memory_order_relaxed)) *
        1e-9;
    const double mops = static_cast<double>(ops_per_thread) * threads /
                        secs * 1e-6;
    if (mops > best) best = mops;
  }
  row.churn_mops = best;
  drain_limbo(g);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resilock::harness;

  const char* json_path = bench::json_out_path(argc, argv);
  const std::uint32_t max_threads = env_max_threads();
  const std::uint32_t reps = env_reps();
  const std::uint64_t churn_ops =
      static_cast<std::uint64_t>(50000 * env_scale());

  std::printf(
      "=== Lockdep class-table scale: churn, probe latency, shard "
      "contention ===\n"
      "(best of %u reps, %llu churn ops; the old table refused class "
      "1025)\n\n",
      reps, static_cast<unsigned long long>(churn_ops));

  std::vector<ChurnRow> churn_rows;
  std::printf("%12s %13s %13s %11s %10s %8s %12s\n", "live classes",
              "achieved", "churn Mops", "probe ns", "capacity", "chunks",
              "limbo-after");
  for (const std::uint32_t live : {1024u, 100000u, 1000000u}) {
    churn_rows.push_back(churn_at(live, churn_ops, reps));
    const ChurnRow& r = churn_rows.back();
    std::printf("%12u %13u %13.2f %11.1f %10llu %8llu %12llu\n",
                r.live_target, r.live_achieved, r.churn_mops, r.probe_ns,
                static_cast<unsigned long long>(r.capacity),
                static_cast<unsigned long long>(r.chunks),
                static_cast<unsigned long long>(r.limbo_after_drain));
    std::fflush(stdout);
  }

  std::vector<SweepRow> sweep_rows;
  std::printf("\n%8s %13s\n", "threads", "churn Mops");
  for (std::uint32_t t = 1; t <= max_threads; t *= 2) {
    sweep_rows.push_back(sweep_at(t, churn_ops, reps));
    std::printf("%8u %13.2f\n", sweep_rows.back().threads,
                sweep_rows.back().churn_mops);
    std::fflush(stdout);
  }

  if (json_path != nullptr) {
    const bool ok = bench::write_bench_json(
        json_path, "lockdep_scale", max_threads, reps, churn_ops,
        [&](bench::JsonWriter& w) {
          for (const auto& r : churn_rows) {
            w.begin_object();
            w.field("section", "churn");
            w.field("live_classes", r.live_target);
            w.field("live_achieved", r.live_achieved);
            w.field("churn_mops", r.churn_mops);
            w.field("probe_ns", r.probe_ns);
            w.field("capacity", r.capacity);
            w.field("chunks", r.chunks);
            w.field("limbo_after_drain", r.limbo_after_drain);
            w.end_object();
          }
          for (const auto& r : sweep_rows) {
            w.begin_object();
            w.field("section", "sweep");
            w.field("threads", r.threads);
            w.field("churn_mops", r.churn_mops);
            w.end_object();
          }
        });
    if (!ok) return 1;
  }
  return 0;
}
