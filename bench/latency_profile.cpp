// Acquisition-latency percentiles, original vs resilient.
//
// Table 2 reports aggregate time; this harness looks underneath at the
// per-acquisition latency distribution (p50/p90/p99/max) under a fixed
// contention level — showing *where* the fix's cost lands (TAS's CAS
// retry tail vs Ticket's constant release surcharge vs the queue locks'
// flat profile).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <vector>

#include "core/lock_registry.hpp"
#include "harness/evaluation.hpp"
#include "runtime/barrier.hpp"
#include "runtime/thread_team.hpp"
#include "runtime/timer.hpp"

namespace {

using namespace resilock;

struct Percentiles {
  double p50, p90, p99, max;
};

Percentiles percentiles(std::vector<double>& v) {
  std::sort(v.begin(), v.end());
  auto at = [&](double q) {
    return v[static_cast<std::size_t>(q * (v.size() - 1))];
  };
  return {at(0.50), at(0.90), at(0.99), v.back()};
}

Percentiles measure(const std::string& name, Resilience flavor,
                    std::uint32_t threads, std::uint32_t samples_per_thread) {
  auto lock = make_lock(name, flavor);
  runtime::SenseBarrier barrier(threads);
  std::vector<std::vector<double>> per_thread(threads);
  runtime::ThreadTeam::run(threads, [&](std::uint32_t tid) {
    auto& lat = per_thread[tid];
    lat.reserve(samples_per_thread);
    barrier.arrive_and_wait();
    std::uint64_t sink = 0;
    for (std::uint32_t i = 0; i < samples_per_thread; ++i) {
      const std::uint64_t t0 = runtime::now_ns();
      lock->acquire();
      const std::uint64_t t1 = runtime::now_ns();
      sink ^= runtime::busy_work(16, sink + i);  // short CS
      lock->release();
      lat.push_back(static_cast<double>(t1 - t0));
    }
    (void)sink;
  });
  std::vector<double> all;
  for (auto& v : per_thread) all.insert(all.end(), v.begin(), v.end());
  return percentiles(all);
}

}  // namespace

int main() {
  const std::uint32_t threads =
      std::min(4u, resilock::harness::env_max_threads());
  const auto samples = static_cast<std::uint32_t>(
      20000 * resilock::harness::env_scale());
  std::printf("=== acquisition latency percentiles, ns "
              "(threads=%u, %u samples/thread) ===\n\n",
              threads, samples);
  std::printf("%-10s %-10s %10s %10s %10s %12s\n", "lock", "flavor", "p50",
              "p90", "p99", "max");
  for (const auto& name : table2_lock_names()) {
    for (auto flavor : {kOriginal, kResilient}) {
      const auto p = measure(name, flavor, threads, samples);
      std::printf("%-10s %-10s %10.0f %10.0f %10.0f %12.0f\n", name.c_str(),
                  to_string(flavor), p.p50, p.p90, p.p99, p.max);
      std::fflush(stdout);
    }
  }
  std::printf("\nShape to expect: queue locks (MCS/CLH/HMCS) have flat "
              "tails (local spinning, FIFO);\nTAS's tail stretches under "
              "contention; the resilient deltas ride on p50 for "
              "TAS/Ticket\nand vanish for ABQL/CLH (see "
              "ablation_protection).\n");
  return 0;
}
