// Figure 14 reproduction: % overhead of the resilient fix at every
// thread count (1,2,4,...,max) for each lock x application, plus the
// per-configuration average — the full grid from the paper's appendix.
//
// '#' marks thread counts an app cannot run (power-of-two constraint),
// '*' marks lock/app combinations without trylock support (CLH), exactly
// as in the paper's figure.
#include <cstdio>
#include <vector>

#include "core/lock_registry.hpp"
#include "harness/app_profiles.hpp"
#include "harness/evaluation.hpp"

int main() {
  using namespace resilock;
  using namespace resilock::harness;

  const std::uint32_t max_threads = env_max_threads();
  const std::uint32_t reps = env_reps();
  const auto axis = thread_axis(max_threads);

  std::printf("=== Figure 14: %% overhead grid (reps=%u, scale=%.2f) ===\n\n",
              reps, env_scale());
  std::printf("%-14s", "Lock(Threads)");
  for (const auto& p : app_profiles()) std::printf("%14s", p.name.c_str());
  std::printf("\n");

  for (const auto& lock : table2_lock_names()) {
    std::vector<double> sums(app_profiles().size(), 0.0);
    std::vector<unsigned> counts(app_profiles().size(), 0);
    for (const std::uint32_t threads : axis) {
      std::printf("%-8s(%3u) ", lock.c_str(), threads);
      std::size_t col = 0;
      for (const auto& profile : app_profiles()) {
        const auto cell = overhead_cell(profile, lock, threads, reps);
        if (cell) {
          std::printf("%13.2f ", *cell);
          sums[col] += *cell;
          counts[col] += 1;
        } else if (profile.pow2_threads_only &&
                   (threads & (threads - 1)) != 0) {
          std::printf("%13s ", "#");
        } else {
          std::printf("%13s ", "*");
        }
        std::fflush(stdout);
        ++col;
      }
      std::printf("\n");
    }
    std::printf("%-8s(avg) ", lock.c_str());
    for (std::size_t col = 0; col < sums.size(); ++col) {
      if (counts[col]) {
        std::printf("%13.2f ", sums[col] / counts[col]);
      } else {
        std::printf("%13s ", "*");
      }
    }
    std::printf("\n\n");
  }
  std::printf("'#' = app requires power-of-two threads; "
              "'*' = lock lacks trylock for this app (CLH).\n");
  return 0;
}
