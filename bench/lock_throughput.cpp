// google-benchmark microbenchmarks: raw lock-API throughput of every
// registered algorithm, original vs resilient, at 1..4 threads — the
// microscopic view behind Table 2's overheads.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/lock_registry.hpp"
#include "runtime/timer.hpp"

namespace {

using namespace resilock;

void BM_LockThroughput(benchmark::State& state, const std::string& name,
                       Resilience flavor) {
  static std::unique_ptr<AnyLock> lock;
  if (state.thread_index() == 0) lock = make_lock(name, flavor);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    lock->acquire();
    sink ^= runtime::busy_work(4, sink);  // tiny CS
    lock->release();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}

struct Register {
  Register() {
    for (const auto& name : base_lock_names()) {
      for (auto flavor : {kOriginal, kResilient}) {
        const std::string bench_name =
            "lock/" + name + "/" + to_string(flavor);
        auto* b = benchmark::RegisterBenchmark(
            bench_name.c_str(),
            [name, flavor](benchmark::State& s) {
              BM_LockThroughput(s, name, flavor);
            });
        b->Threads(1)->Threads(2)->Threads(4);
      }
    }
  }
};
Register register_all;

}  // namespace

BENCHMARK_MAIN();
