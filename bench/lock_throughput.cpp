// Lock throughput, spin vs park, with an oversubscription workload.
//
// The paper's blocking-tier motivation: a spinning queue-lock waiter
// burns its whole timeslice re-reading a cache line, which is merely
// wasteful when cores are free and catastrophic when the thread count
// exceeds the core count — the spinner's timeslice is exactly the
// time the lock HOLDER is descheduled for. The parking tier
// (RESILOCK_PARK, src/park/) converts that burned CPU into a
// futex_wait. This bench prices the conversion:
//
//   oversub     threads = 4x hardware cores hammer one queue lock
//               (MCS, CLH, Ticket), parking off then on. Reported per
//               (lock, mode): wall ns, total process CPU ns
//               (CLOCK_PROCESS_CPUTIME_ID), throughput. The headline
//               claim CI gates on: parked CPU time < spinning CPU
//               time at equal-or-better throughput.
//
//   matched     the same comparison at threads = hardware cores (no
//               oversubscription), where parking should cost little:
//               the spin budget (RESILOCK_PARK_SPINS) absorbs short
//               waits and the futex is rarely entered.
//
// RESILOCK_SCALE scales iteration counts; `--json out.json` writes
// the table for the CI smoke gate (see BENCH_parking.json).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "core/clh.hpp"
#include "core/generic.hpp"
#include "core/mcs.hpp"
#include "core/ticket.hpp"
#include "json_writer.hpp"
#include "park/parking_lot.hpp"
#include "platform/env.hpp"
#include "runtime/barrier.hpp"
#include "runtime/thread_team.hpp"
#include "runtime/timer.hpp"

namespace {

using namespace resilock;

std::uint64_t process_cpu_ns() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

struct Run {
  std::string lock;
  std::string mode;  // "spin" | "park"
  std::uint32_t threads = 0;
  std::uint64_t total_acquires = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t cpu_ns = 0;
  double ops_per_sec = 0;
};

template <typename Lock>
Run run_one(const char* name, bool parking, std::uint32_t threads,
            std::uint64_t per_thread) {
  park::ParkingGuard park_guard(parking);
  Lock lock;
  runtime::SenseBarrier start(threads);
  const std::uint64_t cpu0 = process_cpu_ns();
  const std::uint64_t t0 = runtime::now_ns();
  runtime::ThreadTeam::run(threads, [&](std::uint32_t) {
    context_of_t<Lock> ctx;
    start.arrive_and_wait();
    std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < per_thread; ++i) {
      generic_acquire(lock, ctx);
      sink ^= runtime::busy_work(4, sink);  // tiny critical section
      generic_release(lock, ctx);
    }
    if (sink == 42) std::fputc(0, stderr);  // keep the chain alive
  });
  const std::uint64_t t1 = runtime::now_ns();
  const std::uint64_t cpu1 = process_cpu_ns();

  Run r;
  r.lock = name;
  r.mode = parking ? "park" : "spin";
  r.threads = threads;
  r.total_acquires = static_cast<std::uint64_t>(threads) * per_thread;
  r.wall_ns = t1 - t0;
  r.cpu_ns = cpu1 - cpu0;
  r.ops_per_sec = r.wall_ns != 0
                      ? static_cast<double>(r.total_acquires) * 1e9 /
                            static_cast<double>(r.wall_ns)
                      : 0;
  return r;
}

void print_run(const Run& r) {
  std::printf("  %-8s %-5s %2u threads  %9.0f acq/s  wall %8.1f ms  "
              "cpu %8.1f ms\n",
              r.lock.c_str(), r.mode.c_str(), r.threads, r.ops_per_sec,
              static_cast<double>(r.wall_ns) * 1e-6,
              static_cast<double>(r.cpu_ns) * 1e-6);
}

void emit_run(bench::JsonWriter& w, const Run& r) {
  w.begin_object();
  w.field("lock", r.lock);
  w.field("mode", r.mode);
  w.field("threads", r.threads);
  w.field("acquires", r.total_acquires);
  w.field("wall_ns", r.wall_ns);
  w.field("cpu_ns", r.cpu_ns);
  w.field("ops_per_sec", r.ops_per_sec);
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  const double scale = platform::env_double("RESILOCK_SCALE", 1.0);
  const std::uint32_t cores =
      std::max(1u, std::thread::hardware_concurrency());
  const std::uint32_t oversub = cores * 4;
  const auto per_thread =
      static_cast<std::uint64_t>(2000.0 * scale) + 1;

  std::vector<Run> runs;
  const auto sweep = [&](std::uint32_t threads, const char* phase) {
    std::printf("%s (threads=%u, %llu acq/thread):\n", phase, threads,
                static_cast<unsigned long long>(per_thread));
    for (const bool parking : {false, true}) {
      runs.push_back(run_one<McsLockResilient>("MCS", parking, threads,
                                               per_thread));
      print_run(runs.back());
      runs.push_back(run_one<ClhLockResilient>("CLH", parking, threads,
                                               per_thread));
      print_run(runs.back());
      runs.push_back(run_one<TicketLockResilient>("Ticket", parking,
                                                  threads, per_thread));
      print_run(runs.back());
    }
  };
  sweep(cores, "matched");
  sweep(oversub, "oversubscribed");

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    bench::JsonWriter w(f);
    w.begin_object();
    w.field("bench", "lock_throughput");
    w.field("hw_cores", cores);
    w.field("oversub_threads", oversub);
    w.field("per_thread", per_thread);
    w.begin_array("runs");
    for (const Run& r : runs) emit_run(w, r);
    w.end_array();
    w.end_object();
    std::fputc('\n', f);
    std::fclose(f);
  }
  return 0;
}
