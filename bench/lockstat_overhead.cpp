// Lockstat overhead: what does per-class statistics collection cost
// the lock paths, and do its counters reconcile with the shield's?
//
// Three phases:
//
//   fast-path   one thread hammers an uncontended Shield<TasLock>
//               acquire/release pair with lockstat off, then on. Off
//               must be the pre-lockstat fast path (one relaxed flag
//               load); on pays the exact tallies plus the sampled
//               hold windows. Measured twice: at the default 1-in-8
//               hold sampling (the production configuration, priced
//               against the repo's standing 2x budget) and at
//               RESILOCK_LOCKSTAT_SAMPLE=1 (exact hold windows —
//               every pair pays two timestamps, which alone are
//               ~2/3 of an empty-section pair; reported as the worst
//               case and bounded looser in CI at the 3x gate the
//               lockdep and telemetry benches use).
//
//   contended   N threads fight over one labeled shield with lockstat
//               on; reports the wait/hold percentiles the histograms
//               reconstructed and the reconciliation checks: lockstat
//               contentions == the shield's ContentionProbe total and
//               lockstat acquisitions == iterations (both exact — the
//               hooks sit on the same branches the probe counts).
//
//   trace       the same workload with span tracing on and the
//               collector streaming JSONL (--trace <path>, default
//               lockstat_trace.jsonl), sized so the ring never drops.
//               CI replays the file through resilock_report and
//               asserts the offline table names this phase's hot
//               class with the same wait count lockstat saw live.
//
// Scaling mirrors the other benches: RESILOCK_SCALE scales iteration
// counts, RESILOCK_MAX_THREADS caps the contended phase; `--json
// out.json` emits the table machine-readably for BENCH_lockstat.json.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/tas.hpp"
#include "json_writer.hpp"
#include "lockdep/event_ring.hpp"
#include "lockdep/lockdep.hpp"
#include "observe/lockstat.hpp"
#include "platform/env.hpp"
#include "runtime/barrier.hpp"
#include "runtime/thread_team.hpp"
#include "runtime/timer.hpp"
#include "shield/shield.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/sink.hpp"

namespace {

using namespace resilock;
using observe::LockStat;

// ns per uncontended acquire/release pair, single-threaded. Best of
// three passes — the CI smoke scale is short enough that a scheduler
// hiccup in one pass would poison a single-shot ratio.
double time_pair_ns(Shield<TasLock>& lock, std::uint64_t iters) {
  double best = 0;
  for (int pass = 0; pass < 3; ++pass) {
    const std::uint64_t t0 = runtime::now_ns();
    for (std::uint64_t i = 0; i < iters; ++i) {
      lock.acquire();
      lock.release();
    }
    const std::uint64_t t1 = runtime::now_ns();
    const double ns =
        static_cast<double>(t1 - t0) / static_cast<double>(iters);
    if (pass == 0 || ns < best) best = ns;
  }
  return best;
}

struct ContendedRun {
  std::uint32_t threads = 0;
  std::uint64_t acquisitions = 0;
  std::uint64_t contentions = 0;
  std::uint64_t probe_contended = 0;
  std::uint64_t wait_p50 = 0, wait_p99 = 0, wait_max = 0;
  std::uint64_t hold_p50 = 0;
  bool reconciled = false;
};

ContendedRun run_contended(const char* label, std::uint32_t threads,
                           std::uint64_t per_thread) {
  observe::LockstatGuard stats(true);
  LockStat::instance().reset();
  Shield<TasLock> lock;
  lock.set_lockdep_label(label);
  runtime::SenseBarrier start(threads);
  runtime::ThreadTeam::run(threads, [&](std::uint32_t) {
    start.arrive_and_wait();
    for (std::uint64_t i = 0; i < per_thread; ++i) {
      lock.acquire();
      lock.release();
    }
  });

  ContendedRun r;
  r.threads = threads;
  r.probe_contended = lock.contended_total();
  for (const observe::ClassReport& c : LockStat::instance().report()) {
    if (c.label != label) continue;
    r.acquisitions = c.acquisitions;
    r.contentions = c.contentions;
    r.wait_p50 = c.wait.percentile(0.50);
    r.wait_p99 = c.wait.percentile(0.99);
    r.wait_max = c.wait.max;
    r.hold_p50 = c.hold.percentile(0.50);
  }
  r.reconciled = r.contentions == r.probe_contended &&
                 r.acquisitions ==
                     static_cast<std::uint64_t>(threads) * per_thread;
  return r;
}

const char* trace_out_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) return argv[i + 1];
  }
  return "lockstat_trace.jsonl";
}

}  // namespace

int main(int argc, char** argv) {
  // Deep rings so the trace phase never drops: the offline/live parity
  // check needs every span on disk. The env still wins if set.
  ::setenv("RESILOCK_RING_CAPACITY", "65536", /*overwrite=*/0);
  const double scale = platform::env_double("RESILOCK_SCALE", 1.0);
  const std::uint32_t max_threads =
      platform::env_u32("RESILOCK_MAX_THREADS", 4);
  // High floor: the fast-path phase is the budget gate, and a pass
  // under a few hundred k pairs is noise-bound (~10 ms each is still
  // cheap at the CI smoke scale).
  const std::uint64_t fast_iters = std::max<std::uint64_t>(
      200000, static_cast<std::uint64_t>(2000000.0 * scale));
  const std::uint64_t contended_per_thread = std::max<std::uint64_t>(
      1000, static_cast<std::uint64_t>(200000.0 * scale));
  const char* trace_path = trace_out_path(argc, argv);

  // ------------------------------------------------------------------
  // Phase 1: uncontended fast path, lockstat off vs on.
  // ------------------------------------------------------------------
  const std::uint32_t hold_sample = observe::lockstat_sample();
  // First use of the fast clock pays a one-time 2 ms tsc calibration;
  // take it before any timed region (at the smoke scale a pass is
  // ~2 ms — calibration inside one would double it).
  (void)runtime::now_ns_fast();
  double pair_ns_off = 0, pair_ns_on = 0, pair_ns_exact = 0;
  {
    Shield<TasLock> lock;
    lock.set_lockdep_label("bench.lockstat.fast");
    {
      observe::LockstatGuard stats(false);
      time_pair_ns(lock, fast_iters / 10);  // warm up
      pair_ns_off = time_pair_ns(lock, fast_iters);
    }
    {
      observe::LockstatGuard stats(true);
      LockStat::instance().reset();
      pair_ns_on = time_pair_ns(lock, fast_iters);
      observe::LockstatSampleGuard exact(1);
      pair_ns_exact = time_pair_ns(lock, fast_iters);
    }
  }
  const double ratio = pair_ns_on / pair_ns_off;
  const double exact_ratio = pair_ns_exact / pair_ns_off;
  std::printf("fast path: lockstat off %.1f ns/pair, on %.1f ns/pair "
              "at hold sampling 1/%u (%.2fx, budget 2x), "
              "%.1f ns/pair exact (%.2fx worst case)\n",
              pair_ns_off, pair_ns_on, hold_sample, ratio,
              pair_ns_exact, exact_ratio);

  // ------------------------------------------------------------------
  // Phase 2: contended percentiles + reconciliation.
  // ------------------------------------------------------------------
  const std::uint32_t threads = std::max<std::uint32_t>(2, max_threads);
  const ContendedRun cr =
      run_contended("bench.lockstat.contended", threads,
                    contended_per_thread);
  std::printf("contended (%u threads): %llu acquisitions, %llu waits "
              "(probe %llu), wait p50 %llu ns p99 %llu ns max %llu ns, "
              "hold p50 %llu ns, reconciled %s\n",
              cr.threads,
              static_cast<unsigned long long>(cr.acquisitions),
              static_cast<unsigned long long>(cr.contentions),
              static_cast<unsigned long long>(cr.probe_contended),
              static_cast<unsigned long long>(cr.wait_p50),
              static_cast<unsigned long long>(cr.wait_p99),
              static_cast<unsigned long long>(cr.wait_max),
              static_cast<unsigned long long>(cr.hold_p50),
              cr.reconciled ? "yes" : "NO");

  // ------------------------------------------------------------------
  // Phase 3: JSONL trace for the offline/live parity check.
  // ------------------------------------------------------------------
  std::uint64_t live_waits = 0, live_acquisitions = 0, trace_drops = 0;
  {
    std::remove(trace_path);
    auto& tb = lockdep::TraceBuffer::instance();
    tb.drain_all();
    const std::uint64_t dropped0 = tb.dropped();
    observe::LockstatGuard stats(true);
    LockStat::instance().reset();
    lockdep::SpanTracingGuard spans(true);
    telemetry::Collector& c = telemetry::Collector::instance();
    c.add_sink(telemetry::make_jsonl_sink(trace_path));
    c.start();
    Shield<TasLock> lock;
    lock.set_lockdep_label("bench.lockstat.hot");
    // Modest: 2 threads, few iterations — every span must land on disk
    // for the offline table to agree with the live counters.
    const std::uint32_t span_threads =
        std::min<std::uint32_t>(2, std::max<std::uint32_t>(1, max_threads));
    const std::uint64_t span_iters = std::max<std::uint64_t>(
        500, contended_per_thread / 100);
    runtime::ThreadTeam::run(span_threads, [&](std::uint32_t) {
      for (std::uint64_t i = 0; i < span_iters; ++i) {
        lock.acquire();
        lock.release();
      }
    });
    c.stop();
    trace_drops = tb.dropped() - dropped0;
    for (const observe::ClassReport& r : LockStat::instance().report()) {
      if (r.label != "bench.lockstat.hot") continue;
      live_waits = r.contentions;
      live_acquisitions = r.acquisitions;
    }
    std::printf("trace: %llu live contended waits, %llu acquisitions, "
                "%llu drops -> %s\n",
                static_cast<unsigned long long>(live_waits),
                static_cast<unsigned long long>(live_acquisitions),
                static_cast<unsigned long long>(trace_drops), trace_path);
  }

  if (const char* json = bench::json_out_path(argc, argv)) {
    const bool ok = bench::write_bench_json(
        json, "lockstat_overhead", max_threads, 1, fast_iters,
        [&](bench::JsonWriter& w) {
          w.begin_object();
          w.field("phase", "fast_path");
          w.field("hold_sample", static_cast<std::uint64_t>(hold_sample));
          w.field("pair_ns_off", pair_ns_off);
          w.field("pair_ns_on", pair_ns_on);
          w.field("lockstat_overhead_ratio", ratio);
          w.field("exact_pair_ns_on", pair_ns_exact);
          w.field("exact_overhead_ratio", exact_ratio);
          w.end_object();
          w.begin_object();
          w.field("phase", "contended");
          w.field("threads", cr.threads);
          w.field("acquisitions", cr.acquisitions);
          w.field("contentions", cr.contentions);
          w.field("probe_contended", cr.probe_contended);
          w.field("wait_p50_ns", cr.wait_p50);
          w.field("wait_p99_ns", cr.wait_p99);
          w.field("wait_max_ns", cr.wait_max);
          w.field("hold_p50_ns", cr.hold_p50);
          w.field("reconciled", cr.reconciled);
          w.end_object();
          w.begin_object();
          w.field("phase", "trace");
          w.field("trace_path", trace_path);
          w.field("hot_class", "bench.lockstat.hot");
          w.field("live_contended_waits", live_waits);
          w.field("live_acquisitions", live_acquisitions);
          w.field("trace_drops", trace_drops);
          w.end_object();
        });
    if (!ok) return 1;
  }
  return 0;
}
