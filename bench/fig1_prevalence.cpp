// Figure 1 reproduction: lock-related code changes in large open-source
// projects, categorized by misuse type (paper §2.1).
//
// The classifier implements the paper's §2.1 keyword methodology; since
// the repositories cannot be crawled offline, it runs over a synthetic
// corpus carrying the paper's ground-truth counts (DESIGN.md §2.1,
// substitution 4) plus noise commits that the methodology must exclude.
#include <cstdio>

#include "mining/classifier.hpp"
#include "mining/corpus.hpp"

int main() {
  using namespace resilock::mining;
  std::printf("=== Figure 1: lock-misuse commits by category ===\n");
  std::printf(
      "(synthetic corpus with the paper's per-project ground truth; the\n"
      " classifier implements the paper's keyword methodology and must\n"
      " exclude design/performance commits)\n\n");

  const auto corpus = generate_corpus(/*noise_per_project=*/60);
  std::printf("corpus: %zu commits across 5 projects (incl. 300 noise)\n\n",
              corpus.size());

  const auto tallies = tally(corpus);
  print_figure1(tallies);

  std::printf("\npaper's Figure 1 counts (unlock/lock): Golang 14/20, "
              "Linux 40/12, LLVM 16/26, MySQL 4/7, memcached 3/9\n");

  // Verify recovery so the binary doubles as a self-check.
  bool ok = true;
  for (const auto& gt : figure1_ground_truth()) {
    const auto& t = tallies.at(gt.project);
    if (t.unbalanced_unlock != gt.unbalanced_unlock ||
        t.unbalanced_lock != gt.unbalanced_lock) {
      ok = false;
      std::printf("MISMATCH for %s\n", gt.project);
    }
  }
  std::printf("\nclassifier recovered the paper's counts: %s\n",
              ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
