// Reader-writer lock evaluation (paper §4): throughput of the C-RW
// variants (NP/RP/WP) over the ReadIndicator implementations, across
// read/write mixes — including the cost of the CheckedReadIndicator
// extension that makes the unsolved R-side misuse detectable.
#include <cstdio>
#include <string>

#include "core/rw/crw.hpp"
#include "harness/evaluation.hpp"
#include "runtime/barrier.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_team.hpp"
#include "runtime/timer.hpp"

namespace {

using namespace resilock;

template <typename RwLock>
double run_mix(RwLock& rw, std::uint32_t threads, unsigned read_pct,
               std::uint64_t ops_per_thread) {
  runtime::SenseBarrier barrier(threads);
  std::atomic<std::uint64_t> t0{0}, t1{0};
  runtime::ThreadTeam::run(threads, [&](std::uint32_t tid) {
    typename RwLock::Context ctx;
    runtime::Xoshiro256ss rng(1234 + tid);
    barrier.arrive_and_wait();
    if (tid == 0) t0.store(runtime::now_ns());
    barrier.arrive_and_wait();
    std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
      if (rng.bounded(100) < read_pct) {
        rw.rlock(ctx);
        sink ^= runtime::busy_work(8, sink + i);
        rw.runlock(ctx);
      } else {
        rw.wlock(ctx);
        sink ^= runtime::busy_work(8, sink + i);
        rw.wunlock(ctx);
      }
    }
    (void)sink;
    barrier.arrive_and_wait();
    if (tid == 0) t1.store(runtime::now_ns());
  });
  const double secs = static_cast<double>(t1.load() - t0.load()) * 1e-9;
  return static_cast<double>(ops_per_thread) * threads / secs / 1e6;
}

template <typename RwLock>
void bench_variant(const char* name, std::uint32_t threads,
                   std::uint64_t ops) {
  std::printf("%-34s", name);
  for (unsigned read_pct : {0u, 50u, 90u, 100u}) {
    RwLock rw;
    std::printf("%9.2f", run_mix(rw, threads, read_pct, ops));
    std::fflush(stdout);
  }
  std::printf("   (Mops at 0/50/90/100%% reads)\n");
}

}  // namespace

int main() {
  using namespace resilock;
  const std::uint32_t threads =
      std::min(4u, resilock::harness::env_max_threads());
  const auto ops = static_cast<std::uint64_t>(
      30000 * resilock::harness::env_scale());
  std::printf("=== C-RW lock family throughput (threads=%u) ===\n\n",
              threads);

  using NpSplit =
      CrwLock<kOriginal, SplitReadIndicator, RwPreference::kNeutral>;
  using NpSplitR =
      CrwLock<kResilient, SplitReadIndicator, RwPreference::kNeutral>;
  using NpCentral =
      CrwLock<kOriginal, CentralReadIndicator, RwPreference::kNeutral>;
  using NpSnzi =
      CrwLock<kOriginal, SnziReadIndicator, RwPreference::kNeutral>;
  using NpChecked =
      CrwLock<kResilient, CheckedReadIndicator, RwPreference::kNeutral>;
  using RpSplit =
      CrwLock<kOriginal, SplitReadIndicator, RwPreference::kReader>;
  using WpSplit =
      CrwLock<kOriginal, SplitReadIndicator, RwPreference::kWriter>;

  bench_variant<NpSplit>("C-RW-NP  split     original", threads, ops);
  bench_variant<NpSplitR>("C-RW-NP  split     resilient-W", threads, ops);
  bench_variant<NpCentral>("C-RW-NP  central   original", threads, ops);
  bench_variant<NpSnzi>("C-RW-NP  SNZI      original", threads, ops);
  bench_variant<NpChecked>("C-RW-NP  checked   resilient-RW", threads, ops);
  bench_variant<RpSplit>("C-RW-RP  split     original", threads, ops);
  bench_variant<WpSplit>("C-RW-WP  split     original", threads, ops);

  std::printf(
      "\nShape to expect: read-heavy mixes gain from reader overlap; the "
      "checked indicator pays an\nO(threads) writer scan — the price of "
      "making RUnlock misuse detectable (§4 future work).\n");
  return 0;
}
