// Reader-writer lock evaluation (paper §4): throughput of the C-RW
// variants (NP/RP/WP) over the ReadIndicator implementations, across
// read/write mixes — including the cost of the CheckedReadIndicator
// extension that makes the unsolved R-side misuse detectable, and the
// cost of the mode-aware ownership shield (RwShield) that intercepts
// it generically. `--json out.json` emits every row with base and
// shielded columns plus the shield_over_base acceptance ratio (2x
// budget on the read path, like the exclusive shield's budget).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/rw/crw.hpp"
#include "harness/evaluation.hpp"
#include "json_writer.hpp"
#include "runtime/barrier.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_team.hpp"
#include "runtime/timer.hpp"
#include "shield/rw_shield.hpp"

namespace {

using namespace resilock;

struct Row {
  std::string config;
  unsigned read_pct = 0;
  double mops = 0;          // bare lock
  double shielded_mops = 0; // RwShield<lock>
  double shield_over_base = 0;
};

// Drives `rw` through a read_pct mix; Op carries the rlock/runlock/
// wlock/wunlock spellings so bare locks and shields share one driver.
template <typename RwLock>
double run_mix(RwLock& rw, std::uint32_t threads, unsigned read_pct,
               std::uint64_t ops_per_thread) {
  runtime::SenseBarrier barrier(threads);
  std::atomic<std::uint64_t> t0{0}, t1{0};
  runtime::ThreadTeam::run(threads, [&](std::uint32_t tid) {
    typename RwLock::Context ctx;
    runtime::Xoshiro256ss rng(1234 + tid);
    barrier.arrive_and_wait();
    if (tid == 0) t0.store(runtime::now_ns());
    barrier.arrive_and_wait();
    std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
      if (rng.bounded(100) < read_pct) {
        rw.rlock(ctx);
        sink ^= runtime::busy_work(8, sink + i);
        rw.runlock(ctx);
      } else {
        rw.wlock(ctx);
        sink ^= runtime::busy_work(8, sink + i);
        rw.wunlock(ctx);
      }
    }
    (void)sink;
    barrier.arrive_and_wait();
    if (tid == 0) t1.store(runtime::now_ns());
  });
  const double secs = static_cast<double>(t1.load() - t0.load()) * 1e-9;
  return static_cast<double>(ops_per_thread) * threads / secs / 1e6;
}

template <typename RwLock>
void bench_variant(const char* name, std::uint32_t threads,
                   std::uint64_t ops, std::uint32_t reps,
                   std::vector<Row>& rows) {
  std::printf("%-34s", name);
  for (unsigned read_pct : {0u, 50u, 90u, 100u}) {
    // Best-of-reps, like the other overhead benches: a shared host's
    // interference shows up as slow outliers, and best-of filters it
    // from BOTH columns before the ratio is taken.
    double base = 0, sh = 0;
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
      RwLock bare;
      base = std::max(base, run_mix(bare, threads, read_pct, ops));
      shield::RwShield<RwLock> shielded;
      sh = std::max(sh, run_mix(shielded, threads, read_pct, ops));
    }
    rows.push_back(Row{name, read_pct, base, sh,
                       sh > 0.0 ? base / sh : 0.0});
    std::printf("%9.2f/%-8.2f", base, sh);
    std::fflush(stdout);
  }
  std::printf("  (bare/shielded Mops at 0/50/90/100%% reads)\n");
}

bool write_json(const char* path, const std::vector<Row>& rows,
                std::uint32_t threads, std::uint32_t reps,
                std::uint64_t ops) {
  return bench::write_bench_json(
      path, "rw_throughput", threads, reps, ops,
      [&](bench::JsonWriter& w) {
        for (const Row& r : rows) {
          w.begin_object();
          w.field("config", r.config);
          w.field("read_pct", static_cast<std::uint64_t>(r.read_pct));
          w.field("mops", r.mops);
          w.field("shielded_mops", r.shielded_mops);
          w.field("shield_over_base", r.shield_over_base);
          w.end_object();
        }
      });
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resilock;
  const char* json_path = bench::json_out_path(argc, argv);
  const std::uint32_t threads =
      std::min(4u, resilock::harness::env_max_threads());
  const auto ops = static_cast<std::uint64_t>(
      30000 * resilock::harness::env_scale());
  const std::uint32_t reps = resilock::harness::env_reps();
  std::printf(
      "=== C-RW lock family throughput (threads=%u, best of %u) ===\n\n",
      threads, reps);

  using NpSplit =
      CrwLock<kOriginal, SplitReadIndicator, RwPreference::kNeutral>;
  using NpSplitR =
      CrwLock<kResilient, SplitReadIndicator, RwPreference::kNeutral>;
  using NpCentral =
      CrwLock<kOriginal, CentralReadIndicator, RwPreference::kNeutral>;
  using NpSnzi =
      CrwLock<kOriginal, SnziReadIndicator, RwPreference::kNeutral>;
  using NpChecked =
      CrwLock<kResilient, CheckedReadIndicator, RwPreference::kNeutral>;
  using RpSplit =
      CrwLock<kOriginal, SplitReadIndicator, RwPreference::kReader>;
  using WpSplit =
      CrwLock<kOriginal, SplitReadIndicator, RwPreference::kWriter>;

  std::vector<Row> rows;
  bench_variant<NpSplit>("C-RW-NP  split     original", threads, ops,
                         reps, rows);
  bench_variant<NpSplitR>("C-RW-NP  split     resilient-W", threads, ops,
                          reps, rows);
  bench_variant<NpCentral>("C-RW-NP  central   original", threads, ops,
                           reps, rows);
  bench_variant<NpSnzi>("C-RW-NP  SNZI      original", threads, ops, reps,
                        rows);
  bench_variant<NpChecked>("C-RW-NP  checked   resilient-RW", threads,
                           ops, reps, rows);
  bench_variant<RpSplit>("C-RW-RP  split     original", threads, ops,
                         reps, rows);
  bench_variant<WpSplit>("C-RW-WP  split     original", threads, ops,
                         reps, rows);

  // The acceptance lines: shielded read-path overhead at the pure-read
  // mix against the 2x budget. Reported separately for the C-RW-NP
  // family (the paper's cohort-backed construction — readers serialize
  // briefly on the cohort, so the shield's fixed ~15ns rides a real
  // protocol) and for the RP/WP raw-indicator fast paths, whose bare
  // read is just two uncontended RMWs on a single-core host — there the
  // shield's essential table work alone is comparable to the whole
  // base op, and the ratio hovers at the budget boundary.
  double worst_np = 0, worst_all = 0;
  for (const Row& r : rows) {
    if (r.read_pct != 100) continue;
    worst_all = std::max(worst_all, r.shield_over_base);
    if (r.config.find("C-RW-NP") != std::string::npos) {
      worst_np = std::max(worst_np, r.shield_over_base);
    }
  }
  std::printf(
      "\nShape to expect: read-heavy mixes gain from reader overlap; the "
      "checked indicator pays an\nO(threads) writer scan — the price of "
      "making RUnlock misuse detectable (§4 future work).\nThe mode-aware "
      "shield prices the same detection generically: 100%%-read "
      "shield_over_base worst %.2fx\non C-RW-NP (budget 2x), %.2fx worst "
      "overall (RP/WP raw-indicator paths included).\n",
      worst_np, worst_all);

  if (json_path != nullptr &&
      !write_json(json_path, rows, threads, reps, ops)) {
    return 1;
  }
  return 0;
}
