// Lockdep cost over the shield: what does dependency tracking add to
// the layer stack the interposer installs by default?
//
// Three configurations per lock, same methodology as
// bench/shield_overhead.cpp (barrier start, best of RESILOCK_REPS,
// RESILOCK_SCALE-sized ops, thread axis {1, max}):
//   raw      — the unprotected original protocol;
//   shield   — shield<lock> with lockdep OFF: the ownership layer only;
//   lockdep  — shield<lock> with lockdep in report mode: ownership
//              layer + acquisition stack + order-graph probes;
//   engine   — the lockdep configuration plus the adaptive
//              RESILOCK_POLICY rule set: the full engine-routed stack.
// Three workloads:
//   single    — one shared lock, empty held set at every acquire: the
//               hot path the 2x acceptance bound is stated over;
//   nested    — an outer/inner pair taken in consistent order: every
//               inner acquire probes one (always-known) order edge;
//   hmcs-tree — a 3-level fanout HMCS tree behind the shield: every
//               acquisition climbs the hierarchy, so the per-level
//               class hooks (attempt/acquired per level, the skip-set
//               scan, the per-level release pops) sit directly on the
//               hand-off hot path this row prices.
//
// `--json out.json` additionally emits the table machine-readably for
// BENCH_*.json trajectory tracking.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/hmcs.hpp"
#include "core/lock_registry.hpp"
#include "core/resilience.hpp"
#include "shield/shield.hpp"
#include "harness/evaluation.hpp"
#include "json_writer.hpp"
#include "lockdep/lockdep.hpp"
#include "response/response.hpp"
#include "runtime/barrier.hpp"
#include "runtime/thread_team.hpp"
#include "runtime/timer.hpp"

namespace {

using namespace resilock;

double best_mops(const std::vector<std::string>& names,
                 std::uint32_t threads, std::uint64_t iters,
                 std::uint32_t reps) {
  // `names` holds 1 (single) or 2 (outer, inner — nested workload)
  // algorithms; every thread hammers the same instance(s).
  double best = 0.0;
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    std::vector<std::unique_ptr<AnyLock>> locks;
    for (const auto& n : names) locks.push_back(make_lock(n, kOriginal));
    runtime::SenseBarrier start(threads);
    std::atomic<std::uint64_t> start_ns{0};
    std::vector<std::uint64_t> end_ns(threads, 0);
    runtime::ThreadTeam::run(threads, [&](std::uint32_t tid) {
      std::uint64_t sink = 0;
      start.arrive_and_wait();
      if (tid == 0) {
        start_ns.store(runtime::now_ns(), std::memory_order_relaxed);
      }
      for (std::uint64_t i = 0; i < iters; ++i) {
        for (auto& l : locks) l->acquire();
        sink ^= runtime::busy_work(4, sink + i);  // short CS
        for (auto it = locks.rbegin(); it != locks.rend(); ++it) {
          (*it)->release();
        }
      }
      end_ns[tid] = runtime::now_ns();
      (void)sink;
    });
    std::uint64_t last = 0;
    for (auto e : end_ns) last = std::max(last, e);
    const double seconds =
        static_cast<double>(last -
                            start_ns.load(std::memory_order_relaxed)) *
        1e-9;
    const double mops =
        static_cast<double>(iters) * threads / seconds * 1e-6;
    if (mops > best) best = mops;
  }
  return best;
}

// The hmcs-tree workload drives the typed tree directly (the registry's
// HMCS entry is the two-level topology shape; the per-level hooks are
// priced on a deeper climb).
template <typename Lock>
double tree_mops(std::uint32_t threads, std::uint64_t iters,
                 std::uint32_t reps) {
  double best = 0.0;
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    Lock lock(std::vector<std::uint32_t>{2, 2});
    runtime::SenseBarrier start(threads);
    std::atomic<std::uint64_t> start_ns{0};
    std::vector<std::uint64_t> end_ns(threads, 0);
    runtime::ThreadTeam::run(threads, [&](std::uint32_t tid) {
      typename Lock::Context ctx;
      std::uint64_t sink = 0;
      start.arrive_and_wait();
      if (tid == 0) {
        start_ns.store(runtime::now_ns(), std::memory_order_relaxed);
      }
      for (std::uint64_t i = 0; i < iters; ++i) {
        lock.acquire(ctx);
        sink ^= runtime::busy_work(4, sink + i);  // short CS
        lock.release(ctx);
      }
      end_ns[tid] = runtime::now_ns();
      (void)sink;
    });
    std::uint64_t last = 0;
    for (auto e : end_ns) last = std::max(last, e);
    const double seconds =
        static_cast<double>(last -
                            start_ns.load(std::memory_order_relaxed)) *
        1e-9;
    const double mops =
        static_cast<double>(iters) * threads / seconds * 1e-6;
    if (mops > best) best = mops;
  }
  return best;
}

struct Row {
  std::string workload;  // "single" | "nested" | "hmcs-tree"
  std::string lock;
  std::uint32_t threads = 0;
  double raw_mops = 0;
  double shield_mops = 0;
  double lockdep_mops = 0;
  double engine_mops = 0;

  double lockdep_over_shield() const {
    return lockdep_mops > 0 ? shield_mops / lockdep_mops : 0.0;
  }
  // The acceptance ratio for the engine-routed stack: adaptive rules +
  // lockdep over the bare ownership layer, target < 2x on `single`.
  double engine_over_shield() const {
    return engine_mops > 0 ? shield_mops / engine_mops : 0.0;
  }
};

Row measure(const std::string& workload, const std::string& name,
            std::uint32_t threads, std::uint64_t iters,
            std::uint32_t reps) {
  const bool nested = workload == "nested";
  auto config = [&](const std::string& algo) {
    std::vector<std::string> v{algo};
    if (nested) v.push_back(algo);  // distinct inner instance
    return v;
  };
  Row r;
  r.workload = workload;
  r.lock = name;
  r.threads = threads;
  {
    lockdep::LockdepModeGuard off(lockdep::LockdepMode::kOff);
    r.raw_mops = best_mops(config(name), threads, iters, reps);
    r.shield_mops =
        best_mops(config(shielded_name(name)), threads, iters, reps);
  }
  {
    lockdep::LockdepModeGuard on(lockdep::LockdepMode::kReport);
    r.lockdep_mops =
        best_mops(config(shielded_name(name)), threads, iters, reps);
    response::ResponseRulesGuard adaptive(
        response::adaptive_policy_spec());
    r.engine_mops =
        best_mops(config(shielded_name(name)), threads, iters, reps);
  }
  return r;
}

Row measure_hmcs_tree(std::uint32_t threads, std::uint64_t iters,
                      std::uint32_t reps) {
  using Tree = BasicHmcsLock<kOriginal>;
  using Shielded = Shield<Tree>;
  Row r;
  r.workload = "hmcs-tree";
  r.lock = "HMCS{2,2}";
  r.threads = threads;
  {
    lockdep::LockdepModeGuard off(lockdep::LockdepMode::kOff);
    r.raw_mops = tree_mops<Tree>(threads, iters, reps);
    r.shield_mops = tree_mops<Shielded>(threads, iters, reps);
  }
  {
    lockdep::LockdepModeGuard on(lockdep::LockdepMode::kReport);
    r.lockdep_mops = tree_mops<Shielded>(threads, iters, reps);
    response::ResponseRulesGuard adaptive(
        response::adaptive_policy_spec());
    r.engine_mops = tree_mops<Shielded>(threads, iters, reps);
  }
  return r;
}

void print_rows(const std::vector<Row>& rows) {
  std::string last_key;
  for (const auto& r : rows) {
    const std::string key =
        r.workload + "/" + std::to_string(r.threads);
    if (key != last_key) {
      std::printf("--- workload = %s, threads = %u ---\n",
                  r.workload.c_str(), r.threads);
      std::printf("%-8s %10s %12s %13s %12s %18s %17s\n", "Lock",
                  "raw Mops", "shield Mops", "lockdep Mops",
                  "engine Mops", "lockdep/shield x", "engine/shield x");
      last_key = key;
    }
    std::printf("%-8s %10.2f %12.2f %13.2f %12.2f %17.2fx %16.2fx\n",
                r.lock.c_str(), r.raw_mops, r.shield_mops, r.lockdep_mops,
                r.engine_mops, r.lockdep_over_shield(),
                r.engine_over_shield());
    std::fflush(stdout);
  }
}

bool write_json(const char* path, const std::vector<Row>& rows,
                std::uint32_t max_threads, std::uint32_t reps,
                std::uint64_t iters) {
  return bench::write_bench_json(
      path, "lockdep_overhead", max_threads, reps, iters,
      [&](bench::JsonWriter& w) {
        for (const auto& r : rows) {
          w.begin_object();
          w.field("workload", r.workload);
          w.field("lock", r.lock);
          w.field("threads", r.threads);
          w.field("raw_mops", r.raw_mops);
          w.field("shield_mops", r.shield_mops);
          w.field("lockdep_mops", r.lockdep_mops);
          w.field("engine_mops", r.engine_mops);
          w.field("lockdep_over_shield", r.lockdep_over_shield());
          w.field("engine_over_shield", r.engine_over_shield());
          w.end_object();
        }
      });
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resilock::harness;

  const char* json_path = bench::json_out_path(argc, argv);

  const std::uint32_t max_threads = env_max_threads();
  const std::uint32_t reps = env_reps();
  const std::uint64_t iters =
      static_cast<std::uint64_t>(50000 * env_scale());

  std::printf(
      "=== Lockdep overhead: dependency tracking over the ownership "
      "shield ===\n"
      "(best of %u reps, %llu ops/thread; lockdep/shield x is the "
      "acceptance ratio, target < 2x on `single`)\n\n",
      reps, static_cast<unsigned long long>(iters));

  const std::vector<std::string> single_locks = {"TAS", "Ticket", "ABQL",
                                                 "MCS", "CLH",    "HMCS"};
  const std::vector<std::string> nested_locks = {"TAS", "Ticket", "MCS"};

  std::vector<Row> rows;
  for (std::uint32_t threads : {1u, max_threads}) {
    for (const auto& name : single_locks) {
      rows.push_back(measure("single", name, threads, iters, reps));
    }
    for (const auto& name : nested_locks) {
      rows.push_back(measure("nested", name, threads, iters, reps));
    }
    rows.push_back(measure_hmcs_tree(threads, iters, reps));
  }
  print_rows(rows);

  std::printf(
      "\nraw     = unprotected original protocol.\n"
      "shield  = shield<lock>, lockdep off: the ownership layer alone.\n"
      "lockdep = shield<lock>, RESILOCK_LOCKDEP=report: + acquisition\n"
      "          stack and order-graph probes (the interposer's default "
      "stack).\n"
      "engine  = lockdep + RESILOCK_POLICY=adaptive rules installed: the\n"
      "          full engine-routed verdict pipeline.\n");

  if (json_path != nullptr &&
      !write_json(json_path, rows, max_threads, reps, iters)) {
    return 1;
  }
  return 0;
}
