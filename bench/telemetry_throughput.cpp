// Telemetry pipeline throughput: can the background collector keep up
// with misuse/span emission at production rates, and what does a live
// collector cost the emit path?
//
// Three phases:
//
//   emit-path   one thread times TraceBuffer::emit with no consumer
//               (baseline: the rings fill and the overflow takes the
//               counted-drop path) and again with the collector
//               running (pushes mostly succeed and are drained). The
//               ratio is the observability tax on the wait-free emit
//               path; the repo's standing budget for a protection or
//               telemetry layer is 2x.
//
//   drain       N producers emit flat out while the collector drains
//               into a counting sink; reports sustained delivered
//               events/sec through the background thread plus the
//               exact-accounting check the rings guarantee:
//               emitted == delivered + dropped after the final drain.
//
//   perfetto    a shielded lock is hammered with span tracing on while
//               the collector streams into a chrome-trace sink
//               (--trace <path>, default telemetry_trace.json). CI
//               parses the document to prove the artifact is loadable.
//
// Scaling mirrors the other benches: RESILOCK_SCALE scales event
// counts, RESILOCK_MAX_THREADS caps producers; `--json out.json`
// emits the table machine-readably for BENCH_telemetry.json.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/tas.hpp"
#include "json_writer.hpp"
#include "lockdep/event_ring.hpp"
#include "platform/env.hpp"
#include "runtime/barrier.hpp"
#include "runtime/thread_team.hpp"
#include "runtime/timer.hpp"
#include "shield/shield.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sink.hpp"

namespace {

using namespace resilock;
using lockdep::EventKind;
using lockdep::TraceBuffer;
using telemetry::Collector;

class CountingSink final : public telemetry::Sink {
 public:
  const char* name() const noexcept override { return "counting"; }
  void consume(const lockdep::TraceEvent&) override { ++count_; }
  void flush() override {}
  void close() override {}
  std::uint64_t written() const noexcept override { return count_; }

 private:
  std::uint64_t count_ = 0;
};

struct PipelineRun {
  std::uint32_t threads = 0;
  std::uint64_t emitted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  double seconds = 0;
  double emit_mevs = 0;     // producer-side emit rate
  double deliver_mevs = 0;  // collector-side sustained drain rate
  bool exact = false;
};

// Producers hammer emit() flat out; the collector drains live. The
// run is timed from barrier release to the last producer's finish;
// delivery throughput counts everything the collector moved in that
// window plus the final drain (all of it work the collector did).
PipelineRun run_pipeline(std::uint32_t threads, std::uint64_t per_thread) {
  auto& tb = TraceBuffer::instance();
  Collector& c = Collector::instance();
  tb.drain_all();  // start clean

  const std::uint64_t emitted0 = tb.emitted();
  const std::uint64_t dropped0 = tb.dropped();
  const std::uint64_t delivered0 = c.stats().events_delivered;

  c.add_sink(std::make_unique<CountingSink>());
  c.start();

  static int marker = 0;
  runtime::SenseBarrier start(threads);
  std::atomic<std::uint64_t> start_ns{0};
  std::vector<std::uint64_t> end_ns(threads, 0);
  runtime::ThreadTeam::run(threads, [&](std::uint32_t tid) {
    start.arrive_and_wait();
    if (tid == 0) {
      start_ns.store(runtime::now_ns(), std::memory_order_relaxed);
    }
    for (std::uint64_t i = 0; i < per_thread; ++i) {
      tb.emit(EventKind::kNonOwnerUnlock, &marker,
              static_cast<std::uint16_t>(tid));
    }
    end_ns[tid] = runtime::now_ns();
  });
  std::uint64_t last = 0;
  for (auto e : end_ns) last = std::max(last, e);
  c.stop();  // final drain: nothing left queued

  PipelineRun r;
  r.threads = threads;
  r.emitted = tb.emitted() - emitted0;
  r.dropped = tb.dropped() - dropped0;
  r.delivered = c.stats().events_delivered - delivered0;
  r.seconds = static_cast<double>(
                  last - start_ns.load(std::memory_order_relaxed)) *
              1e-9;
  r.emit_mevs = static_cast<double>(r.emitted) / r.seconds * 1e-6;
  r.deliver_mevs = static_cast<double>(r.delivered) / r.seconds * 1e-6;
  r.exact = r.emitted == r.delivered + r.dropped;
  return r;
}

// ns per emit() call, single-threaded.
double time_emit_ns(std::uint64_t events) {
  auto& tb = TraceBuffer::instance();
  static int marker = 0;
  const std::uint64_t t0 = runtime::now_ns();
  for (std::uint64_t i = 0; i < events; ++i) {
    tb.emit(EventKind::kDoubleUnlock, &marker);
  }
  const std::uint64_t t1 = runtime::now_ns();
  return static_cast<double>(t1 - t0) / static_cast<double>(events);
}

const char* trace_out_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) return argv[i + 1];
  }
  return "telemetry_trace.json";
}

}  // namespace

int main(int argc, char** argv) {
  // Throughput wants deep rings: with the default 512 slots a flat-out
  // producer laps the collector between wakeups and everything past the
  // first lap drops (counted, but boring). 64k slots is the realistic
  // production setting for heavy tracing; the env still wins if set.
  ::setenv("RESILOCK_RING_CAPACITY", "65536", /*overwrite=*/0);
  const double scale = platform::env_double("RESILOCK_SCALE", 1.0);
  const std::uint32_t max_threads =
      platform::env_u32("RESILOCK_MAX_THREADS", 4);
  const std::uint64_t per_thread = std::max<std::uint64_t>(
      10000, static_cast<std::uint64_t>(2000000.0 * scale));
  const char* trace_path = trace_out_path(argc, argv);

  auto& tb = TraceBuffer::instance();
  Collector& c = Collector::instance();

  // ------------------------------------------------------------------
  // Phase 1: emit-path cost, idle vs live collector.
  // ------------------------------------------------------------------
  tb.drain_all();
  const double emit_ns_idle = time_emit_ns(per_thread);
  c.add_sink(std::make_unique<CountingSink>());
  c.start();
  const double emit_ns_live = time_emit_ns(per_thread);
  c.stop();
  const double emit_ratio = emit_ns_live / emit_ns_idle;
  std::printf("emit path: idle %.1f ns/ev, collector live %.1f ns/ev "
              "(%.2fx)\n",
              emit_ns_idle, emit_ns_live, emit_ratio);

  // ------------------------------------------------------------------
  // Phase 2: sustained drain throughput, 1..max producers.
  // ------------------------------------------------------------------
  std::vector<PipelineRun> runs;
  std::vector<std::uint32_t> axis{1};
  if (max_threads > 1) axis.push_back(max_threads);
  std::printf("%8s %12s %12s %12s %10s %10s %6s\n", "threads", "emitted",
              "delivered", "dropped", "emit M/s", "drain M/s", "exact");
  for (const std::uint32_t t : axis) {
    runs.push_back(run_pipeline(t, per_thread));
    const PipelineRun& r = runs.back();
    std::printf("%8u %12llu %12llu %12llu %10.2f %10.2f %6s\n", r.threads,
                static_cast<unsigned long long>(r.emitted),
                static_cast<unsigned long long>(r.delivered),
                static_cast<unsigned long long>(r.dropped), r.emit_mevs,
                r.deliver_mevs, r.exact ? "yes" : "NO");
  }

  // ------------------------------------------------------------------
  // Phase 3: perfetto document from real shielded-lock spans.
  // ------------------------------------------------------------------
  std::uint64_t perfetto_events = 0;
  {
    tb.drain_all();
    lockdep::SpanTracingGuard spans(true);
    c.add_sink(telemetry::make_perfetto_sink(trace_path));
    c.start();
    const std::uint32_t span_threads = std::min<std::uint32_t>(
        2, std::max<std::uint32_t>(1, max_threads));
    const std::uint64_t span_iters =
        std::max<std::uint64_t>(1000, per_thread / 100);
    Shield<TasLock> lock;
    runtime::ThreadTeam::run(span_threads, [&](std::uint32_t) {
      for (std::uint64_t i = 0; i < span_iters; ++i) {
        lock.acquire();
        lock.release();
      }
    });
    // A few instants so the timeline shows misuse next to the spans.
    lock.release();  // double unlock, intercepted and traced
    c.stop();
    perfetto_events = c.stats().events_written;
    std::printf("perfetto: %llu events -> %s\n",
                static_cast<unsigned long long>(perfetto_events),
                trace_path);
  }

  if (const char* json = bench::json_out_path(argc, argv)) {
    const bool ok = bench::write_bench_json(
        json, "telemetry_throughput", max_threads, 1, per_thread,
        [&](bench::JsonWriter& w) {
          w.begin_object();
          w.field("phase", "emit_path");
          w.field("emit_ns_idle", emit_ns_idle);
          w.field("emit_ns_live", emit_ns_live);
          w.field("emit_overhead_ratio", emit_ratio);
          w.end_object();
          for (const PipelineRun& r : runs) {
            w.begin_object();
            w.field("phase", "drain");
            w.field("threads", r.threads);
            w.field("events_emitted", r.emitted);
            w.field("events_delivered", r.delivered);
            w.field("events_dropped", r.dropped);
            w.field("seconds", r.seconds);
            w.field("emit_mevs", r.emit_mevs);
            w.field("deliver_mevs", r.deliver_mevs);
            w.field("accounting_exact", r.exact);
            w.end_object();
          }
          w.begin_object();
          w.field("phase", "perfetto");
          w.field("trace_path", trace_path);
          w.field("events_written", perfetto_events);
          w.end_object();
        });
    if (!ok) return 1;
  }
  return 0;
}
