// Shield cost vs. native in-protocol checks.
//
// The paper's Table 2 prices the bespoke kResilient fixes (one extra
// load in release(), CAS instead of SWAP, ...). The ownership shield
// (src/shield/) buys the same protection generically — one thread-local
// held-locks probe per acquire/release plus an owner-tag store — so the
// question this bench answers is: what does the generic layer cost
// relative to (a) the unprotected original, (b) the hand-written
// resilient fix, and (c) both combined (belt and braces)?
//
// Methodology mirrors the harness (§6): every thread hammers one shared
// lock with a small critical section behind a start barrier; best of
// RESILOCK_REPS runs; ops scaled by RESILOCK_SCALE; thread axis {1, max}
// with max from RESILOCK_MAX_THREADS. Lockdep is pinned OFF for the
// whole run so this bench prices the ownership layer in isolation
// (bench/lockdep_overhead.cpp prices the dependency layer on top).
//
// `--json out.json` additionally emits the table machine-readably for
// BENCH_*.json trajectory tracking.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/lock_registry.hpp"
#include "core/resilience.hpp"
#include "harness/evaluation.hpp"
#include "json_writer.hpp"
#include "lockdep/lockdep.hpp"
#include "response/response.hpp"
#include "runtime/barrier.hpp"
#include "runtime/thread_team.hpp"
#include "runtime/timer.hpp"

namespace {

using namespace resilock;

double best_mops(const std::string& name, Resilience r,
                 std::uint32_t threads, std::uint64_t iters,
                 std::uint32_t reps) {
  double best = 0.0;
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    auto lock = make_lock(name, r);
    runtime::SenseBarrier start(threads);
    // Timed region: from barrier release to the last thread's finish
    // (all threads leave the barrier together; any one of them can
    // stamp the start).
    std::atomic<std::uint64_t> start_ns{0};
    std::vector<std::uint64_t> end_ns(threads, 0);
    runtime::ThreadTeam::run(threads, [&](std::uint32_t tid) {
      std::uint64_t sink = 0;
      start.arrive_and_wait();
      if (tid == 0) {
        start_ns.store(runtime::now_ns(), std::memory_order_relaxed);
      }
      for (std::uint64_t i = 0; i < iters; ++i) {
        lock->acquire();
        sink ^= runtime::busy_work(4, sink + i);  // short CS
        lock->release();
      }
      end_ns[tid] = runtime::now_ns();
      (void)sink;
    });
    std::uint64_t last = 0;
    for (auto e : end_ns) last = std::max(last, e);
    const double seconds =
        static_cast<double>(last -
                            start_ns.load(std::memory_order_relaxed)) *
        1e-9;
    const double mops =
        static_cast<double>(iters) * threads / seconds * 1e-6;
    if (mops > best) best = mops;
  }
  return best;
}

double pct_overhead(double base, double variant) {
  return (base / variant - 1.0) * 100.0;
}

struct Row {
  std::string lock;
  std::uint32_t threads = 0;
  double orig_mops = 0;
  double resil_mops = 0;
  double shield_mops = 0;
  double shield_resil_mops = 0;
  // shield<lock> with the adaptive RESILOCK_POLICY rule set installed:
  // the engine-routed verdict pipeline plus live contention telemetry.
  double engine_mops = 0;
};

bool write_json(const char* path, const std::vector<Row>& rows,
                std::uint32_t max_threads, std::uint32_t reps,
                std::uint64_t iters) {
  return bench::write_bench_json(
      path, "shield_overhead", max_threads, reps, iters,
      [&](bench::JsonWriter& w) {
        for (const auto& r : rows) {
          w.begin_object();
          w.field("lock", r.lock);
          w.field("threads", r.threads);
          w.field("orig_mops", r.orig_mops);
          w.field("resil_mops", r.resil_mops);
          w.field("shield_mops", r.shield_mops);
          w.field("shield_resil_mops", r.shield_resil_mops);
          w.field("engine_mops", r.engine_mops);
          w.end_object();
        }
      });
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resilock::harness;

  const char* json_path = bench::json_out_path(argc, argv);

  // Price the ownership layer alone, whatever RESILOCK_LOCKDEP says.
  lockdep::LockdepModeGuard lockdep_off(lockdep::LockdepMode::kOff);

  const std::uint32_t max_threads = env_max_threads();
  const std::uint32_t reps = env_reps();
  const std::uint64_t iters =
      static_cast<std::uint64_t>(50000 * env_scale());

  std::printf(
      "=== Shield overhead: generic ownership shield vs native "
      "in-protocol checks ===\n"
      "(best of %u reps, %llu ops/thread; %% overhead is relative to the "
      "original protocol)\n\n",
      reps, static_cast<unsigned long long>(iters));

  const std::vector<std::string> locks = {"TAS", "Ticket", "ABQL",
                                          "MCS",  "CLH",   "HMCS"};
  std::vector<Row> rows;
  for (std::uint32_t threads : {1u, max_threads}) {
    std::printf("--- threads = %u ---\n", threads);
    std::printf("%-8s %12s | %10s %12s %14s %10s\n", "Lock", "orig Mops",
                "resil %", "shield %", "shield+resil %", "engine %");
    for (const auto& name : locks) {
      Row r;
      r.lock = name;
      r.threads = threads;
      r.orig_mops = best_mops(name, kOriginal, threads, iters, reps);
      r.resil_mops = best_mops(name, kResilient, threads, iters, reps);
      r.shield_mops =
          best_mops(shielded_name(name), kOriginal, threads, iters, reps);
      r.shield_resil_mops =
          best_mops(shielded_name(name), kResilient, threads, iters, reps);
      {
        // Same shielded lock, but with the adaptive escalation rules
        // installed so every verdict would route through the engine.
        response::ResponseRulesGuard adaptive(
            response::adaptive_policy_spec());
        r.engine_mops = best_mops(shielded_name(name), kOriginal, threads,
                                  iters, reps);
      }
      std::printf("%-8s %12.2f | %9.2f%% %11.2f%% %13.2f%% %9.2f%%\n",
                  name.c_str(), r.orig_mops,
                  pct_overhead(r.orig_mops, r.resil_mops),
                  pct_overhead(r.orig_mops, r.shield_mops),
                  pct_overhead(r.orig_mops, r.shield_resil_mops),
                  pct_overhead(r.orig_mops, r.engine_mops));
      std::fflush(stdout);
      rows.push_back(r);
    }
    std::printf("\n");
  }
  std::printf(
      "resil        = the paper's in-protocol fix (Table 2's subject).\n"
      "shield       = shield<lock> over the ORIGINAL protocol: all\n"
      "               protection comes from the generic ownership layer.\n"
      "shield+resil = shield over the resilient flavor (defense in "
      "depth).\n"
      "engine       = shield<lock> with RESILOCK_POLICY=adaptive rules:\n"
      "               the response-engine verdict pipeline armed.\n"
      "Negative values are measurement noise.\n");

  if (json_path != nullptr &&
      !write_json(json_path, rows, max_threads, reps, iters)) {
    return 1;
  }
  return 0;
}
