// Minimal streaming JSON writer for bench output (--json out.json).
//
// The benches emit flat records (strings, numbers, booleans, nested
// objects/arrays) for BENCH_*.json trajectory tracking; this writer
// keeps them valid JSON without dragging in a library dependency.
// Strings are escaped for the characters bench data can contain
// (quotes, backslashes, control chars) — enough for algorithm names
// like "shield<MCS>".
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace resilock::bench {

class JsonWriter {
 public:
  explicit JsonWriter(std::FILE* f) : f_(f) { first_.push_back(true); }

  void begin_object(const char* key = nullptr) {
    sep(key);
    std::fputc('{', f_);
    first_.push_back(true);
  }
  void end_object() {
    first_.pop_back();
    std::fputc('}', f_);
  }
  void begin_array(const char* key = nullptr) {
    sep(key);
    std::fputc('[', f_);
    first_.push_back(true);
  }
  void end_array() {
    first_.pop_back();
    std::fputc(']', f_);
  }

  void field(const char* key, const std::string& v) {
    sep(key);
    write_string(v);
  }
  void field(const char* key, const char* v) {
    field(key, std::string(v));
  }
  void field(const char* key, double v) {
    sep(key);
    std::fprintf(f_, "%.6g", v);
  }
  void field(const char* key, std::uint64_t v) {
    sep(key);
    std::fprintf(f_, "%llu", static_cast<unsigned long long>(v));
  }
  void field(const char* key, std::uint32_t v) {
    field(key, static_cast<std::uint64_t>(v));
  }
  void field(const char* key, bool v) {
    sep(key);
    std::fputs(v ? "true" : "false", f_);
  }

 private:
  void sep(const char* key) {
    if (!first_.back()) std::fputc(',', f_);
    first_.back() = false;
    if (key != nullptr) {
      write_string(key);
      std::fputc(':', f_);
    }
  }

  void write_string(const std::string& s) {
    std::fputc('"', f_);
    for (const char c : s) {
      switch (c) {
        case '"': std::fputs("\\\"", f_); break;
        case '\\': std::fputs("\\\\", f_); break;
        case '\n': std::fputs("\\n", f_); break;
        case '\t': std::fputs("\\t", f_); break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            std::fprintf(f_, "\\u%04x", c);
          } else {
            std::fputc(c, f_);
          }
      }
    }
    std::fputc('"', f_);
  }

  std::FILE* f_;
  std::vector<bool> first_;  // one "no element emitted yet" flag per level
};

// Scans argv for `--json <path>`. Returns nullptr (and complains) when
// the flag is present without a filename, so a typo is not silently a
// table-only run.
inline const char* json_out_path(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") != 0) continue;
    if (i + 1 < argc) return argv[i + 1];
    std::fprintf(stderr, "--json requires an output path; ignoring\n");
    return nullptr;
  }
  return nullptr;
}

// Shared envelope for the overhead benches: opens `path`, writes the
// common header fields, positions `emit` inside the "results" array,
// and closes the document. Returns false when the file cannot be
// opened.
template <typename EmitRows>
bool write_bench_json(const char* path, const char* bench_name,
                      std::uint32_t max_threads, std::uint32_t reps,
                      std::uint64_t iters_per_thread, EmitRows&& emit) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return false;
  }
  JsonWriter w(f);
  w.begin_object();
  w.field("bench", bench_name);
  w.field("max_threads", max_threads);
  w.field("reps", reps);
  w.field("iters_per_thread", iters_per_thread);
  w.begin_array("results");
  emit(w);
  w.end_array();
  w.end_object();
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

}  // namespace resilock::bench
