// Ablation: the cost of each individual protection delta (paper §6's
// explanation of where Table 2's overhead comes from):
//   * TAS    — SWAP acquire vs CAS acquire, and the extra release load;
//   * Ticket — the extra load in release (the paper's stated cause of
//              the Radiosity/Raytrace/Streamcluster/Synthetic overheads);
//   * MCS    — the I.locked marker and I.next scrub;
//   * CLH    — the I.prev null-check and reset;
//   * ABQL   — the Place INVALID discipline;
//   * GT     — the holder-array check.
// All single-threaded: this isolates the instruction cost of the fix
// from contention effects.
#include <benchmark/benchmark.h>

#include "core/abql.hpp"
#include "core/clh.hpp"
#include "core/graunke_thakkar.hpp"
#include "core/hemlock.hpp"
#include "core/mcs.hpp"
#include "core/mcs_k42.hpp"
#include "core/tas.hpp"
#include "core/ticket.hpp"

namespace {

using namespace resilock;

template <typename Lock>
void BM_PlainCycle(benchmark::State& state) {
  Lock lock;
  for (auto _ : state) {
    lock.acquire();
    benchmark::DoNotOptimize(&lock);
    lock.release();
  }
  state.SetItemsProcessed(state.iterations());
}

template <typename Lock>
void BM_CtxCycle(benchmark::State& state) {
  Lock lock;
  typename Lock::Context ctx;
  for (auto _ : state) {
    lock.acquire(ctx);
    benchmark::DoNotOptimize(&lock);
    lock.release(ctx);
  }
  state.SetItemsProcessed(state.iterations());
}

template <typename Lock>
void BM_NodeCycle(benchmark::State& state) {
  Lock lock;
  typename Lock::QNode node;
  for (auto _ : state) {
    lock.acquire(node);
    benchmark::DoNotOptimize(&lock);
    lock.release(node);
  }
  state.SetItemsProcessed(state.iterations());
}

// The BENCHMARK macro cannot hold commas in template arguments.
using TasSwapOriginal = BasicTasLock<kOriginal, TasVariant::kTas>;
using TasSwapResilient = BasicTasLock<kResilient, TasVariant::kTas>;

}  // namespace

using namespace resilock;  // benchmark registrations below use lock names

// TAS: the acquire-side delta is SWAP -> CAS; the release-side delta is
// the owner-check load.
BENCHMARK(BM_PlainCycle<TasSwapOriginal>)
    ->Name("ablation/TAS_swap_acquire/original");
BENCHMARK(BM_PlainCycle<TasSwapResilient>)
    ->Name("ablation/TAS_cas_acquire/resilient");
BENCHMARK(BM_PlainCycle<TatasLock>)->Name("ablation/TATAS/original");
BENCHMARK(BM_PlainCycle<TatasLockResilient>)
    ->Name("ablation/TATAS/resilient");

// Ticket: one extra load + one extra store in release.
BENCHMARK(BM_PlainCycle<TicketLock>)->Name("ablation/Ticket/original");
BENCHMARK(BM_PlainCycle<TicketLockResilient>)
    ->Name("ablation/Ticket/resilient");

// MCS: locked marker + next scrub.
BENCHMARK(BM_NodeCycle<McsLock>)->Name("ablation/MCS/original");
BENCHMARK(BM_NodeCycle<McsLockResilient>)->Name("ablation/MCS/resilient");

// CLH: prev check + reset (the paper calls it "outside the critical
// path" — this measures exactly how close to free it is).
BENCHMARK(BM_CtxCycle<ClhLock>)->Name("ablation/CLH/original");
BENCHMARK(BM_CtxCycle<ClhLockResilient>)->Name("ablation/CLH/resilient");

// ABQL: Place INVALID discipline.
BENCHMARK(BM_CtxCycle<AndersonLock>)->Name("ablation/ABQL/original");
BENCHMARK(BM_CtxCycle<AndersonLockResilient>)
    ->Name("ablation/ABQL/resilient");

// GT: holder-array check.
BENCHMARK(BM_PlainCycle<GraunkeThakkarLock>)->Name("ablation/GT/original");
BENCHMARK(BM_PlainCycle<GraunkeThakkarLockResilient>)
    ->Name("ablation/GT/resilient");

// Hemlock: ACQ sentinel discipline.
BENCHMARK(BM_PlainCycle<Hemlock>)->Name("ablation/Hemlock/original");
BENCHMARK(BM_PlainCycle<HemlockResilient>)
    ->Name("ablation/Hemlock/resilient");

// MCS-K42: owner word maintenance.
BENCHMARK(BM_PlainCycle<McsK42Lock>)->Name("ablation/MCS_K42/original");
BENCHMARK(BM_PlainCycle<McsK42LockResilient>)
    ->Name("ablation/MCS_K42/resilient");

BENCHMARK_MAIN();
