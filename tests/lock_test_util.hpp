// Shared helpers for lock unit tests.
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdint>
#include <string>

#include "core/generic.hpp"
#include "runtime/thread_team.hpp"
#include "verify/checkers.hpp"

namespace resilock::test {

// gtest test names must be alphanumeric: registry names like "C-BO-BO"
// and "shield<TAS>" need mangling before use in parameterized suites.
inline std::string gtest_safe_name(std::string n) {
  for (auto& c : n) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return n;
}

// The canonical mutual-exclusion check: N threads increment a plain
// (non-atomic) counter under the lock; any lost update or checker
// violation fails. Works for PlainLock and ContextLock via generic
// dispatch; every thread gets its own context.
template <typename Lock>
void mutex_stress(Lock& lock, std::uint32_t threads, std::uint64_t iters) {
  std::uint64_t counter = 0;  // intentionally non-atomic
  verify::MutexChecker chk;
  runtime::ThreadTeam::run(threads, [&](std::uint32_t) {
    context_of_t<Lock> ctx;
    for (std::uint64_t i = 0; i < iters; ++i) {
      generic_acquire(lock, ctx);
      chk.enter();
      counter += 1;
      chk.exit();
      ASSERT_TRUE(generic_release(lock, ctx));
    }
  });
  EXPECT_EQ(counter, static_cast<std::uint64_t>(threads) * iters);
  EXPECT_EQ(chk.max_simultaneous(), 1);
}

// Same, with one context reused across iterations per thread (contexts
// are designed for reuse).
template <typename Lock>
void reuse_context_stress(Lock& lock, std::uint32_t threads,
                          std::uint64_t iters) {
  mutex_stress(lock, threads, iters);
}

}  // namespace resilock::test
