// Unit tests for the runtime substrate: barrier, thread team, RNG
// determinism, statistics, and timing helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>

#include "runtime/barrier.hpp"
#include "runtime/rng.hpp"
#include "runtime/stats.hpp"
#include "runtime/thread_team.hpp"
#include "runtime/timer.hpp"

namespace rr = resilock::runtime;

TEST(SenseBarrier, AllThreadsPassTogetherAcrossEpochs) {
  constexpr std::uint32_t kThreads = 4;
  constexpr int kEpochs = 50;
  rr::SenseBarrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::atomic<bool> mismatch{false};
  rr::ThreadTeam::run(kThreads, [&](std::uint32_t) {
    for (int e = 0; e < kEpochs; ++e) {
      counter.fetch_add(1);
      barrier.arrive_and_wait();
      // Between the two barriers everyone must observe the full epoch.
      if (counter.load() != static_cast<int>(kThreads) * (e + 1))
        mismatch.store(true);
      barrier.arrive_and_wait();
    }
  });
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(counter.load(), static_cast<int>(kThreads) * kEpochs);
}

TEST(SenseBarrier, SingleParticipantNeverBlocks) {
  rr::SenseBarrier barrier(1);
  for (int i = 0; i < 100; ++i) barrier.arrive_and_wait();
  SUCCEED();
}

TEST(ThreadTeam, RunsEveryIndexExactlyOnce) {
  std::atomic<std::uint32_t> mask{0};
  rr::ThreadTeam::run(8, [&](std::uint32_t i) {
    mask.fetch_or(1u << i);
  });
  EXPECT_EQ(mask.load(), 0xFFu);
}

TEST(ThreadTeam, ZeroThreadsIsANoop) {
  bool ran = false;
  rr::ThreadTeam::run(0, [&](std::uint32_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadTeam, SingleThreadRunsInline) {
  const auto caller = std::this_thread::get_id();
  std::thread::id body_id;
  rr::ThreadTeam::run(1, [&](std::uint32_t) {
    body_id = std::this_thread::get_id();
  });
  EXPECT_EQ(body_id, caller);
}

TEST(ThreadTeam, PropagatesFirstException) {
  EXPECT_THROW(
      rr::ThreadTeam::run(4,
                          [&](std::uint32_t i) {
                            if (i == 2) throw std::runtime_error("boom");
                          }),
      std::runtime_error);
}

TEST(Rng, DeterministicPerSeed) {
  rr::Xoshiro256ss a(42), b(42), c(43);
  bool all_equal = true, any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a(), vb = b(), vc = c();
    all_equal = all_equal && (va == vb);
    any_diff = any_diff || (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BoundedStaysInRange) {
  rr::Xoshiro256ss rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, BoundedCoversTheRange) {
  rr::Xoshiro256ss rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Stats, MinMaxMeanMedianStddev) {
  rr::RunStats s;
  for (double v : {4.0, 1.0, 3.0, 2.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, OddMedianAndSingleSample) {
  rr::RunStats s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  s.add(1.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
}

TEST(Stats, EmptyStatsThrow) {
  rr::RunStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.min(), std::logic_error);
  EXPECT_THROW(s.mean(), std::logic_error);
  EXPECT_THROW(s.median(), std::logic_error);
}

TEST(Stats, OverheadPercent) {
  EXPECT_NEAR(rr::overhead_percent(2.0, 2.1), 5.0, 1e-9);
  EXPECT_NEAR(rr::overhead_percent(2.0, 1.9), -5.0, 1e-9);
  EXPECT_DOUBLE_EQ(rr::overhead_percent(0.0, 1.0), 0.0);  // guarded
}

TEST(Timer, BusyWorkDependsOnUnits) {
  // The value chain must differ for different unit counts (prevents the
  // compiler from collapsing the workload).
  EXPECT_NE(rr::busy_work(10), rr::busy_work(11));
  EXPECT_EQ(rr::busy_work(10), rr::busy_work(10));
}

TEST(Timer, TimedSecondsIsPositiveAndOrdered) {
  const double t_small = rr::timed_seconds([] { rr::busy_work(1000); });
  EXPECT_GT(t_small, 0.0);
}

TEST(Timer, NowNsIsMonotonic) {
  const auto a = rr::now_ns();
  const auto b = rr::now_ns();
  EXPECT_LE(a, b);
}
