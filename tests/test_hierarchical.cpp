// Unit tests for the hierarchical locks: HMCS (§3.8.1), HCLH (§3.8.2),
// HBO (§3.8.3).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/hbo.hpp"
#include "core/hclh.hpp"
#include "core/hmcs.hpp"
#include "lock_test_util.hpp"
#include "verify/checkers.hpp"

using namespace resilock;
namespace rt = resilock::test;
namespace rv = resilock::verify;

namespace {
const platform::Topology& two_domains() {
  static const auto topo = platform::Topology::uniform(2, 2);
  return topo;
}
const platform::Topology& one_domain() {
  static const auto topo = platform::Topology::uniform(1, 64);
  return topo;
}
}  // namespace

// ------------------------------ HMCS ----------------------------------

template <typename L>
class HmcsTest : public ::testing::Test {};
using HmcsTypes = ::testing::Types<HmcsLock, HmcsLockResilient>;
TYPED_TEST_SUITE(HmcsTest, HmcsTypes);

TYPED_TEST(HmcsTest, SingleThreadRoundTrips) {
  TypeParam lock(two_domains());
  typename TypeParam::Context ctx;
  for (int i = 0; i < 100; ++i) {
    lock.acquire(ctx);
    EXPECT_TRUE(lock.release(ctx));
  }
}

TYPED_TEST(HmcsTest, MutualExclusionTwoDomains) {
  TypeParam lock(two_domains());
  rt::mutex_stress(lock, 4, 1500);
}

TYPED_TEST(HmcsTest, MutualExclusionSingleDomain) {
  TypeParam lock(one_domain());
  rt::mutex_stress(lock, 4, 1500);
}

TYPED_TEST(HmcsTest, MutualExclusionLowThreshold) {
  // threshold=1: every release goes through the parent — exercises the
  // kAcquireParent path constantly.
  TypeParam lock(two_domains(), 1);
  rt::mutex_stress(lock, 4, 1000);
}

TYPED_TEST(HmcsTest, CohortPassingStaysWithinThreshold) {
  TypeParam lock(one_domain(), 4);
  rt::mutex_stress(lock, 3, 1500);
}

TEST(HmcsResilient, MisuseRefusedOnFreshAndReleasedContexts) {
  HmcsLockResilient lock(two_domains());
  HmcsLockResilient::Context ctx;
  EXPECT_FALSE(lock.release(ctx));  // fresh: original would hang
  lock.acquire(ctx);
  EXPECT_TRUE(lock.release(ctx));
  EXPECT_FALSE(lock.release(ctx));  // released: detected again
  // Still functional.
  lock.acquire(ctx);
  EXPECT_TRUE(lock.release(ctx));
}

TEST(HmcsLeafCount, MatchesTopology) {
  HmcsLock lock(two_domains());
  EXPECT_EQ(lock.num_leaves(), 2u);
  HmcsLock single(one_domain());
  EXPECT_EQ(single.num_leaves(), 1u);
}

// ------------------------------ HCLH ----------------------------------

template <typename L>
class HclhTest : public ::testing::Test {};
using HclhTypes = ::testing::Types<HclhLock, HclhLockResilient>;
TYPED_TEST_SUITE(HclhTest, HclhTypes);

TYPED_TEST(HclhTest, SingleThreadRoundTrips) {
  TypeParam lock(two_domains());
  typename TypeParam::Context ctx;
  for (int i = 0; i < 100; ++i) {
    lock.acquire(ctx);
    EXPECT_TRUE(lock.release(ctx));
  }
}

TYPED_TEST(HclhTest, MutualExclusionTwoDomains) {
  TypeParam lock(two_domains());
  rt::mutex_stress(lock, 4, 1000);
}

TYPED_TEST(HclhTest, MutualExclusionSingleDomain) {
  TypeParam lock(platform::Topology::uniform(1, 64));
  rt::mutex_stress(lock, 4, 1000);
}

TEST(HclhImmunity, MisuseIsSideEffectFree) {
  // Paper Table 1: HCLH is the queue lock that needs no fix. A misused
  // release touches an un-enqueued node only.
  HclhLock lock(two_domains());
  HclhLock::Context cm;
  lock.acquire(cm);
  lock.release(cm);
  EXPECT_TRUE(lock.release(cm));  // misuse: benign no-op
  // Lock fully functional afterwards, including cross-thread.
  std::uint64_t counter = 0;
  runtime::ThreadTeam::run(2, [&](std::uint32_t) {
    HclhLock::Context c;
    for (int i = 0; i < 500; ++i) {
      lock.acquire(c);
      ++counter;
      lock.release(c);
    }
  });
  EXPECT_EQ(counter, 1000u);
  lock.acquire(cm);
  EXPECT_TRUE(lock.release(cm));
}

// ------------------------------- HBO -----------------------------------

template <typename L>
class HboTest : public ::testing::Test {};
using HboTypes = ::testing::Types<HboLock, HboLockResilient>;
TYPED_TEST_SUITE(HboTest, HboTypes);

TYPED_TEST(HboTest, SingleThreadRoundTrips) {
  TypeParam lock(two_domains());
  for (int i = 0; i < 100; ++i) {
    lock.acquire();
    EXPECT_TRUE(lock.release());
  }
}

TYPED_TEST(HboTest, MutualExclusionUnderContention) {
  TypeParam lock(two_domains());
  rt::mutex_stress(lock, 4, 2000);
}

TYPED_TEST(HboTest, TryAcquireSemantics) {
  TypeParam lock(two_domains());
  EXPECT_TRUE(lock.try_acquire());
  EXPECT_FALSE(lock.try_acquire());
  EXPECT_TRUE(lock.release());
}

TEST(HboResilient, NonOwnerReleaseRefused) {
  HboLockResilient lock(two_domains());
  EXPECT_FALSE(lock.release());
  lock.acquire();
  std::thread t([&] { EXPECT_FALSE(lock.release()); });
  t.join();
  EXPECT_TRUE(lock.release());
}

TEST(HboOriginal, NonOwnerReleaseSilentlyFrees) {
  HboLock lock(two_domains());
  lock.acquire();
  std::thread t([&] { EXPECT_TRUE(lock.release()); });
  t.join();
  EXPECT_TRUE(lock.try_acquire());  // lock was freed under the holder
  EXPECT_TRUE(lock.release());
}
