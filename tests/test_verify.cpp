// Unit tests for the verify substrate itself: the checkers must be
// trustworthy before the misuse matrix built on them can be.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "runtime/thread_team.hpp"
#include "verify/checkers.hpp"

namespace rv = resilock::verify;

TEST(MutexChecker, TracksSingleThread) {
  rv::MutexChecker chk;
  EXPECT_EQ(chk.current(), 0);
  chk.enter();
  EXPECT_EQ(chk.current(), 1);
  chk.exit();
  EXPECT_EQ(chk.current(), 0);
  EXPECT_EQ(chk.max_simultaneous(), 1);
  EXPECT_FALSE(chk.violated());
}

TEST(MutexChecker, RecordsOverlapAsViolation) {
  rv::MutexChecker chk;
  chk.enter();
  chk.enter();  // simulated second thread
  EXPECT_EQ(chk.current(), 2);
  EXPECT_TRUE(chk.violated());
  chk.exit();
  chk.exit();
  EXPECT_EQ(chk.max_simultaneous(), 2);  // high-water mark persists
}

TEST(MutexChecker, HighWaterMarkIsMonotonicUnderConcurrency) {
  rv::MutexChecker chk;
  resilock::runtime::ThreadTeam::run(4, [&](std::uint32_t) {
    for (int i = 0; i < 5000; ++i) {
      chk.enter();
      chk.exit();
    }
  });
  EXPECT_EQ(chk.current(), 0);
  EXPECT_GE(chk.max_simultaneous(), 1);
  EXPECT_LE(chk.max_simultaneous(), 4);
}

TEST(WaitFor, ReturnsTrueWhenPredicateBecomesTrue) {
  std::atomic<bool> flag{false};
  std::thread t([&] { flag.store(true); });
  EXPECT_TRUE(rv::wait_for([&] { return flag.load(); },
                           rv::milliseconds{2000}));
  t.join();
}

TEST(WaitFor, TimesOutOnFalsePredicate) {
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(rv::wait_for([] { return false; }, rv::milliseconds{50}));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, rv::milliseconds{45});
}

TEST(Probe, FinishedWithinDetectsCompletion) {
  rv::Probe quick([] {});
  EXPECT_TRUE(quick.finished_within(rv::milliseconds{2000}));
  quick.join();
}

TEST(Probe, FinishedWithinDetectsStall) {
  std::atomic<bool> release{false};
  rv::Probe stalled([&] {
    while (!release.load()) std::this_thread::yield();
  });
  EXPECT_FALSE(stalled.finished_within(rv::milliseconds{100}));
  release.store(true);
  EXPECT_TRUE(rv::wait_for([&] { return stalled.done(); },
                           rv::milliseconds{2000}));
  stalled.join();
}

TEST(Probe, DestructorJoinsCompletedThread) {
  { rv::Probe p([] {}); }  // must not leak or crash
  SUCCEED();
}
