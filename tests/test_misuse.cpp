// Integration tests over the misuse-matrix engine (the Table 1
// reproduction): every scripted scenario must match the paper's claims.
#include <gtest/gtest.h>

#include "verify/misuse_matrix.hpp"

using resilock::verify::MisuseReport;

namespace {

void expect_matches_paper(const MisuseReport& r) {
  EXPECT_EQ(r.violates_mutex, r.paper_violates)
      << r.lock << ": mutex-violation column";
  EXPECT_EQ(r.tm_starves, r.paper_tm) << r.lock << ": Tm-starvation column";
  EXPECT_TRUE(r.prevented) << r.lock
                           << ": resilient flavor failed to prevent";
}

}  // namespace

TEST(MisuseMatrix, Tas) {
  const auto r = resilock::verify::misuse_tas();
  expect_matches_paper(r);
  EXPECT_TRUE(r.detected);
  EXPECT_FALSE(r.others_starve);
}

TEST(MisuseMatrix, Ticket) {
  const auto r = resilock::verify::misuse_ticket();
  expect_matches_paper(r);
  EXPECT_TRUE(r.detected);
  EXPECT_TRUE(r.others_starve);  // the nowServing leap skips tickets
}

TEST(MisuseMatrix, Abql) {
  const auto r = resilock::verify::misuse_abql();
  expect_matches_paper(r);
  EXPECT_TRUE(r.detected);
  EXPECT_FALSE(r.others_starve);  // modulus acts as a safety guard
}

TEST(MisuseMatrix, GraunkeThakkar) {
  const auto r = resilock::verify::misuse_graunke_thakkar();
  expect_matches_paper(r);
  EXPECT_TRUE(r.detected);
  EXPECT_TRUE(r.others_starve);   // missed toggle strands the queue
  EXPECT_FALSE(r.violates_mutex); // GT never violates mutual exclusion
}

TEST(MisuseMatrix, Mcs) {
  const auto r = resilock::verify::misuse_mcs();
  expect_matches_paper(r);
  EXPECT_TRUE(r.detected);
  EXPECT_TRUE(r.tm_starves);  // case 1: Tm spins for a ghost successor
}

TEST(MisuseMatrix, Clh) {
  const auto r = resilock::verify::misuse_clh();
  expect_matches_paper(r);
  EXPECT_TRUE(r.detected);
  EXPECT_TRUE(r.violates_mutex);  // Figure 8 double-enqueue
}

TEST(MisuseMatrix, McsK42) {
  const auto r = resilock::verify::misuse_mcs_k42();
  expect_matches_paper(r);
  EXPECT_TRUE(r.detected);
  EXPECT_TRUE(r.others_starve);  // the legitimate holder's release hangs
}

TEST(MisuseMatrix, Hemlock) {
  const auto r = resilock::verify::misuse_hemlock();
  expect_matches_paper(r);
  EXPECT_TRUE(r.detected);
  EXPECT_TRUE(r.tm_starves);
  EXPECT_FALSE(r.violates_mutex);
}

TEST(MisuseMatrix, Hmcs) {
  const auto r = resilock::verify::misuse_hmcs();
  expect_matches_paper(r);
  EXPECT_TRUE(r.detected);
}

TEST(MisuseMatrix, Hclh) {
  const auto r = resilock::verify::misuse_hclh();
  expect_matches_paper(r);
  EXPECT_FALSE(r.detected);  // nothing to detect: immune
  EXPECT_FALSE(r.violates_mutex);
}

TEST(MisuseMatrix, Hbo) {
  const auto r = resilock::verify::misuse_hbo();
  expect_matches_paper(r);
  EXPECT_TRUE(r.detected);
}

TEST(MisuseMatrix, CohortTktTkt) {
  const auto r = resilock::verify::misuse_cohort_tkt_tkt();
  expect_matches_paper(r);
  EXPECT_TRUE(r.detected);
  EXPECT_TRUE(r.others_starve);  // both ticket levels corrupted
}

TEST(MisuseMatrix, CrwNp) {
  const auto r = resilock::verify::misuse_crw_np();
  expect_matches_paper(r);
  EXPECT_TRUE(r.violates_mutex);  // reader + writer overlap
  EXPECT_TRUE(r.others_starve);   // skewed indicator blocks all writers
}

TEST(MisuseMatrix, Peterson) {
  const auto r = resilock::verify::misuse_peterson();
  expect_matches_paper(r);
  EXPECT_FALSE(r.violates_mutex);
}

TEST(MisuseMatrix, Fischer) {
  const auto r = resilock::verify::misuse_fischer();
  expect_matches_paper(r);
  EXPECT_TRUE(r.detected);
}

TEST(MisuseMatrix, Lamport1) {
  const auto r = resilock::verify::misuse_lamport1();
  expect_matches_paper(r);
  EXPECT_TRUE(r.detected);
}

TEST(MisuseMatrix, Lamport2) {
  const auto r = resilock::verify::misuse_lamport2();
  expect_matches_paper(r);
  EXPECT_TRUE(r.detected);
}

TEST(MisuseMatrix, Bakery) {
  const auto r = resilock::verify::misuse_bakery();
  expect_matches_paper(r);
  EXPECT_FALSE(r.violates_mutex);
}
