// Unit tests for the reentrant lock wrapper (§3.9).
#include <gtest/gtest.h>

#include <thread>

#include "core/mcs_k42.hpp"
#include "core/reentrant.hpp"
#include "core/tas.hpp"
#include "core/ticket.hpp"
#include "lock_test_util.hpp"

using namespace resilock;
namespace rt = resilock::test;

template <typename L>
class ReentrantTest : public ::testing::Test {};
using ReentrantTypes =
    ::testing::Types<ReentrantLock<TatasLockResilient>,
                     ReentrantLock<TatasLock>,
                     ReentrantLock<TicketLockResilient>,
                     ReentrantLock<McsK42LockResilient>>;
TYPED_TEST_SUITE(ReentrantTest, ReentrantTypes);

TYPED_TEST(ReentrantTest, NestedAcquisitionSucceeds) {
  TypeParam lock;
  lock.acquire();
  lock.acquire();
  lock.acquire();
  EXPECT_EQ(lock.depth(), 3u);
  EXPECT_TRUE(lock.release());
  EXPECT_TRUE(lock.release());
  EXPECT_TRUE(lock.held_by_self());
  EXPECT_TRUE(lock.release());
  EXPECT_FALSE(lock.held_by_self());
}

TYPED_TEST(ReentrantTest, MutualExclusionUnderContention) {
  TypeParam lock;
  rt::mutex_stress(lock, 4, 1500);
}

TYPED_TEST(ReentrantTest, UnbalancedUnlockReturnsError) {
  // §3.9: ownership is checked before decrementing — errorcheck
  // semantics, immune by construction.
  TypeParam lock;
  EXPECT_FALSE(lock.release());  // never acquired
  lock.acquire();
  std::thread t([&] { EXPECT_FALSE(lock.release()); });  // non-owner
  t.join();
  EXPECT_TRUE(lock.release());
  EXPECT_FALSE(lock.release());  // more unlocks than locks (§1 case)
}

TYPED_TEST(ReentrantTest, TryAcquireNestsForOwner) {
  TypeParam lock;
  EXPECT_TRUE(lock.try_acquire());
  EXPECT_TRUE(lock.try_acquire());  // owner re-entry always succeeds
  std::thread t([&] { EXPECT_FALSE(lock.try_acquire()); });
  t.join();
  EXPECT_TRUE(lock.release());
  EXPECT_TRUE(lock.release());
}

TEST(Reentrant, NestedMutualExclusionStress) {
  ReentrantLock<TatasLockResilient> lock;
  std::uint64_t counter = 0;
  runtime::ThreadTeam::run(4, [&](std::uint32_t) {
    for (int i = 0; i < 1000; ++i) {
      lock.acquire();
      lock.acquire();  // nested
      ++counter;
      ASSERT_TRUE(lock.release());
      ASSERT_TRUE(lock.release());
    }
  });
  EXPECT_EQ(counter, 4000u);
}
