// Unit tests for the evaluation harness: app profiles, thread axis,
// run_app mechanics, and the paper's applicability gaps ('*' and '#').
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/lock_registry.hpp"
#include "harness/app_profiles.hpp"
#include "harness/evaluation.hpp"

namespace rh = resilock::harness;
using resilock::kOriginal;
using resilock::kResilient;

namespace {
// A tiny profile so harness tests run in milliseconds.
rh::AppProfile tiny(bool trylock = false, bool pow2 = false) {
  return {"tiny", 4, 4, 4, 400, trylock, pow2, rh::Metric::kSeconds};
}
}  // namespace

TEST(AppProfiles, TableTwoRosterComplete) {
  const auto& profiles = rh::app_profiles();
  ASSERT_EQ(profiles.size(), 10u);
  EXPECT_EQ(profiles.front().name, "Barnes");
  EXPECT_EQ(profiles.back().name, "Synthetic");
  EXPECT_EQ(profiles.back().metric, rh::Metric::kMopsPerSec);
  EXPECT_EQ(profiles.back().cs_work, 0u);  // empty critical section
}

TEST(AppProfiles, PaperConstraintsEncoded) {
  EXPECT_TRUE(rh::app_profile("Fluidanimate").uses_trylock);
  EXPECT_TRUE(rh::app_profile("Fluidanimate").pow2_threads_only);
  EXPECT_TRUE(rh::app_profile("Streamcluster").uses_trylock);
  EXPECT_TRUE(rh::app_profile("Ocean").pow2_threads_only);
  EXPECT_FALSE(rh::app_profile("Radiosity").uses_trylock);
  EXPECT_THROW(rh::app_profile("nope"), std::out_of_range);
}

TEST(ThreadAxis, PowersOfTwoPlusMax) {
  const auto axis = rh::thread_axis(48);
  ASSERT_GE(axis.size(), 2u);
  EXPECT_EQ(axis.front(), 1u);
  EXPECT_EQ(axis.back(), 48u);
  // 1,2,4,8,16,32,48 — the paper's Figure 14 axis.
  const std::vector<std::uint32_t> expect = {1, 2, 4, 8, 16, 32, 48};
  EXPECT_EQ(axis, expect);
}

TEST(ThreadAxis, ExactPowerOfTwoMaxNotDuplicated) {
  const auto axis = rh::thread_axis(8);
  const std::vector<std::uint32_t> expect = {1, 2, 4, 8};
  EXPECT_EQ(axis, expect);
}

TEST(RunApp, ProducesPositiveMetrics) {
  const auto res = rh::run_app(tiny(), "MCS", kResilient, 2, 2);
  ASSERT_TRUE(res.has_value());
  EXPECT_GT(res->seconds, 0.0);
  EXPECT_GT(res->mops, 0.0);
  EXPECT_DOUBLE_EQ(res->metric_value, res->seconds);
}

TEST(RunApp, Pow2ConstraintYieldsGap) {
  EXPECT_FALSE(rh::run_app(tiny(false, true), "MCS", kOriginal, 3, 1)
                   .has_value());  // the '#' cells of Figure 14
  EXPECT_TRUE(rh::run_app(tiny(false, true), "MCS", kOriginal, 4, 1)
                  .has_value());
}

TEST(RunApp, ClhSkippedForTrylockProfiles) {
  EXPECT_FALSE(rh::run_app(tiny(true), "CLH", kOriginal, 2, 1)
                   .has_value());  // the '*' cells of Figure 14
  EXPECT_TRUE(rh::run_app(tiny(true), "TAS", kOriginal, 2, 1).has_value());
}

TEST(RunApp, ZeroThreadsRejected) {
  EXPECT_FALSE(rh::run_app(tiny(), "MCS", kOriginal, 0, 1).has_value());
}

TEST(RunApp, AllTableTwoLocksRunTinyProfile) {
  for (const auto& name : resilock::table2_lock_names()) {
    const auto res = rh::run_app(tiny(), name, kResilient, 2, 1);
    ASSERT_TRUE(res.has_value()) << name;
    EXPECT_GT(res->seconds, 0.0) << name;
  }
}

TEST(OverheadCell, ComputesFiniteOverhead) {
  const auto cell = rh::overhead_cell(tiny(), "TAS", 2, 1);
  ASSERT_TRUE(cell.has_value());
  EXPECT_GT(*cell, -95.0);  // sanity: not nonsense
  EXPECT_LT(*cell, 2000.0);
}

TEST(OverheadCell, GapPropagates) {
  EXPECT_FALSE(rh::overhead_cell(tiny(true), "CLH", 2, 1).has_value());
}

TEST(EnvKnobs, DefaultsAreSane) {
  // (Environment may override; check only invariants.)
  EXPECT_GT(rh::env_scale(), 0.0);
  EXPECT_GE(rh::env_max_threads(), 1u);
  EXPECT_GE(rh::env_reps(), 1u);
}
