// Stress tests for the misuse-event transport (src/lockdep/
// event_ring.hpp) and the JSONL trace exporter (trace_export.hpp):
//   * EventRing wraparound — indices run past the capacity many times
//     over; FIFO order and drop accounting must stay exact;
//   * concurrent drain-while-writing — a producer thread emits through
//     TraceBuffer while a consumer drains, which is exactly the
//     SPSC contract the rings claim (TSan runs this in CI);
//   * the JSONL exporter — one well-formed line per drained event,
//     append semantics, verdict/label fields when present.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/rw/crw.hpp"
#include "core/tas.hpp"
#include "lockdep/event_ring.hpp"
#include "lockdep/lockdep.hpp"
#include "lockdep/trace_export.hpp"
#include "response/response.hpp"
#include "shield/rw_shield.hpp"
#include "shield/shield.hpp"

using namespace resilock;
using lockdep::EventKind;
using lockdep::EventRing;
using lockdep::TraceBuffer;
using lockdep::TraceEvent;

namespace {

TraceEvent make_event(std::uint64_t seq) {
  TraceEvent e;
  e.ns = seq;
  e.kind = EventKind::kDoubleUnlock;
  return e;
}

// The global buffer accumulates across tests; start clean.
void clear_trace() { TraceBuffer::instance().drain_all(); }

}  // namespace

// ---------------------------------------------------------------------
// EventRing wraparound.
// ---------------------------------------------------------------------

TEST(EventRing, FillDropAndDrainExactly) {
  EventRing r;
  const std::size_t extra = 17;
  for (std::uint64_t i = 0; i < EventRing::kCapacity + extra; ++i) {
    const bool pushed = r.push(make_event(i));
    EXPECT_EQ(pushed, i < EventRing::kCapacity) << i;
  }
  EXPECT_EQ(r.dropped(), extra);
  // The retained prefix comes out in FIFO order; the overflow is gone.
  TraceEvent e;
  for (std::uint64_t i = 0; i < EventRing::kCapacity; ++i) {
    ASSERT_TRUE(r.pop(e));
    EXPECT_EQ(e.ns, i);
  }
  EXPECT_FALSE(r.pop(e));
}

TEST(EventRing, IndicesWrapManyTimes) {
  // Interleaved push/pop far beyond the capacity: the power-of-two
  // masking must never lose or duplicate an event.
  EventRing r;
  std::uint64_t next_out = 0;
  TraceEvent e;
  for (std::uint64_t i = 0; i < 20 * EventRing::kCapacity; ++i) {
    ASSERT_TRUE(r.push(make_event(i)));
    if (i % 3 != 0) {  // drain slower than we fill, then catch up
      ASSERT_TRUE(r.pop(e));
      EXPECT_EQ(e.ns, next_out++);
    }
    if (i % 3 == 2) {
      ASSERT_TRUE(r.pop(e));
      EXPECT_EQ(e.ns, next_out++);
    }
  }
  while (r.pop(e)) EXPECT_EQ(e.ns, next_out++);
  EXPECT_EQ(next_out, 20 * EventRing::kCapacity);
  EXPECT_EQ(r.dropped(), 0u);
}

TEST(EventRing, ConcurrentProducerConsumer) {
  // The SPSC contract proper: one producer, one consumer, live. The
  // producer retries on a full ring (each refused attempt bumps
  // dropped(), but no accepted event may be lost, duplicated, or
  // reordered).
  EventRing r;
  constexpr std::uint64_t kEvents = 200000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      while (!r.push(make_event(i))) std::this_thread::yield();
    }
  });
  std::uint64_t next = 0;
  TraceEvent e;
  while (next < kEvents) {
    if (r.pop(e)) {
      ASSERT_EQ(e.ns, next);  // strict FIFO, nothing torn
      ++next;
    }
  }
  producer.join();
  EXPECT_FALSE(r.pop(e));
}

// ---------------------------------------------------------------------
// TraceBuffer: drain-while-writing.
// ---------------------------------------------------------------------

TEST(TraceBuffer, DrainWhileWriting) {
  clear_trace();
  auto& tb = TraceBuffer::instance();
  // A unique lock pointer marks this test's events among whatever other
  // tests left in other threads' rings.
  int marker = 0;
  constexpr std::uint64_t kEvents = 50000;
  const std::uint64_t dropped_before = tb.dropped();
  std::atomic<bool> done{false};
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      tb.emit(EventKind::kNonOwnerUnlock, &marker,
              static_cast<std::uint16_t>(i >> 16),
              static_cast<std::uint16_t>(i & 0xFFFF));
    }
    done.store(true, std::memory_order_release);
  });
  std::uint64_t received = 0, last_seq = 0;
  bool ordered = true;
  auto sink = [&](const TraceEvent& e) {
    if (e.lock != &marker) return;
    const std::uint64_t seq =
        (static_cast<std::uint64_t>(e.a) << 16) | e.b;
    if (received > 0 && seq <= last_seq) ordered = false;
    last_seq = seq;
    ++received;
  };
  while (!done.load(std::memory_order_acquire)) {
    tb.drain(sink);
  }
  tb.drain(sink);
  producer.join();
  tb.drain(sink);
  const std::uint64_t dropped = tb.dropped() - dropped_before;
  // Every event was either delivered or counted as dropped — none
  // vanished, none duplicated, and delivery preserved emission order.
  EXPECT_EQ(received + dropped, kEvents);
  EXPECT_TRUE(ordered);
  EXPECT_GT(received, 0u);
}

// ---------------------------------------------------------------------
// JSONL exporter.
// ---------------------------------------------------------------------

TEST(TraceExport, WritesOneWellFormedLinePerEvent) {
  clear_trace();
  auto& tb = TraceBuffer::instance();
  int lock_a = 0;
  tb.emit(EventKind::kDoubleUnlock, &lock_a);
  tb.emit(EventKind::kOrderInversion, &lock_a, 3, 4,
          static_cast<std::uint8_t>(response::Action::kLog));

  const std::string path =
      ::testing::TempDir() + "resilock_trace_test.jsonl";
  std::remove(path.c_str());
  std::size_t written = 0;
  ASSERT_TRUE(lockdep::export_trace_jsonl(path.c_str(), &written));
  EXPECT_EQ(written, 2u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"kind\":\"double-unlock\""), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[1].find("\"kind\":\"order-inversion\""),
            std::string::npos);
  EXPECT_NE(lines[1].find("\"a\":3"), std::string::npos);
  EXPECT_NE(lines[1].find("\"verdict\":\"log\""), std::string::npos);
  for (const auto& l : lines) {  // each line is one {...} object
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
  }

  // Append semantics: a second dump adds lines, never truncates.
  tb.emit(EventKind::kUnbalancedUnlock, &lock_a);
  ASSERT_TRUE(lockdep::export_trace_jsonl(path.c_str(), &written));
  EXPECT_EQ(written, 1u);
  std::ifstream again(path);
  std::size_t count = 0;
  for (std::string line; std::getline(again, line);) ++count;
  EXPECT_EQ(count, 3u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Rw trace payloads: every intercepted rw misuse carries the hold's
// AccessMode and the indicator's reader estimate, and misuse events
// carry the class they are attributed to.
// ---------------------------------------------------------------------

TEST(TracePayload, RwMisuseCarriesModeAndReaderEstimate) {
  clear_trace();
  shield::ShieldPolicyGuard policy(shield::ShieldPolicy::kSuppress);
  response::ResponseRulesGuard rules("");
  using Rw = CrwLock<kOriginal, SplitReadIndicator, RwPreference::kNeutral>;
  RwShield<Rw> rw;
  Rw::Context reader_ctx, bogus_ctx;
  rw.rlock(reader_ctx);  // one live reader: the estimate at interception
  std::thread misuser([&] {
    Rw::Context t_bogus;
    EXPECT_FALSE(rw.wunlock(t_bogus));  // not held: write-side misuse
  });
  misuser.join();
  EXPECT_TRUE(rw.runlock(reader_ctx));
  EXPECT_FALSE(rw.runlock(bogus_ctx));  // §4 depart-without-arrive

  bool saw_write_side = false, saw_read_side = false;
  for (const auto& e : TraceBuffer::instance().drain_all()) {
    if (e.lock != &rw) continue;
    if (e.kind == EventKind::kUnbalancedUnlock) {
      // wunlock misuse: write-side op, one reader live at interception.
      EXPECT_EQ(e.mode, static_cast<std::uint8_t>(AccessMode::kWrite));
      EXPECT_EQ(e.readers, 1u);
      // Attributed to the shield's (shared) lockdep class.
      EXPECT_EQ(e.a, rw.lockdep_class());
      saw_write_side = true;
    }
    if (e.kind == EventKind::kUnbalancedReadUnlock) {
      EXPECT_EQ(e.mode, static_cast<std::uint8_t>(AccessMode::kRead));
      EXPECT_EQ(e.readers, 0u);  // the indicator never skewed
      EXPECT_EQ(e.a, rw.lockdep_class());
      saw_read_side = true;
    }
  }
  EXPECT_TRUE(saw_write_side);
  EXPECT_TRUE(saw_read_side);
}

TEST(TracePayload, ExclusiveShieldMisuseCarriesItsClass) {
  clear_trace();
  shield::ShieldPolicyGuard policy(shield::ShieldPolicy::kSuppress);
  response::ResponseRulesGuard rules("");
  Shield<TasLock> lock;
  lock.acquire();
  lock.release();
  EXPECT_FALSE(lock.release());  // double unlock, intercepted
  bool saw = false;
  for (const auto& e : TraceBuffer::instance().drain_all()) {
    if (e.lock != &lock) continue;
    EXPECT_EQ(e.kind, EventKind::kDoubleUnlock);
    EXPECT_EQ(e.a, lock.lockdep_class());
    EXPECT_EQ(e.mode, lockdep::kNoMode);  // exclusive family: no payload
    saw = true;
  }
  EXPECT_TRUE(saw);
}

TEST(TraceExport, RwPayloadAndClassFieldsInJsonl) {
  clear_trace();
  auto& tb = TraceBuffer::instance();
  int lock_a = 0;
  // Hand-rolled rw misuse event: class 3, read-mode hold, 5 readers.
  tb.emit(EventKind::kUnbalancedReadUnlock, &lock_a, 3,
          lockdep::kNoClassTag,
          static_cast<std::uint8_t>(response::Action::kSuppress),
          static_cast<std::uint8_t>(AccessMode::kRead), 5);
  // Payload-free exclusive event: no mode/readers/cls fields.
  tb.emit(EventKind::kDoubleUnlock, &lock_a);

  const std::string path =
      ::testing::TempDir() + "resilock_trace_payload.jsonl";
  std::remove(path.c_str());
  std::size_t written = 0;
  ASSERT_TRUE(lockdep::export_trace_jsonl(path.c_str(), &written));
  EXPECT_EQ(written, 2u);
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"kind\":\"unbalanced-read-unlock\""),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"cls\":3"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"mode\":\"read\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"readers\":5"), std::string::npos);
  EXPECT_EQ(lines[1].find("\"mode\""), std::string::npos) << lines[1];
  EXPECT_EQ(lines[1].find("\"cls\""), std::string::npos) << lines[1];
  std::remove(path.c_str());
}

TEST(TraceExport, DrainingExportLeavesRingsEmpty) {
  clear_trace();
  auto& tb = TraceBuffer::instance();
  int lock_a = 0;
  tb.emit(EventKind::kReentrantRelock, &lock_a);
  // Write through a FILE* as the atexit path does.
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  EXPECT_GE(lockdep::write_trace_jsonl(f), 1u);
  std::fclose(f);
  EXPECT_EQ(tb.drain_all().size(), 0u);
}
