// Unit + scenario tests for the mode-aware protection stack:
//   * RwShield<CrwLock> interception of the rw misuse kinds
//     (unbalanced read unlock, rw mode mismatch, non-owner write
//     unlock) and absorption of recursive/upgrading acquires;
//   * mode-tagged lockdep edges — R–R is edge-free, write-involved
//     inversions still flag on first occurrence;
//   * the response engine's rw event routing (adaptive preset, rw
//     tokens, reader-count contention signal);
//   * the pthread_rwlock-shaped shim (single mode-aware unlock);
//   * the verify-layer rw matrix across the C-RW configurations.
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <thread>

#include "core/cohort.hpp"
#include "core/rw/crw.hpp"
#include "core/ticket.hpp"
#include "interpose/pthread_shim.hpp"
#include "lockdep/lockdep.hpp"
#include "response/response.hpp"
#include "runtime/thread_team.hpp"
#include "shield/rw_shield.hpp"
#include "shield/shield.hpp"
#include "verify/checkers.hpp"
#include "verify/rw_matrix.hpp"

using namespace resilock;
namespace rv = resilock::verify;
using response::Action;
using response::ResponseEvent;
using response::ResponseRulesGuard;
using shield::RwShield;
using shield::ShieldPolicy;

namespace {

// Environment pins shared by every test in this binary: no rules
// unless a test installs its own, suppress fallback, lockdep report.
class RwShieldTest : public ::testing::Test {
 protected:
  RwShieldTest()
      : rules_(""),
        policy_(ShieldPolicy::kSuppress),
        mode_(lockdep::LockdepMode::kReport) {}

  response::ResponseRulesGuard rules_;
  shield::ShieldPolicyGuard policy_;
  lockdep::LockdepModeGuard mode_;
};

using NpOriginal =
    CrwLock<kOriginal, SplitReadIndicator, RwPreference::kNeutral>;
using NpResilient =
    CrwLock<kResilient, SplitReadIndicator, RwPreference::kNeutral>;

std::uint64_t engine_event_count(ResponseEvent ev) {
  return response::ResponseEngine::instance().stats().by_event[
      static_cast<std::size_t>(ev)];
}

std::uint64_t engine_action_count(Action a) {
  return response::ResponseEngine::instance().stats().by_action[
      static_cast<std::size_t>(a)];
}

}  // namespace

// ---------------------------------------------------------------------
// Balanced operation.
// ---------------------------------------------------------------------

TEST_F(RwShieldTest, BalancedReadAndWriteEpisodes) {
  RwShield<NpOriginal> rw;
  NpOriginal::Context c;
  rw.rlock(c);
  EXPECT_EQ(rw.held_mode(), AccessMode::kRead);
  EXPECT_EQ(rw.held_depth(), 1u);
  EXPECT_TRUE(rw.runlock(c));
  rw.wlock(c);
  EXPECT_EQ(rw.held_mode(), AccessMode::kWrite);
  EXPECT_TRUE(rw.wunlock(c));
  const auto snap = rw.snapshot();
  EXPECT_EQ(snap.read_acquisitions, 1u);
  EXPECT_EQ(snap.write_acquisitions, 1u);
  EXPECT_EQ(snap.total_misuses(), 0u);
}

TEST_F(RwShieldTest, ConcurrentReadersOverlapWritersExclude) {
  RwShield<NpOriginal> rw;
  std::uint64_t data = 0;
  rv::MutexChecker wchk;
  runtime::ThreadTeam::run(4, [&](std::uint32_t tid) {
    NpOriginal::Context c;
    if (tid % 2 == 0) {
      for (int i = 0; i < 300; ++i) {
        rw.wlock(c);
        wchk.enter();
        data += 1;
        wchk.exit();
        ASSERT_TRUE(rw.wunlock(c));
      }
    } else {
      for (int i = 0; i < 300; ++i) {
        rw.rlock(c);
        const auto a = data;
        const auto b = data;
        EXPECT_EQ(a, b);
        ASSERT_TRUE(rw.runlock(c));
      }
    }
  });
  EXPECT_EQ(data, 600u);
  EXPECT_EQ(wchk.max_simultaneous(), 1);
  EXPECT_EQ(rw.snapshot().total_misuses(), 0u);
  EXPECT_TRUE(rw.base().indicator().is_empty());
}

// ---------------------------------------------------------------------
// Interception: the rw misuse kinds.
// ---------------------------------------------------------------------

TEST_F(RwShieldTest, UnbalancedReadUnlockInterceptedIndicatorIntact) {
  RwShield<NpOriginal> rw;
  NpOriginal::Context c;
  EXPECT_FALSE(rw.runlock(c));  // depart without arrive: refused
  const auto snap = rw.snapshot();
  EXPECT_EQ(snap.count(ResponseEvent::kUnbalancedReadUnlock), 1u);
  EXPECT_EQ(snap.suppressed, 1u);
  // The §4 corruption did NOT happen: indicator balanced, writer gets
  // in immediately instead of starving on a skewed isEmpty().
  EXPECT_TRUE(rw.base().indicator().is_empty());
  rw.wlock(c);
  EXPECT_TRUE(rw.wunlock(c));
}

TEST_F(RwShieldTest, ModeMismatchUnlocksRefusedBothWays) {
  RwShield<NpOriginal> rw;
  NpOriginal::Context c;
  rw.rlock(c);
  EXPECT_FALSE(rw.wunlock(c));  // read hold released as write
  EXPECT_EQ(rw.snapshot().count(ResponseEvent::kRwModeMismatch), 1u);
  EXPECT_TRUE(rw.runlock(c));  // the hold survived the interception
  rw.wlock(c);
  EXPECT_FALSE(rw.runlock(c));  // write hold released as read
  EXPECT_EQ(rw.snapshot().count(ResponseEvent::kRwModeMismatch), 2u);
  EXPECT_TRUE(rw.wunlock(c));
}

TEST_F(RwShieldTest, NonOwnerWriteUnlockClassified) {
  RwShield<NpOriginal> rw;
  std::atomic<bool> held{false}, release{false};
  rv::Probe writer([&] {
    NpOriginal::Context c;
    rw.wlock(c);
    held.store(true, std::memory_order_release);
    rv::wait_for([&] { return release.load(std::memory_order_acquire); },
                 20 * rv::kWatchWindow);
    EXPECT_TRUE(rw.wunlock(c));
  });
  rv::wait_for([&] { return held.load(std::memory_order_acquire); });
  NpOriginal::Context mine;
  EXPECT_FALSE(rw.wunlock(mine));  // another thread write-holds
  EXPECT_EQ(rw.snapshot().count(ResponseEvent::kNonOwnerWriteUnlock), 1u);
  release.store(true, std::memory_order_release);
  writer.join();
}

TEST_F(RwShieldTest, DoubleWriteUnlockClassified) {
  RwShield<NpOriginal> rw;
  NpOriginal::Context c;
  rw.wlock(c);
  EXPECT_TRUE(rw.wunlock(c));
  EXPECT_FALSE(rw.wunlock(c));  // once too often, by the previous writer
  EXPECT_EQ(rw.snapshot().count(ResponseEvent::kDoubleUnlock), 1u);
}

// ---------------------------------------------------------------------
// Absorption: recursive and upgrading acquires.
// ---------------------------------------------------------------------

TEST_F(RwShieldTest, RecursiveReadAbsorbedAsDepthBump) {
  RwShield<NpOriginal> rw;
  NpOriginal::Context c;
  rw.rlock(c);
  rw.rlock(c);  // pthread-style recursive read: absorbed
  EXPECT_EQ(rw.held_depth(), 2u);
  EXPECT_EQ(rw.snapshot().absorbed, 1u);
  EXPECT_EQ(rw.snapshot().count(ResponseEvent::kReentrantRelock), 1u);
  EXPECT_TRUE(rw.runlock(c));
  EXPECT_TRUE(rw.runlock(c));
  EXPECT_TRUE(rw.base().indicator().is_empty());  // one arrive, one depart
}

TEST_F(RwShieldTest, WriteUpgradeAbsorbedInsteadOfSelfDeadlock) {
  // A passthrough upgrade would spin forever: the writer waits for an
  // indicator that contains the caller itself. The shield absorbs it
  // as a mode-mismatch depth bump on the read hold.
  RwShield<NpOriginal> rw;
  NpOriginal::Context c;
  rw.rlock(c);
  rw.wlock(c);  // would self-deadlock if forwarded
  EXPECT_EQ(rw.held_mode(), AccessMode::kRead);  // still a read hold
  EXPECT_EQ(rw.held_depth(), 2u);
  EXPECT_EQ(rw.snapshot().count(ResponseEvent::kRwModeMismatch), 1u);
  EXPECT_TRUE(rw.runlock(c));
  EXPECT_TRUE(rw.runlock(c));
}

TEST_F(RwShieldTest, PassthroughRecursiveReadStaysFaithful) {
  // Regression: a FORWARDED (passthrough) recursive read must not also
  // bump the table — the base saw two arrives, so the base must see
  // two departs, or a counting indicator skews forever.
  RwShield<NpOriginal> rw(ShieldPolicy::kPassThrough);
  NpOriginal::Context c;
  rw.rlock(c);
  rw.rlock(c);  // forwarded: arrive #2, table depth stays 1
  EXPECT_EQ(rw.held_depth(), 1u);
  EXPECT_TRUE(rw.runlock(c));   // depart #1 (balanced entry)
  EXPECT_TRUE(rw.runlock(c));   // not-held misuse, passthrough: depart #2
  EXPECT_TRUE(rw.base().indicator().is_empty());  // no skew
  rw.wlock(c);  // a writer still gets in
  EXPECT_TRUE(rw.wunlock(c));
}

TEST_F(RwShieldTest, DisabledChecksRecursiveReadLeaksNoPhantoms) {
  // Regression: with the §5 escape hatch open, a recursive read is
  // forwarded verbatim — the lockdep stack must not accumulate a
  // phantom duplicate entry and the indicator must balance.
  RwShield<NpOriginal> rw;
  NpOriginal::Context c;
  rw.rlock(c);
  {
    MisuseCheckGuard off(false);
    rw.rlock(c);  // forwarded verbatim: arrive #2, no table bump
    EXPECT_TRUE(rw.runlock(c));  // pops the one entry, depart #1
    EXPECT_TRUE(rw.runlock(c));  // not held: forwarded verbatim, depart #2
  }
  EXPECT_TRUE(rw.base().indicator().is_empty());
  // No phantom stack entry: a nested acquisition on this thread adds
  // no edge sourced at the (fully released) rw lock.
  RwShield<NpOriginal> other;
  other.rlock(c);
  EXPECT_TRUE(other.runlock(c));
  EXPECT_FALSE(lockdep::Graph::instance().has_edge(rw.lockdep_class(),
                                                   other.lockdep_class()));
}

TEST_F(RwShieldTest, ReentrantWriteAbsorbed) {
  RwShield<NpOriginal> rw;
  NpOriginal::Context c;
  rw.wlock(c);
  rw.wlock(c);  // relock of a non-reentrant write side: absorbed
  EXPECT_EQ(rw.held_depth(), 2u);
  EXPECT_TRUE(rw.wunlock(c));
  EXPECT_TRUE(rw.wunlock(c));
  rw.wlock(c);  // still functional
  EXPECT_TRUE(rw.wunlock(c));
}

// ---------------------------------------------------------------------
// The mode-aware single unlock (pthread_rwlock_unlock semantics).
// ---------------------------------------------------------------------

TEST_F(RwShieldTest, UnifiedUnlockRoutesByHeldMode) {
  RwShield<NpOriginal> rw;
  NpOriginal::Context c;
  rw.rlock(c);
  EXPECT_TRUE(rw.unlock(c));  // routes to runlock
  EXPECT_TRUE(rw.base().indicator().is_empty());
  rw.wlock(c);
  EXPECT_TRUE(rw.unlock(c));  // routes to wunlock
  EXPECT_FALSE(rw.unlock(c));  // nothing held: intercepted
  EXPECT_GE(rw.snapshot().total_misuses(), 1u);
}

// ---------------------------------------------------------------------
// Policy precedence and engine routing.
// ---------------------------------------------------------------------

TEST_F(RwShieldTest, ExplicitPassthroughReachesResilientBase) {
  // The native W-side remedy refuses the forwarded misuse, proving the
  // shield really passed it through.
  RwShield<NpResilient> rw(ShieldPolicy::kPassThrough);
  NpResilient::Context c;
  EXPECT_FALSE(rw.wunlock(c));
  const auto snap = rw.snapshot();
  EXPECT_EQ(snap.passed_through, 1u);
  EXPECT_EQ(snap.suppressed, 0u);
}

TEST_F(RwShieldTest, AdaptivePresetLogsRwMisuseEvenUncontended) {
  // The rw tail has no "harmless radius" tier: an unbalanced read
  // unlock skews the indicator forever, so adaptive logs + suppresses
  // it even with nobody else around.
  ResponseRulesGuard rules(response::adaptive_policy_spec());
  RwShield<NpOriginal> rw;
  NpOriginal::Context c;
  const auto log_before = engine_action_count(Action::kLog);
  const auto ev_before =
      engine_event_count(ResponseEvent::kUnbalancedReadUnlock);
  EXPECT_FALSE(rw.runlock(c));  // logged AND suppressed
  EXPECT_EQ(engine_action_count(Action::kLog), log_before + 1);
  EXPECT_EQ(engine_event_count(ResponseEvent::kUnbalancedReadUnlock),
            ev_before + 1);
  EXPECT_EQ(rw.snapshot().suppressed, 1u);
  EXPECT_TRUE(rw.base().indicator().is_empty());
}

TEST_F(RwShieldTest, ReaderCountDrivesWaitersThresholdRule) {
  // waiters>=2 keyed off the rw stake (live readers): with two readers
  // inside, a bogus wunlock crosses the threshold and aborts (trapped);
  // with none, the same misuse only logs.
  static std::atomic<int> trapped{0};
  trapped.store(0);
  ResponseRulesGuard rules(
      "non-owner-write-unlock|unbalanced-unlock@waiters>=2=abort;"
      "misuse=log");
  response::ScopedAbortHandler trap(
      [](ResponseEvent, const void*) { trapped.fetch_add(1); });
  RwShield<NpOriginal> rw;
  std::atomic<int> in{0};
  std::atomic<bool> out{false};
  auto reader = [&] {
    NpOriginal::Context c;
    rw.rlock(c);
    in.fetch_add(1, std::memory_order_acq_rel);
    rv::wait_for([&] { return out.load(std::memory_order_acquire); },
                 20 * rv::kWatchWindow);
    rw.runlock(c);
  };
  rv::Probe r1(reader);
  rv::Probe r2(reader);
  rv::wait_for([&] { return in.load(std::memory_order_acquire) == 2; });
  NpOriginal::Context mine;
  EXPECT_FALSE(rw.wunlock(mine));  // stake >= 2: abort verdict, trapped
  EXPECT_EQ(trapped.load(), 1);
  out.store(true, std::memory_order_release);
  r1.join();
  r2.join();
  EXPECT_FALSE(rw.wunlock(mine));  // stake 0 now: log tier instead
  EXPECT_EQ(trapped.load(), 1);
}

// ---------------------------------------------------------------------
// Mode-tagged lockdep.
// ---------------------------------------------------------------------

TEST_F(RwShieldTest, ReadReadNestingIsEdgeFree) {
  RwShield<NpOriginal> a, b;
  NpOriginal::Context ca, cb;
  const auto skips_before = lockdep::Graph::instance().stats().rr_skipped;
  const auto reports_before = lockdep::Graph::instance().stats().reports();
  a.rlock(ca);
  b.rlock(cb);  // R–R: no edge
  b.runlock(cb);
  a.runlock(ca);
  b.rlock(cb);
  a.rlock(ca);  // reversed R–R: still no edge, no inversion
  a.runlock(ca);
  b.runlock(cb);
  const auto& g = lockdep::Graph::instance();
  EXPECT_GE(g.stats().rr_skipped, skips_before + 2);
  EXPECT_EQ(g.stats().reports(), reports_before);
  EXPECT_FALSE(g.has_edge(a.lockdep_class(), b.lockdep_class()));
  EXPECT_FALSE(g.has_edge(b.lockdep_class(), a.lockdep_class()));
}

TEST_F(RwShieldTest, WriteInvolvedInversionStillFlagged) {
  RwShield<NpOriginal> a, b;
  NpOriginal::Context ca, cb;
  const auto before = lockdep::Graph::instance().stats().inversions;
  a.rlock(ca);
  b.wlock(cb);  // A(r)→B(w): write-involved, recorded
  b.wunlock(cb);
  a.runlock(ca);
  b.rlock(cb);
  a.wlock(ca);  // B(r)→A(w): closes the cycle — flagged here
  a.wunlock(ca);
  b.runlock(cb);
  EXPECT_GT(lockdep::Graph::instance().stats().inversions, before);
  // The edge mode tags recorded the read-mode sources.
  const auto& g = lockdep::Graph::instance();
  EXPECT_TRUE(g.edge_src_was_read(a.lockdep_class(), b.lockdep_class()));
  EXPECT_TRUE(g.edge_src_was_read(b.lockdep_class(), a.lockdep_class()));
}

// ---------------------------------------------------------------------
// Cohort per-level attribution (satellite): app code nesting a mutex
// under a cohort lock gets edges against the level classes; the
// combinator's own local→global nesting stays edge-free.
// ---------------------------------------------------------------------

TEST_F(RwShieldTest, CohortInternalNestingIsEdgeFree) {
  const auto& g = lockdep::Graph::instance();
  CTktTktLock<kOriginal> cohort(platform::Topology::uniform(2, 2));
  CTktTktLock<kOriginal>::Context c;
  cohort.acquire(c);
  cohort.release(c);
  const lockdep::ClassId local = cohort_local_class_key().id();
  const lockdep::ClassId global = cohort_global_class_key().id();
  ASSERT_NE(local, lockdep::kInvalidClass);
  ASSERT_NE(global, lockdep::kInvalidClass);
  EXPECT_FALSE(g.has_edge(local, global));  // suppressed by design
  EXPECT_FALSE(g.has_edge(global, local));  // never occurs internally
}

TEST_F(RwShieldTest, CrossLevelInversionAttributedToLevelClasses) {
  const auto& g = lockdep::Graph::instance();
  CTktTktLock<kOriginal> cohort(platform::Topology::uniform(2, 2));
  CTktTktLock<kOriginal>::Context c;
  Shield<TicketLockResilient> m;
  // mutex → cohort...
  m.acquire();
  cohort.acquire(c);
  cohort.release(c);
  m.release();
  const lockdep::ClassId local = cohort_local_class_key().id();
  ASSERT_NE(local, lockdep::kInvalidClass);
  EXPECT_TRUE(g.has_edge(m.lockdep_class(), local));
  // ...then cohort → mutex: the inversion names the LEVEL class.
  const auto before = g.stats().reports();
  cohort.acquire(c);
  m.acquire();
  m.release();
  cohort.release(c);
  EXPECT_GT(g.stats().reports(), before);
  EXPECT_TRUE(g.has_edge(local, m.lockdep_class()));
}

// ---------------------------------------------------------------------
// pthread_rwlock-shaped shim.
// ---------------------------------------------------------------------

TEST_F(RwShieldTest, RwShimInitLockUnlockDestroy) {
  using namespace resilock::interpose;
  rl_rwlock_t rw{};
  ASSERT_EQ(rl_rwlock_init(&rw, "np", 1), 0);
  EXPECT_EQ(rl_rwlock_rdlock(&rw), 0);
  EXPECT_EQ(rl_rwlock_unlock(&rw), 0);  // mode-aware: releases the read
  EXPECT_EQ(rl_rwlock_wrlock(&rw), 0);
  EXPECT_EQ(rl_rwlock_unlock(&rw), 0);  // releases the write
  EXPECT_EQ(rl_rwlock_unlock(&rw), EPERM);  // nothing held: errorcheck
  EXPECT_EQ(rl_rwlock_destroy(&rw), 0);
  EXPECT_EQ(rl_rwlock_destroy(&rw), EBUSY);
}

TEST_F(RwShieldTest, RwShimPreferencesAndErrors) {
  using namespace resilock::interpose;
  for (const char* pref : {"np", "neutral", "rp", "reader", "wp",
                           "writer", static_cast<const char*>(nullptr)}) {
    rl_rwlock_t rw{};
    ASSERT_EQ(rl_rwlock_init(&rw, pref, 0), 0);
    EXPECT_EQ(rl_rwlock_rdlock(&rw), 0);
    EXPECT_EQ(rl_rwlock_unlock(&rw), 0);
    EXPECT_EQ(rl_rwlock_destroy(&rw), 0);
  }
  rl_rwlock_t rw{};
  EXPECT_EQ(rl_rwlock_init(&rw, "sideways", 0), EINVAL);
  EXPECT_EQ(rl_rwlock_init(nullptr, "np", 0), EINVAL);
  EXPECT_EQ(rl_rwlock_rdlock(nullptr), EINVAL);
  EXPECT_EQ(rl_rwlock_unlock(nullptr), EINVAL);
}

TEST_F(RwShieldTest, RwShimReadersOverlapWritersExclude) {
  using namespace resilock::interpose;
  rl_rwlock_t rw{};
  ASSERT_EQ(rl_rwlock_init(&rw, "np", 1), 0);
  std::uint64_t data = 0;
  rv::MutexChecker wchk;
  runtime::ThreadTeam::run(4, [&](std::uint32_t tid) {
    for (int i = 0; i < 200; ++i) {
      if (tid % 2 == 0) {
        ASSERT_EQ(rl_rwlock_wrlock(&rw), 0);
        wchk.enter();
        ++data;
        wchk.exit();
        ASSERT_EQ(rl_rwlock_unlock(&rw), 0);
      } else {
        ASSERT_EQ(rl_rwlock_rdlock(&rw), 0);
        ASSERT_EQ(rl_rwlock_unlock(&rw), 0);
      }
    }
  });
  EXPECT_EQ(data, 400u);
  EXPECT_EQ(wchk.max_simultaneous(), 1);
  EXPECT_EQ(rl_rwlock_destroy(&rw), 0);
}

// ---------------------------------------------------------------------
// The verify-layer matrix: every acceptance gate across the C-RW
// configurations (neutral/ptkt-tkt, reader-pref/tkt-tkt,
// writer-pref/bo-bo).
// ---------------------------------------------------------------------

TEST(RwMatrix, AllGatesAcrossConfigurations) {
  const auto rows = verify::run_rw_matrix();
  verify::print_rw_matrix(rows);
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& r : rows) {
    EXPECT_TRUE(r.rr_clean) << r.config;
    EXPECT_TRUE(r.rr_edge_free) << r.config;
    EXPECT_TRUE(r.w_inversion) << r.config;
    EXPECT_TRUE(r.w_inversion_once) << r.config;
    EXPECT_TRUE(r.rw_mixed_inversion) << r.config;
    EXPECT_TRUE(r.mismatch_intercepted) << r.config;
    EXPECT_TRUE(r.unbalanced_read_refused) << r.config;
    EXPECT_TRUE(r.indicator_intact) << r.config;
    EXPECT_TRUE(r.agrees_native) << r.config;
    EXPECT_TRUE(r.all_pass()) << r.config;
  }
}
